// Table 2 of the paper: time performance of the numeric factorization on
// P = 1, 2, 4, 8 processors of the (simulated) Origin 2000, using the
// paper's configuration: postordering + the eforest task dependence graph +
// critical-path list scheduling (the RAPID stand-in).
//
// The paper reports that the code "scales well up to 8 processors"; the
// reproduction prints simulated seconds plus the speedup over P = 1.
// google-benchmark timings: the real one-core numeric factorization, so the
// simulated P=1 column can be sanity-checked against actual wall clock.
#include "bench_common.h"

namespace plu::bench {
namespace {

void BM_FactorizeSequential(benchmark::State& state, const std::string& name) {
  NamedMatrix nm = make_named_matrix(name);
  Analysis an = analyze(nm.a);
  for (auto _ : state) {
    Factorization f(an, nm.a);
    benchmark::DoNotOptimize(f.zero_pivots());
  }
}

void register_benchmarks() {
  for (const char* name : {"orsreg1", "goodwin"}) {
    benchmark::RegisterBenchmark(
        ("BM_FactorizeSequential/" + std::string(name)).c_str(),
        [name](benchmark::State& s) { BM_FactorizeSequential(s, name); })
        ->Unit(benchmark::kMillisecond);
  }
}

[[maybe_unused]] const bool registered = (register_benchmarks(), true);

void print_table() {
  Options opt;  // defaults = the paper's method
  SuiteAnalyses suite = analyze_suite(opt);
  std::printf("\nTable 2: numeric factorization time (simulated Origin 2000 "
              "seconds)\n");
  print_rule(78);
  std::printf("%-10s %9s %9s %9s %9s %8s %8s\n", "Matrix", "P=1", "P=2", "P=4",
              "P=8", "S(4)", "S(8)");
  print_rule(78);
  for (std::size_t i = 0; i < suite.matrices.size(); ++i) {
    const Analysis& an = suite.analyses[i];
    double t1 = simulated_seconds(an, 1);
    double t2 = simulated_seconds(an, 2);
    double t4 = simulated_seconds(an, 4);
    double t8 = simulated_seconds(an, 8);
    std::printf("%-10s %9.3f %9.3f %9.3f %9.3f %8.2f %8.2f\n",
                suite.matrices[i].name.c_str(), t1, t2, t4, t8, t1 / t4, t1 / t8);
  }
  print_rule(78);
  std::printf(
      "Paper claim: the code scales well up to 8 processors (speedups in the\n"
      "1.3x - 4.4x band across these matrices on the real Origin 2000).\n");
}

}  // namespace
}  // namespace plu::bench

PLU_BENCH_MAIN(plu::bench::print_table)
