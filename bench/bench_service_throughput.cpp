// Solver-service throughput bench (PR 6): synthetic multi-tenant traffic --
// a few HOT patterns repeated with fresh values plus a tail of cold
// one-off patterns -- pushed from several client threads, measured as
// requests/sec with p50/p99 latency, swept over service pool sizes
// {1, 4, 8} and the analysis cache on vs off.
//
// The cache ablation is the point: with the cache on, only the first
// request of each hot pattern pays for symbolic analysis, so the summed
// per-request analyze time collapses while throughput rises.  Emits one
// JSON-lines record per (threads, cache) cell via --json (CI collects
// BENCH_pr6.json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "matrix/generators.h"
#include "service/solver_service.h"

namespace plu::bench {
namespace {

struct TrafficItem {
  CscMatrix a;
  std::vector<double> b;
  double priority = 0.0;
};

std::vector<double> bench_rhs(int n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> v(n);
  for (double& x : v) x = dist(rng);
  return v;
}

/// Synthetic tenant mix: 3 hot patterns (~85% of requests, values perturbed
/// per request) + cold random patterns (~15%), shuffled deterministically.
std::vector<TrafficItem> make_traffic(int total_requests) {
  gen::StencilOptions g;
  g.seed = 11;
  g.convection = 0.4;
  std::vector<CscMatrix> hot;
  hot.push_back(gen::grid2d(22, 22, g));
  g.seed = 12;
  hot.push_back(gen::grid3d(8, 8, 6, g));
  hot.push_back(gen::banded(400, {-13, -5, -1, 1, 5, 13}, 0.7, 0.6, 13));

  std::mt19937_64 rng(2026);
  std::uniform_real_distribution<double> noise(-0.05, 0.05);
  std::vector<TrafficItem> traffic;
  traffic.reserve(size_t(total_requests));
  for (int i = 0; i < total_requests; ++i) {
    TrafficItem item;
    if (i % 7 == 6) {  // cold: a pattern seen exactly once
      item.a = gen::random_sparse(150 + int(rng() % 100), 4.0, 0.5, 0.7,
                                  5000 + i);
    } else {
      item.a = hot[rng() % hot.size()];
      for (double& v : item.a.values()) v *= 1.0 + noise(rng);
    }
    item.b = bench_rhs(item.a.rows(), 9000 + i);
    item.priority = double(rng() % 3);
    traffic.push_back(std::move(item));
  }
  return traffic;
}

struct Cell {
  int service_threads = 0;
  bool cache = false;
  int requests = 0;
  double wall_seconds = 0.0;
  double reqs_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double analyze_seconds_total = 0.0;
  service::CacheStats cache_stats;
};

Cell run_cell(const std::vector<TrafficItem>& traffic, int service_threads,
              bool cache_on) {
  service::ServiceOptions sopt;
  sopt.threads = service_threads;
  sopt.max_concurrent = std::max(2, service_threads / 2);
  sopt.enable_cache = cache_on;
  sopt.cache_capacity = 16;

  Cell cell;
  cell.service_threads = service_threads;
  cell.cache = cache_on;
  cell.requests = int(traffic.size());

  const int kClients = 4;
  std::vector<double> latencies_ms(traffic.size());
  double analyze_total = 0.0;
  service::CacheStats cache_stats;
  const auto t0 = std::chrono::steady_clock::now();
  {
    service::SolverService svc(sopt);
    std::vector<std::thread> clients;
    std::mutex agg_mu;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        double my_analyze = 0.0;
        // Strided split of the traffic across client threads.
        for (size_t i = size_t(c); i < traffic.size(); i += kClients) {
          const TrafficItem& item = traffic[i];
          service::RequestOptions ropt;
          ropt.priority = item.priority;
          const auto s = std::chrono::steady_clock::now();
          service::RequestResult r =
              svc.submit(item.a, item.b, ropt)->wait();
          const auto e = std::chrono::steady_clock::now();
          latencies_ms[i] =
              std::chrono::duration<double, std::milli>(e - s).count();
          if (r.state != service::RequestState::kDone) {
            std::fprintf(stderr, "request %zu ended %s: %s\n", i,
                         service::to_string(r.state), r.error.c_str());
            std::abort();
          }
          my_analyze += r.analyze_seconds;
        }
        std::lock_guard<std::mutex> lock(agg_mu);
        analyze_total += my_analyze;
      });
    }
    for (auto& t : clients) t.join();
    cache_stats = svc.stats().cache;
  }
  cell.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  cell.reqs_per_sec = double(cell.requests) / cell.wall_seconds;
  cell.analyze_seconds_total = analyze_total;
  cell.cache_stats = cache_stats;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  cell.p50_ms = latencies_ms[latencies_ms.size() / 2];
  cell.p99_ms = latencies_ms[std::min(latencies_ms.size() - 1,
                                      latencies_ms.size() * 99 / 100)];
  return cell;
}

void print_table() {
  const std::vector<TrafficItem> traffic = make_traffic(80);
  std::printf("Service throughput: %zu requests, 4 client threads, traffic "
              "mix 3 hot patterns + cold tail\n",
              traffic.size());
  print_rule(92);
  std::printf("%8s %6s %10s %10s %10s %12s %7s %7s %7s\n", "threads", "cache",
              "reqs/s", "p50 ms", "p99 ms", "analyze s", "hits", "misses",
              "evict");
  print_rule(92);
  for (int threads : {1, 4, 8}) {
    for (bool cache_on : {true, false}) {
      Cell c = run_cell(traffic, threads, cache_on);
      std::printf("%8d %6s %10.1f %10.2f %10.2f %12.4f %7ld %7ld %7ld\n",
                  c.service_threads, c.cache ? "on" : "off", c.reqs_per_sec,
                  c.p50_ms, c.p99_ms, c.analyze_seconds_total,
                  c.cache_stats.hits, c.cache_stats.misses,
                  c.cache_stats.evictions);
      JsonRecord rec;
      rec.field("bench", "service_throughput")
          .field("service_threads", c.service_threads)
          .field("cache", c.cache ? 1 : 0)
          .field("requests", c.requests)
          .field("client_threads", 4)
          .field("wall_seconds", c.wall_seconds)
          .field("reqs_per_sec", c.reqs_per_sec)
          .field("p50_ms", c.p50_ms)
          .field("p99_ms", c.p99_ms)
          .field("analyze_seconds_total", c.analyze_seconds_total)
          .field("cache_hits", int(c.cache_stats.hits))
          .field("cache_misses", int(c.cache_stats.misses))
          .field("cache_evictions", int(c.cache_stats.evictions));
      json_append(rec);
    }
  }
  print_rule(92);
  std::printf("cache on vs off: the summed analyze seconds is the ablation "
              "-- hot patterns analyze once instead of per request.\n");
}

}  // namespace
}  // namespace plu::bench

PLU_BENCH_MAIN(plu::bench::print_table)
