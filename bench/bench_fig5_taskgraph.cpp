// Figure 5 of the paper: performance improvement from the new (eforest)
// task dependence graph over the S* graph, 1 - PT(new)/PT(old), as a
// function of the processor count, for sherman3, sherman5, orsreg1 and
// goodwin.
//
// Both graphs are scheduled by the same critical-path list scheduler on the
// same simulated machine, so the delta isolates the dependence-structure
// effect -- the paper's methodology (their baseline swaps only the task
// graph construction inside the same code).  The paper reports 4%-31%
// improvements.  The scan of the S* definition is ambiguous, so two
// baselines are printed (taskgraph/build.h): the program-order reading
// reproduces the paper's band; the minimal per-target-chain reading is
// absorbed almost completely by a work-conserving scheduler on these
// matrices (a finding documented in EXPERIMENTS.md).
#include "bench_common.h"

namespace plu::bench {
namespace {

void print_figure() {
  std::printf("\nFigure 5: improvement 1 - PT(new)/PT(old) from the eforest "
              "task graph\n\n");
  print_taskgraph_improvement(figure5_names());
  std::printf(
      "Paper: improvements grow with the processor count (serialized update\n"
      "chains bind only when there is parallelism to waste) and reach the\n"
      "~4%%-31%% band for these matrices.\n");
}

}  // namespace
}  // namespace plu::bench

PLU_BENCH_MAIN(plu::bench::print_figure)
