// Ablation A9: MC64-style preprocessing + threshold pivoting.
//
// Static-pivoting factorizations live or die by what is on the diagonal;
// the maximum-product transversal with scaling (graph/weighted_matching.h)
// is the standard defense.  This bench injects wild row scalings into the
// suite matrices and reports, for each preprocessing x pivoting combination:
// the relative residual of a solve, the number of row interchanges actually
// performed, and the condition estimate of the preprocessed operator.
#include "bench_common.h"

#include <cmath>

#include "core/solve.h"

namespace plu::bench {
namespace {

CscMatrix badly_scaled(const CscMatrix& a, std::uint64_t seed) {
  std::vector<int> ptr = a.col_ptr();
  std::vector<int> ind = a.row_ind();
  std::vector<double> val = a.values();
  for (int j = 0; j < a.cols(); ++j) {
    for (int k = ptr[j]; k < ptr[j + 1]; ++k) {
      // Deterministic per-row exponent in [-6, 6] decades.
      std::uint64_t h = (static_cast<std::uint64_t>(ind[k]) + seed) * 0x9e3779b9u;
      val[k] *= std::pow(10.0, static_cast<int>(h % 13) - 6);
    }
  }
  return CscMatrix(a.rows(), a.cols(), std::move(ptr), std::move(ind),
                   std::move(val));
}

void print_table() {
  std::printf("\nAblation A9: MC64 preprocessing + threshold pivoting on badly "
              "scaled systems\n");
  print_rule(100);
  std::printf("%-10s %-22s %12s %12s %12s\n", "Matrix", "configuration",
              "residual", "interchg", "cond est");
  print_rule(100);
  for (const char* name : {"orsreg1", "goodwin"}) {
    CscMatrix a = badly_scaled(make_named_matrix(name).a, 5);
    std::vector<double> b(a.rows());
    for (int i = 0; i < a.rows(); ++i) b[i] = 1.0 + (i % 9) * 0.1;
    struct Config {
      const char* label;
      bool mc64;
      double threshold;
    };
    for (Config c : {Config{"plain + partial piv", false, 1.0},
                     Config{"mc64  + partial piv", true, 1.0},
                     Config{"plain + thresh 0.1", false, 0.1},
                     Config{"mc64  + thresh 0.1", true, 0.1},
                     Config{"mc64  + thresh 0.01", true, 0.01}}) {
      Options opt;
      opt.scale_and_permute = c.mc64;
      NumericOptions nopt;
      nopt.pivot_threshold = c.threshold;
      Analysis an = analyze(a, opt);
      Factorization f(an, a, nopt);
      std::vector<double> x = f.solve(b);
      ConditionEstimate ce = estimate_condition(f, a);
      std::printf("%-10s %-22s %12.2e %12ld %12.2e\n", name, c.label,
                  relative_residual(a, x, b), f.pivot_interchanges(), ce.cond1);
    }
  }
  print_rule(100);
  std::printf(
      "MC64 preprocessing lets threshold pivoting keep the (maximized)\n"
      "diagonal: interchanges drop sharply while the residual stays at\n"
      "factorization accuracy.\n");
}

}  // namespace
}  // namespace plu::bench

PLU_BENCH_MAIN(plu::bench::print_table)
