// Production-scale scaling sweep: modern workload classes at sizes where
// per-task scheduling overhead and storage layout actually matter.
//
// Matrices (full mode):
//   forest-102k     100 decoupled 3-D multi-physics domains -> 102,400 rows
//                   over >= 100 independent eforest trees (the headline
//                   >= 1e5-row case, and the coarsening stress shape: tens
//                   of thousands of sub-millisecond leaf tasks);
//   multiphys-8k    ONE coupled 3-D multi-physics domain, 14x14x10 grid x 4
//                   unknowns per point;
//   banded-60k      wide banded unsymmetric operator;
//   powerlaw-4k     power-law column-degree mix (hub columns).
//
// Size ceilings are set by the METHOD, not squeamishness: static symbolic
// factorization fills for every possible pivot sequence, so a single
// coupled 3-D domain's factor storage grows superlinearly (a 16k-row
// coupled block already stores ~0.8 GB), and minimum degree on A'A is the
// dominant analysis cost on hub-heavy power-law matrices (ROADMAP: the
// parallel ordering tier).  The >= 1e5-row scale is carried by the forest,
// which is exactly the shape the paper's eforest parallelism targets.
//
// For each matrix the sweep times the threaded numeric factorization over
// threads {1,2,4,8} x coarsening {off,on} x block storage {vectors,arena}
// with the warmup + min-of-N protocol (bench_common.h), analysis done ONCE
// per matrix and reused by every configuration.  A refactorization record
// (same pattern, perturbed values -- the Newton / time-stepping workload)
// and machine-model scaling records (rt::simulate on the Origin-2000 model,
// P = 1..8) complete the artifact.
//
// HONESTY NOTE: wall-clock speedups are real measurements on THIS host --
// on a single-core container threads > 1 cannot beat 1 and the wall
// records will say so (the `cores` field records the host's concurrency).
// When cores == 1 the wall_speedup_vs_1t field is emitted as null (bench_json
// maps non-finite doubles to null): a one-core "speedup" is pure timer noise
// (BENCH_pr8 recorded 0.82-1.08x) and must not be graded as scaling data.
// The simulated records carry the machine-model scaling; CI multi-core
// runners grade wall-clock scaling from the artifact this bench appends
// with --json (BENCH_pr9 era: BENCH_pr8.json at the repo root).
//
// Flags: --smoke (downscaled sizes + 1 rep, the CI gate), --json FILE.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "matrix/generators.h"
#include "taskgraph/coarsen.h"

namespace plu::bench {
namespace {

struct Case {
  std::string name;
  CscMatrix a;
};

std::vector<Case> make_cases(bool smoke) {
  std::vector<Case> cases;
  {
    std::vector<CscMatrix> blocks;
    gen::StencilOptions g;
    const int nblocks = smoke ? 8 : 100;
    for (int i = 0; i < nblocks; ++i) {
      g.seed = 8200 + i;
      blocks.push_back(smoke ? gen::multiphysics3d(5, 5, 5, 2, g)
                             : gen::multiphysics3d(8, 8, 4, 4, g));
    }
    cases.push_back({smoke ? "forest-2k" : "forest-102k",
                     gen::block_diag(blocks)});
  }
  {
    gen::StencilOptions g;
    g.seed = 81;
    cases.push_back({smoke ? "multiphys-2k" : "multiphys-8k",
                     smoke ? gen::multiphysics3d(8, 8, 8, 4, g)
                           : gen::multiphysics3d(14, 14, 10, 4, g)});
  }
  {
    const int n = smoke ? 6000 : 60000;
    cases.push_back({smoke ? "banded-6k" : "banded-60k",
                     gen::banded(n, {-200, -199, -1, 1, 199, 200}, 0.8, 0.7,
                                 83)});
  }
  {
    const int n = smoke ? 2000 : 4000;
    cases.push_back({smoke ? "powerlaw-2k" : "powerlaw-4k",
                     gen::power_law(n, 4.0, 2.0, 0.6, 0.8, 84)});
  }
  return cases;
}

void run(bool smoke) {
  const int reps = smoke ? 1 : 2;
  const int cores = static_cast<int>(std::thread::hardware_concurrency());
  Options aopt;  // defaults: mindeg + postorder + eforest graph
  std::printf("host cores: %d%s\n", cores,
              cores < 8 ? " (wall-clock scaling limited; simulated records "
                          "carry the machine-model scaling)"
                        : "");
  std::printf("%-15s %8s %3s %8s %8s  %10s %8s %9s\n", "matrix", "n", "P",
              "coarsen", "storage", "factor(s)", "vs 1t", "fused");
  for (Case& c : make_cases(smoke)) {
    const Analysis an = analyze(c.a, aopt);
    // Baseline seconds at 1 thread per (coarsen, storage) cell, for the
    // within-configuration speedup column.
    double base[2][2] = {{0.0, 0.0}, {0.0, 0.0}};
    for (int threads : {1, 2, 4, 8}) {
      for (int co = 0; co <= 1; ++co) {
        for (int ar = 0; ar <= 1; ++ar) {
          NumericOptions nopt;
          nopt.mode = ExecutionMode::kThreaded;
          nopt.threads = threads;
          nopt.coarsen = co != 0;
          nopt.storage = ar != 0 ? StorageMode::kArena : StorageMode::kVectors;
          taskgraph::CoarsenStats cs;
          std::size_t storage_bytes = 0;
          const double secs = min_of_n_seconds(reps, [&] {
            Factorization f(an, c.a, nopt);
            cs = f.coarsen_stats();
            storage_bytes = f.blocks().storage_bytes();
          });
          if (threads == 1) base[co][ar] = secs;
          const double speedup = base[co][ar] / secs;
          // One core cannot scale: record null (NaN -> null in bench_json)
          // instead of timer noise dressed up as a speedup.
          const double speedup_record =
              cores > 1 ? speedup : std::numeric_limits<double>::quiet_NaN();
          std::printf("%-15s %8d %3d %8s %8s  %10.4f %8.2f %9d\n",
                      c.name.c_str(), c.a.rows(), threads,
                      co ? "on" : "off", ar ? "arena" : "vectors", secs,
                      speedup, cs.fused_groups);
          JsonRecord rec;
          rec.field("bench", "scaling_modern")
              .field("matrix", c.name)
              .field("n", c.a.rows())
              .field("nnz", c.a.nnz())
              .field("cores", cores)
              .field("threads", threads)
              .field("coarsen", co)
              .field("storage", ar ? "arena" : "vectors")
              .field("reps", reps)
              .field("wall_seconds", secs)
              .field("wall_speedup_vs_1t", speedup_record)
              .field("tasks_before", cs.tasks_before)
              .field("tasks_after", cs.tasks_after)
              .field("fused_groups", cs.fused_groups)
              .field("storage_mb", storage_bytes / 1e6);
          json_append(rec);
        }
      }
    }
    // Refactorization with perturbed values: the pattern is copied
    // verbatim, so the SAME analysis is reused -- the Newton-loop workload.
    {
      const CscMatrix a2 = gen::perturb_values(c.a, 0.05, 85);
      NumericOptions nopt;
      nopt.mode = ExecutionMode::kThreaded;
      nopt.threads = 8;
      nopt.coarsen = true;
      const double secs =
          min_of_n_seconds(reps, [&] { Factorization f(an, a2, nopt); });
      std::printf("%-15s %8d   refactor (perturbed values, 8t, coarsen) "
                  "%10.4f\n",
                  c.name.c_str(), c.a.rows(), secs);
      JsonRecord rec;
      rec.field("bench", "scaling_modern_refactor")
          .field("matrix", c.name)
          .field("n", c.a.rows())
          .field("cores", cores)
          .field("threads", 8)
          .field("wall_seconds", secs);
      json_append(rec);
    }
    // Machine-model scaling (Origin-2000 costs, critical-path list
    // scheduling): the platform-independent record of how this matrix's
    // DAG scales to P processors, for the ORIGINAL task graph and for the
    // coarsened one (subtree fusion at each P's adaptive threshold, group
    // costs/priorities from the coarse graph) -- the artifact's evidence
    // that coarsening preserves the scaling while shrinking the task count.
    const double sim1 = simulated_seconds(an, 1);
    for (int p : {1, 2, 4, 8}) {
      for (int co = 0; co <= 1; ++co) {
        double simp;
        int tasks;
        if (co == 0) {
          simp = simulated_seconds(an, p);
          tasks = an.graph.size();
        } else {
          taskgraph::CoarsenOptions copt;
          copt.threads = p;
          const taskgraph::CoarseGraph cg =
              taskgraph::coarsen_task_graph(an.graph, an.blocks, copt);
          if (!cg.coarsened) continue;
          // A group's shipped payload: outputs of members with at least one
          // consumer OUTSIDE the group (interior edges never leave the
          // processor that runs the fused task).  Still conservative -- the
          // simulator charges the WHOLE payload on every cross-processor
          // edge, where a real consumer fetches only its own slice -- so on
          // message-bound coupled domains the coarse records UNDERSTATE
          // coarsening; shared-memory wall clock (the records above, on a
          // multi-core host) is the ground truth for the real runtime.
          std::vector<double> out_bytes(cg.num_groups, 0.0);
          for (int id = 0; id < an.graph.size(); ++id) {
            const int gid = cg.group_of[id];
            for (int s : an.graph.succ[id]) {
              if (cg.group_of[s] != gid) {
                out_bytes[gid] += an.costs.output_bytes[id];
                break;
              }
            }
          }
          rt::MachineModel m = rt::MachineModel::origin2000(p);
          simp = rt::simulate_dag(cg.succ, cg.indegree, cg.flops, out_bytes,
                                  m, cg.priorities)
                     .makespan;
          tasks = cg.num_groups;
        }
        std::printf("%-15s %8d %3d simulated %8s %10.4f  speedup %5.2f "
                    "(%d tasks)\n",
                    c.name.c_str(), c.a.rows(), p, co ? "coarse" : "fine",
                    simp, sim1 / simp, tasks);
        JsonRecord rec;
        rec.field("bench", "scaling_modern_sim")
            .field("matrix", c.name)
            .field("n", c.a.rows())
            .field("p", p)
            .field("coarsen", co)
            .field("tasks", tasks)
            .field("sim_seconds", simp)
            .field("sim_speedup", sim1 / simp);
        json_append(rec);
      }
    }
  }
}

}  // namespace
}  // namespace plu::bench

int main(int argc, char** argv) {
  plu::bench::strip_json_flag(&argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  plu::bench::run(smoke);
  return 0;
}
