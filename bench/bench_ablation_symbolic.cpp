// Ablation A3: the two static-symbolic engines (bitset words vs sorted
// row-merge).  Same output by construction (cross-validated in tests); this
// bench times them across the suite.
//
// Also here (PR 5): the sequential-vs-parallel ANALYZE ablation -- the full
// symbolic pipeline on 1..8 analysis threads over the seven paper matrices,
// emitted as `ablation_parallel_analysis` records into the --json artifact
// (CI collects BENCH_pr5.json from this binary).  The parallel pipeline is
// bit-identical to the sequential one (tests/test_parallel_analysis.cpp),
// so only the wall clock is interesting.
#include "bench_common.h"

#include <chrono>

#include "graph/transversal.h"
#include "symbolic/static_symbolic.h"

namespace plu::bench {
namespace {

Pattern zero_free(const CscMatrix& a) {
  Pattern p = a.pattern();
  auto rp = graph::zero_free_diagonal_permutation(p);
  return p.permuted(*rp, Permutation(p.cols));
}

void BM_Engine(benchmark::State& state, const std::string& name,
               symbolic::Engine engine) {
  NamedMatrix nm = make_named_matrix(name);
  Pattern p = zero_free(nm.a);
  for (auto _ : state) {
    auto r = symbolic::static_symbolic_factorization(p, engine);
    benchmark::DoNotOptimize(r.abar.nnz());
  }
}

void register_benchmarks() {
  for (const char* name : {"orsreg1", "lns3937", "goodwin", "saylr4"}) {
    for (auto engine : {symbolic::Engine::kBitset, symbolic::Engine::kRowMerge,
                        symbolic::Engine::kParallelBitset}) {
      std::string bname = "BM_Symbolic/" + symbolic::to_string(engine) + "/" + name;
      benchmark::RegisterBenchmark(
          bname.c_str(),
          [name, engine](benchmark::State& s) { BM_Engine(s, name, engine); })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

[[maybe_unused]] const bool registered = (register_benchmarks(), true);

/// Best-of-reps wall clock of one full analyze() run.
double analyze_ms(const CscMatrix& a, const Options& opt, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    Analysis an = analyze(a, opt);
    auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(an.graph.size());
    best = std::min(best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

// The PR 5 ablation: full analysis pipeline, sequential vs 1..8 analysis
// threads, all seven paper matrices.  Speedups on a single-core host are
// ~1.0x (the parallel paths run, the hardware does not oversubscribe); the
// JSON records carry `threads` so multi-core CI can grade the >= 2x target.
void print_analyze_ablation_table() {
  const int kReps = 3;
  std::printf("\nParallel-analysis ablation: full analyze() wall clock, "
              "sequential vs\nanalysis team of 1..8 threads (best of %d reps; "
              "bit-identical results)\n", kReps);
  print_rule(74);
  std::printf("%-10s %12s", "Matrix", "seq ms");
  for (int t = 1; t <= 8; t *= 2) std::printf("   T=%d ms", t);
  std::printf("  speedup\n");
  print_rule(74);
  for (const NamedMatrix& nm : make_benchmark_suite()) {
    Options seq;
    double seq_ms = analyze_ms(nm.a, seq, kReps);
    std::printf("%-10s %12.2f", nm.name.c_str(), seq_ms);
    json_append(JsonRecord()
                    .field("bench", "ablation_parallel_analysis")
                    .field("matrix", nm.name)
                    .field("mode", "sequential")
                    .field("threads", 1)
                    .field("analyze_ms", seq_ms)
                    .field("speedup", 1.0));
    double best_par = 1e300;
    for (int t = 1; t <= 8; t *= 2) {
      Options par;
      par.analysis.parallel_analyze = true;
      par.analysis.threads = t;
      double ms = analyze_ms(nm.a, par, kReps);
      best_par = std::min(best_par, ms);
      std::printf(" %8.2f", ms);
      json_append(JsonRecord()
                      .field("bench", "ablation_parallel_analysis")
                      .field("matrix", nm.name)
                      .field("mode", "parallel")
                      .field("threads", t)
                      .field("analyze_ms", ms)
                      .field("speedup", seq_ms / ms));
    }
    std::printf(" %7.2fx\n", seq_ms / best_par);
  }
  print_rule(74);
}

void print_table() {
  std::printf("\nAblation A3: both engines compute identical patterns; see the\n"
              "BM_Symbolic timings above for the speed comparison (the bitset\n"
              "engine wins by a wide margin once fill is heavy, which is why\n"
              "it is the production default).\n");
  print_analyze_ablation_table();
}

}  // namespace
}  // namespace plu::bench

PLU_BENCH_MAIN(plu::bench::print_table)
