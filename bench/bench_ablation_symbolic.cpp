// Ablation A3: the two static-symbolic engines (bitset words vs sorted
// row-merge).  Same output by construction (cross-validated in tests); this
// bench times them across the suite.
#include "bench_common.h"

#include "graph/transversal.h"
#include "symbolic/static_symbolic.h"

namespace plu::bench {
namespace {

Pattern zero_free(const CscMatrix& a) {
  Pattern p = a.pattern();
  auto rp = graph::zero_free_diagonal_permutation(p);
  return p.permuted(*rp, Permutation(p.cols));
}

void BM_Engine(benchmark::State& state, const std::string& name,
               symbolic::Engine engine) {
  NamedMatrix nm = make_named_matrix(name);
  Pattern p = zero_free(nm.a);
  for (auto _ : state) {
    auto r = symbolic::static_symbolic_factorization(p, engine);
    benchmark::DoNotOptimize(r.abar.nnz());
  }
}

void register_benchmarks() {
  for (const char* name : {"orsreg1", "lns3937", "goodwin", "saylr4"}) {
    for (auto engine : {symbolic::Engine::kBitset, symbolic::Engine::kRowMerge}) {
      std::string bname = "BM_Symbolic/" + symbolic::to_string(engine) + "/" + name;
      benchmark::RegisterBenchmark(
          bname.c_str(),
          [name, engine](benchmark::State& s) { BM_Engine(s, name, engine); })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

[[maybe_unused]] const bool registered = (register_benchmarks(), true);

void print_table() {
  std::printf("\nAblation A3: both engines compute identical patterns; see the\n"
              "BM_Symbolic timings above for the speed comparison (the bitset\n"
              "engine wins by a wide margin once fill is heavy, which is why\n"
              "it is the production default).\n");
}

}  // namespace
}  // namespace plu::bench

PLU_BENCH_MAIN(plu::bench::print_table)
