// Shared helpers for the reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper (see
// DESIGN.md section 4): it prints the paper-formatted table on stdout and,
// where wall-clock timing is meaningful on this one-core host, registers
// google-benchmark timings as well.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/sparse_lu.h"
#include "matrix/named_matrices.h"
#include "runtime/simulator.h"

namespace plu::bench {

// Machine-readable results: every bench binary accepts `--json out.json` (or
// `--json=out.json`) and then APPENDS one JSON object per measurement as a
// JSON-lines record, so several binaries can share one artifact file.  The
// whole emitter -- JsonRecord, json_output_path, strip_json_flag (run before
// google-benchmark sees argv, which would otherwise reject the flag) and
// json_append -- lives in bench_json.h, shared with the binaries that do not
// link google-benchmark; there is exactly ONE escaping/NaN policy.

/// Warmup + min-of-N timing protocol: one untimed warmup run (faults the
/// pages in, fills caches and allocator pools), then `reps` timed runs,
/// returning the MINIMUM wall-clock seconds.  The minimum is the standard
/// noise-resistant statistic for short deterministic kernels on a shared
/// host: every perturbation (scheduler preemption, page fault, turbo
/// transition) only ever ADDS time, so the min is the best estimate of the
/// undisturbed cost.  reps < 1 is clamped to 1.
template <class Fn>
inline double min_of_n_seconds(int reps, Fn&& fn) {
  fn();  // warmup, untimed
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < std::max(1, reps); ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    best = std::min(
        best, std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count());
  }
  return best;
}

/// Analysis + simulated makespan for one matrix/options/processor-count.
inline double simulated_seconds(const Analysis& an, int processors,
                                rt::SchedulePolicy policy =
                                    rt::SchedulePolicy::kCriticalPath) {
  rt::MachineModel m = rt::MachineModel::origin2000(processors);
  return rt::simulate(an.graph, an.costs, m, policy).makespan;
}

/// Cached analyses for the named suite (one pipeline run per matrix/options).
struct SuiteAnalyses {
  std::vector<NamedMatrix> matrices;
  std::vector<Analysis> analyses;
};

inline SuiteAnalyses analyze_suite(const Options& opt) {
  SuiteAnalyses s;
  s.matrices = make_benchmark_suite();
  s.analyses.reserve(s.matrices.size());
  for (const NamedMatrix& nm : s.matrices) {
    s.analyses.push_back(analyze(nm.a, opt));
  }
  return s;
}

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// The Figure 5/6 series: improvement 1 - PT(new)/PT(old) for P = 1..8,
/// against both readings of the S* baseline (see taskgraph/build.h).
inline void print_taskgraph_improvement(const std::vector<std::string>& names) {
  Options newopt;
  newopt.task_graph = taskgraph::GraphKind::kEforest;
  for (auto baseline : {taskgraph::GraphKind::kSStarProgramOrder,
                        taskgraph::GraphKind::kSStar}) {
    Options oldopt;
    oldopt.task_graph = baseline;
    std::printf("baseline: %s\n", taskgraph::to_string(baseline).c_str());
    std::printf("%-10s", "Matrix");
    for (int p = 1; p <= 8; ++p) std::printf("    P=%d ", p);
    std::printf("\n");
    print_rule(10 + 8 * 8);
    for (const std::string& name : names) {
      NamedMatrix nm = make_named_matrix(name);
      Analysis an_new = analyze(nm.a, newopt);
      Analysis an_old = analyze(nm.a, oldopt);
      std::printf("%-10s", name.c_str());
      for (int p = 1; p <= 8; ++p) {
        double tnew = simulated_seconds(an_new, p);
        double told = simulated_seconds(an_old, p);
        std::printf(" %6.1f%%", 100.0 * (1.0 - tnew / told));
      }
      std::printf("\n");
    }
    print_rule(10 + 8 * 8);
    std::printf("\n");
  }
}

/// Runs any registered google-benchmark timings, then the table printer.
/// Usage: PLU_BENCH_MAIN(print_table)
#define PLU_BENCH_MAIN(print_fn)                      \
  int main(int argc, char** argv) {                   \
    ::plu::bench::strip_json_flag(&argc, argv);       \
    ::benchmark::Initialize(&argc, argv);             \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();            \
    print_fn();                                       \
    return 0;                                         \
  }

}  // namespace plu::bench
