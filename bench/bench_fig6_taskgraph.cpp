// Figure 6 of the paper: same improvement series as Figure 5
// (1 - PT(new)/PT(old) vs processor count) for the remaining matrices:
// lns3937, lnsp3937 and saylr4.  See bench_fig5_taskgraph.cpp for the
// two-baseline methodology.
#include "bench_common.h"

namespace plu::bench {
namespace {

void print_figure() {
  std::printf("\nFigure 6: improvement 1 - PT(new)/PT(old) from the eforest "
              "task graph\n\n");
  print_taskgraph_improvement(figure6_names());
  std::printf(
      "Alongside Figure 5 this covers all seven matrices; the paper reports\n"
      "the eforest graph 4%%-31%% faster than the S* graph overall.\n");
}

}  // namespace
}  // namespace plu::bench

PLU_BENCH_MAIN(plu::bench::print_figure)
