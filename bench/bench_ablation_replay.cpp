// Ablation A6: static-schedule replay under cost misestimation (the RAPID
// inspector/executor regime).  Plans a fixed schedule from the estimated
// costs, then replays it with actual task times perturbed by up to
// exp(+-spread); reports the mean realized makespan over several seeds for
// each dependence graph.  Measures how gracefully each graph's schedule
// degrades when reality deviates from the estimates.
#include "bench_common.h"

namespace plu::bench {
namespace {

void print_table() {
  std::printf("\nAblation A6: static-schedule replay under +-35%% cost noise "
              "(P=8, mean of 5 seeds)\n");
  const double spread = 0.3;
  const int seeds = 5;
  print_rule(86);
  std::printf("%-10s %-20s %14s %14s %12s\n", "Matrix", "graph", "planned (s)",
              "realized (s)", "slowdown");
  print_rule(86);
  for (const char* name : {"orsreg1", "lns3937"}) {
    NamedMatrix nm = make_named_matrix(name);
    for (auto kind : {taskgraph::GraphKind::kEforest,
                      taskgraph::GraphKind::kSStarProgramOrder,
                      taskgraph::GraphKind::kSStar}) {
      Options opt;
      opt.task_graph = kind;
      Analysis an = analyze(nm.a, opt);
      rt::MachineModel m = rt::MachineModel::origin2000(8);
      double planned = rt::simulate(an.graph, an.costs, m).makespan;
      rt::StaticSchedule sched = rt::plan_schedule(an.graph, an.costs, m);
      double realized = 0.0;
      for (int s = 1; s <= seeds; ++s) {
        std::vector<double> actual = rt::perturb_costs(an.costs.flops, spread, s);
        realized +=
            rt::replay_schedule(an.graph, an.costs, actual, m, sched).makespan;
      }
      realized /= seeds;
      std::printf("%-10s %-20s %14.3f %14.3f %12.3f\n", name,
                  taskgraph::to_string(kind).c_str(), planned, realized,
                  realized / planned);
    }
  }
  print_rule(86);
}

}  // namespace
}  // namespace plu::bench

PLU_BENCH_MAIN(plu::bench::print_table)
