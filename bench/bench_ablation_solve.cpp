// Ablation A10: the triangular solve phase (step 4 of the paper's scheme).
//
// Reports the forward-solve DAG's structural parallelism (total work over
// weighted critical path) and the simulated scaling on the Origin model and
// on a latency-free machine.  The point this bench documents: triangular
// solves are nearly sequential in weighted terms (the flop-heavy trailing
// supernodes form a chain) and their tiny tasks drown in message latency --
// the classic reason solve-phase parallelization disappoints even when the
// factorization scales.
#include "bench_common.h"

#include "core/parallel_solve.h"

namespace plu::bench {
namespace {

void print_table() {
  std::printf("\nAblation A10: triangular solve phase (forward DAG)\n");
  print_rule(96);
  std::printf("%-10s %10s %12s %14s %14s %14s\n", "Matrix", "tasks",
              "total/cp", "S(4) origin", "S(4) no-lat", "S(8) no-lat");
  print_rule(96);
  for (const char* name : {"orsreg1", "lns3937", "goodwin"}) {
    NamedMatrix nm = make_named_matrix(name);
    Analysis an = analyze(nm.a);
    Factorization f(an, nm.a);
    ParallelSolver ps(f);
    std::vector<double> flops = ps.forward_flops();
    const auto& succ = ps.forward_succ();
    const int nb = static_cast<int>(succ.size());
    // Weighted critical path via Kahn + forward sweep.
    std::vector<int> indeg = ps.forward_indegree();
    std::vector<int> order;
    for (int v = 0; v < nb; ++v) {
      if (indeg[v] == 0) order.push_back(v);
    }
    for (std::size_t h = 0; h < order.size(); ++h) {
      for (int s : succ[order[h]]) {
        if (--indeg[s] == 0) order.push_back(s);
      }
    }
    std::vector<double> dist(nb, 0.0);
    double cp = 0.0, total = 0.0;
    for (int v : order) {
      dist[v] += flops[v];
      cp = std::max(cp, dist[v]);
      total += flops[v];
      for (int s : succ[v]) dist[s] = std::max(dist[s], dist[v]);
    }
    std::vector<double> bytes(nb, 256.0);
    auto makespan = [&](rt::MachineModel m) {
      return rt::simulate_dag(succ, ps.forward_indegree(), flops, bytes, m)
          .makespan;
    };
    rt::MachineModel m1 = rt::MachineModel::origin2000(1);
    rt::MachineModel m4 = rt::MachineModel::origin2000(4);
    rt::MachineModel i1 = m1, i4 = m4, i8 = rt::MachineModel::origin2000(8);
    for (rt::MachineModel* m : {&i1, &i4, &i8}) {
      m->latency_seconds = 0.0;
      m->task_overhead_seconds = 0.0;
      m->bandwidth_bytes_per_second = 1e18;
    }
    std::printf("%-10s %10d %12.2f %14.2f %14.2f %14.2f\n", name, nb, total / cp,
                makespan(m1) / makespan(m4), makespan(i1) / makespan(i4),
                makespan(i1) / makespan(i8));
  }
  print_rule(96);
  std::printf(
      "total/cp bounds any speedup; with real message latency the tiny tasks\n"
      "lose even that (S(4) origin < 1 means slower than serial).  The\n"
      "parallel solver still exists for its shared-memory value (threads\n"
      "share the vector; no messages) -- see core/parallel_solve.h.\n");
}

}  // namespace
}  // namespace plu::bench

PLU_BENCH_MAIN(plu::bench::print_table)
