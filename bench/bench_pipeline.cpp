// Pipelined vs phased end-to-end wall clock (DESIGN.md section 13).
//
// For each matrix and thread count this bench times the full cold
// analyze -> factorize -> solve flow twice:
//
//   phased:     analyze() barrier, then the kThreaded factorization, then
//               solve() -- three fences, no overlap;
//   pipelined:  PipelineDriver::run -- ONE dynamic task graph spanning all
//               three phases.
//
// Matrices: a block-diagonal "forest" (many independent eforest trees, the
// shape Theorem 4 makes embarrassingly overlappable -- every unit's numeric
// tasks release the moment ITS analysis lands), a coupled 3-D grid, and a
// large 2-D grid.  Reported per row: best-of-reps seconds for both paths,
// the speedup, and the pipeline's measured phase overlap.  `--json out`
// appends one record per row (bench_json.h; CI uploads the artifact).
//
// This is a REAL-TIME bench: on a single-core host the overlap buys little
// wall clock (the overlapped work still shares one core) and the honest
// speedup hovers near 1; the overlap_seconds column still shows the phases
// genuinely interleaving.  Run on >= 4 cores for the paper-style numbers.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/driver.h"
#include "core/pipeline.h"
#include "core/sparse_lu.h"
#include "matrix/generators.h"

namespace plu::bench {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<double> make_rhs(int n) {
  std::vector<double> b(n);
  for (int i = 0; i < n; ++i) b[i] = 1.0 + 0.001 * (i % 97);
  return b;
}

struct Case {
  std::string name;
  CscMatrix a;
};

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  // Forest: 12 decoupled convected grids -> >= 12 independent eforest
  // trees; every unit's numeric tasks are ready the moment its own
  // analysis finishes.
  {
    std::vector<CscMatrix> blocks;
    gen::StencilOptions g;
    g.convection = 0.3;
    for (int i = 0; i < 12; ++i) {
      g.seed = 1000 + i;
      blocks.push_back(gen::grid2d(28 + i, 28, g));
    }
    cases.push_back({"forest12", gen::block_diag(blocks)});
  }
  {
    gen::StencilOptions g;
    g.seed = 21;
    g.convection = 0.35;
    cases.push_back({"grid3d-12", gen::grid3d(12, 12, 12, g)});
  }
  {
    gen::StencilOptions g;
    g.seed = 22;
    g.convection = 0.35;
    cases.push_back({"grid2d-80", gen::grid2d(80, 80, g)});
  }
  return cases;
}

struct Timing {
  double seconds = 0.0;
  double overlap = 0.0;  // pipelined only
};

Timing run_phased(const CscMatrix& a, const std::vector<double>& b,
                  int threads) {
  Options aopt;
  NumericOptions nopt;
  nopt.mode = ExecutionMode::kThreaded;
  nopt.threads = threads;
  double t0 = now_seconds();
  SparseLU lu(aopt);
  lu.numeric_options() = nopt;
  lu.factorize(a);
  std::vector<double> x = lu.solve(b);
  Timing t;
  t.seconds = now_seconds() - t0;
  if (x.empty()) std::fprintf(stderr, "phased solve produced no solution\n");
  return t;
}

Timing run_pipelined(const CscMatrix& a, const std::vector<double>& b,
                     int threads) {
  Options aopt;
  NumericOptions nopt;
  nopt.mode = ExecutionMode::kThreaded;
  nopt.threads = threads;
  nopt.pipeline = true;
  double t0 = now_seconds();
  PipelineDriver::Result res = PipelineDriver::run(a, aopt, nopt, &b);
  Timing t;
  t.seconds = now_seconds() - t0;
  t.overlap = res.factorization->pipeline_stats().overlap_seconds;
  if (!res.solve_done) std::fprintf(stderr, "pipelined solve did not run\n");
  return t;
}

void run() {
  const int kReps = 3;
  std::vector<Case> cases = make_cases();
  std::printf("%-10s %6s %3s  %12s %12s %8s %10s\n", "matrix", "n", "P",
              "phased (s)", "pipelined(s)", "speedup", "overlap(s)");
  for (const Case& c : cases) {
    const std::vector<double> b = make_rhs(c.a.rows());
    for (int threads : {1, 2, 4, 8}) {
      Timing phased, pipelined;
      phased.seconds = 1e300;
      pipelined.seconds = 1e300;
      for (int rep = 0; rep < kReps; ++rep) {
        Timing tp = run_phased(c.a, b, threads);
        phased.seconds = std::min(phased.seconds, tp.seconds);
        Timing tq = run_pipelined(c.a, b, threads);
        if (tq.seconds < pipelined.seconds) pipelined = tq;
      }
      double speedup = phased.seconds / pipelined.seconds;
      std::printf("%-10s %6d %3d  %12.4f %12.4f %8.3f %10.4f\n",
                  c.name.c_str(), c.a.rows(), threads, phased.seconds,
                  pipelined.seconds, speedup, pipelined.overlap);
      JsonRecord rec;
      rec.field("bench", "pipeline")
          .field("matrix", c.name)
          .field("n", c.a.rows())
          .field("threads", threads)
          .field("phased_seconds", phased.seconds)
          .field("pipelined_seconds", pipelined.seconds)
          .field("speedup", speedup)
          .field("overlap_seconds", pipelined.overlap);
      json_append(rec);
    }
  }
}

}  // namespace
}  // namespace plu::bench

int main(int argc, char** argv) {
  plu::bench::strip_json_flag(&argc, argv);
  plu::bench::run();
  return 0;
}
