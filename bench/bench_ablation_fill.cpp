// Ablation A7: how tight is the static symbolic factorization?
//
// The paper motivates static symbolic factorization (compute once, cover
// every pivot sequence) against SuperLU's dynamic scheme, and motivates the
// LU eforest against the column elimination tree, whose A^T A bound
// "substantially overestimates the structures of L and U".  This bench
// quantifies both on the suite:
//   actual    = fill of the pivot sequence the factorization really chose,
//   static    = |Abar| (George-Ng),
//   ata bound = Cholesky fill of A^T A (the column-etree bound).
// It also reports the LazyS+ effect: how many Update tasks hit a zero block
// at run time and were elided.
#include "bench_common.h"

#include "core/solve.h"
#include "symbolic/static_symbolic.h"

namespace plu::bench {
namespace {

void print_table() {
  std::printf("\nAblation A7: static overestimation and LazyS+ elision\n");
  print_rule(96);
  std::printf("%-10s %10s %10s %10s %9s %9s %12s\n", "Matrix", "actual",
              "static", "ata-bound", "stat/act", "ata/act", "lazy-skip");
  print_rule(96);
  for (const NamedMatrix& nm : make_benchmark_suite()) {
    Options opt;
    Analysis an = analyze(nm.a, opt);
    NumericOptions nopt;
    nopt.lazy_updates = true;
    Factorization f(an, nm.a, nopt);
    // Fill of the realized pivot sequence: permute the analysis-ordered
    // pattern by the accumulated pivots, then eliminate without pivoting.
    Pattern apre = an.permute_input(nm.a).pattern();
    Permutation piv = Permutation::from_old_positions(pivot_old_of(f));
    Pattern pivoted = apre.permuted(piv, Permutation(an.n));
    long actual = symbolic::no_pivot_fill(pivoted).nnz();
    long stat = an.symbolic.abar.nnz();
    long ata = symbolic::ata_cholesky_bound(apre).nnz();
    long total_updates = an.graph.size() - an.blocks.num_blocks();
    std::printf("%-10s %10ld %10ld %10ld %9.2f %9.2f %6ld/%ld\n",
                nm.name.c_str(), actual, stat, ata,
                static_cast<double>(stat) / actual,
                static_cast<double>(ata) / actual, f.lazy_skipped_updates(),
                total_updates);
  }
  print_rule(96);
  std::printf(
      "static/actual is the price of covering every pivot sequence; the\n"
      "column-etree (A^T A) bound is looser still, which is the paper's\n"
      "argument for building supernodes and task graphs on the LU eforest.\n");
}

}  // namespace
}  // namespace plu::bench

PLU_BENCH_MAIN(plu::bench::print_table)
