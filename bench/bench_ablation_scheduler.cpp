// Ablation A5: scheduler policy and placement model.  Crosses
// {critical-path, FIFO} priorities with {free-schedule, owner-computes}
// placement on both dependence graphs, at P = 8.  Two findings this pins
// down (EXPERIMENTS.md):
//   * under owner-computes every update into a column is serialized on its
//     owner, so the dependence-graph choice is nearly irrelevant there;
//   * under free scheduling, the eforest graph's advantage over the
//     program-order S* baseline survives even the FIFO scheduler.
#include "bench_common.h"

namespace plu::bench {
namespace {

void print_table() {
  std::printf("\nAblation A5: scheduling policy x placement (P=8, simulated "
              "seconds)\n");
  const auto kinds = {taskgraph::GraphKind::kEforest,
                      taskgraph::GraphKind::kSStarProgramOrder,
                      taskgraph::GraphKind::kSStar};
  print_rule(100);
  std::printf("%-10s %-20s %12s %12s %12s %12s\n", "Matrix", "graph", "CP/free",
              "FIFO/free", "CP/owner", "FIFO/owner");
  print_rule(100);
  for (const char* name : {"orsreg1", "goodwin"}) {
    NamedMatrix nm = make_named_matrix(name);
    for (auto kind : kinds) {
      Options opt;
      opt.task_graph = kind;
      Analysis an = analyze(nm.a, opt);
      rt::MachineModel m = rt::MachineModel::origin2000(8);
      auto run = [&](rt::SchedulePolicy pol, rt::MappingPolicy map) {
        return rt::simulate(an.graph, an.costs, m, pol, false, map).makespan;
      };
      std::printf("%-10s %-20s %12.3f %12.3f %12.3f %12.3f\n", name,
                  taskgraph::to_string(kind).c_str(),
                  run(rt::SchedulePolicy::kCriticalPath,
                      rt::MappingPolicy::kFreeSchedule),
                  run(rt::SchedulePolicy::kFifo, rt::MappingPolicy::kFreeSchedule),
                  run(rt::SchedulePolicy::kCriticalPath,
                      rt::MappingPolicy::kOwnerComputes),
                  run(rt::SchedulePolicy::kFifo,
                      rt::MappingPolicy::kOwnerComputes));
    }
  }
  print_rule(100);
}

}  // namespace
}  // namespace plu::bench

PLU_BENCH_MAIN(plu::bench::print_table)
