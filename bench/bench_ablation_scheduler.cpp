// Ablation A5: scheduler policy and placement model.  Crosses
// {critical-path, FIFO} priorities with {free-schedule, owner-computes}
// placement on both dependence graphs, at P = 8.  Two findings this pins
// down (EXPERIMENTS.md):
//   * under owner-computes every update into a column is serialized on its
//     owner, so the dependence-graph choice is nearly irrelevant there;
//   * under free scheduling, the eforest graph's advantage over the
//     program-order S* baseline survives even the FIFO scheduler.
// A second table runs the REAL fuzzed DAG executor (random ready-queue pop
// order) over spin-per-flop task bodies and reports the makespan spread
// across interleavings: how sensitive each graph's makespan is to the
// schedule the runtime happens to pick.
// A third table is the scheduler-implementation ablation this tier exists
// for: the work-stealing runtime (per-worker deques, critical-path steal
// priorities) against the central mutex/condvar queue, wall-clock, on the
// eforest graph's spin-per-flop bodies across thread counts.  With --json
// it appends one record per (matrix, executor, threads) cell.
#include <algorithm>
#include <chrono>
#include <cstdint>

#include "bench_common.h"
#include "runtime/dag_executor.h"

namespace plu::bench {
namespace {

// Wall-clock makespan of one fuzzed execution with task bodies that spin
// proportionally to the task's flop count.
double fuzzed_makespan_ms(const taskgraph::TaskGraph& g,
                          const std::vector<double>& flops, int threads,
                          std::uint64_t seed) {
  // ~1 spin unit per 'scale' flops keeps each run in the few-ms range.
  double max_flops = 1.0;
  for (double f : flops) max_flops = std::max(max_flops, f);
  const double scale = max_flops / 4000.0;
  rt::FuzzOptions fuzz;
  fuzz.seed = seed;
  fuzz.max_delay_us = 0;  // perturb pop order only, not task durations
  auto t0 = std::chrono::steady_clock::now();
  rt::execute_task_graph_fuzzed(g, threads, fuzz, [&](int id) {
    volatile double sink = 0.0;
    const long spins = static_cast<long>(flops[id] / scale) + 1;
    for (long s = 0; s < spins; ++s) sink = sink + static_cast<double>(s);
    (void)sink;
  });
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

// Wall-clock makespan of one NON-fuzzed execution on the selected executor,
// same spin-per-flop bodies as fuzzed_makespan_ms.
double executor_makespan_ms(const taskgraph::TaskGraph& g,
                            const std::vector<double>& flops, int threads,
                            rt::ExecutorKind kind) {
  double max_flops = 1.0;
  for (double f : flops) max_flops = std::max(max_flops, f);
  const double scale = max_flops / 4000.0;
  rt::ExecOptions eopt;
  eopt.kind = kind;
  auto t0 = std::chrono::steady_clock::now();
  rt::execute_task_graph(g, threads, [&](int id) {
    volatile double sink = 0.0;
    const long spins = static_cast<long>(flops[id] / scale) + 1;
    for (long s = 0; s < spins; ++s) sink = sink + static_cast<double>(s);
    (void)sink;
  }, eopt);
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void print_executor_ablation_table() {
  std::printf("\nExecutor ablation: work-stealing vs central queue (real DAG "
              "executor,\neforest graph, spin-per-flop bodies, best of 5 "
              "reps)\n");
  print_rule(74);
  std::printf("%-10s %8s %14s %14s %10s\n", "Matrix", "threads",
              "steal ms", "central ms", "speedup");
  print_rule(74);
  const int kReps = 5;
  for (const char* name : {"orsreg1", "goodwin"}) {
    NamedMatrix nm = make_named_matrix(name);
    Options opt;
    opt.task_graph = taskgraph::GraphKind::kEforest;
    Analysis an = analyze(nm.a, opt);
    double total_flops = 0.0;
    for (double f : an.costs.flops) total_flops += f;
    for (int threads : {1, 2, 4, 8}) {
      double best[2] = {1e300, 1e300};
      const rt::ExecutorKind kinds[2] = {rt::ExecutorKind::kWorkStealing,
                                         rt::ExecutorKind::kCentralQueue};
      for (int rep = 0; rep < kReps; ++rep) {
        for (int e = 0; e < 2; ++e) {
          best[e] = std::min(best[e], executor_makespan_ms(
                                          an.graph, an.costs.flops, threads,
                                          kinds[e]));
        }
      }
      std::printf("%-10s %8d %14.2f %14.2f %9.2fx\n", name, threads, best[0],
                  best[1], best[1] / best[0]);
      for (int e = 0; e < 2; ++e) {
        json_append(JsonRecord()
                        .field("bench", "ablation_scheduler")
                        .field("matrix", name)
                        .field("graph", "eforest")
                        .field("executor", rt::to_string(kinds[e]))
                        .field("threads", threads)
                        .field("makespan_ms", best[e])
                        .field("gflops", total_flops / (best[e] * 1e6)));
      }
    }
  }
  print_rule(74);
}

void print_fuzz_variance_table() {
  std::printf("\nFuzzed-schedule makespan variance (real DAG executor, "
              "spin-per-flop bodies,\n8 threads, 10 seeds; spread = "
              "(max-min)/mean)\n");
  print_rule(84);
  std::printf("%-10s %-20s %10s %10s %10s %9s\n", "Matrix", "graph",
              "min ms", "mean ms", "max ms", "spread");
  print_rule(84);
  for (const char* name : {"orsreg1", "goodwin"}) {
    NamedMatrix nm = make_named_matrix(name);
    for (auto kind : {taskgraph::GraphKind::kEforest,
                      taskgraph::GraphKind::kSStarProgramOrder,
                      taskgraph::GraphKind::kSStar}) {
      Options opt;
      opt.task_graph = kind;
      Analysis an = analyze(nm.a, opt);
      double lo = 1e300, hi = 0.0, sum = 0.0;
      const int kSeeds = 10;
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        double ms = fuzzed_makespan_ms(an.graph, an.costs.flops, 8, seed);
        lo = std::min(lo, ms);
        hi = std::max(hi, ms);
        sum += ms;
      }
      double mean = sum / kSeeds;
      std::printf("%-10s %-20s %10.2f %10.2f %10.2f %8.1f%%\n", name,
                  taskgraph::to_string(kind).c_str(), lo, mean, hi,
                  100.0 * (hi - lo) / mean);
    }
  }
  print_rule(84);
}

void print_table() {
  std::printf("\nAblation A5: scheduling policy x placement (P=8, simulated "
              "seconds)\n");
  const auto kinds = {taskgraph::GraphKind::kEforest,
                      taskgraph::GraphKind::kSStarProgramOrder,
                      taskgraph::GraphKind::kSStar};
  print_rule(100);
  std::printf("%-10s %-20s %12s %12s %12s %12s\n", "Matrix", "graph", "CP/free",
              "FIFO/free", "CP/owner", "FIFO/owner");
  print_rule(100);
  for (const char* name : {"orsreg1", "goodwin"}) {
    NamedMatrix nm = make_named_matrix(name);
    for (auto kind : kinds) {
      Options opt;
      opt.task_graph = kind;
      Analysis an = analyze(nm.a, opt);
      rt::MachineModel m = rt::MachineModel::origin2000(8);
      auto run = [&](rt::SchedulePolicy pol, rt::MappingPolicy map) {
        return rt::simulate(an.graph, an.costs, m, pol, false, map).makespan;
      };
      std::printf("%-10s %-20s %12.3f %12.3f %12.3f %12.3f\n", name,
                  taskgraph::to_string(kind).c_str(),
                  run(rt::SchedulePolicy::kCriticalPath,
                      rt::MappingPolicy::kFreeSchedule),
                  run(rt::SchedulePolicy::kFifo, rt::MappingPolicy::kFreeSchedule),
                  run(rt::SchedulePolicy::kCriticalPath,
                      rt::MappingPolicy::kOwnerComputes),
                  run(rt::SchedulePolicy::kFifo,
                      rt::MappingPolicy::kOwnerComputes));
    }
  }
  print_rule(100);
  print_fuzz_variance_table();
  print_executor_ablation_table();
}

}  // namespace
}  // namespace plu::bench

PLU_BENCH_MAIN(plu::bench::print_table)
