// Ablation A1: the amalgamation knobs.  Sweeps the relaxed-supernode
// parameters (max width, allowed explicit-zero fraction) and reports the
// supernode count, padding added (explicit zeros via stored block doubles),
// total task flops and the simulated P=8 makespan.  This quantifies the
// classic trade: bigger supernodes help BLAS-3 and cut task count, but pad
// the blocks with zeros the kernels then chew through.
#include "bench_common.h"

#include "core/block_storage.h"
#include "symbolic/supernodes.h"

namespace plu::bench {
namespace {

void print_table() {
  std::printf("\nAblation A1: amalgamation sweep (matrix: saylr4)\n");
  NamedMatrix nm = make_named_matrix("saylr4");
  print_rule(96);
  std::printf("%8s %8s | %8s %9s %12s %13s %12s %10s\n", "maxw", "zerofrac",
              "blocks", "avg w", "stored MB", "total Gflop", "P=8 sim s",
              "extra blk");
  print_rule(96);
  for (int maxw : {1, 8, 24, 64}) {
    for (double zf : {0.0, 0.25, 0.5}) {
      if (maxw == 1 && zf > 0.0) continue;  // width 1 ignores the tolerance
      Options opt;
      opt.amalgamate = maxw > 1;
      opt.amalgamation.max_width = maxw;
      opt.amalgamation.max_zero_fraction = zf;
      Analysis an = analyze(nm.a, opt);
      BlockMatrix bm(an.blocks);
      double mb = 8.0 * bm.stored_doubles() / 1e6;
      std::printf("%8d %8.2f | %8d %9.2f %12.1f %13.2f %12.3f %10ld\n", maxw, zf,
                  an.blocks.num_blocks(),
                  symbolic::supernode_stats(an.partition).avg_width, mb,
                  an.costs.total_flops / 1e9, simulated_seconds(an, 8),
                  an.blocks.extra_blocks_from_closure);
    }
  }
  print_rule(96);
  std::printf(
      "maxw=1 is the no-supernode baseline (scalar columns); the paper's\n"
      "regime is small supernodes enlarged by amalgamation.  Note the padding\n"
      "(stored MB, total Gflop) growing with looser tolerances while the\n"
      "simulated time improves until padding flops dominate.\n");
}

}  // namespace
}  // namespace plu::bench

PLU_BENCH_MAIN(plu::bench::print_table)
