// Ablation A8: 1-D vs 2-D task decomposition (the paper's future-work
// direction, later realized as S+ 2.0).  Same block structure, same machine
// model; the 2-D graph splits each Factor into diagonal + per-block L/U
// stages and each Update into per-block gemms, exposing parallelism inside
// a block column.  Reports task counts, critical paths, and simulated
// speedups for P = 1..16.
#include "bench_common.h"

#include <chrono>

#include "taskgraph/analysis.h"
#include "taskgraph/build.h"

namespace plu::bench {
namespace {

void print_table() {
  std::printf("\nAblation A8: 1-D vs 2-D task decomposition\n");
  for (const char* name : {"orsreg1", "goodwin", "lns3937"}) {
    NamedMatrix nm = make_named_matrix(name);
    Analysis an = analyze(nm.a);
    taskgraph::TaskGraph g2 = taskgraph::build_task_graph(
        an.blocks, taskgraph::GraphKind::kEforest, taskgraph::Granularity::kBlock);
    double cp1 = taskgraph::critical_path(an.graph, an.costs.flops).length;
    double cp2 = taskgraph::critical_path(g2, g2.flops).length;
    std::printf("\n%s: 1-D %d tasks (maxpar %.1f) | 2-D %d tasks (maxpar %.1f)\n",
                name, an.graph.size(), an.costs.total_flops / cp1, g2.size(),
                g2.total_flops / cp2);
    std::printf("  %-6s", "P");
    for (int p : {1, 2, 4, 8, 16}) std::printf(" %8d", p);
    std::printf("\n  %-6s", "1-D");
    double base1 = 0.0, base2 = 0.0;
    std::vector<double> bl2 = taskgraph::bottom_levels(g2, g2.flops);
    for (int p : {1, 2, 4, 8, 16}) {
      rt::MachineModel m = rt::MachineModel::origin2000(p);
      double t = rt::simulate(an.graph, an.costs, m).makespan;
      if (p == 1) base1 = t;
      std::printf(" %8.2f", base1 / t);
    }
    std::printf("  (speedup)\n  %-6s", "2-D");
    for (int p : {1, 2, 4, 8, 16}) {
      rt::MachineModel m = rt::MachineModel::origin2000(p);
      double t = rt::simulate_dag(g2.succ, g2.indegree, g2.flops,
                                  g2.output_bytes, m, bl2)
                     .makespan;
      if (p == 1) base2 = t;
      std::printf(" %8.2f", base2 / t);
    }
    std::printf("  (speedup)\n  %-6s", "2-Dgrid");
    // Owner-computes on a pr x pc process grid (the distributed-memory
    // placement of S+ 2.0 / ScaLAPACK).
    double base3 = 0.0;
    struct Grid {
      int p, pr, pc;
    };
    for (Grid gr : {Grid{1, 1, 1}, Grid{2, 1, 2}, Grid{4, 2, 2}, Grid{8, 2, 4},
                    Grid{16, 4, 4}}) {
      rt::MachineModel m = rt::MachineModel::origin2000(gr.p);
      std::vector<int> owners = taskgraph::block_cyclic_owners(g2, gr.pr, gr.pc);
      double t = rt::simulate_dag_pinned(g2.succ, g2.indegree, g2.flops,
                                         g2.output_bytes, m, owners, bl2)
                     .makespan;
      if (gr.p == 1) base3 = t;
      std::printf(" %8.2f", base3 / t);
    }
    std::printf("  (speedup)\n");
  }
  std::printf(
      "\nThe 2-D decomposition keeps scaling where the 1-D one flattens: the\n"
      "trailing dense supernodes stop being single sequential panel tasks.\n"
      "This is the scalability argument behind the paper's future-work item.\n");

  // The 2-D NUMERIC factorization (block-restricted pivoting) on one core:
  // wall clock and accuracy against the 1-D panel-pivoting baseline.
  std::printf("\n2-D numeric factorization (1 core wall clock + accuracy)\n");
  print_rule(86);
  std::printf("%-10s %10s %10s %12s %12s %14s %12s\n", "Matrix", "1-D (s)",
              "2-D (s)", "1-D resid", "2-D resid", "2-D+mc64 res", "2-D minpiv");
  print_rule(86);
  using clock_type = std::chrono::steady_clock;
  for (const char* name : {"orsreg1", "goodwin"}) {
    NamedMatrix nm = make_named_matrix(name);
    Analysis an = analyze(nm.a);
    Options layout2d;
    layout2d.layout = Layout::k2D;
    Analysis an2 = analyze(nm.a, layout2d);
    Options scaled = layout2d;
    scaled.scale_and_permute = true;
    Analysis an_mc64 = analyze(nm.a, scaled);
    std::vector<double> b(nm.a.rows(), 1.0);
    auto t0 = clock_type::now();
    Factorization f1(an, nm.a);
    auto t1 = clock_type::now();
    Factorization f2(an2, nm.a);
    auto t2 = clock_type::now();
    Factorization f3(an_mc64, nm.a);
    std::printf("%-10s %10.3f %10.3f %12.2e %12.2e %14.2e %12.1e\n", name,
                std::chrono::duration<double>(t1 - t0).count(),
                std::chrono::duration<double>(t2 - t1).count(),
                relative_residual(nm.a, f1.solve(b), b),
                relative_residual(nm.a, f2.solve(b), b),
                relative_residual(nm.a, f3.solve(b), b), f2.min_pivot_ratio());
  }
  print_rule(86);
  std::printf(
      "Block-restricted pivoting alone can fail hard (goodwin); pairing it\n"
      "with MC64 max-product scaling -- the standard static-pivoting recipe\n"
      "-- restores factorization-grade accuracy.\n");
}

}  // namespace
}  // namespace plu::bench

PLU_BENCH_MAIN(plu::bench::print_table)
