// Ablation A2 (PR 10 edition): structure-aware blocking auto vs off.
//
// The paper's point about supernodes is that they enable BLAS-3 in the
// numeric factorization; earlier editions of this bench compared blocked
// kernels against the scalar reference.  The structure-aware blocking tier
// (DESIGN.md section 16) goes further: the analysis now builds a per-panel
// tile plan, and the numeric drivers use it to hoist the gemm router's
// density scan, route each tile from MEASURED density, and fuse adjacent
// same-decision tiles into single gemm calls.  This bench measures the full
// numeric factorization wall clock with NumericOptions::blocking = kAuto
// against kOff on every suite matrix at 1 and 4 threads (plus 8 off-smoke),
// and VERIFIES the headline contract inline: the factors of both arms are
// compared column buffer by column buffer with memcmp -- any mismatch is a
// correctness bug, printed loudly and recorded in the JSON artifact.
//
// Every cell appends one JSON-lines record (--json FILE, the BENCH_pr10
// artifact) with the runtime routing counters, so CI can see how many tile
// runs, fused gemms and elided scans the plan actually produced.
//
// Flags: --smoke (small sizes + 1 rep, the CI gate), --json FILE.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "matrix/generators.h"

namespace plu::bench {
namespace {

struct Case {
  std::string name;
  CscMatrix a;
};

std::vector<Case> make_cases(bool smoke) {
  std::vector<Case> cases;
  if (smoke) {
    for (const char* name : {"orsreg1", "lns3937"}) {
      NamedMatrix nm = make_named_matrix(name);
      cases.push_back({nm.name, std::move(nm.a)});
    }
  } else {
    for (NamedMatrix& nm : make_benchmark_suite()) {
      cases.push_back({nm.name, std::move(nm.a)});
    }
  }
  // The generated shapes are the interesting ones for blocking: the
  // multiphysics stencil interleaves dense cliques with sparse coupling
  // blocks (mixed-density panels, the tile splitter's target) and the
  // power-law graph is all tiny supernodes (the DAG-bound merge's target).
  {
    gen::StencilOptions g;
    g.seed = 101;
    cases.push_back({smoke ? "multiphys-864" : "multiphys-3k",
                     smoke ? gen::multiphysics3d(6, 6, 6, 2, g)
                           : gen::multiphysics3d(10, 10, 8, 4, g)});
  }
  {
    const int n = smoke ? 1200 : 4000;
    cases.push_back({smoke ? "powerlaw-1k" : "powerlaw-4k",
                     gen::power_law(n, 4.0, 2.0, 0.6, 0.8, 102)});
  }
  return cases;
}

/// Bitwise factor comparison: status plus a memcmp of every block-column
/// buffer.  The column buffers are contiguous (rows == ld), so one memcmp
/// per column covers every stored double, explicit zeros included.
bool same_factors(const Factorization& x, const Factorization& y) {
  if (x.status() != y.status()) return false;
  if (x.pivot_interchanges() != y.pivot_interchanges()) return false;
  const BlockMatrix& bx = x.blocks();
  const BlockMatrix& by = y.blocks();
  if (bx.num_block_columns() != by.num_block_columns()) return false;
  for (int j = 0; j < bx.num_block_columns(); ++j) {
    const blas::ConstMatrixView cx = bx.column(j);
    const blas::ConstMatrixView cy = by.column(j);
    if (cx.rows != cy.rows || cx.cols != cy.cols) return false;
    const std::size_t bytes =
        sizeof(double) * static_cast<std::size_t>(cx.rows) * cx.cols;
    if (std::memcmp(cx.data, cy.data, bytes) != 0) return false;
  }
  return true;
}

void run(bool smoke) {
  const int reps = smoke ? 1 : 2;
  std::vector<int> thread_counts = {1, 4};
  if (!smoke) thread_counts.push_back(8);

  std::printf("%-14s %8s %8s %12s %12s %8s %9s %6s\n", "matrix", "n",
              "threads", "auto (s)", "off (s)", "speedup", "tile-runs",
              "bitEQ");
  print_rule(84);
  int mismatches = 0;
  for (Case& c : make_cases(smoke)) {
    const Analysis an = analyze(c.a);
    for (int threads : thread_counts) {
      NumericOptions nopt;
      if (threads > 1) {
        nopt.mode = ExecutionMode::kThreaded;
        nopt.threads = threads;
        nopt.coarsen = true;  // exercise the DAG-aware tiny merge too
      }
      auto arm_opts = [&](BlockingMode mode) {
        NumericOptions o = nopt;
        o.blocking = mode;
        return o;
      };
      const double secs_auto = min_of_n_seconds(reps, [&] {
        Factorization f(an, c.a, arm_opts(BlockingMode::kAuto));
      });
      const double secs_off = min_of_n_seconds(reps, [&] {
        Factorization f(an, c.a, arm_opts(BlockingMode::kOff));
      });
      // One final run of each arm, kept alive for the bitwise comparison
      // and the routing counters.
      Factorization fa(an, c.a, arm_opts(BlockingMode::kAuto));
      Factorization fo(an, c.a, arm_opts(BlockingMode::kOff));
      const bool bit_equal = same_factors(fa, fo);
      if (!bit_equal) {
        ++mismatches;
        std::printf("ERROR: %s at %d thread(s): blocking=auto factors "
                    "differ from blocking=off\n",
                    c.name.c_str(), threads);
      }
      const symbolic::BlockingStats& bt = fa.blocking_stats();
      std::printf("%-14s %8d %8d %12.4f %12.4f %8.2f %9ld %6s\n",
                  c.name.c_str(), c.a.rows(), threads, secs_auto, secs_off,
                  secs_off / secs_auto, bt.tile_runs,
                  bit_equal ? "yes" : "NO");
      for (int arm = 0; arm < 2; ++arm) {
        const bool is_auto = arm == 0;
        const symbolic::BlockingStats& s =
            is_auto ? fa.blocking_stats() : fo.blocking_stats();
        JsonRecord rec;
        rec.field("bench", "ablation_kernels")
            .field("matrix", c.name)
            .field("n", c.a.rows())
            .field("nnz", c.a.nnz())
            .field("threads", threads)
            .field("blocking", is_auto ? "auto" : "off")
            .field("seconds", is_auto ? secs_auto : secs_off)
            .field("tile_runs", s.tile_runs)
            .field("gemms_fused", s.gemms_fused)
            .field("routed_packed", s.routed_packed)
            .field("routed_direct", s.routed_direct)
            .field("scans_elided", s.scans_elided)
            .field("bitwise_equal", bit_equal ? 1 : 0)
            .field("reps", reps);
        json_append(rec);
      }
    }
  }
  print_rule(84);
  if (mismatches > 0) {
    std::printf("FAILED: %d blocking arm(s) produced different factors\n",
                mismatches);
    std::exit(1);
  }
  std::printf(
      "blocking=auto routes each tile from measured density with the scan\n"
      "hoisted per update and adjacent same-decision tiles fused into one\n"
      "gemm; factors are verified bitwise identical to blocking=off above.\n");
}

}  // namespace
}  // namespace plu::bench

int main(int argc, char** argv) {
  plu::bench::strip_json_flag(&argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  plu::bench::run(smoke);
  return 0;
}
