// Ablation A2: blocked BLAS-3 kernels vs scalar reference kernels.
// The paper's point about supernodes is that they enable BLAS-2/3 in the
// numeric factorization; this bench measures our own kernels both ways:
//   * google-benchmark micro timings of gemm at supernodal block shapes,
//   * the full numeric factorization wall clock with each kernel arm.
#include "bench_common.h"

#include <chrono>

#include "blas/level3.h"

namespace plu::bench {
namespace {

void BM_GemmShape(benchmark::State& state, bool blocked) {
  const int m = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const int k = static_cast<int>(state.range(2));
  blas::DenseMatrix a(m, k), b(k, n), c(m, n);
  for (int j = 0; j < k; ++j)
    for (int i = 0; i < m; ++i) a(i, j) = 0.01 * (i - j);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < k; ++i) b(i, j) = 0.02 * (i + j);
  for (auto _ : state) {
    if (blocked) {
      blas::gemm(blas::Trans::No, blas::Trans::No, 1.0, a.view(), b.view(), 1.0,
                 c.view());
    } else {
      blas::gemm_reference(blas::Trans::No, blas::Trans::No, 1.0, a.view(),
                           b.view(), 1.0, c.view());
    }
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(blas::gemm_flops(m, n, k)));
}

void register_benchmarks() {
  // Typical supernodal update shapes: tall-skinny panels times small blocks.
  struct Shape {
    int m, n, k;
  };
  for (Shape s : {Shape{64, 8, 8}, Shape{256, 16, 16}, Shape{512, 24, 24}}) {
    for (bool blocked : {true, false}) {
      std::string name = std::string("BM_Gemm/") + (blocked ? "blocked" : "scalar") +
                         "/" + std::to_string(s.m) + "x" + std::to_string(s.n) +
                         "x" + std::to_string(s.k);
      benchmark::RegisterBenchmark(name.c_str(),
                                   [blocked](benchmark::State& st) {
                                     BM_GemmShape(st, blocked);
                                   })
          ->Args({s.m, s.n, s.k})
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

[[maybe_unused]] const bool registered = (register_benchmarks(), true);

void print_table() {
  std::printf("\nAblation A2: numeric factorization with blocked vs scalar "
              "kernels\n");
  print_rule(64);
  std::printf("%-10s %14s %14s %9s\n", "Matrix", "blocked (s)", "scalar (s)",
              "speedup");
  print_rule(64);
  for (const char* name : {"orsreg1", "goodwin", "lns3937"}) {
    NamedMatrix nm = make_named_matrix(name);
    Analysis an = analyze(nm.a);
    double total_flops = 0.0;
    for (double f : an.costs.flops) total_flops += f;
    auto time_arm = [&](bool blocked) {
      blas::set_use_blocked_kernels(blocked);
      auto t0 = std::chrono::steady_clock::now();
      Factorization f(an, nm.a);
      auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(f.zero_pivots());
      return std::chrono::duration<double>(t1 - t0).count();
    };
    double tb = time_arm(true);
    double ts = time_arm(false);
    blas::set_use_blocked_kernels(true);
    std::printf("%-10s %14.3f %14.3f %9.2f\n", name, tb, ts, ts / tb);
    for (int blocked = 0; blocked < 2; ++blocked) {
      double secs = blocked ? tb : ts;
      json_append(JsonRecord()
                      .field("bench", "ablation_kernels")
                      .field("matrix", name)
                      .field("kernel", blocked ? "blocked" : "scalar")
                      .field("threads", 1)
                      .field("seconds", secs)
                      .field("gflops", total_flops / (secs * 1e9)));
    }
  }
  print_rule(64);
}

}  // namespace
}  // namespace plu::bench

PLU_BENCH_MAIN(plu::bench::print_table)
