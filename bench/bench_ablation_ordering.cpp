// Ablation A4 (PR 9 edition): the ordering tier.  The paper uses minimum
// degree on A^T A; this bench contrasts every engine behind the pluggable
// ordering interface -- natural, exact MD, AMD, RCM, nested dissection and
// the feature-driven `auto` policy -- on fill ratio, ordering wall seconds
// (sequential vs parallel team), and the downstream factor time, over the
// paper's Table 1 suite plus the modern multiphysics3d / power_law shapes.
//
// Every cell appends one JSON-lines record (--json FILE, the BENCH_pr9
// artifact); one extra `ordering_policy` record per matrix captures the
// auto policy's decision with the symbolic dry-run fills.  Following the
// honesty rule from bench_scaling_modern: when the host has one core the
// ordering speedup field is emitted as null (non-finite -> null in
// bench_json) -- a one-core "speedup" is timer noise, not data.
//
// Flags: --smoke (small sizes + 1 rep, the CI gate), --json FILE.
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "matrix/generators.h"
#include "ordering/engine.h"
#include "runtime/parallel_for.h"

namespace plu::bench {
namespace {

struct Case {
  std::string name;
  CscMatrix a;
};

std::vector<Case> make_cases(bool smoke) {
  std::vector<Case> cases;
  if (smoke) {
    for (const char* name : {"orsreg1", "lns3937"}) {
      NamedMatrix nm = make_named_matrix(name);
      cases.push_back({nm.name, std::move(nm.a)});
    }
  } else {
    for (NamedMatrix& nm : make_benchmark_suite()) {
      cases.push_back({nm.name, std::move(nm.a)});
    }
  }
  {
    gen::StencilOptions g;
    g.seed = 91;
    cases.push_back({smoke ? "multiphys-864" : "multiphys-3k",
                     smoke ? gen::multiphysics3d(6, 6, 6, 2, g)
                           : gen::multiphysics3d(10, 10, 8, 4, g)});
  }
  {
    const int n = smoke ? 1200 : 4000;
    cases.push_back({smoke ? "powerlaw-1k" : "powerlaw-4k",
                     gen::power_law(n, 4.0, 2.0, 0.6, 0.8, 92)});
  }
  return cases;
}

void run(bool smoke) {
  const int reps = smoke ? 1 : 2;
  const int cores = static_cast<int>(std::thread::hardware_concurrency());
  const int threads = cores > 1 ? cores : 4;  // team lanes for the parallel run
  std::printf("host cores: %d (ordering speedup recorded as null when 1)\n",
              cores);
  std::printf("%-14s %8s %-12s %7s %10s %10s %10s  %s\n", "matrix", "n",
              "method", "fill", "ord-seq(s)", "ord-par(s)", "factor(s)",
              "chosen");
  print_rule(96);
  for (Case& c : make_cases(smoke)) {
    for (auto m : {ordering::Method::kNatural,
                   ordering::Method::kMinimumDegreeAtA,
                   ordering::Method::kAmdAtA, ordering::Method::kRcmAtA,
                   ordering::Method::kNestedDissectionAtA,
                   ordering::Method::kAuto}) {
      // Natural ordering on the larger shapes fills catastrophically (hub
      // columns up front -> near-dense factors); skip LOUDLY, never silently.
      if (m == ordering::Method::kNatural && c.a.cols() > 4096) {
        std::printf("%-14s %8d %-12s  skipped (natural fill blows up past "
                    "n=4096)\n",
                    c.name.c_str(), c.a.rows(), to_string(m).c_str());
        continue;
      }
      // Ordering wall clock, sequential then on a team (only engines whose
      // refresh fans out -- AMD, and MD when the hub guard reroutes --
      // actually use the lanes; identical results either way).
      ordering::Decision dec;
      ordering::Controls seq_ctl;
      const double ord_seq = min_of_n_seconds(reps, [&] {
        ordering::compute_column_ordering(c.a.pattern(), m, seq_ctl, &dec);
      });
      rt::Team team(threads);
      ordering::Controls par_ctl;
      par_ctl.team = &team;
      const double ord_par = min_of_n_seconds(reps, [&] {
        ordering::compute_column_ordering(c.a.pattern(), m, par_ctl, nullptr);
      });
      const double ord_speedup =
          cores > 1 ? ord_seq / ord_par
                    : std::numeric_limits<double>::quiet_NaN();

      Options aopt;
      aopt.ordering = m;
      const Analysis an = analyze(c.a, aopt);
      NumericOptions nopt;
      nopt.mode = ExecutionMode::kThreaded;
      nopt.threads = threads;
      const double factor_secs =
          min_of_n_seconds(reps, [&] { Factorization f(an, c.a, nopt); });

      std::printf("%-14s %8d %-12s %7.1f %10.4f %10.4f %10.4f  %s\n",
                  c.name.c_str(), c.a.rows(), to_string(m).c_str(),
                  an.fill_ratio(), ord_seq, ord_par, factor_secs,
                  to_string(dec.chosen).c_str());
      JsonRecord rec;
      rec.field("bench", "ablation_ordering")
          .field("matrix", c.name)
          .field("n", c.a.rows())
          .field("nnz", c.a.nnz())
          .field("method", to_string(m))
          .field("chosen", to_string(dec.chosen))
          .field("engine", dec.engine)
          .field("fill_ratio", an.fill_ratio())
          .field("ordering_seconds_seq", ord_seq)
          .field("ordering_seconds_par", ord_par)
          .field("ordering_speedup", ord_speedup)
          .field("factor_seconds", factor_secs)
          .field("factor_flops", an.costs.total_flops)
          .field("degree_skew", dec.features.degree_skew)
          .field("bandwidth_ratio", dec.features.bandwidth_ratio)
          .field("density", dec.features.density)
          .field("cores", cores)
          .field("threads", threads)
          .field("reps", reps);
      json_append(rec);
    }
    // The policy record: what `auto` decides for this matrix, with the
    // quick symbolic dry-run comparing the pick against its runner-up.
    ordering::Controls dry_ctl;
    dry_ctl.dry_run = true;
    ordering::Decision dec;
    ordering::compute_column_ordering(c.a.pattern(), ordering::Method::kAuto,
                                      dry_ctl, &dec);
    std::printf("%-14s %8d policy: %s (dry-run fill %ld vs %ld for %s)\n",
                c.name.c_str(), c.a.rows(), to_string(dec.chosen).c_str(),
                dec.dry_run_fill_chosen, dec.dry_run_fill_alternative,
                to_string(ordering::runner_up(dec.chosen)).c_str());
    JsonRecord rec;
    rec.field("bench", "ordering_policy")
        .field("matrix", c.name)
        .field("n", c.a.rows())
        .field("nnz", c.a.nnz())
        .field("chosen", to_string(dec.chosen))
        .field("engine", dec.engine)
        .field("dry_run", 1)
        .field("dry_run_fill_chosen", dec.dry_run_fill_chosen)
        .field("dry_run_fill_alternative", dec.dry_run_fill_alternative)
        .field("degree_skew", dec.features.degree_skew)
        .field("bandwidth_ratio", dec.features.bandwidth_ratio)
        .field("density", dec.features.density)
        .field("max_degree", dec.features.max_degree);
    json_append(rec);
  }
  print_rule(96);
  std::printf(
      "Minimum degree / AMD win fill by an order of magnitude over natural;\n"
      "AMD matches exact MD's fill on meshes and is the only tractable\n"
      "engine on hub-heavy power-law columns, where the auto policy routes\n"
      "to it from the degree-skew feature.\n");
}

}  // namespace
}  // namespace plu::bench

int main(int argc, char** argv) {
  plu::bench::strip_json_flag(&argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  plu::bench::run(smoke);
  return 0;
}
