// Ablation A4: fill-reducing ordering choice.  The paper uses minimum
// degree on A^T A; this bench contrasts it with the natural order and RCM
// on fill, flops, eforest shape (leaf count drives tree parallelism) and
// the simulated P=8 makespan.
#include "bench_common.h"

namespace plu::bench {
namespace {

void print_table() {
  std::printf("\nAblation A4: ordering method (fill ratio | Gflop | eforest "
              "leaves | P=8 sim s)\n");
  print_rule(104);
  std::printf("%-10s", "Matrix");
  for (const char* m : {"natural", "mindeg(AtA)", "rcm(AtA)", "nd(AtA)"}) {
    std::printf(" | %28s", m);
  }
  std::printf("\n");
  print_rule(134);
  for (const char* name : {"orsreg1", "lns3937", "goodwin"}) {
    NamedMatrix nm = make_named_matrix(name);
    std::printf("%-10s", name);
    for (auto method : {ordering::Method::kNatural,
                        ordering::Method::kMinimumDegreeAtA,
                        ordering::Method::kRcmAtA,
                        ordering::Method::kNestedDissectionAtA}) {
      Options opt;
      opt.ordering = method;
      Analysis an = analyze(nm.a, opt);
      int leaves = 0;
      for (int v = 0; v < an.blocks.beforest.size(); ++v) {
        if (an.blocks.beforest.children(v).empty()) ++leaves;
      }
      std::printf(" | %6.1f %6.2f %5d %8.2f", an.fill_ratio(),
                  an.costs.total_flops / 1e9, leaves, simulated_seconds(an, 8));
    }
    std::printf("\n");
  }
  print_rule(104);
  std::printf(
      "Minimum degree (the paper's choice) wins on fill and flops by an order\n"
      "of magnitude over natural ordering; RCM trades a little fill for a\n"
      "flatter profile.\n");
}

}  // namespace
}  // namespace plu::bench

PLU_BENCH_MAIN(plu::bench::print_table)
