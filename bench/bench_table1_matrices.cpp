// Table 1 of the paper: benchmark matrices and their characteristics --
// name, application domain, order, |A|, and the static-symbolic fill ratio
// |Abar| / |A|.
//
// google-benchmark timings: the static symbolic factorization itself (the
// step whose cost the paper contrasts with dynamic symbolic schemes).
#include "bench_common.h"

#include "graph/transversal.h"
#include "symbolic/static_symbolic.h"

namespace plu::bench {
namespace {

Pattern zero_free(const CscMatrix& a) {
  Pattern p = a.pattern();
  auto rp = graph::zero_free_diagonal_permutation(p);
  return p.permuted(*rp, Permutation(p.cols));
}

void BM_StaticSymbolic(benchmark::State& state, const std::string& name) {
  NamedMatrix nm = make_named_matrix(name);
  Pattern p = zero_free(nm.a);
  for (auto _ : state) {
    auto r = symbolic::static_symbolic_factorization(p);
    benchmark::DoNotOptimize(r.abar.nnz());
  }
}

void register_benchmarks() {
  for (const char* name :
       {"sherman3", "sherman5", "lnsp3937", "lns3937", "orsreg1", "saylr4",
        "goodwin"}) {
    benchmark::RegisterBenchmark(("BM_StaticSymbolic/" + std::string(name)).c_str(),
                                 [name](benchmark::State& s) {
                                   BM_StaticSymbolic(s, name);
                                 })
        ->Unit(benchmark::kMillisecond);
  }
}

[[maybe_unused]] const bool registered = (register_benchmarks(), true);

void print_table() {
  Options opt;  // the paper pipeline: mindeg(AtA) + postorder
  std::printf("\nTable 1: benchmark matrices (synthetic stand-ins; see DESIGN.md)\n");
  print_rule(86);
  std::printf("%-10s %-22s %7s %8s %8s %9s %11s\n", "Matrix", "Domain", "order",
              "|A|", "paper n", "paper|A|", "|Abar|/|A|");
  print_rule(86);
  for (const NamedMatrix& nm : make_benchmark_suite()) {
    Analysis an = analyze(nm.a, opt);
    std::printf("%-10s %-22s %7d %8d %8d %9d %11.2f\n", nm.name.c_str(),
                nm.domain.c_str(), nm.a.rows(), nm.a.nnz(), nm.paper_order,
                nm.paper_nnz, an.fill_ratio());
  }
  print_rule(86);
  std::printf(
      "Shape check: oil-reservoir stencils and fluid-flow bands show the\n"
      "order-of-magnitude static fill the S*/S+ line of work reports; the\n"
      "FEM matrix (goodwin class) is denser up front and fills relatively less.\n");
}

}  // namespace
}  // namespace plu::bench

PLU_BENCH_MAIN(plu::bench::print_table)
