// Minimal JSON-lines record builder for the bench binaries.
//
// Split out of bench_common.h (which drags in google-benchmark) so the
// emitter can be unit-tested: CI parses the artifact files these produce,
// so the output must be VALID JSON even for hostile inputs -- matrix names
// containing quotes or backslashes, control characters from a mangled
// title line, and non-finite measurements (a failed run's NaN residual),
// which JSON has no literal for and are emitted as null.
// The --json plumbing (flag stripping, appending records to the artifact
// file) lives here too, so binaries that do NOT link google-benchmark (the
// pipeline bench) share the exact same writer as the bench_common.h suite
// -- one escaping/NaN policy for every artifact CI parses.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

namespace plu::bench {

/// One flat JSON object built field by field; str() renders it.
class JsonRecord {
 public:
  JsonRecord& field(const char* key, const std::string& v) {
    add_key(key);
    body_ += '"';
    for (char c : v) {
      switch (c) {
        case '"':
          body_ += "\\\"";
          break;
        case '\\':
          body_ += "\\\\";
          break;
        case '\b':
          body_ += "\\b";
          break;
        case '\f':
          body_ += "\\f";
          break;
        case '\n':
          body_ += "\\n";
          break;
        case '\r':
          body_ += "\\r";
          break;
        case '\t':
          body_ += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            body_ += buf;
          } else {
            body_ += c;
          }
      }
    }
    body_ += '"';
    return *this;
  }
  JsonRecord& field(const char* key, const char* v) {
    return field(key, std::string(v));
  }
  JsonRecord& field(const char* key, double v) {
    add_key(key);
    if (!std::isfinite(v)) {
      // JSON has no NaN/Infinity literal; "%.6g" would emit one and make
      // the whole line unparseable.
      body_ += "null";
    } else {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.6g", v);
      body_ += buf;
    }
    return *this;
  }
  JsonRecord& field(const char* key, int v) {
    add_key(key);
    body_ += std::to_string(v);
    return *this;
  }
  JsonRecord& field(const char* key, long v) {
    add_key(key);
    body_ += std::to_string(v);
    return *this;
  }
  std::string str() const { return "{" + body_ + "}"; }

 private:
  void add_key(const char* key) {
    if (!body_.empty()) body_ += ", ";
    body_ += '"';
    body_ += key;
    body_ += "\": ";
  }
  std::string body_;
};

/// Path set by --json; empty = JSON output disabled.
inline std::string& json_output_path() {
  static std::string path;
  return path;
}

/// Removes `--json <path>` / `--json=<path>` from argv and records the path.
inline void strip_json_flag(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < *argc) {
      json_output_path() = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_output_path() = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

/// Appends one record to the --json file (no-op when the flag was not given).
inline void json_append(const JsonRecord& rec) {
  if (json_output_path().empty()) return;
  if (FILE* f = std::fopen(json_output_path().c_str(), "a")) {
    std::fprintf(f, "%s\n", rec.str().c_str());
    std::fclose(f);
  }
}

}  // namespace plu::bench
