// Minimal JSON-lines record builder for the bench binaries.
//
// Split out of bench_common.h (which drags in google-benchmark) so the
// emitter can be unit-tested: CI parses the artifact files these produce,
// so the output must be VALID JSON even for hostile inputs -- matrix names
// containing quotes or backslashes, control characters from a mangled
// title line, and non-finite measurements (a failed run's NaN residual),
// which JSON has no literal for and are emitted as null.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

namespace plu::bench {

/// One flat JSON object built field by field; str() renders it.
class JsonRecord {
 public:
  JsonRecord& field(const char* key, const std::string& v) {
    add_key(key);
    body_ += '"';
    for (char c : v) {
      switch (c) {
        case '"':
          body_ += "\\\"";
          break;
        case '\\':
          body_ += "\\\\";
          break;
        case '\b':
          body_ += "\\b";
          break;
        case '\f':
          body_ += "\\f";
          break;
        case '\n':
          body_ += "\\n";
          break;
        case '\r':
          body_ += "\\r";
          break;
        case '\t':
          body_ += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            body_ += buf;
          } else {
            body_ += c;
          }
      }
    }
    body_ += '"';
    return *this;
  }
  JsonRecord& field(const char* key, const char* v) {
    return field(key, std::string(v));
  }
  JsonRecord& field(const char* key, double v) {
    add_key(key);
    if (!std::isfinite(v)) {
      // JSON has no NaN/Infinity literal; "%.6g" would emit one and make
      // the whole line unparseable.
      body_ += "null";
    } else {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.6g", v);
      body_ += buf;
    }
    return *this;
  }
  JsonRecord& field(const char* key, int v) {
    add_key(key);
    body_ += std::to_string(v);
    return *this;
  }
  std::string str() const { return "{" + body_ + "}"; }

 private:
  void add_key(const char* key) {
    if (!body_.empty()) body_ += ", ";
    body_ += '"';
    body_ += key;
    body_ += "\": ";
  }
  std::string body_;
};

}  // namespace plu::bench
