// Table 3 of the paper: effectiveness of postordering -- number of
// supernodes obtained after L/U supernode partitioning + amalgamation,
// without (SN) and with (SNPO) the eforest postorder, their ratio, and
// NoBlks, the number of diagonal blocks of the block-upper-triangular form
// (trees of the eforest).
//
// Paper finding: an average ~20% decrease in supernode count, with an
// exception (sherman5-class matrices, whose lack of structure defeats
// supernode identification either way), and a large NoBlks with small
// leading blocks for the stencil matrices.
#include "bench_common.h"

#include "symbolic/supernodes.h"

namespace plu::bench {
namespace {

void BM_SupernodePartition(benchmark::State& state) {
  NamedMatrix nm = make_named_matrix("saylr4");
  Analysis an = analyze(nm.a);
  for (auto _ : state) {
    auto part = symbolic::find_supernodes(an.symbolic.abar);
    benchmark::DoNotOptimize(part.count());
  }
}
BENCHMARK(BM_SupernodePartition)->Unit(benchmark::kMillisecond);

void print_table() {
  Options with_post, without_post;
  without_post.postorder = false;
  std::printf("\nTable 3: supernode counts without/with postordering\n");
  print_rule(78);
  std::printf("%-10s %8s %8s %9s %8s %10s %10s\n", "Matrix", "SN", "SNPO",
              "SN/SNPO", "NoBlks", "avg w/o", "avg w");
  print_rule(78);
  double ratio_sum = 0.0;
  int count = 0;
  for (const NamedMatrix& nm : make_benchmark_suite()) {
    Analysis plain = analyze(nm.a, without_post);
    Analysis post = analyze(nm.a, with_post);
    int sn = plain.partition.count();
    int snpo = post.partition.count();
    double ratio = snpo > 0 ? static_cast<double>(sn) / snpo : 0.0;
    ratio_sum += ratio;
    ++count;
    std::printf("%-10s %8d %8d %9.3f %8zu %10.2f %10.2f\n", nm.name.c_str(), sn,
                snpo, ratio, post.diag_block_sizes.size(),
                symbolic::supernode_stats(plain.partition).avg_width,
                symbolic::supernode_stats(post.partition).avg_width);
  }
  print_rule(78);
  std::printf("average SN/SNPO = %.3f  (paper: ~1.2x fewer supernodes with "
              "postordering, i.e. ~20%% decrease)\n",
              ratio_sum / count);
  // The paper also observes many small leading diagonal blocks and one big
  // trailing block; print the shape for one representative matrix.
  Analysis rep = analyze(make_named_matrix("orsreg1").a, with_post);
  std::printf("\norsreg1 diagonal-block profile (NoBlks=%zu): ",
              rep.diag_block_sizes.size());
  std::size_t small = 0;
  int largest = 0;
  for (int s : rep.diag_block_sizes) {
    if (s <= 2) ++small;
    largest = std::max(largest, s);
  }
  std::printf("%zu blocks of size <= 2, largest block = %d of %d columns\n",
              small, largest, rep.n);
}

}  // namespace
}  // namespace plu::bench

PLU_BENCH_MAIN(plu::bench::print_table)
