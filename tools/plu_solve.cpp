// plu_solve: command-line direct solver.
//
// Reads a sparse matrix (Matrix Market .mtx or Harwell-Boeing .rua/.rsa),
// runs the paper's analysis + factorization pipeline, solves against a
// right-hand side (from a file of one value per line, or the vector of
// ones), and reports analysis statistics and the residual.
//
// Usage:
//   plu_solve MATRIX [options]
//   plu_solve --generate KIND:SIZE [options]   (grid2d, grid3d, banded,
//                                               fem, circuit, random,
//                                               multiphysics3d, powerlaw)
//     --rhs FILE            right-hand side (default: all ones)
//     --ordering METHOD     auto | md (alias mindeg) | amd | nd | rcm |
//                           natural                            (default md;
//                           auto picks by structural features, decision in
//                           the report)
//     --ordering-dry-run    with --ordering auto: compare the policy pick
//                           against its runner-up by exact Cholesky fill
//     --no-postorder        disable eforest postordering
//     --taskgraph KIND      eforest | sstar | sstar-po         (default eforest)
//     --layout L            1d | 2d numeric layout             (default 1d;
//                           2d = per-block tasks, block-restricted pivoting)
//     --scale               MC64 max-product permutation + scaling
//     --pivot-threshold T   threshold pivoting with diagonal preference
//     --threads N           threaded numeric factorization
//     --pipeline            phase-spanning pipeline: analysis, factorization
//                           and the forward solve run as ONE dynamic task
//                           graph (implies --threads; bit-identical results)
//     --analyze-threads N   parallel symbolic analysis on N threads
//                           (bit-identical to the sequential analysis;
//                           0 = hardware concurrency)
//     --lazy                LazyS+ zero-block elision
//     --coarsen             fuse low-weight task-graph subtrees into single
//                           tasks before threaded execution (bit-identical
//                           results; cuts scheduling overhead on many-tree
//                           matrices)
//     --blocking MODE       auto | off structure-aware blocking (default
//                           auto: the analysis tile plan drives per-tile
//                           gemm routing and run fusion; bit-identical to
//                           off at every thread count)
//     --storage MODE        arena | vectors block storage (default arena:
//                           one contiguous 64-byte-aligned slab)
//     --perturb             static pivot perturbation (SuperLU_DIST-style):
//                           tiny pivots are bumped instead of failing; pair
//                           with --refine to recover accuracy
//     --refine              iterative refinement on the solution
//     --simulate P          also print the simulated makespan on P processors
//     --stats               print extended analysis statistics
//     --verbose             per-phase analysis timing breakdown
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/report.h"
#include "core/solve.h"
#include "core/sparse_lu.h"
#include "matrix/generators.h"
#include "matrix/hb_io.h"
#include "matrix/io.h"
#include "runtime/simulator.h"
#include "runtime/trace.h"
#include "symbolic/supernodes.h"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s MATRIX [--rhs FILE]\n"
               "       [--ordering auto|md|amd|nd|rcm|natural] [--ordering-dry-run]\n"
               "       [--no-postorder] [--taskgraph eforest|sstar|sstar-po]\n"
               "       [--layout 1d|2d] [--scale] [--pivot-threshold T]\n"
               "       [--threads N] [--pipeline] [--analyze-threads N] [--lazy]\n"
               "       [--coarsen] [--blocking auto|off] [--storage arena|vectors]\n"
               "       [--perturb] [--refine] [--simulate P] [--stats]\n"
               "       [--verbose]\n",
               argv0);
  std::exit(2);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

plu::CscMatrix load_matrix(const std::string& path) {
  if (ends_with(path, ".mtx")) return plu::read_matrix_market_file(path);
  if (ends_with(path, ".rua") || ends_with(path, ".rsa") ||
      ends_with(path, ".pua") || ends_with(path, ".psa") ||
      ends_with(path, ".rb") || ends_with(path, ".hb")) {
    plu::HarwellBoeingInfo info;
    plu::CscMatrix a = plu::read_harwell_boeing_file(path, &info);
    std::printf("loaded %s: '%s' (%s)\n", path.c_str(), info.title.c_str(),
                info.type.c_str());
    return a;
  }
  // Sniff the banner.
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  std::string first;
  std::getline(f, first);
  f.close();
  if (first.rfind("%%MatrixMarket", 0) == 0) return plu::read_matrix_market_file(path);
  return plu::read_harwell_boeing_file(path);
}

plu::CscMatrix generate_matrix(const std::string& spec) {
  std::size_t colon = spec.find(':');
  std::string kind = spec.substr(0, colon);
  int size = colon == std::string::npos ? 20 : std::stoi(spec.substr(colon + 1));
  if (kind == "grid2d") return plu::gen::grid2d(size, size, {0.4, 0.0, 0.7, 1});
  if (kind == "grid3d") return plu::gen::grid3d(size, size, size, {0.4, 0.0, 0.7, 2});
  if (kind == "banded") {
    return plu::gen::banded(size * size, {-size, -size + 1, -1, 1, size - 1, size},
                            0.7, 0.6, 3);
  }
  if (kind == "fem") return plu::gen::fem_p2(size, size, 1, 4);
  if (kind == "circuit") return plu::gen::circuit(size * size, 3, 2.0, 5);
  if (kind == "random") return plu::gen::random_sparse(size * size, 3.0, 0.5, 0.7, 6);
  if (kind == "multiphysics3d") {
    return plu::gen::multiphysics3d(size, size, size, 4, {0.4, 0.0, 0.7, 7});
  }
  if (kind == "powerlaw") {
    return plu::gen::power_law(size * size, 4.0, 2.0, 0.6, 0.8, 8);
  }
  throw std::runtime_error("unknown generator kind: " + kind);
}

std::vector<double> load_rhs(const std::string& path, int n) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open rhs " + path);
  std::vector<double> b;
  double v;
  while (f >> v) b.push_back(v);
  if (static_cast<int>(b.size()) != n) {
    throw std::runtime_error("rhs has " + std::to_string(b.size()) +
                             " entries, matrix order is " + std::to_string(n));
  }
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  std::string matrix_path;
  std::string generate_spec;
  std::string rhs_path;
  plu::Options opt;
  plu::NumericOptions nopt;
  bool refine = false;
  bool stats = false;
  bool verbose = false;
  int simulate_p = 0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--generate") {
      generate_spec = next();
    } else if (arg == "--rhs") {
      rhs_path = next();
    } else if (arg == "--ordering") {
      if (!plu::ordering::parse_method(next(), &opt.ordering)) usage(argv[0]);
    } else if (arg == "--ordering-dry-run") {
      opt.ordering_dry_run = true;
    } else if (arg == "--no-postorder") {
      opt.postorder = false;
    } else if (arg == "--taskgraph") {
      std::string k = next();
      if (k == "eforest") opt.task_graph = plu::taskgraph::GraphKind::kEforest;
      else if (k == "sstar") opt.task_graph = plu::taskgraph::GraphKind::kSStar;
      else if (k == "sstar-po")
        opt.task_graph = plu::taskgraph::GraphKind::kSStarProgramOrder;
      else usage(argv[0]);
    } else if (arg == "--layout") {
      std::string l = next();
      if (l == "1d") opt.layout = plu::Layout::k1D;
      else if (l == "2d") opt.layout = plu::Layout::k2D;
      else usage(argv[0]);
    } else if (arg == "--scale") {
      opt.scale_and_permute = true;
    } else if (arg == "--pivot-threshold") {
      nopt.pivot_threshold = std::stod(next());
    } else if (arg == "--threads") {
      nopt.threads = std::stoi(next());
      nopt.mode = plu::ExecutionMode::kThreaded;
    } else if (arg == "--pipeline") {
      nopt.pipeline = true;
      nopt.mode = plu::ExecutionMode::kThreaded;
    } else if (arg == "--analyze-threads") {
      opt.analysis.parallel_analyze = true;
      opt.analysis.threads = std::stoi(next());
    } else if (arg == "--lazy") {
      nopt.lazy_updates = true;
    } else if (arg == "--coarsen") {
      nopt.coarsen = true;
    } else if (arg == "--blocking") {
      std::string m = next();
      if (m == "auto") nopt.blocking = plu::BlockingMode::kAuto;
      else if (m == "off") nopt.blocking = plu::BlockingMode::kOff;
      else usage(argv[0]);
    } else if (arg == "--storage") {
      std::string s = next();
      if (s == "arena") nopt.storage = plu::StorageMode::kArena;
      else if (s == "vectors") nopt.storage = plu::StorageMode::kVectors;
      else usage(argv[0]);
    } else if (arg == "--perturb") {
      nopt.perturb_pivots = true;
    } else if (arg == "--refine") {
      refine = true;
    } else if (arg == "--simulate") {
      simulate_p = std::stoi(next());
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
    } else if (matrix_path.empty()) {
      matrix_path = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (matrix_path.empty() && generate_spec.empty()) usage(argv[0]);

  try {
    plu::CscMatrix a = generate_spec.empty() ? load_matrix(matrix_path)
                                             : generate_matrix(generate_spec);
    std::printf("matrix: %s\n", plu::describe(a).c_str());
    std::vector<double> b = rhs_path.empty() ? std::vector<double>(a.rows(), 1.0)
                                             : load_rhs(rhs_path, a.rows());

    plu::SparseLU lu(opt);
    lu.numeric_options() = nopt;
    // The pipelined path overlaps the forward solve with factorization, so
    // factor and solve together when it might run; x is bitwise the same.
    std::vector<double> pipelined_x;
    if (nopt.pipeline && !refine) {
      pipelined_x = lu.factorize_and_solve(a, b);
    } else {
      lu.factorize(a);
    }
    const plu::Analysis& an = lu.analysis();

    std::printf("analysis: fill=%.2fx, %d supernodes, %d tasks, %zu diagonal "
                "blocks%s\n",
                an.fill_ratio(), an.blocks.num_blocks(), an.graph.size(),
                an.diag_block_sizes.size(), an.scaled() ? ", MC64-scaled" : "");
    if (verbose) {
      std::printf("%s\n", plu::to_string(an.timings).c_str());
    }
    const plu::Factorization& f = lu.factorization();
    if (!plu::factor_usable(f.status())) {
      // One line, machine-greppable: what failed and where.  No solution is
      // printed -- the factors are not usable (core/status.h).
      std::fprintf(stderr, "error: factorization failed: %s at column %d\n",
                   plu::to_string(f.status()), f.failed_column());
      if (f.status() == plu::FactorStatus::kSingular) {
        std::fprintf(stderr,
                     "hint: retry with --perturb --refine to factor a nearby "
                     "nonsingular matrix and recover accuracy\n");
      }
      return 3;
    }
    std::printf("numeric: %s driver, %ld row interchanges", f.driver_name(),
                f.pivot_interchanges());
    if (nopt.lazy_updates) {
      std::printf(", %ld lazy-skipped updates", f.lazy_skipped_updates());
    }
    if (f.layout() == plu::Layout::k2D) {
      std::printf(", min pivot ratio %.1e", f.min_pivot_ratio());
    }
    std::printf("\n");
    if (f.coarsen_stats().ran) {
      const plu::taskgraph::CoarsenStats& cs = f.coarsen_stats();
      std::printf("coarsening: %d -> %d tasks, %ld -> %ld edges, %d fused "
                  "group(s) absorbing %ld task(s)\n",
                  cs.tasks_before, cs.tasks_after, cs.edges_before,
                  cs.edges_after, cs.fused_groups, cs.fused_tasks);
    }
    if (f.blocking_stats().ran) {
      const plu::symbolic::BlockingStats& bt = f.blocking_stats();
      std::printf("blocking: %ld tile run(s), %ld gemm(s) fused, routed "
                  "%ld packed / %ld direct, %ld scan(s) elided\n",
                  bt.tile_runs, bt.gemms_fused, bt.routed_packed,
                  bt.routed_direct, bt.scans_elided);
    }
    std::printf("storage: %s, %.1f MB peak\n",
                plu::to_string(f.blocks().storage_mode()),
                f.blocks().storage_bytes() / 1e6);
    if (f.pipeline_stats().ran) {
      const plu::PipelineStats& ps = f.pipeline_stats();
      std::printf("pipeline: total %.3fs, walls analyze %.3fs + factor %.3fs "
                  "+ solve %.3fs, overlap %.3fs\n",
                  ps.total_seconds, ps.analyze_seconds, ps.factor_seconds,
                  ps.solve_seconds, ps.overlap_seconds);
    }
    if (f.status() == plu::FactorStatus::kPerturbed) {
      std::printf("perturbed: %zu pivot(s) bumped to %.3e (growth %.3e); "
                  "%s\n",
                  f.perturbed_columns().size(), f.perturbation_magnitude(),
                  f.growth_factor(),
                  refine ? "refining" : "consider --refine");
    }

    std::vector<double> x;
    if (refine) {
      plu::RefineResult r = lu.solve_refined(b);
      x = std::move(r.x);
      std::printf("refinement: %d iteration(s), backward error %.3e\n",
                  r.iterations, r.backward_error);
    } else if (!pipelined_x.empty()) {
      x = std::move(pipelined_x);
    } else {
      x = lu.solve(b);
    }
    std::printf("relative residual: %.3e\n", plu::relative_residual(a, x, b));

    if (stats) {
      std::printf("%s\n%s\n", plu::to_string(plu::report(an)).c_str(),
                  plu::to_string(plu::report(f)).c_str());
      plu::ConditionEstimate c = plu::estimate_condition(f, a);
      std::printf("cond_1 estimate: %.3e (||A||=%.3e, ||A^-1||~%.3e)\n", c.cond1,
                  c.norm_a, c.norm_ainv);
      std::printf("pivot growth: %.3e\n", plu::pivot_growth(f, a));
      plu::Determinant det = plu::determinant(f);
      std::printf("log|det| = %.6e, sign %+d\n", det.log_abs, det.sign);
    }

    if (simulate_p > 0) {
      plu::rt::MachineModel m = plu::rt::MachineModel::origin2000(simulate_p);
      plu::rt::SimulationResult r =
          plu::rt::simulate(an.graph, an.costs, m, plu::rt::SchedulePolicy::kCriticalPath,
                            true);
      std::printf("simulated on %d processors: %.3f s (serial %.3f s)\n%s\n",
                  simulate_p, r.makespan,
                  plu::rt::simulated_serial_seconds(an.costs, m),
                  plu::rt::utilization_summary(r).c_str());
    }
    return f.singular() ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
