#!/usr/bin/env sh
# Build and run the concurrency-correctness test tier under ThreadSanitizer
# and AddressSanitizer (the `sanitize` ctest label: thread pool, DAG
# executors, fuzzed schedules, race harness, threaded factorization).
#
#   tools/run_sanitizers.sh [thread|address|undefined|address+undefined ...]
#
# With no arguments runs thread and address+undefined (matching CI).  Each
# sanitizer gets its own build tree (build-tsan, build-asan, build-ubsan)
# next to the source root.
# Exit status is non-zero if any configure, build, or test step fails.
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
sanitizers=${*:-"thread address+undefined"}
jobs=$(nproc 2>/dev/null || echo 2)
status=0

for san in $sanitizers; do
  case "$san" in
    thread)            build="$root/build-tsan" ;;
    address)           build="$root/build-asan" ;;
    undefined)         build="$root/build-ubsan" ;;
    address+undefined) build="$root/build-asan" ;;
    *) echo "run_sanitizers.sh: unknown sanitizer '$san'" >&2; exit 2 ;;
  esac

  echo "==> [$san] configure: $build"
  cmake -B "$build" -S "$root" -G Ninja -DPLU_SANITIZE="$san" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null

  echo "==> [$san] build"
  cmake --build "$build" -j "$jobs"

  # Fixed fuzz seeds via GTest's --gtest_random_seed do not apply here; the
  # harness tests iterate their own deterministic seed ranges, so a plain
  # labeled ctest run is reproducible.
  echo "==> [$san] ctest -L sanitize"
  if ! ctest --test-dir "$build" -L sanitize --output-on-failure -j "$jobs"; then
    echo "==> [$san] FAILED" >&2
    status=1
  else
    echo "==> [$san] OK"
  fi
done

exit $status
