// Quickstart: build a sparse matrix, factor it with the paper's pipeline,
// solve, and inspect what the analysis produced.
//
//   $ ./example_quickstart
#include <cstdio>
#include <vector>

#include "core/sparse_lu.h"
#include "matrix/generators.h"

int main() {
  // A 30x30 convection-diffusion operator on a 2-D grid (900 unknowns).
  plu::gen::StencilOptions stencil;
  stencil.convection = 0.5;
  stencil.seed = 42;
  plu::CscMatrix a = plu::gen::grid2d(30, 30, stencil);
  std::printf("matrix: %s\n", plu::describe(a).c_str());

  // Default options = the paper's method: minimum degree on A^T A, static
  // symbolic factorization, eforest postordering, supernode amalgamation,
  // the eforest task dependence graph.
  plu::SparseLU lu;
  lu.factorize(a);

  const plu::Analysis& an = lu.analysis();
  std::printf("analysis: fill |Abar|/|A| = %.2f, %d supernodes, %d tasks, "
              "%zu diagonal blocks\n",
              an.fill_ratio(), an.blocks.num_blocks(), an.graph.size(),
              an.diag_block_sizes.size());

  // Solve A x = b for a manufactured right-hand side.
  std::vector<double> x_true(a.rows());
  for (int i = 0; i < a.rows(); ++i) x_true[i] = 1.0 + 0.001 * i;
  std::vector<double> b;
  a.matvec(x_true, b);

  std::vector<double> x = lu.solve(b);
  std::printf("relative residual: %.2e\n", plu::relative_residual(a, x, b));

  double max_err = 0.0;
  for (int i = 0; i < a.rows(); ++i) {
    max_err = std::max(max_err, std::abs(x[i] - x_true[i]));
  }
  std::printf("max forward error vs manufactured solution: %.2e\n", max_err);
  return 0;
}
