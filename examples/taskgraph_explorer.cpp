// Task-graph explorer: generate a matrix from the command line, run the
// analysis, and study how the dependence-graph choice plays out on the
// simulated machine across processor counts.
//
//   $ ./example_taskgraph_explorer [grid2d|grid3d|banded|fem|random] [size]
//                                  [--out DIR]
//
// Prints per-graph statistics (edges, critical path, max parallelism), a
// speedup table for P = 1..8, and the improvement series of Figures 5-6.
// The schedule trace CSV lands in the build directory unless --out says
// otherwise.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/analysis.h"
#include "matrix/generators.h"
#include "runtime/simulator.h"
#include "runtime/trace.h"
#include "taskgraph/analysis.h"

namespace {

plu::CscMatrix make(const std::string& kind, int size) {
  if (kind == "grid2d") return plu::gen::grid2d(size, size, {0.4, 0.0, 0.7, 11});
  if (kind == "grid3d") return plu::gen::grid3d(size, size, size, {0.4, 0.0, 0.7, 12});
  if (kind == "banded") {
    return plu::gen::banded(size * size, {-size, -size + 1, -1, 1, size - 1, size},
                            0.7, 0.6, 13);
  }
  if (kind == "fem") return plu::gen::fem_p2(size, size, 1, 14);
  if (kind == "random") return plu::gen::random_sparse(size * size, 3.0, 0.5, 0.7, 15);
  std::fprintf(stderr, "unknown matrix kind '%s'\n", kind.c_str());
  std::exit(1);
}

std::string artifact_dir(int& argc, char** argv) {
#ifdef PLU_ARTIFACT_DIR
  std::string dir = PLU_ARTIFACT_DIR;
#else
  std::string dir = ".";
#endif
  // Strip a trailing "--out DIR" so the positional arguments stay simple.
  if (argc >= 3 && std::strcmp(argv[argc - 2], "--out") == 0) {
    dir = argv[argc - 1];
    argc -= 2;
  }
  return dir;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = artifact_dir(argc, argv);
  std::string kind = argc > 1 ? argv[1] : "grid2d";
  int size = argc > 2 ? std::atoi(argv[2]) : 20;
  plu::CscMatrix a = make(kind, size);
  std::printf("%s(%d): %s\n\n", kind.c_str(), size, plu::describe(a).c_str());

  const auto kinds = {plu::taskgraph::GraphKind::kEforest,
                      plu::taskgraph::GraphKind::kSStar,
                      plu::taskgraph::GraphKind::kSStarProgramOrder};
  std::vector<plu::Analysis> analyses;
  for (auto g : kinds) {
    plu::Options opt;
    opt.task_graph = g;
    analyses.push_back(plu::analyze(a, opt));
  }

  std::printf("%-22s %8s %10s %14s %10s\n", "graph", "tasks", "edges",
              "crit.path(GF)", "max par");
  for (const plu::Analysis& an : analyses) {
    plu::taskgraph::GraphStats st = plu::taskgraph::graph_stats(an.graph, an.costs);
    std::printf("%-22s %8d %10ld %14.3f %10.2f\n",
                plu::taskgraph::to_string(an.graph.kind).c_str(), st.tasks,
                st.edges, st.critical_path_flops / 1e9, st.max_parallelism());
  }

  std::printf("\nsimulated speedup over P=1 (critical-path list scheduling)\n");
  std::printf("%-22s", "graph");
  for (int p = 1; p <= 8; ++p) std::printf("   P=%d ", p);
  std::printf("\n");
  for (const plu::Analysis& an : analyses) {
    plu::rt::MachineModel m1 = plu::rt::MachineModel::origin2000(1);
    double t1 = plu::rt::simulate(an.graph, an.costs, m1).makespan;
    std::printf("%-22s", plu::taskgraph::to_string(an.graph.kind).c_str());
    for (int p = 1; p <= 8; ++p) {
      plu::rt::MachineModel m = plu::rt::MachineModel::origin2000(p);
      double tp = plu::rt::simulate(an.graph, an.costs, m).makespan;
      std::printf(" %6.2f", t1 / tp);
    }
    std::printf("\n");
  }

  std::printf("\nimprovement of eforest over each baseline (Figures 5-6 "
              "series)\n");
  for (std::size_t base : {1u, 2u}) {
    std::printf("%-22s", plu::taskgraph::to_string(analyses[base].graph.kind).c_str());
    for (int p = 1; p <= 8; ++p) {
      plu::rt::MachineModel m = plu::rt::MachineModel::origin2000(p);
      double tn = plu::rt::simulate(analyses[0].graph, analyses[0].costs, m).makespan;
      double to = plu::rt::simulate(analyses[base].graph, analyses[base].costs, m).makespan;
      std::printf(" %5.1f%%", 100.0 * (1.0 - tn / to));
    }
    std::printf("\n");
  }

  // Schedule visualization for the eforest graph on 4 processors.
  {
    plu::rt::MachineModel m = plu::rt::MachineModel::origin2000(4);
    plu::rt::SimulationResult r =
        plu::rt::simulate(analyses[0].graph, analyses[0].costs, m,
                          plu::rt::SchedulePolicy::kCriticalPath, true);
    std::printf("\neforest schedule on 4 processors (Gantt, one glyph per "
                "task):\n");
    plu::rt::GanttOptions gopt;
    gopt.width = 96;
    std::ostringstream gantt;
    plu::rt::write_ascii_gantt(gantt, r, gopt);
    std::fputs(gantt.str().c_str(), stdout);
    std::printf("%s\n", plu::rt::utilization_summary(r).c_str());
    std::string fname = out_dir + "/taskgraph_trace.csv";
    std::ofstream csv(fname);
    plu::rt::write_trace_csv(csv, r, &analyses[0].graph.tasks);
    std::printf("trace written: %s\n", fname.c_str());
  }
  return 0;
}
