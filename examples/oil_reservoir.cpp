// Oil-reservoir scenario (the application domain of four of the paper's
// seven matrices): an implicit time-stepping loop on a 3-D reservoir
// stencil.  The sparsity pattern is fixed across steps, so the symbolic
// analysis -- the expensive static part -- is done ONCE and every step only
// refactorizes the new values and solves.  Iterative refinement guards the
// accuracy of each step.
//
//   $ ./example_oil_reservoir
#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "core/sparse_lu.h"
#include "matrix/generators.h"

using clock_type = std::chrono::steady_clock;

int main() {
  // A small reservoir: 18 x 18 x 6 cells.
  plu::gen::StencilOptions stencil;
  stencil.convection = 0.3;
  stencil.seed = 7;
  plu::CscMatrix a = plu::gen::grid3d(18, 18, 6, stencil);
  const int n = a.rows();
  std::printf("reservoir system: %s\n", plu::describe(a).c_str());

  plu::SparseLU lu;
  auto t0 = clock_type::now();
  lu.analyze(a);
  auto t1 = clock_type::now();
  std::printf("one-time analysis: %.1f ms (fill %.1fx, %d supernodes)\n",
              std::chrono::duration<double, std::milli>(t1 - t0).count(),
              lu.analysis().fill_ratio(), lu.analysis().blocks.num_blocks());

  // Pressure state and a pseudo-physical update of the coefficients each
  // step (mobility changes as the front moves).
  std::vector<double> pressure(n, 1.0);
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> drift(0.97, 1.03);

  const int steps = 5;
  double factor_ms = 0.0, solve_ms = 0.0;
  for (int step = 0; step < steps; ++step) {
    // Perturb the coefficients in place: same pattern, new values.
    for (double& v : a.values()) v *= drift(rng);

    auto f0 = clock_type::now();
    lu.factorize(a);  // reuses the cached analysis
    auto f1 = clock_type::now();
    factor_ms += std::chrono::duration<double, std::milli>(f1 - f0).count();

    // Right-hand side from the previous pressure (implicit Euler flavor).
    std::vector<double> b;
    a.matvec(pressure, b);
    for (int i = 0; i < n; ++i) b[i] += 0.1;

    auto s0 = clock_type::now();
    plu::RefineResult r = lu.solve_refined(b);
    auto s1 = clock_type::now();
    solve_ms += std::chrono::duration<double, std::milli>(s1 - s0).count();

    pressure = r.x;
    std::printf("step %d: residual %.2e after %d refinement iteration(s)\n",
                step, r.residual_history.back(), r.iterations);
  }
  std::printf("totals over %d steps: factorization %.1f ms, solve %.1f ms\n",
              steps, factor_ms, solve_ms);
  return 0;
}
