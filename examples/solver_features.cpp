// Tour of the solver features beyond plain factorize/solve: transpose
// solves, condition estimation, LazyS+ zero-block elision, parallel
// triangular solves, and the 2-D factorization with restricted pivoting.
//
//   $ ./example_solver_features
#include <cstdio>
#include <vector>

#include "core/parallel_solve.h"
#include "core/solve.h"
#include "core/sparse_lu.h"
#include "matrix/generators.h"

int main() {
  plu::CscMatrix a = plu::gen::grid3d(8, 8, 5, {0.35, 0.0, 0.7, 21});
  std::printf("system: %s\n\n", plu::describe(a).c_str());
  std::vector<double> b(a.rows());
  for (int i = 0; i < a.rows(); ++i) b[i] = 1.0 + (i % 7) * 0.25;

  plu::SparseLU lu;
  lu.factorize(a);

  // Plain, transpose, and parallel solves.
  std::vector<double> x = lu.solve(b);
  std::printf("solve           residual %.2e\n", plu::relative_residual(a, x, b));
  std::vector<double> xt = lu.solve_transpose(b);
  {
    std::vector<double> r;
    a.matvec_transpose(xt, r);
    double err = 0;
    for (std::size_t i = 0; i < r.size(); ++i)
      err = std::max(err, std::abs(r[i] - b[i]));
    std::printf("solve_transpose residual %.2e\n", err);
  }
  std::vector<double> xp = lu.solve_parallel(b, 4);
  std::printf("solve_parallel  residual %.2e (4 threads)\n",
              plu::relative_residual(a, xp, b));

  // Condition estimate from the factored inverse.
  plu::ConditionEstimate cond = plu::estimate_condition(lu.factorization(), a);
  std::printf("condition:      ||A||_1 = %.3e, est ||A^-1||_1 = %.3e, "
              "cond_1 ~ %.3e\n",
              cond.norm_a, cond.norm_ainv, cond.cond1);

  // LazyS+ elision.
  plu::SparseLU lazy;
  lazy.numeric_options().lazy_updates = true;
  lazy.factorize(a);
  long total_updates =
      lazy.analysis().graph.size() - lazy.analysis().blocks.num_blocks();
  std::printf("LazyS+:         %ld of %ld updates hit a zero block and were "
              "skipped\n",
              lazy.factorization().lazy_skipped_updates(), total_updates);

  // 2-D layout (block-restricted pivoting) through the same facade: flip
  // Options::layout and everything -- factorize, solves, refinement --
  // routes through the 2-d-block driver.
  plu::SparseLU lu2d;
  lu2d.options().layout = plu::Layout::k2D;
  lu2d.numeric_options().mode = plu::ExecutionMode::kThreaded;
  lu2d.numeric_options().threads = 4;
  lu2d.factorize(a);
  const plu::Factorization& f2 = lu2d.factorization();
  std::vector<double> x2 = lu2d.solve(b);
  std::printf("2-D factorize:  residual %.2e, min pivot ratio %.1e, %d tasks "
              "(%s driver)\n",
              plu::relative_residual(a, x2, b), f2.min_pivot_ratio(),
              f2.task_graph().size(), f2.driver_name());
  return 0;
}
