// Fluid-flow scenario (the lns3937/goodwin application domain): solve a
// linearized flow operator and compare the paper's design choices side by
// side -- ordering, postordering, and the task dependence graph -- on the
// same system, reporting fill, task counts and the simulated 8-processor
// time for each configuration.
//
//   $ ./example_fluid_flow
#include <cstdio>
#include <vector>

#include "core/sparse_lu.h"
#include "matrix/generators.h"
#include "runtime/simulator.h"

namespace {

double p8_seconds(const plu::Analysis& an) {
  plu::rt::MachineModel m = plu::rt::MachineModel::origin2000(8);
  return plu::rt::simulate(an.graph, an.costs, m).makespan;
}

void report(const char* label, const plu::CscMatrix& a, const plu::Options& opt) {
  plu::Analysis an = plu::analyze(a, opt);
  std::printf("%-34s fill=%6.1f  blocks=%5d  tasks=%6d  P8 sim=%7.3fs\n", label,
              an.fill_ratio(), an.blocks.num_blocks(), an.graph.size(),
              p8_seconds(an));
}

}  // namespace

int main() {
  // A 1500-unknown linearized flow operator: tridiagonal coupling plus
  // grid-width bands, structurally unsymmetric.
  plu::CscMatrix a = plu::gen::banded(1500, {-40, -39, -1, 1, 39, 40}, 0.7, 0.6, 3);
  std::printf("flow system: %s\n\n", plu::describe(a).c_str());

  plu::Options base;  // the paper's configuration
  report("paper method (mindeg+post+eforest)", a, base);

  plu::Options no_post = base;
  no_post.postorder = false;
  report("  - without postordering", a, no_post);

  plu::Options sstar = base;
  sstar.task_graph = plu::taskgraph::GraphKind::kSStarProgramOrder;
  report("  - with the S* task graph", a, sstar);

  plu::Options natural = base;
  natural.ordering = plu::ordering::Method::kNatural;
  report("  - natural ordering", a, natural);

  // And actually solve the system with the paper method.
  plu::SparseLU lu(base);
  lu.factorize(a);
  std::vector<double> b(a.rows(), 1.0);
  std::vector<double> x = lu.solve(b);
  std::printf("\nsolve residual with the paper method: %.2e\n",
              plu::relative_residual(a, x, b));
  return 0;
}
