// Reproduces the paper's worked example (Figures 1-4) on a small
// unsymmetric matrix: prints the original and filled patterns, the extended
// LU eforest with its Section-2 annotations (first L-row nonzeros, U-column
// leaves), the postordered block-upper-triangular form, and both task
// dependence graphs.  DOT renderings are written into the build directory
// by default; pass --out DIR to redirect them.
//
//   $ ./example_paper_figures [--out DIR]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/analysis.h"
#include "graph/dot_export.h"
#include "graph/eforest.h"
#include "graph/postorder.h"
#include "graph/transversal.h"
#include "matrix/coo.h"
#include "symbolic/compact_storage.h"
#include "symbolic/static_symbolic.h"
#include "taskgraph/analysis.h"

namespace {

void print_pattern(const char* title, const plu::Pattern& p) {
  std::printf("%s\n", title);
  for (int i = 0; i < p.rows; ++i) {
    std::printf("  ");
    for (int j = 0; j < p.cols; ++j) {
      std::printf("%c ", p.contains(i, j) ? 'x' : '.');
    }
    std::printf("\n");
  }
}

/// A 7x7 unsymmetric matrix in the spirit of the paper's Figure 1(a): the
/// exact entries of the scanned figure are unreadable, so this instance is
/// chosen to exhibit the same phenomena (fill, a multi-tree eforest, a
/// nontrivial postorder, diverging task graphs).
plu::CscMatrix example_matrix() {
  plu::CooMatrix coo(7, 7);
  for (int i = 0; i < 7; ++i) coo.add(i, i, 4.0 + i);
  coo.add(1, 0, -2.0);  // L entries
  coo.add(3, 1, 0.5);
  coo.add(6, 5, 1.0);
  coo.add(0, 2, 1.0);  // U entries
  coo.add(1, 4, 1.5);
  coo.add(3, 4, -1.0);
  coo.add(5, 6, -0.5);
  return coo.to_csc();
}

std::string artifact_dir(int argc, char** argv) {
#ifdef PLU_ARTIFACT_DIR
  std::string dir = PLU_ARTIFACT_DIR;
#else
  std::string dir = ".";
#endif
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) dir = argv[i + 1];
  }
  return dir;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = artifact_dir(argc, argv);
  plu::CscMatrix a = example_matrix();
  plu::Pattern p = a.pattern();
  print_pattern("Figure 1(a): matrix A", p);

  // Static symbolic factorization (the matrix already has a full diagonal).
  plu::symbolic::SymbolicResult sym = plu::symbolic::static_symbolic_factorization(p);
  print_pattern("\nAbar after static symbolic factorization", sym.abar);

  // Figure 1(b): the extended LU eforest.
  plu::graph::Forest ef = plu::graph::lu_eforest(sym.abar);
  plu::symbolic::CompactStorage cs = plu::symbolic::CompactStorage::build(sym.abar);
  std::printf("\nFigure 1(b): extended LU eforest\n");
  for (int v = 0; v < ef.size(); ++v) {
    std::printf("  node %d: parent=%2d  first-L-nonzero(row)=%d  U-leaves(col)={",
                v, ef.parent(v), cs.row_first()[v]);
    bool first = true;
    for (int leaf : cs.col_leaves(v)) {
      std::printf("%s%d", first ? "" : ",", leaf);
      first = false;
    }
    std::printf("}\n");
  }
  std::printf("  (compact storage: %zu integers vs %d pattern entries)\n",
              cs.storage_entries(), sym.abar.nnz());
  {
    std::string fname = out_dir + "/paper_fig1_eforest.dot";
    std::ofstream dot(fname);
    plu::graph::write_forest_dot(dot, ef);
    std::printf("  written: %s\n", fname.c_str());
  }

  // Figure 3: postorder and the block upper triangular form.
  plu::Permutation post = plu::graph::postorder_permutation(ef);
  plu::Pattern permuted = plu::graph::apply_symmetric_permutation(sym.abar, post);
  print_pattern("\nFigure 3: P^T Abar P after eforest postordering", permuted);
  plu::graph::Forest relabeled = ef.relabeled(post);
  std::printf("  diagonal blocks (tree sizes):");
  for (int s : plu::graph::diagonal_block_sizes(relabeled)) std::printf(" %d", s);
  std::printf("\n  block upper triangular: %s\n",
              plu::graph::is_block_upper_triangular(
                  permuted, plu::graph::diagonal_block_sizes(relabeled))
                  ? "yes"
                  : "no");

  // Figure 4: both task dependence graphs over the analyzed structure.
  plu::Options opt;
  for (auto kind : {plu::taskgraph::GraphKind::kSStar,
                    plu::taskgraph::GraphKind::kEforest}) {
    opt.task_graph = kind;
    plu::Analysis an = plu::analyze(a, opt);
    std::printf("\nFigure 4 (%s): %d tasks, %ld edges\n",
                plu::taskgraph::to_string(kind).c_str(), an.graph.size(),
                an.graph.num_edges());
    for (int id = 0; id < an.graph.size(); ++id) {
      for (int s : an.graph.succ[id]) {
        std::printf("  %s -> %s\n",
                    plu::taskgraph::to_string(an.graph.tasks.task(id)).c_str(),
                    plu::taskgraph::to_string(an.graph.tasks.task(s)).c_str());
      }
    }
    std::string fname =
        out_dir + "/paper_fig4_" + plu::taskgraph::to_string(kind) + ".dot";
    std::ofstream dot(fname);
    plu::taskgraph::write_task_graph_dot(dot, an.graph);
    std::printf("  written: %s\n", fname.c_str());
  }
  return 0;
}
