// Domain decomposition via the partial factorization: order the unknowns so
// an interface separator comes last (nested dissection does this), factor
// the subdomain part only, extract the dense interface Schur complement,
// solve the interface problem densely, and back-substitute.
//
// This is the classic substructuring workflow the Schur mode exists for --
// and a consistency check of the whole pipeline: the substructured solution
// must match the plain sparse solve.
//
//   $ ./example_domain_decomposition
#include <cmath>
#include <cstdio>
#include <vector>

#include "blas/factor.h"
#include "core/sparse_lu.h"
#include "matrix/generators.h"

int main() {
  // A 24x24 grid; nested dissection puts the top-level separator last.
  plu::CscMatrix a = plu::gen::grid2d(24, 24, {0.3, 0.0, 0.8, 31});
  const int n = a.rows();
  std::printf("system: %s\n", plu::describe(a).c_str());

  plu::Options opt;
  opt.ordering = plu::ordering::Method::kNestedDissectionAtA;
  plu::Analysis an = plu::analyze(a, opt);
  const int nb = an.blocks.num_blocks();

  // Cut so the interface (trailing ~10% of columns) stays unfactored.
  int split = nb;
  const int interface_target = n / 10;
  while (split > 1 && n - an.blocks.part.first(split - 1) <= interface_target) {
    --split;
  }
  plu::NumericOptions nopt;
  nopt.stop_after_block = split;
  plu::Factorization partial(an, a, nopt);
  plu::blas::DenseMatrix schur = partial.schur_complement();
  const int k = an.blocks.part.first(split);
  const int m = n - k;
  std::printf("subdomain: %d unknowns factored sparsely; interface: %d "
              "unknowns, dense Schur complement\n",
              k, m);

  // Substructured solve of A x = b:
  //   Apre [x1; x2] = [b1; b2]  (analysis ordering)
  //   forward-eliminate b through the factored panels,
  //   solve S x2 = (reduced b2),
  //   back-substitute for x1.
  // Implemented here by completing the factorization: dense-factor S and
  // reuse the partial panels via a full refactorization for the reference.
  std::vector<double> b(n);
  for (int i = 0; i < n; ++i) b[i] = std::sin(0.1 * i) + 1.5;

  // Reference: plain sparse solve.
  plu::Factorization full(an, a);
  std::vector<double> x_ref = full.solve(b);

  // Substructured: forward-eliminate through the partial panels by hand.
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) y[i] = b[an.row_perm.old_of(i)];
  const auto& part = an.blocks.part;
  for (int kk = 0; kk < split; ++kk) {
    const int wk = part.width(kk);
    std::vector<int> grows;
    for (int r = part.first(kk); r < part.end(kk); ++r) grows.push_back(r);
    for (int t : an.blocks.l_blocks(kk)) {
      for (int r = part.first(t); r < part.end(t); ++r) grows.push_back(r);
    }
    std::vector<double> seg(grows.size());
    for (std::size_t p = 0; p < grows.size(); ++p) seg[p] = y[grows[p]];
    const auto& piv = partial.panel_ipiv(kk);
    for (std::size_t c = 0; c < piv.size(); ++c) {
      if (piv[c] != static_cast<int>(c)) std::swap(seg[c], seg[piv[c]]);
    }
    plu::blas::ConstMatrixView panel = partial.blocks().panel(kk);
    plu::blas::trsv(plu::blas::UpLo::Lower, plu::blas::Trans::No,
                    plu::blas::Diag::Unit, panel.block(0, 0, wk, wk), seg.data(),
                    1);
    const int below = static_cast<int>(grows.size()) - wk;
    if (below > 0) {
      plu::blas::gemv(plu::blas::Trans::No, -1.0, panel.block(wk, 0, below, wk),
                      seg.data(), 1, 1.0, seg.data() + wk, 1);
    }
    for (std::size_t p = 0; p < grows.size(); ++p) y[grows[p]] = seg[p];
  }
  // Interface solve: S x2 = reduced trailing rhs.
  std::vector<double> x2(y.begin() + k, y.end());
  plu::blas::DenseMatrix slu = schur;
  std::vector<int> sipiv;
  if (plu::blas::getrf(slu.view(), sipiv) != 0) {
    std::printf("interface matrix singular!\n");
    return 1;
  }
  plu::blas::MatrixView x2v(x2.data(), m, 1);
  plu::blas::getrs(plu::blas::Trans::No, slu.view(), sipiv, x2v);

  // Compare the interface unknowns against the reference (the subdomain
  // back-substitution would proceed identically through the stored U).
  double err = 0.0;
  for (int j = 0; j < m; ++j) {
    double ref = x_ref[an.col_perm.old_of(k + j)];
    err = std::max(err, std::abs(x2[j] - ref) / (1.0 + std::abs(ref)));
  }
  std::printf("interface solution vs plain sparse solve: max relative "
              "difference %.2e\n",
              err);
  std::printf("%s\n", err < 1e-9 ? "substructuring consistent" : "MISMATCH");
  return err < 1e-9 ? 0 : 1;
}
