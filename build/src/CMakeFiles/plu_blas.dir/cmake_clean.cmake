file(REMOVE_RECURSE
  "CMakeFiles/plu_blas.dir/blas/dense.cpp.o"
  "CMakeFiles/plu_blas.dir/blas/dense.cpp.o.d"
  "CMakeFiles/plu_blas.dir/blas/factor.cpp.o"
  "CMakeFiles/plu_blas.dir/blas/factor.cpp.o.d"
  "CMakeFiles/plu_blas.dir/blas/level1.cpp.o"
  "CMakeFiles/plu_blas.dir/blas/level1.cpp.o.d"
  "CMakeFiles/plu_blas.dir/blas/level2.cpp.o"
  "CMakeFiles/plu_blas.dir/blas/level2.cpp.o.d"
  "CMakeFiles/plu_blas.dir/blas/level3.cpp.o"
  "CMakeFiles/plu_blas.dir/blas/level3.cpp.o.d"
  "libplu_blas.a"
  "libplu_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plu_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
