
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blas/dense.cpp" "src/CMakeFiles/plu_blas.dir/blas/dense.cpp.o" "gcc" "src/CMakeFiles/plu_blas.dir/blas/dense.cpp.o.d"
  "/root/repo/src/blas/factor.cpp" "src/CMakeFiles/plu_blas.dir/blas/factor.cpp.o" "gcc" "src/CMakeFiles/plu_blas.dir/blas/factor.cpp.o.d"
  "/root/repo/src/blas/level1.cpp" "src/CMakeFiles/plu_blas.dir/blas/level1.cpp.o" "gcc" "src/CMakeFiles/plu_blas.dir/blas/level1.cpp.o.d"
  "/root/repo/src/blas/level2.cpp" "src/CMakeFiles/plu_blas.dir/blas/level2.cpp.o" "gcc" "src/CMakeFiles/plu_blas.dir/blas/level2.cpp.o.d"
  "/root/repo/src/blas/level3.cpp" "src/CMakeFiles/plu_blas.dir/blas/level3.cpp.o" "gcc" "src/CMakeFiles/plu_blas.dir/blas/level3.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
