file(REMOVE_RECURSE
  "libplu_blas.a"
)
