# Empty compiler generated dependencies file for plu_blas.
# This may be replaced when dependencies are built.
