file(REMOVE_RECURSE
  "libplu_runtime.a"
)
