# Empty dependencies file for plu_runtime.
# This may be replaced when dependencies are built.
