
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/dag_executor.cpp" "src/CMakeFiles/plu_runtime.dir/runtime/dag_executor.cpp.o" "gcc" "src/CMakeFiles/plu_runtime.dir/runtime/dag_executor.cpp.o.d"
  "/root/repo/src/runtime/machine_model.cpp" "src/CMakeFiles/plu_runtime.dir/runtime/machine_model.cpp.o" "gcc" "src/CMakeFiles/plu_runtime.dir/runtime/machine_model.cpp.o.d"
  "/root/repo/src/runtime/simulator.cpp" "src/CMakeFiles/plu_runtime.dir/runtime/simulator.cpp.o" "gcc" "src/CMakeFiles/plu_runtime.dir/runtime/simulator.cpp.o.d"
  "/root/repo/src/runtime/thread_pool.cpp" "src/CMakeFiles/plu_runtime.dir/runtime/thread_pool.cpp.o" "gcc" "src/CMakeFiles/plu_runtime.dir/runtime/thread_pool.cpp.o.d"
  "/root/repo/src/runtime/trace.cpp" "src/CMakeFiles/plu_runtime.dir/runtime/trace.cpp.o" "gcc" "src/CMakeFiles/plu_runtime.dir/runtime/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/plu_taskgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_ordering.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_blas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
