file(REMOVE_RECURSE
  "CMakeFiles/plu_runtime.dir/runtime/dag_executor.cpp.o"
  "CMakeFiles/plu_runtime.dir/runtime/dag_executor.cpp.o.d"
  "CMakeFiles/plu_runtime.dir/runtime/machine_model.cpp.o"
  "CMakeFiles/plu_runtime.dir/runtime/machine_model.cpp.o.d"
  "CMakeFiles/plu_runtime.dir/runtime/simulator.cpp.o"
  "CMakeFiles/plu_runtime.dir/runtime/simulator.cpp.o.d"
  "CMakeFiles/plu_runtime.dir/runtime/thread_pool.cpp.o"
  "CMakeFiles/plu_runtime.dir/runtime/thread_pool.cpp.o.d"
  "CMakeFiles/plu_runtime.dir/runtime/trace.cpp.o"
  "CMakeFiles/plu_runtime.dir/runtime/trace.cpp.o.d"
  "libplu_runtime.a"
  "libplu_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plu_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
