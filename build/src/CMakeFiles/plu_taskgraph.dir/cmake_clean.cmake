file(REMOVE_RECURSE
  "CMakeFiles/plu_taskgraph.dir/taskgraph/analysis.cpp.o"
  "CMakeFiles/plu_taskgraph.dir/taskgraph/analysis.cpp.o.d"
  "CMakeFiles/plu_taskgraph.dir/taskgraph/build.cpp.o"
  "CMakeFiles/plu_taskgraph.dir/taskgraph/build.cpp.o.d"
  "CMakeFiles/plu_taskgraph.dir/taskgraph/build2d.cpp.o"
  "CMakeFiles/plu_taskgraph.dir/taskgraph/build2d.cpp.o.d"
  "CMakeFiles/plu_taskgraph.dir/taskgraph/costs.cpp.o"
  "CMakeFiles/plu_taskgraph.dir/taskgraph/costs.cpp.o.d"
  "CMakeFiles/plu_taskgraph.dir/taskgraph/tasks.cpp.o"
  "CMakeFiles/plu_taskgraph.dir/taskgraph/tasks.cpp.o.d"
  "libplu_taskgraph.a"
  "libplu_taskgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plu_taskgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
