
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taskgraph/analysis.cpp" "src/CMakeFiles/plu_taskgraph.dir/taskgraph/analysis.cpp.o" "gcc" "src/CMakeFiles/plu_taskgraph.dir/taskgraph/analysis.cpp.o.d"
  "/root/repo/src/taskgraph/build.cpp" "src/CMakeFiles/plu_taskgraph.dir/taskgraph/build.cpp.o" "gcc" "src/CMakeFiles/plu_taskgraph.dir/taskgraph/build.cpp.o.d"
  "/root/repo/src/taskgraph/build2d.cpp" "src/CMakeFiles/plu_taskgraph.dir/taskgraph/build2d.cpp.o" "gcc" "src/CMakeFiles/plu_taskgraph.dir/taskgraph/build2d.cpp.o.d"
  "/root/repo/src/taskgraph/costs.cpp" "src/CMakeFiles/plu_taskgraph.dir/taskgraph/costs.cpp.o" "gcc" "src/CMakeFiles/plu_taskgraph.dir/taskgraph/costs.cpp.o.d"
  "/root/repo/src/taskgraph/tasks.cpp" "src/CMakeFiles/plu_taskgraph.dir/taskgraph/tasks.cpp.o" "gcc" "src/CMakeFiles/plu_taskgraph.dir/taskgraph/tasks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/plu_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_ordering.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_blas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
