file(REMOVE_RECURSE
  "libplu_taskgraph.a"
)
