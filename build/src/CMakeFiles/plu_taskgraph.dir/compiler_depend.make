# Empty compiler generated dependencies file for plu_taskgraph.
# This may be replaced when dependencies are built.
