
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/symbolic/blocks.cpp" "src/CMakeFiles/plu_symbolic.dir/symbolic/blocks.cpp.o" "gcc" "src/CMakeFiles/plu_symbolic.dir/symbolic/blocks.cpp.o.d"
  "/root/repo/src/symbolic/compact_storage.cpp" "src/CMakeFiles/plu_symbolic.dir/symbolic/compact_storage.cpp.o" "gcc" "src/CMakeFiles/plu_symbolic.dir/symbolic/compact_storage.cpp.o.d"
  "/root/repo/src/symbolic/static_symbolic.cpp" "src/CMakeFiles/plu_symbolic.dir/symbolic/static_symbolic.cpp.o" "gcc" "src/CMakeFiles/plu_symbolic.dir/symbolic/static_symbolic.cpp.o.d"
  "/root/repo/src/symbolic/supernodes.cpp" "src/CMakeFiles/plu_symbolic.dir/symbolic/supernodes.cpp.o" "gcc" "src/CMakeFiles/plu_symbolic.dir/symbolic/supernodes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/plu_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_ordering.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_blas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
