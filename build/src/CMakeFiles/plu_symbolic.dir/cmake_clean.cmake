file(REMOVE_RECURSE
  "CMakeFiles/plu_symbolic.dir/symbolic/blocks.cpp.o"
  "CMakeFiles/plu_symbolic.dir/symbolic/blocks.cpp.o.d"
  "CMakeFiles/plu_symbolic.dir/symbolic/compact_storage.cpp.o"
  "CMakeFiles/plu_symbolic.dir/symbolic/compact_storage.cpp.o.d"
  "CMakeFiles/plu_symbolic.dir/symbolic/static_symbolic.cpp.o"
  "CMakeFiles/plu_symbolic.dir/symbolic/static_symbolic.cpp.o.d"
  "CMakeFiles/plu_symbolic.dir/symbolic/supernodes.cpp.o"
  "CMakeFiles/plu_symbolic.dir/symbolic/supernodes.cpp.o.d"
  "libplu_symbolic.a"
  "libplu_symbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plu_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
