file(REMOVE_RECURSE
  "libplu_symbolic.a"
)
