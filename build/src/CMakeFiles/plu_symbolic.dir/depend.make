# Empty dependencies file for plu_symbolic.
# This may be replaced when dependencies are built.
