file(REMOVE_RECURSE
  "CMakeFiles/plu_core.dir/core/analysis.cpp.o"
  "CMakeFiles/plu_core.dir/core/analysis.cpp.o.d"
  "CMakeFiles/plu_core.dir/core/block_storage.cpp.o"
  "CMakeFiles/plu_core.dir/core/block_storage.cpp.o.d"
  "CMakeFiles/plu_core.dir/core/numeric.cpp.o"
  "CMakeFiles/plu_core.dir/core/numeric.cpp.o.d"
  "CMakeFiles/plu_core.dir/core/numeric2d.cpp.o"
  "CMakeFiles/plu_core.dir/core/numeric2d.cpp.o.d"
  "CMakeFiles/plu_core.dir/core/parallel_solve.cpp.o"
  "CMakeFiles/plu_core.dir/core/parallel_solve.cpp.o.d"
  "CMakeFiles/plu_core.dir/core/refine.cpp.o"
  "CMakeFiles/plu_core.dir/core/refine.cpp.o.d"
  "CMakeFiles/plu_core.dir/core/report.cpp.o"
  "CMakeFiles/plu_core.dir/core/report.cpp.o.d"
  "CMakeFiles/plu_core.dir/core/solve.cpp.o"
  "CMakeFiles/plu_core.dir/core/solve.cpp.o.d"
  "CMakeFiles/plu_core.dir/core/sparse_lu.cpp.o"
  "CMakeFiles/plu_core.dir/core/sparse_lu.cpp.o.d"
  "libplu_core.a"
  "libplu_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plu_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
