file(REMOVE_RECURSE
  "libplu_core.a"
)
