# Empty compiler generated dependencies file for plu_core.
# This may be replaced when dependencies are built.
