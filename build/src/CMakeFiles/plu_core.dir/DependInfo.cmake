
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/CMakeFiles/plu_core.dir/core/analysis.cpp.o" "gcc" "src/CMakeFiles/plu_core.dir/core/analysis.cpp.o.d"
  "/root/repo/src/core/block_storage.cpp" "src/CMakeFiles/plu_core.dir/core/block_storage.cpp.o" "gcc" "src/CMakeFiles/plu_core.dir/core/block_storage.cpp.o.d"
  "/root/repo/src/core/numeric.cpp" "src/CMakeFiles/plu_core.dir/core/numeric.cpp.o" "gcc" "src/CMakeFiles/plu_core.dir/core/numeric.cpp.o.d"
  "/root/repo/src/core/numeric2d.cpp" "src/CMakeFiles/plu_core.dir/core/numeric2d.cpp.o" "gcc" "src/CMakeFiles/plu_core.dir/core/numeric2d.cpp.o.d"
  "/root/repo/src/core/parallel_solve.cpp" "src/CMakeFiles/plu_core.dir/core/parallel_solve.cpp.o" "gcc" "src/CMakeFiles/plu_core.dir/core/parallel_solve.cpp.o.d"
  "/root/repo/src/core/refine.cpp" "src/CMakeFiles/plu_core.dir/core/refine.cpp.o" "gcc" "src/CMakeFiles/plu_core.dir/core/refine.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/plu_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/plu_core.dir/core/report.cpp.o.d"
  "/root/repo/src/core/solve.cpp" "src/CMakeFiles/plu_core.dir/core/solve.cpp.o" "gcc" "src/CMakeFiles/plu_core.dir/core/solve.cpp.o.d"
  "/root/repo/src/core/sparse_lu.cpp" "src/CMakeFiles/plu_core.dir/core/sparse_lu.cpp.o" "gcc" "src/CMakeFiles/plu_core.dir/core/sparse_lu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/plu_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_taskgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_ordering.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_blas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
