
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/dot_export.cpp" "src/CMakeFiles/plu_graph.dir/graph/dot_export.cpp.o" "gcc" "src/CMakeFiles/plu_graph.dir/graph/dot_export.cpp.o.d"
  "/root/repo/src/graph/eforest.cpp" "src/CMakeFiles/plu_graph.dir/graph/eforest.cpp.o" "gcc" "src/CMakeFiles/plu_graph.dir/graph/eforest.cpp.o.d"
  "/root/repo/src/graph/etree.cpp" "src/CMakeFiles/plu_graph.dir/graph/etree.cpp.o" "gcc" "src/CMakeFiles/plu_graph.dir/graph/etree.cpp.o.d"
  "/root/repo/src/graph/forest.cpp" "src/CMakeFiles/plu_graph.dir/graph/forest.cpp.o" "gcc" "src/CMakeFiles/plu_graph.dir/graph/forest.cpp.o.d"
  "/root/repo/src/graph/postorder.cpp" "src/CMakeFiles/plu_graph.dir/graph/postorder.cpp.o" "gcc" "src/CMakeFiles/plu_graph.dir/graph/postorder.cpp.o.d"
  "/root/repo/src/graph/transversal.cpp" "src/CMakeFiles/plu_graph.dir/graph/transversal.cpp.o" "gcc" "src/CMakeFiles/plu_graph.dir/graph/transversal.cpp.o.d"
  "/root/repo/src/graph/weighted_matching.cpp" "src/CMakeFiles/plu_graph.dir/graph/weighted_matching.cpp.o" "gcc" "src/CMakeFiles/plu_graph.dir/graph/weighted_matching.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/plu_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_blas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
