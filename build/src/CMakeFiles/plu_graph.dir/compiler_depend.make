# Empty compiler generated dependencies file for plu_graph.
# This may be replaced when dependencies are built.
