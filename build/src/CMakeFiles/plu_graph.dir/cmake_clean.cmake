file(REMOVE_RECURSE
  "CMakeFiles/plu_graph.dir/graph/dot_export.cpp.o"
  "CMakeFiles/plu_graph.dir/graph/dot_export.cpp.o.d"
  "CMakeFiles/plu_graph.dir/graph/eforest.cpp.o"
  "CMakeFiles/plu_graph.dir/graph/eforest.cpp.o.d"
  "CMakeFiles/plu_graph.dir/graph/etree.cpp.o"
  "CMakeFiles/plu_graph.dir/graph/etree.cpp.o.d"
  "CMakeFiles/plu_graph.dir/graph/forest.cpp.o"
  "CMakeFiles/plu_graph.dir/graph/forest.cpp.o.d"
  "CMakeFiles/plu_graph.dir/graph/postorder.cpp.o"
  "CMakeFiles/plu_graph.dir/graph/postorder.cpp.o.d"
  "CMakeFiles/plu_graph.dir/graph/transversal.cpp.o"
  "CMakeFiles/plu_graph.dir/graph/transversal.cpp.o.d"
  "CMakeFiles/plu_graph.dir/graph/weighted_matching.cpp.o"
  "CMakeFiles/plu_graph.dir/graph/weighted_matching.cpp.o.d"
  "libplu_graph.a"
  "libplu_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plu_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
