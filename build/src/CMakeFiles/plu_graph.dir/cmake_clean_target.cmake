file(REMOVE_RECURSE
  "libplu_graph.a"
)
