# Empty dependencies file for plu_matrix.
# This may be replaced when dependencies are built.
