file(REMOVE_RECURSE
  "libplu_matrix.a"
)
