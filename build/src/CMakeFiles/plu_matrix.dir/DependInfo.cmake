
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matrix/coo.cpp" "src/CMakeFiles/plu_matrix.dir/matrix/coo.cpp.o" "gcc" "src/CMakeFiles/plu_matrix.dir/matrix/coo.cpp.o.d"
  "/root/repo/src/matrix/csc.cpp" "src/CMakeFiles/plu_matrix.dir/matrix/csc.cpp.o" "gcc" "src/CMakeFiles/plu_matrix.dir/matrix/csc.cpp.o.d"
  "/root/repo/src/matrix/csr.cpp" "src/CMakeFiles/plu_matrix.dir/matrix/csr.cpp.o" "gcc" "src/CMakeFiles/plu_matrix.dir/matrix/csr.cpp.o.d"
  "/root/repo/src/matrix/equilibrate.cpp" "src/CMakeFiles/plu_matrix.dir/matrix/equilibrate.cpp.o" "gcc" "src/CMakeFiles/plu_matrix.dir/matrix/equilibrate.cpp.o.d"
  "/root/repo/src/matrix/generators.cpp" "src/CMakeFiles/plu_matrix.dir/matrix/generators.cpp.o" "gcc" "src/CMakeFiles/plu_matrix.dir/matrix/generators.cpp.o.d"
  "/root/repo/src/matrix/hb_io.cpp" "src/CMakeFiles/plu_matrix.dir/matrix/hb_io.cpp.o" "gcc" "src/CMakeFiles/plu_matrix.dir/matrix/hb_io.cpp.o.d"
  "/root/repo/src/matrix/io.cpp" "src/CMakeFiles/plu_matrix.dir/matrix/io.cpp.o" "gcc" "src/CMakeFiles/plu_matrix.dir/matrix/io.cpp.o.d"
  "/root/repo/src/matrix/named_matrices.cpp" "src/CMakeFiles/plu_matrix.dir/matrix/named_matrices.cpp.o" "gcc" "src/CMakeFiles/plu_matrix.dir/matrix/named_matrices.cpp.o.d"
  "/root/repo/src/matrix/permutation.cpp" "src/CMakeFiles/plu_matrix.dir/matrix/permutation.cpp.o" "gcc" "src/CMakeFiles/plu_matrix.dir/matrix/permutation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/plu_blas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
