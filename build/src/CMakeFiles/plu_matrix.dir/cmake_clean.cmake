file(REMOVE_RECURSE
  "CMakeFiles/plu_matrix.dir/matrix/coo.cpp.o"
  "CMakeFiles/plu_matrix.dir/matrix/coo.cpp.o.d"
  "CMakeFiles/plu_matrix.dir/matrix/csc.cpp.o"
  "CMakeFiles/plu_matrix.dir/matrix/csc.cpp.o.d"
  "CMakeFiles/plu_matrix.dir/matrix/csr.cpp.o"
  "CMakeFiles/plu_matrix.dir/matrix/csr.cpp.o.d"
  "CMakeFiles/plu_matrix.dir/matrix/equilibrate.cpp.o"
  "CMakeFiles/plu_matrix.dir/matrix/equilibrate.cpp.o.d"
  "CMakeFiles/plu_matrix.dir/matrix/generators.cpp.o"
  "CMakeFiles/plu_matrix.dir/matrix/generators.cpp.o.d"
  "CMakeFiles/plu_matrix.dir/matrix/hb_io.cpp.o"
  "CMakeFiles/plu_matrix.dir/matrix/hb_io.cpp.o.d"
  "CMakeFiles/plu_matrix.dir/matrix/io.cpp.o"
  "CMakeFiles/plu_matrix.dir/matrix/io.cpp.o.d"
  "CMakeFiles/plu_matrix.dir/matrix/named_matrices.cpp.o"
  "CMakeFiles/plu_matrix.dir/matrix/named_matrices.cpp.o.d"
  "CMakeFiles/plu_matrix.dir/matrix/permutation.cpp.o"
  "CMakeFiles/plu_matrix.dir/matrix/permutation.cpp.o.d"
  "libplu_matrix.a"
  "libplu_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plu_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
