
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ordering/minimum_degree.cpp" "src/CMakeFiles/plu_ordering.dir/ordering/minimum_degree.cpp.o" "gcc" "src/CMakeFiles/plu_ordering.dir/ordering/minimum_degree.cpp.o.d"
  "/root/repo/src/ordering/nested_dissection.cpp" "src/CMakeFiles/plu_ordering.dir/ordering/nested_dissection.cpp.o" "gcc" "src/CMakeFiles/plu_ordering.dir/ordering/nested_dissection.cpp.o.d"
  "/root/repo/src/ordering/ordering.cpp" "src/CMakeFiles/plu_ordering.dir/ordering/ordering.cpp.o" "gcc" "src/CMakeFiles/plu_ordering.dir/ordering/ordering.cpp.o.d"
  "/root/repo/src/ordering/rcm.cpp" "src/CMakeFiles/plu_ordering.dir/ordering/rcm.cpp.o" "gcc" "src/CMakeFiles/plu_ordering.dir/ordering/rcm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/plu_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_blas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
