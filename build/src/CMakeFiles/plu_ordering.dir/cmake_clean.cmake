file(REMOVE_RECURSE
  "CMakeFiles/plu_ordering.dir/ordering/minimum_degree.cpp.o"
  "CMakeFiles/plu_ordering.dir/ordering/minimum_degree.cpp.o.d"
  "CMakeFiles/plu_ordering.dir/ordering/nested_dissection.cpp.o"
  "CMakeFiles/plu_ordering.dir/ordering/nested_dissection.cpp.o.d"
  "CMakeFiles/plu_ordering.dir/ordering/ordering.cpp.o"
  "CMakeFiles/plu_ordering.dir/ordering/ordering.cpp.o.d"
  "CMakeFiles/plu_ordering.dir/ordering/rcm.cpp.o"
  "CMakeFiles/plu_ordering.dir/ordering/rcm.cpp.o.d"
  "libplu_ordering.a"
  "libplu_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plu_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
