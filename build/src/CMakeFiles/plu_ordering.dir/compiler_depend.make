# Empty compiler generated dependencies file for plu_ordering.
# This may be replaced when dependencies are built.
