file(REMOVE_RECURSE
  "libplu_ordering.a"
)
