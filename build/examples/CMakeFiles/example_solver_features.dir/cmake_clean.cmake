file(REMOVE_RECURSE
  "CMakeFiles/example_solver_features.dir/solver_features.cpp.o"
  "CMakeFiles/example_solver_features.dir/solver_features.cpp.o.d"
  "example_solver_features"
  "example_solver_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_solver_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
