# Empty compiler generated dependencies file for example_solver_features.
# This may be replaced when dependencies are built.
