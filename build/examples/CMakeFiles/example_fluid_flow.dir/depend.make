# Empty dependencies file for example_fluid_flow.
# This may be replaced when dependencies are built.
