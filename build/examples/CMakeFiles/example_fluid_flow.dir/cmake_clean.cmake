file(REMOVE_RECURSE
  "CMakeFiles/example_fluid_flow.dir/fluid_flow.cpp.o"
  "CMakeFiles/example_fluid_flow.dir/fluid_flow.cpp.o.d"
  "example_fluid_flow"
  "example_fluid_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fluid_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
