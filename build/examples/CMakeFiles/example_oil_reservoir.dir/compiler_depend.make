# Empty compiler generated dependencies file for example_oil_reservoir.
# This may be replaced when dependencies are built.
