file(REMOVE_RECURSE
  "CMakeFiles/example_oil_reservoir.dir/oil_reservoir.cpp.o"
  "CMakeFiles/example_oil_reservoir.dir/oil_reservoir.cpp.o.d"
  "example_oil_reservoir"
  "example_oil_reservoir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_oil_reservoir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
