# Empty compiler generated dependencies file for example_taskgraph_explorer.
# This may be replaced when dependencies are built.
