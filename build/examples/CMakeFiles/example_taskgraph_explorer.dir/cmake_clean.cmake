file(REMOVE_RECURSE
  "CMakeFiles/example_taskgraph_explorer.dir/taskgraph_explorer.cpp.o"
  "CMakeFiles/example_taskgraph_explorer.dir/taskgraph_explorer.cpp.o.d"
  "example_taskgraph_explorer"
  "example_taskgraph_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_taskgraph_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
