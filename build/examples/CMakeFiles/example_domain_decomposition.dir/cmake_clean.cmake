file(REMOVE_RECURSE
  "CMakeFiles/example_domain_decomposition.dir/domain_decomposition.cpp.o"
  "CMakeFiles/example_domain_decomposition.dir/domain_decomposition.cpp.o.d"
  "example_domain_decomposition"
  "example_domain_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_domain_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
