# Empty dependencies file for example_domain_decomposition.
# This may be replaced when dependencies are built.
