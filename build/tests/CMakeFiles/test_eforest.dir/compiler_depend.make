# Empty compiler generated dependencies file for test_eforest.
# This may be replaced when dependencies are built.
