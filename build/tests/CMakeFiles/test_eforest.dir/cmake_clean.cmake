file(REMOVE_RECURSE
  "CMakeFiles/test_eforest.dir/test_eforest.cpp.o"
  "CMakeFiles/test_eforest.dir/test_eforest.cpp.o.d"
  "test_eforest"
  "test_eforest.pdb"
  "test_eforest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eforest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
