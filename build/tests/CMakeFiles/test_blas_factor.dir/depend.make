# Empty dependencies file for test_blas_factor.
# This may be replaced when dependencies are built.
