file(REMOVE_RECURSE
  "CMakeFiles/test_blas_factor.dir/test_blas_factor.cpp.o"
  "CMakeFiles/test_blas_factor.dir/test_blas_factor.cpp.o.d"
  "test_blas_factor"
  "test_blas_factor.pdb"
  "test_blas_factor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blas_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
