file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_solve.dir/test_parallel_solve.cpp.o"
  "CMakeFiles/test_parallel_solve.dir/test_parallel_solve.cpp.o.d"
  "test_parallel_solve"
  "test_parallel_solve.pdb"
  "test_parallel_solve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
