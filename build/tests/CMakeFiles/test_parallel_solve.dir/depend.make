# Empty dependencies file for test_parallel_solve.
# This may be replaced when dependencies are built.
