# Empty dependencies file for test_static_symbolic.
# This may be replaced when dependencies are built.
