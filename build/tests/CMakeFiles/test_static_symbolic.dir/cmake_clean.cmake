file(REMOVE_RECURSE
  "CMakeFiles/test_static_symbolic.dir/test_static_symbolic.cpp.o"
  "CMakeFiles/test_static_symbolic.dir/test_static_symbolic.cpp.o.d"
  "test_static_symbolic"
  "test_static_symbolic.pdb"
  "test_static_symbolic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_static_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
