# Empty compiler generated dependencies file for test_supernodes.
# This may be replaced when dependencies are built.
