file(REMOVE_RECURSE
  "CMakeFiles/test_numeric2d.dir/test_numeric2d.cpp.o"
  "CMakeFiles/test_numeric2d.dir/test_numeric2d.cpp.o.d"
  "test_numeric2d"
  "test_numeric2d.pdb"
  "test_numeric2d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numeric2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
