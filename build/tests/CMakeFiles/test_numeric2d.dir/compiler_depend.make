# Empty compiler generated dependencies file for test_numeric2d.
# This may be replaced when dependencies are built.
