file(REMOVE_RECURSE
  "CMakeFiles/test_postorder.dir/test_postorder.cpp.o"
  "CMakeFiles/test_postorder.dir/test_postorder.cpp.o.d"
  "test_postorder"
  "test_postorder.pdb"
  "test_postorder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_postorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
