# Empty compiler generated dependencies file for test_postorder.
# This may be replaced when dependencies are built.
