# Empty dependencies file for test_etree.
# This may be replaced when dependencies are built.
