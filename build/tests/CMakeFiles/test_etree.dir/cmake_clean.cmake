file(REMOVE_RECURSE
  "CMakeFiles/test_etree.dir/test_etree.cpp.o"
  "CMakeFiles/test_etree.dir/test_etree.cpp.o.d"
  "test_etree"
  "test_etree.pdb"
  "test_etree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_etree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
