file(REMOVE_RECURSE
  "CMakeFiles/test_hb_io.dir/test_hb_io.cpp.o"
  "CMakeFiles/test_hb_io.dir/test_hb_io.cpp.o.d"
  "test_hb_io"
  "test_hb_io.pdb"
  "test_hb_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hb_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
