file(REMOVE_RECURSE
  "CMakeFiles/test_transversal.dir/test_transversal.cpp.o"
  "CMakeFiles/test_transversal.dir/test_transversal.cpp.o.d"
  "test_transversal"
  "test_transversal.pdb"
  "test_transversal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
