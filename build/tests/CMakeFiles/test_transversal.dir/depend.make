# Empty dependencies file for test_transversal.
# This may be replaced when dependencies are built.
