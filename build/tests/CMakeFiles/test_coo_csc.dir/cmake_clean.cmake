file(REMOVE_RECURSE
  "CMakeFiles/test_coo_csc.dir/test_coo_csc.cpp.o"
  "CMakeFiles/test_coo_csc.dir/test_coo_csc.cpp.o.d"
  "test_coo_csc"
  "test_coo_csc.pdb"
  "test_coo_csc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coo_csc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
