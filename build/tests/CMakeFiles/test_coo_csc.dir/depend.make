# Empty dependencies file for test_coo_csc.
# This may be replaced when dependencies are built.
