file(REMOVE_RECURSE
  "CMakeFiles/test_block_storage.dir/test_block_storage.cpp.o"
  "CMakeFiles/test_block_storage.dir/test_block_storage.cpp.o.d"
  "test_block_storage"
  "test_block_storage.pdb"
  "test_block_storage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
