# Empty dependencies file for test_block_storage.
# This may be replaced when dependencies are built.
