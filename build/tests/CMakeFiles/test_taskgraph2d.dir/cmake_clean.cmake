file(REMOVE_RECURSE
  "CMakeFiles/test_taskgraph2d.dir/test_taskgraph2d.cpp.o"
  "CMakeFiles/test_taskgraph2d.dir/test_taskgraph2d.cpp.o.d"
  "test_taskgraph2d"
  "test_taskgraph2d.pdb"
  "test_taskgraph2d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_taskgraph2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
