# Empty dependencies file for test_taskgraph2d.
# This may be replaced when dependencies are built.
