file(REMOVE_RECURSE
  "CMakeFiles/test_compact_storage.dir/test_compact_storage.cpp.o"
  "CMakeFiles/test_compact_storage.dir/test_compact_storage.cpp.o.d"
  "test_compact_storage"
  "test_compact_storage.pdb"
  "test_compact_storage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compact_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
