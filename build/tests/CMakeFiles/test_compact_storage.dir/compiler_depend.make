# Empty compiler generated dependencies file for test_compact_storage.
# This may be replaced when dependencies are built.
