file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_lu.dir/test_sparse_lu.cpp.o"
  "CMakeFiles/test_sparse_lu.dir/test_sparse_lu.cpp.o.d"
  "test_sparse_lu"
  "test_sparse_lu.pdb"
  "test_sparse_lu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
