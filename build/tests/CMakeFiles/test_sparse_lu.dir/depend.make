# Empty dependencies file for test_sparse_lu.
# This may be replaced when dependencies are built.
