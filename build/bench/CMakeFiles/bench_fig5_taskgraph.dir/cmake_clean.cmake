file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_taskgraph.dir/bench_fig5_taskgraph.cpp.o"
  "CMakeFiles/bench_fig5_taskgraph.dir/bench_fig5_taskgraph.cpp.o.d"
  "bench_fig5_taskgraph"
  "bench_fig5_taskgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_taskgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
