
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_taskgraph.cpp" "bench/CMakeFiles/bench_fig5_taskgraph.dir/bench_fig5_taskgraph.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5_taskgraph.dir/bench_fig5_taskgraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/plu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_taskgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_ordering.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/plu_blas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
