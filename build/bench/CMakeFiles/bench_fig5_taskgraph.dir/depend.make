# Empty dependencies file for bench_fig5_taskgraph.
# This may be replaced when dependencies are built.
