file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_taskgraph.dir/bench_fig6_taskgraph.cpp.o"
  "CMakeFiles/bench_fig6_taskgraph.dir/bench_fig6_taskgraph.cpp.o.d"
  "bench_fig6_taskgraph"
  "bench_fig6_taskgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_taskgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
