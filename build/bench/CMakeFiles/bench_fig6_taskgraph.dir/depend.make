# Empty dependencies file for bench_fig6_taskgraph.
# This may be replaced when dependencies are built.
