# Empty dependencies file for bench_ablation_symbolic.
# This may be replaced when dependencies are built.
