file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_solve.dir/bench_ablation_solve.cpp.o"
  "CMakeFiles/bench_ablation_solve.dir/bench_ablation_solve.cpp.o.d"
  "bench_ablation_solve"
  "bench_ablation_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
