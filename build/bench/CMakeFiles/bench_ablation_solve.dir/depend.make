# Empty dependencies file for bench_ablation_solve.
# This may be replaced when dependencies are built.
