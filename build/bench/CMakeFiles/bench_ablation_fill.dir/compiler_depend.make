# Empty compiler generated dependencies file for bench_ablation_fill.
# This may be replaced when dependencies are built.
