file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_amalgamation.dir/bench_ablation_amalgamation.cpp.o"
  "CMakeFiles/bench_ablation_amalgamation.dir/bench_ablation_amalgamation.cpp.o.d"
  "bench_ablation_amalgamation"
  "bench_ablation_amalgamation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_amalgamation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
