# Empty compiler generated dependencies file for bench_ablation_amalgamation.
# This may be replaced when dependencies are built.
