file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_postorder.dir/bench_table3_postorder.cpp.o"
  "CMakeFiles/bench_table3_postorder.dir/bench_table3_postorder.cpp.o.d"
  "bench_table3_postorder"
  "bench_table3_postorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_postorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
