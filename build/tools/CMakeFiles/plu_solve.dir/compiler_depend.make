# Empty compiler generated dependencies file for plu_solve.
# This may be replaced when dependencies are built.
