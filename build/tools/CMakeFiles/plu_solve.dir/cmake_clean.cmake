file(REMOVE_RECURSE
  "CMakeFiles/plu_solve.dir/plu_solve.cpp.o"
  "CMakeFiles/plu_solve.dir/plu_solve.cpp.o.d"
  "plu_solve"
  "plu_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plu_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
