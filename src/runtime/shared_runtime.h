// A persistent work-stealing pool that executes MANY task dependence graphs
// concurrently -- the multi-DAG runtime under the solver service
// (src/service/solver_service.h).
//
// The single-DAG executors in runtime/dag_executor.h spin a fresh worker
// team per execute() call, which is right for one factorization but wrong
// for a server: N in-flight requests would run N uncoordinated teams,
// oversubscribing the machine and giving the OS scheduler -- not the
// critical-path priorities -- the final say.  SharedRuntime keeps ONE team
// alive for the process and lets any thread submit() a DAG; tasks from all
// active graphs interleave freely on the same Chase-Lev deques
// (runtime/work_steal_deque.h), so a wide graph soaks up workers a narrow
// graph cannot use and a small request's tasks are stolen out from under a
// big one instead of waiting behind it.
//
// Scheduling.  Each deque item packs (graph slot, task id) into 64 bits.  A
// worker that releases successors pushes them onto its OWN deque in
// ascending priority order and pops LIFO -- the same critical-path diving as
// the single-DAG engine.  Per-graph priorities are NORMALIZED bottom levels
// (divided by the graph's maximum) plus the submitter's per-request boost,
// so a huge matrix's raw flop counts cannot drown out a small request's
// critical path: across graphs, priorities compare on [boost, boost + 1]
// regardless of problem size (the fair-share half of the scheme; admission
// fairness lives in the service's orchestrator lanes).  New graphs enter
// through a FIFO injection queue that idle workers drain after their own
// deque and steals come up empty, so submission order is respected across
// requests of equal standing.  Steals pick two random victims plus a full
// sweep; unlike the single-DAG engine there is NO priority peek -- a peeked
// item may belong to a graph that completed (and was freed) between the
// peek and the priority lookup, and the hint is not worth a lifetime rule.
//
// Lifetime of a graph.  `outstanding` counts a graph's queued-or-running
// tasks; items only exist in deques while outstanding > 0, and the worker
// that drops it to zero retires the graph (fills the report, wakes waiters,
// frees the slot).  Dereferencing a popped item is therefore always safe:
// the item itself holds the graph live.
//
// Cancellation and errors keep the dag_executor.h contract: a cancelled
// token makes queued tasks drain unrun, a throwing task cancels its OWN
// graph only (other graphs are untouched) and the exception is rethrown on
// the thread that calls Run::wait().  Task bodies must never block on the
// runtime that is executing them (no nested submit-and-wait from a task).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/dag_executor.h"
#include "runtime/work_steal_deque.h"

namespace plu::rt {

class SharedRuntime {
 public:
  /// One DAG submission.  `succ` and `indegree` (and `cancel`, when given)
  /// must stay alive until the run completes -- submitters that do not
  /// wait() must guarantee this some other way.
  struct GraphSpec {
    const std::vector<std::vector<int>>* succ = nullptr;
    const std::vector<int>* indegree = nullptr;
    std::function<void(int)> run;
    /// Raw per-task priorities (bottom levels); normalized internally.
    /// nullptr = no intra-graph priority order.
    const std::vector<double>* priorities = nullptr;
    /// Per-request priority fold: added to every normalized task priority.
    double boost = 0.0;
    /// Cooperative cancellation, same semantics as ExecOptions::cancel.
    CancelToken* cancel = nullptr;
  };

  /// Handle to one submitted graph.
  class Run {
   public:
    /// Blocks until the graph completed, drained after cancellation, or
    /// stalled on a cycle.  Rethrows the first worker exception (lowest
    /// task id wins), matching execute_task_graph.
    ExecutionReport wait();
    bool done() const;

   private:
    friend class SharedRuntime;
    Run() = default;

    const std::vector<std::vector<int>>* succ_ = nullptr;
    std::function<void(int)> body_;
    std::vector<double> prio_;  // normalized + boosted; empty = unordered
    std::vector<std::atomic<int>> indeg_;
    CancelToken own_cancel_;
    CancelToken* cancel_ = nullptr;
    int n_ = 0;
    int slot_ = -1;
    std::atomic<long> outstanding_{0};
    std::atomic<long> done_count_{0};

    std::mutex err_mu_;
    int err_task_ = 0;
    std::exception_ptr error_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    bool finished_ = false;
    ExecutionReport report_;
  };

  /// `threads` workers (min 1); at most `max_graphs` DAGs in flight --
  /// further submits block until a slot frees (admission backpressure).
  explicit SharedRuntime(int threads, int max_graphs = 256);

  /// Waits for every submitted graph to finish, then stops the workers.
  ~SharedRuntime();

  SharedRuntime(const SharedRuntime&) = delete;
  SharedRuntime& operator=(const SharedRuntime&) = delete;

  int threads() const { return static_cast<int>(workers_.size()); }
  /// Graphs retired since construction (completed, cancelled, or cyclic).
  long graphs_completed() const {
    return graphs_completed_.load(std::memory_order_relaxed);
  }

  std::shared_ptr<Run> submit(GraphSpec spec);

  /// submit() + wait(): the drop-in blocking shape execute_task_graph
  /// routes through when ExecOptions::shared is set.
  ExecutionReport run_graph(GraphSpec spec) { return submit(std::move(spec))->wait(); }

 private:
  struct alignas(64) Worker {
    Worker(int id_, std::uint64_t seed) : id(id_), rng_state(seed) {}
    const int id;
    WorkStealDeque64 deque;
    std::uint64_t rng_state;
    std::vector<int> ready;  // scratch for newly released successors
    std::thread thread;
  };

  static std::int64_t pack(int slot, int task) {
    return (static_cast<std::int64_t>(slot) << 32) |
           static_cast<std::int64_t>(static_cast<std::uint32_t>(task));
  }

  std::uint64_t next_rand(Worker& me) {
    // xorshift64*: per-worker, no allocation, good enough for victim picks.
    std::uint64_t x = me.rng_state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    me.rng_state = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  void worker_loop(int tid);
  void run_item(Worker& me, std::int64_t item);
  void finish_run(Run* r);
  std::int64_t steal(Worker& me);
  std::int64_t take_injected();
  bool work_visible() const;
  void idle(Worker& me);
  void wake_workers();

  const int max_graphs_;
  std::vector<std::unique_ptr<Worker>> workers_;

  // Slot table: workers dereference slots_[item.slot] lock-free; ownership
  // (and slot recycling) is tracked under reg_mu_.
  std::unique_ptr<std::atomic<Run*>[]> slots_;
  std::mutex reg_mu_;
  std::condition_variable slot_cv_;   // submitters waiting for a free slot
  std::condition_variable drain_cv_;  // destructor waiting for active == 0
  std::vector<std::shared_ptr<Run>> owners_;  // keeps unwaited runs alive
  std::vector<int> free_slots_;
  int active_ = 0;

  // FIFO injection queue: roots of newly submitted graphs (workers own
  // their deques, so a submitter cannot push into them directly).
  std::mutex inject_mu_;
  std::deque<std::int64_t> inject_;
  std::atomic<long> inject_count_{0};

  // Park/wake protocol, same epoch scheme as the single-DAG engine.
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> wake_epoch_{0};
  std::atomic<int> sleepers_{0};
  std::mutex park_mu_;
  std::condition_variable park_cv_;

  std::atomic<long> graphs_completed_{0};
};

}  // namespace plu::rt
