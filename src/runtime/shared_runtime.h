// A persistent work-stealing pool that executes MANY task dependence graphs
// concurrently -- the multi-DAG runtime under the solver service
// (src/service/solver_service.h).
//
// The single-DAG executors in runtime/dag_executor.h spin a fresh worker
// team per execute() call, which is right for one factorization but wrong
// for a server: N in-flight requests would run N uncoordinated teams,
// oversubscribing the machine and giving the OS scheduler -- not the
// critical-path priorities -- the final say.  SharedRuntime keeps ONE team
// alive for the process and lets any thread submit() a DAG; tasks from all
// active graphs interleave freely on the same Chase-Lev deques
// (runtime/work_steal_deque.h), so a wide graph soaks up workers a narrow
// graph cannot use and a small request's tasks are stolen out from under a
// big one instead of waiting behind it.
//
// Scheduling.  Each deque item packs (graph slot, task id) into 64 bits.  A
// worker that releases successors pushes them onto its OWN deque in
// ascending priority order and pops LIFO -- the same critical-path diving as
// the single-DAG engine.  Per-graph priorities are NORMALIZED bottom levels
// (divided by the graph's maximum) plus the submitter's per-request boost,
// so a huge matrix's raw flop counts cannot drown out a small request's
// critical path: across graphs, priorities compare on [boost, boost + 1]
// regardless of problem size (the fair-share half of the scheme; admission
// fairness lives in the service's orchestrator lanes).  New graphs enter
// through a FIFO injection queue that idle workers drain after their own
// deque and steals come up empty, so submission order is respected across
// requests of equal standing.  Steals pick two random victims plus a full
// sweep; unlike the single-DAG engine there is NO priority peek -- a peeked
// item may belong to a graph that completed (and was freed) between the
// peek and the priority lookup, and the hint is not worth a lifetime rule.
//
// Lifetime of a graph.  `outstanding` counts a graph's queued-or-running
// tasks; items only exist in deques while outstanding > 0, and the worker
// that drops it to zero retires the graph (fills the report, wakes waiters,
// frees the slot).  Dereferencing a popped item is therefore always safe:
// the item itself holds the graph live.
//
// Cancellation and errors keep the dag_executor.h contract: a cancelled
// token makes queued tasks drain unrun, a throwing task cancels its OWN
// graph only (other graphs are untouched) and the exception is rethrown on
// the thread that calls Run::wait().  Task bodies must never block on the
// runtime that is executing them (no nested submit-and-wait from a task).
//
// DYNAMIC graphs (the analyze->factor pipeline, core/pipeline.h).  A run
// submitted with submit_dynamic() starts from one batch of tasks and may
// GROW while it executes: a running task calls append_batch() to splice a
// new batch of tasks into its own graph.  The protocol that keeps the
// outstanding-counter retirement exact:
//
//   * append_batch() may only be called from inside a running task of the
//     same run.  That task holds outstanding_ > 0 for the whole append, so
//     the run cannot retire concurrently with the splice.
//   * Task ids are GLOBAL and contiguous across batches (batch base +
//     local id); an edge may only point from an earlier batch into a later
//     one via `cross_preds` on the later batch.
//   * A cross-batch predecessor must be flagged `exported` in its own
//     batch.  Exported tasks retire their done flag and hand out their
//     late-added successor list under the run's append mutex; the appender
//     checks the same flag under the same mutex, so a completion edge is
//     counted exactly once no matter how the append races the predecessor
//     (either the new task's indegree never includes the edge, or the
//     predecessor's release decrements it).  Non-exported tasks never touch
//     the mutex -- the common (numeric-update) fast path stays lock-free.
//   * Priorities in dynamic batches are FINAL values (no normalization):
//     the submitter owns the cross-batch priority scale.
//
// A dynamic run finishes when outstanding_ hits zero, exactly like a static
// one; `completed` then means every task of every appended batch ran.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/dag_executor.h"
#include "runtime/work_steal_deque.h"

namespace plu::rt {

class SharedRuntime {
 public:
  /// One DAG submission.  `succ` and `indegree` (and `cancel`, when given)
  /// must stay alive until the run completes -- submitters that do not
  /// wait() must guarantee this some other way.
  struct GraphSpec {
    const std::vector<std::vector<int>>* succ = nullptr;
    const std::vector<int>* indegree = nullptr;
    std::function<void(int)> run;
    /// Raw per-task priorities (bottom levels); normalized internally.
    /// nullptr = no intra-graph priority order.
    const std::vector<double>* priorities = nullptr;
    /// Per-request priority fold: added to every normalized task priority.
    double boost = 0.0;
    /// Cooperative cancellation, same semantics as ExecOptions::cancel.
    CancelToken* cancel = nullptr;
  };

  /// One batch of a DYNAMIC graph (submit_dynamic / append_batch).  All
  /// vectors are indexed by LOCAL task id; the batch owns its storage, so
  /// callers need not keep anything alive.
  struct BatchSpec {
    int n = 0;
    /// Task body, called with the LOCAL id within this batch.
    std::function<void(int)> run;
    /// FINAL per-task priorities (cross-batch comparable; higher = more
    /// critical).  Empty = unordered within the batch.
    std::vector<double> priorities;
    /// Per-task predecessor count: within-batch edges plus cross_preds.
    std::vector<int> indegree;
    /// Within-batch successors (local ids).
    std::vector<std::vector<int>> succ;
    /// Per-task predecessors living in EARLIER batches (global ids); every
    /// one must be flagged `exported` in its own batch.  Leave empty on the
    /// first batch.
    std::vector<std::vector<long>> cross_preds;
    /// Per-task flag: may be named in a later batch's cross_preds.  Empty =
    /// no task of this batch is exported.
    std::vector<char> exported;
  };

  /// Handle to one submitted graph.
  class Run {
   public:
    /// Blocks until the graph completed, drained after cancellation, or
    /// stalled on a cycle.  Rethrows the first worker exception (lowest
    /// task id wins), matching execute_task_graph.
    ExecutionReport wait();
    bool done() const;

   private:
    friend class SharedRuntime;
    Run() = default;

    const std::vector<std::vector<int>>* succ_ = nullptr;
    std::function<void(int)> body_;
    std::vector<double> prio_;  // normalized + boosted; empty = unordered
    std::vector<std::atomic<int>> indeg_;
    CancelToken own_cancel_;
    CancelToken* cancel_ = nullptr;
    int n_ = 0;
    int slot_ = -1;
    std::atomic<long> outstanding_{0};
    std::atomic<long> done_count_{0};

    std::mutex err_mu_;
    int err_task_ = 0;
    std::exception_ptr error_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    bool finished_ = false;
    ExecutionReport report_;

    // --- dynamic-graph state (submit_dynamic only) ---
    struct Batch {
      long base = 0;
      int n = 0;
      std::function<void(int)> body;
      std::vector<double> prio;  // final values; empty = unordered
      std::vector<std::atomic<int>> indeg;
      std::vector<std::vector<int>> succ;  // local ids
      /// Successors added by LATER batches (global ids); guarded by the
      /// run's append_mu_, handed to the finisher when the task retires.
      std::vector<std::vector<long>> cross_succ;
      std::vector<char> exported;
      std::vector<char> done;  // guarded by append_mu_
    };
    bool dynamic_ = false;
    int max_batches_ = 0;
    std::unique_ptr<std::unique_ptr<Batch>[]> batches_;
    std::unique_ptr<long[]> batch_end_;  // exclusive end gid per batch
    std::atomic<int> batch_count_{0};
    long total_tasks_ = 0;  // guarded by append_mu_
    std::mutex append_mu_;
  };

  /// `threads` workers (min 1); at most `max_graphs` DAGs in flight --
  /// further submits block until a slot frees (admission backpressure).
  explicit SharedRuntime(int threads, int max_graphs = 256);

  /// Waits for every submitted graph to finish, then stops the workers.
  ~SharedRuntime();

  SharedRuntime(const SharedRuntime&) = delete;
  SharedRuntime& operator=(const SharedRuntime&) = delete;

  int threads() const { return static_cast<int>(workers_.size()); }
  /// Graphs retired since construction (completed, cancelled, or cyclic).
  long graphs_completed() const {
    return graphs_completed_.load(std::memory_order_relaxed);
  }

  std::shared_ptr<Run> submit(GraphSpec spec);

  /// submit() + wait(): the drop-in blocking shape execute_task_graph
  /// routes through when ExecOptions::shared is set.
  ExecutionReport run_graph(GraphSpec spec) { return submit(std::move(spec))->wait(); }

  /// Submits a DYNAMIC graph (header: "DYNAMIC graphs").  `first` is batch
  /// 0 (its cross_preds must be empty and it must have at least one root);
  /// at most `max_batches` batches total may ever exist.  `cancel` follows
  /// GraphSpec::cancel semantics.
  std::shared_ptr<Run> submit_dynamic(BatchSpec first, int max_batches,
                                      CancelToken* cancel = nullptr);

  /// Splices a new batch into a running dynamic graph and releases its
  /// ready tasks.  MUST be called from inside a running task of `run` (the
  /// caller's own outstanding count is what keeps the run from retiring
  /// mid-append).  Returns the batch's base global id.
  long append_batch(const std::shared_ptr<Run>& run, BatchSpec batch);

 private:
  struct alignas(64) Worker {
    Worker(int id_, std::uint64_t seed) : id(id_), rng_state(seed) {}
    const int id;
    WorkStealDeque64 deque;
    std::uint64_t rng_state;
    std::vector<int> ready;  // scratch for newly released successors
    std::vector<long> cross;  // scratch: exported task's late successors
    std::thread thread;
  };

  static std::int64_t pack(int slot, int task) {
    return (static_cast<std::int64_t>(slot) << 32) |
           static_cast<std::int64_t>(static_cast<std::uint32_t>(task));
  }

  std::uint64_t next_rand(Worker& me) {
    // xorshift64*: per-worker, no allocation, good enough for victim picks.
    std::uint64_t x = me.rng_state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    me.rng_state = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  static std::unique_ptr<Run::Batch> make_batch(BatchSpec&& spec);
  void worker_loop(int tid);
  void run_item(Worker& me, std::int64_t item);
  void run_item_dynamic(Worker& me, Run* r, int slot, int gid);
  /// Publishes a run (slot claim + root injection); shared by submit and
  /// submit_dynamic.  `roots` are task/global ids, sorted most critical
  /// first by the caller.
  void publish_run(const std::shared_ptr<Run>& run, std::vector<int> roots);
  void finish_run(Run* r);
  std::int64_t steal(Worker& me);
  std::int64_t take_injected();
  bool work_visible() const;
  void idle(Worker& me);
  void wake_workers();

  const int max_graphs_;
  std::vector<std::unique_ptr<Worker>> workers_;

  // Slot table: workers dereference slots_[item.slot] lock-free; ownership
  // (and slot recycling) is tracked under reg_mu_.
  std::unique_ptr<std::atomic<Run*>[]> slots_;
  std::mutex reg_mu_;
  std::condition_variable slot_cv_;   // submitters waiting for a free slot
  std::condition_variable drain_cv_;  // destructor waiting for active == 0
  std::vector<std::shared_ptr<Run>> owners_;  // keeps unwaited runs alive
  std::vector<int> free_slots_;
  int active_ = 0;

  // FIFO injection queue: roots of newly submitted graphs (workers own
  // their deques, so a submitter cannot push into them directly).
  std::mutex inject_mu_;
  std::deque<std::int64_t> inject_;
  std::atomic<long> inject_count_{0};

  // Park/wake protocol, same epoch scheme as the single-DAG engine.
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> wake_epoch_{0};
  std::atomic<int> sleepers_{0};
  std::mutex park_mu_;
  std::condition_variable park_cv_;

  std::atomic<long> graphs_completed_{0};
};

}  // namespace plu::rt
