#include "runtime/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <set>
#include <unordered_set>

namespace plu::rt {

namespace {

struct Event {
  double time;
  int kind;  // 0 = task becomes ready (owner mode), 1 = task finishes
  int id;
  bool operator>(const Event& o) const {
    if (time != o.time) return time > o.time;
    if (kind != o.kind) return kind > o.kind;
    return id > o.id;
  }
};

struct ReadyEntry {
  double priority;
  int id;
  bool operator<(const ReadyEntry& o) const {
    // max-heap on priority; deterministic tie-break on id.
    if (priority != o.priority) return priority < o.priority;
    return id > o.id;
  }
};

/// Per-edge payload: what the consumer fetches when it runs remotely from
/// the producer.
double edge_bytes(const taskgraph::TaskCosts& costs, int producer) {
  return costs.output_bytes.empty() ? 0.0 : costs.output_bytes[producer];
}

struct Contrib {
  double finish;
  int proc;
  double bytes;
  int producer;
};

SimulationResult simulate_owner(const taskgraph::TaskGraph& g,
                                const taskgraph::TaskCosts& costs,
                                const MachineModel& machine,
                                SchedulePolicy policy, bool keep_trace) {
  const int n = g.size();
  const OwnerMap owners{machine.processors};
  SimulationResult res;
  res.busy_seconds.assign(machine.processors, 0.0);
  if (n == 0) return res;

  std::vector<int> proc_of(n);
  for (int id = 0; id < n; ++id) proc_of[id] = owners.owner(g.tasks.task(id).j);

  std::vector<double> priority(n, 0.0);
  if (policy == SchedulePolicy::kCriticalPath) {
    priority = taskgraph::bottom_levels(g, costs.flops);
  }

  std::vector<int> remaining = g.indegree;
  std::vector<double> ready_time(n, 0.0);
  std::vector<double> finish_time(n, 0.0);
  std::vector<double> start_time(n, 0.0);
  std::vector<char> started(n, 0);

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  std::vector<std::priority_queue<ReadyEntry>> ready(machine.processors);
  std::vector<char> busy(machine.processors, 0);
  std::unordered_set<long long> message_keys;

  for (int id = 0; id < n; ++id) {
    if (g.indegree[id] == 0) events.push({0.0, 0, id});
  }

  auto try_start = [&](int p, double now) {
    if (busy[p] || ready[p].empty()) return;
    int id = ready[p].top().id;
    ready[p].pop();
    busy[p] = 1;
    started[id] = 1;
    start_time[id] = now;
    double dur = machine.compute_seconds(costs.flops[id]);
    finish_time[id] = now + dur;
    res.busy_seconds[p] += dur;
    events.push({finish_time[id], 1, id});
  };

  while (!events.empty()) {
    Event ev = events.top();
    events.pop();
    if (ev.kind == 0) {
      int p = proc_of[ev.id];
      ready[p].push({priority[ev.id], ev.id});
      try_start(p, ev.time);
    } else {
      int id = ev.id;
      int p = proc_of[id];
      busy[p] = 0;
      res.makespan = std::max(res.makespan, finish_time[id]);
      for (int s : g.succ[id]) {
        double delay = 0.0;
        if (proc_of[s] != p) {
          double bytes = edge_bytes(costs, id);
          delay = machine.message_seconds(bytes);
          long long key = static_cast<long long>(id) * machine.processors +
                          proc_of[s];
          if (message_keys.insert(key).second) {
            ++res.messages;
            res.message_bytes += bytes;
          }
        }
        ready_time[s] = std::max(ready_time[s], finish_time[id] + delay);
        if (--remaining[s] == 0) {
          events.push({ready_time[s], 0, s});
        }
      }
      try_start(p, ev.time);
    }
  }

  if (keep_trace) {
    res.trace.reserve(n);
    for (int id = 0; id < n; ++id) {
      if (started[id]) {
        res.trace.push_back({id, proc_of[id], start_time[id], finish_time[id]});
      }
    }
    std::sort(res.trace.begin(), res.trace.end(),
              [](const SimulatedTask& a, const SimulatedTask& b) {
                return a.start != b.start ? a.start < b.start : a.task < b.task;
              });
  }
  return res;
}

/// Graph-shape-agnostic free-schedule core: the 1-D simulate() and the
/// generic simulate_dag() both funnel here.
SimulationResult simulate_free_core(const std::vector<std::vector<int>>& succ,
                                    const std::vector<int>& indegree,
                                    const std::vector<double>& flops,
                                    const std::vector<double>& out_bytes,
                                    const MachineModel& machine,
                                    const std::vector<double>& priority_in,
                                    bool fifo, bool keep_trace) {
  const int n = static_cast<int>(succ.size());
  const int np = machine.processors;
  SimulationResult res;
  res.busy_seconds.assign(np, 0.0);
  if (n == 0) return res;

  std::vector<double> priority = priority_in;
  if (priority.empty()) priority.assign(n, 0.0);
  double fifo_counter = static_cast<double>(n);

  std::vector<int> remaining = indegree;
  std::vector<std::vector<Contrib>> contribs(n);
  std::vector<double> finish_time(n, 0.0);
  std::vector<double> start_time(n, 0.0);
  std::vector<int> proc_of(n, -1);
  std::vector<char> started(n, 0);

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  std::priority_queue<ReadyEntry> pool;  // enabled, unassigned tasks
  std::set<int> idle;                    // idle processors, ascending ids
  std::unordered_set<long long> message_keys;

  // Earliest start of task id on processor p given its predecessors.
  auto est = [&](int id, int p, double now) {
    double t = now;
    for (const Contrib& c : contribs[id]) {
      double avail =
          (c.proc == p) ? c.finish : c.finish + machine.message_seconds(c.bytes);
      t = std::max(t, avail);
    }
    return t;
  };

  auto start_on = [&](int id, int p, double now) {
    double s = est(id, p, now);
    // Account remote fetches as messages (one per producer/destination).
    for (const Contrib& c : contribs[id]) {
      if (c.proc != p && c.proc != -1) {
        long long key = static_cast<long long>(c.producer) * np + p;
        if (message_keys.insert(key).second) {
          ++res.messages;
          res.message_bytes += c.bytes;
        }
      }
    }
    proc_of[id] = p;
    started[id] = 1;
    start_time[id] = s;
    double dur = machine.compute_seconds(flops[id]);
    finish_time[id] = s + dur;
    res.busy_seconds[p] += dur;
    idle.erase(p);
    events.push({finish_time[id], 1, id});
  };

  auto enable = [&](int id, double now) {
    double prio = fifo ? fifo_counter-- : priority[id];
    if (!idle.empty()) {
      // Give it to the idle processor that can start it soonest.
      int best = -1;
      double best_est = 0.0;
      for (int p : idle) {
        double e = est(id, p, now);
        if (best == -1 || e < best_est) {
          best = p;
          best_est = e;
        }
      }
      start_on(id, best, now);
    } else {
      pool.push({prio, id});
    }
  };

  for (int p = 0; p < np; ++p) idle.insert(p);
  for (int id = 0; id < n; ++id) {
    if (indegree[id] == 0) enable(id, 0.0);
  }

  while (!events.empty()) {
    Event ev = events.top();
    events.pop();
    int id = ev.id;
    int p = proc_of[id];
    res.makespan = std::max(res.makespan, finish_time[id]);
    for (int s : succ[id]) {
      contribs[s].push_back({finish_time[id], p, out_bytes[id], id});
      if (--remaining[s] == 0) enable(s, ev.time);
    }
    if (proc_of[id] == p && started[id]) {
      // Processor p is free again.
      if (!pool.empty()) {
        int next = pool.top().id;
        pool.pop();
        start_on(next, p, ev.time);
      } else {
        idle.insert(p);
      }
    }
  }

  if (keep_trace) {
    res.trace.reserve(n);
    for (int id = 0; id < n; ++id) {
      if (started[id]) {
        res.trace.push_back({id, proc_of[id], start_time[id], finish_time[id]});
      }
    }
    std::sort(res.trace.begin(), res.trace.end(),
              [](const SimulatedTask& a, const SimulatedTask& b) {
                return a.start != b.start ? a.start < b.start : a.task < b.task;
              });
  }
  return res;
}

SimulationResult simulate_free(const taskgraph::TaskGraph& g,
                               const taskgraph::TaskCosts& costs,
                               const MachineModel& machine,
                               SchedulePolicy policy, bool keep_trace) {
  std::vector<double> priority;
  if (policy == SchedulePolicy::kCriticalPath) {
    priority = taskgraph::bottom_levels(g, costs.flops);
  }
  return simulate_free_core(g.succ, g.indegree, costs.flops, costs.output_bytes,
                            machine, priority,
                            policy == SchedulePolicy::kFifo, keep_trace);
}

}  // namespace

SimulationResult simulate(const taskgraph::TaskGraph& g,
                          const taskgraph::TaskCosts& costs,
                          const MachineModel& machine, SchedulePolicy policy,
                          bool keep_trace, MappingPolicy mapping) {
  return mapping == MappingPolicy::kOwnerComputes
             ? simulate_owner(g, costs, machine, policy, keep_trace)
             : simulate_free(g, costs, machine, policy, keep_trace);
}

SimulationResult simulate_dag(const std::vector<std::vector<int>>& succ,
                              const std::vector<int>& indegree,
                              const std::vector<double>& flops,
                              const std::vector<double>& output_bytes,
                              const MachineModel& machine,
                              const std::vector<double>& priorities) {
  std::vector<double> priority = priorities;
  if (priority.empty() && !succ.empty()) {
    // Bottom levels via a generic Kahn sweep.
    const int n = static_cast<int>(succ.size());
    std::vector<int> indeg = indegree;
    std::vector<int> order;
    order.reserve(n);
    for (int v = 0; v < n; ++v) {
      if (indeg[v] == 0) order.push_back(v);
    }
    for (std::size_t h = 0; h < order.size(); ++h) {
      for (int s : succ[order[h]]) {
        if (--indeg[s] == 0) order.push_back(s);
      }
    }
    priority.assign(n, 0.0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      double best = 0.0;
      for (int s : succ[*it]) best = std::max(best, priority[s]);
      priority[*it] = flops[*it] + best;
    }
  }
  return simulate_free_core(succ, indegree, flops, output_bytes, machine,
                            priority, false, false);
}

SimulationResult simulate_dag_pinned(const std::vector<std::vector<int>>& succ,
                                     const std::vector<int>& indegree,
                                     const std::vector<double>& flops,
                                     const std::vector<double>& out_bytes,
                                     const MachineModel& machine,
                                     const std::vector<int>& owner_of,
                                     const std::vector<double>& priorities) {
  const int n = static_cast<int>(succ.size());
  SimulationResult res;
  res.busy_seconds.assign(machine.processors, 0.0);
  if (n == 0) return res;
  assert(static_cast<int>(owner_of.size()) == n);

  std::vector<double> priority = priorities;
  if (priority.empty()) {
    // Generic bottom levels.
    std::vector<int> indeg = indegree;
    std::vector<int> order;
    order.reserve(n);
    for (int v = 0; v < n; ++v) {
      if (indeg[v] == 0) order.push_back(v);
    }
    for (std::size_t h = 0; h < order.size(); ++h) {
      for (int s : succ[order[h]]) {
        if (--indeg[s] == 0) order.push_back(s);
      }
    }
    priority.assign(n, 0.0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      double best = 0.0;
      for (int s : succ[*it]) best = std::max(best, priority[s]);
      priority[*it] = flops[*it] + best;
    }
  }

  std::vector<int> remaining = indegree;
  std::vector<double> ready_time(n, 0.0);
  std::vector<double> finish_time(n, 0.0);
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  std::vector<std::priority_queue<ReadyEntry>> ready(machine.processors);
  std::vector<char> busy(machine.processors, 0);
  std::unordered_set<long long> message_keys;

  for (int id = 0; id < n; ++id) {
    if (indegree[id] == 0) events.push({0.0, 0, id});
  }
  auto try_start = [&](int p, double now) {
    if (busy[p] || ready[p].empty()) return;
    int id = ready[p].top().id;
    ready[p].pop();
    busy[p] = 1;
    double dur = machine.compute_seconds(flops[id]);
    finish_time[id] = now + dur;
    res.busy_seconds[p] += dur;
    events.push({finish_time[id], 1, id});
  };
  while (!events.empty()) {
    Event ev = events.top();
    events.pop();
    if (ev.kind == 0) {
      int p = owner_of[ev.id];
      ready[p].push({priority[ev.id], ev.id});
      try_start(p, ev.time);
    } else {
      int id = ev.id;
      int p = owner_of[id];
      busy[p] = 0;
      res.makespan = std::max(res.makespan, finish_time[id]);
      for (int s : succ[id]) {
        double delay = 0.0;
        if (owner_of[s] != p) {
          double bytes = out_bytes[id];
          delay = machine.message_seconds(bytes);
          long long key = static_cast<long long>(id) * machine.processors +
                          owner_of[s];
          if (message_keys.insert(key).second) {
            ++res.messages;
            res.message_bytes += bytes;
          }
        }
        ready_time[s] = std::max(ready_time[s], finish_time[id] + delay);
        if (--remaining[s] == 0) events.push({ready_time[s], 0, s});
      }
      try_start(p, ev.time);
    }
  }
  return res;
}

double simulated_serial_seconds(const taskgraph::TaskCosts& costs,
                                const MachineModel& machine) {
  double t = 0.0;
  for (double f : costs.flops) t += machine.compute_seconds(f);
  return t;
}

StaticSchedule plan_schedule(const taskgraph::TaskGraph& g,
                             const taskgraph::TaskCosts& costs,
                             const MachineModel& machine, SchedulePolicy policy,
                             MappingPolicy mapping) {
  SimulationResult r = simulate(g, costs, machine, policy, true, mapping);
  StaticSchedule s;
  s.proc_lists.assign(machine.processors, {});
  // The trace is sorted by start time, so appending preserves per-processor
  // execution order.
  for (const SimulatedTask& t : r.trace) {
    s.proc_lists[t.processor].push_back(t.task);
  }
  return s;
}

SimulationResult replay_schedule(const taskgraph::TaskGraph& g,
                                 const taskgraph::TaskCosts& costs,
                                 const std::vector<double>& actual_flops,
                                 const MachineModel& machine,
                                 const StaticSchedule& schedule, bool keep_trace) {
  const int n = g.size();
  const int np = static_cast<int>(schedule.proc_lists.size());
  SimulationResult res;
  res.busy_seconds.assign(np, 0.0);
  if (n == 0) return res;
  assert(static_cast<int>(actual_flops.size()) == n);

  std::vector<int> proc_of(n, -1);
  for (int p = 0; p < np; ++p) {
    for (int id : schedule.proc_lists[p]) proc_of[id] = p;
  }
  std::vector<int> remaining = g.indegree;
  std::vector<double> arrival(n, 0.0);  // latest pred finish (+ message)
  std::vector<double> finish_time(n, 0.0);
  std::vector<double> start_time(n, 0.0);
  std::vector<std::size_t> next_in_list(np, 0);
  std::vector<double> proc_avail(np, 0.0);
  std::unordered_set<long long> message_keys;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  long done = 0;

  // Starts every processor whose head task has all predecessors finished.
  auto start_heads = [&](double now) {
    for (int p = 0; p < np; ++p) {
      while (next_in_list[p] < schedule.proc_lists[p].size()) {
        int id = schedule.proc_lists[p][next_in_list[p]];
        if (remaining[id] != 0) break;  // blocked on a predecessor
        double s = std::max({now, proc_avail[p], arrival[id]});
        start_time[id] = s;
        double dur = machine.compute_seconds(actual_flops[id]);
        finish_time[id] = s + dur;
        res.busy_seconds[p] += dur;
        proc_avail[p] = finish_time[id];
        events.push({finish_time[id], 1, id});
        ++next_in_list[p];
        // Keep going: the next list entry may already be unblocked; it
        // queues behind this one via proc_avail.
      }
    }
  };

  start_heads(0.0);
  while (!events.empty()) {
    Event ev = events.top();
    events.pop();
    int id = ev.id;
    ++done;
    res.makespan = std::max(res.makespan, finish_time[id]);
    for (int s : g.succ[id]) {
      double delay = 0.0;
      if (proc_of[s] != proc_of[id]) {
        double bytes = edge_bytes(costs, id);
        delay = machine.message_seconds(bytes);
        long long key = static_cast<long long>(id) * np + proc_of[s];
        if (message_keys.insert(key).second) {
          ++res.messages;
          res.message_bytes += bytes;
        }
      }
      arrival[s] = std::max(arrival[s], finish_time[id] + delay);
      --remaining[s];
    }
    start_heads(ev.time);
  }
  assert(done == n);
  (void)done;

  if (keep_trace) {
    res.trace.reserve(n);
    for (int id = 0; id < n; ++id) {
      res.trace.push_back({id, proc_of[id], start_time[id], finish_time[id]});
    }
    std::sort(res.trace.begin(), res.trace.end(),
              [](const SimulatedTask& a, const SimulatedTask& b) {
                return a.start != b.start ? a.start < b.start : a.task < b.task;
              });
  }
  return res;
}

std::vector<double> perturb_costs(const std::vector<double>& flops, double spread,
                                  std::uint64_t seed) {
  std::vector<double> out(flops.size());
  for (std::size_t i = 0; i < flops.size(); ++i) {
    // splitmix64 of (i, seed) -> uniform in [-1, 1].
    std::uint64_t z = (static_cast<std::uint64_t>(i) + 0x9e3779b97f4a7c15ull) *
                      (seed * 2 + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    double u = 2.0 * (static_cast<double>(z >> 11) * 0x1.0p-53) - 1.0;
    out[i] = flops[i] * std::exp(u * spread);
  }
  return out;
}

bool validate_trace(const taskgraph::TaskGraph& g, const SimulationResult& r,
                    const MachineModel& machine) {
  const double eps = 1e-12;
  if (static_cast<int>(r.trace.size()) != g.size()) return false;
  std::vector<double> start(g.size()), finish(g.size());
  std::vector<int> proc(g.size());
  std::vector<std::vector<std::pair<double, double>>> per_proc(r.busy_seconds.size());
  for (const SimulatedTask& t : r.trace) {
    start[t.task] = t.start;
    finish[t.task] = t.finish;
    proc[t.task] = t.processor;
    per_proc[t.processor].push_back({t.start, t.finish});
  }
  // Non-overlap per processor.
  for (auto& iv : per_proc) {
    std::sort(iv.begin(), iv.end());
    for (std::size_t i = 1; i < iv.size(); ++i) {
      if (iv[i].first < iv[i - 1].second - eps) return false;
    }
  }
  // Edge ordering (with at least the compute dependence; message delays make
  // the gap larger, so >= finish is the conservative check).
  (void)machine;
  for (int u = 0; u < g.size(); ++u) {
    for (int v : g.succ[u]) {
      if (start[v] < finish[u] - eps) return false;
    }
  }
  return true;
}

}  // namespace plu::rt
