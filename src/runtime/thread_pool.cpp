#include "runtime/thread_pool.h"

#include <algorithm>

namespace plu::rt {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  bool wake;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push(std::move(job));
    ++in_flight_;
    // Only signal when a worker is actually parked: a busy pool re-checks
    // the queue on its own, and skipping the futex call keeps the central
    // queue's (baseline) overhead honest.
    wake = idle_waiters_ > 0;
  }
  if (wake) cv_job_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++idle_waiters_;
      cv_job_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      --idle_waiters_;
      if (stop_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace plu::rt
