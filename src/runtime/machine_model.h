// Machine model for the discrete-event simulator.
//
// Substitution (DESIGN.md section 3): the paper measured on an SGI Origin
// 2000 (R10000 @ 195 MHz, hypercube interconnect, SHMEM).  This host has a
// single core, so the multiprocessor experiments (Table 2, Figures 5-6) are
// reproduced on a simulated machine: P processors at a fixed flop rate,
// messages costed latency + bytes/bandwidth, 1-D block-cyclic column
// ownership (owner-computes).  The comparison between the two task graphs is
// a property of graph shape + schedule, which the simulator executes
// exactly; only absolute seconds are model-dependent.
#pragma once

#include <string>

namespace plu::rt {

struct MachineModel {
  int processors = 1;
  /// Sustained flop rate per processor.  ~10^8 matches the sparse-kernel
  /// efficiency of a 195 MHz R10000 (peak 390 Mflop/s, sparse codes reach a
  /// fraction of it).
  double flops_per_second = 1.2e8;
  /// One-way message latency.
  double latency_seconds = 15e-6;
  /// Link bandwidth (the Origin's peak node-to-node is ~600 Mbyte/s; SHMEM
  /// payloads see less).
  double bandwidth_bytes_per_second = 1.6e8;
  /// Fixed per-task scheduling overhead (RAPID-style runtime dispatch).
  double task_overhead_seconds = 4e-6;

  double compute_seconds(double flops) const {
    return task_overhead_seconds + flops / flops_per_second;
  }
  double message_seconds(double bytes) const {
    return latency_seconds + bytes / bandwidth_bytes_per_second;
  }

  static MachineModel origin2000(int p) {
    MachineModel m;
    m.processors = p;
    return m;
  }
};

/// 1-D block-cyclic ownership: block column k lives on processor k mod P.
struct OwnerMap {
  int processors = 1;
  int owner(int block_column) const { return block_column % processors; }
};

std::string describe(const MachineModel& m);

}  // namespace plu::rt
