#include "runtime/trace.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <vector>

#include "taskgraph/tasks.h"

namespace plu::rt {

namespace {

char glyph_for(int task) {
  static const char* kGlyphs =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
  return kGlyphs[task % 62];
}

}  // namespace

void write_ascii_gantt(std::ostream& os, const SimulationResult& r,
                       const GanttOptions& opt) {
  const int np = static_cast<int>(r.busy_seconds.size());
  if (r.makespan <= 0.0 || r.trace.empty()) {
    os << "(empty trace)\n";
    return;
  }
  const double scale = opt.width / r.makespan;
  std::vector<std::string> rows(np, std::string(opt.width, '.'));
  for (const SimulatedTask& t : r.trace) {
    int from = std::min(opt.width - 1, static_cast<int>(t.start * scale));
    int to = std::min(opt.width - 1, static_cast<int>(t.finish * scale));
    for (int c = from; c <= to; ++c) rows[t.processor][c] = glyph_for(t.task);
  }
  for (int p = 0; p < np; ++p) {
    os << "P" << p << " |" << rows[p] << "|\n";
  }
  os << "    0" << std::string(std::max(0, opt.width - 12), ' ')
     << r.makespan << " s\n";
}

void write_trace_csv(std::ostream& os, const SimulationResult& r,
                     const taskgraph::TaskList* tasks) {
  os << "task,label,processor,start,finish\n";
  for (const SimulatedTask& t : r.trace) {
    std::string label =
        tasks ? taskgraph::to_string(tasks->task(t.task)) : std::to_string(t.task);
    os << t.task << ',' << label << ',' << t.processor << ',' << t.start << ','
       << t.finish << '\n';
  }
}

std::string utilization_summary(const SimulationResult& r) {
  std::ostringstream os;
  double total = 0.0;
  os << "utilization:";
  for (std::size_t p = 0; p < r.busy_seconds.size(); ++p) {
    double u = r.makespan > 0 ? r.busy_seconds[p] / r.makespan : 0.0;
    total += u;
    os << " P" << p << "=" << static_cast<int>(100 * u + 0.5) << "%";
  }
  if (!r.busy_seconds.empty()) {
    os << "  mean="
       << static_cast<int>(100 * total / r.busy_seconds.size() + 0.5) << "%";
  }
  return os.str();
}

}  // namespace plu::rt
