// Footprint-based dynamic race detection for the task-graph runtime — the
// runtime cross-check of Theorem 4.
//
// The paper's lock-free claim is structural: updates whose sources lie in
// independent eforest subtrees are left unordered by the dependence graph
// because their pivot-candidate row blocks are disjoint (Theorem 4,
// verify_candidate_disjointness, BlockStructure::lockfree_safe).  The
// checker validates that claim dynamically: while the factorization runs,
// each task records the block resources it reads and writes; afterwards
// check() flags every pair of tasks that is UNORDERED in the transitive
// dependence relation of the graph yet has conflicting footprints
// (write/write, or read/write across tasks).  A correct graph over a
// lock-free-safe structure yields zero races under every legal
// interleaving; removing a single rule-4 edge makes the checker fire.
//
// Recording is wait-free with respect to other tasks: each task id is
// recorded only by the one thread running it, into its own slot, so the
// checker adds no synchronization that could mask executor bugs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "taskgraph/build.h"

namespace plu::rt {

enum class AccessKind { kRead, kWrite, kLockedWrite };

/// One conflicting, unordered task pair, with the first resource (dense
/// block, encoded row_block * num_blocks + col_block by the numeric layer)
/// it conflicts on.
struct FootprintRace {
  int task_a = 0;
  int task_b = 0;
  long resource = 0;
  AccessKind kind_a = AccessKind::kWrite;
  AccessKind kind_b = AccessKind::kWrite;
};

std::string to_string(const FootprintRace& r);

class RaceChecker {
 public:
  RaceChecker() = default;
  explicit RaceChecker(int num_tasks) { reset(num_tasks); }

  void reset(int num_tasks);
  int num_tasks() const { return static_cast<int>(acc_.size()); }

  /// Task `task` read `resource`.  Safe to call from the thread running the
  /// task while other tasks record concurrently.
  void read(int task, long resource);

  /// Task `task` wrote `resource` with no synchronization beyond the graph.
  void write(int task, long resource);

  /// Task `task` wrote `resource` while holding the mutex `lock_id`.  Two
  /// locked writes under the SAME lock are mutually excluded and assumed
  /// commutative (the numeric layer only locks additive / entry-disjoint
  /// updates), so they never race with each other; they still conflict
  /// with reads and with writes under other (or no) locks.
  void locked_write(int task, long resource, int lock_id);

  /// All conflicting task pairs left unordered by the transitive dependence
  /// relation of `succ` (one race per pair, first conflicting resource),
  /// capped at `max_races`.  `succ` must be acyclic and have one entry per
  /// task.
  std::vector<FootprintRace> check(const std::vector<std::vector<int>>& succ,
                                   std::size_t max_races = 100) const;
  std::vector<FootprintRace> check(const taskgraph::TaskGraph& g,
                                   std::size_t max_races = 100) const;

 private:
  struct Access {
    long resource = 0;
    int lock = -1;
    AccessKind kind = AccessKind::kRead;
  };

  std::vector<std::vector<Access>> acc_;  // per-task footprint
};

}  // namespace plu::rt
