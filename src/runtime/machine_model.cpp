#include "runtime/machine_model.h"

#include <sstream>

namespace plu::rt {

std::string describe(const MachineModel& m) {
  std::ostringstream os;
  os << m.processors << " proc @ " << m.flops_per_second / 1e6 << " Mflop/s, "
     << "latency " << m.latency_seconds * 1e6 << " us, bw "
     << m.bandwidth_bytes_per_second / 1e6 << " MB/s";
  return os.str();
}

}  // namespace plu::rt
