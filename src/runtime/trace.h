// Schedule trace rendering: turn a SimulationResult trace into an ASCII
// Gantt chart or a CSV stream for external plotting.  Used by the
// taskgraph explorer example and the benches' --trace diagnostics.
#pragma once

#include <iosfwd>
#include <string>

#include "runtime/simulator.h"
#include "taskgraph/build.h"

namespace plu::rt {

struct GanttOptions {
  int width = 100;         // character columns for the time axis
  int max_label_len = 10;  // task label budget per cell
};

/// Renders the trace as one row per processor; each task paints its span
/// with an identifying letter (cycling A..Z a..z 0..9).  Idle time is '.'.
void write_ascii_gantt(std::ostream& os, const SimulationResult& r,
                       const GanttOptions& opt = {});

/// CSV: task,label,processor,start,finish (label resolved from `tasks` when
/// provided, else the numeric id).
void write_trace_csv(std::ostream& os, const SimulationResult& r,
                     const taskgraph::TaskList* tasks = nullptr);

/// Utilization summary: per-processor busy fraction plus the mean.
std::string utilization_summary(const SimulationResult& r);

}  // namespace plu::rt
