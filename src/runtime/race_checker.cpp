#include "runtime/race_checker.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "taskgraph/analysis.h"

namespace plu::rt {

namespace {

const char* kind_name(AccessKind k) {
  switch (k) {
    case AccessKind::kRead: return "read";
    case AccessKind::kWrite: return "write";
    case AccessKind::kLockedWrite: return "locked-write";
  }
  return "?";
}

/// Read/read never conflicts; locked writes under one lock are serialized
/// and commutative by contract; everything else does conflict.
bool conflicts(AccessKind ka, int la, AccessKind kb, int lb) {
  if (ka == AccessKind::kRead && kb == AccessKind::kRead) return false;
  if (ka == AccessKind::kLockedWrite && kb == AccessKind::kLockedWrite &&
      la == lb) {
    return false;
  }
  return true;
}

}  // namespace

std::string to_string(const FootprintRace& r) {
  return "tasks " + std::to_string(r.task_a) + " (" + kind_name(r.kind_a) +
         ") and " + std::to_string(r.task_b) + " (" + kind_name(r.kind_b) +
         ") unordered on resource " + std::to_string(r.resource);
}

void RaceChecker::reset(int num_tasks) {
  acc_.assign(static_cast<std::size_t>(std::max(0, num_tasks)), {});
}

void RaceChecker::read(int task, long resource) {
  acc_[task].push_back({resource, -1, AccessKind::kRead});
}

void RaceChecker::write(int task, long resource) {
  acc_[task].push_back({resource, -1, AccessKind::kWrite});
}

void RaceChecker::locked_write(int task, long resource, int lock_id) {
  acc_[task].push_back({resource, lock_id, AccessKind::kLockedWrite});
}

std::vector<FootprintRace> RaceChecker::check(
    const std::vector<std::vector<int>>& succ, std::size_t max_races) const {
  if (succ.size() != acc_.size()) {
    throw std::invalid_argument("RaceChecker::check: graph/task-count mismatch");
  }
  std::vector<FootprintRace> races;
  if (acc_.empty()) return races;

  taskgraph::Reachability reach(succ);

  // Accessor lists per resource.  Within one task, keep only the strongest
  // access per resource (write > locked write > read) so repeated records
  // do not inflate the pairwise scan.
  struct Accessor {
    int task;
    int lock;
    AccessKind kind;
  };
  auto rank = [](AccessKind k) {
    return k == AccessKind::kWrite ? 2 : (k == AccessKind::kLockedWrite ? 1 : 0);
  };
  std::unordered_map<long, std::vector<Accessor>> by_resource;
  for (int t = 0; t < num_tasks(); ++t) {
    std::unordered_map<long, Access> strongest;
    for (const Access& a : acc_[t]) {
      auto [it, inserted] = strongest.emplace(a.resource, a);
      if (!inserted && rank(a.kind) > rank(it->second.kind)) it->second = a;
    }
    for (const auto& [res, a] : strongest) {
      by_resource[res].push_back({t, a.lock, a.kind});
    }
  }

  std::set<std::pair<int, int>> reported;
  for (const auto& [res, accs] : by_resource) {
    if (accs.size() < 2) continue;
    for (std::size_t i = 0; i < accs.size(); ++i) {
      for (std::size_t j = i + 1; j < accs.size(); ++j) {
        const Accessor& a = accs[i];
        const Accessor& b = accs[j];
        if (!conflicts(a.kind, a.lock, b.kind, b.lock)) continue;
        if (reach.ordered(a.task, b.task)) continue;
        auto key = std::minmax(a.task, b.task);
        if (!reported.insert({key.first, key.second}).second) continue;
        races.push_back({a.task, b.task, res, a.kind, b.kind});
        if (races.size() >= max_races) return races;
      }
    }
  }
  return races;
}

std::vector<FootprintRace> RaceChecker::check(const taskgraph::TaskGraph& g,
                                              std::size_t max_races) const {
  return check(g.succ, max_races);
}

}  // namespace plu::rt
