// Fork-join worker team for the parallel ANALYSIS tier.
//
// The numeric phase already runs on the work-stealing DAG runtime
// (runtime/dag_executor.h); the symbolic pipeline needs something much
// simpler: a sequence of data-parallel loops -- candidate-row unions inside
// one elimination step, per-column structure scans, per-tree supernode
// construction -- separated by barriers, where every loop's result must be
// BIT-IDENTICAL to the sequential pipeline (core/analysis.h documents the
// determinism contract; DESIGN.md section 11 explains why it holds).
//
// Team is that substrate: a fixed set of worker threads plus the calling
// thread, executing one parallel_for at a time with a static contiguous
// split of the index range.  Determinism does not come from the split --
// every loop the analysis runs is either write-disjoint (each lane owns the
// slots it writes) or commutative (bitset ORs, atomic counter bumps) -- but
// the static split keeps the write-disjoint arguments trivially checkable.
//
// Every parallel_for takes a WORK estimate; loops below the team's
// min_work threshold run inline on the caller, so the thousands of tiny
// elimination steps of a small matrix never pay the wake/barrier cost.
// Tests force min_work = 0 to drive every step through the parallel code
// paths on small inputs (that is what the TSan determinism gate runs).
//
// Header-only on purpose: the symbolic and taskgraph tiers sit BELOW the
// runtime library in the link order (plu_runtime depends on plu_taskgraph),
// so they can include this header without creating a library cycle.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace plu::rt {

/// OR `v` into `*p` atomically (relaxed: the analysis loops synchronize via
/// the barrier at the end of each parallel_for, and OR is commutative, so
/// ordering between lanes within a loop is irrelevant to the result).
inline void atomic_or_u64(std::uint64_t* p, std::uint64_t v) {
  if (v) std::atomic_ref<std::uint64_t>(*p).fetch_or(v, std::memory_order_relaxed);
}

/// Increment an int slot atomically (indegree counters built concurrently).
inline void atomic_add_int(int* p, int v) {
  std::atomic_ref<int>(*p).fetch_add(v, std::memory_order_relaxed);
}

class Team {
 public:
  /// Default per-loop work gate (abstract "word operations"): below this,
  /// parallel_for runs inline on the caller.
  static constexpr long kDefaultMinWork = 1 << 12;

  explicit Team(int threads, long min_work = kDefaultMinWork)
      : min_work_(min_work) {
    const int lanes = threads < 1 ? 1 : threads;
    workers_.reserve(lanes - 1);
    for (int lane = 1; lane < lanes; ++lane) {
      workers_.emplace_back([this, lane] { worker_loop(lane); });
    }
  }

  ~Team() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_start_.notify_all();
    for (auto& w : workers_) w.join();
  }

  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  /// Total lanes including the calling thread.
  int lanes() const { return static_cast<int>(workers_.size()) + 1; }

  long min_work() const { return min_work_; }

  /// Splits [0, n) into at most lanes() contiguous chunks and runs
  /// fn(begin, end, lane) on each, the caller taking chunk 0; returns after
  /// every chunk finished (barrier).  Runs inline (fn(0, n, 0)) when the
  /// estimated `work` is below min_work, when n < 2, or when the team has a
  /// single lane.  `fn` must be safe to invoke concurrently from several
  /// threads on disjoint ranges.
  template <class Fn>
  void parallel_for(long work, int n, Fn&& fn) {
    if (n <= 0) return;
    const int lanes_total = lanes();
    if (lanes_total == 1 || n < 2 || work < min_work_) {
      fn(0, n, 0);
      return;
    }
    const int chunks = n < lanes_total ? n : lanes_total;
    // Type-erase once per region; chunk bounds are recomputed per lane from
    // (n, chunks) so the job payload stays three ints + a function pointer.
    std::function<void(int, int, int)> body = std::ref(fn);
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_body_ = &body;
      job_n_ = n;
      job_chunks_ = chunks;
      remaining_ = static_cast<int>(workers_.size());
      ++epoch_;
    }
    cv_start_.notify_all();
    run_chunk(body, n, chunks, 0);
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return remaining_ == 0; });
    job_body_ = nullptr;
  }

 private:
  static void run_chunk(const std::function<void(int, int, int)>& body, int n,
                        int chunks, int chunk) {
    if (chunk >= chunks) return;
    const int b = static_cast<int>(static_cast<long long>(n) * chunk / chunks);
    const int e =
        static_cast<int>(static_cast<long long>(n) * (chunk + 1) / chunks);
    if (b < e) body(b, e, chunk);
  }

  void worker_loop(int lane) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(int, int, int)>* body;
      int n, chunks;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_start_.wait(lock, [&] { return stop_ || epoch_ != seen; });
        if (stop_) return;
        seen = epoch_;
        body = job_body_;
        n = job_n_;
        chunks = job_chunks_;
      }
      run_chunk(*body, n, chunks, lane);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--remaining_ == 0) cv_done_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(int, int, int)>* job_body_ = nullptr;
  int job_n_ = 0;
  int job_chunks_ = 0;
  int remaining_ = 0;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
  long min_work_;
};

}  // namespace plu::rt
