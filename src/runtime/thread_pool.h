// Minimal fixed-size thread pool: one mutex/condvar FIFO queue feeding all
// workers.  This is deliberately the simplest possible substrate -- it
// survives as the CENTRAL-QUEUE ablation baseline of the scheduler bench
// (rt::ExecutorKind::kCentralQueue); the production DAG executor runs on
// per-worker Chase-Lev deques instead (runtime/dag_executor.cpp).
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace plu::rt {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job; jobs may enqueue further jobs.
  void submit(std::function<void()> job);

  /// Blocks until all submitted jobs (including transitively submitted ones)
  /// have finished.
  void wait_idle();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mu_;
  std::condition_variable cv_job_;
  std::condition_variable cv_idle_;
  int in_flight_ = 0;
  int idle_waiters_ = 0;  // workers blocked in cv_job_.wait
  bool stop_ = false;
};

}  // namespace plu::rt
