// Minimal fixed-size thread pool (shared-memory execution substrate).
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace plu::rt {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job; jobs may enqueue further jobs.
  void submit(std::function<void()> job);

  /// Blocks until all submitted jobs (including transitively submitted ones)
  /// have finished.
  void wait_idle();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mu_;
  std::condition_variable cv_job_;
  std::condition_variable cv_idle_;
  int in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace plu::rt
