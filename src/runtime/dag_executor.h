// Shared-memory execution of a task dependence graph.
//
// Dependences are enforced with atomic indegree counters: a finished task
// decrements each successor's counter and enqueues those that hit zero.
// Tasks left unordered by the graph (updates from independent subtrees)
// touch disjoint blocks -- Theorem 4 / verify_candidate_disjointness -- so
// no additional synchronization is required beyond what the numeric layer
// chooses to take.
#pragma once

#include <functional>

#include "taskgraph/build.h"

namespace plu::rt {

struct ExecutionReport {
  long tasks_run = 0;
  bool completed = false;  // false if the graph was cyclic / run threw
};

/// Executes the graph on `num_threads` threads, invoking run(task_id) for
/// each task after all its predecessors finished.  run must not throw.
ExecutionReport execute_task_graph(const taskgraph::TaskGraph& g, int num_threads,
                                   const std::function<void(int)>& run);

/// Graph-shape-agnostic variant: any DAG as successor lists + indegrees
/// (used by the parallel triangular solves and the 2-D experiments).
ExecutionReport execute_dag(const std::vector<std::vector<int>>& succ,
                            const std::vector<int>& indegree, int num_threads,
                            const std::function<void(int)>& run);

/// Sequential reference execution in a given topological order (or the
/// default one when `order` is empty).
ExecutionReport execute_sequential(const taskgraph::TaskGraph& g,
                                   const std::function<void(int)>& run,
                                   const std::vector<int>& order = {});

}  // namespace plu::rt
