// Shared-memory execution of a task dependence graph.
//
// Dependences are enforced with atomic indegree counters: a finished task
// decrements each successor's counter and enqueues those that hit zero.
// Tasks left unordered by the graph (updates from independent subtrees)
// touch disjoint blocks -- Theorem 4 / verify_candidate_disjointness -- so
// no additional synchronization is required beyond what the numeric layer
// chooses to take.
#pragma once

#include <cstdint>
#include <functional>

#include "taskgraph/build.h"

namespace plu::rt {

struct ExecutionReport {
  long tasks_run = 0;
  bool completed = false;  // false if the graph was cyclic / run threw
};

/// Schedule perturbation for the fuzzed executors: instead of the FIFO pop
/// order the mutex happens to produce, workers pop a seed-determined RANDOM
/// ready task and may sleep a random delay before running it, so repeated
/// runs explore many legal interleavings of the unordered tasks (the ones
/// Theorem 4 leaves unordered).  Used by the concurrency-correctness tier
/// (tests/test_race_harness.cpp, ctest -L sanitize).
struct FuzzOptions {
  std::uint64_t seed = 1;
  /// Maximum injected pre-task delay in microseconds (uniform in
  /// [0, max_delay_us]; 0 disables delays and only shuffles pop order).
  int max_delay_us = 50;
};

/// Executes the graph on `num_threads` threads, invoking run(task_id) for
/// each task after all its predecessors finished.  run must not throw.
ExecutionReport execute_task_graph(const taskgraph::TaskGraph& g, int num_threads,
                                   const std::function<void(int)>& run);

/// Graph-shape-agnostic variant: any DAG as successor lists + indegrees
/// (used by the parallel triangular solves and the 2-D experiments).
ExecutionReport execute_dag(const std::vector<std::vector<int>>& succ,
                            const std::vector<int>& indegree, int num_threads,
                            const std::function<void(int)>& run);

/// Like execute_task_graph, but with the fuzzed ready-queue discipline of
/// `fuzz`.  Same completion semantics; different (still legal) interleaving
/// per seed.
ExecutionReport execute_task_graph_fuzzed(const taskgraph::TaskGraph& g,
                                          int num_threads, const FuzzOptions& fuzz,
                                          const std::function<void(int)>& run);

/// Fuzzed variant of execute_dag.  A cyclic graph runs the acyclic prefix
/// and reports completed == false (no task runs twice).
ExecutionReport execute_dag_fuzzed(const std::vector<std::vector<int>>& succ,
                                   const std::vector<int>& indegree,
                                   int num_threads, const FuzzOptions& fuzz,
                                   const std::function<void(int)>& run);

/// Sequential reference execution in a given topological order (or the
/// default one when `order` is empty).
ExecutionReport execute_sequential(const taskgraph::TaskGraph& g,
                                   const std::function<void(int)>& run,
                                   const std::vector<int>& order = {});

}  // namespace plu::rt
