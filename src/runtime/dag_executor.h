// Shared-memory execution of a task dependence graph.
//
// Dependences are enforced with atomic indegree counters: a finished task
// decrements each successor's counter (release) and the worker that drops a
// counter to zero acquires the task -- the release/acquire pair on the
// counter makes every predecessor's writes visible before the successor
// runs (see DESIGN.md, "The work-stealing runtime").  Tasks left unordered
// by the graph (updates from independent subtrees) touch disjoint blocks --
// Theorem 4 / verify_candidate_disjointness -- so no additional
// synchronization is required beyond what the numeric layer chooses to
// take.
//
// Two executors are kept runtime-selectable (ExecOptions::kind) so the
// scheduler ablation can measure one against the other:
//
//   kWorkStealing (default): per-worker Chase-Lev deques
//     (runtime/work_steal_deque.h).  A worker pushes the successors it
//     releases onto its own deque in ascending priority order and pops LIFO,
//     so it dives depth-first along the most critical chain it just enabled;
//     idle workers steal FIFO from a randomized victim, preferring -- by
//     two-choice top-task comparison -- the victim whose oldest task has the
//     higher critical-path priority.  Priorities are the classic bottom
//     levels (weighted longest path to a sink) over the per-task flop
//     estimates taskgraph::build annotates; idle workers spin with
//     exponential backoff before parking on a condvar.
//
//   kCentralQueue: the original single mutex/condvar FIFO queue
//     (runtime/thread_pool.h), preserved as the ablation baseline.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "taskgraph/build.h"

namespace plu::rt {

/// Cooperative cancellation of a DAG execution.  Any task body (or an
/// outside observer) may call cancel(); from then on the executors stop
/// releasing dependences, so every already-queued task drains WITHOUT
/// running and no new task becomes ready.  Tasks already in flight finish
/// normally -- nothing is interrupted mid-kernel, so the shared state a
/// task was mutating is never torn.  The numeric drivers use this to stop
/// the factorization at the first pivot breakdown (core/status.h).
class CancelToken {
 public:
  void cancel() noexcept { flag_.store(true, std::memory_order_release); }
  bool cancelled() const noexcept {
    return flag_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> flag_{false};
};

struct ExecutionReport {
  long tasks_run = 0;
  bool completed = false;  // false if the graph was cyclic or cancelled
  bool cancelled = false;  // the run was stopped by a CancelToken (or by a
                           // worker exception, which cancels before rethrow)
};

enum class ExecutorKind {
  kWorkStealing,  // Chase-Lev deques + critical-path steal preference
  kCentralQueue,  // single mutex/condvar FIFO queue (ablation baseline)
};

const char* to_string(ExecutorKind k);

class SharedRuntime;  // runtime/shared_runtime.h: persistent multi-DAG pool

/// Tuning and policy knobs for the non-fuzzed executors.
struct ExecOptions {
  ExecutorKind kind = ExecutorKind::kWorkStealing;
  /// When set, the graph is NOT run on a private worker team: it is
  /// submitted to this persistent multi-DAG runtime and the calling thread
  /// blocks until it completes, so DAGs from concurrent callers interleave
  /// on one shared pool (the solver-service path).  `num_threads` and
  /// `kind` are ignored -- the pool's size and work-stealing discipline
  /// apply; priorities, cancellation and the rethrow-on-caller exception
  /// contract carry over unchanged.
  SharedRuntime* shared = nullptr;
  /// Per-request priority fold for the shared runtime: added to this
  /// graph's normalized critical-path priorities, so a caller can bias the
  /// pool toward (or away from) its request.  Ignored without `shared`.
  double request_priority = 0.0;
  /// Per-task priorities, higher = schedule earlier (size n or empty).
  /// When empty, execute_task_graph derives critical-path bottom levels
  /// from the graph's flop annotations; execute_dag treats all tasks equal.
  const std::vector<double>* priorities = nullptr;
  /// Bound on the exponential backoff an idle worker spins through before
  /// parking on the condvar (iterations of the final spin round).
  int max_spin = 256;
  /// Optional cooperative cancellation: when the token is cancelled the
  /// executor stops releasing dependences and drains queued tasks without
  /// running them (ExecutionReport::cancelled).  A worker exception cancels
  /// the same token, so the caller can observe WHY a run stopped early.
  CancelToken* cancel = nullptr;
};

/// Schedule perturbation for the fuzzed executors: instead of the pop order
/// the scheduler happens to produce, workers pop a seed-determined RANDOM
/// ready task and may sleep a random delay before running it, so repeated
/// runs explore many legal interleavings of the unordered tasks (the ones
/// Theorem 4 leaves unordered).  Used by the concurrency-correctness tier
/// (tests/test_race_harness.cpp, ctest -L sanitize).
struct FuzzOptions {
  std::uint64_t seed = 1;
  /// Maximum injected pre-task delay in microseconds (uniform in
  /// [0, max_delay_us]; 0 disables delays and only shuffles pop order).
  int max_delay_us = 50;
  /// Same cooperative cancellation contract as ExecOptions::cancel.
  CancelToken* cancel = nullptr;
};

/// Executes the graph on `num_threads` threads, invoking run(task_id) for
/// each task after all its predecessors finished.  Uses the work-stealing
/// executor with critical-path priorities from the graph's flop annotations
/// unless `opt` says otherwise.
///
/// Worker-exception safety: if run(id) throws, the exception is captured
/// via std::exception_ptr, the execution is cancelled (queued tasks drain
/// without running, dependences stop being released), the worker threads
/// are joined, and the exception is RETHROWN on the calling thread -- never
/// std::terminate.  When several in-flight tasks throw, the exception of
/// the lowest task id among those that actually ran wins, so a single
/// failing task reports deterministically across schedules.
ExecutionReport execute_task_graph(const taskgraph::TaskGraph& g, int num_threads,
                                   const std::function<void(int)>& run,
                                   const ExecOptions& opt = {});

/// Graph-shape-agnostic variant: any DAG as successor lists + indegrees
/// (used by the parallel triangular solves and the 2-D experiments).  A
/// cyclic graph runs the acyclic prefix exactly once and reports
/// completed == false.
ExecutionReport execute_dag(const std::vector<std::vector<int>>& succ,
                            const std::vector<int>& indegree, int num_threads,
                            const std::function<void(int)>& run,
                            const ExecOptions& opt = {});

/// Like execute_task_graph, but with the fuzzed ready-queue discipline of
/// `fuzz`.  Same completion semantics; different (still legal) interleaving
/// per seed.
ExecutionReport execute_task_graph_fuzzed(const taskgraph::TaskGraph& g,
                                          int num_threads, const FuzzOptions& fuzz,
                                          const std::function<void(int)>& run);

/// Fuzzed variant of execute_dag.  A cyclic graph runs the acyclic prefix
/// and reports completed == false (no task runs twice).
ExecutionReport execute_dag_fuzzed(const std::vector<std::vector<int>>& succ,
                                   const std::vector<int>& indegree,
                                   int num_threads, const FuzzOptions& fuzz,
                                   const std::function<void(int)>& run);

/// Sequential reference execution in a given topological order (or the
/// default one when `order` is empty).
ExecutionReport execute_sequential(const taskgraph::TaskGraph& g,
                                   const std::function<void(int)>& run,
                                   const std::vector<int>& order = {});

}  // namespace plu::rt
