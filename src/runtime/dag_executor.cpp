#include "runtime/dag_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <random>
#include <thread>

#include "runtime/thread_pool.h"
#include "taskgraph/analysis.h"

namespace plu::rt {

ExecutionReport execute_dag(const std::vector<std::vector<int>>& succ,
                            const std::vector<int>& indegree, int num_threads,
                            const std::function<void(int)>& run) {
  ExecutionReport rep;
  const int n = static_cast<int>(succ.size());
  if (n == 0) {
    rep.completed = true;
    return rep;
  }

  std::vector<std::atomic<int>> indeg(n);
  for (int v = 0; v < n; ++v) indeg[v].store(indegree[v], std::memory_order_relaxed);
  std::atomic<long> done{0};

  ThreadPool pool(num_threads);
  // self-submitting closure: running a task enqueues its newly-ready succs.
  std::function<void(int)> run_task = [&](int id) {
    run(id);
    done.fetch_add(1, std::memory_order_relaxed);
    for (int s : succ[id]) {
      if (indeg[s].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        pool.submit([&run_task, s] { run_task(s); });
      }
    }
  };
  for (int v = 0; v < n; ++v) {
    if (indegree[v] == 0) {
      pool.submit([&run_task, v] { run_task(v); });
    }
  }
  pool.wait_idle();
  rep.tasks_run = done.load();
  rep.completed = rep.tasks_run == n;
  return rep;
}

ExecutionReport execute_dag_fuzzed(const std::vector<std::vector<int>>& succ,
                                   const std::vector<int>& indegree,
                                   int num_threads, const FuzzOptions& fuzz,
                                   const std::function<void(int)>& run) {
  ExecutionReport rep;
  const int n = static_cast<int>(succ.size());
  if (n == 0) {
    rep.completed = true;
    return rep;
  }
  num_threads = std::max(1, num_threads);

  // One shared ready list under a mutex: workers pop a random element (so
  // the schedule is not the FIFO order the queue would impose) and sleep a
  // random delay before running, widening the window in which unordered
  // tasks actually overlap.  Termination: all tasks done, or the ready list
  // drained with nothing in flight (cyclic remainder).
  std::mutex mu;
  std::condition_variable cv;
  std::vector<int> indeg = indegree;
  std::vector<int> ready;
  for (int v = 0; v < n; ++v) {
    if (indeg[v] == 0) ready.push_back(v);
  }
  long done = 0;
  int active = 0;
  bool stop = ready.empty();  // all-cyclic graph: nothing ever runs

  auto worker = [&](int tid) {
    std::mt19937_64 rng(fuzz.seed * 0x9E3779B97F4A7C15ull +
                        static_cast<std::uint64_t>(tid + 1) * 0x100000001B3ull);
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      cv.wait(lock, [&] { return stop || !ready.empty(); });
      if (ready.empty()) {
        if (stop) return;
        continue;
      }
      const std::size_t pick = rng() % ready.size();
      std::swap(ready[pick], ready.back());
      const int id = ready.back();
      ready.pop_back();
      ++active;
      lock.unlock();
      if (fuzz.max_delay_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            rng() % static_cast<std::uint64_t>(fuzz.max_delay_us + 1)));
      }
      run(id);
      lock.lock();
      ++done;
      --active;
      for (int s : succ[id]) {
        if (--indeg[s] == 0) ready.push_back(s);
      }
      if (done == n || (ready.empty() && active == 0)) {
        stop = true;
        cv.notify_all();
      } else if (!ready.empty()) {
        cv.notify_all();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
  for (std::thread& th : threads) th.join();
  rep.tasks_run = done;
  rep.completed = done == n;
  return rep;
}

ExecutionReport execute_task_graph_fuzzed(const taskgraph::TaskGraph& g,
                                          int num_threads,
                                          const FuzzOptions& fuzz,
                                          const std::function<void(int)>& run) {
  if (g.size() != 0 && !taskgraph::is_acyclic(g)) return {};
  return execute_dag_fuzzed(g.succ, g.indegree, num_threads, fuzz, run);
}

ExecutionReport execute_task_graph(const taskgraph::TaskGraph& g, int num_threads,
                                   const std::function<void(int)>& run) {
  if (g.size() != 0 && !taskgraph::is_acyclic(g)) return {};
  return execute_dag(g.succ, g.indegree, num_threads, run);
}

ExecutionReport execute_sequential(const taskgraph::TaskGraph& g,
                                   const std::function<void(int)>& run,
                                   const std::vector<int>& order) {
  ExecutionReport rep;
  std::vector<int> topo = order.empty() ? taskgraph::topological_order(g) : order;
  if (static_cast<int>(topo.size()) != g.size()) return rep;
  for (int id : topo) {
    run(id);
    ++rep.tasks_run;
  }
  rep.completed = true;
  return rep;
}

}  // namespace plu::rt
