#include "runtime/dag_executor.h"

#include <atomic>
#include <memory>

#include "runtime/thread_pool.h"
#include "taskgraph/analysis.h"

namespace plu::rt {

ExecutionReport execute_dag(const std::vector<std::vector<int>>& succ,
                            const std::vector<int>& indegree, int num_threads,
                            const std::function<void(int)>& run) {
  ExecutionReport rep;
  const int n = static_cast<int>(succ.size());
  if (n == 0) {
    rep.completed = true;
    return rep;
  }

  std::vector<std::atomic<int>> indeg(n);
  for (int v = 0; v < n; ++v) indeg[v].store(indegree[v], std::memory_order_relaxed);
  std::atomic<long> done{0};

  ThreadPool pool(num_threads);
  // self-submitting closure: running a task enqueues its newly-ready succs.
  std::function<void(int)> run_task = [&](int id) {
    run(id);
    done.fetch_add(1, std::memory_order_relaxed);
    for (int s : succ[id]) {
      if (indeg[s].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        pool.submit([&run_task, s] { run_task(s); });
      }
    }
  };
  for (int v = 0; v < n; ++v) {
    if (indegree[v] == 0) {
      pool.submit([&run_task, v] { run_task(v); });
    }
  }
  pool.wait_idle();
  rep.tasks_run = done.load();
  rep.completed = rep.tasks_run == n;
  return rep;
}

ExecutionReport execute_task_graph(const taskgraph::TaskGraph& g, int num_threads,
                                   const std::function<void(int)>& run) {
  if (g.size() != 0 && !taskgraph::is_acyclic(g)) return {};
  return execute_dag(g.succ, g.indegree, num_threads, run);
}

ExecutionReport execute_sequential(const taskgraph::TaskGraph& g,
                                   const std::function<void(int)>& run,
                                   const std::vector<int>& order) {
  ExecutionReport rep;
  std::vector<int> topo = order.empty() ? taskgraph::topological_order(g) : order;
  if (static_cast<int>(topo.size()) != g.size()) return rep;
  for (int id : topo) {
    run(id);
    ++rep.tasks_run;
  }
  rep.completed = true;
  return rep;
}

}  // namespace plu::rt
