#include "runtime/dag_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <random>
#include <thread>

#include "runtime/shared_runtime.h"
#include "runtime/thread_pool.h"
#include "runtime/work_steal_deque.h"
#include "taskgraph/analysis.h"

namespace plu::rt {

namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

/// The work-stealing engine: one Chase-Lev deque per worker, lock-free
/// atomic indegree release, two-choice critical-path steal preference,
/// exponential backoff before parking.  One instance per execute() call --
/// the whole object lives on the calling thread's stack frame, so worker
/// threads never outlive the graph or the run closure.
class WorkStealEngine {
 public:
  WorkStealEngine(const std::vector<std::vector<int>>& succ,
                  const std::vector<int>& indegree, int num_threads,
                  const std::function<void(int)>& run,
                  const std::vector<double>* priorities, int max_spin,
                  CancelToken* cancel)
      : succ_(succ),
        run_(run),
        prio_(priorities && static_cast<int>(priorities->size()) ==
                                static_cast<int>(succ.size())
                  ? priorities
                  : nullptr),
        max_spin_(std::max(1, max_spin)),
        cancel_(cancel ? cancel : &own_cancel_),
        n_(static_cast<int>(succ.size())),
        indeg_(n_) {
    for (int v = 0; v < n_; ++v) {
      indeg_[v].store(indegree[v], std::memory_order_relaxed);
    }
    const int w = std::max(1, num_threads);
    workers_.reserve(w);
    for (int t = 0; t < w; ++t) {
      workers_.push_back(std::make_unique<Worker>(t, n_ / w + 8));
    }
  }

  ExecutionReport execute() {
    ExecutionReport rep;
    if (n_ == 0) {
      rep.completed = true;
      return rep;
    }
    // Seed the deques with the roots: dealt round-robin for initial balance,
    // swept in ascending priority order so each worker's LAST push -- the
    // first it will pop -- is its most critical root.
    std::vector<int> roots;
    for (int v = 0; v < n_; ++v) {
      if (indeg_[v].load(std::memory_order_relaxed) == 0) roots.push_back(v);
    }
    if (roots.empty()) return rep;  // fully cyclic: nothing ever runs
    sort_ascending_priority(roots);
    outstanding_.store(static_cast<long>(roots.size()),
                       std::memory_order_relaxed);
    const int w = static_cast<int>(workers_.size());
    for (std::size_t i = 0; i < roots.size(); ++i) {
      workers_[i % w]->deque.push(roots[i]);
    }

    std::vector<std::thread> threads;
    threads.reserve(w - 1);
    for (int t = 1; t < w; ++t) {
      threads.emplace_back([this, t] { worker_loop(t); });
    }
    worker_loop(0);
    for (std::thread& th : threads) th.join();

    // Worker-exception safety: rethrow the captured exception on the
    // calling thread, AFTER every worker has been joined (no thread touches
    // the engine or the run closure past this point).
    if (error_) std::rethrow_exception(error_);
    rep.tasks_run = done_.load(std::memory_order_relaxed);
    rep.cancelled = cancel_->cancelled();
    rep.completed = rep.tasks_run == n_;
    return rep;
  }

 private:
  struct alignas(64) Worker {
    Worker(int id_, std::int64_t cap_hint)
        : id(id_),
          deque(cap_hint),
          rng(0x9E3779B97F4A7C15ull ^ (static_cast<std::uint64_t>(id_) + 1)) {}
    const int id;
    WorkStealDeque deque;
    std::mt19937_64 rng;
    std::vector<int> ready;  // scratch for newly released successors
  };

  void sort_ascending_priority(std::vector<int>& ids) const {
    if (!prio_) return;
    std::stable_sort(ids.begin(), ids.end(), [this](int a, int b) {
      return (*prio_)[a] < (*prio_)[b];
    });
  }

  void worker_loop(int tid) {
    Worker& me = *workers_[tid];
    while (!stop_.load(std::memory_order_acquire)) {
      int id = me.deque.pop();
      if (id < 0) id = steal(me);
      if (id >= 0) {
        run_task(me, id);
        continue;
      }
      idle(me);
    }
  }

  void run_task(Worker& me, int id) {
    // Cooperative cancellation: once the token trips, queued tasks DRAIN
    // here -- no run, no dependence release -- so outstanding_ still
    // reaches zero and the engine terminates cleanly.
    if (!cancel_->cancelled()) {
      try {
        run_(id);
        done_.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        capture_error(id, std::current_exception());
        cancel_->cancel();
      }
    }
    // Lock-free release: the release half of the acq_rel fetch_sub publishes
    // every write this task made; the worker that drops a successor's
    // counter to zero acquires them all (dag_executor.h, DESIGN.md).
    me.ready.clear();
    if (!cancel_->cancelled()) {
      for (int s : succ_[id]) {
        if (indeg_[s].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          me.ready.push_back(s);
        }
      }
    }
    if (!me.ready.empty()) {
      // Ascending priority: the most critical successor is pushed last and
      // popped first, so this worker dives along the critical path.
      sort_ascending_priority(me.ready);
      outstanding_.fetch_add(static_cast<long>(me.ready.size()),
                             std::memory_order_relaxed);
      for (int s : me.ready) me.deque.push(s);
      wake_epoch_.fetch_add(1, std::memory_order_seq_cst);
      if (sleepers_.load(std::memory_order_acquire) > 0) {
        std::lock_guard<std::mutex> lock(park_mu_);
        park_cv_.notify_all();
      }
    }
    // This task is done: outstanding_ counts ready-or-running tasks, so the
    // successors were added BEFORE our own decrement -- the counter can only
    // reach zero when no task is queued anywhere and none is in flight
    // (which is also the cyclic-remainder exit).
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      stop_.store(true, std::memory_order_release);
      std::lock_guard<std::mutex> lock(park_mu_);
      park_cv_.notify_all();
    }
  }

  int pick_victim(Worker& me) {
    const int w = static_cast<int>(workers_.size());
    int v = static_cast<int>(me.rng() % static_cast<std::uint64_t>(w - 1));
    return v + (v >= me.id ? 1 : 0);  // uniform over the other workers
  }

  int steal(Worker& me) {
    const int w = static_cast<int>(workers_.size());
    if (w == 1) return WorkStealDeque::kEmpty;
    // Two-choice with critical-path preference: peek the oldest task of two
    // random victims and hit the one whose task has the higher bottom-level
    // priority first (the hint is racy; staleness only mis-prioritizes).
    for (int round = 0; round < 2; ++round) {
      int v1 = pick_victim(me);
      int v2 = pick_victim(me);
      if (prio_ && v1 != v2) {
        const int t1 = workers_[v1]->deque.peek_top();
        const int t2 = workers_[v2]->deque.peek_top();
        const double p1 = t1 >= 0 ? (*prio_)[t1] : -1.0;
        const double p2 = t2 >= 0 ? (*prio_)[t2] : -1.0;
        if (p2 > p1) std::swap(v1, v2);
      }
      for (int v : {v1, v2}) {
        const int r = workers_[v]->deque.steal();
        if (r >= 0) return r;
      }
    }
    // Full sweep from a random start so a lone loaded victim is found.
    const int start = static_cast<int>(me.rng() % static_cast<std::uint64_t>(w));
    for (int i = 0; i < w; ++i) {
      const int v = (start + i) % w;
      if (v == me.id) continue;
      int r = workers_[v]->deque.steal();
      if (r == WorkStealDeque::kAbort) r = workers_[v]->deque.steal();
      if (r >= 0) return r;
    }
    return WorkStealDeque::kEmpty;
  }

  bool work_visible() const {
    for (const auto& w : workers_) {
      if (w->deque.size_hint() > 0) return true;
    }
    return false;
  }

  void idle(Worker& me) {
    // Exponential backoff: spin rounds of 1, 2, 4, ..., max_spin pause
    // iterations, re-probing between rounds; yield each round so on an
    // oversubscribed core the worker actually holding work gets to run.
    for (int spins = 1; spins <= max_spin_; spins *= 2) {
      if (stop_.load(std::memory_order_acquire)) return;
      for (int i = 0; i < spins; ++i) cpu_relax();
      if (work_visible()) return;  // back to the caller's pop/steal loop
      std::this_thread::yield();
    }
    // Park.  Epoch protocol against lost wakeups: a producer bumps the
    // epoch AFTER pushing, so either we see its work in the probe below or
    // the epoch predicate is already true when we reach the wait.
    const std::uint64_t epoch = wake_epoch_.load(std::memory_order_seq_cst);
    if (work_visible() || stop_.load(std::memory_order_acquire)) return;
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lock(park_mu_);
      park_cv_.wait(lock, [&] {
        return stop_.load(std::memory_order_acquire) ||
               wake_epoch_.load(std::memory_order_seq_cst) != epoch;
      });
    }
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Keeps the exception of the LOWEST task id among those that threw, so
  /// the reported error is deterministic whenever a single task fails
  /// (cancellation usually prevents more than one from running anyway).
  void capture_error(int id, std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (!error_ || id < error_task_) {
      error_task_ = id;
      error_ = std::move(e);
    }
  }

  const std::vector<std::vector<int>>& succ_;
  const std::function<void(int)>& run_;
  const std::vector<double>* prio_;
  const int max_spin_;
  CancelToken own_cancel_;  // used when the caller passed no token
  CancelToken* const cancel_;
  const int n_;
  std::vector<std::atomic<int>> indeg_;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex error_mu_;
  int error_task_ = 0;
  std::exception_ptr error_;

  std::atomic<long> outstanding_{0};  // tasks queued or in flight
  std::atomic<long> done_{0};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> wake_epoch_{0};
  std::atomic<int> sleepers_{0};
  std::mutex park_mu_;
  std::condition_variable park_cv_;
};

/// The ablation baseline: every ready-task handoff goes through one
/// mutex/condvar FIFO queue (ThreadPool), self-submitting closures enqueue
/// newly released successors.
ExecutionReport execute_dag_central(const std::vector<std::vector<int>>& succ,
                                    const std::vector<int>& indegree,
                                    int num_threads,
                                    const std::function<void(int)>& run,
                                    CancelToken* cancel) {
  ExecutionReport rep;
  const int n = static_cast<int>(succ.size());
  if (n == 0) {
    rep.completed = true;
    return rep;
  }

  CancelToken own_cancel;
  CancelToken* const token = cancel ? cancel : &own_cancel;
  std::vector<std::atomic<int>> indeg(n);
  for (int v = 0; v < n; ++v) indeg[v].store(indegree[v], std::memory_order_relaxed);
  std::atomic<long> done{0};
  std::mutex error_mu;
  int error_task = 0;
  std::exception_ptr error;

  ThreadPool pool(num_threads);
  // self-submitting closure: running a task enqueues its newly-ready succs.
  // Once the token trips, queued closures drain without running or
  // releasing, so wait_idle() still returns.  An exception is captured (the
  // ThreadPool's workers would std::terminate otherwise), cancels the run,
  // and is rethrown on the submitting thread below.
  std::function<void(int)> run_task = [&](int id) {
    if (!token->cancelled()) {
      try {
        run(id);
        done.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!error || id < error_task) {
            error_task = id;
            error = std::current_exception();
          }
        }
        token->cancel();
      }
    }
    if (token->cancelled()) return;
    for (int s : succ[id]) {
      if (indeg[s].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        pool.submit([&run_task, s] { run_task(s); });
      }
    }
  };
  for (int v = 0; v < n; ++v) {
    if (indegree[v] == 0) {
      pool.submit([&run_task, v] { run_task(v); });
    }
  }
  pool.wait_idle();
  if (error) std::rethrow_exception(error);
  rep.tasks_run = done.load();
  rep.cancelled = token->cancelled();
  rep.completed = rep.tasks_run == n;
  return rep;
}

}  // namespace

const char* to_string(ExecutorKind k) {
  return k == ExecutorKind::kWorkStealing ? "work-stealing" : "central-queue";
}

ExecutionReport execute_dag(const std::vector<std::vector<int>>& succ,
                            const std::vector<int>& indegree, int num_threads,
                            const std::function<void(int)>& run,
                            const ExecOptions& opt) {
  if (opt.shared != nullptr) {
    // Multi-DAG path: hand the graph to the persistent pool and block.  The
    // pool owns the worker team; this call keeps succ/indegree/run alive
    // for the duration, and wait() rethrows any worker exception here.
    SharedRuntime::GraphSpec spec;
    spec.succ = &succ;
    spec.indegree = &indegree;
    spec.run = run;
    spec.priorities = opt.priorities;
    spec.boost = opt.request_priority;
    spec.cancel = opt.cancel;
    return opt.shared->run_graph(std::move(spec));
  }
  if (opt.kind == ExecutorKind::kCentralQueue) {
    return execute_dag_central(succ, indegree, num_threads, run, opt.cancel);
  }
  WorkStealEngine engine(succ, indegree, num_threads, run, opt.priorities,
                         opt.max_spin, opt.cancel);
  return engine.execute();
}

ExecutionReport execute_dag_fuzzed(const std::vector<std::vector<int>>& succ,
                                   const std::vector<int>& indegree,
                                   int num_threads, const FuzzOptions& fuzz,
                                   const std::function<void(int)>& run) {
  ExecutionReport rep;
  const int n = static_cast<int>(succ.size());
  if (n == 0) {
    rep.completed = true;
    return rep;
  }
  num_threads = std::max(1, num_threads);

  // One shared ready list under a mutex: workers pop a random element (so
  // the schedule is not the FIFO order the queue would impose) and sleep a
  // random delay before running, widening the window in which unordered
  // tasks actually overlap.  Termination: all tasks done, or the ready list
  // drained with nothing in flight (cyclic remainder).
  CancelToken own_cancel;
  CancelToken* const token = fuzz.cancel ? fuzz.cancel : &own_cancel;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<int> indeg = indegree;
  std::vector<int> ready;
  for (int v = 0; v < n; ++v) {
    if (indeg[v] == 0) ready.push_back(v);
  }
  long done = 0;
  int active = 0;
  bool stop = ready.empty();  // all-cyclic graph: nothing ever runs
  int error_task = 0;
  std::exception_ptr error;

  auto worker = [&](int tid) {
    std::mt19937_64 rng(fuzz.seed * 0x9E3779B97F4A7C15ull +
                        static_cast<std::uint64_t>(tid + 1) * 0x100000001B3ull);
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      cv.wait(lock, [&] { return stop || !ready.empty(); });
      if (ready.empty()) {
        if (stop) return;
        continue;
      }
      const std::size_t pick = rng() % ready.size();
      std::swap(ready[pick], ready.back());
      const int id = ready.back();
      ready.pop_back();
      // Cancelled: drain the ready list without running or releasing.
      if (token->cancelled()) {
        if (ready.empty() && active == 0) {
          stop = true;
          cv.notify_all();
        }
        continue;
      }
      ++active;
      lock.unlock();
      if (fuzz.max_delay_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            rng() % static_cast<std::uint64_t>(fuzz.max_delay_us + 1)));
      }
      bool ran = false;
      try {
        run(id);
        ran = true;
      } catch (...) {
        lock.lock();
        if (!error || id < error_task) {
          error_task = id;
          error = std::current_exception();
        }
        lock.unlock();
        token->cancel();
      }
      lock.lock();
      --active;
      if (ran && !token->cancelled()) {
        ++done;
        for (int s : succ[id]) {
          if (--indeg[s] == 0) ready.push_back(s);
        }
      } else if (ran) {
        ++done;  // ran before cancellation tripped; no release
      }
      if (done == n || (ready.empty() && active == 0)) {
        stop = true;
        cv.notify_all();
      } else if (!ready.empty()) {
        cv.notify_all();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
  for (std::thread& th : threads) th.join();
  if (error) std::rethrow_exception(error);
  rep.tasks_run = done;
  rep.cancelled = token->cancelled();
  rep.completed = done == n;
  return rep;
}

ExecutionReport execute_task_graph_fuzzed(const taskgraph::TaskGraph& g,
                                          int num_threads,
                                          const FuzzOptions& fuzz,
                                          const std::function<void(int)>& run) {
  if (g.size() != 0 && !taskgraph::is_acyclic(g)) return {};
  return execute_dag_fuzzed(g.succ, g.indegree, num_threads, fuzz, run);
}

ExecutionReport execute_task_graph(const taskgraph::TaskGraph& g, int num_threads,
                                   const std::function<void(int)>& run,
                                   const ExecOptions& opt) {
  if (g.size() != 0 && !taskgraph::is_acyclic(g)) return {};
  // Critical-path priority layer, computed once per execution: bottom
  // levels over the flop annotations taskgraph::build attaches at either
  // granularity (a task's priority is the weighted longest path from it to
  // a sink -- the classic list-scheduling priority).
  if ((opt.kind == ExecutorKind::kWorkStealing || opt.shared != nullptr) &&
      opt.priorities == nullptr &&
      g.flops.size() == static_cast<std::size_t>(g.size())) {
    std::vector<double> prio = taskgraph::bottom_levels(g, g.flops);
    ExecOptions with_prio = opt;
    with_prio.priorities = &prio;
    return execute_dag(g.succ, g.indegree, num_threads, run, with_prio);
  }
  return execute_dag(g.succ, g.indegree, num_threads, run, opt);
}

ExecutionReport execute_sequential(const taskgraph::TaskGraph& g,
                                   const std::function<void(int)>& run,
                                   const std::vector<int>& order) {
  ExecutionReport rep;
  std::vector<int> topo = order.empty() ? taskgraph::topological_order(g) : order;
  if (static_cast<int>(topo.size()) != g.size()) return rep;
  for (int id : topo) {
    run(id);
    ++rep.tasks_run;
  }
  rep.completed = true;
  return rep;
}

}  // namespace plu::rt
