// Discrete-event simulation of the task graph on a P-processor machine
// (the RAPID stand-in; DESIGN.md section 3).
//
// Two placement models:
//
//   kFreeSchedule (default; models RAPID on the ccNUMA Origin 2000): any
//   idle processor takes the highest-priority enabled task; an edge whose
//   endpoints ran on different processors delays the consumer by the edge's
//   payload (panel data for F->U, the update's column footprint for U->U
//   and U->F).  Independent-subtree updates to one column may run
//   concurrently -- they write disjoint blocks (Theorem 4) -- which is
//   precisely the parallelism the eforest graph exposes and the S* chain
//   forbids.
//
//   kOwnerComputes (ablation; models a strict 1-D distributed-memory
//   execution): Factor(k) and every Update(*, k) run on owner(k) =
//   k mod P, serializing all updates into a column on its owner.  Under
//   this model the two dependence graphs schedule almost identically --
//   the motivation for measuring both.
//
// Each processor executes one task at a time; priority is the bottom level
// (critical-path list scheduling) or FIFO for the A5 ablation.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/machine_model.h"
#include "taskgraph/analysis.h"
#include "taskgraph/build.h"
#include "taskgraph/costs.h"

namespace plu::rt {

enum class SchedulePolicy {
  kCriticalPath,  // bottom-level priorities
  kFifo,          // ready order (A5 ablation baseline)
};

enum class MappingPolicy {
  kFreeSchedule,   // any idle processor takes the best enabled task
  kOwnerComputes,  // tasks pinned to owner(target column) = j mod P
};

struct SimulatedTask {
  int task = 0;
  int processor = 0;
  double start = 0.0;
  double finish = 0.0;
};

struct SimulationResult {
  double makespan = 0.0;
  std::vector<double> busy_seconds;  // per processor
  long messages = 0;
  double message_bytes = 0.0;
  std::vector<SimulatedTask> trace;  // in start-time order

  double efficiency(double serial_seconds) const {
    return makespan > 0.0
               ? serial_seconds / (makespan * static_cast<double>(busy_seconds.size()))
               : 0.0;
  }
};

/// Simulates the graph on the machine.  `costs` must match g.tasks.
SimulationResult simulate(const taskgraph::TaskGraph& g,
                          const taskgraph::TaskCosts& costs,
                          const MachineModel& machine,
                          SchedulePolicy policy = SchedulePolicy::kCriticalPath,
                          bool keep_trace = false,
                          MappingPolicy mapping = MappingPolicy::kFreeSchedule);

/// Serial time under the same model (P = 1, no messages).
double simulated_serial_seconds(const taskgraph::TaskCosts& costs,
                                const MachineModel& machine);

// ---------------------------------------------------------------------------
// Static-schedule replay (the RAPID execution model)
// ---------------------------------------------------------------------------
// RAPID is an inspector/executor system: it computes one fixed schedule --
// a task-to-processor mapping plus a per-processor execution ORDER -- from
// cost estimates, then the executor runs each processor's list in order,
// blocking until the next task's inputs arrive.  When actual task times
// deviate from the estimates, a false dependence means a processor sits
// blocked behind a late predecessor it never really needed; a graph with
// only the least necessary dependences degrades gracefully.  This is the
// regime where the paper's Figures 5-6 improvements live: a fully dynamic
// work-conserving scheduler (simulate() above) absorbs the S* chains almost
// completely, because list scheduling releases updates in ascending source
// order anyway.

struct StaticSchedule {
  /// proc_lists[p] = task ids in execution order on processor p.
  std::vector<std::vector<int>> proc_lists;
};

/// Plans a schedule by running simulate() on the estimated costs and
/// recording each processor's task order.
StaticSchedule plan_schedule(const taskgraph::TaskGraph& g,
                             const taskgraph::TaskCosts& costs,
                             const MachineModel& machine,
                             SchedulePolicy policy = SchedulePolicy::kCriticalPath,
                             MappingPolicy mapping = MappingPolicy::kFreeSchedule);

/// Executes the fixed schedule with actual per-task times
/// `actual_flops[id]` (same shape as costs.flops); every processor runs its
/// list strictly in order, waiting for graph predecessors (plus message
/// delays for cross-processor edges).  Returns the realized makespan etc.
SimulationResult replay_schedule(const taskgraph::TaskGraph& g,
                                 const taskgraph::TaskCosts& costs,
                                 const std::vector<double>& actual_flops,
                                 const MachineModel& machine,
                                 const StaticSchedule& schedule,
                                 bool keep_trace = false);

/// Deterministic multiplicative perturbation of task costs: each flop count
/// is scaled by exp(u * spread) with u in [-1, 1] derived from a hash of
/// (task id, seed).  Models BLAS timing variance / cache effects between
/// the inspector's estimate and the executor's reality.
std::vector<double> perturb_costs(const std::vector<double>& flops,
                                  double spread, std::uint64_t seed);

/// Graph-shape-agnostic free-schedule simulation: any DAG given as
/// successor lists with per-task flops and output payloads (the bytes a
/// remote consumer must fetch).  This is what the 2-D task graphs
/// (taskgraph/build.h, Granularity::kBlock) run through.  Priorities empty => bottom levels.
SimulationResult simulate_dag(const std::vector<std::vector<int>>& succ,
                              const std::vector<int>& indegree,
                              const std::vector<double>& flops,
                              const std::vector<double>& output_bytes,
                              const MachineModel& machine,
                              const std::vector<double>& priorities = {});

/// Owner-computes variant of simulate_dag: task id runs on owner_of[id]
/// (must be < machine.processors).  Used for 2-D block-cyclic process-grid
/// placements of the 2-D task graphs.
SimulationResult simulate_dag_pinned(const std::vector<std::vector<int>>& succ,
                                     const std::vector<int>& indegree,
                                     const std::vector<double>& flops,
                                     const std::vector<double>& output_bytes,
                                     const MachineModel& machine,
                                     const std::vector<int>& owner_of,
                                     const std::vector<double>& priorities = {});

/// Checks the trace against the graph: per-processor non-overlap and every
/// edge ordered (test helper).
bool validate_trace(const taskgraph::TaskGraph& g, const SimulationResult& r,
                    const MachineModel& machine);

}  // namespace plu::rt
