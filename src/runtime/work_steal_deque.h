// Chase-Lev work-stealing deque of task ids (the per-worker ready queue of
// the work-stealing DAG executor, runtime/dag_executor.cpp).
//
// One OWNER thread pushes and pops at the bottom (LIFO, so a worker dives
// depth-first along the dependence chain it just released -- cache-warm and,
// with successors pushed in ascending priority order, critical-path-first).
// Any number of THIEF threads steal at the top (FIFO, so thieves take the
// oldest -- typically largest / highest-bottom-level -- task).
//
// The implementation follows Le, Pop, Cohen & Zappa Nardelli, "Correct and
// Efficient Work-Stealing for Weak Memory Models" (PPoPP'13), with one
// deliberate deviation: the published algorithm synchronizes pop against
// steal with standalone seq_cst fences, which ThreadSanitizer does not
// model (it would report false races on the cell accesses).  We instead put
// the seq_cst ordering on the top_/bottom_ accesses themselves -- the
// owner's bottom_ store in pop() and the loads of top_/bottom_ in pop() and
// steal() participate in the single total order of seq_cst operations,
// which gives exactly the store-load ordering the fences provided.  On
// x86-64 this costs one locked instruction in pop(); steals already CAS.
//
// Ring growth is owner-only: a full ring is copied into one twice the size
// and the old ring is RETIRED, not freed -- a thief that loaded the old
// ring pointer may still read a cell from it, and the value it reads is
// unchanged (grow copies, never mutates, the live range).  Retired rings
// are reclaimed when the deque is destroyed; total waste is bounded by 2x
// the peak ring size.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace plu::rt {

/// The deque is generic over the (signed integral) item type: the single-DAG
/// executor queues plain task ids (int), while the shared multi-DAG runtime
/// (runtime/shared_runtime.h) queues 64-bit handles packing (graph slot,
/// task id).  Valid items must be >= 0 -- the negative range is reserved for
/// kEmpty / kAbort.
template <typename T>
class BasicWorkStealDeque {
  static_assert(std::is_integral_v<T> && std::is_signed_v<T>,
                "deque items must be signed integers (negatives are sentinels)");

 public:
  static constexpr T kEmpty = T(-1);  // nothing to take
  static constexpr T kAbort = T(-2);  // lost a steal race; caller may retry

  explicit BasicWorkStealDeque(std::int64_t capacity_hint = 64) {
    std::int64_t cap = 16;
    while (cap < capacity_hint) cap <<= 1;
    rings_.push_back(std::make_unique<Ring>(cap));
    ring_.store(rings_.back().get(), std::memory_order_relaxed);
  }

  BasicWorkStealDeque(const BasicWorkStealDeque&) = delete;
  BasicWorkStealDeque& operator=(const BasicWorkStealDeque&) = delete;

  /// Owner only: push a task at the bottom.
  void push(T v) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* r = ring_.load(std::memory_order_relaxed);
    if (b - t >= r->capacity) r = grow(r, b, t);
    r->put(b, v);
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only: pop the most recently pushed task; kEmpty when drained.
  T pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* r = ring_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t < b) return r->get(b);  // more than one task left: no race possible
    if (t == b) {
      // Exactly one task: race a concurrent thief for it via top_.
      T v = r->get(b);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        v = kEmpty;  // the thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
      return v;
    }
    bottom_.store(b + 1, std::memory_order_relaxed);  // was empty; restore
    return kEmpty;
  }

  /// Thief: take the oldest task; kEmpty when none, kAbort on a lost race.
  T steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return kEmpty;
    // Read the cell BEFORE claiming it: the owner never overwrites index t
    // while top_ == t (push grows instead of wrapping onto a live range),
    // and grow retires rather than frees, so the read is safe even if we
    // lose the CAS.
    Ring* r = ring_.load(std::memory_order_acquire);
    const T v = r->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return kAbort;
    }
    return v;
  }

  /// Racy hint: the task id a steal() would currently take (kEmpty if the
  /// deque looks empty).  Used for two-choice victim selection -- the value
  /// may be stale by the time the steal lands, which only mis-prioritizes,
  /// never mis-executes.
  T peek_top() const {
    const std::int64_t t = top_.load(std::memory_order_acquire);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return kEmpty;
    return ring_.load(std::memory_order_acquire)->get(t);
  }

  /// Racy size hint (owner or monitor).
  std::int64_t size_hint() const {
    return bottom_.load(std::memory_order_relaxed) -
           top_.load(std::memory_order_relaxed);
  }

 private:
  struct Ring {
    explicit Ring(std::int64_t cap)
        : capacity(cap), mask(cap - 1), cells(new std::atomic<T>[cap]) {}
    const std::int64_t capacity;
    const std::int64_t mask;
    std::unique_ptr<std::atomic<T>[]> cells;

    T get(std::int64_t i) const {
      return cells[i & mask].load(std::memory_order_relaxed);
    }
    void put(std::int64_t i, T v) {
      cells[i & mask].store(v, std::memory_order_relaxed);
    }
  };

  /// Owner only: double the ring, copying the live range [t, b).
  Ring* grow(Ring* old, std::int64_t b, std::int64_t t) {
    rings_.push_back(std::make_unique<Ring>(old->capacity * 2));
    Ring* bigger = rings_.back().get();
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    ring_.store(bigger, std::memory_order_release);
    return bigger;
  }

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  std::atomic<Ring*> ring_{nullptr};
  std::vector<std::unique_ptr<Ring>> rings_;  // owner-only; keeps retired rings alive
};

/// Task-id deque of the single-DAG work-stealing executor.
using WorkStealDeque = BasicWorkStealDeque<int>;
/// Packed-handle deque of the shared multi-DAG runtime.
using WorkStealDeque64 = BasicWorkStealDeque<std::int64_t>;

}  // namespace plu::rt
