#include "runtime/shared_runtime.h"

#include <algorithm>
#include <stdexcept>

namespace plu::rt {

namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

constexpr int kMaxSpin = 256;

}  // namespace

ExecutionReport SharedRuntime::Run::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return finished_; });
  if (error_) std::rethrow_exception(error_);
  return report_;
}

bool SharedRuntime::Run::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_;
}

SharedRuntime::SharedRuntime(int threads, int max_graphs)
    : max_graphs_(std::max(1, max_graphs)) {
  slots_ = std::make_unique<std::atomic<Run*>[]>(max_graphs_);
  for (int s = 0; s < max_graphs_; ++s) {
    slots_[s].store(nullptr, std::memory_order_relaxed);
  }
  owners_.resize(max_graphs_);
  free_slots_.reserve(max_graphs_);
  for (int s = max_graphs_ - 1; s >= 0; --s) free_slots_.push_back(s);
  const int w = std::max(1, threads);
  workers_.reserve(w);
  for (int t = 0; t < w; ++t) {
    workers_.push_back(std::make_unique<Worker>(
        t, 0x9E3779B97F4A7C15ull ^ (static_cast<std::uint64_t>(t) + 1)));
  }
  for (int t = 0; t < w; ++t) {
    workers_[t]->thread = std::thread([this, t] { worker_loop(t); });
  }
}

SharedRuntime::~SharedRuntime() {
  {
    std::unique_lock<std::mutex> lock(reg_mu_);
    drain_cv_.wait(lock, [&] { return active_ == 0; });
  }
  shutdown_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    park_cv_.notify_all();
  }
  for (auto& w : workers_) w->thread.join();
}

std::shared_ptr<SharedRuntime::Run> SharedRuntime::submit(GraphSpec spec) {
  auto run = std::shared_ptr<Run>(new Run());
  const int n = static_cast<int>(spec.succ->size());
  run->succ_ = spec.succ;
  run->body_ = std::move(spec.run);
  run->cancel_ = spec.cancel ? spec.cancel : &run->own_cancel_;
  run->n_ = n;

  // Degenerate graphs never touch the pool: report immediately.
  std::vector<int> roots;
  if (n > 0) {
    run->indeg_ = std::vector<std::atomic<int>>(n);
    for (int v = 0; v < n; ++v) {
      run->indeg_[v].store((*spec.indegree)[v], std::memory_order_relaxed);
      if ((*spec.indegree)[v] == 0) roots.push_back(v);
    }
  }
  if (n == 0 || roots.empty()) {
    std::lock_guard<std::mutex> lock(run->mu_);
    run->finished_ = true;
    run->report_.completed = n == 0;  // fully cyclic: nothing ever runs
    graphs_completed_.fetch_add(1, std::memory_order_relaxed);
    return run;
  }

  // Fold the per-request boost into NORMALIZED bottom levels so graphs of
  // very different sizes compare fairly (header comment).
  if (spec.priorities && static_cast<int>(spec.priorities->size()) == n) {
    double max_p = 0.0;
    for (double p : *spec.priorities) max_p = std::max(max_p, p);
    const double scale = max_p > 0.0 ? 1.0 / max_p : 0.0;
    run->prio_.resize(n);
    for (int v = 0; v < n; ++v) {
      run->prio_[v] = spec.boost + (*spec.priorities)[v] * scale;
    }
  } else if (spec.boost != 0.0) {
    run->prio_.assign(n, spec.boost);
  }
  run->outstanding_.store(static_cast<long>(roots.size()),
                          std::memory_order_relaxed);

  // Inject the roots FIFO, most critical first within this graph.
  if (!run->prio_.empty()) {
    std::stable_sort(roots.begin(), roots.end(), [&](int a, int b) {
      return run->prio_[a] > run->prio_[b];
    });
  }
  publish_run(run, std::move(roots));
  return run;
}

void SharedRuntime::publish_run(const std::shared_ptr<Run>& run,
                                std::vector<int> roots) {
  // Claim a slot (blocking = admission backpressure) and publish the run.
  int slot;
  {
    std::unique_lock<std::mutex> lock(reg_mu_);
    slot_cv_.wait(lock, [&] { return !free_slots_.empty(); });
    slot = free_slots_.back();
    free_slots_.pop_back();
    owners_[slot] = run;
    ++active_;
  }
  run->slot_ = slot;
  slots_[slot].store(run.get(), std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(inject_mu_);
    for (int v : roots) inject_.push_back(pack(slot, v));
    inject_count_.store(static_cast<long>(inject_.size()),
                        std::memory_order_release);
  }
  wake_workers();
}

/// Builds a dynamic batch from a spec (everything except base/cross_succ
/// linkage, which need the run's append lock).
std::unique_ptr<SharedRuntime::Run::Batch> SharedRuntime::make_batch(
    BatchSpec&& spec) {
  auto b = std::make_unique<Run::Batch>();
  const int n = spec.n;
  if (static_cast<int>(spec.indegree.size()) != n ||
      static_cast<int>(spec.succ.size()) != n ||
      (!spec.priorities.empty() &&
       static_cast<int>(spec.priorities.size()) != n) ||
      (!spec.cross_preds.empty() &&
       static_cast<int>(spec.cross_preds.size()) != n) ||
      (!spec.exported.empty() && static_cast<int>(spec.exported.size()) != n)) {
    throw std::invalid_argument("SharedRuntime: batch spec size mismatch");
  }
  b->n = n;
  b->body = std::move(spec.run);
  b->prio = std::move(spec.priorities);
  b->succ = std::move(spec.succ);
  b->exported = std::move(spec.exported);
  b->indeg = std::vector<std::atomic<int>>(n);
  for (int v = 0; v < n; ++v) {
    b->indeg[v].store(spec.indegree[v], std::memory_order_relaxed);
  }
  b->cross_succ.resize(n);
  if (!b->exported.empty()) b->done.assign(n, 0);
  return b;
}

std::shared_ptr<SharedRuntime::Run> SharedRuntime::submit_dynamic(
    BatchSpec first, int max_batches, CancelToken* cancel) {
  if (!first.cross_preds.empty()) {
    throw std::invalid_argument(
        "SharedRuntime::submit_dynamic: first batch cannot have cross-batch "
        "predecessors");
  }
  std::vector<int> first_indeg = first.indegree;  // make_batch moves the rest
  auto run = std::shared_ptr<Run>(new Run());
  run->dynamic_ = true;
  run->cancel_ = cancel ? cancel : &run->own_cancel_;
  run->max_batches_ = std::max(1, max_batches);
  run->batches_ =
      std::make_unique<std::unique_ptr<Run::Batch>[]>(run->max_batches_);
  run->batch_end_ = std::make_unique<long[]>(run->max_batches_);
  auto batch = make_batch(std::move(first));
  std::vector<int> roots;
  for (int v = 0; v < batch->n; ++v) {
    if (first_indeg[v] == 0) roots.push_back(v);
  }
  if (batch->n == 0 || roots.empty()) {
    throw std::invalid_argument(
        "SharedRuntime::submit_dynamic: first batch needs at least one root");
  }
  batch->base = 0;
  run->total_tasks_ = batch->n;
  run->batch_end_[0] = batch->n;
  run->batches_[0] = std::move(batch);
  run->batch_count_.store(1, std::memory_order_release);
  run->outstanding_.store(static_cast<long>(roots.size()),
                          std::memory_order_relaxed);
  const Run::Batch& b0 = *run->batches_[0];
  if (!b0.prio.empty()) {
    std::stable_sort(roots.begin(), roots.end(), [&](int a, int b) {
      return b0.prio[a] > b0.prio[b];
    });
  }
  publish_run(run, std::move(roots));
  return run;
}

long SharedRuntime::append_batch(const std::shared_ptr<Run>& run,
                                 BatchSpec spec) {
  Run* r = run.get();
  if (!r || !r->dynamic_) {
    throw std::logic_error("SharedRuntime::append_batch: not a dynamic run");
  }
  std::vector<int> base_indeg = spec.indegree;
  std::vector<std::vector<long>> cross_preds = std::move(spec.cross_preds);
  auto batch = make_batch(std::move(spec));
  std::vector<int> roots;  // global ids
  long base;
  {
    std::lock_guard<std::mutex> lock(r->append_mu_);
    const int bi = r->batch_count_.load(std::memory_order_relaxed);
    if (bi >= r->max_batches_) {
      throw std::logic_error("SharedRuntime::append_batch: max_batches hit");
    }
    base = r->total_tasks_;
    batch->base = base;
    // Link cross-batch completion edges.  For each predecessor: either it
    // already retired (drop the edge from the new task's indegree) or it
    // will release the successor when it does (record the edge on it).
    for (int t = 0; t < batch->n && !cross_preds.empty(); ++t) {
      for (long p : cross_preds[t]) {
        if (p < 0 || p >= base) {
          throw std::invalid_argument(
              "SharedRuntime::append_batch: cross predecessor out of range");
        }
        int pb = 0;
        while (r->batch_end_[pb] <= p) ++pb;
        Run::Batch& P = *r->batches_[pb];
        const int pl = static_cast<int>(p - P.base);
        if (P.exported.empty() || !P.exported[pl]) {
          throw std::invalid_argument(
              "SharedRuntime::append_batch: cross predecessor not exported");
        }
        if (P.done[pl]) {
          base_indeg[t] -= 1;
          batch->indeg[t].fetch_sub(1, std::memory_order_relaxed);
        } else {
          P.cross_succ[pl].push_back(base + t);
        }
      }
    }
    for (int t = 0; t < batch->n; ++t) {
      if (batch->indeg[t].load(std::memory_order_relaxed) == 0) {
        roots.push_back(static_cast<int>(base + t));
      }
    }
    r->total_tasks_ = base + batch->n;
    r->batch_end_[bi] = r->total_tasks_;
    const Run::Batch& B = *batch;
    r->batches_[bi] = std::move(batch);
    r->batch_count_.store(bi + 1, std::memory_order_release);
    if (!B.prio.empty()) {
      std::stable_sort(roots.begin(), roots.end(), [&](int a, int b) {
        return B.prio[a - base] > B.prio[b - base];
      });
    }
  }
  if (!roots.empty()) {
    // The calling task's own outstanding count keeps the run alive across
    // this window, so the adds can never race retirement.
    r->outstanding_.fetch_add(static_cast<long>(roots.size()),
                              std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(inject_mu_);
    for (int v : roots) inject_.push_back(pack(r->slot_, v));
    inject_count_.store(static_cast<long>(inject_.size()),
                        std::memory_order_release);
  }
  wake_workers();
  return base;
}

void SharedRuntime::wake_workers() {
  wake_epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> lock(park_mu_);
    park_cv_.notify_all();
  }
}

void SharedRuntime::worker_loop(int tid) {
  Worker& me = *workers_[tid];
  for (;;) {
    std::int64_t item = me.deque.pop();
    if (item < 0) item = steal(me);
    if (item < 0) item = take_injected();
    if (item >= 0) {
      run_item(me, item);
      continue;
    }
    if (shutdown_.load(std::memory_order_acquire)) return;
    idle(me);
  }
}

void SharedRuntime::run_item(Worker& me, std::int64_t item) {
  const int slot = static_cast<int>(item >> 32);
  const int id = static_cast<int>(item & 0xFFFFFFFFll);
  // The item holds its graph live (outstanding_ > 0 until we decrement
  // below), so this dereference can never see a retired slot.
  Run* r = slots_[slot].load(std::memory_order_acquire);
  if (r->dynamic_) {
    run_item_dynamic(me, r, slot, id);
    return;
  }
  if (!r->cancel_->cancelled()) {
    try {
      r->body_(id);
      r->done_count_.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(r->err_mu_);
        if (!r->error_ || id < r->err_task_) {
          r->err_task_ = id;
          r->error_ = std::current_exception();
        }
      }
      r->cancel_->cancel();
    }
  }
  // Release/drain, same memory-order story as the single-DAG engine: the
  // acq_rel fetch_sub publishes this task's writes to whichever worker
  // drops the successor's counter to zero.
  me.ready.clear();
  if (!r->cancel_->cancelled()) {
    for (int s : (*r->succ_)[id]) {
      if (r->indeg_[s].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        me.ready.push_back(s);
      }
    }
  }
  if (!me.ready.empty()) {
    if (!r->prio_.empty()) {
      // Ascending priority: the most critical successor is pushed last and
      // popped first -- the worker dives along this graph's critical path.
      std::stable_sort(me.ready.begin(), me.ready.end(), [&](int a, int b) {
        return r->prio_[a] < r->prio_[b];
      });
    }
    r->outstanding_.fetch_add(static_cast<long>(me.ready.size()),
                              std::memory_order_relaxed);
    for (int s : me.ready) me.deque.push(pack(slot, s));
    wake_workers();
  }
  if (r->outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    finish_run(r);
  }
}

void SharedRuntime::run_item_dynamic(Worker& me, Run* r, int slot, int gid) {
  // Locate the batch: batch_end_ is monotone, and every entry up to gid's
  // own batch was published before gid could be queued (append_mu_ +
  // injection/deque ordering), so this scan never reads an unwritten slot.
  int bi = 0;
  while (r->batch_end_[bi] <= gid) ++bi;
  Run::Batch& B = *r->batches_[bi];
  const int lid = gid - static_cast<int>(B.base);
  if (!r->cancel_->cancelled()) {
    try {
      B.body(lid);
      r->done_count_.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(r->err_mu_);
        if (!r->error_ || gid < r->err_task_) {
          r->err_task_ = gid;
          r->error_ = std::current_exception();
        }
      }
      r->cancel_->cancel();
    }
  }
  me.ready.clear();
  me.cross.clear();
  // Exported tasks retire under the append mutex -- even on the cancelled
  // drain path -- so an appender either sees done (and drops the edge) or
  // has already recorded the late successor for us to release here.
  if (!B.exported.empty() && B.exported[lid]) {
    std::lock_guard<std::mutex> lock(r->append_mu_);
    B.done[lid] = 1;
    me.cross.swap(B.cross_succ[lid]);
  }
  if (!r->cancel_->cancelled()) {
    for (int s : B.succ[lid]) {
      if (B.indeg[s].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        me.ready.push_back(static_cast<int>(B.base) + s);
      }
    }
    for (long g : me.cross) {
      int cb = bi + 1;
      while (r->batch_end_[cb] <= g) ++cb;
      Run::Batch& C = *r->batches_[cb];
      const int cl = static_cast<int>(g - C.base);
      if (C.indeg[cl].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        me.ready.push_back(static_cast<int>(g));
      }
    }
  }
  if (!me.ready.empty()) {
    // Ascending priority, popped LIFO: dive along the critical path.
    // Priorities are FINAL values, comparable across batches.
    auto prio_of = [&](int g) -> double {
      int b = 0;
      while (r->batch_end_[b] <= g) ++b;
      const Run::Batch& Q = *r->batches_[b];
      return Q.prio.empty() ? 0.0 : Q.prio[g - static_cast<int>(Q.base)];
    };
    std::stable_sort(me.ready.begin(), me.ready.end(),
                     [&](int a, int b) { return prio_of(a) < prio_of(b); });
    r->outstanding_.fetch_add(static_cast<long>(me.ready.size()),
                              std::memory_order_relaxed);
    for (int s : me.ready) me.deque.push(pack(slot, s));
    wake_workers();
  }
  if (r->outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    finish_run(r);
  }
}

void SharedRuntime::finish_run(Run* r) {
  // outstanding_ hit zero: no item for this graph exists in any deque or in
  // the injection queue, so the slot can be recycled.  Keep a strong ref
  // across the teardown -- dropping owners_[slot] must not free `r` while
  // this worker still touches it.
  ExecutionReport rep;
  rep.tasks_run = r->done_count_.load(std::memory_order_relaxed);
  rep.cancelled = r->cancel_->cancelled();
  if (r->dynamic_) {
    long total;
    {
      std::lock_guard<std::mutex> lock(r->append_mu_);
      total = r->total_tasks_;
    }
    rep.completed = rep.tasks_run == total;
  } else {
    rep.completed = rep.tasks_run == r->n_;
  }
  std::shared_ptr<Run> self;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    self = std::move(owners_[r->slot_]);
    slots_[r->slot_].store(nullptr, std::memory_order_relaxed);
    free_slots_.push_back(r->slot_);
    --active_;
    slot_cv_.notify_one();
    if (active_ == 0) drain_cv_.notify_all();
  }
  graphs_completed_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(r->mu_);
    r->report_ = rep;
    r->finished_ = true;
  }
  r->cv_.notify_all();
}

std::int64_t SharedRuntime::steal(Worker& me) {
  const int w = static_cast<int>(workers_.size());
  if (w == 1) return WorkStealDeque64::kEmpty;
  // Two random victims, then a full sweep from a random start.  No priority
  // peek here -- see the header for the lifetime argument.
  for (int round = 0; round < 2; ++round) {
    int v = static_cast<int>(next_rand(me) % static_cast<std::uint64_t>(w - 1));
    v += (v >= me.id) ? 1 : 0;
    const std::int64_t r = workers_[v]->deque.steal();
    if (r >= 0) return r;
  }
  const int start = static_cast<int>(next_rand(me) % static_cast<std::uint64_t>(w));
  for (int i = 0; i < w; ++i) {
    const int v = (start + i) % w;
    if (v == me.id) continue;
    std::int64_t r = workers_[v]->deque.steal();
    if (r == WorkStealDeque64::kAbort) r = workers_[v]->deque.steal();
    if (r >= 0) return r;
  }
  return WorkStealDeque64::kEmpty;
}

std::int64_t SharedRuntime::take_injected() {
  if (inject_count_.load(std::memory_order_acquire) == 0) {
    return WorkStealDeque64::kEmpty;
  }
  std::lock_guard<std::mutex> lock(inject_mu_);
  if (inject_.empty()) return WorkStealDeque64::kEmpty;
  const std::int64_t v = inject_.front();
  inject_.pop_front();
  inject_count_.store(static_cast<long>(inject_.size()),
                      std::memory_order_release);
  return v;
}

bool SharedRuntime::work_visible() const {
  if (inject_count_.load(std::memory_order_acquire) > 0) return true;
  for (const auto& w : workers_) {
    if (w->deque.size_hint() > 0) return true;
  }
  return false;
}

void SharedRuntime::idle(Worker& me) {
  // Exponential backoff then park -- the single-DAG engine's epoch protocol
  // (dag_executor.cpp) against lost wakeups: producers bump the epoch AFTER
  // making work visible, so either the probe below sees the work or the
  // epoch predicate is already true at the wait.
  for (int spins = 1; spins <= kMaxSpin; spins *= 2) {
    if (shutdown_.load(std::memory_order_acquire)) return;
    for (int i = 0; i < spins; ++i) cpu_relax();
    if (work_visible()) return;
    std::this_thread::yield();
  }
  const std::uint64_t epoch = wake_epoch_.load(std::memory_order_seq_cst);
  if (work_visible() || shutdown_.load(std::memory_order_acquire)) return;
  sleepers_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::unique_lock<std::mutex> lock(park_mu_);
    park_cv_.wait(lock, [&] {
      return shutdown_.load(std::memory_order_acquire) ||
             wake_epoch_.load(std::memory_order_seq_cst) != epoch;
    });
  }
  sleepers_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace plu::rt
