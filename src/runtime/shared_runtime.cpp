#include "runtime/shared_runtime.h"

#include <algorithm>

namespace plu::rt {

namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

constexpr int kMaxSpin = 256;

}  // namespace

ExecutionReport SharedRuntime::Run::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return finished_; });
  if (error_) std::rethrow_exception(error_);
  return report_;
}

bool SharedRuntime::Run::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_;
}

SharedRuntime::SharedRuntime(int threads, int max_graphs)
    : max_graphs_(std::max(1, max_graphs)) {
  slots_ = std::make_unique<std::atomic<Run*>[]>(max_graphs_);
  for (int s = 0; s < max_graphs_; ++s) {
    slots_[s].store(nullptr, std::memory_order_relaxed);
  }
  owners_.resize(max_graphs_);
  free_slots_.reserve(max_graphs_);
  for (int s = max_graphs_ - 1; s >= 0; --s) free_slots_.push_back(s);
  const int w = std::max(1, threads);
  workers_.reserve(w);
  for (int t = 0; t < w; ++t) {
    workers_.push_back(std::make_unique<Worker>(
        t, 0x9E3779B97F4A7C15ull ^ (static_cast<std::uint64_t>(t) + 1)));
  }
  for (int t = 0; t < w; ++t) {
    workers_[t]->thread = std::thread([this, t] { worker_loop(t); });
  }
}

SharedRuntime::~SharedRuntime() {
  {
    std::unique_lock<std::mutex> lock(reg_mu_);
    drain_cv_.wait(lock, [&] { return active_ == 0; });
  }
  shutdown_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    park_cv_.notify_all();
  }
  for (auto& w : workers_) w->thread.join();
}

std::shared_ptr<SharedRuntime::Run> SharedRuntime::submit(GraphSpec spec) {
  auto run = std::shared_ptr<Run>(new Run());
  const int n = static_cast<int>(spec.succ->size());
  run->succ_ = spec.succ;
  run->body_ = std::move(spec.run);
  run->cancel_ = spec.cancel ? spec.cancel : &run->own_cancel_;
  run->n_ = n;

  // Degenerate graphs never touch the pool: report immediately.
  std::vector<int> roots;
  if (n > 0) {
    run->indeg_ = std::vector<std::atomic<int>>(n);
    for (int v = 0; v < n; ++v) {
      run->indeg_[v].store((*spec.indegree)[v], std::memory_order_relaxed);
      if ((*spec.indegree)[v] == 0) roots.push_back(v);
    }
  }
  if (n == 0 || roots.empty()) {
    std::lock_guard<std::mutex> lock(run->mu_);
    run->finished_ = true;
    run->report_.completed = n == 0;  // fully cyclic: nothing ever runs
    graphs_completed_.fetch_add(1, std::memory_order_relaxed);
    return run;
  }

  // Fold the per-request boost into NORMALIZED bottom levels so graphs of
  // very different sizes compare fairly (header comment).
  if (spec.priorities && static_cast<int>(spec.priorities->size()) == n) {
    double max_p = 0.0;
    for (double p : *spec.priorities) max_p = std::max(max_p, p);
    const double scale = max_p > 0.0 ? 1.0 / max_p : 0.0;
    run->prio_.resize(n);
    for (int v = 0; v < n; ++v) {
      run->prio_[v] = spec.boost + (*spec.priorities)[v] * scale;
    }
  } else if (spec.boost != 0.0) {
    run->prio_.assign(n, spec.boost);
  }
  run->outstanding_.store(static_cast<long>(roots.size()),
                          std::memory_order_relaxed);

  // Claim a slot (blocking = admission backpressure) and publish the run.
  int slot;
  {
    std::unique_lock<std::mutex> lock(reg_mu_);
    slot_cv_.wait(lock, [&] { return !free_slots_.empty(); });
    slot = free_slots_.back();
    free_slots_.pop_back();
    owners_[slot] = run;
    ++active_;
  }
  run->slot_ = slot;
  slots_[slot].store(run.get(), std::memory_order_release);

  // Inject the roots FIFO, most critical first within this graph.
  if (!run->prio_.empty()) {
    std::stable_sort(roots.begin(), roots.end(), [&](int a, int b) {
      return run->prio_[a] > run->prio_[b];
    });
  }
  {
    std::lock_guard<std::mutex> lock(inject_mu_);
    for (int v : roots) inject_.push_back(pack(slot, v));
    inject_count_.store(static_cast<long>(inject_.size()),
                        std::memory_order_release);
  }
  wake_workers();
  return run;
}

void SharedRuntime::wake_workers() {
  wake_epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> lock(park_mu_);
    park_cv_.notify_all();
  }
}

void SharedRuntime::worker_loop(int tid) {
  Worker& me = *workers_[tid];
  for (;;) {
    std::int64_t item = me.deque.pop();
    if (item < 0) item = steal(me);
    if (item < 0) item = take_injected();
    if (item >= 0) {
      run_item(me, item);
      continue;
    }
    if (shutdown_.load(std::memory_order_acquire)) return;
    idle(me);
  }
}

void SharedRuntime::run_item(Worker& me, std::int64_t item) {
  const int slot = static_cast<int>(item >> 32);
  const int id = static_cast<int>(item & 0xFFFFFFFFll);
  // The item holds its graph live (outstanding_ > 0 until we decrement
  // below), so this dereference can never see a retired slot.
  Run* r = slots_[slot].load(std::memory_order_acquire);
  if (!r->cancel_->cancelled()) {
    try {
      r->body_(id);
      r->done_count_.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(r->err_mu_);
        if (!r->error_ || id < r->err_task_) {
          r->err_task_ = id;
          r->error_ = std::current_exception();
        }
      }
      r->cancel_->cancel();
    }
  }
  // Release/drain, same memory-order story as the single-DAG engine: the
  // acq_rel fetch_sub publishes this task's writes to whichever worker
  // drops the successor's counter to zero.
  me.ready.clear();
  if (!r->cancel_->cancelled()) {
    for (int s : (*r->succ_)[id]) {
      if (r->indeg_[s].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        me.ready.push_back(s);
      }
    }
  }
  if (!me.ready.empty()) {
    if (!r->prio_.empty()) {
      // Ascending priority: the most critical successor is pushed last and
      // popped first -- the worker dives along this graph's critical path.
      std::stable_sort(me.ready.begin(), me.ready.end(), [&](int a, int b) {
        return r->prio_[a] < r->prio_[b];
      });
    }
    r->outstanding_.fetch_add(static_cast<long>(me.ready.size()),
                              std::memory_order_relaxed);
    for (int s : me.ready) me.deque.push(pack(slot, s));
    wake_workers();
  }
  if (r->outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    finish_run(r);
  }
}

void SharedRuntime::finish_run(Run* r) {
  // outstanding_ hit zero: no item for this graph exists in any deque or in
  // the injection queue, so the slot can be recycled.  Keep a strong ref
  // across the teardown -- dropping owners_[slot] must not free `r` while
  // this worker still touches it.
  ExecutionReport rep;
  rep.tasks_run = r->done_count_.load(std::memory_order_relaxed);
  rep.cancelled = r->cancel_->cancelled();
  rep.completed = rep.tasks_run == r->n_;
  std::shared_ptr<Run> self;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    self = std::move(owners_[r->slot_]);
    slots_[r->slot_].store(nullptr, std::memory_order_relaxed);
    free_slots_.push_back(r->slot_);
    --active_;
    slot_cv_.notify_one();
    if (active_ == 0) drain_cv_.notify_all();
  }
  graphs_completed_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(r->mu_);
    r->report_ = rep;
    r->finished_ = true;
  }
  r->cv_.notify_all();
}

std::int64_t SharedRuntime::steal(Worker& me) {
  const int w = static_cast<int>(workers_.size());
  if (w == 1) return WorkStealDeque64::kEmpty;
  // Two random victims, then a full sweep from a random start.  No priority
  // peek here -- see the header for the lifetime argument.
  for (int round = 0; round < 2; ++round) {
    int v = static_cast<int>(next_rand(me) % static_cast<std::uint64_t>(w - 1));
    v += (v >= me.id) ? 1 : 0;
    const std::int64_t r = workers_[v]->deque.steal();
    if (r >= 0) return r;
  }
  const int start = static_cast<int>(next_rand(me) % static_cast<std::uint64_t>(w));
  for (int i = 0; i < w; ++i) {
    const int v = (start + i) % w;
    if (v == me.id) continue;
    std::int64_t r = workers_[v]->deque.steal();
    if (r == WorkStealDeque64::kAbort) r = workers_[v]->deque.steal();
    if (r >= 0) return r;
  }
  return WorkStealDeque64::kEmpty;
}

std::int64_t SharedRuntime::take_injected() {
  if (inject_count_.load(std::memory_order_acquire) == 0) {
    return WorkStealDeque64::kEmpty;
  }
  std::lock_guard<std::mutex> lock(inject_mu_);
  if (inject_.empty()) return WorkStealDeque64::kEmpty;
  const std::int64_t v = inject_.front();
  inject_.pop_front();
  inject_count_.store(static_cast<long>(inject_.size()),
                      std::memory_order_release);
  return v;
}

bool SharedRuntime::work_visible() const {
  if (inject_count_.load(std::memory_order_acquire) > 0) return true;
  for (const auto& w : workers_) {
    if (w->deque.size_hint() > 0) return true;
  }
  return false;
}

void SharedRuntime::idle(Worker& me) {
  // Exponential backoff then park -- the single-DAG engine's epoch protocol
  // (dag_executor.cpp) against lost wakeups: producers bump the epoch AFTER
  // making work visible, so either the probe below sees the work or the
  // epoch predicate is already true at the wait.
  for (int spins = 1; spins <= kMaxSpin; spins *= 2) {
    if (shutdown_.load(std::memory_order_acquire)) return;
    for (int i = 0; i < spins; ++i) cpu_relax();
    if (work_visible()) return;
    std::this_thread::yield();
  }
  const std::uint64_t epoch = wake_epoch_.load(std::memory_order_seq_cst);
  if (work_visible() || shutdown_.load(std::memory_order_acquire)) return;
  sleepers_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::unique_lock<std::mutex> lock(park_mu_);
    park_cv_.wait(lock, [&] {
      return shutdown_.load(std::memory_order_acquire) ||
             wake_epoch_.load(std::memory_order_seq_cst) != epoch;
    });
  }
  sleepers_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace plu::rt
