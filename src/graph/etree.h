// Elimination trees (Liu, ref. [9] of the paper).
//
// Two variants are used in the paper's context:
//   * the symmetric etree of a symmetric pattern (the classic definition:
//     parent(j) = min{ i > j : l_ij != 0 } for the Cholesky factor of the
//     pattern), computed by Liu's nearly-linear algorithm;
//   * the COLUMN elimination tree, i.e. the etree of A^T A, which SuperLU
//     uses to permute columns; the paper contrasts it with the LU eforest.
#pragma once

#include "graph/forest.h"
#include "matrix/csc.h"

namespace plu::graph {

/// Etree of a symmetric pattern (uses the upper-triangular entries of each
/// column; the input need not be stored symmetrically as long as for every
/// (i, j) with i < j either (i, j) or (j, i) is present -- we symmetrize).
Forest elimination_tree(const Pattern& symmetric_pattern);

/// Column elimination tree: etree of the A^T A pattern.  `a` is the original
/// (possibly rectangular rows >= cols) pattern.
Forest column_elimination_tree(const Pattern& a);

}  // namespace plu::graph
