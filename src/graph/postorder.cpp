#include "graph/postorder.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace plu::graph {

Permutation postorder_permutation(const Forest& f) {
  return f.postorder_permutation();
}

namespace {

/// Recursive phase of the interchange postorder: settle the trees rooted at
/// `roots` (ascending) so that each occupies a contiguous label range, then
/// recurse into children.  `f` is relabeled in place; swaps are recorded.
void settle(Forest& f, std::vector<int> roots, std::vector<int>& swaps) {
  // Work from the last root down, with the previous root (or -1) as the
  // lower fence: every member of T[R_i] must end up above R_{i-1}.
  for (int i = static_cast<int>(roots.size()) - 1; i >= 0; --i) {
    for (;;) {
      // The fence is the *current* label of the previous root: swaps can
      // push that root downward as this tree's members claim its zone.
      const int fence = (i == 0) ? -1 : roots[i - 1];
      int r = roots[i];
      // Largest member of T[r] at or below the fence.
      std::vector<int> members = f.subtree(r);
      int x = kNone;
      for (int m : members) {
        if (m <= fence) x = std::max(x, m);
      }
      if (x == kNone) break;
      // x+1 cannot be a member: the fence carries another tree's root, so
      // x < fence strictly, and a member at x+1 <= fence would contradict
      // the maximality of x.  The swap therefore moves the member up by one
      // past a non-member.
      f.swap_adjacent_labels(x);
      swaps.push_back(x);
      // Relabeling may have renamed roots at or below the fence.
      for (int& rr : roots) {
        if (rr == x) {
          rr = x + 1;
        } else if (rr == x + 1) {
          rr = x;
        }
      }
    }
    // Recurse into the children of the settled root.
    std::vector<int> kids = f.children(roots[i]);
    if (!kids.empty()) settle(f, kids, swaps);
  }
}

}  // namespace

InterchangePostorder interchange_postorder(const Forest& f) {
  InterchangePostorder out;
  Forest work = f;
  std::vector<int> swaps;
  settle(work, work.roots(), swaps);
  assert(work.is_postordered());
  // Reconstruct the overall permutation by replaying the swaps on an
  // identity labeling: new_of[old] after all transpositions.
  std::vector<int> new_of(f.size());
  std::iota(new_of.begin(), new_of.end(), 0);
  // Each swap exchanges the *labels* x and x+1: track where each original
  // node currently sits.
  std::vector<int> node_at(f.size());  // node currently labeled l
  std::iota(node_at.begin(), node_at.end(), 0);
  for (int x : swaps) {
    std::swap(node_at[x], node_at[x + 1]);
  }
  for (int l = 0; l < f.size(); ++l) new_of[node_at[l]] = l;
  out.perm = Permutation::from_new_positions(std::move(new_of));
  out.interchanges = std::move(swaps);
  return out;
}

Pattern apply_symmetric_permutation(const Pattern& abar, const Permutation& p) {
  return abar.permuted(p, p);
}

std::vector<int> diagonal_block_sizes(const Forest& postordered) {
  assert(postordered.is_postordered());
  std::vector<int> sz = postordered.subtree_sizes();
  std::vector<int> blocks;
  for (int r : postordered.roots()) blocks.push_back(sz[r]);
  // Roots ascending and trees contiguous: block order matches label order.
  return blocks;
}

bool is_block_upper_triangular(const Pattern& a, const std::vector<int>& block_sizes) {
  // block_of[i] via prefix sums.
  std::vector<int> block_of(a.rows);
  int pos = 0;
  for (std::size_t b = 0; b < block_sizes.size(); ++b) {
    for (int k = 0; k < block_sizes[b]; ++k) block_of[pos++] = static_cast<int>(b);
  }
  if (pos != a.rows) return false;
  for (int j = 0; j < a.cols; ++j) {
    for (const int* it = a.col_begin(j); it != a.col_end(j); ++it) {
      if (block_of[*it] > block_of[j]) return false;
    }
  }
  return true;
}

}  // namespace plu::graph
