#include "graph/forest.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace plu::graph {

Forest::Forest(std::vector<int> parent) : parent_(std::move(parent)) {
  if (!valid()) throw std::invalid_argument("Forest: invalid parent array");
}

std::vector<int> Forest::roots() const {
  std::vector<int> r;
  for (int v = 0; v < size(); ++v) {
    if (parent_[v] == kNone) r.push_back(v);
  }
  return r;
}

void Forest::build_children() const {
  if (!dirty_) return;
  children_.assign(size(), {});
  for (int v = 0; v < size(); ++v) {
    if (parent_[v] != kNone) children_[parent_[v]].push_back(v);
  }
  // Children are pushed in ascending v automatically.
  dirty_ = false;
}

const std::vector<int>& Forest::children(int v) const {
  build_children();
  return children_[v];
}

int Forest::num_trees() const {
  int n = 0;
  for (int v = 0; v < size(); ++v) {
    if (parent_[v] == kNone) ++n;
  }
  return n;
}

bool Forest::is_topological() const {
  for (int v = 0; v < size(); ++v) {
    if (parent_[v] != kNone && parent_[v] <= v) return false;
  }
  return true;
}

bool Forest::valid() const {
  const int n = size();
  for (int v = 0; v < n; ++v) {
    if (parent_[v] != kNone && (parent_[v] < 0 || parent_[v] >= n || parent_[v] == v)) {
      return false;
    }
  }
  // Cycle check: walk up from each node with a visit stamp.  Stopping at a
  // node stamped by the *current* walk means the walk re-entered its own
  // path, i.e. a cycle; a node stamped by an earlier walk is already known
  // to reach a root.
  std::vector<int> stamp(n, -1);
  for (int v = 0; v < n; ++v) {
    int u = v;
    while (u != kNone && stamp[u] == -1) {
      stamp[u] = v;
      u = parent_[u];
    }
    if (u != kNone && stamp[u] == v) return false;
  }
  return true;
}

bool Forest::is_ancestor(int u, int v) const {
  int w = parent_[v];
  while (w != kNone) {
    if (w == u) return true;
    w = parent_[w];
  }
  return false;
}

std::vector<int> Forest::subtree(int v) const {
  build_children();
  std::vector<int> out;
  std::vector<int> stack = {v};
  while (!stack.empty()) {
    int u = stack.back();
    stack.pop_back();
    out.push_back(u);
    for (int c : children_[u]) stack.push_back(c);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int> Forest::subtree_sizes() const {
  // For elimination forests (parent > child) a single ascending sweep works;
  // for general forests accumulate in postorder.
  std::vector<int> sz(size(), 1);
  for (int v : postorder()) {
    if (parent_[v] != kNone) sz[parent_[v]] += sz[v];
  }
  return sz;
}

std::vector<int> Forest::depths() const {
  std::vector<int> d(size(), -1);
  for (int v = 0; v < size(); ++v) {
    // Path-compress along the walk.
    int u = v;
    std::vector<int> path;
    while (u != kNone && d[u] == -1) {
      path.push_back(u);
      u = parent_[u];
    }
    int base = (u == kNone) ? -1 : d[u];
    for (auto it = path.rbegin(); it != path.rend(); ++it) d[*it] = ++base;
  }
  return d;
}

std::vector<int> Forest::postorder() const {
  build_children();
  std::vector<int> order;
  order.reserve(size());
  // Iterative DFS emitting a node after all its children.
  std::vector<std::pair<int, std::size_t>> stack;  // (node, next child index)
  for (int r : roots()) {
    stack.emplace_back(r, 0);
    while (!stack.empty()) {
      auto& [v, ci] = stack.back();
      if (ci < children_[v].size()) {
        int c = children_[v][ci++];
        stack.emplace_back(c, 0);
      } else {
        order.push_back(v);
        stack.pop_back();
      }
    }
  }
  return order;
}

Permutation Forest::postorder_permutation() const {
  return Permutation::from_old_positions(postorder());
}

bool Forest::is_postordered() const {
  std::vector<int> sz = subtree_sizes();
  build_children();
  for (int v = 0; v < size(); ++v) {
    // Children (hence all descendants) must be < v and the subtree must be
    // the contiguous range ending at v; contiguity follows if every child c
    // satisfies: c's subtree ends at c and the children pack back-to-back.
    int expected_end = v - 1;
    const std::vector<int>& ch = children_[v];
    for (auto it = ch.rbegin(); it != ch.rend(); ++it) {
      if (*it != expected_end) return false;
      expected_end -= sz[*it];
    }
  }
  return true;
}

Forest Forest::relabeled(const Permutation& p) const {
  assert(p.size() == size());
  std::vector<int> np(size(), kNone);
  for (int v = 0; v < size(); ++v) {
    int pv = parent_[v];
    np[p.new_of(v)] = (pv == kNone) ? kNone : p.new_of(pv);
  }
  return Forest(std::move(np));
}

ForestStats forest_stats(const Forest& f) {
  ForestStats st;
  st.nodes = f.size();
  st.trees = f.num_trees();
  std::vector<int> depths = f.depths();
  long depth_sum = 0;
  for (int v = 0; v < f.size(); ++v) {
    if (f.children(v).empty()) ++st.leaves;
    st.max_branching = std::max(st.max_branching,
                                static_cast<int>(f.children(v).size()));
    st.height = std::max(st.height, depths[v]);
    depth_sum += depths[v];
  }
  st.avg_depth = f.size() > 0 ? static_cast<double>(depth_sum) / f.size() : 0.0;
  return st;
}

void Forest::swap_adjacent_labels(int x) {
  assert(x >= 0 && x + 1 < size());
  const int y = x + 1;
  // Redirect children of x and y first (uses current parent array).
  for (int v = 0; v < size(); ++v) {
    if (v == x || v == y) continue;
    if (parent_[v] == x) {
      parent_[v] = y;
    } else if (parent_[v] == y) {
      parent_[v] = x;
    }
  }
  // Swap the two nodes' own parents, handling the adjacent-edge cases.
  int px = parent_[x];
  int py = parent_[y];
  if (py == x) {
    // y was x's child: after the swap, node labeled x is the old y whose
    // parent becomes the label of old x, which is now y.
    parent_[x] = y;
    parent_[y] = px;
  } else if (px == y) {
    parent_[y] = x;
    parent_[x] = py;
  } else {
    parent_[x] = py;
    parent_[y] = px;
  }
  dirty_ = true;
}

}  // namespace plu::graph
