#include "graph/weighted_matching.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>

namespace plu::graph {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct HeapEntry {
  double dist;
  int row;
  bool operator>(const HeapEntry& o) const {
    if (dist != o.dist) return dist > o.dist;
    return row > o.row;
  }
};

}  // namespace

std::optional<WeightedMatching> max_product_transversal(const CscMatrix& a) {
  assert(a.rows() == a.cols());
  const int n = a.cols();

  // Costs: c(i,j) = log(colmax_j) - log|a_ij| >= 0, zeros excluded.
  std::vector<double> colmax_log(n, -kInf);
  for (int j = 0; j < n; ++j) {
    for (int k = a.col_begin(j); k < a.col_end(j); ++k) {
      double v = std::abs(a.value(k));
      if (v > 0.0) colmax_log[j] = std::max(colmax_log[j], std::log(v));
    }
    if (colmax_log[j] == -kInf) return std::nullopt;  // empty column
  }
  auto cost = [&](int k, int j) {
    double v = std::abs(a.value(k));
    return colmax_log[j] - std::log(v);
  };

  std::vector<double> u(n, 0.0);  // row potentials
  std::vector<double> v(n, 0.0);  // column potentials
  std::vector<int> row_to_col(n, -1);
  std::vector<int> col_to_row(n, -1);

  // Cheap initialization: greedily match each column to its maximal entry
  // (cost 0) when that row is free; sets v = 0, u = 0 consistently since
  // all reduced costs stay >= 0.
  for (int j = 0; j < n; ++j) {
    for (int k = a.col_begin(j); k < a.col_end(j); ++k) {
      double val = std::abs(a.value(k));
      if (val > 0.0 && cost(k, j) == 0.0 && row_to_col[a.row_index(k)] == -1) {
        row_to_col[a.row_index(k)] = j;
        col_to_row[j] = a.row_index(k);
        break;
      }
    }
  }

  // Dijkstra state reused across columns.
  std::vector<double> d(n, kInf);
  std::vector<int> prev_col(n, -1);
  std::vector<char> finalized(n, 0);
  std::vector<int> touched;

  for (int j0 = 0; j0 < n; ++j0) {
    if (col_to_row[j0] != -1) continue;
    // Shortest augmenting path from column j0 to a free row.
    touched.clear();
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>>
        heap;
    auto relax_column = [&](int j, double base) {
      for (int k = a.col_begin(j); k < a.col_end(j); ++k) {
        if (a.value(k) == 0.0) continue;
        int i = a.row_index(k);
        if (finalized[i]) continue;
        double nd = base + cost(k, j) - u[i] - v[j];
        if (nd < d[i] - 1e-30) {
          if (d[i] == kInf) touched.push_back(i);
          d[i] = nd;
          prev_col[i] = j;
          heap.push({nd, i});
        }
      }
    };
    relax_column(j0, 0.0);

    int free_row = -1;
    double path_len = kInf;
    std::vector<int> final_rows;
    while (!heap.empty()) {
      HeapEntry top = heap.top();
      heap.pop();
      int i = top.row;
      if (finalized[i] || top.dist > d[i]) continue;
      finalized[i] = 1;
      final_rows.push_back(i);
      if (row_to_col[i] == -1) {
        free_row = i;
        path_len = d[i];
        break;
      }
      relax_column(row_to_col[i], d[i]);
    }
    if (free_row == -1) {
      return std::nullopt;  // structurally singular
    }
    // Dual update keeping reduced costs >= 0 and matched edges tight.
    for (int i : final_rows) {
      if (i == free_row) continue;
      u[i] += d[i] - path_len;
      v[row_to_col[i]] += path_len - d[i];
    }
    v[j0] += path_len;
    // Augment along prev_col.
    int i = free_row;
    while (i != -1) {
      int j = prev_col[i];
      int next_i = col_to_row[j];
      col_to_row[j] = i;
      row_to_col[i] = j;
      i = next_i;
    }
    // Reset scratch state.
    for (int t : touched) {
      d[t] = kInf;
      prev_col[t] = -1;
      finalized[t] = 0;
    }
  }

  WeightedMatching res;
  // new row position j holds old row col_to_row[j] so the matched entry
  // lands on the diagonal.
  res.row_perm = Permutation::from_old_positions(col_to_row);
  // Scalings from the duals: with c = log colmax - log|a|, tight edges have
  // log|a_ij| = log colmax_j - u_i - v_j, so
  //   row_scale_i = e^{u_i},  col_scale_j = e^{v_j} / colmax_j
  // gives |r_i a_ij c_j| = e^{u_i + v_j + log|a| - log colmax} <= 1 (since
  // reduced costs are >= 0), with equality on matched entries.
  res.row_scale.resize(n);
  res.col_scale.resize(n);
  for (int i = 0; i < n; ++i) res.row_scale[i] = std::exp(u[i]);
  for (int j = 0; j < n; ++j) res.col_scale[j] = std::exp(v[j] - colmax_log[j]);
  res.log_product = 0.0;
  for (int j = 0; j < n; ++j) {
    res.log_product += std::log(std::abs(a.at(col_to_row[j], j)));
  }
  return res;
}

}  // namespace plu::graph
