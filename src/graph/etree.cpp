#include "graph/etree.h"

#include <cassert>

namespace plu::graph {

namespace {

/// Liu's etree algorithm with path compression.  `upper_of_col(j)` must
/// enumerate rows i < j adjacent to j in the symmetric graph.
Forest etree_from_upper(const Pattern& p) {
  const int n = p.cols;
  std::vector<int> parent(n, kNone);
  std::vector<int> ancestor(n, kNone);
  for (int j = 0; j < n; ++j) {
    for (int k = p.ptr[j]; k < p.ptr[j + 1]; ++k) {
      int i = p.idx[k];
      if (i >= j) continue;
      // Walk from i to the current root, compressing toward j.
      int r = i;
      while (ancestor[r] != kNone && ancestor[r] != j) {
        int next = ancestor[r];
        ancestor[r] = j;
        r = next;
      }
      if (ancestor[r] == kNone) {
        ancestor[r] = j;
        parent[r] = j;
      }
    }
  }
  return Forest(std::move(parent));
}

}  // namespace

Forest elimination_tree(const Pattern& symmetric_pattern) {
  assert(symmetric_pattern.rows == symmetric_pattern.cols);
  // Symmetrize defensively so both triangles drive the same tree.
  Pattern s = Pattern::symmetrized(symmetric_pattern);
  return etree_from_upper(s);
}

Forest column_elimination_tree(const Pattern& a) {
  Pattern ata = Pattern::ata(a);
  return etree_from_upper(ata);
}

}  // namespace plu::graph
