// The LU elimination forest (Definition 1 of the paper, after Shen, Jiao &
// Yang's S+): for the statically-filled matrix Abar = Lbar + Ubar - I,
//
//   parent(j) = min{ r > j : ubar_{jr} != 0 }   provided |Lbar_{*j}| > 1,
//
// i.e. a column with off-diagonal L entries points to the first off-diagonal
// entry of its U row; columns whose L part is just the diagonal are roots.
//
// Section 2 of the paper characterizes the factor structures in terms of
// this forest:
//   * every row i of Lbar is a "branch": the ancestor chain of the row's
//     first nonzero column, truncated below i (ref. [7]);
//   * Theorem 1: ubar_{ij} != 0 implies ubar_{kj} != 0 for every ancestor k
//     of i with k < j (U columns are ancestor-closed below their index);
//   * Theorem 2: the column structure of Ubar column j lives in T[j] plus
//     the trees rooted at roots k < j.
//
// The verify_* functions check those statements exhaustively on a given
// structure; they back the property-based tests and double as executable
// documentation of the theory.
#pragma once

#include "graph/forest.h"
#include "matrix/csc.h"

namespace plu::graph {

/// Builds the LU eforest of a filled pattern (square, zero-free diagonal).
Forest lu_eforest(const Pattern& abar);

/// Column structure of Lbar column j: rows i >= j with abar(i, j) present.
/// This is the pivot-candidate set R_j of column j.
std::vector<int> lbar_col_structure(const Pattern& abar, int j);

/// Row structure of Lbar row i: columns j <= i with abar(i, j) present
/// (paper notation T_r[i]).  `abar_rows` is abar.transpose().
std::vector<int> lbar_row_structure(const Pattern& abar_rows, int i);

/// Column structure of Ubar column j: rows i <= j with abar(i, j) present
/// (paper notation T_c[j]).
std::vector<int> ubar_col_structure(const Pattern& abar, int j);

/// Theorem 1: for every ubar_{ij} != 0 and every ancestor k of i with k < j,
/// ubar_{kj} != 0.
bool verify_theorem1(const Pattern& abar, const Forest& ef);

/// Theorem 2: every i with ubar_{ij} != 0 belongs to T[j] or to T[k] for
/// some root k < j.
bool verify_theorem2(const Pattern& abar, const Forest& ef);

/// Row-branch characterization: for every row i, the L row structure equals
/// the ancestor chain of its minimum element truncated below i.
bool verify_row_branch(const Pattern& abar, const Forest& ef);

/// Disjointness (the basis of the new task graph's missing edges): for any
/// two nodes neither of which is an ancestor of the other, the candidate
/// sets lbar_col_structure() minus the diagonal are disjoint.
/// O(sum of candidate set sizes) via a claimed-by mark per row.
bool verify_candidate_disjointness(const Pattern& abar, const Forest& ef);

}  // namespace plu::graph
