#include "graph/eforest.h"

#include <algorithm>
#include <cassert>

namespace plu::graph {

namespace {

/// Postorder interval labels for O(1) ancestor queries:
/// u is an ancestor-or-self of v iff low[u] <= rank[v] <= rank[u].
struct AncestorIndex {
  std::vector<int> rank;
  std::vector<int> low;

  explicit AncestorIndex(const Forest& f) {
    const int n = f.size();
    rank.assign(n, 0);
    low.assign(n, 0);
    std::vector<int> order = f.postorder();
    std::vector<int> sz = f.subtree_sizes();
    for (int i = 0; i < n; ++i) rank[order[i]] = i;
    for (int v = 0; v < n; ++v) low[v] = rank[v] - sz[v] + 1;
  }

  bool ancestor_or_self(int u, int v) const {
    return low[u] <= rank[v] && rank[v] <= rank[u];
  }
  bool comparable(int u, int v) const {
    return ancestor_or_self(u, v) || ancestor_or_self(v, u);
  }
};

}  // namespace

Forest lu_eforest(const Pattern& abar) {
  assert(abar.rows == abar.cols);
  const int n = abar.cols;
  Pattern rows = abar.transpose();  // column j of `rows` = row j of abar
  std::vector<int> parent(n, kNone);
  for (int j = 0; j < n; ++j) {
    // |Lbar_{*j}| > 1 <=> column j has an entry strictly below the diagonal.
    // Columns are sorted, so it suffices to look at the last entry.
    bool has_l = abar.col_size(j) > 0 && abar.col_end(j)[-1] > j;
    if (!has_l) continue;
    // parent(j) = first entry of row j strictly right of the diagonal.
    const int* b = rows.col_begin(j);
    const int* e = rows.col_end(j);
    const int* it = std::upper_bound(b, e, j);
    if (it != e) parent[j] = *it;
  }
  return Forest(std::move(parent));
}

std::vector<int> lbar_col_structure(const Pattern& abar, int j) {
  std::vector<int> out;
  for (const int* it = abar.col_begin(j); it != abar.col_end(j); ++it) {
    if (*it >= j) out.push_back(*it);
  }
  return out;
}

std::vector<int> lbar_row_structure(const Pattern& abar_rows, int i) {
  std::vector<int> out;
  for (const int* it = abar_rows.col_begin(i); it != abar_rows.col_end(i); ++it) {
    if (*it <= i) out.push_back(*it);
  }
  return out;
}

std::vector<int> ubar_col_structure(const Pattern& abar, int j) {
  std::vector<int> out;
  for (const int* it = abar.col_begin(j); it != abar.col_end(j); ++it) {
    if (*it <= j) out.push_back(*it);
  }
  return out;
}

bool verify_theorem1(const Pattern& abar, const Forest& ef) {
  const int n = abar.cols;
  for (int j = 0; j < n; ++j) {
    for (const int* it = abar.col_begin(j); it != abar.col_end(j); ++it) {
      int i = *it;
      if (i >= j) break;  // only strict U entries
      int k = ef.parent(i);
      while (k != kNone && k < j) {
        if (!abar.contains(k, j)) return false;
        k = ef.parent(k);
      }
    }
  }
  return true;
}

bool verify_theorem2(const Pattern& abar, const Forest& ef) {
  const int n = abar.cols;
  AncestorIndex idx(ef);
  // root_of[v]: the root of v's tree, computed by one upward sweep.
  std::vector<int> root_of(n);
  for (int v = n - 1; v >= 0; --v) {
    root_of[v] = (ef.parent(v) == kNone) ? v : root_of[ef.parent(v)];
  }
  for (int j = 0; j < n; ++j) {
    for (const int* it = abar.col_begin(j); it != abar.col_end(j); ++it) {
      int i = *it;
      if (i >= j) break;
      bool in_tj = idx.ancestor_or_self(j, i);
      bool in_earlier_tree = root_of[i] < j;
      if (!in_tj && !in_earlier_tree) return false;
    }
  }
  return true;
}

bool verify_row_branch(const Pattern& abar, const Forest& ef) {
  Pattern rows = abar.transpose();
  const int n = abar.cols;
  for (int i = 0; i < n; ++i) {
    std::vector<int> st = lbar_row_structure(rows, i);
    if (st.empty()) return false;  // zero-free diagonal expected
    // Expected: ancestor chain of the minimum element, truncated at i.
    std::vector<int> chain;
    int v = st.front();  // sorted ascending -> minimum
    while (v != kNone && v <= i) {
      chain.push_back(v);
      v = ef.parent(v);
    }
    if (chain != st) return false;
  }
  return true;
}

bool verify_candidate_disjointness(const Pattern& abar, const Forest& ef) {
  const int n = abar.cols;
  AncestorIndex idx(ef);
  // For each row r, the columns whose candidate set contains r must be
  // pairwise ancestor-comparable.  Comparability is transitive along a
  // label-sorted sequence, so adjacent pairs suffice.
  Pattern rows = abar.transpose();
  for (int r = 0; r < n; ++r) {
    const int* b = rows.col_begin(r);
    const int* e = rows.col_end(r);
    int prev = kNone;
    for (const int* it = b; it != e && *it < r; ++it) {
      if (prev != kNone && !idx.comparable(prev, *it)) return false;
      prev = *it;
    }
  }
  return true;
}

}  // namespace plu::graph
