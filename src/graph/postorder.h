// Postordering of LU elimination forests (Section 3 of the paper).
//
// Relabeling the columns of Abar by a postorder of its LU eforest
//   * does not change the static symbolic factorization (Theorem 3),
//   * brings supernode columns together (larger supernodes, Table 3),
//   * puts the symmetrically-permuted matrix in block upper triangular
//     form, one diagonal block per tree of the forest (Figure 3).
//
// Two implementations are provided:
//   * postorder_permutation(): the DFS postorder the paper actually codes
//     ("for the ease of implementation, we preferred to code the postorder
//     depth-first search");
//   * interchange_postorder(): a reconstruction of the paper's
//     adjacent-interchange procedure, the device behind Theorem 3's proof.
//     It reaches a postorder through a sequence of (x, x+1) label swaps,
//     each of which individually preserves the static symbolic
//     factorization.  The swap list is returned so tests can verify the
//     invariance step by step.
#pragma once

#include <utility>
#include <vector>

#include "graph/forest.h"
#include "matrix/csc.h"

namespace plu::graph {

/// Postorder permutation of a forest (wrapper over Forest::postorder with
/// roots taken in ascending order).  gather-form: old_of(new) = order[new].
Permutation postorder_permutation(const Forest& f);

struct InterchangePostorder {
  Permutation perm;               // final relabeling (same convention as above)
  std::vector<int> interchanges;  // sequence of swapped positions x (x <-> x+1),
                                  // expressed in the labels current at the
                                  // time of each swap
};

/// The paper's interchange-based postorder: repeatedly bubbles the largest
/// out-of-range subtree member upward by adjacent transpositions until each
/// subtree occupies the contiguous label range ending at its root, recursing
/// from the last root down.  O(n^2) swaps worst case; intended for
/// demonstrating Theorem 3, not as the production path.
InterchangePostorder interchange_postorder(const Forest& f);

/// Applies a column+row relabeling permutation to a filled pattern:
/// result(i, j) = abar(p.old_of(i), p.old_of(j)).  The symmetric
/// permutation preserves the zero-free diagonal (Theorem 3's setting).
Pattern apply_symmetric_permutation(const Pattern& abar, const Permutation& p);

/// Diagnoses the block-upper-triangular decomposition after postordering:
/// returns the sizes of the diagonal blocks (= tree sizes, in label order).
std::vector<int> diagonal_block_sizes(const Forest& postordered);

/// True if the pattern is block upper triangular with the given diagonal
/// block sizes (no entries below the block diagonal).
bool is_block_upper_triangular(const Pattern& a, const std::vector<int>& block_sizes);

}  // namespace plu::graph
