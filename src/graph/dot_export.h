// Graphviz DOT export for forests and (later) task graphs, used by the
// examples to render the paper's Figures 1-4 for arbitrary inputs.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/forest.h"

namespace plu::graph {

/// Writes the forest as a DOT digraph with edges child -> parent.
/// `label(v)` customization hook: extra per-node annotation text.
void write_forest_dot(std::ostream& os, const Forest& f,
                      const std::string& graph_name = "eforest");

std::string forest_to_dot(const Forest& f,
                          const std::string& graph_name = "eforest");

}  // namespace plu::graph
