#include "graph/dot_export.h"

#include <ostream>
#include <sstream>

namespace plu::graph {

void write_forest_dot(std::ostream& os, const Forest& f,
                      const std::string& graph_name) {
  os << "digraph " << graph_name << " {\n";
  os << "  rankdir=BT;\n  node [shape=circle];\n";
  for (int v = 0; v < f.size(); ++v) {
    os << "  n" << v << " [label=\"" << v << "\"];\n";
  }
  for (int v = 0; v < f.size(); ++v) {
    if (f.parent(v) != kNone) {
      os << "  n" << v << " -> n" << f.parent(v) << ";\n";
    }
  }
  os << "}\n";
}

std::string forest_to_dot(const Forest& f, const std::string& graph_name) {
  std::ostringstream os;
  write_forest_dot(os, f, graph_name);
  return os.str();
}

}  // namespace plu::graph
