#include "graph/transversal.h"

#include <algorithm>
#include <cassert>

namespace plu::graph {

TransversalResult maximum_transversal(const Pattern& a) {
  const int n = a.cols;
  TransversalResult res;
  res.row_of_col.assign(n, -1);
  std::vector<int> col_of_row(a.rows, -1);
  // cheap[j]: next unexplored position in column j for the cheap scan.
  std::vector<int> cheap(a.ptr.begin(), a.ptr.end() - 1);
  std::vector<int> visited(n, -1);

  // Iterative DFS state.
  std::vector<int> col_stack, pos_stack, row_hold;

  for (int start = 0; start < n; ++start) {
    // Diagonal preference: when the matrix already has a zero-free diagonal
    // (e.g. after MC64 preprocessing), matching each column to its own row
    // keeps that diagonal -- the permutation comes out as the identity.
    if (start < a.rows && col_of_row[start] == -1 &&
        std::binary_search(a.idx.begin() + a.ptr[start],
                           a.idx.begin() + a.ptr[start + 1], start)) {
      res.row_of_col[start] = start;
      col_of_row[start] = start;
      continue;
    }
    // Try to match column `start` via an augmenting path.
    col_stack.assign(1, start);
    pos_stack.assign(1, a.ptr[start]);
    row_hold.assign(1, -1);
    visited[start] = start;
    bool augmented = false;
    while (!col_stack.empty() && !augmented) {
      int j = col_stack.back();
      // Cheap scan: an unmatched row in column j ends the path immediately.
      bool found_free = false;
      for (int& k = cheap[j]; k < a.ptr[j + 1]; ++k) {
        int r = a.idx[k];
        if (col_of_row[r] == -1) {
          row_hold.back() = r;
          found_free = true;
          ++k;
          break;
        }
      }
      if (found_free) {
        // Augment along the stack: reassign every column to its held row.
        for (std::size_t t = col_stack.size(); t-- > 0;) {
          int cj = col_stack[t];
          int rj = row_hold[t];
          int prev = res.row_of_col[cj];
          res.row_of_col[cj] = rj;
          col_of_row[rj] = cj;
          (void)prev;
        }
        augmented = true;
        break;
      }
      // Deep scan: follow a matched row to its column.  Indices only: the
      // push_back below may reallocate the stacks, so no references into
      // them may be held across it.
      bool descended = false;
      const std::size_t level = col_stack.size() - 1;
      while (pos_stack[level] < a.ptr[j + 1]) {
        int k = pos_stack[level]++;
        int r = a.idx[k];
        int next_col = col_of_row[r];
        assert(next_col != -1);
        if (visited[next_col] != start) {
          visited[next_col] = start;
          row_hold[level] = r;  // row we would steal if next_col re-matches
          col_stack.push_back(next_col);
          pos_stack.push_back(a.ptr[next_col]);
          row_hold.push_back(-1);
          descended = true;
          break;
        }
      }
      if (!descended) {
        col_stack.pop_back();
        pos_stack.pop_back();
        row_hold.pop_back();
      }
    }
  }
  for (int j = 0; j < n; ++j) {
    if (res.row_of_col[j] != -1) ++res.matched;
  }
  return res;
}

std::optional<Permutation> zero_free_diagonal_permutation(const Pattern& a) {
  assert(a.rows == a.cols);
  TransversalResult t = maximum_transversal(a);
  if (t.matched != a.cols) return std::nullopt;
  // New row j must be old row row_of_col[j] so that (PA)(j,j) = A(row_of_col[j], j).
  return Permutation::from_old_positions(t.row_of_col);
}

bool has_structural_diagonal(const Pattern& a) {
  if (a.rows != a.cols) return false;
  for (int j = 0; j < a.cols; ++j) {
    if (!a.contains(j, j)) return false;
  }
  return true;
}

}  // namespace plu::graph
