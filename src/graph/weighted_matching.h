// Maximum-product transversal with scaling (the MC64 job: Duff & Koster,
// "On algorithms for permuting large entries to the diagonal").
//
// Where the plain transversal (transversal.h) finds ANY zero-free diagonal,
// this finds the row permutation maximizing the PRODUCT of diagonal
// magnitudes, plus row/column scalings derived from the dual solution that
// make every permuted-scaled entry at most 1 in magnitude with exact 1s on
// the diagonal (an "I-matrix").  For a static-pivoting factorization this
// is the standard defense: big entries start on the diagonal, so restricted
// or threshold pivoting rarely meets a bad pivot.
//
// Algorithm: successive shortest augmenting paths with potentials (Dijkstra
// per column) on costs c(i,j) = log(max_r |a_rj|) - log|a_ij| >= 0; the
// optimal potentials are the log-scalings.
#pragma once

#include <optional>
#include <vector>

#include "matrix/csc.h"

namespace plu::graph {

struct WeightedMatching {
  /// Row permutation in gather form: new row i is old row row_perm.old_of(i),
  /// placing the max-product matching on the diagonal.
  Permutation row_perm;
  /// Scalings: |row_scale[i] * a(i, j) * col_scale[j]| <= 1 (up to roundoff)
  /// with equality on the matched entries.  Indexed by ORIGINAL row/column.
  std::vector<double> row_scale;
  std::vector<double> col_scale;
  /// log |prod of matched entries| (the maximized objective).
  double log_product = 0.0;
};

/// Computes the matching; nullopt when the matrix is structurally singular
/// (entries with value exactly 0 are treated as absent).
std::optional<WeightedMatching> max_product_transversal(const CscMatrix& a);

}  // namespace plu::graph
