// Maximum transversal (Duff's MC21 algorithm, ref. [3] of the paper).
//
// Finds a row permutation P such that PA has a zero-free diagonal, a
// precondition of the static symbolic factorization (the paper assumes A is
// nonsingular and permuted to a zero-free diagonal).
#pragma once

#include <optional>

#include "matrix/csc.h"

namespace plu::graph {

/// Result of a maximum-matching pass over the bipartite column->row graph.
struct TransversalResult {
  /// Number of matched columns (== n iff the matrix is structurally
  /// nonsingular).
  int matched = 0;
  /// row_of_col[j] = row matched to column j, or -1 when unmatched.
  std::vector<int> row_of_col;
};

/// Computes a maximum transversal of the pattern via augmenting paths with
/// the cheap-assignment heuristic (MC21-style).
TransversalResult maximum_transversal(const Pattern& a);

/// Row permutation placing matched rows on the diagonal: applying the
/// returned P (rows) to A yields (PA)(j, j) != 0 structurally.  Returns
/// nullopt when the matrix is structurally singular.
std::optional<Permutation> zero_free_diagonal_permutation(const Pattern& a);

/// True if every diagonal entry of the pattern is present.
bool has_structural_diagonal(const Pattern& a);

}  // namespace plu::graph
