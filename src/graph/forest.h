// Rooted forests over nodes 0..n-1, the shared representation for
// elimination trees and LU elimination forests.
//
// Invariant for elimination forests: parent[v] > v or parent[v] == kNone.
// The general Forest type does not require it; `is_topological()` checks it.
#pragma once

#include <vector>

#include "matrix/permutation.h"

namespace plu::graph {

inline constexpr int kNone = -1;

class Forest {
 public:
  Forest() = default;
  explicit Forest(int n) : parent_(n, kNone) {}
  explicit Forest(std::vector<int> parent);

  int size() const { return static_cast<int>(parent_.size()); }
  int parent(int v) const { return parent_[v]; }
  void set_parent(int v, int p) { parent_[v] = p; dirty_ = true; }
  const std::vector<int>& parents() const { return parent_; }

  bool is_root(int v) const { return parent_[v] == kNone; }

  /// Roots in ascending order.
  std::vector<int> roots() const;

  /// Children of v in ascending order (built lazily, cached).
  const std::vector<int>& children(int v) const;

  int num_trees() const;

  /// True if parent[v] > v for all non-roots (elimination-forest invariant).
  bool is_topological() const;

  /// True if v's parent pointers contain no cycle and all are in range.
  bool valid() const;

  /// True if u is an ancestor of v (u != v counts; a node is not its own
  /// ancestor here).  O(depth).
  bool is_ancestor(int u, int v) const;

  /// Nodes of the subtree rooted at v (paper notation T[v]), ascending.
  std::vector<int> subtree(int v) const;

  /// subtree_size[v] = |T[v]| for every v, computed in O(n).
  std::vector<int> subtree_sizes() const;

  /// depth[v] = #edges from v to its root.
  std::vector<int> depths() const;

  /// DFS postorder: order[i] = node visited i-th; children (ascending) before
  /// parents, roots in ascending order, each subtree contiguous.
  std::vector<int> postorder() const;

  /// Permutation relabeling nodes by DFS postorder (new label = postorder
  /// rank).  gather-form: old_of(i) = postorder()[i].
  Permutation postorder_permutation() const;

  /// True if labels already satisfy the postorder property: every subtree
  /// T[v] occupies the contiguous label range [v - |T[v]| + 1, v].
  bool is_postordered() const;

  /// Forest with labels renamed: node v becomes p.new_of(v).
  Forest relabeled(const Permutation& p) const;

  /// Swaps the labels of nodes x and x+1 (adjacent transposition), as used
  /// by the paper's interchange-based postorder algorithm.
  void swap_adjacent_labels(int x);

  friend bool operator==(const Forest& a, const Forest& b) {
    return a.parent_ == b.parent_;
  }

 private:
  void build_children() const;

  std::vector<int> parent_;
  mutable std::vector<std::vector<int>> children_;
  mutable bool dirty_ = true;
};

/// Shape statistics of a forest -- the quantities that predict how much
/// tree parallelism a task graph built on it can expose.
struct ForestStats {
  int nodes = 0;
  int trees = 0;
  int leaves = 0;
  int height = 0;         // max depth (edges), 0 for empty/singleton trees
  int max_branching = 0;  // max children of any node
  double avg_depth = 0.0;
};

ForestStats forest_stats(const Forest& f);

}  // namespace plu::graph
