// Per-worker scratch-buffer pool for the dense kernel tier.
//
// The packed GEMM (blas/level3.cpp) copies its A and B panels into
// contiguous aligned buffers, and the transpose cases materialize op(X)
// into a temporary.  Doing that with fresh allocations would put malloc on
// the Schur-update hot path of every task the DAG runtime executes; this
// arena instead hands each worker THREAD its own trio of cache-aligned
// buffers that only ever grow (high-water mark), so steady-state
// factorization performs zero allocations in the kernels.
//
// Thread-local by design: the work-stealing executor runs each task body on
// exactly one worker thread, so per-thread == per-worker and no
// synchronization is needed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace plu::blas {

class WorkerScratch {
 public:
  /// Buffer for packed A micro-panels (>= n doubles, 64-byte aligned).
  double* pack_a(std::size_t n) { return a_.grab(n); }
  /// Buffer for packed B micro-panels.
  double* pack_b(std::size_t n) { return b_.grab(n); }
  /// General temporary (materialized transposes, edge tiles).
  double* temp(std::size_t n) { return t_.grab(n); }

  /// Bitset-word buffer (>= n words, uninitialized) for the parallel
  /// symbolic engine's per-lane candidate-row unions
  /// (symbolic::Engine::kParallelBitset).  Same high-water-mark policy as
  /// the double buffers: steady-state analysis allocates nothing per step.
  std::uint64_t* words(std::size_t n) {
    if (w_.size() < n) w_.resize(n);
    return w_.data();
  }

  /// High-water mark across the three double buffers, in doubles
  /// (introspection for tests).
  std::size_t capacity() const {
    return a_.store.size() + b_.store.size() + t_.store.size();
  }

 private:
  struct Buffer {
    std::vector<double> store;
    double* grab(std::size_t n);
  };

  Buffer a_, b_, t_;
  std::vector<std::uint64_t> w_;
};

/// The calling thread's scratch arena (created on first use, reused for the
/// lifetime of the thread).
WorkerScratch& worker_scratch();

}  // namespace plu::blas
