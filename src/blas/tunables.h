// Kernel-routing and blocking tunables, deduplicated from blas/level3.cpp
// and core/kernels.cpp (where they drifted as independent magic numbers)
// plus the structure-aware blocking tier (symbolic/repartition.h,
// DESIGN.md section 16).  Everything here is a POLICY constant: changing a
// value moves work between engines or reshapes tiles/tasks, but never
// changes a computed factor bit (the routing contract in level3.h and the
// writer chains in taskgraph/coarsen.h are what guarantee that).
#pragma once

namespace plu::blas::tunables {

// ---- packed GEMM microkernel shape -------------------------------------
// Register tile: kMr x kNr accumulators held across the whole k-loop.  The
// tile must fit the register file or the accumulators spill every
// iteration: 8 x 4 doubles = 8 ymm under AVX (PLU_NATIVE compiles
// -march=native and gets this), but baseline x86-64 has only 16 xmm
// registers, so the portable build uses a 4 x 4 tile (8 xmm, leaving room
// for the A vector and B broadcasts).
#if defined(__AVX__)
inline constexpr int kMr = 8;
#else
inline constexpr int kMr = 4;
#endif
inline constexpr int kNr = 4;

// Cache-blocking parameters (multiples of the register tile).  Modest,
// because the target blocks are small supernodal panels: an A block of
// kMc x kKc doubles is 128 KiB, a B block kKc x kNc the same.
inline constexpr int kMc = 64;
inline constexpr int kKc = 256;
inline constexpr int kNc = 64;

// Column-block width of the blocked right-side trsm (level3.cpp).
inline constexpr int kTrsmNb = 32;

// Panel width of the blocked getrf the factor kernel runs
// (core/kernels.cpp; was a bare literal there).
inline constexpr int kGetrfNb = 32;

// ---- gemm engine routing -----------------------------------------------
// The packed engine routes in only when the operation is big enough to
// amortize packing (m*n*k >= kPackThreshold flops-ish volume) AND op(B)
// carries at most kPackMaxZeroFrac numeric zeros (the direct engine's
// per-column zero skipping wins on sparser operands).  level3.cpp's auto
// router and the plan-driven tiled updates (core/driver.cpp) consult the
// SAME two constants -- that shared definition is what makes the hinted
// path's decisions provably identical to the unhinted ones.
inline constexpr double kPackThreshold = 32768.0;
inline constexpr double kPackMaxZeroFrac = 1.0 / 16.0;

// ---- structure-aware blocking tier (symbolic/repartition.h) ------------
// An L row block whose structural fill (|Abar entries| / area) is at least
// kDenseTileMinFill is predicted dense (packed-engine material); a block
// with no Abar entries at all is a predicted zero tile (closure padding);
// everything between is a sparse tile.  Predictions drive tiling, the
// report and the cost model -- the numeric router re-measures, because
// partial-pivoting row swaps can move numeric zeros across block
// boundaries regardless of structure.
inline constexpr double kDenseTileMinFill = 0.9;

// Scheduling floor for density-scaled task costs (taskgraph/costs.h):
// a structurally near-empty panel still pays bookkeeping, so its
// effective flops never drop below this fraction of the nominal count.
inline constexpr double kMinDensityScale = 1.0 / 16.0;

// ---- DAG-aware tiny-supernode merging (taskgraph/coarsen.cpp) ----------
// A stage whose supernode is at most kTinyStageWidth columns wide counts
// as tiny.  When the task count exceeds threads * target_tasks_per_thread
// * kDagBoundTaskFactor, the DAG itself -- not flops -- is the bottleneck,
// and whole subtrees of tiny stages fuse even when their subtree flops
// exceed the adaptive threshold, up to kTinyMergeFlopFactor times it.
inline constexpr int kTinyStageWidth = 8;
inline constexpr int kDagBoundTaskFactor = 4;
inline constexpr double kTinyMergeFlopFactor = 8.0;

}  // namespace plu::blas::tunables
