// BLAS level-2 subset: matrix-vector operations on column-major views.
#pragma once

#include "blas/dense.h"

namespace plu::blas {

enum class Trans { No, Yes };
enum class UpLo { Lower, Upper };
enum class Diag { Unit, NonUnit };

/// y := alpha * op(A) * x + beta * y, op per `trans`.
void gemv(Trans trans, double alpha, ConstMatrixView a, const double* x,
          int incx, double beta, double* y, int incy);

/// A := A + alpha * x * y^T  (rank-1 update).
void ger(double alpha, const double* x, int incx, const double* y, int incy,
         MatrixView a);

/// Solve op(A) x = b in place (x overwrites b); A triangular per uplo/diag.
void trsv(UpLo uplo, Trans trans, Diag diag, ConstMatrixView a, double* x,
          int incx);

/// x := op(A) x for triangular A.
void trmv(UpLo uplo, Trans trans, Diag diag, ConstMatrixView a, double* x,
          int incx);

}  // namespace plu::blas
