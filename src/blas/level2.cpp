#include "blas/level2.h"

#include <cassert>

namespace plu::blas {

void gemv(Trans trans, double alpha, ConstMatrixView a, const double* x,
          int incx, double beta, double* y, int incy) {
  const int m = a.rows;
  const int n = a.cols;
  const int ylen = (trans == Trans::No) ? m : n;
  if (beta != 1.0) {
    for (int i = 0; i < ylen; ++i) y[static_cast<std::ptrdiff_t>(i) * incy] *= beta;
  }
  if (alpha == 0.0) return;
  if (trans == Trans::No) {
    // y += alpha * A * x, traversing A by columns (stride-1 inner loop).
    for (int j = 0; j < n; ++j) {
      double xj = alpha * x[static_cast<std::ptrdiff_t>(j) * incx];
      if (xj == 0.0) continue;
      const double* col = a.col(j);
      if (incy == 1) {
        for (int i = 0; i < m; ++i) y[i] += xj * col[i];
      } else {
        for (int i = 0; i < m; ++i) y[static_cast<std::ptrdiff_t>(i) * incy] += xj * col[i];
      }
    }
  } else {
    for (int j = 0; j < n; ++j) {
      const double* col = a.col(j);
      double sum = 0.0;
      if (incx == 1) {
        for (int i = 0; i < m; ++i) sum += col[i] * x[i];
      } else {
        for (int i = 0; i < m; ++i) sum += col[i] * x[static_cast<std::ptrdiff_t>(i) * incx];
      }
      y[static_cast<std::ptrdiff_t>(j) * incy] += alpha * sum;
    }
  }
}

void ger(double alpha, const double* x, int incx, const double* y, int incy,
         MatrixView a) {
  if (alpha == 0.0) return;
  for (int j = 0; j < a.cols; ++j) {
    double yj = alpha * y[static_cast<std::ptrdiff_t>(j) * incy];
    if (yj == 0.0) continue;
    double* col = a.col(j);
    if (incx == 1) {
      for (int i = 0; i < a.rows; ++i) col[i] += x[i] * yj;
    } else {
      for (int i = 0; i < a.rows; ++i) col[i] += x[static_cast<std::ptrdiff_t>(i) * incx] * yj;
    }
  }
}

void trsv(UpLo uplo, Trans trans, Diag diag, ConstMatrixView a, double* x,
          int incx) {
  assert(a.rows == a.cols);
  const int n = a.rows;
  auto xi = [&](int i) -> double& { return x[static_cast<std::ptrdiff_t>(i) * incx]; };
  if (trans == Trans::No) {
    if (uplo == UpLo::Lower) {
      // Forward substitution, column-oriented.
      for (int j = 0; j < n; ++j) {
        if (diag == Diag::NonUnit) xi(j) /= a(j, j);
        double xj = xi(j);
        if (xj == 0.0) continue;
        const double* col = a.col(j);
        for (int i = j + 1; i < n; ++i) xi(i) -= xj * col[i];
      }
    } else {
      for (int j = n - 1; j >= 0; --j) {
        if (diag == Diag::NonUnit) xi(j) /= a(j, j);
        double xj = xi(j);
        if (xj == 0.0) continue;
        const double* col = a.col(j);
        for (int i = 0; i < j; ++i) xi(i) -= xj * col[i];
      }
    }
  } else {
    // Solve A^T x = b: A^T lower <=> upper traversal.
    if (uplo == UpLo::Lower) {
      for (int j = n - 1; j >= 0; --j) {
        const double* col = a.col(j);
        double sum = xi(j);
        for (int i = j + 1; i < n; ++i) sum -= col[i] * xi(i);
        xi(j) = (diag == Diag::NonUnit) ? sum / a(j, j) : sum;
      }
    } else {
      for (int j = 0; j < n; ++j) {
        const double* col = a.col(j);
        double sum = xi(j);
        for (int i = 0; i < j; ++i) sum -= col[i] * xi(i);
        xi(j) = (diag == Diag::NonUnit) ? sum / a(j, j) : sum;
      }
    }
  }
}

void trmv(UpLo uplo, Trans trans, Diag diag, ConstMatrixView a, double* x,
          int incx) {
  assert(a.rows == a.cols);
  const int n = a.rows;
  auto xi = [&](int i) -> double& { return x[static_cast<std::ptrdiff_t>(i) * incx]; };
  if (trans == Trans::No) {
    if (uplo == UpLo::Lower) {
      for (int i = n - 1; i >= 0; --i) {
        double sum = (diag == Diag::Unit) ? xi(i) : a(i, i) * xi(i);
        for (int j = 0; j < i; ++j) sum += a(i, j) * xi(j);
        xi(i) = sum;
      }
    } else {
      for (int i = 0; i < n; ++i) {
        double sum = (diag == Diag::Unit) ? xi(i) : a(i, i) * xi(i);
        for (int j = i + 1; j < n; ++j) sum += a(i, j) * xi(j);
        xi(i) = sum;
      }
    }
  } else {
    if (uplo == UpLo::Lower) {
      for (int i = 0; i < n; ++i) {
        double sum = (diag == Diag::Unit) ? xi(i) : a(i, i) * xi(i);
        for (int j = i + 1; j < n; ++j) sum += a(j, i) * xi(j);
        xi(i) = sum;
      }
    } else {
      for (int i = n - 1; i >= 0; --i) {
        double sum = (diag == Diag::Unit) ? xi(i) : a(i, i) * xi(i);
        for (int j = 0; j < i; ++j) sum += a(j, i) * xi(j);
        xi(i) = sum;
      }
    }
  }
}

}  // namespace plu::blas
