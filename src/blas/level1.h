// BLAS level-1 subset: vector-vector operations on strided double arrays.
//
// Signatures follow the classic BLAS conventions (n, alpha, x, incx, ...) so
// the higher-level kernels read like their textbook counterparts.
#pragma once

#include <cstddef>

namespace plu::blas {

/// y := alpha * x + y
void axpy(int n, double alpha, const double* x, int incx, double* y, int incy);

/// x := alpha * x
void scal(int n, double alpha, double* x, int incx);

/// dot product x . y
double dot(int n, const double* x, int incx, const double* y, int incy);

/// Euclidean norm of x.
double nrm2(int n, const double* x, int incx);

/// Sum of absolute values of x.
double asum(int n, const double* x, int incx);

/// Index (0-based) of the element of maximum absolute value; -1 if n <= 0.
int iamax(int n, const double* x, int incx);

/// Swap the contents of x and y.
void swap(int n, double* x, int incx, double* y, int incy);

/// y := x
void copy(int n, const double* x, int incx, double* y, int incy);

}  // namespace plu::blas
