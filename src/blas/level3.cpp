#include "blas/level3.h"

#include "blas/level1.h"
#include "blas/scratch.h"
#include "blas/tunables.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstddef>

namespace plu::blas {

namespace {

std::atomic<bool> g_use_blocked{true};

// Microkernel register tile and cache-blocking shape; the constants live in
// blas/tunables.h with the other routing thresholds so they cannot drift
// apart from the callers that reason about them.
using tunables::kKc;
using tunables::kMc;
using tunables::kMr;
using tunables::kNc;
using tunables::kNr;
using tunables::kTrsmNb;

void scale_c(double beta, MatrixView c) {
  if (beta == 1.0) return;
  for (int j = 0; j < c.cols; ++j) {
    double* cj = c.col(j);
    if (beta == 0.0) {
      std::fill(cj, cj + c.rows, 0.0);
    } else {
      for (int i = 0; i < c.rows; ++i) cj[i] *= beta;
    }
  }
}

// Packs op(A)(ic:ic+mb, pc:pc+kb) into contiguous micro-panels of kMr rows
// (panel for rows [ir, ir+kMr) occupies kMr*kb doubles at dst + ir*kb),
// zero-padding the ragged last panel so the microkernel always runs the
// full register tile.
void pack_a(Trans tr, ConstMatrixView a, int ic, int pc, int mb, int kb,
            double* dst) {
  for (int ir = 0; ir < mb; ir += kMr) {
    const int m = std::min(kMr, mb - ir);
    if (tr == Trans::No) {
      const double* src =
          a.data + static_cast<std::size_t>(pc) * a.ld + ic + ir;
      for (int p = 0; p < kb; ++p) {
        const double* col = src + static_cast<std::size_t>(p) * a.ld;
        int i = 0;
        for (; i < m; ++i) dst[i] = col[i];
        for (; i < kMr; ++i) dst[i] = 0.0;
        dst += kMr;
      }
    } else {
      for (int p = 0; p < kb; ++p) {
        int i = 0;
        for (; i < m; ++i) dst[i] = a.data[static_cast<std::size_t>(ic + ir + i) * a.ld + pc + p];
        for (; i < kMr; ++i) dst[i] = 0.0;
        dst += kMr;
      }
    }
  }
}

// Packs op(B)(pc:pc+kb, jc:jc+nb) into micro-panels of kNr columns with
// alpha folded in (panel for columns [jr, jr+kNr) lives at dst + jr*kb).
// While packing it also records, per panel and per k-index, whether the
// packed row is entirely zero (mask + (jr/kNr)*kb): factorization blocks
// carry real zeros from the static symbolic structure, and because a
// supernode's columns share one row structure those zeros arrive as whole
// zero ROWS of the block -- the microkernel skips them outright, which is
// what keeps the packed engine competitive with the zero-skipping scalar
// kernel on sparse panels.
bool pack_b(Trans tr, double alpha, ConstMatrixView b, int pc, int jc, int kb,
            int nb, double* dst, unsigned char* mask) {
  bool any_zero_row = false;
  for (int jr = 0; jr < nb; jr += kNr) {
    const int n = std::min(kNr, nb - jr);
    for (int p = 0; p < kb; ++p) {
      double any = 0.0;
      int j = 0;
      if (tr == Trans::No) {
        for (; j < n; ++j) {
          const double v =
              b.data[static_cast<std::size_t>(jc + jr + j) * b.ld + pc + p];
          any += std::abs(v);
          dst[j] = alpha * v;
        }
      } else {
        for (; j < n; ++j) {
          const double v =
              b.data[static_cast<std::size_t>(pc + p) * b.ld + jc + jr + j];
          any += std::abs(v);
          dst[j] = alpha * v;
        }
      }
      for (; j < kNr; ++j) dst[j] = 0.0;
      mask[p] = (any != 0.0);
      any_zero_row |= (any == 0.0);
      dst += kNr;
    }
    mask += kb;
  }
  return any_zero_row;
}

// C(0:m, 0:n) += ap * bp over packed micro-panels.  The accumulator tile is
// always the full kMr x kNr (the packs are zero-padded), kept in a local
// array the compiler promotes to registers; only the valid m x n corner is
// written back, so ragged edges cost nothing extra in the k-loop.
void micro_kernel(int kb, const double* ap, const double* bp,
                  const unsigned char* mask, double* c, int ldc, int m,
                  int n) {
  double acc[kMr * kNr] = {};
  if (mask == nullptr) {  // fully dense panel: branch-free k-loop
    for (int p = 0; p < kb; ++p) {
      const double* a = ap + static_cast<std::size_t>(p) * kMr;
      const double* b = bp + static_cast<std::size_t>(p) * kNr;
      for (int j = 0; j < kNr; ++j) {
        const double bj = b[j];
        double* accj = acc + j * kMr;
        for (int i = 0; i < kMr; ++i) accj[i] += a[i] * bj;
      }
    }
  } else {
    for (int p = 0; p < kb; ++p) {
      if (!mask[p]) continue;  // whole packed B row is zero
      const double* a = ap + static_cast<std::size_t>(p) * kMr;
      const double* b = bp + static_cast<std::size_t>(p) * kNr;
      for (int j = 0; j < kNr; ++j) {
        const double bj = b[j];
        double* accj = acc + j * kMr;
        for (int i = 0; i < kMr; ++i) accj[i] += a[i] * bj;
      }
    }
  }
  if (m == kMr && n == kNr) {
    for (int j = 0; j < kNr; ++j) {
      double* cj = c + static_cast<std::size_t>(j) * ldc;
      const double* accj = acc + j * kMr;
      for (int i = 0; i < kMr; ++i) cj[i] += accj[i];
    }
  } else {
    for (int j = 0; j < n; ++j) {
      double* cj = c + static_cast<std::size_t>(j) * ldc;
      const double* accj = acc + j * kMr;
      for (int i = 0; i < m; ++i) cj[i] += accj[i];
    }
  }
}

// Engine choice.  The packed engine wins on large DENSE operations; on the
// factorization's own Schur updates the blocks carry real numeric zeros
// from the static symbolic structure, and the direct kernel's per-column
// zero-operand skipping recovers more time than the microkernel's vector
// throughput (the packed engine can only skip whole packed rows).  So gemm
// routes to the packed engine when the operation is big enough to amortize
// packing (m*n*k >= tunables::kPackThreshold) AND a cheap O(k*n) scan
// finds op(B) essentially free of zeros; everything else takes the direct
// engine.  Both tests are exported (gemm_pack_worthwhile /
// gemm_b_dense_enough) so hint-passing callers reproduce the auto
// decision exactly.

// Direct-engine inner kernel: C(0:m,0:n) += alpha * A(0:m,0:k) * B(0:k,0:n),
// column-major, no transposes.  4-way unrolled k-loop, stride-1 over rows,
// and zero-operand groups are skipped entirely.
void gemm_nn_direct(int m, int n, int k, double alpha, const double* a,
                    int lda, const double* b, int ldb, double* c, int ldc) {
  for (int j = 0; j < n; ++j) {
    double* cj = c + static_cast<std::size_t>(j) * ldc;
    const double* bj = b + static_cast<std::size_t>(j) * ldb;
    int p = 0;
    for (; p + 4 <= k; p += 4) {
      const double b0 = alpha * bj[p];
      const double b1 = alpha * bj[p + 1];
      const double b2 = alpha * bj[p + 2];
      const double b3 = alpha * bj[p + 3];
      if (b0 == 0.0 && b1 == 0.0 && b2 == 0.0 && b3 == 0.0) continue;
      const double* a0 = a + static_cast<std::size_t>(p) * lda;
      const double* a1 = a0 + lda;
      const double* a2 = a1 + lda;
      const double* a3 = a2 + lda;
      for (int i = 0; i < m; ++i) {
        cj[i] += b0 * a0[i] + b1 * a1[i] + b2 * a2[i] + b3 * a3[i];
      }
    }
    for (; p < k; ++p) {
      const double bpj = alpha * bj[p];
      if (bpj == 0.0) continue;
      const double* ap = a + static_cast<std::size_t>(p) * lda;
      for (int i = 0; i < m; ++i) cj[i] += ap[i] * bpj;
    }
  }
}

// Direct (non-packing) engine: cache-blocked loops around gemm_nn_direct
// for the common No/No case; index lambdas for the transpose cases (rare
// and small below the pack threshold).
void gemm_direct(Trans transa, Trans transb, double alpha, ConstMatrixView a,
                 ConstMatrixView b, MatrixView c, int m, int n, int k) {
  if (transa == Trans::No && transb == Trans::No) {
    for (int jc = 0; jc < n; jc += kNc) {
      const int nb = std::min(kNc, n - jc);
      for (int pc = 0; pc < k; pc += kKc) {
        const int kb = std::min(kKc, k - pc);
        for (int ic = 0; ic < m; ic += kMc) {
          const int mb = std::min(kMc, m - ic);
          gemm_nn_direct(mb, nb, kb, alpha,
                         a.data + static_cast<std::size_t>(pc) * a.ld + ic,
                         a.ld,
                         b.data + static_cast<std::size_t>(jc) * b.ld + pc,
                         b.ld,
                         c.data + static_cast<std::size_t>(jc) * c.ld + ic,
                         c.ld);
        }
      }
    }
    return;
  }
  auto aa = [&](int i, int p) { return (transa == Trans::No) ? a(i, p) : a(p, i); };
  auto bb = [&](int p, int j) { return (transb == Trans::No) ? b(p, j) : b(j, p); };
  for (int j = 0; j < n; ++j) {
    for (int p = 0; p < k; ++p) {
      const double bpj = alpha * bb(p, j);
      if (bpj == 0.0) continue;
      for (int i = 0; i < m; ++i) c(i, j) += aa(i, p) * bpj;
    }
  }
}

// Unblocked right-side solve X op(A) = B via column operations -- the
// pre-blocking kernel, now only ever applied to kTrsmNb-wide diagonal
// blocks (the inter-block work goes through one gemm per block instead of
// per-column axpy chains).
void trsm_right_unblocked(UpLo uplo, Trans trans, Diag diag, ConstMatrixView a,
                          MatrixView b) {
  const int n = a.rows;
  // B(:,dst) += coeff * B(:,src).
  auto axpy_col = [&b](int dst, int src, double coeff) {
    axpy(b.rows, coeff, b.col(src), 1, b.col(dst), 1);
  };
  if (trans == Trans::No) {
    if (uplo == UpLo::Upper) {
      // Forward over columns of A (upper, no trans => X left to right).
      for (int j = 0; j < n; ++j) {
        if (diag == Diag::NonUnit) scal(b.rows, 1.0 / a(j, j), b.col(j), 1);
        for (int p = j + 1; p < n; ++p) {
          double apj = a(j, p);
          if (apj != 0.0) axpy_col(p, j, -apj);
        }
      }
    } else {
      for (int j = n - 1; j >= 0; --j) {
        if (diag == Diag::NonUnit) scal(b.rows, 1.0 / a(j, j), b.col(j), 1);
        for (int p = 0; p < j; ++p) {
          double apj = a(j, p);
          if (apj != 0.0) axpy_col(p, j, -apj);
        }
      }
    }
  } else {
    if (uplo == UpLo::Lower) {
      // X A^T = B with A lower => A^T upper; same pattern as Upper/No.
      for (int j = 0; j < n; ++j) {
        if (diag == Diag::NonUnit) scal(b.rows, 1.0 / a(j, j), b.col(j), 1);
        for (int p = j + 1; p < n; ++p) {
          double apj = a(p, j);
          if (apj != 0.0) axpy_col(p, j, -apj);
        }
      }
    } else {
      for (int j = n - 1; j >= 0; --j) {
        if (diag == Diag::NonUnit) scal(b.rows, 1.0 / a(j, j), b.col(j), 1);
        for (int p = 0; p < j; ++p) {
          double apj = a(p, j);
          if (apj != 0.0) axpy_col(p, j, -apj);
        }
      }
    }
  }
}

}  // namespace

void gemm_reference(Trans transa, Trans transb, double alpha, ConstMatrixView a,
                    ConstMatrixView b, double beta, MatrixView c) {
  const int m = (transa == Trans::No) ? a.rows : a.cols;
  const int k = (transa == Trans::No) ? a.cols : a.rows;
  const int n = (transb == Trans::No) ? b.cols : b.rows;
  assert(((transb == Trans::No) ? b.rows : b.cols) == k);
  assert(c.rows == m && c.cols == n);
  scale_c(beta, c);
  if (alpha == 0.0) return;
  auto aa = [&](int i, int p) { return (transa == Trans::No) ? a(i, p) : a(p, i); };
  auto bb = [&](int p, int j) { return (transb == Trans::No) ? b(p, j) : b(j, p); };
  for (int j = 0; j < n; ++j) {
    for (int p = 0; p < k; ++p) {
      double bpj = alpha * bb(p, j);
      if (bpj == 0.0) continue;
      for (int i = 0; i < m; ++i) c(i, j) += aa(i, p) * bpj;
    }
  }
}

namespace {

// Packed engine: both operands are copied into contiguous aligned
// micro-panel buffers (transposes fold into the packing, alpha folds
// into B), then an kMr x kNr register-tiled microkernel sweeps them.
// The buffers come from the per-worker scratch arena, so steady-state
// Schur updates allocate nothing.
void gemm_packed(Trans transa, Trans transb, double alpha, ConstMatrixView a,
                 ConstMatrixView b, MatrixView c, int m, int n, int k) {
  WorkerScratch& scratch = worker_scratch();
  double* apack = scratch.pack_a(static_cast<std::size_t>(kMc) * kKc);
  double* bpack = scratch.pack_b(static_cast<std::size_t>(kKc) * kNc);
  // Per-(panel, k-index) nonzero mask; kKc * kNc/kNr bytes fit in doubles.
  unsigned char* bmask = reinterpret_cast<unsigned char*>(
      scratch.temp(static_cast<std::size_t>(kKc) * (kNc / kNr) / 8 + 8));
  for (int jc = 0; jc < n; jc += kNc) {
    const int nb = std::min(kNc, n - jc);
    for (int pc = 0; pc < k; pc += kKc) {
      const int kb = std::min(kKc, k - pc);
      const bool masked = pack_b(transb, alpha, b, pc, jc, kb, nb, bpack, bmask);
      for (int ic = 0; ic < m; ic += kMc) {
        const int mb = std::min(kMc, m - ic);
        pack_a(transa, a, ic, pc, mb, kb, apack);
        for (int jr = 0; jr < nb; jr += kNr) {
          const double* bpanel = bpack + static_cast<std::size_t>(jr) * kb;
          const unsigned char* pmask =
              masked ? bmask + (jr / kNr) * kb : nullptr;
          const int nr = std::min(kNr, nb - jr);
          for (int ir = 0; ir < mb; ir += kMr) {
            micro_kernel(kb, apack + static_cast<std::size_t>(ir) * kb, bpanel,
                         pmask,
                         c.data + static_cast<std::size_t>(jc + jr) * c.ld +
                             ic + ir,
                         c.ld, std::min(kMr, mb - ir), nr);
          }
        }
      }
    }
  }
}

}  // namespace

bool gemm_pack_worthwhile(int m, int n, int k) {
  return static_cast<double>(m) * n * k >= tunables::kPackThreshold;
}

bool gemm_b_dense_enough(Trans transb, ConstMatrixView b, int k, int n) {
  const long budget = static_cast<long>(tunables::kPackMaxZeroFrac *
                                        (static_cast<double>(k) * n));
  long zeros = 0;
  if (transb == Trans::No) {
    for (int j = 0; j < n; ++j) {
      const double* bj = b.data + static_cast<std::size_t>(j) * b.ld;
      for (int p = 0; p < k; ++p) zeros += (bj[p] == 0.0);
      if (zeros > budget) return false;
    }
  } else {
    for (int p = 0; p < k; ++p) {
      const double* bp = b.data + static_cast<std::size_t>(p) * b.ld;
      for (int j = 0; j < n; ++j) zeros += (bp[j] == 0.0);
      if (zeros > budget) return false;
    }
  }
  return true;
}

void gemm(Trans transa, Trans transb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c, GemmEngine engine) {
  const int m = (transa == Trans::No) ? a.rows : a.cols;
  const int k = (transa == Trans::No) ? a.cols : a.rows;
  const int n = (transb == Trans::No) ? b.cols : b.rows;
  assert(((transb == Trans::No) ? b.rows : b.cols) == k);
  assert(c.rows == m && c.cols == n);
  scale_c(beta, c);
  if (alpha == 0.0 || k == 0) return;
  if (engine == GemmEngine::kAuto) {
    // Short-circuit order matters for cost only (the scan is O(k*n)), not
    // for the decision; hint-passing callers replay these exact predicates.
    engine = (gemm_pack_worthwhile(m, n, k) &&
              gemm_b_dense_enough(transb, b, k, n))
                 ? GemmEngine::kPacked
                 : GemmEngine::kDirect;
  }
  if (engine == GemmEngine::kPacked) {
    gemm_packed(transa, transb, alpha, a, b, c, m, n, k);
  } else {
    gemm_direct(transa, transb, alpha, a, b, c, m, n, k);
  }
}

void gemm(Trans transa, Trans transb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c) {
  gemm(transa, transb, alpha, a, b, beta, c, GemmEngine::kAuto);
}

void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView a, MatrixView b) {
  assert(a.rows == a.cols);
  const int n = a.rows;
  if (side == Side::Left) {
    assert(b.rows == n);
    if (alpha != 1.0) scale_c(alpha, b);
    // Column-by-column triangular solves; each column of B is independent.
    for (int j = 0; j < b.cols; ++j) {
      trsv(uplo, trans, diag, a, b.col(j), 1);
    }
    (void)n;
  } else {
    assert(b.cols == n);
    if (alpha != 1.0) scale_c(alpha, b);
    // Blocked right-side solve: the kTrsmNb-wide diagonal block is solved
    // with the unblocked column kernel, then its effect on every remaining
    // column is folded in with ONE gemm -- replacing the O(n^2) chain of
    // per-column axpy calls the unblocked kernel would spend on the
    // off-diagonal part.
    const bool op_upper = (uplo == UpLo::Upper) == (trans == Trans::No);
    if (op_upper) {
      // X op(A) = B with op(A) upper: column blocks left to right, each
      // solved block updates the trailing columns.
      for (int j0 = 0; j0 < n; j0 += kTrsmNb) {
        const int w = std::min(kTrsmNb, n - j0);
        trsm_right_unblocked(uplo, trans, diag, a.block(j0, j0, w, w),
                             b.block(0, j0, b.rows, w));
        const int rest = n - (j0 + w);
        if (rest > 0) {
          MatrixView btrail = b.block(0, j0 + w, b.rows, rest);
          if (trans == Trans::No) {
            gemm(Trans::No, Trans::No, -1.0, b.block(0, j0, b.rows, w),
                 a.block(j0, j0 + w, w, rest), 1.0, btrail);
          } else {
            gemm(Trans::No, Trans::Yes, -1.0, b.block(0, j0, b.rows, w),
                 a.block(j0 + w, j0, rest, w), 1.0, btrail);
          }
        }
      }
    } else {
      // op(A) lower: column blocks right to left, each solved block
      // updates the leading columns.
      for (int j0 = ((n - 1) / kTrsmNb) * kTrsmNb; j0 >= 0; j0 -= kTrsmNb) {
        const int w = std::min(kTrsmNb, n - j0);
        trsm_right_unblocked(uplo, trans, diag, a.block(j0, j0, w, w),
                             b.block(0, j0, b.rows, w));
        if (j0 > 0) {
          MatrixView blead = b.block(0, 0, b.rows, j0);
          if (trans == Trans::No) {
            gemm(Trans::No, Trans::No, -1.0, b.block(0, j0, b.rows, w),
                 a.block(j0, 0, w, j0), 1.0, blead);
          } else {
            gemm(Trans::No, Trans::Yes, -1.0, b.block(0, j0, b.rows, w),
                 a.block(0, j0, j0, w), 1.0, blead);
          }
        }
      }
    }
  }
}

void set_use_blocked_kernels(bool use) { g_use_blocked.store(use); }
bool use_blocked_kernels() { return g_use_blocked.load(); }

void gemm_dispatch(Trans transa, Trans transb, double alpha, ConstMatrixView a,
                   ConstMatrixView b, double beta, MatrixView c) {
  gemm_dispatch(transa, transb, alpha, a, b, beta, c, GemmEngine::kAuto);
}

void gemm_dispatch(Trans transa, Trans transb, double alpha, ConstMatrixView a,
                   ConstMatrixView b, double beta, MatrixView c,
                   GemmEngine engine) {
  if (use_blocked_kernels()) {
    gemm(transa, transb, alpha, a, b, beta, c, engine);
  } else {
    // Scalar-kernel ablation arm: engine hints are routing advice for the
    // blocked tier only; the reference kernel has exactly one engine.
    gemm_reference(transa, transb, alpha, a, b, beta, c);
  }
}

double gemm_flops(int m, int n, int k) { return 2.0 * m * n * k; }

double trsm_flops(Side side, int m, int n) {
  return (side == Side::Left) ? static_cast<double>(m) * m * n
                              : static_cast<double>(n) * n * m;
}

double getrf_flops(int m, int n) {
  // Sum over columns j of (m-j-1) divisions + 2*(m-j-1)*(n-j-1) update flops.
  double f = 0.0;
  int p = std::min(m, n);
  for (int j = 0; j < p; ++j) {
    f += (m - j - 1) + 2.0 * (m - j - 1) * (n - j - 1);
  }
  return f;
}

}  // namespace plu::blas
