#include "blas/level3.h"

#include "blas/level1.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <vector>

namespace plu::blas {

namespace {

std::atomic<bool> g_use_blocked{true};

// Cache-blocking parameters, modest because the target blocks are small
// supernodal panels (tens of rows/columns).
constexpr int kMc = 64;   // rows of A per block
constexpr int kKc = 128;  // inner dimension per block
constexpr int kNc = 64;   // cols of B per block

// Micro-kernel: C(0:m,0:n) += alpha * A(0:m,0:k) * B(0:k,0:n) with all views
// column-major, no transposes.  Inner loop is stride-1 over rows of A and C.
void gemm_nn_block(int m, int n, int k, double alpha, const double* a, int lda,
                   const double* b, int ldb, double* c, int ldc) {
  for (int j = 0; j < n; ++j) {
    double* cj = c + static_cast<std::size_t>(j) * ldc;
    const double* bj = b + static_cast<std::size_t>(j) * ldb;
    int p = 0;
    // Unroll the k-loop by 4 to amortize the column-pointer arithmetic.
    for (; p + 4 <= k; p += 4) {
      const double b0 = alpha * bj[p];
      const double b1 = alpha * bj[p + 1];
      const double b2 = alpha * bj[p + 2];
      const double b3 = alpha * bj[p + 3];
      const double* a0 = a + static_cast<std::size_t>(p) * lda;
      const double* a1 = a0 + lda;
      const double* a2 = a1 + lda;
      const double* a3 = a2 + lda;
      if (b0 == 0.0 && b1 == 0.0 && b2 == 0.0 && b3 == 0.0) continue;
      for (int i = 0; i < m; ++i) {
        cj[i] += b0 * a0[i] + b1 * a1[i] + b2 * a2[i] + b3 * a3[i];
      }
    }
    for (; p < k; ++p) {
      const double bp = alpha * bj[p];
      if (bp == 0.0) continue;
      const double* ap = a + static_cast<std::size_t>(p) * lda;
      for (int i = 0; i < m; ++i) cj[i] += bp * ap[i];
    }
  }
}

// Materializes op(X) into a compact column-major buffer when op is a
// transpose, so the blocked no-transpose kernel can be reused.
DenseMatrix materialize_transpose(ConstMatrixView x) {
  DenseMatrix t(x.cols, x.rows);
  for (int j = 0; j < x.cols; ++j) {
    for (int i = 0; i < x.rows; ++i) t(j, i) = x(i, j);
  }
  return t;
}

// B(:,dst) += coeff * B(:,src); used by the Side::Right trsm variants.
void axpy_col(MatrixView b, int dst, int src, double coeff) {
  axpy(b.rows, coeff, b.col(src), 1, b.col(dst), 1);
}

void scale_c(double beta, MatrixView c) {
  if (beta == 1.0) return;
  for (int j = 0; j < c.cols; ++j) {
    double* cj = c.col(j);
    if (beta == 0.0) {
      std::fill(cj, cj + c.rows, 0.0);
    } else {
      for (int i = 0; i < c.rows; ++i) cj[i] *= beta;
    }
  }
}

}  // namespace

void gemm_reference(Trans transa, Trans transb, double alpha, ConstMatrixView a,
                    ConstMatrixView b, double beta, MatrixView c) {
  const int m = (transa == Trans::No) ? a.rows : a.cols;
  const int k = (transa == Trans::No) ? a.cols : a.rows;
  const int n = (transb == Trans::No) ? b.cols : b.rows;
  assert(((transb == Trans::No) ? b.rows : b.cols) == k);
  assert(c.rows == m && c.cols == n);
  scale_c(beta, c);
  if (alpha == 0.0) return;
  auto aa = [&](int i, int p) { return (transa == Trans::No) ? a(i, p) : a(p, i); };
  auto bb = [&](int p, int j) { return (transb == Trans::No) ? b(p, j) : b(j, p); };
  for (int j = 0; j < n; ++j) {
    for (int p = 0; p < k; ++p) {
      double bpj = alpha * bb(p, j);
      if (bpj == 0.0) continue;
      for (int i = 0; i < m; ++i) c(i, j) += aa(i, p) * bpj;
    }
  }
}

void gemm(Trans transa, Trans transb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c) {
  // Reduce the transposed cases to the no-transpose kernel by materializing
  // the transposed operand; blocks in this code base are small enough that
  // the copy is cheap relative to the O(mnk) work.
  if (transa == Trans::Yes) {
    DenseMatrix at = materialize_transpose(a);
    gemm(Trans::No, transb, alpha, at.view(), b, beta, c);
    return;
  }
  if (transb == Trans::Yes) {
    DenseMatrix bt = materialize_transpose(b);
    gemm(Trans::No, Trans::No, alpha, a, bt.view(), beta, c);
    return;
  }
  const int m = a.rows;
  const int k = a.cols;
  const int n = b.cols;
  assert(b.rows == k && c.rows == m && c.cols == n);
  scale_c(beta, c);
  if (alpha == 0.0 || k == 0) return;
  for (int jc = 0; jc < n; jc += kNc) {
    const int nb = std::min(kNc, n - jc);
    for (int pc = 0; pc < k; pc += kKc) {
      const int kb = std::min(kKc, k - pc);
      for (int ic = 0; ic < m; ic += kMc) {
        const int mb = std::min(kMc, m - ic);
        gemm_nn_block(mb, nb, kb, alpha,
                      a.data + static_cast<std::size_t>(pc) * a.ld + ic, a.ld,
                      b.data + static_cast<std::size_t>(jc) * b.ld + pc, b.ld,
                      c.data + static_cast<std::size_t>(jc) * c.ld + ic, c.ld);
      }
    }
  }
}

void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView a, MatrixView b) {
  assert(a.rows == a.cols);
  const int n = a.rows;
  if (side == Side::Left) {
    assert(b.rows == n);
    if (alpha != 1.0) scale_c(alpha, b);
    // Column-by-column triangular solves; each column of B is independent.
    // For the hot case (Lower/No/Unit: computing a U panel from a factored
    // diagonal block) use a column-blocked loop so the inner updates are
    // rank-1 over contiguous columns.
    for (int j = 0; j < b.cols; ++j) {
      trsv(uplo, trans, diag, a, b.col(j), 1);
    }
    (void)n;
  } else {
    assert(b.cols == n);
    if (alpha != 1.0) scale_c(alpha, b);
    // X op(A) = B  <=>  op(A)^T X^T = B^T; solve row-wise.
    // Implemented directly via column updates on B.
    if (trans == Trans::No) {
      if (uplo == UpLo::Upper) {
        // Forward over columns of A (upper, no trans => X computed left to right).
        for (int j = 0; j < n; ++j) {
          if (diag == Diag::NonUnit) scal(b.rows, 1.0 / a(j, j), b.col(j), 1);
          for (int p = j + 1; p < n; ++p) {
            double apj = a(j, p);
            if (apj != 0.0) axpy_col(b, p, j, -apj);
          }
        }
      } else {
        for (int j = n - 1; j >= 0; --j) {
          if (diag == Diag::NonUnit) scal(b.rows, 1.0 / a(j, j), b.col(j), 1);
          for (int p = 0; p < j; ++p) {
            double apj = a(j, p);
            if (apj != 0.0) axpy_col(b, p, j, -apj);
          }
        }
      }
    } else {
      if (uplo == UpLo::Lower) {
        // X A^T = B with A lower => A^T upper; same pattern as Upper/No.
        for (int j = 0; j < n; ++j) {
          if (diag == Diag::NonUnit) scal(b.rows, 1.0 / a(j, j), b.col(j), 1);
          for (int p = j + 1; p < n; ++p) {
            double apj = a(p, j);
            if (apj != 0.0) axpy_col(b, p, j, -apj);
          }
        }
      } else {
        for (int j = n - 1; j >= 0; --j) {
          if (diag == Diag::NonUnit) scal(b.rows, 1.0 / a(j, j), b.col(j), 1);
          for (int p = 0; p < j; ++p) {
            double apj = a(p, j);
            if (apj != 0.0) axpy_col(b, p, j, -apj);
          }
        }
      }
    }
  }
}

void set_use_blocked_kernels(bool use) { g_use_blocked.store(use); }
bool use_blocked_kernels() { return g_use_blocked.load(); }

void gemm_dispatch(Trans transa, Trans transb, double alpha, ConstMatrixView a,
                   ConstMatrixView b, double beta, MatrixView c) {
  if (use_blocked_kernels()) {
    gemm(transa, transb, alpha, a, b, beta, c);
  } else {
    gemm_reference(transa, transb, alpha, a, b, beta, c);
  }
}

double gemm_flops(int m, int n, int k) { return 2.0 * m * n * k; }

double trsm_flops(Side side, int m, int n) {
  return (side == Side::Left) ? static_cast<double>(m) * m * n
                              : static_cast<double>(n) * n * m;
}

double getrf_flops(int m, int n) {
  // Sum over columns j of (m-j-1) divisions + 2*(m-j-1)*(n-j-1) update flops.
  double f = 0.0;
  int p = std::min(m, n);
  for (int j = 0; j < p; ++j) {
    f += (m - j - 1) + 2.0 * (m - j - 1) * (n - j - 1);
  }
  return f;
}

}  // namespace plu::blas
