#include "blas/scratch.h"

#include <cstdint>

namespace plu::blas {

double* WorkerScratch::Buffer::grab(std::size_t n) {
  // Over-allocate by one cache line so the returned pointer can be rounded
  // up to a 64-byte boundary (vector's allocation only guarantees 16).
  if (store.size() < n + 8) {
    store.resize(n + 8);
  }
  auto p = reinterpret_cast<std::uintptr_t>(store.data());
  p = (p + 63) & ~static_cast<std::uintptr_t>(63);
  return reinterpret_cast<double*>(p);
}

WorkerScratch& worker_scratch() {
  thread_local WorkerScratch scratch;
  return scratch;
}

}  // namespace plu::blas
