#include "blas/level1.h"

#include <algorithm>
#include <cmath>

namespace plu::blas {

void axpy(int n, double alpha, const double* x, int incx, double* y, int incy) {
  if (n <= 0 || alpha == 0.0) return;
  if (incx == 1 && incy == 1) {
    for (int i = 0; i < n; ++i) y[i] += alpha * x[i];
    return;
  }
  for (int i = 0; i < n; ++i) y[static_cast<std::ptrdiff_t>(i) * incy] +=
      alpha * x[static_cast<std::ptrdiff_t>(i) * incx];
}

void scal(int n, double alpha, double* x, int incx) {
  if (n <= 0) return;
  if (incx == 1) {
    for (int i = 0; i < n; ++i) x[i] *= alpha;
    return;
  }
  for (int i = 0; i < n; ++i) x[static_cast<std::ptrdiff_t>(i) * incx] *= alpha;
}

double dot(int n, const double* x, int incx, const double* y, int incy) {
  double sum = 0.0;
  if (incx == 1 && incy == 1) {
    for (int i = 0; i < n; ++i) sum += x[i] * y[i];
    return sum;
  }
  for (int i = 0; i < n; ++i) {
    sum += x[static_cast<std::ptrdiff_t>(i) * incx] *
           y[static_cast<std::ptrdiff_t>(i) * incy];
  }
  return sum;
}

double nrm2(int n, const double* x, int incx) {
  // Scaled accumulation avoids overflow/underflow for extreme values.
  double scale = 0.0;
  double ssq = 1.0;
  for (int i = 0; i < n; ++i) {
    double xi = x[static_cast<std::ptrdiff_t>(i) * incx];
    if (xi == 0.0) continue;
    double a = std::abs(xi);
    if (scale < a) {
      double r = scale / a;
      ssq = 1.0 + ssq * r * r;
      scale = a;
    } else {
      double r = a / scale;
      ssq += r * r;
    }
  }
  return scale * std::sqrt(ssq);
}

double asum(int n, const double* x, int incx) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += std::abs(x[static_cast<std::ptrdiff_t>(i) * incx]);
  return sum;
}

int iamax(int n, const double* x, int incx) {
  if (n <= 0) return -1;
  int best = 0;
  double bestval = std::abs(x[0]);
  for (int i = 1; i < n; ++i) {
    double v = std::abs(x[static_cast<std::ptrdiff_t>(i) * incx]);
    if (v > bestval) {
      bestval = v;
      best = i;
    }
  }
  return best;
}

void swap(int n, double* x, int incx, double* y, int incy) {
  for (int i = 0; i < n; ++i) {
    std::swap(x[static_cast<std::ptrdiff_t>(i) * incx],
              y[static_cast<std::ptrdiff_t>(i) * incy]);
  }
}

void copy(int n, const double* x, int incx, double* y, int incy) {
  for (int i = 0; i < n; ++i) {
    y[static_cast<std::ptrdiff_t>(i) * incy] = x[static_cast<std::ptrdiff_t>(i) * incx];
  }
}

}  // namespace plu::blas
