#include "blas/dense.h"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace plu::blas {

DenseMatrix DenseMatrix::identity(int n) {
  DenseMatrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void copy(ConstMatrixView src, MatrixView dst) {
  assert(src.rows == dst.rows && src.cols == dst.cols);
  for (int j = 0; j < src.cols; ++j) {
    const double* s = src.col(j);
    double* d = dst.col(j);
    std::copy(s, s + src.rows, d);
  }
}

double frobenius_norm(ConstMatrixView a) {
  double sum = 0.0;
  for (int j = 0; j < a.cols; ++j) {
    const double* c = a.col(j);
    for (int i = 0; i < a.rows; ++i) sum += c[i] * c[i];
  }
  return std::sqrt(sum);
}

double max_abs(ConstMatrixView a) {
  double m = 0.0;
  for (int j = 0; j < a.cols; ++j) {
    const double* c = a.col(j);
    for (int i = 0; i < a.rows; ++i) m = std::max(m, std::abs(c[i]));
  }
  return m;
}

double max_abs_diff(ConstMatrixView a, ConstMatrixView b) {
  assert(a.rows == b.rows && a.cols == b.cols);
  double m = 0.0;
  for (int j = 0; j < a.cols; ++j) {
    const double* ca = a.col(j);
    const double* cb = b.col(j);
    for (int i = 0; i < a.rows; ++i) m = std::max(m, std::abs(ca[i] - cb[i]));
  }
  return m;
}

std::ostream& operator<<(std::ostream& os, ConstMatrixView a) {
  for (int i = 0; i < a.rows; ++i) {
    for (int j = 0; j < a.cols; ++j) {
      os << a(i, j) << (j + 1 == a.cols ? "" : " ");
    }
    os << '\n';
  }
  return os;
}

}  // namespace plu::blas
