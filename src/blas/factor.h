// LAPACK-style dense factorization kernels: partial-pivoting LU on a
// rectangular panel (getrf / getf2), row interchanges (laswp), and solves
// (getrs).  These are the building blocks of the supernodal Factor(k) task.
#pragma once

#include <vector>

#include "blas/dense.h"
#include "blas/level2.h"
#include "blas/level3.h"

namespace plu::blas {

/// Static pivot perturbation (SuperLU_DIST-style): when `magnitude` > 0, a
/// selected pivot with |pivot| < magnitude is replaced by +-magnitude (sign
/// preserved, + for exact zeros) instead of stopping the elimination, and
/// its 0-based panel column is appended to `columns`.  The factorization
/// then completes with info == 0 for those columns; accuracy is recovered
/// afterwards by iterative refinement (core/refine.h).
struct PivotPerturbation {
  double magnitude = 0.0;     // 0 disables perturbation
  std::vector<int> columns;   // panel columns whose pivot was perturbed
};

/// Unblocked right-looking LU with partial pivoting on an m x n panel.
///
/// On exit A holds L (unit lower, strictly below diagonal) and U (upper).
/// ipiv[j] = 0-based row index swapped with row j at step j (LAPACK style,
/// ipiv[j] >= j).  Returns the 0-based index of the first zero pivot + 1, or
/// 0 on success (LAPACK info convention).  With `perturb` set, tiny pivots
/// are bumped instead of reported (see PivotPerturbation).
int getf2(MatrixView a, std::vector<int>& ipiv,
          PivotPerturbation* perturb = nullptr);

/// Blocked LU with partial pivoting; same contract as getf2.
int getrf(MatrixView a, std::vector<int>& ipiv, int block_size = 32,
          PivotPerturbation* perturb = nullptr);

/// getf2 with threshold pivoting and diagonal preference: the diagonal
/// entry is kept as the pivot whenever |a_jj| >= threshold * max|column|;
/// otherwise the max-magnitude row is swapped in (threshold = 1.0 reduces
/// to partial pivoting except for exact ties, which also keep the
/// diagonal).  `swaps`, when non-null, accumulates the number of actual
/// interchanges -- the quantity MC64-style preprocessing drives toward 0.
int getf2_threshold(MatrixView a, std::vector<int>& ipiv, double threshold,
                    long* swaps = nullptr,
                    PivotPerturbation* perturb = nullptr);

/// True when every entry of the view is finite (no Inf/NaN).  When
/// `first_bad_col` is non-null it receives the 0-based column of the first
/// non-finite entry found (column-major scan order), or -1 if none.
bool all_finite(ConstMatrixView a, int* first_bad_col = nullptr);

/// Applies the row interchanges ipiv[j0..j1) to all columns of A (forward
/// order), matching LAPACK dlaswp with increment 1.
void laswp(MatrixView a, const std::vector<int>& ipiv, int j0, int j1);

/// Applies the interchanges in reverse order (undo of laswp).
void laswp_reverse(MatrixView a, const std::vector<int>& ipiv, int j0, int j1);

/// Solves op(A) X = B using the getrf output (A square, factored in place).
void getrs(Trans trans, ConstMatrixView lu, const std::vector<int>& ipiv,
           MatrixView b);

/// Convenience: factor a copy of `a` and solve a x = b; returns false when a
/// zero pivot is met.  b is overwritten with the solution.
bool dense_solve(const DenseMatrix& a, std::vector<double>& b);

/// Infinity-norm condition estimate helper: ||A||_inf of a square view.
double inf_norm(ConstMatrixView a);

}  // namespace plu::blas
