// Dense matrix views and an owning dense matrix, column-major.
//
// These are the storage primitives for the dense submatrix blocks that the
// supernodal sparse LU factorization operates on (the S+/S* approach treats
// each structurally nonzero submatrix block as dense).  No external BLAS is
// available in this environment, so src/blas/ provides the needed subset of
// BLAS-1/2/3 plus LAPACK-style panel factorization kernels.
#pragma once

#include <cassert>
#include <cstddef>
#include <iosfwd>
#include <vector>

namespace plu::blas {

/// Non-owning mutable view of a column-major dense matrix.
///
/// Element (i, j) lives at data[i + j * ld].  `ld >= rows` allows views of
/// submatrices of a larger allocation.
struct MatrixView {
  double* data = nullptr;
  int rows = 0;
  int cols = 0;
  int ld = 0;

  MatrixView() = default;
  MatrixView(double* d, int r, int c, int l) : data(d), rows(r), cols(c), ld(l) {
    assert(l >= r);
  }
  MatrixView(double* d, int r, int c) : MatrixView(d, r, c, r) {}

  double& operator()(int i, int j) const {
    assert(i >= 0 && i < rows && j >= 0 && j < cols);
    return data[static_cast<std::size_t>(j) * ld + i];
  }

  /// View of the submatrix starting at (i0, j0) with dimensions r x c.
  MatrixView block(int i0, int j0, int r, int c) const {
    assert(i0 >= 0 && j0 >= 0 && i0 + r <= rows && j0 + c <= cols);
    return {data + static_cast<std::size_t>(j0) * ld + i0, r, c, ld};
  }

  /// Mutable pointer to the start of column j.
  double* col(int j) const {
    assert(j >= 0 && j < cols);
    return data + static_cast<std::size_t>(j) * ld;
  }
};

/// Non-owning read-only view of a column-major dense matrix.
struct ConstMatrixView {
  const double* data = nullptr;
  int rows = 0;
  int cols = 0;
  int ld = 0;

  ConstMatrixView() = default;
  ConstMatrixView(const double* d, int r, int c, int l)
      : data(d), rows(r), cols(c), ld(l) {
    assert(l >= r);
  }
  ConstMatrixView(const double* d, int r, int c) : ConstMatrixView(d, r, c, r) {}
  ConstMatrixView(const MatrixView& m)  // NOLINT: implicit by design
      : data(m.data), rows(m.rows), cols(m.cols), ld(m.ld) {}

  double operator()(int i, int j) const {
    assert(i >= 0 && i < rows && j >= 0 && j < cols);
    return data[static_cast<std::size_t>(j) * ld + i];
  }

  ConstMatrixView block(int i0, int j0, int r, int c) const {
    assert(i0 >= 0 && j0 >= 0 && i0 + r <= rows && j0 + c <= cols);
    return {data + static_cast<std::size_t>(j0) * ld + i0, r, c, ld};
  }

  const double* col(int j) const {
    assert(j >= 0 && j < cols);
    return data + static_cast<std::size_t>(j) * ld;
  }
};

/// Owning column-major dense matrix (ld == rows).
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * cols, 0.0) {
    assert(rows >= 0 && cols >= 0);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& operator()(int i, int j) {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(j) * rows_ + i];
  }
  double operator()(int i, int j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(j) * rows_ + i];
  }

  MatrixView view() { return {data_.data(), rows_, cols_, rows_}; }
  ConstMatrixView view() const { return {data_.data(), rows_, cols_, rows_}; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::size_t size() const { return data_.size(); }

  void set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

  /// Identity matrix of order n.
  static DenseMatrix identity(int n);

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// Copies src into dst (dimensions must match; leading dimensions may differ).
void copy(ConstMatrixView src, MatrixView dst);

/// Frobenius norm of a view.
double frobenius_norm(ConstMatrixView a);

/// Max-abs (entrywise infinity) norm of a view.
double max_abs(ConstMatrixView a);

/// max_ij |a_ij - b_ij| for equally-sized views.
double max_abs_diff(ConstMatrixView a, ConstMatrixView b);

std::ostream& operator<<(std::ostream& os, ConstMatrixView a);

}  // namespace plu::blas
