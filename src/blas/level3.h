// BLAS level-3 subset: matrix-matrix kernels used by the supernodal
// factorization (gemm for Schur-complement updates, trsm for computing U
// panels from factored diagonal blocks).
//
// Two gemm engines are provided:
//   * gemm_reference - textbook triple loop, used as the correctness oracle
//     and as the "scalar kernels" arm of the A2 ablation bench;
//   * gemm          - register/cache-blocked version used in production.
#pragma once

#include "blas/dense.h"
#include "blas/level2.h"

namespace plu::blas {

enum class Side { Left, Right };

/// Which blocked-gemm engine to run.  kAuto reproduces the historical
/// routing (pack when gemm_pack_worthwhile AND gemm_b_dense_enough, with
/// the same short-circuit, else direct); kDirect/kPacked force an engine.
/// ROUTING CONTRACT: for a given (op(A), op(B), alpha, beta, C) both
/// engines produce bitwise-identical C -- each element C(i,j) is
/// accumulated over p in ascending order in both, and the order is
/// independent of how callers partition m (see DESIGN.md section 16).  So
/// a caller that forces the engine kAuto would have chosen (by replaying
/// the two exported predicates), or merges row-adjacent calls under one
/// forced engine, changes nothing but speed.
enum class GemmEngine { kAuto, kDirect, kPacked };

/// C := alpha * op(A) * op(B) + beta * C  (blocked engine).
void gemm(Trans transa, Trans transb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c);

/// Blocked gemm with an explicit engine choice (see GemmEngine contract).
void gemm(Trans transa, Trans transb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c, GemmEngine engine);

/// The two halves of the kAuto routing decision, exported so plan-driven
/// callers (core/driver.cpp tiled updates) can hoist the O(k*n) density
/// scan across gemms that share op(B) and still reproduce the auto
/// decision exactly.  pack_worthwhile: m*n*k >= tunables::kPackThreshold.
/// b_dense_enough: op(B) carries at most tunables::kPackMaxZeroFrac zeros.
bool gemm_pack_worthwhile(int m, int n, int k);
bool gemm_b_dense_enough(Trans transb, ConstMatrixView b, int k, int n);

/// C := alpha * op(A) * op(B) + beta * C  (naive triple loop).
void gemm_reference(Trans transa, Trans transb, double alpha, ConstMatrixView a,
                    ConstMatrixView b, double beta, MatrixView c);

/// Solve op(A) X = alpha B (Side::Left) or X op(A) = alpha B (Side::Right),
/// X overwrites B; A triangular per uplo/diag.
void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView a, MatrixView b);

/// Global switch consulted by gemm-callers in the numeric factorization so
/// the A2 ablation bench can force the scalar reference kernels.
/// Not thread-safe to flip while a factorization runs; set it up front.
void set_use_blocked_kernels(bool use);
bool use_blocked_kernels();

/// Dispatches to gemm or gemm_reference per set_use_blocked_kernels().
void gemm_dispatch(Trans transa, Trans transb, double alpha, ConstMatrixView a,
                   ConstMatrixView b, double beta, MatrixView c);

/// Engine-hinted dispatch: forwards the hint to the blocked gemm; the
/// scalar-ablation arm ignores it (gemm_reference has one engine).
void gemm_dispatch(Trans transa, Trans transb, double alpha, ConstMatrixView a,
                   ConstMatrixView b, double beta, MatrixView c,
                   GemmEngine engine);

/// Flop counts for the cost model (multiply-add counted as 2 flops).
double gemm_flops(int m, int n, int k);
double trsm_flops(Side side, int m, int n);
double getrf_flops(int m, int n);

}  // namespace plu::blas
