// BLAS level-3 subset: matrix-matrix kernels used by the supernodal
// factorization (gemm for Schur-complement updates, trsm for computing U
// panels from factored diagonal blocks).
//
// Two gemm engines are provided:
//   * gemm_reference - textbook triple loop, used as the correctness oracle
//     and as the "scalar kernels" arm of the A2 ablation bench;
//   * gemm          - register/cache-blocked version used in production.
#pragma once

#include "blas/dense.h"
#include "blas/level2.h"

namespace plu::blas {

enum class Side { Left, Right };

/// C := alpha * op(A) * op(B) + beta * C  (blocked engine).
void gemm(Trans transa, Trans transb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c);

/// C := alpha * op(A) * op(B) + beta * C  (naive triple loop).
void gemm_reference(Trans transa, Trans transb, double alpha, ConstMatrixView a,
                    ConstMatrixView b, double beta, MatrixView c);

/// Solve op(A) X = alpha B (Side::Left) or X op(A) = alpha B (Side::Right),
/// X overwrites B; A triangular per uplo/diag.
void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView a, MatrixView b);

/// Global switch consulted by gemm-callers in the numeric factorization so
/// the A2 ablation bench can force the scalar reference kernels.
/// Not thread-safe to flip while a factorization runs; set it up front.
void set_use_blocked_kernels(bool use);
bool use_blocked_kernels();

/// Dispatches to gemm or gemm_reference per set_use_blocked_kernels().
void gemm_dispatch(Trans transa, Trans transb, double alpha, ConstMatrixView a,
                   ConstMatrixView b, double beta, MatrixView c);

/// Flop counts for the cost model (multiply-add counted as 2 flops).
double gemm_flops(int m, int n, int k);
double trsm_flops(Side side, int m, int n);
double getrf_flops(int m, int n);

}  // namespace plu::blas
