#include "blas/factor.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "blas/level1.h"

namespace plu::blas {

namespace {

/// Applies the static perturbation policy to the selected pivot value at
/// panel column j: bumps |pv| up to the magnitude (sign-preserving, + for
/// exact zeros) and logs the column.  Returns the pivot to eliminate with.
inline double maybe_perturb(double pv, int j, PivotPerturbation* perturb) {
  if (!perturb || perturb->magnitude <= 0.0 ||
      std::abs(pv) >= perturb->magnitude) {
    return pv;
  }
  perturb->columns.push_back(j);
  return pv < 0.0 ? -perturb->magnitude : perturb->magnitude;
}

}  // namespace

int getf2(MatrixView a, std::vector<int>& ipiv, PivotPerturbation* perturb) {
  const int m = a.rows;
  const int n = a.cols;
  const int p = std::min(m, n);
  ipiv.assign(p, 0);
  int info = 0;
  for (int j = 0; j < p; ++j) {
    // Pivot: largest magnitude in column j at or below the diagonal.
    int piv = j + iamax(m - j, a.col(j) + j, 1);
    ipiv[j] = piv;
    double pv = maybe_perturb(a(piv, j), j, perturb);
    if (pv == 0.0) {
      if (info == 0) info = j + 1;
      continue;  // Singular column: skip elimination, keep scanning.
    }
    if (piv != j) {
      swap(n, a.data + j, a.ld, a.data + piv, a.ld);
    }
    a(j, j) = pv;  // no-op unless the pivot was perturbed
    // Scale multipliers and rank-1 update of the trailing submatrix.
    if (j + 1 < m) {
      scal(m - j - 1, 1.0 / a(j, j), a.col(j) + j + 1, 1);
      if (j + 1 < n) {
        ger(-1.0, a.col(j) + j + 1, 1, a.data + static_cast<std::size_t>(j + 1) * a.ld + j,
            a.ld, a.block(j + 1, j + 1, m - j - 1, n - j - 1));
      }
    }
  }
  return info;
}

int getf2_threshold(MatrixView a, std::vector<int>& ipiv, double threshold,
                    long* swaps, PivotPerturbation* perturb) {
  const int m = a.rows;
  const int n = a.cols;
  const int p = std::min(m, n);
  ipiv.assign(p, 0);
  int info = 0;
  for (int j = 0; j < p; ++j) {
    int piv = j + iamax(m - j, a.col(j) + j, 1);
    // Keep the diagonal when it is within the threshold of the best pivot.
    if (std::abs(a(j, j)) >= threshold * std::abs(a(piv, j))) {
      piv = j;
    }
    ipiv[j] = piv;
    double pv = maybe_perturb(a(piv, j), j, perturb);
    if (pv == 0.0) {
      if (info == 0) info = j + 1;
      continue;
    }
    if (piv != j) {
      swap(n, a.data + j, a.ld, a.data + piv, a.ld);
      if (swaps) ++*swaps;
    }
    a(j, j) = pv;
    if (j + 1 < m) {
      scal(m - j - 1, 1.0 / a(j, j), a.col(j) + j + 1, 1);
      if (j + 1 < n) {
        ger(-1.0, a.col(j) + j + 1, 1, a.data + static_cast<std::size_t>(j + 1) * a.ld + j,
            a.ld, a.block(j + 1, j + 1, m - j - 1, n - j - 1));
      }
    }
  }
  return info;
}

int getrf(MatrixView a, std::vector<int>& ipiv, int block_size,
          PivotPerturbation* perturb) {
  const int m = a.rows;
  const int n = a.cols;
  const int p = std::min(m, n);
  ipiv.assign(p, 0);
  if (p == 0) return 0;
  if (block_size <= 1 || p <= block_size) {
    return getf2(a, ipiv, perturb);
  }
  int info = 0;
  for (int j = 0; j < p; j += block_size) {
    const int jb = std::min(block_size, p - j);
    // Factor the current panel A(j:m, j:j+jb).
    MatrixView panel = a.block(j, j, m - j, jb);
    std::vector<int> piv_local;
    PivotPerturbation local_perturb;
    if (perturb) local_perturb.magnitude = perturb->magnitude;
    int linfo = getf2(panel, piv_local, perturb ? &local_perturb : nullptr);
    if (linfo != 0 && info == 0) info = j + linfo;
    if (perturb) {
      for (int c : local_perturb.columns) perturb->columns.push_back(j + c);
    }
    // Record pivots in global row indices.
    for (int t = 0; t < jb; ++t) ipiv[j + t] = j + piv_local[t];
    // Apply the interchanges to the columns left of the panel...
    if (j > 0) {
      MatrixView left = a.block(j, 0, m - j, j);
      laswp(left, piv_local, 0, jb);
    }
    // ...and right of the panel.
    if (j + jb < n) {
      MatrixView right = a.block(j, j + jb, m - j, n - j - jb);
      laswp(right, piv_local, 0, jb);
      // U block row: solve L11 * U12 = A12.
      trsm(Side::Left, UpLo::Lower, Trans::No, Diag::Unit, 1.0,
           a.block(j, j, jb, jb), a.block(j, j + jb, jb, n - j - jb));
      // Trailing update: A22 -= L21 * U12.
      if (j + jb < m) {
        gemm(Trans::No, Trans::No, -1.0, a.block(j + jb, j, m - j - jb, jb),
             a.block(j, j + jb, jb, n - j - jb), 1.0,
             a.block(j + jb, j + jb, m - j - jb, n - j - jb));
      }
    }
  }
  return info;
}

void laswp(MatrixView a, const std::vector<int>& ipiv, int j0, int j1) {
  assert(j0 >= 0 && j1 <= static_cast<int>(ipiv.size()));
  for (int j = j0; j < j1; ++j) {
    int p = ipiv[j];
    if (p != j) {
      assert(p >= 0 && p < a.rows && j < a.rows);
      swap(a.cols, a.data + j, a.ld, a.data + p, a.ld);
    }
  }
}

void laswp_reverse(MatrixView a, const std::vector<int>& ipiv, int j0, int j1) {
  for (int j = j1 - 1; j >= j0; --j) {
    int p = ipiv[j];
    if (p != j) {
      swap(a.cols, a.data + j, a.ld, a.data + p, a.ld);
    }
  }
}

void getrs(Trans trans, ConstMatrixView lu, const std::vector<int>& ipiv,
           MatrixView b) {
  assert(lu.rows == lu.cols && b.rows == lu.rows);
  if (trans == Trans::No) {
    laswp(b, ipiv, 0, static_cast<int>(ipiv.size()));
    trsm(Side::Left, UpLo::Lower, Trans::No, Diag::Unit, 1.0, lu, b);
    trsm(Side::Left, UpLo::Upper, Trans::No, Diag::NonUnit, 1.0, lu, b);
  } else {
    // (PA)^T x = b  =>  U^T L^T P x = b.
    trsm(Side::Left, UpLo::Upper, Trans::Yes, Diag::NonUnit, 1.0, lu, b);
    trsm(Side::Left, UpLo::Lower, Trans::Yes, Diag::Unit, 1.0, lu, b);
    laswp_reverse(b, ipiv, 0, static_cast<int>(ipiv.size()));
  }
}

bool dense_solve(const DenseMatrix& a, std::vector<double>& b) {
  assert(a.rows() == a.cols());
  assert(static_cast<int>(b.size()) == a.rows());
  DenseMatrix lu = a;
  std::vector<int> ipiv;
  if (getrf(lu.view(), ipiv) != 0) return false;
  MatrixView bv(b.data(), a.rows(), 1);
  getrs(Trans::No, lu.view(), ipiv, bv);
  return true;
}

bool all_finite(ConstMatrixView a, int* first_bad_col) {
  if (first_bad_col) *first_bad_col = -1;
  for (int j = 0; j < a.cols; ++j) {
    const double* col = a.col(j);
    for (int i = 0; i < a.rows; ++i) {
      if (!std::isfinite(col[i])) {
        if (first_bad_col) *first_bad_col = j;
        return false;
      }
    }
  }
  return true;
}

double inf_norm(ConstMatrixView a) {
  double best = 0.0;
  for (int i = 0; i < a.rows; ++i) {
    double s = 0.0;
    for (int j = 0; j < a.cols; ++j) s += std::abs(a(i, j));
    best = std::max(best, s);
  }
  return best;
}

}  // namespace plu::blas
