#include "symbolic/supernodes.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace plu::symbolic {

SupernodePartition::SupernodePartition(std::vector<int> first_col, int n)
    : first_col_(std::move(first_col)) {
  if (first_col_.empty() || first_col_.front() != 0) {
    throw std::invalid_argument("SupernodePartition: must start at column 0");
  }
  first_col_.push_back(n);
  for (std::size_t s = 0; s + 1 < first_col_.size(); ++s) {
    if (first_col_[s] >= first_col_[s + 1]) {
      throw std::invalid_argument("SupernodePartition: boundaries not increasing");
    }
  }
  sup_of_col_.assign(n, 0);
  for (int s = 0; s < count(); ++s) {
    for (int j = first(s); j < end(s); ++j) sup_of_col_[j] = s;
  }
}

SupernodePartition SupernodePartition::trivial(int n) {
  std::vector<int> starts(n);
  for (int j = 0; j < n; ++j) starts[j] = j;
  return SupernodePartition(std::move(starts), n);
}

bool SupernodePartition::valid() const {
  if (first_col_.size() < 2 || first_col_.front() != 0) return false;
  for (std::size_t s = 0; s + 1 < first_col_.size(); ++s) {
    if (first_col_[s] >= first_col_[s + 1]) return false;
  }
  return static_cast<int>(sup_of_col_.size()) == first_col_.back();
}

// Same supernode iff struct(L col j) \ {j} == struct(L col j+1).
// Columns are sorted; the L part of column j starts at the diagonal.
bool columns_share_supernode(const Pattern& abar, int j) {
  const int* bj = std::lower_bound(abar.col_begin(j), abar.col_end(j), j);
  const int* ej = abar.col_end(j);
  const int* bn = std::lower_bound(abar.col_begin(j + 1), abar.col_end(j + 1), j + 1);
  const int* en = abar.col_end(j + 1);
  // Drop the diagonal j from column j's L part (it must be present).
  if (bj == ej || *bj != j) return false;
  ++bj;
  return (ej - bj == en - bn) && std::equal(bj, ej, bn);
}

SupernodePartition find_supernodes(const Pattern& abar) {
  const int n = abar.cols;
  std::vector<int> starts;
  if (n == 0) return SupernodePartition({0}, 0);
  starts.push_back(0);
  for (int j = 0; j + 1 < n; ++j) {
    if (!columns_share_supernode(abar, j)) starts.push_back(j + 1);
  }
  return SupernodePartition(std::move(starts), n);
}

SupernodePartition find_supernodes(const Pattern& abar, rt::Team& team) {
  const int n = abar.cols;
  if (n == 0) return SupernodePartition({0}, 0);
  // Each column's boundary flag is an owned slot; the collapse into the
  // starts vector stays sequential (cheap, order-preserving).
  std::vector<char> boundary(n, 0);
  boundary[0] = 1;
  team.parallel_for(abar.nnz(), n - 1, [&](int jb, int je, int) {
    for (int j = jb; j < je; ++j) {
      boundary[j + 1] = !columns_share_supernode(abar, j);
    }
  });
  std::vector<int> starts;
  for (int j = 0; j < n; ++j) {
    if (boundary[j]) starts.push_back(j);
  }
  return SupernodePartition(std::move(starts), n);
}

namespace {

/// L-structure of column j restricted to rows >= j (includes the diagonal).
std::pair<const int*, const int*> l_range(const Pattern& abar, int j) {
  const int* b = std::lower_bound(abar.col_begin(j), abar.col_end(j), j);
  return {b, abar.col_end(j)};
}

}  // namespace

/// The greedy merge scan over supernodes [s_begin, s_end), appending group
/// starts.  The scan state is local to the range: a group started inside it
/// reads only columns inside it, so disjoint ranges can run concurrently as
/// long as no merge could cross their boundary.
void amalgamate_range(const Pattern& abar, const graph::Forest& eforest,
                      const SupernodePartition& part,
                      const AmalgamationOptions& opt, int s_begin, int s_end,
                      std::vector<int>& starts) {
  std::vector<int> cur_union;  // union of L structures of the current group
  std::vector<int> trial;
  long cur_entries = 0;  // true entries in the group's L region

  int s = s_begin;
  while (s < s_end) {
    // Start a new group at supernode s.
    int c0 = part.first(s);
    int c1 = part.end(s);
    starts.push_back(c0);
    cur_union.clear();
    cur_entries = 0;
    for (int j = c0; j < c1; ++j) {
      auto [b, e] = l_range(abar, j);
      cur_entries += e - b;
      trial.clear();
      std::set_union(cur_union.begin(), cur_union.end(), b, e,
                     std::back_inserter(trial));
      cur_union.swap(trial);
    }
    int t = s + 1;
    while (t < s_end) {
      int t0 = part.first(t);
      int t1 = part.end(t);
      if (t1 - c0 > opt.max_width) break;
      if (opt.require_parent_child &&
          eforest.parent(t0 - 1) != t0) {
        break;
      }
      // Trial union and zero-fraction of the merged group [c0, t1).
      std::vector<int> u = cur_union;
      long entries = cur_entries;
      for (int j = t0; j < t1; ++j) {
        auto [b, e] = l_range(abar, j);
        entries += e - b;
        trial.clear();
        std::set_union(u.begin(), u.end(), b, e, std::back_inserter(trial));
        u.swap(trial);
      }
      // Stored cells: column j of the merged block holds |{r in u : r >= j}|.
      long stored = 0;
      for (int j = c0; j < t1; ++j) {
        stored += u.end() - std::lower_bound(u.begin(), u.end(), j);
      }
      double zero_fraction =
          stored > 0 ? static_cast<double>(stored - entries) / stored : 0.0;
      if (zero_fraction > opt.max_zero_fraction) break;
      // Accept the merge.
      cur_union.swap(u);
      cur_entries = entries;
      c1 = t1;
      ++t;
    }
    s = t;
  }
}

SupernodePartition amalgamate(const Pattern& abar, const graph::Forest& eforest,
                              const SupernodePartition& part,
                              const AmalgamationOptions& opt) {
  const int n = abar.cols;
  assert(part.num_cols() == n);
  std::vector<int> starts;
  amalgamate_range(abar, eforest, part, opt, 0, part.count(), starts);
  if (starts.empty()) starts.push_back(0);
  return SupernodePartition(std::move(starts), n);
}

SupernodePartition amalgamate(const Pattern& abar, const graph::Forest& eforest,
                              const SupernodePartition& part,
                              const AmalgamationOptions& opt, rt::Team& team) {
  const int n = abar.cols;
  assert(part.num_cols() == n);
  // Without the parent-child requirement a merge could cross a root
  // boundary, so the segment split below would not be boundary-safe.
  if (!opt.require_parent_child || team.lanes() == 1) {
    return amalgamate(abar, eforest, part, opt);
  }
  // Segment the supernode sequence after every supernode whose last column
  // is an eforest root: the sequential greedy cannot merge across such a
  // point (the test parent(end(s)-1) == first(s+1) fails when the parent is
  // kNone), so per-segment scans reproduce it exactly.
  std::vector<int> seg_starts;  // in supernode indices
  seg_starts.push_back(0);
  for (int s = 0; s + 1 < part.count(); ++s) {
    if (eforest.parent(part.end(s) - 1) == graph::kNone) {
      seg_starts.push_back(s + 1);
    }
  }
  seg_starts.push_back(part.count());
  const int nseg = static_cast<int>(seg_starts.size()) - 1;
  std::vector<std::vector<int>> seg_out(nseg);
  team.parallel_for(abar.nnz(), nseg, [&](int gb, int ge, int) {
    for (int g = gb; g < ge; ++g) {
      amalgamate_range(abar, eforest, part, opt, seg_starts[g],
                       seg_starts[g + 1], seg_out[g]);
    }
  });
  std::vector<int> starts;
  for (const auto& seg : seg_out) {
    starts.insert(starts.end(), seg.begin(), seg.end());
  }
  if (starts.empty()) starts.push_back(0);
  return SupernodePartition(std::move(starts), n);
}

SupernodeStats supernode_stats(const SupernodePartition& part) {
  SupernodeStats st;
  st.count = part.count();
  long total = 0;
  for (int s = 0; s < part.count(); ++s) {
    total += part.width(s);
    st.max_width = std::max(st.max_width, part.width(s));
  }
  st.avg_width = part.count() > 0 ? static_cast<double>(total) / part.count() : 0.0;
  return st;
}

}  // namespace plu::symbolic
