#include "symbolic/blocks.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>

#include "graph/eforest.h"
#include "symbolic/static_symbolic.h"

namespace plu::symbolic {

Pattern block_pattern(const Pattern& abar, const SupernodePartition& part) {
  const int nb = part.count();
  assert(part.num_cols() == abar.cols);
  Pattern bp(nb, nb);
  std::vector<int> mark(nb, -1);
  std::vector<int> buf;
  for (int s = 0; s < nb; ++s) {
    buf.clear();
    for (int j = part.first(s); j < part.end(s); ++j) {
      for (const int* it = abar.col_begin(j); it != abar.col_end(j); ++it) {
        int bi = part.supernode_of(*it);
        if (mark[bi] != s) {
          mark[bi] = s;
          buf.push_back(bi);
        }
      }
    }
    std::sort(buf.begin(), buf.end());
    bp.idx.insert(bp.idx.end(), buf.begin(), buf.end());
    bp.ptr[s + 1] = static_cast<int>(bp.idx.size());
  }
  return bp;
}

Pattern block_pattern(const Pattern& abar, const SupernodePartition& part,
                      rt::Team& team) {
  const int nb = part.count();
  assert(part.num_cols() == abar.cols);
  // Each block column's row-block list is computed independently with a
  // lane-local mark array; the ordered concatenation stays sequential.
  std::vector<std::vector<int>> per_s(nb);
  team.parallel_for(abar.nnz(), nb, [&](int sb, int se, int) {
    std::vector<int> mark(nb, -1);
    for (int s = sb; s < se; ++s) {
      std::vector<int>& buf = per_s[s];
      for (int j = part.first(s); j < part.end(s); ++j) {
        for (const int* it = abar.col_begin(j); it != abar.col_end(j); ++it) {
          int bi = part.supernode_of(*it);
          if (mark[bi] != s) {
            mark[bi] = s;
            buf.push_back(bi);
          }
        }
      }
      std::sort(buf.begin(), buf.end());
    }
  });
  Pattern bp(nb, nb);
  long total = 0;
  for (int s = 0; s < nb; ++s) total += static_cast<long>(per_s[s].size());
  bp.idx.reserve(total);
  for (int s = 0; s < nb; ++s) {
    bp.idx.insert(bp.idx.end(), per_s[s].begin(), per_s[s].end());
    bp.ptr[s + 1] = static_cast<int>(bp.idx.size());
  }
  return bp;
}

bool block_closure_holds(const Pattern& bpattern) {
  const int nb = bpattern.cols;
  Pattern rows = bpattern.transpose();
  for (int k = 0; k < nb; ++k) {
    // L blocks of column k and U blocks of row k.
    std::vector<int> lblocks;
    for (const int* it = bpattern.col_begin(k); it != bpattern.col_end(k); ++it) {
      if (*it > k) lblocks.push_back(*it);
    }
    if (lblocks.empty()) continue;
    for (const int* jt = rows.col_begin(k); jt != rows.col_end(k); ++jt) {
      int j = *jt;
      if (j <= k) continue;
      for (int i : lblocks) {
        if (!bpattern.contains(i, j)) return false;
      }
    }
  }
  return true;
}

std::vector<int> BlockStructure::l_blocks(int k) const {
  std::vector<int> out;
  for (const int* it = bpattern.col_begin(k); it != bpattern.col_end(k); ++it) {
    if (*it > k) out.push_back(*it);
  }
  return out;
}

std::vector<int> BlockStructure::u_blocks(int k) const {
  std::vector<int> out;
  for (const int* it = bpattern_rows.col_begin(k); it != bpattern_rows.col_end(k);
       ++it) {
    if (*it > k) out.push_back(*it);
  }
  return out;
}

Pattern pairwise_closure(const Pattern& bp, long* added) {
  assert(bp.rows == bp.cols);
  const int nb = bp.cols;
  const int W = (nb + 63) / 64;
  std::vector<std::uint64_t> cols(static_cast<std::size_t>(nb) * W, 0);
  std::vector<std::uint64_t> rows(static_cast<std::size_t>(nb) * W, 0);
  auto colw = [&](int j) { return cols.data() + static_cast<std::size_t>(j) * W; };
  auto roww = [&](int i) { return rows.data() + static_cast<std::size_t>(i) * W; };
  for (int j = 0; j < nb; ++j) {
    for (const int* it = bp.col_begin(j); it != bp.col_end(j); ++it) {
      colw(j)[*it >> 6] |= 1ull << (*it & 63);
      roww(*it)[j >> 6] |= 1ull << (j & 63);
    }
  }
  long new_blocks = 0;
  for (int k = 0; k < nb; ++k) {
    // Mask selecting indices strictly greater than k within word w0.
    const int w0 = k >> 6;
    const std::uint64_t gt_mask =
        (k & 63) == 63 ? 0ull : (~0ull << ((k & 63) + 1));
    const std::uint64_t* ck = colw(k);
    // Walk the U part of row k (columns j > k) and OR column k's L part in.
    const std::uint64_t* rk = roww(k);
    for (int w = w0; w < W; ++w) {
      std::uint64_t word = rk[w];
      if (w == w0) word &= gt_mask;
      while (word) {
        int j = (w << 6) + std::countr_zero(word);
        word &= word - 1;
        std::uint64_t* cj = colw(j);
        for (int v = w0; v < W; ++v) {
          std::uint64_t lpart = ck[v];
          if (v == w0) lpart &= gt_mask;
          std::uint64_t diff = lpart & ~cj[v];
          if (diff) {
            cj[v] |= diff;
            new_blocks += std::popcount(diff);
            while (diff) {
              int i = (v << 6) + std::countr_zero(diff);
              diff &= diff - 1;
              roww(i)[j >> 6] |= 1ull << (j & 63);
            }
          }
        }
      }
    }
  }
  if (added) *added = new_blocks;
  Pattern out(nb, nb);
  for (int j = 0; j < nb; ++j) {
    const std::uint64_t* cj = colw(j);
    for (int w = 0; w < W; ++w) {
      std::uint64_t word = cj[w];
      while (word) {
        out.idx.push_back((w << 6) + std::countr_zero(word));
        word &= word - 1;
      }
    }
    out.ptr[j + 1] = static_cast<int>(out.idx.size());
  }
  return out;
}

Pattern pairwise_closure(const Pattern& bp, rt::Team& team, long* added) {
  assert(bp.rows == bp.cols);
  const int nb = bp.cols;
  const int W = (nb + 63) / 64;
  std::vector<std::uint64_t> cols(static_cast<std::size_t>(nb) * W, 0);
  std::vector<std::uint64_t> rows(static_cast<std::size_t>(nb) * W, 0);
  auto colw = [&](int j) { return cols.data() + static_cast<std::size_t>(j) * W; };
  auto roww = [&](int i) { return rows.data() + static_cast<std::size_t>(i) * W; };
  // Init mirrors the symbolic engine: column words lane-owned, row words
  // shared across columns (atomic ORs).
  team.parallel_for(bp.nnz(), nb, [&](int jb, int je, int) {
    for (int j = jb; j < je; ++j) {
      for (const int* it = bp.col_begin(j); it != bp.col_end(j); ++it) {
        colw(j)[*it >> 6] |= 1ull << (*it & 63);
        rt::atomic_or_u64(roww(*it) + (j >> 6), 1ull << (j & 63));
      }
    }
  });
  // Commutative per-lane tallies of added blocks, summed at the end.
  std::vector<long> lane_added(team.lanes(), 0);
  std::vector<int> ucols;
  for (int k = 0; k < nb; ++k) {
    const int w0 = k >> 6;
    const std::uint64_t gt_mask =
        (k & 63) == 63 ? 0ull : (~0ull << ((k & 63) + 1));
    // U entries of row k, extracted up front so the step can fan out over
    // them.  Step k writes only rows/columns > k, so row k and column k are
    // stable for the whole step.
    ucols.clear();
    const std::uint64_t* rk = roww(k);
    for (int w = w0; w < W; ++w) {
      std::uint64_t word = rk[w];
      if (w == w0) word &= gt_mask;
      while (word) {
        ucols.push_back((w << 6) + std::countr_zero(word));
        word &= word - 1;
      }
    }
    if (ucols.empty()) continue;
    const std::uint64_t* ck = colw(k);
    const long step_work =
        static_cast<long>(ucols.size()) * (W - w0);
    team.parallel_for(step_work, static_cast<int>(ucols.size()),
                      [&](int ub, int ue, int lane) {
      long my_added = 0;
      for (int u = ub; u < ue; ++u) {
        const int j = ucols[u];
        std::uint64_t* cj = colw(j);  // owned: j appears once in ucols
        for (int v = w0; v < W; ++v) {
          std::uint64_t lpart = ck[v];
          if (v == w0) lpart &= gt_mask;
          std::uint64_t diff = lpart & ~cj[v];
          if (diff) {
            cj[v] |= diff;
            my_added += std::popcount(diff);
            while (diff) {
              int i = (v << 6) + std::countr_zero(diff);
              diff &= diff - 1;
              rt::atomic_or_u64(roww(i) + (j >> 6), 1ull << (j & 63));
            }
          }
        }
      }
      lane_added[lane] += my_added;
    });
  }
  if (added) {
    long total = 0;
    for (long a : lane_added) total += a;
    *added = total;
  }
  // Extraction: parallel per-column counts, sequential prefix, parallel fill.
  Pattern out(nb, nb);
  std::vector<int> counts(nb);
  team.parallel_for(static_cast<long>(nb) * W, nb, [&](int jb, int je, int) {
    for (int j = jb; j < je; ++j) {
      const std::uint64_t* cj = colw(j);
      int c = 0;
      for (int w = 0; w < W; ++w) c += std::popcount(cj[w]);
      counts[j] = c;
    }
  });
  long total = 0;
  for (int j = 0; j < nb; ++j) {
    total += counts[j];
    out.ptr[j + 1] = static_cast<int>(total);
  }
  out.idx.resize(total);
  team.parallel_for(total, nb, [&](int jb, int je, int) {
    for (int j = jb; j < je; ++j) {
      int* dst = out.idx.data() + out.ptr[j];
      const std::uint64_t* cj = colw(j);
      for (int w = 0; w < W; ++w) {
        std::uint64_t word = cj[w];
        while (word) {
          *dst++ = (w << 6) + std::countr_zero(word);
          word &= word - 1;
        }
      }
    }
  });
  return out;
}

BlockStructure build_block_structure(const Pattern& abar,
                                     const SupernodePartition& part,
                                     bool apply_closure) {
  BlockStructure bs;
  bs.part = part;
  Pattern raw = block_pattern(abar, part);
  if (apply_closure) {
    bs.bpattern = pairwise_closure(raw, &bs.extra_blocks_from_closure);
  } else {
    bs.extra_blocks_from_closure = 0;
    bs.bpattern = std::move(raw);
  }
  bs.bpattern_rows = bs.bpattern.transpose();
  bs.beforest = graph::lu_eforest(bs.bpattern);
  bs.lockfree_safe =
      graph::verify_candidate_disjointness(bs.bpattern, bs.beforest);
  return bs;
}

BlockStructure build_block_structure(const Pattern& abar,
                                     const SupernodePartition& part,
                                     bool apply_closure, rt::Team& team) {
  BlockStructure bs;
  bs.part = part;
  Pattern raw = block_pattern(abar, part, team);
  if (apply_closure) {
    bs.bpattern = pairwise_closure(raw, team, &bs.extra_blocks_from_closure);
  } else {
    bs.extra_blocks_from_closure = 0;
    bs.bpattern = std::move(raw);
  }
  bs.bpattern_rows = bs.bpattern.transpose();
  bs.beforest = graph::lu_eforest(bs.bpattern);
  bs.lockfree_safe =
      graph::verify_candidate_disjointness(bs.bpattern, bs.beforest);
  return bs;
}

}  // namespace plu::symbolic
