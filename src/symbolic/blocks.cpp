#include "symbolic/blocks.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>

#include "graph/eforest.h"
#include "symbolic/static_symbolic.h"

namespace plu::symbolic {

Pattern block_pattern(const Pattern& abar, const SupernodePartition& part) {
  const int nb = part.count();
  assert(part.num_cols() == abar.cols);
  Pattern bp(nb, nb);
  std::vector<int> mark(nb, -1);
  std::vector<int> buf;
  for (int s = 0; s < nb; ++s) {
    buf.clear();
    for (int j = part.first(s); j < part.end(s); ++j) {
      for (const int* it = abar.col_begin(j); it != abar.col_end(j); ++it) {
        int bi = part.supernode_of(*it);
        if (mark[bi] != s) {
          mark[bi] = s;
          buf.push_back(bi);
        }
      }
    }
    std::sort(buf.begin(), buf.end());
    bp.idx.insert(bp.idx.end(), buf.begin(), buf.end());
    bp.ptr[s + 1] = static_cast<int>(bp.idx.size());
  }
  return bp;
}

bool block_closure_holds(const Pattern& bpattern) {
  const int nb = bpattern.cols;
  Pattern rows = bpattern.transpose();
  for (int k = 0; k < nb; ++k) {
    // L blocks of column k and U blocks of row k.
    std::vector<int> lblocks;
    for (const int* it = bpattern.col_begin(k); it != bpattern.col_end(k); ++it) {
      if (*it > k) lblocks.push_back(*it);
    }
    if (lblocks.empty()) continue;
    for (const int* jt = rows.col_begin(k); jt != rows.col_end(k); ++jt) {
      int j = *jt;
      if (j <= k) continue;
      for (int i : lblocks) {
        if (!bpattern.contains(i, j)) return false;
      }
    }
  }
  return true;
}

std::vector<int> BlockStructure::l_blocks(int k) const {
  std::vector<int> out;
  for (const int* it = bpattern.col_begin(k); it != bpattern.col_end(k); ++it) {
    if (*it > k) out.push_back(*it);
  }
  return out;
}

std::vector<int> BlockStructure::u_blocks(int k) const {
  std::vector<int> out;
  for (const int* it = bpattern_rows.col_begin(k); it != bpattern_rows.col_end(k);
       ++it) {
    if (*it > k) out.push_back(*it);
  }
  return out;
}

Pattern pairwise_closure(const Pattern& bp, long* added) {
  assert(bp.rows == bp.cols);
  const int nb = bp.cols;
  const int W = (nb + 63) / 64;
  std::vector<std::uint64_t> cols(static_cast<std::size_t>(nb) * W, 0);
  std::vector<std::uint64_t> rows(static_cast<std::size_t>(nb) * W, 0);
  auto colw = [&](int j) { return cols.data() + static_cast<std::size_t>(j) * W; };
  auto roww = [&](int i) { return rows.data() + static_cast<std::size_t>(i) * W; };
  for (int j = 0; j < nb; ++j) {
    for (const int* it = bp.col_begin(j); it != bp.col_end(j); ++it) {
      colw(j)[*it >> 6] |= 1ull << (*it & 63);
      roww(*it)[j >> 6] |= 1ull << (j & 63);
    }
  }
  long new_blocks = 0;
  for (int k = 0; k < nb; ++k) {
    // Mask selecting indices strictly greater than k within word w0.
    const int w0 = k >> 6;
    const std::uint64_t gt_mask =
        (k & 63) == 63 ? 0ull : (~0ull << ((k & 63) + 1));
    const std::uint64_t* ck = colw(k);
    // Walk the U part of row k (columns j > k) and OR column k's L part in.
    const std::uint64_t* rk = roww(k);
    for (int w = w0; w < W; ++w) {
      std::uint64_t word = rk[w];
      if (w == w0) word &= gt_mask;
      while (word) {
        int j = (w << 6) + std::countr_zero(word);
        word &= word - 1;
        std::uint64_t* cj = colw(j);
        for (int v = w0; v < W; ++v) {
          std::uint64_t lpart = ck[v];
          if (v == w0) lpart &= gt_mask;
          std::uint64_t diff = lpart & ~cj[v];
          if (diff) {
            cj[v] |= diff;
            new_blocks += std::popcount(diff);
            while (diff) {
              int i = (v << 6) + std::countr_zero(diff);
              diff &= diff - 1;
              roww(i)[j >> 6] |= 1ull << (j & 63);
            }
          }
        }
      }
    }
  }
  if (added) *added = new_blocks;
  Pattern out(nb, nb);
  for (int j = 0; j < nb; ++j) {
    const std::uint64_t* cj = colw(j);
    for (int w = 0; w < W; ++w) {
      std::uint64_t word = cj[w];
      while (word) {
        out.idx.push_back((w << 6) + std::countr_zero(word));
        word &= word - 1;
      }
    }
    out.ptr[j + 1] = static_cast<int>(out.idx.size());
  }
  return out;
}

BlockStructure build_block_structure(const Pattern& abar,
                                     const SupernodePartition& part,
                                     bool apply_closure) {
  BlockStructure bs;
  bs.part = part;
  Pattern raw = block_pattern(abar, part);
  if (apply_closure) {
    bs.bpattern = pairwise_closure(raw, &bs.extra_blocks_from_closure);
  } else {
    bs.extra_blocks_from_closure = 0;
    bs.bpattern = std::move(raw);
  }
  bs.bpattern_rows = bs.bpattern.transpose();
  bs.beforest = graph::lu_eforest(bs.bpattern);
  bs.lockfree_safe =
      graph::verify_candidate_disjointness(bs.bpattern, bs.beforest);
  return bs;
}

}  // namespace plu::symbolic
