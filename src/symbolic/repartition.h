// Structure-aware block repartitioning (DESIGN.md section 16).
//
// The supernode partition cuts Abar into blocks sized for the SYMBOLIC
// machinery (shared row structure), not for the numeric kernels: a block
// column's L panel routinely interleaves dense cliques, sparse fringe
// blocks and all-zero closure padding, yet blas/level3.cpp used to make one
// whole-operation density guess per gemm.  The BlockPlan built here scans
// every block's fill pattern once, between symbolic analysis and numeric
// factorization, and records
//
//   * per-L-block structural density and a TileClass prediction (dense
//     tile / sparse remainder / closure-zero padding), splitting each
//     mixed-density panel into maximal runs of like-classed tiles;
//   * cached l_blocks lists and panel-local row offsets, so the numeric
//     drivers' hot loops stop re-deriving them from the Pattern;
//   * aggregate statistics for the report, the coarsening cost model
//     (taskgraph/costs.h) and the DAG-aware tiny-supernode merge
//     (taskgraph/coarsen.cpp).
//
// BITWISE CONTRACT: the plan carries PREDICTIONS and cached structure only.
// Partial-pivoting row swaps move numeric zeros across block boundaries at
// runtime, so no structural class here may force a numeric decision; the
// drivers re-measure density with the same predicates gemm's auto router
// uses (blas/level3.h) and use the plan to elide redundant scans and fuse
// adjacent same-decision tiles -- transformations proven to keep the
// factors bit-identical (DESIGN.md section 16).
#pragma once

#include <vector>

#include "matrix/csc.h"
#include "runtime/parallel_for.h"
#include "symbolic/blocks.h"

namespace plu::symbolic {

/// Structural density class of one L row block (a "tile").
enum class TileClass : unsigned char {
  kZero = 0,    // no Abar entry at all: block-closure padding
  kSparse = 1,  // fill below tunables::kDenseTileMinFill
  kDense = 2,   // fill >= tunables::kDenseTileMinFill: microkernel material
};

/// Per-block-column slice of the plan.
struct ColumnPlan {
  /// Row blocks i > k of block column k (== BlockStructure::l_blocks(k),
  /// cached so the numeric hot loops stop allocating).
  std::vector<int> l_list;
  /// Panel-local row offset of each L block (l_list.size() + 1 entries;
  /// offsets are relative to the first L row, i.e. diagonal excluded;
  /// back() == panel_rows).
  std::vector<int> l_offset;
  /// Total L rows below the diagonal block.
  int panel_rows = 0;
  /// Structural fill of each L block: |Abar entries| / (rows * cols).
  std::vector<double> l_density;
  /// Structural fill of the whole L panel.
  double panel_density = 0.0;
  /// TileClass per L block (stored as unsigned char, same order as l_list).
  std::vector<unsigned char> tile_class;
  /// Number of maximal runs of equal TileClass -- the tile count the panel
  /// splits into.
  int predicted_tiles = 0;
};

/// Whole-plan aggregates (surfaced as the report's "blocking:" line).
struct BlockPlanSummary {
  bool built = false;
  long panel_blocks = 0;     // total L blocks over all block columns
  long dense_blocks = 0;     // blocks predicted dense
  long zero_blocks = 0;      // closure-padding blocks (no Abar entry)
  long predicted_tiles = 0;  // sum of ColumnPlan::predicted_tiles
  long split_tiles = 0;      // extra tiles from splitting (runs - 1 summed)
  long mixed_columns = 0;    // columns holding more than one TileClass
  double dense_area_frac = 0.0;  // dense-block area / total L panel area
  /// Width cap below which a supernode counts as "tiny" for the DAG-aware
  /// merge (tunables::kTinyStageWidth, recorded so report and coarsener
  /// agree on the policy that produced the plan).
  int tiny_width_cap = 0;
};

/// The structure-aware blocking plan for one analysis.
struct BlockPlan {
  bool built = false;
  BlockPlanSummary summary;
  std::vector<ColumnPlan> columns;  // one per block column
};

/// Runtime routing counters the numeric drivers fill when a plan is active
/// (Factorization::blocking_stats(), the report's runtime "blocking:" line).
struct BlockingStats {
  bool ran = false;        // a plan drove the numeric phase
  long tile_runs = 0;      // coalesced same-engine tile runs dispatched
  long gemms_fused = 0;    // per-block gemms merged away by coalescing
  long routed_packed = 0;  // tile runs sent to the packed engine
  long routed_direct = 0;  // tile runs sent to the direct engine
  long scans_elided = 0;   // redundant O(k*n) density scans skipped
};

/// Builds the plan from the filled pattern and the block structure
/// (row partition == column partition, so Abar row indices map to row
/// blocks via part.supernode_of).
BlockPlan build_block_plan(const Pattern& abar, const BlockStructure& bs);

/// Team-parallel variant; bit-identical to the sequential build (columns
/// are write-disjoint; the summary reduction stays sequential).
BlockPlan build_block_plan(const Pattern& abar, const BlockStructure& bs,
                           rt::Team& team);

/// True when bs.bpattern_rows is exactly the transpose of bs.bpattern --
/// the consistency invariant the numeric drivers rely on, revalidated by
/// tests after plan construction (the transpose is built once on
/// construction and never refreshed).
bool transpose_consistent(const BlockStructure& bs);

}  // namespace plu::symbolic
