#include "symbolic/compact_storage.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "graph/eforest.h"

namespace plu::symbolic {

CompactStorage CompactStorage::build(const Pattern& abar) {
  if (abar.rows != abar.cols) {
    throw std::invalid_argument("CompactStorage: square pattern required");
  }
  const int n = abar.cols;
  CompactStorage cs;
  cs.eforest_ = graph::lu_eforest(abar);
  cs.row_first_.assign(n, -1);
  cs.col_leaves_.assign(n, {});

  Pattern rows = abar.transpose();
  for (int i = 0; i < n; ++i) {
    // First nonzero of row i at or left of the diagonal.
    if (rows.col_size(i) == 0 || rows.col_begin(i)[0] > i) {
      throw std::invalid_argument("CompactStorage: zero-free diagonal required");
    }
    cs.row_first_[i] = rows.col_begin(i)[0];
  }
  // U column j: minimal entries, i.e. entries i < j none of whose eforest
  // children is also an entry of column j.
  std::vector<char> in_col(n, 0);
  for (int j = 0; j < n; ++j) {
    const int* b = abar.col_begin(j);
    const int* e = std::lower_bound(b, abar.col_end(j), j);  // strict U part
    for (const int* it = b; it != e; ++it) in_col[*it] = 1;
    for (const int* it = b; it != e; ++it) {
      bool minimal = true;
      for (int c : cs.eforest_.children(*it)) {
        if (in_col[c]) {
          minimal = false;
          break;
        }
      }
      if (minimal) cs.col_leaves_[j].push_back(*it);
    }
    for (const int* it = b; it != e; ++it) in_col[*it] = 0;
  }
  return cs;
}

CompactStorage CompactStorage::build(const Pattern& abar, rt::Team& team) {
  if (abar.rows != abar.cols) {
    throw std::invalid_argument("CompactStorage: square pattern required");
  }
  const int n = abar.cols;
  CompactStorage cs;
  cs.eforest_ = graph::lu_eforest(abar);
  // Forest::children() builds its cache lazily and is not thread-safe;
  // warm it before fanning out.
  if (n > 0) cs.eforest_.children(0);
  cs.row_first_.assign(n, -1);
  cs.col_leaves_.assign(n, {});

  Pattern rows = abar.transpose();
  // Validate sequentially (parallel regions must not throw), then fill the
  // per-row slots concurrently.
  for (int i = 0; i < n; ++i) {
    if (rows.col_size(i) == 0 || rows.col_begin(i)[0] > i) {
      throw std::invalid_argument("CompactStorage: zero-free diagonal required");
    }
  }
  team.parallel_for(n, n, [&](int ib, int ie, int) {
    for (int i = ib; i < ie; ++i) cs.row_first_[i] = rows.col_begin(i)[0];
  });
  // U column leaves: each column owns its output list; in_col is lane-local.
  team.parallel_for(abar.nnz(), n, [&](int jb, int je, int) {
    std::vector<char> in_col(n, 0);
    for (int j = jb; j < je; ++j) {
      const int* b = abar.col_begin(j);
      const int* e = std::lower_bound(b, abar.col_end(j), j);
      for (const int* it = b; it != e; ++it) in_col[*it] = 1;
      for (const int* it = b; it != e; ++it) {
        bool minimal = true;
        for (int c : cs.eforest_.children(*it)) {
          if (in_col[c]) {
            minimal = false;
            break;
          }
        }
        if (minimal) cs.col_leaves_[j].push_back(*it);
      }
      for (const int* it = b; it != e; ++it) in_col[*it] = 0;
    }
  });
  return cs;
}

Pattern CompactStorage::reconstruct() const {
  const int n = size();
  // Build by rows for L, by columns for U, then merge.
  std::vector<std::vector<int>> cols(n);
  for (int j = 0; j < n; ++j) cols[j].push_back(j);  // diagonal
  // L rows: ancestor chain of row_first_[i], truncated below i.
  for (int i = 0; i < n; ++i) {
    int v = row_first_[i];
    while (v != graph::kNone && v < i) {
      cols[v].push_back(i);  // entry (i, v) in Lbar
      v = eforest_.parent(v);
    }
  }
  // U columns: climb from each leaf until reaching j or leaving the range.
  for (int j = 0; j < n; ++j) {
    for (int leaf : col_leaves_[j]) {
      int v = leaf;
      while (v != graph::kNone && v < j) {
        cols[j].push_back(v);  // entry (v, j) in Ubar
        v = eforest_.parent(v);
      }
    }
  }
  Pattern p(n, n);
  for (int j = 0; j < n; ++j) {
    std::sort(cols[j].begin(), cols[j].end());
    cols[j].erase(std::unique(cols[j].begin(), cols[j].end()), cols[j].end());
    p.idx.insert(p.idx.end(), cols[j].begin(), cols[j].end());
    p.ptr[j + 1] = static_cast<int>(p.idx.size());
  }
  return p;
}

std::size_t CompactStorage::storage_entries() const {
  std::size_t total = 2 * row_first_.size();  // parents + row firsts
  for (const auto& l : col_leaves_) total += l.size();
  return total;
}

}  // namespace plu::symbolic
