#include "symbolic/repartition.h"

#include <algorithm>
#include <cassert>

#include "blas/tunables.h"

namespace plu::symbolic {

namespace {

// Fills plan.columns[k] from Abar's entries in block column k.  Because the
// row partition is the column partition, part.supernode_of(row) IS the row
// block, so one sweep over the supernode's Abar columns buckets every entry.
void build_column_plan(const Pattern& abar, const BlockStructure& bs, int k,
                       ColumnPlan& cp) {
  const SupernodePartition& part = bs.part;
  cp.l_list = bs.l_blocks(k);
  const int nb = static_cast<int>(cp.l_list.size());
  cp.l_offset.assign(nb + 1, 0);
  for (int t = 0; t < nb; ++t) {
    cp.l_offset[t + 1] = cp.l_offset[t] + part.width(cp.l_list[t]);
  }
  cp.panel_rows = cp.l_offset[nb];
  const int wk = part.width(k);

  std::vector<long> cnt(nb, 0);
  for (int j = part.first(k); j < part.end(k); ++j) {
    for (const int* it = abar.col_begin(j); it != abar.col_end(j); ++it) {
      const int s = part.supernode_of(*it);
      if (s <= k) continue;  // diagonal or U part
      const auto pos = std::lower_bound(cp.l_list.begin(), cp.l_list.end(), s);
      assert(pos != cp.l_list.end() && *pos == s);
      ++cnt[pos - cp.l_list.begin()];
    }
  }

  cp.l_density.resize(nb);
  cp.tile_class.resize(nb);
  long total = 0;
  for (int t = 0; t < nb; ++t) {
    const double area =
        static_cast<double>(part.width(cp.l_list[t])) * wk;
    cp.l_density[t] = cnt[t] / area;
    total += cnt[t];
    cp.tile_class[t] = static_cast<unsigned char>(
        cnt[t] == 0 ? TileClass::kZero
        : cp.l_density[t] >= blas::tunables::kDenseTileMinFill
            ? TileClass::kDense
            : TileClass::kSparse);
  }
  cp.panel_density =
      cp.panel_rows > 0
          ? total / (static_cast<double>(cp.panel_rows) * wk)
          : 0.0;
  cp.predicted_tiles = 0;
  for (int t = 0; t < nb; ++t) {
    if (t == 0 || cp.tile_class[t] != cp.tile_class[t - 1]) {
      ++cp.predicted_tiles;
    }
  }
}

// Sequential summary reduction over the filled columns (identical whether
// the columns were built sequentially or by a team).
void reduce_summary(const BlockStructure& bs, BlockPlan& plan) {
  BlockPlanSummary& s = plan.summary;
  s = BlockPlanSummary{};
  s.built = true;
  s.tiny_width_cap = blas::tunables::kTinyStageWidth;
  double dense_area = 0.0;
  double total_area = 0.0;
  for (int k = 0; k < bs.num_blocks(); ++k) {
    const ColumnPlan& cp = plan.columns[k];
    const int nb = static_cast<int>(cp.l_list.size());
    s.panel_blocks += nb;
    s.predicted_tiles += cp.predicted_tiles;
    if (cp.predicted_tiles > 1) s.split_tiles += cp.predicted_tiles - 1;
    bool mixed = false;
    const int wk = bs.part.width(k);
    for (int t = 0; t < nb; ++t) {
      const double area =
          static_cast<double>(bs.part.width(cp.l_list[t])) * wk;
      total_area += area;
      const TileClass tc = static_cast<TileClass>(cp.tile_class[t]);
      if (tc == TileClass::kDense) {
        ++s.dense_blocks;
        dense_area += area;
      } else if (tc == TileClass::kZero) {
        ++s.zero_blocks;
      }
      mixed |= cp.tile_class[t] != cp.tile_class[0];
    }
    if (mixed) ++s.mixed_columns;
  }
  s.dense_area_frac = total_area > 0.0 ? dense_area / total_area : 0.0;
}

}  // namespace

BlockPlan build_block_plan(const Pattern& abar, const BlockStructure& bs) {
  BlockPlan plan;
  plan.columns.resize(bs.num_blocks());
  for (int k = 0; k < bs.num_blocks(); ++k) {
    build_column_plan(abar, bs, k, plan.columns[k]);
  }
  reduce_summary(bs, plan);
  plan.built = true;
  return plan;
}

BlockPlan build_block_plan(const Pattern& abar, const BlockStructure& bs,
                           rt::Team& team) {
  BlockPlan plan;
  const int n = bs.num_blocks();
  plan.columns.resize(n);
  // Columns are write-disjoint and each reads only its own Abar range, so
  // the fan-out is trivially bit-identical to the sequential build.
  team.parallel_for(abar.nnz(), n, [&](int kb, int ke, int) {
    for (int k = kb; k < ke; ++k) {
      build_column_plan(abar, bs, k, plan.columns[k]);
    }
  });
  reduce_summary(bs, plan);
  plan.built = true;
  return plan;
}

bool transpose_consistent(const BlockStructure& bs) {
  return bs.bpattern_rows == bs.bpattern.transpose();
}

}  // namespace plu::symbolic
