#include "symbolic/static_symbolic.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <thread>

#include "blas/scratch.h"
#include "graph/transversal.h"

namespace plu::symbolic {

namespace {

void check_input(const Pattern& a) {
  if (a.rows != a.cols) {
    throw std::invalid_argument("static symbolic factorization: matrix not square");
  }
  if (!graph::has_structural_diagonal(a)) {
    throw std::invalid_argument(
        "static symbolic factorization: zero-free diagonal required "
        "(apply a maximum transversal first)");
  }
}

SymbolicResult finalize(Pattern abar) {
  SymbolicResult res;
  res.nnz_lbar = 0;
  res.nnz_ubar = 0;
  for (int j = 0; j < abar.cols; ++j) {
    for (const int* it = abar.col_begin(j); it != abar.col_end(j); ++it) {
      if (*it >= j) ++res.nnz_lbar;
      if (*it <= j) ++res.nnz_ubar;
    }
  }
  res.abar = std::move(abar);
  return res;
}

// ---------------------------------------------------------------------------
// Bitset engine
// ---------------------------------------------------------------------------

class BitRows {
 public:
  BitRows(int n) : n_(n), words_((n + 63) / 64), bits_(static_cast<std::size_t>(n) * words_, 0) {}

  void set(int i, int j) { row(i)[j >> 6] |= (1ull << (j & 63)); }
  bool test(int i, int j) const { return (row(i)[j >> 6] >> (j & 63)) & 1u; }
  std::uint64_t* row(int i) { return bits_.data() + static_cast<std::size_t>(i) * words_; }
  const std::uint64_t* row(int i) const {
    return bits_.data() + static_cast<std::size_t>(i) * words_;
  }
  int words() const { return words_; }
  int n() const { return n_; }

 private:
  int n_;
  int words_;
  std::vector<std::uint64_t> bits_;
};

SymbolicResult run_bitset(const Pattern& a) {
  const int n = a.cols;
  BitRows rows(n);   // rows[i] = column structure of row i
  BitRows cols(n);   // cols[j] = row structure of column j (kept in sync)
  for (int j = 0; j < n; ++j) {
    for (const int* it = a.col_begin(j); it != a.col_end(j); ++it) {
      rows.set(*it, j);
      cols.set(j, *it);
    }
  }
  const int W = rows.words();
  std::vector<std::uint64_t> u(W);
  std::vector<int> candidates;
  for (int k = 0; k < n; ++k) {
    // R_k: rows i >= k with a (current) entry in column k.
    candidates.clear();
    const std::uint64_t* ck = cols.row(k);
    for (int w = k >> 6; w < W; ++w) {
      std::uint64_t word = ck[w];
      if (w == (k >> 6)) word &= ~0ull << (k & 63);
      while (word) {
        int b = std::countr_zero(word);
        word &= word - 1;
        candidates.push_back((w << 6) + b);
      }
    }
    if (candidates.size() <= 1) continue;  // no union needed
    // u = union of candidate row structures restricted to columns >= k.
    std::fill(u.begin(), u.end(), 0);
    const int w0 = k >> 6;
    for (int i : candidates) {
      const std::uint64_t* ri = rows.row(i);
      for (int w = w0; w < W; ++w) u[w] |= ri[w];
    }
    u[w0] &= ~0ull << (k & 63);
    // Assign u to every candidate row; record new entries in the column
    // bitsets so later steps see the fill.
    for (int i : candidates) {
      std::uint64_t* ri = rows.row(i);
      for (int w = w0; w < W; ++w) {
        std::uint64_t nw = (w == w0) ? ((ri[w] & ~(~0ull << (k & 63))) | u[w]) : u[w];
        std::uint64_t added = nw & ~ri[w];
        ri[w] = nw;
        while (added) {
          int b = std::countr_zero(added);
          added &= added - 1;
          cols.set((w << 6) + b, i);
        }
      }
    }
  }
  // Extract the CSC pattern from the column bitsets.
  Pattern abar(n, n);
  long total = 0;
  for (int j = 0; j < n; ++j) {
    const std::uint64_t* cj = cols.row(j);
    for (int w = 0; w < W; ++w) total += std::popcount(cj[w]);
  }
  abar.idx.reserve(total);
  for (int j = 0; j < n; ++j) {
    const std::uint64_t* cj = cols.row(j);
    for (int w = 0; w < W; ++w) {
      std::uint64_t word = cj[w];
      while (word) {
        int b = std::countr_zero(word);
        word &= word - 1;
        abar.idx.push_back((w << 6) + b);
      }
    }
    abar.ptr[j + 1] = static_cast<int>(abar.idx.size());
  }
  return finalize(std::move(abar));
}

// ---------------------------------------------------------------------------
// Parallel bitset engine
// ---------------------------------------------------------------------------
// Same algorithm as run_bitset, with the inner loops of each elimination
// step fanned out over the team.  Bit-identity with the sequential engine
// holds by induction over steps k: within a step every shared write is a
// commutative bitset OR (order across lanes cannot change the resulting
// words) and every other write is lane-owned, so the bitsets after step k's
// barrier equal the sequential ones -- hence step k+1 sees identical
// candidates and unions.

SymbolicResult run_bitset_parallel(const Pattern& a, rt::Team& team) {
  const int n = a.cols;
  BitRows rows(n);
  BitRows cols(n);
  // Init: lane owns cols.row(j) for its columns (plain writes); rows.row(i)
  // receives bits from many columns, so those ORs are atomic.
  team.parallel_for(a.nnz(), n, [&](int jb, int je, int) {
    for (int j = jb; j < je; ++j) {
      for (const int* it = a.col_begin(j); it != a.col_end(j); ++it) {
        rt::atomic_or_u64(rows.row(*it) + (j >> 6), 1ull << (j & 63));
        cols.row(j)[*it >> 6] |= 1ull << (*it & 63);
      }
    }
  });
  const int W = rows.words();
  std::vector<std::uint64_t> u(W);
  std::vector<int> candidates;
  for (int k = 0; k < n; ++k) {
    candidates.clear();
    const std::uint64_t* ck = cols.row(k);
    const int w0 = k >> 6;
    for (int w = w0; w < W; ++w) {
      std::uint64_t word = ck[w];
      if (w == w0) word &= ~0ull << (k & 63);
      while (word) {
        int b = std::countr_zero(word);
        word &= word - 1;
        candidates.push_back((w << 6) + b);
      }
    }
    if (candidates.size() <= 1) continue;
    const int nc = static_cast<int>(candidates.size());
    const long step_work = static_cast<long>(nc) * (W - w0);
    // u = union of candidate tails.  Each lane accumulates its chunk of
    // candidates into thread-local word scratch, then ORs the partial into
    // the shared u atomically -- commutative, so deterministic.
    std::fill(u.begin() + w0, u.end(), 0);
    team.parallel_for(step_work, nc, [&](int cb, int ce, int) {
      std::uint64_t* part = blas::worker_scratch().words(W);
      std::fill(part + w0, part + W, 0);
      for (int c = cb; c < ce; ++c) {
        const std::uint64_t* ri = rows.row(candidates[c]);
        for (int w = w0; w < W; ++w) part[w] |= ri[w];
      }
      for (int w = w0; w < W; ++w) rt::atomic_or_u64(&u[w], part[w]);
    });
    u[w0] &= ~0ull << (k & 63);
    // Assignment: each candidate row is owned by exactly one lane (plain
    // writes); the fill recorded in the column bitsets lands in words shared
    // across lanes, so those ORs are atomic.
    team.parallel_for(step_work, nc, [&](int cb, int ce, int) {
      for (int c = cb; c < ce; ++c) {
        const int i = candidates[c];
        std::uint64_t* ri = rows.row(i);
        for (int w = w0; w < W; ++w) {
          std::uint64_t nw =
              (w == w0) ? ((ri[w] & ~(~0ull << (k & 63))) | u[w]) : u[w];
          std::uint64_t added = nw & ~ri[w];
          ri[w] = nw;
          while (added) {
            int b = std::countr_zero(added);
            added &= added - 1;
            rt::atomic_or_u64(cols.row((w << 6) + b) + (i >> 6),
                              1ull << (i & 63));
          }
        }
      }
    });
  }
  // Extraction: parallel per-column popcounts, sequential prefix sum,
  // parallel fill of the pre-sized index array (each column owned).
  Pattern abar(n, n);
  std::vector<int> counts(n);
  team.parallel_for(static_cast<long>(n) * W, n, [&](int jb, int je, int) {
    for (int j = jb; j < je; ++j) {
      const std::uint64_t* cj = cols.row(j);
      int c = 0;
      for (int w = 0; w < W; ++w) c += std::popcount(cj[w]);
      counts[j] = c;
    }
  });
  long total = 0;
  for (int j = 0; j < n; ++j) {
    total += counts[j];
    abar.ptr[j + 1] = static_cast<int>(total);
  }
  abar.idx.resize(total);
  team.parallel_for(total, n, [&](int jb, int je, int) {
    for (int j = jb; j < je; ++j) {
      int* out = abar.idx.data() + abar.ptr[j];
      const std::uint64_t* cj = cols.row(j);
      for (int w = 0; w < W; ++w) {
        std::uint64_t word = cj[w];
        while (word) {
          int b = std::countr_zero(word);
          word &= word - 1;
          *out++ = (w << 6) + b;
        }
      }
    }
  });
  return finalize(std::move(abar));
}

// ---------------------------------------------------------------------------
// Row-merge engine
// ---------------------------------------------------------------------------

SymbolicResult run_rowmerge(const Pattern& a) {
  const int n = a.cols;
  // rows[i]: sorted column indices of row i.
  Pattern by_rows = a.transpose();
  std::vector<std::vector<int>> rows(n);
  for (int i = 0; i < n; ++i) {
    rows[i].assign(by_rows.col_begin(i), by_rows.col_end(i));
  }
  // col_rows[j]: rows known to have an entry in column j (append-only; rows
  // never lose entries in this scheme).
  std::vector<std::vector<int>> col_rows(n);
  for (int j = 0; j < n; ++j) {
    for (const int* it = a.col_begin(j); it != a.col_end(j); ++it) {
      col_rows[j].push_back(*it);
    }
  }
  std::vector<int> candidates;
  std::vector<int> u;
  std::vector<int> merged;
  for (int k = 0; k < n; ++k) {
    candidates.clear();
    for (int i : col_rows[k]) {
      if (i >= k) candidates.push_back(i);
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    if (candidates.size() <= 1) continue;
    // u = union of the candidate rows' structures restricted to >= k.
    u.clear();
    for (int i : candidates) {
      const std::vector<int>& r = rows[i];
      auto from = std::lower_bound(r.begin(), r.end(), k);
      merged.clear();
      std::set_union(u.begin(), u.end(), from, r.end(), std::back_inserter(merged));
      u.swap(merged);
    }
    for (int i : candidates) {
      std::vector<int>& r = rows[i];
      auto from = std::lower_bound(r.begin(), r.end(), k);
      // Record fill in the column lists before overwriting the tail.
      std::size_t old_tail = static_cast<std::size_t>(r.end() - from);
      if (old_tail != u.size()) {
        // Columns in u but not in the old tail gain row i.
        std::vector<int> added;
        std::set_difference(u.begin(), u.end(), from, r.end(),
                            std::back_inserter(added));
        for (int j : added) col_rows[j].push_back(i);
      }
      r.erase(from, r.end());
      r.insert(r.end(), u.begin(), u.end());
    }
  }
  // Assemble CSR then transpose to CSC.
  Pattern csr(n, n);
  long total = 0;
  for (int i = 0; i < n; ++i) total += static_cast<long>(rows[i].size());
  csr.idx.reserve(total);
  for (int i = 0; i < n; ++i) {
    csr.idx.insert(csr.idx.end(), rows[i].begin(), rows[i].end());
    csr.ptr[i + 1] = static_cast<int>(csr.idx.size());
  }
  return finalize(csr.transpose());
}

}  // namespace

SymbolicResult static_symbolic_factorization(const Pattern& a, Engine engine) {
  if (engine == Engine::kParallelBitset) {
    ParallelSymbolicOptions opts;
    int threads = opts.threads > 0
                      ? opts.threads
                      : static_cast<int>(std::thread::hardware_concurrency());
    rt::Team team(threads, opts.min_step_work);
    return static_symbolic_factorization(a, engine, team);
  }
  check_input(a);
  return engine == Engine::kBitset ? run_bitset(a) : run_rowmerge(a);
}

SymbolicResult static_symbolic_factorization(const Pattern& a, Engine engine,
                                             rt::Team& team) {
  if (engine != Engine::kParallelBitset) {
    return static_symbolic_factorization(a, engine);
  }
  check_input(a);
  // A single-lane team gains nothing from the atomic paths; the sequential
  // engine is the bit-identical fast path.
  if (team.lanes() == 1) return run_bitset(a);
  return run_bitset_parallel(a, team);
}

bool is_symbolic_fixed_point(const Pattern& abar, Engine engine) {
  SymbolicResult again = static_symbolic_factorization(abar, engine);
  return again.abar == abar;
}

bool postorder_commutes_with_symbolic(const Pattern& a, const Pattern& abar,
                                      const Permutation& perm, Engine engine) {
  Pattern a_perm = a.permuted(perm, perm);
  Pattern abar_perm = abar.permuted(perm, perm);
  SymbolicResult sym = static_symbolic_factorization(a_perm, engine);
  return sym.abar == abar_perm;
}

std::string to_string(Engine e) {
  switch (e) {
    case Engine::kBitset: return "bitset";
    case Engine::kRowMerge: return "rowmerge";
    case Engine::kParallelBitset: return "parallel-bitset";
  }
  return "unknown";
}

Pattern no_pivot_fill(const Pattern& a) {
  // No zero-free-diagonal requirement: under a fixed pivot order the
  // diagonal entry of step k may only appear as fill from earlier steps
  // (typical when evaluating the pivot sequence an actual factorization
  // chose).  The sweep below is well-defined either way.
  if (a.rows != a.cols) {
    throw std::invalid_argument("no_pivot_fill: matrix not square");
  }
  const int n = a.cols;
  BitRows rows(n);
  BitRows cols(n);
  for (int j = 0; j < n; ++j) {
    for (const int* it = a.col_begin(j); it != a.col_end(j); ++it) {
      rows.set(*it, j);
      cols.set(j, *it);
    }
  }
  const int W = rows.words();
  for (int k = 0; k < n; ++k) {
    // Rows below k with an entry in column k receive row k's tail.
    const std::uint64_t* rk = rows.row(k);
    const std::uint64_t* ck = cols.row(k);
    const int w0 = k >> 6;
    for (int w = w0; w < W; ++w) {
      std::uint64_t word = ck[w];
      if (w == w0) word &= (k & 63) == 63 ? 0ull : (~0ull << ((k & 63) + 1));
      while (word) {
        int i = (w << 6) + std::countr_zero(word);
        word &= word - 1;
        std::uint64_t* ri = rows.row(i);
        for (int v = w0; v < W; ++v) {
          std::uint64_t tail = rk[v];
          if (v == w0) tail &= ~0ull << (k & 63);
          std::uint64_t added = tail & ~ri[v];
          ri[v] |= tail;
          while (added) {
            int j = (v << 6) + std::countr_zero(added);
            added &= added - 1;
            cols.set(j, i);
          }
        }
      }
    }
  }
  Pattern out(n, n);
  for (int j = 0; j < n; ++j) {
    const std::uint64_t* cj = cols.row(j);
    for (int w = 0; w < W; ++w) {
      std::uint64_t word = cj[w];
      while (word) {
        out.idx.push_back((w << 6) + std::countr_zero(word));
        word &= word - 1;
      }
    }
    out.ptr[j + 1] = static_cast<int>(out.idx.size());
  }
  return out;
}

Pattern ata_cholesky_bound(const Pattern& a) {
  // Cholesky fill of the A^T A pattern = no-pivot fill of the symmetric
  // pattern (which subsumes the Cholesky lower factor and its transpose).
  Pattern ata = Pattern::ata(a);
  return no_pivot_fill(ata);
}

}  // namespace plu::symbolic
