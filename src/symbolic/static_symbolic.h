// Static symbolic factorization (George & Ng, ref. [6] of the paper).
//
// Computes the filled pattern Abar = Lbar + Ubar - I that contains the
// structures of the L and U factors of PA for EVERY row permutation P that
// partial pivoting can produce.  The scheme: at step k, the pivot-candidate
// rows R_k = { i >= k : abar_ik != 0 } all receive the union of their
// structures restricted to columns >= k -- whichever of them becomes the
// pivot row, the fill it causes is covered.
//
// The LU factorization is then computed on Abar instead of A (the S*/S+
// approach): some operations touch explicit zeros, but the structure, the
// task graph and the schedule are all known statically.
//
// Three engines:
//   * kBitset    - rows as 64-bit word bitsets; O(sum |R_k| * n/64) words.
//     The production engine for the problem sizes in the paper (n <= ~10^4).
//   * kRowMerge  - rows as sorted index vectors updated by set-union.
//     Independent implementation used to cross-validate the bitset engine
//     and as the second arm of the A3 ablation bench.
//   * kParallelBitset - the bitset engine with the inner work of each
//     elimination step fanned out over an rt::Team (GSoFa-style pivot-row
//     parallelism): the candidate-row union becomes per-lane partial ORs
//     into worker scratch (blas/scratch.h) followed by a combine, and the
//     union assignment is split across candidate rows with atomic ORs into
//     the shared column bitsets.  Every per-step operation is commutative
//     or write-disjoint, so the result is BIT-IDENTICAL to kBitset on every
//     input -- the determinism contract of the parallel analysis tier
//     (DESIGN.md section 11); tests/test_parallel_analysis.cpp gates it.
//     Falls back to the sequential engine for single-lane teams, and runs
//     small steps inline (rt::Team::min_work).
#pragma once

#include <string>

#include "matrix/csc.h"
#include "runtime/parallel_for.h"

namespace plu::symbolic {

enum class Engine { kBitset, kRowMerge, kParallelBitset };

/// Thread-count / gating knobs for Engine::kParallelBitset when the caller
/// does not provide its own team.
struct ParallelSymbolicOptions {
  int threads = 0;  // 0 = std::thread::hardware_concurrency()
  /// Per-step work gate in words (candidates * tail words); steps below it
  /// run inline on the calling thread.  Tests set 0 to force every step
  /// through the parallel paths.
  long min_step_work = rt::Team::kDefaultMinWork;
};

struct SymbolicResult {
  Pattern abar;   // filled pattern, diagonal included
  long nnz_lbar;  // entries of Lbar including the diagonal
  long nnz_ubar;  // entries of Ubar including the diagonal

  /// |Abar| / |A|, the fill ratio reported in Table 1.
  double fill_ratio(int nnz_a) const {
    return nnz_a > 0 ? static_cast<double>(abar.nnz()) / nnz_a : 0.0;
  }
};

/// Runs the static symbolic factorization.  The pattern must be square with
/// a zero-free (structural) diagonal; throws std::invalid_argument otherwise.
/// kParallelBitset spins up its own rt::Team sized from
/// ParallelSymbolicOptions defaults; prefer the team overload when calling
/// from a pipeline that already owns one.
SymbolicResult static_symbolic_factorization(const Pattern& a,
                                             Engine engine = Engine::kBitset);

/// Team-aware overload: kParallelBitset fans its per-step work out over
/// `team`; the sequential engines ignore it.
SymbolicResult static_symbolic_factorization(const Pattern& a, Engine engine,
                                             rt::Team& team);

/// True if `abar` is a fixed point of the scheme: re-running the static
/// symbolic factorization on it adds nothing.  NOTE: the scheme is
/// sequence-dependent, so a filled pattern is generally NOT a fixed point
/// (a row that left the candidate pool early keeps a shorter tail than its
/// one-time peers; a re-run unions them).  Theorem 3 is the *commutation*
/// property checked by postorder_commutes_with_symbolic(), not a fixed
/// point.
bool is_symbolic_fixed_point(const Pattern& abar, Engine engine = Engine::kBitset);

/// Theorem 3, operationally: static symbolic factorization commutes with a
/// symmetric eforest-postorder permutation, i.e.
///   symbolic(P^T A P) == P^T symbolic(A) P.
/// `a` is the pre-symbolic pattern (zero-free diagonal), `abar` its filled
/// pattern, `perm` the postorder relabeling.  This is what lets the
/// pipeline permute Abar directly instead of recomputing the symbolic step.
bool postorder_commutes_with_symbolic(const Pattern& a, const Pattern& abar,
                                      const Permutation& perm,
                                      Engine engine = Engine::kBitset);

std::string to_string(Engine e);

// ---------------------------------------------------------------------------
// Fill analysis: how much does the static scheme overestimate?
// ---------------------------------------------------------------------------
// The paper motivates the static approach against SuperLU's dynamic symbolic
// factorization; the cost is overestimation (operations on explicit zeros).
// These helpers quantify it.

/// Symbolic fill of an elimination with a FIXED pivot order (no pivoting):
/// at step k only row k spreads its tail to rows with an entry in column k.
/// This is the fill the factorization actually produces for the pivot
/// sequence that renders the matrix's diagonal (apply the known pivot
/// permutation to the rows first to evaluate a specific run).
Pattern no_pivot_fill(const Pattern& a);

/// Upper bound used by SuperLU's column-etree approach: the Cholesky factor
/// structure of A^T A (as L + L^T with diagonal), which the paper says
/// "substantially overestimates" the LU structures.
Pattern ata_cholesky_bound(const Pattern& a);

}  // namespace plu::symbolic
