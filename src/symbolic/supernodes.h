// L/U supernode partitioning and amalgamation (Sections 1 and 3).
//
// A supernode is a maximal range of consecutive columns of Abar whose Lbar
// structures coincide below the range's dense diagonal block (the S+ "L/U
// supernode partitioning": the column partition is afterwards applied to the
// rows as well, cutting the matrix into submatrix blocks).
//
// Because supernodes occurring in practice are small ("2 or 3 columns"),
// amalgamation merges a child supernode into its parent when the merged
// block stays small and introduces few explicit zeros -- the classic relaxed
// supernode device, steered here by the LU eforest.
#pragma once

#include <vector>

#include "graph/forest.h"
#include "matrix/csc.h"
#include "runtime/parallel_for.h"

namespace plu::symbolic {

/// Contiguous partition of columns 0..n-1 into supernodes.
class SupernodePartition {
 public:
  SupernodePartition() = default;

  /// first_col: ascending starts, first_col.front() == 0; a sentinel n is
  /// appended internally.
  SupernodePartition(std::vector<int> first_col, int n);

  int count() const { return static_cast<int>(first_col_.size()) - 1; }
  int num_cols() const { return first_col_.back(); }
  int first(int s) const { return first_col_[s]; }
  int end(int s) const { return first_col_[s + 1]; }
  int width(int s) const { return end(s) - first(s); }
  int supernode_of(int col) const { return sup_of_col_[col]; }
  const std::vector<int>& boundaries() const { return first_col_; }

  /// Singleton partition (every column its own supernode).
  static SupernodePartition trivial(int n);

  bool valid() const;

 private:
  std::vector<int> first_col_;  // count()+1 entries, last == n
  std::vector<int> sup_of_col_;
};

/// The per-boundary test behind find_supernodes: columns j and j+1 share a
/// supernode iff struct(Lbar_{*,j}) \ {j} == struct(Lbar_{*,j+1}).  Exposed
/// for the analyze->factor pipeline (core/pipeline.cpp), which evaluates the
/// boundaries of each eforest subtree's column range independently.
bool columns_share_supernode(const Pattern& abar, int j);

/// Finds the exact supernodes of a filled pattern: columns j and j+1 share a
/// supernode iff struct(Lbar_{*,j}) \ {j} == struct(Lbar_{*,j+1}).
SupernodePartition find_supernodes(const Pattern& abar);

/// Team-parallel variant: the per-column boundary tests are independent
/// (each writes its own flag), so this is trivially bit-identical to the
/// sequential version.
SupernodePartition find_supernodes(const Pattern& abar, rt::Team& team);

struct AmalgamationOptions {
  /// Maximum number of columns in a merged supernode.
  int max_width = 24;
  /// Maximum fraction of explicit zeros the merged L block may contain.
  double max_zero_fraction = 0.25;
  /// Only merge a supernode into the next one when the eforest parent of its
  /// last column is the first column of the next (child->parent merges).
  bool require_parent_child = true;
};

/// Greedily merges adjacent supernodes subject to the options.  `eforest` is
/// the LU eforest of `abar` (column-level).
SupernodePartition amalgamate(const Pattern& abar, const graph::Forest& eforest,
                              const SupernodePartition& part,
                              const AmalgamationOptions& opt = {});

/// Forest-parallel variant: splits the supernode sequence at every
/// supernode whose last column is an eforest root and amalgamates the
/// segments concurrently.  With require_parent_child the sequential greedy
/// can never merge across such a split (the merge test needs
/// parent(last col) == next col, and a root has no parent), and each
/// segment's scan reads only its own columns, so the result is bit-identical
/// to the sequential greedy.  Without require_parent_child the split is
/// unsound and this falls back to the sequential path.
SupernodePartition amalgamate(const Pattern& abar, const graph::Forest& eforest,
                              const SupernodePartition& part,
                              const AmalgamationOptions& opt, rt::Team& team);

/// The greedy merge scan over supernodes [s_begin, s_end), appending group
/// starts (column indices) to `starts`.  The scan state is local to the
/// range, so disjoint ranges reproduce the sequential greedy exactly as long
/// as no merge could cross their boundary (see the forest-parallel
/// amalgamate).  Exposed for the pipeline's per-subtree analysis tasks.
void amalgamate_range(const Pattern& abar, const graph::Forest& eforest,
                      const SupernodePartition& part,
                      const AmalgamationOptions& opt, int s_begin, int s_end,
                      std::vector<int>& starts);

/// Statistics used by Table 3 and the A1 ablation.
struct SupernodeStats {
  int count = 0;          // number of supernodes (SN / SNPO in Table 3)
  double avg_width = 0.0;
  int max_width = 0;
};

SupernodeStats supernode_stats(const SupernodePartition& part);

}  // namespace plu::symbolic
