// Eforest-based compact storage of Abar (Section 2 of the paper).
//
// The structure characterization turns the whole filled pattern into two
// small annotation sets on the eforest (the "extended LU eforest" of
// Figure 1):
//   * Lbar rows: row i's structure is the ancestor chain of its FIRST
//     nonzero column f_i, truncated below i -- so one integer per row
//     suffices ("italics at the left of each node");
//   * Ubar columns: column j's structure is ancestor-closed (Theorem 1) and
//     confined to T[j] plus earlier trees (Theorem 2) -- so the LEAVES
//     (minimal elements) of the column subtree suffice ("italics at the
//     right of each node").
//
// build() extracts the annotations; reconstruct() expands them back to the
// full pattern.  Round-tripping is asserted by tests, and storage_entries()
// vs abar.nnz() quantifies the compression.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/forest.h"
#include "matrix/csc.h"
#include "runtime/parallel_for.h"

namespace plu::symbolic {

class CompactStorage {
 public:
  /// Builds from a filled pattern (zero-free diagonal).  The eforest is
  /// computed internally.
  static CompactStorage build(const Pattern& abar);

  /// Team-parallel variant: the per-row first-nonzero scan and the
  /// per-column leaf extraction are independent (lane-local in_col buffers),
  /// so the result is bit-identical to the sequential build.
  static CompactStorage build(const Pattern& abar, rt::Team& team);

  /// Expands back to the full CSC pattern (diagonal included).
  Pattern reconstruct() const;

  const graph::Forest& eforest() const { return eforest_; }

  /// f_i: first nonzero column of Lbar row i.
  const std::vector<int>& row_first() const { return row_first_; }

  /// Leaves of the column subtree of Ubar column j (strictly above the
  /// diagonal; the diagonal is implicit).
  const std::vector<int>& col_leaves(int j) const { return col_leaves_[j]; }

  /// Integers stored by the compact scheme: n parents + n row-firsts +
  /// the leaf lists.
  std::size_t storage_entries() const;

  int size() const { return static_cast<int>(row_first_.size()); }

 private:
  graph::Forest eforest_;
  std::vector<int> row_first_;
  std::vector<std::vector<int>> col_leaves_;
};

}  // namespace plu::symbolic
