// Block structure of Abar under a supernode partition (Section 4's B_kj).
//
// The column partition is applied to the rows as well, cutting Abar into
// N x N submatrix blocks; block (i, j) is structurally nonzero when any
// entry of Abar falls in it.  The numeric kernels need the PAIRWISE closure
// property on this pattern --
//     (i,k) and (k,j) present with k < min(i,j)  =>  (i,j) present
// -- so that every gemm target block exists and deferred pivot application
// in Update(k, j) always finds its rows.  For the exact supernode partition
// the raw pattern is already closed (the block shadow of the entry-level
// George-Ng invariant; tests assert it); amalgamation can break it, so a
// right-looking closure pass adds the missing blocks, reported in
// `extra_blocks_from_closure`.  (A full block-level George-Ng pass would
// also make independent-subtree candidate sets provably disjoint, but it
// pads the structure far beyond what S+ stores -- measured at 4-10x the
// flops on minimum-degree-ordered matrices -- so instead `lockfree_safe`
// records whether disjointness actually holds; the threaded executor takes
// per-column locks when it does not.)
#pragma once

#include "graph/forest.h"
#include "matrix/csc.h"
#include "runtime/parallel_for.h"
#include "symbolic/supernodes.h"

namespace plu::symbolic {

struct BlockStructure {
  SupernodePartition part;
  /// N x N block pattern after block-level closure (diagonal blocks always
  /// present).  Column k of this pattern lists the row blocks of block
  /// column k, L and U parts together.
  Pattern bpattern;
  /// LU eforest of `bpattern` -- the T(B) of Section 4, driving the task
  /// dependence graph.
  graph::Forest beforest;
  /// Blocks added by the block-level closure pass.
  long extra_blocks_from_closure = 0;

  /// True when the block-level candidate sets of independent beforest nodes
  /// are disjoint (verify_candidate_disjointness on bpattern).  When false,
  /// unordered updates may touch overlapping blocks and the threaded
  /// executor must serialize per target column.
  bool lockfree_safe = false;

  int num_blocks() const { return part.count(); }

  /// Row blocks i > k of block column k (the L part, below the diagonal).
  std::vector<int> l_blocks(int k) const;
  /// Column blocks j > k of block row k (the U part, right of the diagonal).
  /// Requires bpattern_rows (precomputed transpose).
  std::vector<int> u_blocks(int k) const;

  /// Transposed block pattern, built once on construction.
  Pattern bpattern_rows;
};

/// Builds the block structure from the filled pattern and a partition.
/// `apply_closure` exists so tests can observe the raw pattern.
BlockStructure build_block_structure(const Pattern& abar,
                                     const SupernodePartition& part,
                                     bool apply_closure = true);

/// Team-parallel variant; bit-identical to the sequential build (the
/// parallel loops inside block_pattern / pairwise_closure are write-disjoint
/// or commutative; beforest and the disjointness check stay sequential).
BlockStructure build_block_structure(const Pattern& abar,
                                     const SupernodePartition& part,
                                     bool apply_closure, rt::Team& team);

/// Raw (pre-closure) block pattern of abar under the partition.
Pattern block_pattern(const Pattern& abar, const SupernodePartition& part);

/// Team-parallel variant: block columns are independent (per-lane mark
/// arrays, owned output slots), so trivially bit-identical.
Pattern block_pattern(const Pattern& abar, const SupernodePartition& part,
                      rt::Team& team);

/// Right-looking pairwise closure: one ascending pass adding (i,j) whenever
/// (i,k) and (k,j) are present with k < min(i,j).  Returns the closed
/// pattern; `added` (if non-null) receives the number of new blocks.
Pattern pairwise_closure(const Pattern& bpattern, long* added = nullptr);

/// Team-parallel variant: the ascending k sweep stays sequential; within a
/// step the per-U-entry column updates are fanned out (column bit-words are
/// lane-owned, row bit-words shared via commutative atomic ORs; row k and
/// column k are never written during step k), so the closed pattern is
/// bit-identical to the sequential pass.
Pattern pairwise_closure(const Pattern& bpattern, rt::Team& team,
                         long* added = nullptr);

/// True if the block pattern satisfies the closure property:
/// (i,k) and (k,j) present with k < i, k < j implies (i,j) present.
bool block_closure_holds(const Pattern& bpattern);

}  // namespace plu::symbolic
