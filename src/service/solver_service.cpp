#include "service/solver_service.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/driver.h"
#include "core/pipeline.h"

namespace plu::service {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

const char* to_string(RequestState s) {
  switch (s) {
    case RequestState::kQueued:
      return "queued";
    case RequestState::kRunning:
      return "running";
    case RequestState::kDone:
      return "done";
    case RequestState::kFailed:
      return "failed";
    case RequestState::kCancelled:
      return "cancelled";
    case RequestState::kExpired:
      return "expired";
  }
  return "unknown";
}

Request::Request(long id, CscMatrix a, std::vector<double> b,
                 RequestOptions opt)
    : id_(id), a_(std::move(a)), b_(std::move(b)), opt_(std::move(opt)) {}

RequestState Request::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

RequestResult Request::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return is_terminal(state_); });
  return result_;
}

void Request::cancel() {
  client_cancelled_.store(true, std::memory_order_relaxed);
  token_.cancel();
}

SolverService::SolverService(const ServiceOptions& opt)
    : opt_(opt),
      cache_(opt.cache_capacity),
      runtime_(std::max(1, opt.threads)) {
  const int orchestrators = std::max(1, opt.max_concurrent);
  orchestrators_.reserve(size_t(orchestrators));
  for (int i = 0; i < orchestrators; ++i) {
    orchestrators_.emplace_back([this] { orchestrate(); });
  }
  watchdog_ = std::thread([this] { watchdog(); });
}

SolverService::~SolverService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : orchestrators_) t.join();  // drains the queue
  {
    std::lock_guard<std::mutex> lock(dl_mu_);
    dl_stop_ = true;
  }
  dl_cv_.notify_all();
  watchdog_.join();
  // runtime_ destruction waits for any straggler graphs, then stops workers.
}

std::shared_ptr<Request> SolverService::submit(CscMatrix a,
                                               std::vector<double> b,
                                               RequestOptions opt) {
  if (a.rows() <= 0 || a.rows() != a.cols()) {
    throw std::invalid_argument("SolverService::submit: matrix must be "
                                "square and non-empty");
  }
  if (!a.valid()) {
    throw std::invalid_argument("SolverService::submit: malformed matrix");
  }
  if (opt.want_solve && long(b.size()) != long(a.rows())) {
    throw std::invalid_argument("SolverService::submit: rhs size mismatch");
  }

  std::shared_ptr<Request> req;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      throw std::runtime_error("SolverService::submit: service is stopping");
    }
    req.reset(new Request(next_id_, std::move(a), std::move(b), opt));
    req->submitted_ = Clock::now();
    queue_.emplace(std::make_pair(-opt.priority, next_id_), req);
    ++next_id_;
    ++stats_.submitted;
  }
  queue_cv_.notify_one();

  if (opt.deadline > Clock::duration::zero()) {
    {
      std::lock_guard<std::mutex> lock(dl_mu_);
      deadlines_.emplace(req->submitted_ + opt.deadline, req);
    }
    dl_cv_.notify_one();
  }
  return req;
}

ServiceStats SolverService::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = stats_;
  }
  s.cache = cache_.stats();
  return s;
}

void SolverService::orchestrate() {
  for (;;) {
    std::shared_ptr<Request> req;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to drain
      req = queue_.begin()->second;
      queue_.erase(queue_.begin());
    }
    process(req);
  }
}

void SolverService::watchdog() {
  std::unique_lock<std::mutex> lock(dl_mu_);
  for (;;) {
    if (dl_stop_) return;
    if (deadlines_.empty()) {
      dl_cv_.wait(lock);
      continue;
    }
    const Clock::time_point next = deadlines_.top().first;
    if (Clock::now() < next) {
      dl_cv_.wait_until(lock, next);
      continue;
    }
    DeadlineItem item = deadlines_.top();
    deadlines_.pop();
    lock.unlock();
    if (std::shared_ptr<Request> req = item.second.lock()) {
      if (!req->done()) {
        // Order matters: mark expiry BEFORE tripping the token, so a
        // processor that observes the cancellation always sees why.
        req->expired_.store(true, std::memory_order_release);
        req->token_.cancel();
      }
    }
    lock.lock();
  }
}

void SolverService::finalize(const std::shared_ptr<Request>& req,
                             RequestState state, RequestResult result) {
  result.state = state;
  // Counters first: a waiter released by the notify below must see the
  // terminal state already reflected in stats().
  {
    std::lock_guard<std::mutex> lock(mu_);
    switch (state) {
      case RequestState::kDone:
        ++stats_.completed;
        break;
      case RequestState::kFailed:
        ++stats_.failed;
        break;
      case RequestState::kCancelled:
        ++stats_.cancelled;
        break;
      case RequestState::kExpired:
        ++stats_.expired;
        break;
      default:
        break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(req->mu_);
    req->state_ = state;
    req->result_ = std::move(result);
  }
  req->cv_.notify_all();
}

void SolverService::process(const std::shared_ptr<Request>& req) {
  const Clock::time_point pickup = Clock::now();
  RequestResult r;
  r.queue_seconds = seconds_between(req->submitted_, pickup);
  {
    std::lock_guard<std::mutex> lock(req->mu_);
    req->state_ = RequestState::kRunning;
  }

  // A deadline that elapsed while the request sat in the queue terminates it
  // here even if the watchdog has not fired yet -- expiry is deterministic,
  // not a race against the watchdog's wakeup.
  if (!req->token_.cancelled() &&
      req->opt_.deadline > Clock::duration::zero() &&
      pickup >= req->submitted_ + req->opt_.deadline) {
    req->expired_.store(true, std::memory_order_release);
    req->token_.cancel();
  }
  if (req->token_.cancelled()) {
    r.factor_status = FactorStatus::kCancelled;
    const bool expired = req->expired_.load(std::memory_order_acquire);
    finalize(req, expired ? RequestState::kExpired : RequestState::kCancelled,
             std::move(r));
    return;
  }

  Options aopt = opt_.analyze;
  if (req->opt_.layout) aopt.layout = *req->opt_.layout;
  if (req->opt_.ordering) aopt.ordering = *req->opt_.ordering;

  NumericOptions nopt = opt_.numeric;
  nopt.mode = ExecutionMode::kThreaded;
  nopt.shared_runtime = &runtime_;
  nopt.request_priority = req->opt_.priority;
  nopt.cancel = &req->token_;

  std::shared_ptr<const Analysis> an;
  AnalysisCache::Reservation reservation;
  const bool pipelined = pipeline_supported(aopt, nopt);
  Clock::time_point t0 = Clock::now();
  try {
    if (!opt_.enable_cache && !pipelined) {
      an = std::make_shared<const Analysis>(analyze(req->a_, aopt));
    } else if (!pipelined) {
      an = cache_.get_or_analyze(req->a_, aopt, &r.cache_hit);
    } else if (opt_.enable_cache) {
      // Pipelined miss path: reserve the slot and let the pipeline build
      // the analysis WHILE factorizing -- the analyze->factor barrier the
      // cold path used to pay is gone.  A hit still short-circuits to the
      // phased constructor below (nothing left to overlap).
      an = cache_.lookup_or_reserve(req->a_, aopt, reservation, &r.cache_hit);
    }
  } catch (const std::exception& e) {
    r.error = std::string("analysis failed: ") + e.what();
    finalize(req, RequestState::kFailed, std::move(r));
    return;
  }
  r.analyze_seconds = seconds_between(t0, Clock::now());

  if (pipelined && an == nullptr) {
    // Cold pattern (or cache disabled/bypassed): one phase-spanning graph
    // for analysis + factorization + forward solve.
    try {
      t0 = Clock::now();
      PipelineDriver::Result pres = PipelineDriver::run(
          req->a_, aopt, nopt, req->opt_.want_solve ? &req->b_ : nullptr);
      std::shared_ptr<const Analysis> built = std::move(pres.analysis);
      if (reservation.valid()) reservation.fulfill(built);
      const PipelineStats& ps = pres.factorization->pipeline_stats();
      r.analyze_seconds += ps.analyze_seconds;  // wall span; phases overlap
      r.factor_seconds = ps.factor_seconds;
      r.solve_seconds = ps.solve_seconds;
      r.factor_status = pres.factorization->status();
      if (r.factor_status == FactorStatus::kCancelled) {
        const bool expired = req->expired_.load(std::memory_order_acquire);
        finalize(req,
                 expired ? RequestState::kExpired : RequestState::kCancelled,
                 std::move(r));
        return;
      }
      if (!factor_usable(r.factor_status)) {
        r.error = std::string("factorization breakdown: ") +
                  plu::to_string(r.factor_status);
        finalize(req, RequestState::kFailed, std::move(r));
        return;
      }
      if (req->opt_.want_solve) {
        if (pres.solve_done) {
          r.x = std::move(pres.x);
        } else {
          t0 = Clock::now();
          r.x = pres.factorization->solve(req->b_);
          r.solve_seconds += seconds_between(t0, Clock::now());
        }
      }
      finalize(req, RequestState::kDone, std::move(r));
    } catch (const std::exception& e) {
      if (reservation.valid()) {
        reservation.abandon(std::current_exception());
      }
      r.error = e.what();
      finalize(req, RequestState::kFailed, std::move(r));
    }
    return;
  }

  try {
    t0 = Clock::now();
    Factorization f(*an, req->a_, nopt);
    r.factor_seconds = seconds_between(t0, Clock::now());
    r.factor_status = f.status();
    if (f.status() == FactorStatus::kCancelled) {
      const bool expired = req->expired_.load(std::memory_order_acquire);
      finalize(req,
               expired ? RequestState::kExpired : RequestState::kCancelled,
               std::move(r));
      return;
    }
    if (!factor_usable(f.status())) {
      r.error = std::string("factorization breakdown: ") +
                plu::to_string(f.status());
      finalize(req, RequestState::kFailed, std::move(r));
      return;
    }
    if (req->opt_.want_solve) {
      t0 = Clock::now();
      r.x = f.solve(req->b_);
      r.solve_seconds = seconds_between(t0, Clock::now());
    }
    finalize(req, RequestState::kDone, std::move(r));
  } catch (const std::exception& e) {
    r.error = e.what();
    finalize(req, RequestState::kFailed, std::move(r));
  }
}

}  // namespace plu::service
