// Pattern-keyed LRU cache of symbolic analyses for the solver service.
//
// The symbolic pipeline is by far the most expensive value-independent step
// (ordering + static symbolic factorization + eforest + blocks + graph), and
// service traffic is dominated by REPEATED patterns with fresh values --
// time steps, Newton iterations, parameter sweeps.  The cache keys an
// Analysis by (rows, cols, nnz, structure fingerprint, layout) and reuses it
// across requests, so only the first request of a pattern pays for analysis.
//
// Keying and collision policy (same contract as SparseLU's reuse guard):
// the FNV-1a fingerprint (matrix/csc.h) is the cheap first tier -- different
// fingerprints PROVE different structures -- but equal fingerprints are only
// probable matches, so every hit is confirmed by a full (col_ptr, row_ind)
// compare against the structure the entry was built from.  A confirmed
// mismatch (a genuine 64-bit collision, or an adversarial key) is counted in
// CacheStats::collisions and the entry is REPLACED as a miss: correctness
// never rests on the hash.
//
// Concurrency: get_or_analyze is fully thread-safe.  A pattern being
// analyzed is published as a pending entry immediately (under the lock), so
// concurrent requests for the same pattern wait on one shared_future instead
// of analyzing in parallel; the analysis itself runs OUTSIDE the lock, so a
// slow analyze never blocks hits on other patterns.  If the analysis throws
// (e.g. structurally singular input), the exception is delivered to every
// waiter and the pending entry is removed -- a later request retries.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/analysis.h"

namespace plu::service {

struct CacheStats {
  long hits = 0;          // confirmed structural matches served from cache
  long misses = 0;        // entries built (includes collision replacements)
  long evictions = 0;     // entries dropped by the LRU capacity bound
  long collisions = 0;    // fingerprint matched but the structure did not
  long analyze_runs = 0;  // analyze() executions (bypasses included)
  long entries = 0;       // current resident entries
};

class AnalysisCache {
 public:
  /// Fingerprint function, injectable so tests can force collisions; the
  /// default is plu::structure_fingerprint.
  using Fingerprint = std::function<std::uint64_t(
      int rows, int cols, const std::vector<int>& ptr,
      const std::vector<int>& idx)>;

  explicit AnalysisCache(int capacity = 32, Fingerprint fingerprint = {});

  /// Returns the analysis for `a` under `opt`, from cache when a confirmed
  /// entry exists, analyzing (and inserting) otherwise.  Blocks when the
  /// pattern is currently being analyzed by another thread.  `hit`, when
  /// non-null, reports whether the call was served from cache.  Requests
  /// with opt.scale_and_permute bypass the cache entirely: that
  /// preprocessing depends on numeric VALUES, which the pattern key cannot
  /// see.  Rethrows whatever analyze() throws.
  std::shared_ptr<const Analysis> get_or_analyze(const CscMatrix& a,
                                                 const Options& opt,
                                                 bool* hit = nullptr);

  class Reservation;

  /// Pipeline integration (core/pipeline.h): the pipelined driver produces
  /// its OWN analysis as a side effect of factorizing, so the caller -- not
  /// the cache -- runs the symbolic work.  On a confirmed hit this returns
  /// the cached analysis (`res` stays invalid).  On a miss it publishes a
  /// pending entry keyed like get_or_analyze and hands back a Reservation
  /// the caller MUST settle: fulfill() with the pipeline's analysis, or
  /// abandon() on failure (waiters get the exception, the entry is
  /// removed).  Concurrent requests for the same pattern block on the
  /// pending entry exactly as with get_or_analyze.  scale_and_permute
  /// bypasses the cache (returns nullptr, `res` invalid -- run uncached).
  std::shared_ptr<const Analysis> lookup_or_reserve(const CscMatrix& a,
                                                    const Options& opt,
                                                    Reservation& res,
                                                    bool* hit = nullptr);

  CacheStats stats() const;
  void clear();
  int capacity() const { return capacity_; }

 private:
  struct Key {
    int rows = 0;
    int cols = 0;
    int nnz = 0;
    std::uint64_t fingerprint = 0;
    int layout = 0;
    int ordering = 0;  // requests overriding the ordering must not collide
    friend bool operator==(const Key& a, const Key& b) {
      return a.rows == b.rows && a.cols == b.cols && a.nnz == b.nnz &&
             a.fingerprint == b.fingerprint && a.layout == b.layout &&
             a.ordering == b.ordering;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t h = k.fingerprint;
      h ^= (std::uint64_t(std::uint32_t(k.rows)) << 32) ^
           std::uint64_t(std::uint32_t(k.cols));
      h = h * 0x9e3779b97f4a7c15ull + std::uint64_t(k.nnz) * 31 + k.layout;
      h = h * 0x9e3779b97f4a7c15ull + std::uint64_t(std::uint32_t(k.ordering));
      return std::size_t(h);
    }
  };
  using Future = std::shared_future<std::shared_ptr<const Analysis>>;
  struct Entry {
    // The exact structure the entry was built from, for collision
    // confirmation (valid from insertion, so pending entries confirm too).
    std::vector<int> ptr;
    std::vector<int> idx;
    Future future;
    std::list<Key>::iterator lru_pos;
    long generation = 0;  // distinguishes this entry from a replacement
  };

  /// Removes `key`'s entry if present (LRU node included); lock held.
  void erase_locked(const Key& key);

 public:
  /// A pending cache slot from lookup_or_reserve.  Move-only; exactly one
  /// of fulfill() / abandon() must be called on a valid reservation (the
  /// destructor abandons as a safety net so waiters are never stranded).
  class Reservation {
   public:
    Reservation() = default;
    Reservation(Reservation&&) = default;
    Reservation& operator=(Reservation&&) = default;
    ~Reservation();

    bool valid() const { return cache_ != nullptr; }
    /// Publishes the analysis to the cache entry and every waiter.
    void fulfill(std::shared_ptr<const Analysis> an);
    /// Removes the entry (unless a collision replacement raced in) and
    /// delivers the exception to waiters; a later request re-analyzes.
    void abandon(std::exception_ptr err);

   private:
    friend class AnalysisCache;
    AnalysisCache* cache_ = nullptr;
    Key key_{};
    long generation_ = -1;
    std::promise<std::shared_ptr<const Analysis>> promise_;
  };

 private:
  const int capacity_;
  Fingerprint fingerprint_;
  mutable std::mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> map_;
  std::list<Key> lru_;  // front = most recently used
  long next_generation_ = 0;
  CacheStats stats_;
};

}  // namespace plu::service
