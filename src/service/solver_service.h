// Multi-tenant solver service: concurrent batched factorizations over one
// shared worker pool, with a pattern-keyed analysis cache.
//
//   plu::service::SolverService svc({.threads = 8});
//   auto req = svc.submit(A, b, {.priority = 1.0,
//                                .deadline = std::chrono::milliseconds(50)});
//   plu::service::RequestResult r = req->wait();
//   if (r.state == plu::service::RequestState::kDone) use(r.x);
//
// Architecture (DESIGN.md section 12):
//
//   submit() --> priority/FIFO admission queue --> orchestrator threads
//     each orchestrator: analysis cache (service/analysis_cache.h)
//                        -> Factorization on the SHARED runtime
//                           (runtime/shared_runtime.h; task graphs of
//                           different requests interleave on one pool)
//                        -> triangular solve -> RequestResult
//
// Scheduling: admission is by (priority desc, submit order) among queued
// requests, with at most ServiceOptions::max_concurrent factorizations in
// flight; once running, a request's DAG tasks compete inside the shared
// pool, where its priority is folded into the critical-path priorities
// (normalized bottom level + priority boost), so a high-priority small
// request is not starved by a large one that got there first.
//
// Deadlines and cancellation: each request carries an rt::CancelToken.  A
// deadline arms the service watchdog, which trips the token at expiry;
// Request::cancel() trips it directly.  The numeric tier polls the token at
// task granularity and drains cooperatively (FactorStatus::kCancelled), so
// an expired or cancelled request releases its workers within one task body
// -- the pool is never poisoned, subsequent requests run normally.  Expiry
// maps to RequestState::kExpired, client cancellation to kCancelled.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "core/sparse_lu.h"
#include "runtime/shared_runtime.h"
#include "service/analysis_cache.h"

namespace plu::service {

enum class RequestState {
  kQueued,     // admitted, waiting for an orchestrator slot
  kRunning,    // analysis / factorization / solve in progress
  kDone,       // solved; RequestResult::x is valid
  kFailed,     // numeric breakdown or error (RequestResult::error says why)
  kCancelled,  // client called Request::cancel()
  kExpired,    // the deadline tripped the token first
};

/// "queued" / "running" / "done" / "failed" / "cancelled" / "expired".
const char* to_string(RequestState s);

inline bool is_terminal(RequestState s) {
  return s != RequestState::kQueued && s != RequestState::kRunning;
}

struct RequestOptions {
  /// Fair-share weight: breaks admission ties ahead of FIFO order and is
  /// folded into the shared pool's task priorities while running.
  double priority = 0.0;
  /// Numeric layout override for this request (service default otherwise).
  std::optional<Layout> layout;
  /// Fill-reducing ordering override for this request (service default
  /// otherwise).  Folded into the analysis-cache key, so requests with
  /// different orderings never share a cached analysis.
  std::optional<ordering::Method> ordering;
  /// Relative deadline from submit(); zero means none.
  std::chrono::steady_clock::duration deadline{};
  /// When false the request stops after factorization (pattern warm-up,
  /// factor-only pipelines); RequestResult::x stays empty.
  bool want_solve = true;
};

struct RequestResult {
  RequestState state = RequestState::kQueued;
  /// Status of the factorization run (core/status.h); kOk when the request
  /// never reached the numeric phase.
  FactorStatus factor_status = FactorStatus::kOk;
  std::vector<double> x;  // solution, when state == kDone and want_solve
  bool cache_hit = false;
  double queue_seconds = 0.0;    // submit -> orchestrator pickup
  double analyze_seconds = 0.0;  // cache lookup included (near 0 on a hit)
  double factor_seconds = 0.0;
  double solve_seconds = 0.0;
  std::string error;  // non-empty when state == kFailed
};

class SolverService;

/// Client-side handle; thread-safe.  Obtained from SolverService::submit and
/// shared with the service, so it outlives both sides.
class Request {
 public:
  long id() const { return id_; }
  RequestState state() const;
  bool done() const { return is_terminal(state()); }

  /// Blocks until the request reaches a terminal state.
  RequestResult wait();

  /// Client cancellation: trips the token; a queued request terminates at
  /// pickup, a running one drains at the next task boundary.  Idempotent;
  /// a no-op once the request is terminal.
  void cancel();

 private:
  friend class SolverService;
  Request(long id, CscMatrix a, std::vector<double> b, RequestOptions opt);

  const long id_;
  CscMatrix a_;
  std::vector<double> b_;
  RequestOptions opt_;
  std::chrono::steady_clock::time_point submitted_;

  rt::CancelToken token_;
  std::atomic<bool> client_cancelled_{false};
  std::atomic<bool> expired_{false};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  RequestState state_ = RequestState::kQueued;
  RequestResult result_;
};

struct ServiceOptions {
  /// Worker threads of the shared factorization pool.
  int threads = 4;
  /// Factorizations admitted concurrently (orchestrator threads).  Their
  /// DAGs interleave on the `threads` workers; more in-flight requests
  /// means better pool utilization but more memory in flight.
  int max_concurrent = 2;
  int cache_capacity = 32;
  /// Disable to force a fresh analysis per request (ablation baseline).
  bool enable_cache = true;
  /// Base symbolic options; RequestOptions::layout can override the layout.
  Options analyze;
  /// Base numeric options.  mode/shared_runtime/cancel/request_priority are
  /// owned by the service and overwritten per request.
  NumericOptions numeric;
};

struct ServiceStats {
  long submitted = 0;
  long completed = 0;  // reached kDone
  long failed = 0;
  long cancelled = 0;
  long expired = 0;
  CacheStats cache;
};

class SolverService {
 public:
  explicit SolverService(const ServiceOptions& opt = {});
  /// Drains every queued and in-flight request (they run to their terminal
  /// state; cancelled/expired ones drain fast), then stops the pool.
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Admits a solve request for A x = b.  Throws std::invalid_argument for
  /// a non-square/empty matrix or a right-hand side of the wrong size, and
  /// std::runtime_error after shutdown began.  The matrix and RHS are taken
  /// by value and owned by the request.
  std::shared_ptr<Request> submit(CscMatrix a, std::vector<double> b,
                                  RequestOptions opt = {});

  ServiceStats stats() const;
  const ServiceOptions& options() const { return opt_; }
  rt::SharedRuntime& runtime() { return runtime_; }
  AnalysisCache& cache() { return cache_; }

 private:
  void orchestrate();
  void watchdog();
  void process(const std::shared_ptr<Request>& req);
  void finalize(const std::shared_ptr<Request>& req, RequestState state,
                RequestResult result);

  const ServiceOptions opt_;
  AnalysisCache cache_;
  rt::SharedRuntime runtime_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  bool stopping_ = false;
  long next_id_ = 0;
  /// Admission queue ordered by (-priority, submit seq): highest priority
  /// first, FIFO within a priority level.
  std::map<std::pair<double, long>, std::shared_ptr<Request>> queue_;
  ServiceStats stats_;

  std::mutex dl_mu_;
  std::condition_variable dl_cv_;
  bool dl_stop_ = false;
  using DeadlineItem =
      std::pair<std::chrono::steady_clock::time_point, std::weak_ptr<Request>>;
  struct DeadlineLater {
    bool operator()(const DeadlineItem& a, const DeadlineItem& b) const {
      return a.first > b.first;
    }
  };
  std::priority_queue<DeadlineItem, std::vector<DeadlineItem>, DeadlineLater>
      deadlines_;

  std::vector<std::thread> orchestrators_;
  std::thread watchdog_;
};

}  // namespace plu::service
