#include "service/analysis_cache.h"

#include <stdexcept>
#include <utility>

namespace plu::service {

AnalysisCache::AnalysisCache(int capacity, Fingerprint fingerprint)
    : capacity_(capacity > 0 ? capacity : 1),
      fingerprint_(fingerprint ? std::move(fingerprint)
                               : Fingerprint(&structure_fingerprint)) {}

void AnalysisCache::erase_locked(const Key& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  lru_.erase(it->second.lru_pos);
  map_.erase(it);
  stats_.entries = long(map_.size());
}

std::shared_ptr<const Analysis> AnalysisCache::get_or_analyze(
    const CscMatrix& a, const Options& opt, bool* hit) {
  if (hit != nullptr) *hit = false;

  if (opt.scale_and_permute) {
    // Value-dependent preprocessing: the same pattern with different values
    // yields a different analysis, so the pattern key must not serve it.
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.misses;
      ++stats_.analyze_runs;
    }
    return std::make_shared<const Analysis>(analyze(a, opt));
  }

  Key key;
  key.rows = a.rows();
  key.cols = a.cols();
  key.nnz = a.nnz();
  key.fingerprint = fingerprint_(a.rows(), a.cols(), a.col_ptr(), a.row_ind());
  key.layout = int(opt.layout);
  key.ordering = int(opt.ordering);

  Future fut;
  std::promise<std::shared_ptr<const Analysis>> promise;
  bool compute = false;
  long my_generation = -1;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      Entry& e = it->second;
      if (e.ptr == a.col_ptr() && e.idx == a.row_ind()) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, e.lru_pos);  // touch
        fut = e.future;
        if (hit != nullptr) *hit = true;
      } else {
        // Fingerprint collision: one key, two structures.  Keep the newer
        // pattern (the old entry's waiters still hold their future copies).
        ++stats_.collisions;
        erase_locked(key);
      }
    }
    if (!fut.valid()) {
      ++stats_.misses;
      while (long(map_.size()) >= capacity_) {
        ++stats_.evictions;
        erase_locked(lru_.back());
      }
      Entry e;
      e.ptr = a.col_ptr();
      e.idx = a.row_ind();
      e.future = promise.get_future().share();
      e.generation = my_generation = next_generation_++;
      lru_.push_front(key);
      e.lru_pos = lru_.begin();
      fut = e.future;
      map_.emplace(key, std::move(e));
      stats_.entries = long(map_.size());
      compute = true;
    }
  }

  if (compute) {
    try {
      auto an = std::make_shared<const Analysis>(analyze(a, opt));
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.analyze_runs;
      }
      promise.set_value(std::move(an));
    } catch (...) {
      promise.set_exception(std::current_exception());
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.analyze_runs;
      // Drop the poisoned entry so a later request retries, but only if it
      // is still OURS -- a collision replacement may have raced in.
      auto it = map_.find(key);
      if (it != map_.end() && it->second.generation == my_generation) {
        erase_locked(key);
      }
    }
  }
  return fut.get();  // rethrows the analyzing thread's exception for waiters
}

std::shared_ptr<const Analysis> AnalysisCache::lookup_or_reserve(
    const CscMatrix& a, const Options& opt, Reservation& res, bool* hit) {
  if (hit != nullptr) *hit = false;

  if (opt.scale_and_permute) {
    // Value-dependent preprocessing cannot be served by the pattern key;
    // the caller runs uncached (counted like get_or_analyze's bypass).
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    ++stats_.analyze_runs;
    return nullptr;
  }

  Key key;
  key.rows = a.rows();
  key.cols = a.cols();
  key.nnz = a.nnz();
  key.fingerprint = fingerprint_(a.rows(), a.cols(), a.col_ptr(), a.row_ind());
  key.layout = int(opt.layout);
  key.ordering = int(opt.ordering);

  Future fut;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      Entry& e = it->second;
      if (e.ptr == a.col_ptr() && e.idx == a.row_ind()) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, e.lru_pos);
        fut = e.future;
        if (hit != nullptr) *hit = true;
      } else {
        ++stats_.collisions;
        erase_locked(key);
      }
    }
    if (!fut.valid()) {
      ++stats_.misses;
      while (long(map_.size()) >= capacity_) {
        ++stats_.evictions;
        erase_locked(lru_.back());
      }
      Entry e;
      e.ptr = a.col_ptr();
      e.idx = a.row_ind();
      e.future = res.promise_.get_future().share();
      e.generation = next_generation_++;
      lru_.push_front(key);
      e.lru_pos = lru_.begin();
      res.cache_ = this;
      res.key_ = key;
      res.generation_ = e.generation;
      map_.emplace(key, std::move(e));
      stats_.entries = long(map_.size());
      return nullptr;  // caller owns the pending entry via `res`
    }
  }
  return fut.get();  // pending or resident entry of another producer
}

AnalysisCache::Reservation::~Reservation() {
  if (cache_ != nullptr) {
    abandon(std::make_exception_ptr(
        std::runtime_error("analysis reservation abandoned")));
  }
}

void AnalysisCache::Reservation::fulfill(std::shared_ptr<const Analysis> an) {
  AnalysisCache* c = cache_;
  cache_ = nullptr;
  {
    std::lock_guard<std::mutex> lock(c->mu_);
    ++c->stats_.analyze_runs;
  }
  promise_.set_value(std::move(an));
}

void AnalysisCache::Reservation::abandon(std::exception_ptr err) {
  AnalysisCache* c = cache_;
  cache_ = nullptr;
  promise_.set_exception(std::move(err));
  std::lock_guard<std::mutex> lock(c->mu_);
  ++c->stats_.analyze_runs;
  auto it = c->map_.find(key_);
  if (it != c->map_.end() && it->second.generation == generation_) {
    c->erase_locked(key_);
  }
}

CacheStats AnalysisCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void AnalysisCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  stats_.entries = 0;
}

}  // namespace plu::service
