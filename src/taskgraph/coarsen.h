// DAG task coarsening: collapse whole low-weight eforest subtrees of the
// task graph into single fused tasks, so the per-task scheduling overhead
// (deque traffic, indegree cache lines, steal attempts) is paid once per
// subtree instead of once per kernel call.  This is what makes many small
// independent trees -- the shape production circuit / multi-physics
// matrices produce -- actually scale on a thread pool.
//
// Grouping rule.  Stage weights w(s) = flops of Factor(s)/FactorDiag(s)
// plus every task with source stage s; subtree weights are accumulated up
// the block eforest.  A stage r is a FUSED ROOT when its subtree weight is
// <= threshold while its parent's subtree weight exceeds it (or r is a
// tree root): the whole subtree T[r] becomes one group executing its
// member tasks in the sequential right-looking order.  Every other stage
// contributes its tasks as singleton groups, so the large tasks keep full
// graph parallelism.  The threshold is adaptive by default:
// min(total_flops / (threads * target_tasks_per_thread), 0.5 * critical
// path), i.e. fuse until roughly target_tasks_per_thread tasks per thread
// remain, but never fuse anything holding half the critical path.
//
// Why the coarse graph is acyclic.  Applicability is gated on the eforest
// graph kind AND a postordered block eforest, so every fused subtree is a
// CONTIGUOUS stage interval [r - |T[r]| + 1, r] and distinct groups cover
// disjoint intervals.  Every cross-stage edge of the eforest graph goes
// from a stage to one of its ANCESTOR stages (1-D rules 4/5 target
// parent(s); a 2-D UpdateBlock's consumer lives at stage min(i, j), an
// ancestor of the source stage), hence from a group to a group whose
// interval starts strictly later.  Group ids are assigned scanning stages
// ascending, so EVERY coarse edge goes from a lower to a higher group id
// -- the id order is a topological order by construction (the builder
// throws if any edge violates it).
//
// Determinism (the bitwise-identity contract).  Contraction only ADDS
// ordering, so any coarse schedule is a legal schedule of the original
// graph.  To pin the result to the phased sequential reference exactly,
// the builder also chains the writers of each shared target in ascending
// source-stage order -- per target block at block granularity (additive
// gemms into one block do not commute in floating point), per target
// column at column granularity only when the structure is not
// lockfree-safe (disjoint footprints need no order).  Writer stages are
// ascending, group ids monotone in stage, so the chains keep every edge
// forward.  With them, coarsened threaded execution reproduces
// ExecutionMode::kSequential bit for bit at any thread count.
#pragma once

#include <vector>

#include "symbolic/blocks.h"
#include "symbolic/repartition.h"
#include "taskgraph/build.h"

namespace plu::taskgraph {

struct CoarsenOptions {
  /// Worker count the adaptive threshold is derived for.
  int threads = 1;
  /// Explicit fusion threshold in flops; <= 0 selects the adaptive one.
  double threshold_flops = 0.0;
  /// Adaptive target: fuse until ~this many coarse tasks per thread remain.
  int target_tasks_per_thread = 48;
  /// Structure-aware blocking plan (symbolic/repartition.h), or nullptr.
  /// When present it refines the SCHEDULE only -- factor bits never move:
  ///   * task weights become density-effective flops (costs.h), so
  ///     closure-padded sparse subtrees stop being overweighted;
  ///   * when the task count shows the DAG itself is the bottleneck
  ///     (tasks > threads * target_tasks_per_thread *
  ///     tunables::kDagBoundTaskFactor), whole subtrees of TINY supernodes
  ///     (width <= the plan's tiny_width_cap) fuse beyond the flop
  ///     threshold, up to kTinyMergeFlopFactor times it -- merging past
  ///     the amalgamation cap at the TASK level, where it cannot change
  ///     getrf panel shapes.
  const symbolic::BlockPlan* plan = nullptr;
};

/// Summary of one coarsening application, surfaced through
/// NumericRun/Factorization into FactorizationReport.
struct CoarsenStats {
  bool ran = false;  // false: coarsening was off or not applicable
  int tasks_before = 0;
  long edges_before = 0;
  int tasks_after = 0;
  long edges_after = 0;
  /// Groups that actually fused two or more tasks / the tasks inside them.
  int fused_groups = 0;
  long fused_tasks = 0;
  double threshold_flops = 0.0;
  /// The DAG-bound tiny-merge extension fired (plan present + task count
  /// over the DAG-bound gate) / stages it fused beyond the flop threshold.
  bool dag_bound = false;
  int tiny_merged_stages = 0;
};

/// The contracted graph.  Group ids are a topological order; members of a
/// group are original task ids in sequential right-looking order.
struct CoarseGraph {
  /// False when coarsening is not applicable (non-eforest graph kind,
  /// unordered labels, or no flop annotations); all other fields are then
  /// empty and the caller should execute the original graph.
  bool coarsened = false;
  int num_groups = 0;
  std::vector<int> group_of;            // original task id -> group id
  std::vector<std::vector<int>> members;  // group id -> ordered task ids
  std::vector<std::vector<int>> succ;   // coarse successor lists
  std::vector<int> indegree;
  std::vector<double> flops;            // summed member flops per group
  /// Critical-path bottom levels over the coarse flops -- ready-made
  /// scheduling priorities for rt::ExecOptions::priorities.
  std::vector<double> priorities;
  double threshold_flops = 0.0;
  int fused_groups = 0;   // groups with >= 2 members
  long fused_tasks = 0;   // original tasks inside those groups
  bool dag_bound = false;       // tiny-merge extension was active
  int tiny_merged_stages = 0;   // stages fused beyond the flop threshold
  long num_edges() const;

  /// The stats record for this application (tasks/edges before from `g`).
  CoarsenStats stats(const TaskGraph& g) const;
};

/// Coarsens `g` (built over `bs`) for execution on `opt.threads` workers.
/// Applicable only to GraphKind::kEforest graphs with flop annotations over
/// a postordered block eforest; returns CoarseGraph::coarsened == false
/// otherwise.  Throws std::logic_error if the contraction would produce a
/// non-monotone edge (impossible for the gated inputs; the check guards the
/// acyclicity argument against future graph-kind changes).
CoarseGraph coarsen_task_graph(const TaskGraph& g,
                               const symbolic::BlockStructure& bs,
                               const CoarsenOptions& opt = {});

}  // namespace plu::taskgraph
