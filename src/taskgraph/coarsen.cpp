#include "taskgraph/coarsen.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "blas/tunables.h"
#include "taskgraph/analysis.h"
#include "taskgraph/costs.h"

namespace plu::taskgraph {

long CoarseGraph::num_edges() const {
  long total = 0;
  for (const auto& s : succ) total += static_cast<long>(s.size());
  return total;
}

CoarsenStats CoarseGraph::stats(const TaskGraph& g) const {
  CoarsenStats st;
  st.ran = coarsened;
  st.tasks_before = g.size();
  st.edges_before = g.num_edges();
  st.tasks_after = num_groups;
  st.edges_after = num_edges();
  st.fused_groups = fused_groups;
  st.fused_tasks = fused_tasks;
  st.threshold_flops = threshold_flops;
  st.dag_bound = dag_bound;
  st.tiny_merged_stages = tiny_merged_stages;
  return st;
}

CoarseGraph coarsen_task_graph(const TaskGraph& g,
                               const symbolic::BlockStructure& bs,
                               const CoarsenOptions& opt) {
  CoarseGraph cg;
  const int nb = g.tasks.num_columns();
  const int nt = g.size();
  // Applicability gate (see the header's acyclicity argument): the eforest
  // rules make every cross-stage edge an ancestor edge, and postordered
  // labels make every subtree a contiguous stage interval.  Both are load
  // bearing; without either, contraction could close a cycle.
  if (g.kind != GraphKind::kEforest || nt == 0 ||
      static_cast<int>(g.flops.size()) != nt || bs.beforest.size() != nb ||
      !bs.beforest.is_postordered()) {
    return cg;
  }

  // Task weights: density-effective flops when a blocking plan is present
  // (closure-padded sparse subtrees stop being overweighted), nominal
  // counts otherwise.  SCHEDULE-ONLY either way -- weights shape groups
  // and priorities, and any grouping is bitwise-safe (the writer chains
  // below pin the summation order regardless).
  const bool planned = opt.plan != nullptr && opt.plan->built;
  const std::vector<double> eff =
      planned ? effective_task_flops(g, *opt.plan) : std::vector<double>{};
  const std::vector<double>& fl = planned ? eff : g.flops;

  // Stage weights and subtree sums (children precede parents, so one
  // ascending pass accumulates complete subtrees before adding them up).
  std::vector<double> subtree(nb, 0.0);
  double total = 0.0;
  for (int s = 0; s < nb; ++s) {
    double w = fl[g.tasks.factor_id(s)];
    const auto [b, e] = g.tasks.stage_range(s);
    for (int id = b; id < e; ++id) w += fl[id];
    subtree[s] += w;
    total += w;
    const int p = bs.beforest.parent(s);
    if (p != graph::kNone) subtree[p] += subtree[s];
  }

  double threshold = opt.threshold_flops;
  if (threshold <= 0.0) {
    const std::vector<double> bl = bottom_levels(g, fl);
    double cp = 0.0;
    for (double v : bl) cp = std::max(cp, v);
    const double p = std::max(1, opt.threads);
    const double tpt = std::max(1, opt.target_tasks_per_thread);
    threshold = std::min(total / (p * tpt), 0.5 * cp);
  }
  cg.threshold_flops = threshold;

  // DAG-aware tiny-supernode merging (plan-gated).  When the task count
  // dwarfs what the workers can usefully schedule, per-task overhead -- not
  // flops -- bounds the run; subtrees made ENTIRELY of tiny supernodes
  // (width <= the plan's tiny_width_cap) may then fuse past the flop
  // threshold, up to kTinyMergeFlopFactor times it.  tiny_sub is computed
  // ascending (children precede parents under postorder); clearing is
  // monotone, so each flag is final once its stage is passed.
  const bool dag_bound =
      planned && nt > std::max(1, opt.threads) *
                          std::max(1, opt.target_tasks_per_thread) *
                          blas::tunables::kDagBoundTaskFactor;
  cg.dag_bound = dag_bound;
  std::vector<char> tiny_sub;
  if (dag_bound) {
    tiny_sub.assign(nb, 1);
    const int cap = opt.plan->summary.tiny_width_cap;
    for (int s = 0; s < nb; ++s) {
      if (bs.part.width(s) > cap) tiny_sub[s] = 0;
      const int p = bs.beforest.parent(s);
      if (p != graph::kNone && !tiny_sub[s]) tiny_sub[p] = 0;
    }
  }
  // The fusability predicate is DOWN-CLOSED (a fusable stage's children are
  // fusable: subtree weights shrink downward, and tiny_sub[p] implies
  // tiny_sub[child]), which is what keeps fused subtrees maximal and their
  // stage intervals contiguous -- the acyclicity argument is untouched.
  const auto fusable = [&](int s) {
    if (subtree[s] <= threshold) return true;
    return dag_bound && tiny_sub[s] != 0 &&
           subtree[s] <= blas::tunables::kTinyMergeFlopFactor * threshold;
  };

  // Fused roots: maximal fusable subtrees.  Descending scan so fr[parent]
  // is final before its children inherit it.
  std::vector<int> fr(nb, -1);
  for (int s = nb - 1; s >= 0; --s) {
    const int p = bs.beforest.parent(s);
    if (fusable(s) && (p == graph::kNone || !fusable(p))) {
      fr[s] = s;
    } else if (p != graph::kNone) {
      fr[s] = fr[p];
    }
  }
  if (dag_bound) {
    for (int s = 0; s < nb; ++s) {
      if (fr[s] != -1 && subtree[fr[s]] > threshold) ++cg.tiny_merged_stages;
    }
  }

  // Group assignment, scanning stages ascending: a fused subtree (one
  // contiguous stage interval) becomes one group running its tasks in
  // right-looking order; every other task is its own group.  Group ids are
  // therefore monotone in (stage, within-stage task id) -- the coarse
  // topological order.
  cg.group_of.assign(nt, -1);
  int cur_root = graph::kNone;
  int cur_gid = -1;
  for (int s = 0; s < nb; ++s) {
    const int fid = g.tasks.factor_id(s);
    const auto [b, e] = g.tasks.stage_range(s);
    if (fr[s] != graph::kNone) {
      if (fr[s] != cur_root) {  // interval start: open the fused group
        cur_root = fr[s];
        cur_gid = static_cast<int>(cg.members.size());
        cg.members.emplace_back();
      }
      cg.group_of[fid] = cur_gid;
      cg.members[cur_gid].push_back(fid);
      for (int id = b; id < e; ++id) {
        cg.group_of[id] = cur_gid;
        cg.members[cur_gid].push_back(id);
      }
    } else {
      cg.group_of[fid] = static_cast<int>(cg.members.size());
      cg.members.push_back({fid});
      for (int id = b; id < e; ++id) {
        cg.group_of[id] = static_cast<int>(cg.members.size());
        cg.members.push_back({id});
      }
    }
  }
  const int ng = static_cast<int>(cg.members.size());
  cg.num_groups = ng;

  // Coarse edges: the original edges under contraction, plus the
  // determinism chains.  All must run forward in group id (acyclicity).
  std::vector<long> edges;
  edges.reserve(static_cast<std::size_t>(g.num_edges()) / 2 + 16);
  const auto add_edge = [&](int a, int b) {
    if (a == b) return;
    if (a > b) {
      throw std::logic_error("coarsen_task_graph: non-monotone coarse edge");
    }
    edges.push_back(static_cast<long>(a) * ng + b);
  };
  for (int u = 0; u < nt; ++u) {
    for (int v : g.succ[u]) add_edge(cg.group_of[u], cg.group_of[v]);
  }

  // Writer chains in ascending source-stage order, so the coarse schedule
  // reproduces the sequential summation/interchange order exactly.  Group
  // ids are monotone in stage, so consecutive-distinct-group chaining per
  // target is enough (a target's writer groups form a monotone sequence).
  if (g.granularity() == Granularity::kColumn) {
    if (!bs.lockfree_safe) {
      // Update(k, j) writes only column j; Factor(j) is the column's final
      // writer in sequential order (every update source k < j).
      std::vector<int> last(nb, -1);
      for (int k = 0; k < nb; ++k) {
        const auto [b, e] = g.tasks.update_range(k);
        for (int id = b; id < e; ++id) {
          const int gid = cg.group_of[id];
          int& lw = last[g.tasks.task(id).j];
          if (lw != -1 && lw != gid) add_edge(lw, gid);
          lw = gid;
        }
      }
      for (int j = 0; j < nb; ++j) {
        const int gf = cg.group_of[g.tasks.factor_id(j)];
        if (last[j] != -1 && last[j] != gf) add_edge(last[j], gf);
      }
    }
  } else {
    // UpdateBlock(i, k, j) writes block (i, j); its consumer (the block's
    // final writer) already carries a structural edge from every updater,
    // so only the updaters themselves need chaining.
    std::unordered_map<long, int> last;
    for (int k = 0; k < nb; ++k) {
      const auto [b, e] = g.tasks.update_range(k);
      for (int id = b; id < e; ++id) {
        const Task& t = g.tasks.task(id);
        const int gid = cg.group_of[id];
        const auto [it, fresh] =
            last.try_emplace(static_cast<long>(t.i) * nb + t.j, gid);
        if (!fresh) {
          if (it->second != gid) add_edge(it->second, gid);
          it->second = gid;
        }
      }
    }
  }

  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  cg.succ.assign(ng, {});
  cg.indegree.assign(ng, 0);
  for (long pe : edges) {
    const int a = static_cast<int>(pe / ng);
    const int b = static_cast<int>(pe % ng);
    cg.succ[a].push_back(b);
    ++cg.indegree[b];
  }

  cg.flops.assign(ng, 0.0);
  for (int id = 0; id < nt; ++id) cg.flops[cg.group_of[id]] += g.flops[id];
  // Bottom levels over the coarse flops; ids are topological, so one
  // descending sweep suffices.
  cg.priorities.assign(ng, 0.0);
  for (int v = ng - 1; v >= 0; --v) {
    double best = 0.0;
    for (int s : cg.succ[v]) best = std::max(best, cg.priorities[s]);
    cg.priorities[v] = best + cg.flops[v];
  }

  for (const auto& m : cg.members) {
    if (m.size() >= 2) {
      ++cg.fused_groups;
      cg.fused_tasks += static_cast<long>(m.size());
    }
  }
  cg.coarsened = true;
  return cg;
}

}  // namespace plu::taskgraph
