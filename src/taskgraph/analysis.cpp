#include "taskgraph/analysis.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <ostream>
#include <stdexcept>

namespace plu::taskgraph {

std::vector<int> topological_order(const TaskGraph& g) {
  const int n = g.size();
  std::vector<int> indeg = g.indegree;
  std::vector<int> order;
  order.reserve(n);
  std::deque<int> ready;
  for (int v = 0; v < n; ++v) {
    if (indeg[v] == 0) ready.push_back(v);
  }
  while (!ready.empty()) {
    int v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (int s : g.succ[v]) {
      if (--indeg[s] == 0) ready.push_back(s);
    }
  }
  if (static_cast<int>(order.size()) != n) order.clear();
  return order;
}

bool is_acyclic(const TaskGraph& g) { return !topological_order(g).empty() || g.size() == 0; }

double CriticalPath::makespan_lower_bound(double total_flops, int p) const {
  return std::max(length, total_flops / std::max(1, p));
}

CriticalPath critical_path(const TaskGraph& g, const std::vector<double>& weights) {
  CriticalPath cp;
  std::vector<int> order = topological_order(g);
  assert(!order.empty() || g.size() == 0);
  const int n = g.size();
  std::vector<double> dist(n, 0.0);  // longest path ending at v, inclusive
  std::vector<int> pred(n, -1);
  for (int v : order) {
    dist[v] += weights[v];
    for (int s : g.succ[v]) {
      if (dist[v] > dist[s]) {
        dist[s] = dist[v];
        pred[s] = v;
      }
    }
  }
  int best = 0;
  for (int v = 0; v < n; ++v) {
    if (dist[v] > dist[best]) best = v;
  }
  if (n > 0) {
    cp.length = dist[best];
    for (int v = best; v != -1; v = pred[v]) cp.path.push_back(v);
    std::reverse(cp.path.begin(), cp.path.end());
  }
  return cp;
}

std::vector<double> bottom_levels(const TaskGraph& g,
                                  const std::vector<double>& weights) {
  std::vector<int> order = topological_order(g);
  std::vector<double> bl(g.size(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    int v = *it;
    double best = 0.0;
    for (int s : g.succ[v]) best = std::max(best, bl[s]);
    bl[v] = weights[v] + best;
  }
  return bl;
}

std::vector<double> bottom_levels(const TaskGraph& g,
                                  const std::vector<double>& weights,
                                  rt::Team& team) {
  const int n = g.size();
  std::vector<int> order = topological_order(g);
  // height[v] = longest edge count from v to a sink; nodes of equal height
  // are independent (every successor is strictly lower).
  std::vector<int> height(n, 0);
  int max_h = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    int v = *it;
    for (int s : g.succ[v]) height[v] = std::max(height[v], height[s] + 1);
    max_h = std::max(max_h, height[v]);
  }
  // Bucket by height (counting sort keeps the grouping deterministic, not
  // that it matters: max over doubles is exact in any order).
  std::vector<int> bucket_ptr(max_h + 2, 0);
  for (int v = 0; v < n; ++v) ++bucket_ptr[height[v] + 1];
  for (int h = 0; h <= max_h; ++h) bucket_ptr[h + 1] += bucket_ptr[h];
  std::vector<int> by_height(n);
  {
    std::vector<int> fill = bucket_ptr;
    for (int v = 0; v < n; ++v) by_height[fill[height[v]]++] = v;
  }
  std::vector<double> bl(n, 0.0);
  for (int h = 0; h <= max_h; ++h) {
    const int b = bucket_ptr[h], e = bucket_ptr[h + 1];
    team.parallel_for(e - b, e - b, [&](int xb, int xe, int) {
      for (int x = xb; x < xe; ++x) {
        int v = by_height[b + x];
        double best = 0.0;
        for (int s : g.succ[v]) best = std::max(best, bl[s]);
        bl[v] = weights[v] + best;
      }
    });
  }
  return bl;
}

bool reaches(const TaskGraph& g, int u, int v) {
  if (u == v) return true;
  std::vector<char> seen(g.size(), 0);
  std::deque<int> q = {u};
  seen[u] = 1;
  while (!q.empty()) {
    int x = q.front();
    q.pop_front();
    for (int s : g.succ[x]) {
      if (s == v) return true;
      if (!seen[s]) {
        seen[s] = 1;
        q.push_back(s);
      }
    }
  }
  return false;
}

Reachability::Reachability(const std::vector<std::vector<int>>& succ)
    : n_(static_cast<int>(succ.size())), words_((n_ + 63) / 64) {
  std::vector<int> indeg(n_, 0);
  for (int u = 0; u < n_; ++u) {
    for (int s : succ[u]) ++indeg[s];
  }
  std::vector<int> order;
  order.reserve(n_);
  std::deque<int> ready;
  for (int v = 0; v < n_; ++v) {
    if (indeg[v] == 0) ready.push_back(v);
  }
  while (!ready.empty()) {
    int v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (int s : succ[v]) {
      if (--indeg[s] == 0) ready.push_back(s);
    }
  }
  if (static_cast<int>(order.size()) != n_) {
    throw std::invalid_argument("Reachability: graph is cyclic");
  }
  bits_.assign(static_cast<std::size_t>(n_) * words_, 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int u = *it;
    std::uint64_t* row = bits_.data() + static_cast<std::size_t>(u) * words_;
    row[u >> 6] |= std::uint64_t{1} << (u & 63);
    for (int s : succ[u]) {
      const std::uint64_t* srow =
          bits_.data() + static_cast<std::size_t>(s) * words_;
      for (int w = 0; w < words_; ++w) row[w] |= srow[w];
    }
  }
}

bool edges_subset_of_closure(const TaskGraph& sub, const TaskGraph& super) {
  if (sub.size() != super.size()) return false;
  for (int u = 0; u < sub.size(); ++u) {
    for (int v : sub.succ[u]) {
      if (!reaches(super, u, v)) return false;
    }
  }
  return true;
}

GraphStats graph_stats(const TaskGraph& g, const TaskCosts& costs) {
  GraphStats s;
  s.tasks = g.size();
  s.edges = g.num_edges();
  s.total_flops = costs.total_flops;
  s.critical_path_flops = critical_path(g, costs.flops).length;
  return s;
}

void write_task_graph_dot(std::ostream& os, const TaskGraph& g,
                          const std::string& name) {
  os << "digraph " << name << " {\n  node [shape=box];\n";
  for (int id = 0; id < g.size(); ++id) {
    os << "  t" << id << " [label=\"" << to_string(g.tasks.task(id)) << "\"];\n";
  }
  for (int id = 0; id < g.size(); ++id) {
    for (int s : g.succ[id]) {
      os << "  t" << id << " -> t" << s << ";\n";
    }
  }
  os << "}\n";
}

}  // namespace plu::taskgraph
