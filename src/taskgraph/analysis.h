// Task graph analysis: topological validation, critical path, edge-set
// comparison between the S* and eforest graphs, DOT export.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "taskgraph/build.h"
#include "taskgraph/costs.h"

namespace plu::taskgraph {

/// Topological order of the task graph; empty when the graph has a cycle.
std::vector<int> topological_order(const TaskGraph& g);

bool is_acyclic(const TaskGraph& g);

struct CriticalPath {
  double length = 0.0;        // weighted longest path (flops)
  std::vector<int> path;      // task ids along one critical path
  /// Lower bound on any P-processor makespan: max(critical path, total/P).
  double makespan_lower_bound(double total_flops, int p) const;
};

/// Longest path under the given task weights.
CriticalPath critical_path(const TaskGraph& g, const std::vector<double>& weights);

/// Per-task priority = weighted longest path from the task to any sink
/// ("bottom level"), the classic list-scheduling priority.
std::vector<double> bottom_levels(const TaskGraph& g,
                                  const std::vector<double>& weights);

/// Team-parallel variant: nodes are grouped by height above the sinks
/// (computed sequentially), then each height class is swept in parallel --
/// a node's successors are all strictly lower, so reads see finalized
/// values and every write is owned.  fp max and one addition are exact, so
/// the priorities are bit-identical to the sequential reverse-topological
/// sweep.
std::vector<double> bottom_levels(const TaskGraph& g,
                                  const std::vector<double>& weights,
                                  rt::Team& team);

/// True if every edge of `sub` connects tasks that are also ordered (via a
/// directed path) in `super`.  The eforest graph must be a subset of the
/// transitive closure of the S* graph over the same task list.
bool edges_subset_of_closure(const TaskGraph& sub, const TaskGraph& super);

/// True if u -> v is implied by g (directed path).  BFS; test helper.
bool reaches(const TaskGraph& g, int u, int v);

/// Precomputed transitive reachability of a DAG: one descendant bitset per
/// node, built in reverse topological order.  O(V*E/64) construction,
/// O(1) queries -- the all-pairs "are these tasks ordered?" primitive the
/// runtime race checker needs (rt::RaceChecker asks it for every pair of
/// tasks with conflicting footprints).
class Reachability {
 public:
  Reachability() = default;
  /// Builds from successor lists.  Throws std::invalid_argument when the
  /// graph has a cycle (reachability of a cyclic "dependence" graph is not
  /// an ordering, and the executors refuse such graphs anyway).
  explicit Reachability(const std::vector<std::vector<int>>& succ);
  explicit Reachability(const TaskGraph& g) : Reachability(g.succ) {}

  int size() const { return n_; }

  /// True if there is a directed path u -> v (u == v counts).
  bool reaches(int u, int v) const {
    return (bits_[static_cast<std::size_t>(u) * words_ + (v >> 6)] >>
            (v & 63)) & 1u;
  }

  /// True when the transitive dependence relation orders u and v either way.
  bool ordered(int u, int v) const { return reaches(u, v) || reaches(v, u); }

 private:
  int n_ = 0;
  int words_ = 0;
  std::vector<std::uint64_t> bits_;  // row u = descendants of u, incl. u
};

/// Graph statistics for reports.
struct GraphStats {
  int tasks = 0;
  long edges = 0;
  double critical_path_flops = 0.0;
  double total_flops = 0.0;
  double max_parallelism() const {
    return critical_path_flops > 0 ? total_flops / critical_path_flops : 0.0;
  }
};

GraphStats graph_stats(const TaskGraph& g, const TaskCosts& costs);

/// DOT export (Figure 4-style rendering of the dependence graph).
void write_task_graph_dot(std::ostream& os, const TaskGraph& g,
                          const std::string& name = "taskgraph");

}  // namespace plu::taskgraph
