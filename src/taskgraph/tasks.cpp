#include "taskgraph/tasks.h"

#include <algorithm>
#include <sstream>

namespace plu::taskgraph {

std::string to_string(Granularity g) {
  return g == Granularity::kColumn ? "column" : "block";
}

std::string to_string(const Task& t) {
  std::ostringstream os;
  switch (t.kind) {
    case TaskKind::kFactor:
      os << "F(" << t.k << ")";
      break;
    case TaskKind::kUpdate:
      os << "U(" << t.k << "," << t.j << ")";
      break;
    case TaskKind::kFactorDiag:
      os << "FD(" << t.k << ")";
      break;
    case TaskKind::kFactorL:
      os << "FL(" << t.i << "," << t.k << ")";
      break;
    case TaskKind::kComputeU:
      os << "CU(" << t.k << "," << t.j << ")";
      break;
    case TaskKind::kUpdateBlock:
      os << "UB(" << t.i << "," << t.k << "," << t.j << ")";
      break;
  }
  return os.str();
}

bool is_update(TaskKind kind) {
  return kind == TaskKind::kUpdate || kind == TaskKind::kUpdateBlock;
}

TaskList::TaskList(const std::vector<std::vector<int>>& u_targets) {
  granularity_ = Granularity::kColumn;
  num_cols_ = static_cast<int>(u_targets.size());
  tasks_.reserve(num_cols_);
  for (int k = 0; k < num_cols_; ++k) {
    tasks_.push_back({TaskKind::kFactor, k, k, k});
  }
  stage_ptr_.assign(num_cols_ + 1, num_cols_);
  for (int k = 0; k < num_cols_; ++k) {
    stage_ptr_[k] = static_cast<int>(tasks_.size());
    for (int j : u_targets[k]) {
      tasks_.push_back({TaskKind::kUpdate, k, j, k});
    }
  }
  stage_ptr_[num_cols_] = static_cast<int>(tasks_.size());
}

TaskList TaskList::block_granularity(const std::vector<std::vector<int>>& l_blocks,
                                     const std::vector<std::vector<int>>& u_blocks) {
  TaskList tl;
  tl.granularity_ = Granularity::kBlock;
  tl.num_cols_ = static_cast<int>(l_blocks.size());
  const int nb = tl.num_cols_;
  for (int k = 0; k < nb; ++k) {
    tl.tasks_.push_back({TaskKind::kFactorDiag, k, k, k});
  }
  tl.stage_ptr_.assign(nb + 1, nb);
  tl.cu_ptr_.assign(nb, 0);
  tl.ub_ptr_.assign(nb, 0);
  for (int k = 0; k < nb; ++k) {
    tl.stage_ptr_[k] = static_cast<int>(tl.tasks_.size());
    for (int i : l_blocks[k]) {
      tl.tasks_.push_back({TaskKind::kFactorL, k, k, i});
    }
    tl.cu_ptr_[k] = static_cast<int>(tl.tasks_.size());
    for (int j : u_blocks[k]) {
      tl.tasks_.push_back({TaskKind::kComputeU, k, j, k});
    }
    tl.ub_ptr_[k] = static_cast<int>(tl.tasks_.size());
    for (int i : l_blocks[k]) {
      for (int j : u_blocks[k]) {
        tl.tasks_.push_back({TaskKind::kUpdateBlock, k, j, i});
      }
    }
  }
  tl.stage_ptr_[nb] = static_cast<int>(tl.tasks_.size());
  return tl;
}

int TaskList::segment_find(int lo, int hi, int Task::* field, int value) const {
  const int end = hi;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (tasks_[mid].*field < value) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < end && tasks_[lo].*field == value) return lo;
  return -1;
}

int TaskList::update_id(int k, int j) const {
  if (granularity_ != Granularity::kColumn) return -1;
  return segment_find(stage_ptr_[k], stage_ptr_[k + 1], &Task::j, j);
}

int TaskList::factor_l_id(int i, int k) const {
  if (granularity_ != Granularity::kBlock) return -1;
  return segment_find(stage_ptr_[k], cu_ptr_[k], &Task::i, i);
}

int TaskList::compute_u_id(int k, int j) const {
  if (granularity_ != Granularity::kBlock) return -1;
  return segment_find(cu_ptr_[k], ub_ptr_[k], &Task::j, j);
}

int TaskList::update_block_id(int i, int k, int j) const {
  if (granularity_ != Granularity::kBlock) return -1;
  const int fl = factor_l_id(i, k);
  const int cu = compute_u_id(k, j);
  if (fl == -1 || cu == -1) return -1;
  const int li = fl - stage_ptr_[k];
  const int uj = cu - cu_ptr_[k];
  const int nu = ub_ptr_[k] - cu_ptr_[k];
  const int id = ub_ptr_[k] + li * nu + uj;
  return id;
}

}  // namespace plu::taskgraph
