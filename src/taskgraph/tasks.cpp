#include "taskgraph/tasks.h"

#include <algorithm>
#include <sstream>

namespace plu::taskgraph {

std::string to_string(const Task& t) {
  std::ostringstream os;
  if (t.kind == TaskKind::kFactor) {
    os << "F(" << t.k << ")";
  } else {
    os << "U(" << t.k << "," << t.j << ")";
  }
  return os.str();
}

TaskList::TaskList(const std::vector<std::vector<int>>& u_targets) {
  num_cols_ = static_cast<int>(u_targets.size());
  tasks_.reserve(num_cols_);
  for (int k = 0; k < num_cols_; ++k) {
    tasks_.push_back({TaskKind::kFactor, k, k});
  }
  update_ptr_.assign(num_cols_ + 1, num_cols_);
  for (int k = 0; k < num_cols_; ++k) {
    update_ptr_[k] = static_cast<int>(tasks_.size());
    for (int j : u_targets[k]) {
      tasks_.push_back({TaskKind::kUpdate, k, j});
    }
  }
  update_ptr_[num_cols_] = static_cast<int>(tasks_.size());
}

int TaskList::update_id(int k, int j) const {
  int lo = update_ptr_[k];
  int hi = update_ptr_[k + 1];
  // Targets are ascending within the segment.
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (tasks_[mid].j < j) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < update_ptr_[k + 1] && tasks_[lo].j == j) return lo;
  return -1;
}

}  // namespace plu::taskgraph
