#include "taskgraph/build2d.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "blas/level3.h"

namespace plu::taskgraph {

std::string to_string(const Task2D& t) {
  std::ostringstream os;
  switch (t.kind) {
    case Task2DKind::kFactorDiag:
      os << "FD(" << t.k << ")";
      break;
    case Task2DKind::kFactorL:
      os << "FL(" << t.i << "," << t.k << ")";
      break;
    case Task2DKind::kComputeU:
      os << "CU(" << t.k << "," << t.j << ")";
      break;
    case Task2DKind::kUpdateBlock:
      os << "UB(" << t.i << "," << t.k << "," << t.j << ")";
      break;
  }
  return os.str();
}

long TaskGraph2D::num_edges() const {
  long e = 0;
  for (const auto& s : succ) e += static_cast<long>(s.size());
  return e;
}

namespace {

/// Index of `value` in a sorted vector; -1 when absent.
int sorted_index(const std::vector<int>& v, int value) {
  auto it = std::lower_bound(v.begin(), v.end(), value);
  if (it == v.end() || *it != value) return -1;
  return static_cast<int>(it - v.begin());
}

}  // namespace

TaskGraph2D build_task_graph_2d(const symbolic::BlockStructure& bs) {
  const int nb = bs.num_blocks();
  TaskGraph2D g;

  // Enumerate: FD per block, then FL/CU per stage, then UB per product.
  std::vector<int> fd_id(nb);
  std::vector<std::vector<int>> lblocks(nb), ublocks(nb);
  std::vector<std::vector<int>> fl_id(nb), cu_id(nb);  // parallel to the lists
  for (int k = 0; k < nb; ++k) {
    lblocks[k] = bs.l_blocks(k);
    ublocks[k] = bs.u_blocks(k);
  }
  auto add_task = [&](Task2D t) {
    g.tasks.push_back(t);
    return static_cast<int>(g.tasks.size()) - 1;
  };
  for (int k = 0; k < nb; ++k) {
    fd_id[k] = add_task({Task2DKind::kFactorDiag, k, k, k});
  }
  for (int k = 0; k < nb; ++k) {
    fl_id[k].reserve(lblocks[k].size());
    for (int i : lblocks[k]) {
      fl_id[k].push_back(add_task({Task2DKind::kFactorL, i, k, k}));
    }
    cu_id[k].reserve(ublocks[k].size());
    for (int j : ublocks[k]) {
      cu_id[k].push_back(add_task({Task2DKind::kComputeU, k, k, j}));
    }
  }
  // Updates and all edges.
  g.succ.assign(g.tasks.size(), {});  // grows as UB tasks are appended
  g.indegree.assign(g.tasks.size(), 0);
  auto add_edge = [&](int from, int to) {
    g.succ[from].push_back(to);
    ++g.indegree[to];
  };
  for (int k = 0; k < nb; ++k) {
    for (std::size_t li = 0; li < lblocks[k].size(); ++li) {
      add_edge(fd_id[k], fl_id[k][li]);
    }
    for (std::size_t uj = 0; uj < ublocks[k].size(); ++uj) {
      add_edge(fd_id[k], cu_id[k][uj]);
    }
    for (std::size_t li = 0; li < lblocks[k].size(); ++li) {
      const int i = lblocks[k][li];
      for (std::size_t uj = 0; uj < ublocks[k].size(); ++uj) {
        const int j = ublocks[k][uj];
        int ub = static_cast<int>(g.tasks.size());
        g.tasks.push_back({Task2DKind::kUpdateBlock, i, k, j});
        g.succ.emplace_back();
        g.indegree.push_back(0);
        add_edge(fl_id[k][li], ub);
        add_edge(cu_id[k][uj], ub);
        // Consumer of block (i, j).
        int consumer = -1;
        if (i == j) {
          consumer = fd_id[j];
        } else if (i > j) {
          int pos = sorted_index(lblocks[j], i);
          assert(pos >= 0 && "pairwise closure violated: L target missing");
          consumer = fl_id[j][pos];
        } else {
          int pos = sorted_index(ublocks[i], j);
          assert(pos >= 0 && "pairwise closure violated: U target missing");
          consumer = cu_id[i][pos];
        }
        if (consumer >= 0) add_edge(ub, consumer);
      }
    }
  }

  // Costs.
  const auto& part = bs.part;
  g.flops.assign(g.tasks.size(), 0.0);
  g.output_bytes.assign(g.tasks.size(), 0.0);
  for (int id = 0; id < g.size(); ++id) {
    const Task2D& t = g.tasks[id];
    const int wi = part.width(t.i);
    const int wk = part.width(t.k);
    const int wj = part.width(t.j);
    switch (t.kind) {
      case Task2DKind::kFactorDiag:
        g.flops[id] = blas::getrf_flops(wk, wk);
        g.output_bytes[id] = 8.0 * wk * wk;
        break;
      case Task2DKind::kFactorL:
        g.flops[id] = blas::trsm_flops(blas::Side::Right, wi, wk);
        g.output_bytes[id] = 8.0 * wi * wk;
        break;
      case Task2DKind::kComputeU:
        g.flops[id] = blas::trsm_flops(blas::Side::Left, wk, wj);
        g.output_bytes[id] = 8.0 * wk * wj;
        break;
      case Task2DKind::kUpdateBlock:
        g.flops[id] = blas::gemm_flops(wi, wj, wk);
        g.output_bytes[id] = 8.0 * wi * wj;
        break;
    }
    g.total_flops += g.flops[id];
  }
  return g;
}

std::vector<int> topological_order(const TaskGraph2D& g) {
  std::vector<int> indeg = g.indegree;
  std::vector<int> order;
  order.reserve(g.size());
  std::vector<int> stack;
  for (int v = 0; v < g.size(); ++v) {
    if (indeg[v] == 0) stack.push_back(v);
  }
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    order.push_back(v);
    for (int s : g.succ[v]) {
      if (--indeg[s] == 0) stack.push_back(s);
    }
  }
  if (static_cast<int>(order.size()) != g.size()) order.clear();
  return order;
}

double critical_path_2d(const TaskGraph2D& g) {
  std::vector<int> order = topological_order(g);
  std::vector<double> dist(g.size(), 0.0);
  double best = 0.0;
  for (int v : order) {
    dist[v] += g.flops[v];
    best = std::max(best, dist[v]);
    for (int s : g.succ[v]) dist[s] = std::max(dist[s], dist[v]);
  }
  return best;
}

std::vector<int> owners_2d(const TaskGraph2D& g, int pr, int pc) {
  std::vector<int> owners(g.size());
  for (int id = 0; id < g.size(); ++id) {
    const Task2D& t = g.tasks[id];
    int i = 0, j = 0;
    switch (t.kind) {
      case Task2DKind::kFactorDiag:
        i = j = t.k;
        break;
      case Task2DKind::kFactorL:
        i = t.i;
        j = t.k;
        break;
      case Task2DKind::kComputeU:
        i = t.k;
        j = t.j;
        break;
      case Task2DKind::kUpdateBlock:
        i = t.i;
        j = t.j;
        break;
    }
    owners[id] = (i % pr) * pc + (j % pc);
  }
  return owners;
}

std::vector<double> bottom_levels_2d(const TaskGraph2D& g) {
  std::vector<int> order = topological_order(g);
  std::vector<double> bl(g.size(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    double best = 0.0;
    for (int s : g.succ[*it]) best = std::max(best, bl[s]);
    bl[*it] = g.flops[*it] + best;
  }
  return bl;
}

}  // namespace plu::taskgraph
