// Cost model for tasks: flop counts from the dense-kernel formulas plus the
// panel message size for the communication model.  These weights drive both
// the critical-path analysis and the discrete-event machine simulator.
#pragma once

#include <vector>

#include "symbolic/blocks.h"
#include "symbolic/repartition.h"
#include "taskgraph/tasks.h"

namespace plu::taskgraph {

struct TaskCosts {
  /// flops[id]: arithmetic work of task id.
  std::vector<double> flops;
  /// panel_bytes[k]: size of factored panel k (the message Update(k, j)
  /// needs when the owner of j differs from the owner of k).
  std::vector<double> panel_bytes;
  /// output_bytes[id]: data the task produces that a consumer on another
  /// processor must fetch -- the factored panel for Factor(k), the written
  /// column footprint for Update(k, j).
  std::vector<double> output_bytes;
  double total_flops = 0.0;
};

/// Computes task costs for a task list over a block structure.
///   Factor(k): getrf on the packed (panel_rows x width) panel.
///   Update(k, j): pivot-swap bookkeeping (ignored) + trsm(width_k, width_j)
///                 + gemm over the L row blocks of panel k.
TaskCosts compute_task_costs(const symbolic::BlockStructure& bs,
                             const TaskList& tasks);

/// Team-parallel variant: per-panel and per-task slots are owned; the
/// total_flops sum stays sequential in id order (fp addition is not
/// associative), so the costs are bit-identical to the sequential build.
TaskCosts compute_task_costs(const symbolic::BlockStructure& bs,
                             const TaskList& tasks, rt::Team& team);

/// Rows of the packed panel of block column k: its own width plus the widths
/// of its L row blocks.
int panel_rows(const symbolic::BlockStructure& bs, int k);

/// Density-effective per-task flops: each task's nominal flop count scaled
/// by its source stage's structural panel density (floored at
/// tunables::kMinDensityScale -- near-empty panels still pay bookkeeping).
/// The nominal counts charge every stored zero as real work; on closure-
/// padded structures that overweights sparse subtrees, so the coarsener
/// (taskgraph/coarsen.cpp) fuses them too timidly.  SCHEDULE-ONLY: these
/// weights feed subtree sums, thresholds and priorities, never a kernel.
struct TaskGraph;  // taskgraph/build.h
std::vector<double> effective_task_flops(const TaskGraph& g,
                                         const symbolic::BlockPlan& plan);

}  // namespace plu::taskgraph
