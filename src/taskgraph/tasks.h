// Task vocabulary of the 1-D block-column sparse LU (Section 4):
//   Factor(k)   - factor block column k (find its pivot sequence);
//   Update(k,j) - update block column j with the factored panel k
//                 (exists for k < j with block B_kj structurally nonzero).
#pragma once

#include <string>
#include <vector>

namespace plu::taskgraph {

enum class TaskKind { kFactor, kUpdate };

struct Task {
  TaskKind kind = TaskKind::kFactor;
  int k = 0;  // source block column (the panel)
  int j = 0;  // target block column (== k for Factor)

  friend bool operator==(const Task& a, const Task& b) {
    return a.kind == b.kind && a.k == b.k && a.j == b.j;
  }
};

std::string to_string(const Task& t);

/// Indexed task list: tasks are laid out Factor(0..N-1) first, then all
/// Update tasks grouped by source panel k with ascending target j, which
/// makes (k, j) -> id lookup a binary search.
class TaskList {
 public:
  TaskList() = default;

  /// Builds from the U-block lists: u_targets[k] = ascending j > k with
  /// B_kj nonzero.
  explicit TaskList(const std::vector<std::vector<int>>& u_targets);

  int size() const { return static_cast<int>(tasks_.size()); }
  int num_columns() const { return num_cols_; }
  const Task& task(int id) const { return tasks_[id]; }
  const std::vector<Task>& tasks() const { return tasks_; }

  int factor_id(int k) const { return k; }

  /// Id of Update(k, j); -1 when absent.
  int update_id(int k, int j) const;

  /// All Update(k, *) ids, ascending j.
  std::pair<int, int> update_range(int k) const {
    return {update_ptr_[k], update_ptr_[k + 1]};
  }

 private:
  int num_cols_ = 0;
  std::vector<Task> tasks_;
  std::vector<int> update_ptr_;  // per-panel offsets into the update segment
};

}  // namespace plu::taskgraph
