// Task vocabulary of the sparse LU factorization, at both granularities the
// paper's scheme admits (Section 4 and the first future-work item).
//
// Column granularity (1-D, the paper's scheme):
//   Factor(k)   - factor block column k (find its pivot sequence);
//   Update(k,j) - update block column j with the factored panel k
//                 (exists for k < j with block B_kj structurally nonzero).
//
// Block granularity (2-D, the S+ 2.0 direction): both task families split
// along the row partition --
//   FactorDiag(k)      - getrf with block-local pivoting on B_kk;
//   FactorL(i,k)       - L_ik := B_ik U_kk^{-1}       (i > k, L block)
//   ComputeU(k,j)      - U_kj := L_kk^{-1} P_k B_kj   (j > k, U block)
//   UpdateBlock(i,k,j) - B_ij -= L_ik U_kj            (gemm per block)
//
// One id scheme covers both granularities: the factor task of block column
// k is ALWAYS task id k (Factor(k) or FactorDiag(k)), and the remaining
// tasks are grouped by source stage k with ascending stage index.  Within a
// block-granularity stage the layout is FactorL (ascending i), ComputeU
// (ascending j), UpdateBlock (row-major over the L x U product), which
// makes every lookup a binary search plus an offset.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace plu::taskgraph {

enum class TaskKind {
  // Column granularity.
  kFactor,
  kUpdate,
  // Block granularity.
  kFactorDiag,
  kFactorL,
  kComputeU,
  kUpdateBlock,
};

enum class Granularity { kColumn, kBlock };

std::string to_string(Granularity g);

struct Task {
  TaskKind kind = TaskKind::kFactor;
  int k = 0;  // source block column (the panel / pivot stage)
  int j = 0;  // target block column (== k for Factor/FactorDiag/FactorL)
  int i = 0;  // target row block (== k for column-granularity tasks)

  friend bool operator==(const Task& a, const Task& b) {
    return a.kind == b.kind && a.k == b.k && a.j == b.j && a.i == b.i;
  }
};

std::string to_string(const Task& t);

/// True for the additive-update kinds (kUpdate / kUpdateBlock).
bool is_update(TaskKind kind);

/// Indexed task list at either granularity.  Factor tasks of block column k
/// are id k; the remaining tasks are grouped by source stage k ascending.
class TaskList {
 public:
  TaskList() = default;

  /// Column granularity, from the U-block lists: u_targets[k] = ascending
  /// j > k with B_kj nonzero.
  explicit TaskList(const std::vector<std::vector<int>>& u_targets);

  /// Block granularity, from the L- and U-block lists of each stage
  /// (ascending row / column indices, as symbolic::BlockStructure stores
  /// them).
  static TaskList block_granularity(const std::vector<std::vector<int>>& l_blocks,
                                    const std::vector<std::vector<int>>& u_blocks);

  Granularity granularity() const { return granularity_; }
  int size() const { return static_cast<int>(tasks_.size()); }
  int num_columns() const { return num_cols_; }
  const Task& task(int id) const { return tasks_[id]; }
  const std::vector<Task>& tasks() const { return tasks_; }

  /// Id of Factor(k) / FactorDiag(k) -- the same at both granularities.
  int factor_id(int k) const { return k; }

  /// Id of Update(k, j) (column granularity); -1 when absent.
  int update_id(int k, int j) const;

  /// Id of FactorL(i, k) (block granularity); -1 when absent.
  int factor_l_id(int i, int k) const;

  /// Id of ComputeU(k, j) (block granularity); -1 when absent.
  int compute_u_id(int k, int j) const;

  /// Id of UpdateBlock(i, k, j) (block granularity); -1 when absent.
  int update_block_id(int i, int k, int j) const;

  /// The additive-update ids of source stage k: all Update(k, *) ascending
  /// j, or all UpdateBlock(*, k, *) row-major.
  std::pair<int, int> update_range(int k) const {
    return {granularity_ == Granularity::kColumn ? stage_ptr_[k] : ub_ptr_[k],
            stage_ptr_[k + 1]};
  }

  /// Every non-factor task of source stage k (equals update_range at column
  /// granularity; prepends the FactorL/ComputeU segment at block
  /// granularity).  Running factor_id(k) then this range for k = 0..nb-1 is
  /// a valid topological (right-looking) order at either granularity.
  std::pair<int, int> stage_range(int k) const {
    return {stage_ptr_[k], stage_ptr_[k + 1]};
  }

 private:
  /// Index of the task in [lo, hi) whose `field` equals value; -1 when
  /// absent.  The segment is sorted by `field`.
  int segment_find(int lo, int hi, int Task::* field, int value) const;

  Granularity granularity_ = Granularity::kColumn;
  int num_cols_ = 0;
  std::vector<Task> tasks_;
  std::vector<int> stage_ptr_;  // per-stage offsets into the non-factor segment
  std::vector<int> cu_ptr_;     // block granularity: ComputeU offset per stage
  std::vector<int> ub_ptr_;     // block granularity: UpdateBlock offset per stage
};

}  // namespace plu::taskgraph
