#include "taskgraph/costs.h"

#include <algorithm>
#include <cassert>

#include "blas/level3.h"
#include "blas/tunables.h"
#include "taskgraph/build.h"

namespace plu::taskgraph {

int panel_rows(const symbolic::BlockStructure& bs, int k) {
  int rows = bs.part.width(k);
  for (int i : bs.l_blocks(k)) rows += bs.part.width(i);
  return rows;
}

TaskCosts compute_task_costs(const symbolic::BlockStructure& bs,
                             const TaskList& tasks) {
  rt::Team seq(1);
  return compute_task_costs(bs, tasks, seq);
}

TaskCosts compute_task_costs(const symbolic::BlockStructure& bs,
                             const TaskList& tasks, rt::Team& team) {
  // Column granularity only: the block-granularity costs ride on the
  // TaskGraph itself (taskgraph/build.cpp fills flops/output_bytes there).
  assert(tasks.granularity() == Granularity::kColumn);
  const int nb = bs.num_blocks();
  TaskCosts c;
  c.flops.assign(tasks.size(), 0.0);
  c.panel_bytes.assign(nb, 0.0);
  c.output_bytes.assign(tasks.size(), 0.0);

  std::vector<int> prows(nb);
  team.parallel_for(bs.bpattern.nnz(), nb, [&](int kb, int ke, int) {
    for (int k = kb; k < ke; ++k) {
      prows[k] = panel_rows(bs, k);
      c.panel_bytes[k] = 8.0 * prows[k] * bs.part.width(k);
    }
  });

  team.parallel_for(tasks.size(), tasks.size(), [&](int ib, int ie, int) {
    for (int id = ib; id < ie; ++id) {
      const Task& t = tasks.task(id);
      const int wk = bs.part.width(t.k);
      if (t.kind == TaskKind::kFactor) {
        c.flops[id] = blas::getrf_flops(prows[t.k], wk);
        c.output_bytes[id] = c.panel_bytes[t.k];
      } else {
        const int wj = bs.part.width(t.j);
        double f = blas::trsm_flops(blas::Side::Left, wk, wj);
        f += blas::gemm_flops(prows[t.k] - wk, wj, wk);
        c.flops[id] = f;
        // Footprint written into block column j: the panel-k rows times w_j.
        c.output_bytes[id] = 8.0 * prows[t.k] * wj;
      }
    }
  });
  // Sequential in-order sum for bitwise identity with the sequential build.
  for (int id = 0; id < tasks.size(); ++id) c.total_flops += c.flops[id];
  return c;
}

std::vector<double> effective_task_flops(const TaskGraph& g,
                                         const symbolic::BlockPlan& plan) {
  std::vector<double> out = g.flops;
  if (!plan.built) return out;
  for (int id = 0; id < g.size(); ++id) {
    const int k = g.tasks.task(id).k;
    out[id] *= std::max(plan.columns[k].panel_density,
                        blas::tunables::kMinDensityScale);
  }
  return out;
}

}  // namespace plu::taskgraph
