// Task dependence graph construction (Section 4), at either task
// granularity.  The dependence RULES are written once and shared; the
// granularity only decides what a "target" is (a block column or a single
// block) and which task consumes it.
//
// Column granularity -- two rule sets over the Factor/Update tasks:
//
//   kSStar (baseline, Fu & Yang's S*, minimal reading): updates into each
//   target are chained in ascending source index, and the target's consumer
//   waits for the whole chain --
//     F(k) -> U(k, j)                      for every update task
//     U(k1, j) -> U(k2, j)                 for consecutive sources k1 < k2
//     U(k_last, j) -> F(j)
//
//   kSStarProgramOrder (baseline, sequential-loop reading): kSStar plus the
//   program order of the reference algorithm's inner loop -- panel k's
//   updates are chained U(k, j) -> U(k, j') for consecutive targets j < j'.
//   The paper's description of S* ("the dependences between U(k,j) tasks
//   are given by the ascending order of the indices") is ambiguous between
//   the two readings (the scan of Figure 4(b) is unreadable); both are
//   provided and both are measured.  Under a work-conserving critical-path
//   scheduler the minimal reading costs almost nothing on these matrices,
//   while the program-order reading reproduces the improvement band the
//   paper reports (see EXPERIMENTS.md).
//
//   kEforest (the paper's contribution): only the least necessary
//   dependences, derived from the LU eforest T(B) of the block pattern --
//     F(i) -> U(i, k)                      for every update task      (rule 3)
//     U(i, k) -> U(i', k)  iff i' = parent(i) in T(B)                 (rule 4)
//     U(i, k) -> F(k)      iff k  = parent(i) in T(B)                 (rule 5)
//   Updates whose sources lie in independent subtrees are unordered: their
//   pivot-candidate row blocks are disjoint (Theorem 4 + ref. [8]), so they
//   commute.  Updates from an earlier tree never chain into F(k) at all --
//   they write rows outside k's panel, and their consumers U(t, k) are
//   reached through rule 4.
//
// Block granularity (2-D decomposition; the paper's first future-work item,
// realized later by S+ 2.0) -- the operand edges are common to all kinds:
//     FD(k) -> FL(i, k) and FD(k) -> CU(k, j);
//     FL(i, k) -> UB(i, k, j), CU(k, j) -> UB(i, k, j);
// and the target ordering reuses the SAME rules as above, with the target
// now an individual block (i, j) and its consumer FD(j) when i == j, FL(i,
// j) when i > j, CU(i, j) when i < j:
//
//   kEforest: UB(i, k, j) -> consumer(i, j) directly.  Updates into the
//   same block from different sources are unordered (additive gemms
//   commute); the consumer edge is the least necessary ordering at this
//   granularity -- the Theorem-4 chain collapses because a block has
//   exactly one consumer.
//
//   kSStar / kSStarProgramOrder: the S* chain rule verbatim -- updates into
//   each block chained by ascending source, chain tail -> consumer.  This
//   serializes the additive gemms per block (deterministic summation order,
//   lock-free execution), the same trade S* makes in 1-D.
#pragma once

#include "symbolic/blocks.h"
#include "symbolic/compact_storage.h"
#include "taskgraph/tasks.h"

namespace plu::taskgraph {

enum class GraphKind { kSStar, kSStarProgramOrder, kEforest };

struct TaskGraph {
  TaskList tasks;
  GraphKind kind = GraphKind::kEforest;
  std::vector<std::vector<int>> succ;  // successors by task id
  std::vector<int> indegree;
  /// Per-task flop estimates, filled by build_task_graph at BOTH
  /// granularities -- they weight the critical-path (bottom-level)
  /// priorities of the work-stealing executor (rt::execute_task_graph).
  /// The full column-granularity cost model (which also carries panel
  /// message footprints for the simulator) lives in taskgraph/costs.h;
  /// build_task_graph_from_compact has no block widths and leaves this
  /// empty.
  std::vector<double> flops;
  /// Per-task output footprint, filled at BLOCK granularity only.
  std::vector<double> output_bytes;
  double total_flops = 0.0;

  Granularity granularity() const { return tasks.granularity(); }
  int size() const { return tasks.size(); }
  long num_edges() const;
};

TaskGraph build_task_graph(const symbolic::BlockStructure& bs, GraphKind kind,
                           Granularity granularity = Granularity::kColumn);

/// Team-parallel variant.  Per-stage edge lists are built concurrently
/// (succ vectors are stage-owned so their ordering is preserved; cross-stage
/// indegree bumps are commutative atomic increments) and the cost
/// annotation fans out per task with a sequential in-order total, so the
/// graph -- edges, ordering, indegrees, flops, total -- is bit-identical to
/// the sequential build.  The S* chain rule itself stays sequential (a hash
/// map threaded in id order).
TaskGraph build_task_graph(const symbolic::BlockStructure& bs, GraphKind kind,
                           Granularity granularity, rt::Team& team);

/// The paper's third future-work item: "use the extended LU eforest for
/// more effective task dependence representation".  This builds the SAME
/// eforest dependence graph as build_task_graph(kEforest), but derives the
/// task set and the edges from the compact eforest annotations of Section 2
/// (per-row first L nonzeros and per-column U-subtree leaves) instead of
/// the explicit block pattern:
///   * the updates into column k are the ancestor-closure of the column's
///     leaves (Theorems 1-2), reconstructed by climbing parent pointers;
///   * rule 4/5 edges fall out of the same climb.
/// Tests assert graph equality with the pattern-based construction -- the
/// compact annotations carry exactly the dependence information.
TaskGraph build_task_graph_from_compact(const symbolic::CompactStorage& cs,
                                        int num_block_columns);

/// 2-D block-cyclic owner map for a pr x pc process grid over a
/// block-granularity graph: a task with target block (i, j) runs on
/// (i mod pr) * pc + (j mod pc).  FactorDiag, FactorL and ComputeU own
/// their output block; UpdateBlock owns (i, j).
std::vector<int> block_cyclic_owners(const TaskGraph& g, int pr, int pc);

std::string to_string(GraphKind k);

}  // namespace plu::taskgraph
