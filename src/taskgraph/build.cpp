#include "taskgraph/build.h"

#include <algorithm>
#include <cassert>

namespace plu::taskgraph {

long TaskGraph::num_edges() const {
  long e = 0;
  for (const auto& s : succ) e += static_cast<long>(s.size());
  return e;
}

TaskGraph build_task_graph(const symbolic::BlockStructure& bs, GraphKind kind) {
  const int nb = bs.num_blocks();
  std::vector<std::vector<int>> u_targets(nb);
  for (int k = 0; k < nb; ++k) u_targets[k] = bs.u_blocks(k);

  TaskGraph g;
  g.kind = kind;
  g.tasks = TaskList(u_targets);
  g.succ.assign(g.size(), {});
  g.indegree.assign(g.size(), 0);
  auto add_edge = [&](int from, int to) {
    g.succ[from].push_back(to);
    ++g.indegree[to];
  };

  // Common rule: F(k) -> U(k, j).
  for (int k = 0; k < nb; ++k) {
    auto [b, e] = g.tasks.update_range(k);
    for (int id = b; id < e; ++id) {
      add_edge(g.tasks.factor_id(k), id);
    }
  }

  if (kind == GraphKind::kSStar || kind == GraphKind::kSStarProgramOrder) {
    // Chain updates into each target by ascending source index; the target's
    // Factor waits for the tail of the chain.
    std::vector<int> last_update(nb, -1);  // per target column j
    // Update ids are grouped by source k ascending, so scanning k ascending
    // visits each target's updates in ascending source order.
    for (int k = 0; k < nb; ++k) {
      auto [b, e] = g.tasks.update_range(k);
      for (int id = b; id < e; ++id) {
        int j = g.tasks.task(id).j;
        if (last_update[j] != -1) {
          add_edge(last_update[j], id);
        }
        last_update[j] = id;
      }
    }
    for (int j = 0; j < nb; ++j) {
      if (last_update[j] != -1) {
        add_edge(last_update[j], g.tasks.factor_id(j));
      }
    }
    if (kind == GraphKind::kSStarProgramOrder) {
      // Sequential inner-loop order: panel k's fan-out is a chain.
      for (int k = 0; k < nb; ++k) {
        auto [b, e] = g.tasks.update_range(k);
        for (int id = b; id + 1 < e; ++id) {
          add_edge(id, id + 1);
        }
      }
    }
  } else {
    // Eforest rules 4 and 5.  On a fully George-Ng-closed block pattern,
    // Theorem 1 guarantees U(parent(i), k) exists whenever U(i, k) does and
    // parent(i) < k; the production pattern is only pairwise-closed (see
    // symbolic/blocks.h), so the rule generalizes to the NEAREST ancestor
    // with an update into k -- the chain skips ancestors whose blocks in
    // column k are structurally absent (nothing to order against there).
    const graph::Forest& t = bs.beforest;
    for (int i = 0; i < nb; ++i) {
      auto [b, e] = g.tasks.update_range(i);
      for (int id = b; id < e; ++id) {
        int k = g.tasks.task(id).j;
        int a = t.parent(i);
        // parent(i) <= k always: parent is the first off-diagonal entry of
        // row i of the block Ubar, and (i, k) is such an entry.
        while (a != graph::kNone && a < k) {
          int next = g.tasks.update_id(a, k);
          if (next != -1) {
            add_edge(id, next);
            break;
          }
          a = t.parent(a);
        }
        if (a == k) {
          add_edge(id, g.tasks.factor_id(k));
        }
      }
    }
  }
  return g;
}

TaskGraph build_task_graph_from_compact(const symbolic::CompactStorage& cs,
                                        int num_block_columns) {
  const int nb = num_block_columns;
  assert(cs.size() == nb);
  const graph::Forest& t = cs.eforest();

  // Update sources per target column: the ancestor closure of the column's
  // U-subtree leaves (exactly Section 2's reconstruction).  Collected per
  // target, then regrouped by source for the TaskList layout.
  std::vector<std::vector<int>> u_targets(nb);
  {
    std::vector<int> mark(nb, -1);
    for (int k = 0; k < nb; ++k) {
      for (int leaf : cs.col_leaves(k)) {
        int v = leaf;
        while (v != graph::kNone && v < k && mark[v] != k) {
          mark[v] = k;
          u_targets[v].push_back(k);
          v = t.parent(v);
        }
      }
    }
    for (auto& targets : u_targets) std::sort(targets.begin(), targets.end());
  }

  TaskGraph g;
  g.kind = GraphKind::kEforest;
  g.tasks = TaskList(u_targets);
  g.succ.assign(g.size(), {});
  g.indegree.assign(g.size(), 0);
  auto add_edge = [&](int from, int to) {
    g.succ[from].push_back(to);
    ++g.indegree[to];
  };
  for (int i = 0; i < nb; ++i) {
    auto [b, e] = g.tasks.update_range(i);
    const int parent = t.parent(i);
    for (int id = b; id < e; ++id) {
      add_edge(g.tasks.factor_id(i), id);
      const int k = g.tasks.task(id).j;
      if (parent == graph::kNone) continue;
      if (parent == k) {
        add_edge(id, g.tasks.factor_id(k));
      } else if (parent < k) {
        // Ancestor closure of the reconstruction guarantees the parent's
        // update into k exists -- no climb needed, unlike the raw-pattern
        // construction.
        int next = g.tasks.update_id(parent, k);
        assert(next != -1);
        if (next != -1) add_edge(id, next);
      }
    }
  }
  return g;
}

std::string to_string(GraphKind k) {
  switch (k) {
    case GraphKind::kSStar:
      return "sstar";
    case GraphKind::kSStarProgramOrder:
      return "sstar-program-order";
    case GraphKind::kEforest:
      return "eforest";
  }
  return "?";
}

}  // namespace plu::taskgraph
