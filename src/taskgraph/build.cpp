#include "taskgraph/build.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "blas/level3.h"

namespace plu::taskgraph {

long TaskGraph::num_edges() const {
  long e = 0;
  for (const auto& s : succ) e += static_cast<long>(s.size());
  return e;
}

namespace {

void add_edge(TaskGraph& g, int from, int to) {
  g.succ[from].push_back(to);
  ++g.indegree[to];
}

/// Edge insertion from inside a parallel region where the SOURCE list is
/// lane-owned but the target's indegree may be bumped by several lanes.
/// Commutative counter increments keep the final indegree (and the owned
/// succ ordering) bit-identical to the sequential build.
void add_edge_atomic_indegree(TaskGraph& g, int from, int to) {
  g.succ[from].push_back(to);
  rt::atomic_add_int(&g.indegree[to], 1);
}

/// The target an update task accumulates into, as a dense key: the block
/// column at column granularity, the individual block at block granularity.
long target_key(const Task& t, int nb) {
  return t.kind == TaskKind::kUpdate ? t.j
                                     : static_cast<long>(t.i) * nb + t.j;
}

/// The task that consumes an update's target once all updates landed: the
/// target column's Factor in 1-D; in 2-D the factor task of block (i, j) --
/// FactorDiag on the diagonal, FactorL below it, ComputeU above it.
int consumer_id(const TaskList& tl, const Task& t) {
  if (t.kind == TaskKind::kUpdate) return tl.factor_id(t.j);
  if (t.i == t.j) return tl.factor_id(t.j);
  if (t.i > t.j) return tl.factor_l_id(t.i, t.j);
  return tl.compute_u_id(t.i, t.j);
}

/// The S* chain rule, shared by both granularities: updates into each
/// target are chained in ascending source index (update ids are grouped by
/// source stage, so ascending id IS ascending source), and the target's
/// consumer waits for the tail of the chain.
void add_sstar_chains(TaskGraph& g, int nb) {
  std::unordered_map<long, int> last;  // target key -> latest update id
  for (int id = 0; id < g.size(); ++id) {
    const Task& t = g.tasks.task(id);
    if (!is_update(t.kind)) continue;
    auto [it, fresh] = last.try_emplace(target_key(t, nb), id);
    if (!fresh) {
      add_edge(g, it->second, id);
      it->second = id;
    }
  }
  for (int id = 0; id < g.size(); ++id) {
    const Task& t = g.tasks.task(id);
    if (!is_update(t.kind)) continue;
    if (last.at(target_key(t, nb)) != id) continue;  // not the chain tail
    int consumer = consumer_id(g.tasks, t);
    assert(consumer != -1 && "pairwise closure violated: consumer missing");
    if (consumer != -1) add_edge(g, id, consumer);
  }
}

/// The program-order rule, shared by both granularities: each source
/// stage's update fan-out is a chain (the sequential inner loop of the
/// reference algorithm).  Stages touch only their own update-id range, so
/// the fan-out over stages is write-disjoint.
void add_program_order_chains(TaskGraph& g, int nb, rt::Team& team) {
  team.parallel_for(g.size(), nb, [&](int kb, int ke, int) {
    for (int k = kb; k < ke; ++k) {
      auto [b, e] = g.tasks.update_range(k);
      for (int id = b; id + 1 < e; ++id) {
        add_edge(g, id, id + 1);
      }
    }
  });
}

/// Column-granularity eforest rules 4 and 5.  On a fully George-Ng-closed
/// block pattern, Theorem 1 guarantees U(parent(i), k) exists whenever
/// U(i, k) does and parent(i) < k; the production pattern is only
/// pairwise-closed (see symbolic/blocks.h), so the rule generalizes to the
/// NEAREST ancestor with an update into k -- the chain skips ancestors
/// whose blocks in column k are structurally absent (nothing to order
/// against there).
void add_eforest_column_rules(TaskGraph& g, const graph::Forest& t, int nb,
                              rt::Team& team) {
  // Fanned out over source stages: each stage owns its update ids' succ
  // lists; the edge TARGETS live in other stages, so their indegrees are
  // bumped atomically.
  team.parallel_for(g.size(), nb, [&](int ib, int ie, int) {
    for (int i = ib; i < ie; ++i) {
      auto [b, e] = g.tasks.update_range(i);
      for (int id = b; id < e; ++id) {
        int k = g.tasks.task(id).j;
        int a = t.parent(i);
        // parent(i) <= k always: parent is the first off-diagonal entry of
        // row i of the block Ubar, and (i, k) is such an entry.
        while (a != graph::kNone && a < k) {
          int next = g.tasks.update_id(a, k);
          if (next != -1) {
            add_edge_atomic_indegree(g, id, next);
            break;
          }
          a = t.parent(a);
        }
        if (a == k) {
          add_edge_atomic_indegree(g, id, g.tasks.factor_id(k));
        }
      }
    }
  });
}

/// Block-granularity least-necessary rule: each UpdateBlock feeds the
/// single task consuming its target block directly; updates into the same
/// block from different sources stay unordered (additive gemms commute).
void add_eforest_block_rules(TaskGraph& g, rt::Team& team) {
  // Each task id's succ list is owned by the lane scanning it; consumers
  // are shared across lanes (atomic indegree).
  team.parallel_for(g.size(), g.size(), [&](int ib, int ie, int) {
    for (int id = ib; id < ie; ++id) {
      const Task& t = g.tasks.task(id);
      if (t.kind != TaskKind::kUpdateBlock) continue;
      int consumer = consumer_id(g.tasks, t);
      assert(consumer != -1 && "pairwise closure violated: consumer missing");
      if (consumer != -1) add_edge_atomic_indegree(g, id, consumer);
    }
  });
}

/// Operand edges of the block granularity (present under every GraphKind):
/// a stage's diagonal factor feeds its triangular solves, which feed each
/// UpdateBlock they supply.
void add_block_operand_edges(TaskGraph& g, int nb, rt::Team& team) {
  // Every edge of this rule stays inside one stage (sources FD/FL/CU and
  // targets are all stage-k tasks, factor_id(k) == k included), so the
  // fan-out over stages is entirely write-disjoint -- no atomics needed.
  team.parallel_for(g.size(), nb, [&](int kb, int ke, int) {
    for (int k = kb; k < ke; ++k) {
      auto [b, e] = g.tasks.stage_range(k);
      for (int id = b; id < e; ++id) {
        const Task& t = g.tasks.task(id);
        if (t.kind == TaskKind::kUpdateBlock) {
          add_edge(g, g.tasks.factor_l_id(t.i, t.k), id);
          add_edge(g, g.tasks.compute_u_id(t.k, t.j), id);
        } else {
          add_edge(g, g.tasks.factor_id(k), id);
        }
      }
    }
  });
}

/// Per-task flop estimates of the column granularity: the same kernel-flop
/// formulas as taskgraph/costs.cpp (whose TaskCosts additionally carry
/// panel message footprints for the simulator).  Annotated here so the
/// work-stealing executor can weight its critical-path priorities from the
/// graph alone.
void annotate_column_costs(TaskGraph& g, const symbolic::BlockStructure& bs,
                           const std::vector<std::vector<int>>& lblocks,
                           rt::Team& team) {
  const auto& part = bs.part;
  const int nb = bs.num_blocks();
  std::vector<int> prows(nb);
  team.parallel_for(nb, nb, [&](int kb, int ke, int) {
    for (int k = kb; k < ke; ++k) {
      int rows = part.width(k);
      for (int t : lblocks[k]) rows += part.width(t);
      prows[k] = rows;
    }
  });
  g.flops.assign(g.size(), 0.0);
  team.parallel_for(g.size(), g.size(), [&](int ib, int ie, int) {
    for (int id = ib; id < ie; ++id) {
      const Task& t = g.tasks.task(id);
      const int wk = part.width(t.k);
      if (t.kind == TaskKind::kFactor) {
        g.flops[id] = blas::getrf_flops(prows[t.k], wk);
      } else {
        const int wj = part.width(t.j);
        g.flops[id] = blas::trsm_flops(blas::Side::Left, wk, wj) +
                      blas::gemm_flops(prows[t.k] - wk, wj, wk);
      }
    }
  });
  // Floating-point addition is not associative: total_flops is summed
  // sequentially in id order so the parallel build stays bit-identical.
  for (int id = 0; id < g.size(); ++id) g.total_flops += g.flops[id];
}

/// Per-task flop/byte costs of the block granularity (the column cost
/// model, which also needs panel footprints, lives in taskgraph/costs.h).
void annotate_block_costs(TaskGraph& g, const symbolic::BlockStructure& bs,
                          rt::Team& team) {
  const auto& part = bs.part;
  g.flops.assign(g.size(), 0.0);
  g.output_bytes.assign(g.size(), 0.0);
  team.parallel_for(g.size(), g.size(), [&](int ib, int ie, int) {
    for (int id = ib; id < ie; ++id) {
      const Task& t = g.tasks.task(id);
      const int wi = part.width(t.i);
      const int wk = part.width(t.k);
      const int wj = part.width(t.j);
      switch (t.kind) {
        case TaskKind::kFactorDiag:
          g.flops[id] = blas::getrf_flops(wk, wk);
          g.output_bytes[id] = 8.0 * wk * wk;
          break;
        case TaskKind::kFactorL:
          g.flops[id] = blas::trsm_flops(blas::Side::Right, wi, wk);
          g.output_bytes[id] = 8.0 * wi * wk;
          break;
        case TaskKind::kComputeU:
          g.flops[id] = blas::trsm_flops(blas::Side::Left, wk, wj);
          g.output_bytes[id] = 8.0 * wk * wj;
          break;
        case TaskKind::kUpdateBlock:
          g.flops[id] = blas::gemm_flops(wi, wj, wk);
          g.output_bytes[id] = 8.0 * wi * wj;
          break;
        default:
          break;
      }
    }
  });
  // Sequential in-order sum: see annotate_column_costs.
  for (int id = 0; id < g.size(); ++id) g.total_flops += g.flops[id];
}

}  // namespace

TaskGraph build_task_graph(const symbolic::BlockStructure& bs, GraphKind kind,
                           Granularity granularity) {
  // A single-lane team runs every parallel_for inline on this thread, so
  // the sequential entry point is the same code path minus the fan-out.
  rt::Team seq(1);
  return build_task_graph(bs, kind, granularity, seq);
}

TaskGraph build_task_graph(const symbolic::BlockStructure& bs, GraphKind kind,
                           Granularity granularity, rt::Team& team) {
  const int nb = bs.num_blocks();
  std::vector<std::vector<int>> lblocks(nb), ublocks(nb);
  team.parallel_for(bs.bpattern.nnz(), nb, [&](int kb, int ke, int) {
    for (int k = kb; k < ke; ++k) {
      lblocks[k] = bs.l_blocks(k);
      ublocks[k] = bs.u_blocks(k);
    }
  });

  TaskGraph g;
  g.kind = kind;
  g.tasks = granularity == Granularity::kColumn
                ? TaskList(ublocks)
                : TaskList::block_granularity(lblocks, ublocks);
  g.succ.assign(g.size(), {});
  g.indegree.assign(g.size(), 0);

  // Each phase below is barrier-delimited, and within a phase indegree
  // slots are touched either only by their owning stage (plain writes) or
  // only atomically -- the two modes never mix inside one parallel region.
  if (granularity == Granularity::kColumn) {
    // Common rule: F(k) -> U(k, j).  succ[factor_id(k)] and the update ids
    // of stage k are stage-owned, so the fan-out needs no atomics.
    team.parallel_for(g.size(), nb, [&](int kb, int ke, int) {
      for (int k = kb; k < ke; ++k) {
        auto [b, e] = g.tasks.update_range(k);
        for (int id = b; id < e; ++id) {
          add_edge(g, g.tasks.factor_id(k), id);
        }
      }
    });
  } else {
    add_block_operand_edges(g, nb, team);
  }

  if (kind == GraphKind::kSStar || kind == GraphKind::kSStarProgramOrder) {
    // The S* chain rule threads one hash map through the whole task list in
    // id order -- inherently sequential, and cheap relative to the rest.
    add_sstar_chains(g, nb);
    if (kind == GraphKind::kSStarProgramOrder) {
      add_program_order_chains(g, nb, team);
    }
  } else if (granularity == Granularity::kColumn) {
    add_eforest_column_rules(g, bs.beforest, nb, team);
  } else {
    add_eforest_block_rules(g, team);
  }

  if (granularity == Granularity::kBlock) {
    annotate_block_costs(g, bs, team);
  } else {
    annotate_column_costs(g, bs, lblocks, team);
  }
  return g;
}

TaskGraph build_task_graph_from_compact(const symbolic::CompactStorage& cs,
                                        int num_block_columns) {
  const int nb = num_block_columns;
  assert(cs.size() == nb);
  const graph::Forest& t = cs.eforest();

  // Update sources per target column: the ancestor closure of the column's
  // U-subtree leaves (exactly Section 2's reconstruction).  Collected per
  // target, then regrouped by source for the TaskList layout.
  std::vector<std::vector<int>> u_targets(nb);
  {
    std::vector<int> mark(nb, -1);
    for (int k = 0; k < nb; ++k) {
      for (int leaf : cs.col_leaves(k)) {
        int v = leaf;
        while (v != graph::kNone && v < k && mark[v] != k) {
          mark[v] = k;
          u_targets[v].push_back(k);
          v = t.parent(v);
        }
      }
    }
    for (auto& targets : u_targets) std::sort(targets.begin(), targets.end());
  }

  TaskGraph g;
  g.kind = GraphKind::kEforest;
  g.tasks = TaskList(u_targets);
  g.succ.assign(g.size(), {});
  g.indegree.assign(g.size(), 0);
  for (int i = 0; i < nb; ++i) {
    auto [b, e] = g.tasks.update_range(i);
    const int parent = t.parent(i);
    for (int id = b; id < e; ++id) {
      add_edge(g, g.tasks.factor_id(i), id);
      const int k = g.tasks.task(id).j;
      if (parent == graph::kNone) continue;
      if (parent == k) {
        add_edge(g, id, g.tasks.factor_id(k));
      } else if (parent < k) {
        // Ancestor closure of the reconstruction guarantees the parent's
        // update into k exists -- no climb needed, unlike the raw-pattern
        // construction.
        int next = g.tasks.update_id(parent, k);
        assert(next != -1);
        if (next != -1) add_edge(g, id, next);
      }
    }
  }
  return g;
}

std::vector<int> block_cyclic_owners(const TaskGraph& g, int pr, int pc) {
  std::vector<int> owners(g.size());
  for (int id = 0; id < g.size(); ++id) {
    const Task& t = g.tasks.task(id);
    // Every block-granularity task owns its target block; the column
    // granularity degenerates to the target block column's diagonal.
    owners[id] = (t.i % pr) * pc + (t.j % pc);
  }
  return owners;
}

std::string to_string(GraphKind k) {
  switch (k) {
    case GraphKind::kSStar:
      return "sstar";
    case GraphKind::kSStarProgramOrder:
      return "sstar-program-order";
    case GraphKind::kEforest:
      return "eforest";
  }
  return "?";
}

}  // namespace plu::taskgraph
