// 2-D task decomposition (the paper's first "future work" item: "extend our
// methods for a 2D partitioning of the matrix"; realized later in the
// literature by S+ 2.0, Shen/Jiao/Yang's elimination-forest-guided 2-D
// sparse LU).
//
// Where the 1-D model has one Factor task per block column and one Update
// per U block, the 2-D model splits both along the row partition:
//
//   FactorDiag(k)      getrf with (block-local) pivoting on B_kk;
//   FactorL(i, k)      L_ik := B_ik U_kk^{-1}            (i > k, L block)
//   ComputeU(k, j)     U_kj := L_kk^{-1} P_k B_kj        (j > k, U block)
//   UpdateBlock(i,k,j) B_ij -= L_ik U_kj                 (gemm per block)
//
// Dependences:
//   FD(k) -> FL(i, k) and FD(k) -> CU(k, j);
//   FL(i, k) -> UB(i, k, j), CU(k, j) -> UB(i, k, j);
//   UB(i, k, j) -> the task that consumes block (i, j):
//     FD(j) when i == j;  FL(i, j) when i > j;  CU(j, i)... no: CU(i, j)
//     when i < j (block (i, j) is a U block of row i).
//   Updates into the same block from different source panels are unordered
//   (additive); the chain-vs-tree distinction of the 1-D Section 4 story
//   collapses because the consumer edge already gives the least necessary
//   ordering at this granularity.
//
// This module exists at the cost-model level: it builds the 2-D task graph
// and its flop/byte costs from the same BlockStructure so the simulator can
// contrast 1-D vs 2-D scalability (bench_ablation_2d).  The 2-D *numeric*
// execution (block-local pivoting with row swaps confined to the diagonal
// block, a la S+ 2.0's restricted pivoting) is out of scope here and noted
// as such in DESIGN.md.
#pragma once

#include <string>
#include <vector>

#include "symbolic/blocks.h"
#include "taskgraph/build.h"

namespace plu::taskgraph {

enum class Task2DKind { kFactorDiag, kFactorL, kComputeU, kUpdateBlock };

struct Task2D {
  Task2DKind kind = Task2DKind::kFactorDiag;
  int i = 0;  // row block (== k for FactorDiag / ComputeU)
  int k = 0;  // pivot block (the panel stage)
  int j = 0;  // column block (== k for FactorDiag / FactorL)
};

std::string to_string(const Task2D& t);

/// 2-D task graph over a block structure, with costs, in one container
/// (tasks are heterogeneous enough that reusing TaskList would obscure it).
struct TaskGraph2D {
  std::vector<Task2D> tasks;
  std::vector<std::vector<int>> succ;
  std::vector<int> indegree;
  std::vector<double> flops;
  std::vector<double> output_bytes;
  double total_flops = 0.0;

  int size() const { return static_cast<int>(tasks.size()); }
  long num_edges() const;
};

TaskGraph2D build_task_graph_2d(const symbolic::BlockStructure& bs);

/// Topological order; empty if cyclic (it never is, by construction).
std::vector<int> topological_order(const TaskGraph2D& g);

/// Weighted critical path length (flops).
double critical_path_2d(const TaskGraph2D& g);

/// Bottom levels for list scheduling.
std::vector<double> bottom_levels_2d(const TaskGraph2D& g);

/// 2-D block-cyclic owner map for a pr x pc process grid: a task with
/// target block (i, j) runs on (i mod pr) * pc + (j mod pc).  FactorDiag,
/// FactorL and ComputeU own their output block; UpdateBlock owns (i, j).
std::vector<int> owners_2d(const TaskGraph2D& g, int pr, int pc);

}  // namespace plu::taskgraph
