// Nested dissection ordering.
//
// Recursive graph bisection: find a small vertex separator, order the two
// halves first (recursively) and the separator last.  On grid-like graphs
// this both minimizes fill asymptotically and -- the property that matters
// for this repository's task-graph experiments -- produces BALANCED, BUSHY
// elimination forests: the two halves are independent subtrees, which is
// exactly the parallelism Section 4's dependence graph exposes.
//
// The bisection here is level-set based (no multilevel machinery): BFS from
// a pseudo-peripheral vertex, cut at the median level, take the boundary of
// one side as the separator.  Simple, deterministic, and good enough to
// beat minimum degree on tree parallelism for mesh-like matrices.
#pragma once

#include "matrix/csc.h"
#include "matrix/permutation.h"

namespace plu::ordering {

struct NestedDissectionOptions {
  /// Subgraphs at or below this size are ordered by simple minimum degree.
  int leaf_size = 32;
};

/// Nested dissection on a symmetric pattern (symmetrized internally).
Permutation nested_dissection(const Pattern& symmetric_pattern,
                              const NestedDissectionOptions& opt = {});

}  // namespace plu::ordering
