// Nested dissection ordering.
//
// Recursive graph bisection: find a small vertex separator, order the two
// halves first (recursively) and the separator last.  On grid-like graphs
// this both minimizes fill asymptotically and -- the property that matters
// for this repository's task-graph experiments -- produces BALANCED, BUSHY
// elimination forests: the two halves are independent subtrees, which is
// exactly the parallelism Section 4's dependence graph exposes.
//
// The bisection here is level-set based (no multilevel machinery): BFS from
// a pseudo-peripheral vertex, cut at the median level, take the boundary of
// one side as the separator -- only cut-level vertices actually adjacent to
// the far side separate anything; interior cut-level vertices join their
// half (SeparatorRule::kBoundary, the default).  Separator vertices are
// minimum-degree ordered among themselves.  Simple, deterministic, and good
// enough to beat minimum degree on tree parallelism for mesh-like matrices.
#pragma once

#include "matrix/csc.h"
#include "matrix/permutation.h"

namespace plu::ordering {

struct NestedDissectionOptions {
  /// Subgraphs at or below this size are ordered by simple minimum degree.
  int leaf_size = 32;
  /// Which cut-level vertices become the separator.  kCutLevel is the
  /// pre-boundary-fix behavior (the ENTIRE cut level, oversized), kept
  /// selectable so the regression test can compare the two directly.
  enum class SeparatorRule { kBoundary, kCutLevel };
  SeparatorRule separator = SeparatorRule::kBoundary;
};

/// Shape record of one nested-dissection run, for tests and tuning.
struct NestedDissectionStats {
  int top_separator = -1;       // separator size of the first bisection
  long separator_vertices = 0;  // total separator vertices over all levels
  int bisections = 0;           // separator-producing splits
  int clique_fallbacks = 0;     // max_level < 2 -> leaf-ordered as a whole
  int depth_cap_hits = 0;       // recursion depth > 64 -> leaf-ordered
  int max_depth = 0;            // deepest recursion reached
};

/// Nested dissection on a symmetric pattern (symmetrized internally).
Permutation nested_dissection(const Pattern& symmetric_pattern,
                              const NestedDissectionOptions& opt = {},
                              NestedDissectionStats* stats = nullptr);

}  // namespace plu::ordering
