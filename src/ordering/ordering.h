// Fill-reducing column ordering dispatch for the unsymmetric LU pipeline.
//
// All methods operate on the A^T A pattern, matching the paper's choice
// ("we use the minimum degree algorithm on A^T A").  Natural and RCM exist
// for the A4 ordering ablation; kAmdAtA is the supervariable engine for
// hub-heavy patterns (amd.h); kAuto lets the feature-driven policy
// (engine.h) pick, recording its decision for the reports.
#pragma once

#include <string>

#include "matrix/csc.h"
#include "matrix/permutation.h"

namespace plu::rt {
class Team;
}

namespace plu::ordering {

enum class Method {
  kNatural,               // identity
  kMinimumDegreeAtA,      // the paper's choice (exact degrees, hub-guarded)
  kAmdAtA,                // approximate minimum degree with supervariables
  kRcmAtA,                // reverse Cuthill-McKee on A^T A
  kNestedDissectionAtA,   // recursive bisection on A^T A (bushy forests)
  kAuto,                  // feature-driven policy picks one of the above
};

/// Cheap structural features of the input pattern A (computed in one O(nnz)
/// scan), the evidence the kAuto policy decides on.
struct StructuralFeatures {
  int n = 0;
  long nnz = 0;
  double density = 0.0;         // nnz / n^2
  double avg_degree = 0.0;      // nnz / n
  int max_degree = 0;           // max column degree
  double degree_skew = 0.0;     // max_degree / avg_degree (hub indicator)
  double bandwidth_ratio = 0.0; // max |i - j| over entries (bandwidth) / n
};

/// What the dispatch decided and why -- recorded in Analysis and surfaced
/// through AnalysisReport / FactorizationReport.
struct Decision {
  Method requested = Method::kMinimumDegreeAtA;
  Method chosen = Method::kMinimumDegreeAtA;  // == requested unless kAuto
  std::string engine;                         // OrderingEngine::name() that ran
  StructuralFeatures features;
  /// Dry-run record (kAuto with Controls::dry_run only): exact Cholesky fill
  /// of the policy pick and its runner-up; the smaller one wins.
  bool dry_run = false;
  long dry_run_fill_chosen = 0;
  long dry_run_fill_alternative = 0;
};

/// Knobs for the ordering dispatch.  The team only affects wall clock, never
/// the permutation (parallel engines are bit-deterministic across team
/// sizes); the dry-run changes WHICH engine kAuto runs but is itself
/// deterministic.
struct Controls {
  rt::Team* team = nullptr;
  /// Break kAuto policy calls with an exact Cholesky-fill probe of the pick
  /// vs its runner-up.  Costs two extra orderings; gated by dry_run_max_n.
  bool dry_run = false;
  int dry_run_max_n = 20000;
};

/// Column permutation for LU on `a` per the chosen method.
Permutation compute_column_ordering(const Pattern& a, Method method);

/// Full-control variant: threads the analysis team into parallel engines and
/// reports the decision (either output may be defaulted/null).
Permutation compute_column_ordering(const Pattern& a, Method method,
                                    const Controls& ctl, Decision* decision);

std::string to_string(Method m);

/// Parses a CLI/bench spelling: natural | md | mindeg | amd | rcm | nd |
/// auto.  Returns false (and leaves *out alone) for anything else.
bool parse_method(const std::string& s, Method* out);

}  // namespace plu::ordering
