// Fill-reducing column ordering dispatch for the unsymmetric LU pipeline.
//
// All methods operate on the A^T A pattern, matching the paper's choice
// ("we use the minimum degree algorithm on A^T A").  Natural and RCM exist
// for the A4 ordering ablation.
#pragma once

#include <string>

#include "matrix/csc.h"
#include "matrix/permutation.h"

namespace plu::ordering {

enum class Method {
  kNatural,               // identity
  kMinimumDegreeAtA,      // the paper's choice
  kRcmAtA,                // reverse Cuthill-McKee on A^T A
  kNestedDissectionAtA,   // recursive bisection on A^T A (bushy forests)
};

/// Column permutation for LU on `a` per the chosen method.
Permutation compute_column_ordering(const Pattern& a, Method method);

std::string to_string(Method m);

}  // namespace plu::ordering
