// Approximate minimum degree (AMD) on a symmetric pattern.
//
// The exact quotient-graph engine (minimum_degree.h) recomputes exact
// external degrees after every elimination round, which degenerates to
// quadratic work on hub columns (power-law / circuit-rail patterns: one
// elimination touches thousands of neighbors, each degree refresh rescans
// the hub element).  This engine is the classic AMD answer, following the
// multithreading recipe of the parallel-AMD paper (Chang/Buluc/Demmel,
// PAPERS.md):
//   - supervariables: indistinguishable variables (identical quotient-graph
//     adjacency) are merged and eliminated together, so a hub clique
//     collapses to one weighted variable instead of thousands of singletons;
//   - approximate external degrees: d(u) <= |A_u| + sum_e |L_e| without
//     deduplicating across element boundaries -- O(|adj|) per refresh
//     instead of O(reach);
//   - mass elimination: a supervariable whose approximate degree drops to
//     zero has no live neighbors outside itself and is eliminated on the
//     spot, no pivot search needed;
//   - multiple-elimination rounds: every round eliminates an independent set
//     of minimum-degree pivots before any degree refresh (bushy eforests,
//     and the substrate the parallel refresh fans out over).
//
// DETERMINISM: the returned permutation is a pure function of the pattern.
// The team only parallelizes the per-element boundary compaction and the
// per-variable degree/hash refresh between rounds -- loops whose iterations
// write disjoint slots -- while every decision (pivot selection, supervariable
// merging, mass elimination) runs sequentially over deterministically ordered
// data.  Orderings are therefore bit-identical for any thread count,
// the same contract as the parallel analysis pipeline (DESIGN.md section 11),
// gated by ParallelAmd.* in test_ordering.cpp.
#pragma once

#include "matrix/csc.h"
#include "matrix/permutation.h"

namespace plu::rt {
class Team;
}

namespace plu::ordering {

/// AMD elimination order for a symmetric pattern (symmetrized internally,
/// diagonal ignored).  Gather form: old_of(k) = variable eliminated k-th.
/// `team` fans out the inter-round refresh; results are identical with or
/// without it.
Permutation approximate_minimum_degree(const Pattern& symmetric_pattern,
                                       rt::Team* team = nullptr);

/// Convenience for unsymmetric LU: AMD on the A^T A pattern.
Permutation approximate_minimum_degree_ata(const Pattern& a,
                                           rt::Team* team = nullptr);

/// True when a symmetric graph's degree profile would send the EXACT
/// minimum-degree engine quadratic (large order + hub vertices whose degree
/// dwarfs the average).  minimum_degree_guarded() routes such graphs here.
bool hub_heavy(const Pattern& symmetric_graph);

}  // namespace plu::ordering
