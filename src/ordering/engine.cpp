#include "ordering/engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "graph/etree.h"
#include "ordering/amd.h"
#include "ordering/minimum_degree.h"
#include "ordering/nested_dissection.h"
#include "ordering/rcm.h"

namespace plu::ordering {

namespace {

class NaturalEngine final : public OrderingEngine {
 public:
  std::string name() const override { return "natural"; }
  Permutation order(const Pattern& g, rt::Team*) const override {
    return Permutation(g.cols);
  }
};

class MinimumDegreeEngine final : public OrderingEngine {
 public:
  std::string name() const override { return "minimum-degree"; }
  Permutation order(const Pattern& g, rt::Team* team) const override {
    return minimum_degree_guarded(g, team);
  }
};

class AmdEngine final : public OrderingEngine {
 public:
  std::string name() const override { return "amd"; }
  Permutation order(const Pattern& g, rt::Team* team) const override {
    return approximate_minimum_degree(g, team);
  }
};

class RcmEngine final : public OrderingEngine {
 public:
  std::string name() const override { return "rcm"; }
  Permutation order(const Pattern& g, rt::Team*) const override {
    return reverse_cuthill_mckee(g);
  }
};

class NestedDissectionEngine final : public OrderingEngine {
 public:
  std::string name() const override { return "nested-dissection"; }
  Permutation order(const Pattern& g, rt::Team*) const override {
    return nested_dissection(g);
  }
};

}  // namespace

const OrderingEngine& engine_for(Method m) {
  static const NaturalEngine natural;
  static const MinimumDegreeEngine md;
  static const AmdEngine amd;
  static const RcmEngine rcm;
  static const NestedDissectionEngine nd;
  switch (m) {
    case Method::kNatural:
      return natural;
    case Method::kMinimumDegreeAtA:
      return md;
    case Method::kAmdAtA:
      return amd;
    case Method::kRcmAtA:
      return rcm;
    case Method::kNestedDissectionAtA:
      return nd;
    case Method::kAuto:
      break;  // must be resolved by select_method first
  }
  assert(m != Method::kAuto && "engine_for: resolve kAuto via select_method");
  return md;
}

StructuralFeatures compute_features(const Pattern& a) {
  StructuralFeatures f;
  f.n = a.cols;
  f.nnz = a.nnz();
  if (f.n == 0) return f;
  long band = 0;
  for (int j = 0; j < a.cols; ++j) {
    const int deg = static_cast<int>(a.col_end(j) - a.col_begin(j));
    f.max_degree = std::max(f.max_degree, deg);
    for (const int* it = a.col_begin(j); it != a.col_end(j); ++it) {
      band = std::max(band, static_cast<long>(std::abs(*it - j)));
    }
  }
  f.density = static_cast<double>(f.nnz) / (static_cast<double>(f.n) * f.n);
  f.avg_degree = static_cast<double>(f.nnz) / f.n;
  f.degree_skew = f.avg_degree > 0.0 ? f.max_degree / f.avg_degree : 0.0;
  f.bandwidth_ratio = static_cast<double>(band) / f.n;
  return f;
}

Method select_method(const StructuralFeatures& f) {
  // Small orders: exact minimum degree is both the best-fill and the
  // cheapest option -- the quotient graph never grows enough to hurt.
  if (f.n <= 256) return Method::kMinimumDegreeAtA;
  // Hub-skewed degree profiles (power-law / circuit rails): exact degree
  // updates rescan the hub element per round; AMD's supervariables collapse
  // the hub cliques instead.
  if (f.degree_skew >= 8.0 && f.max_degree >= 64) return Method::kAmdAtA;
  // Thin bands (bandwidth under 1% of n): RCM keeps the band, bounding fill
  // at O(n * band) for an O(nnz) ordering -- and the band profile feeds long
  // supernodes.  Row-major meshes fail this (band ~ n^(1/2) or n^(2/3))
  // and fall through to nested dissection below.
  if (f.bandwidth_ratio <= 0.01 && f.density <= 0.01) return Method::kRcmAtA;
  // Large mesh-like graphs (moderate, even degrees): nested dissection for
  // the bushy, balanced eforests the task graph parallelizes over.
  if (f.n >= 4096 && f.degree_skew < 4.0) return Method::kNestedDissectionAtA;
  return Method::kAmdAtA;
}

Method runner_up(Method chosen) {
  switch (chosen) {
    case Method::kMinimumDegreeAtA:
      return Method::kAmdAtA;
    case Method::kAmdAtA:
      return Method::kMinimumDegreeAtA;
    case Method::kRcmAtA:
      return Method::kMinimumDegreeAtA;
    case Method::kNestedDissectionAtA:
      return Method::kAmdAtA;
    default:
      return Method::kMinimumDegreeAtA;
  }
}

long cholesky_fill(const Pattern& g, const Permutation& p) {
  assert(g.rows == g.cols);
  const int n = g.cols;
  if (n == 0) return 0;
  const Pattern perm = Pattern::symmetrized(g.permuted(p, p));
  const graph::Forest etree = graph::elimination_tree(perm);
  // Row-subtree traversal (Liu): row i of L is the union of the etree paths
  // from each a_ik (k < i) up toward i; each L entry is visited once.
  std::vector<int> mark(n, -1);
  long fill = n;  // diagonal
  for (int i = 0; i < n; ++i) {
    mark[i] = i;
    for (const int* it = perm.col_begin(i); it != perm.col_end(i); ++it) {
      int j = *it;
      if (j >= i) continue;
      while (j != graph::kNone && j < i && mark[j] != i) {
        mark[j] = i;
        ++fill;
        j = etree.parent(j);
      }
    }
  }
  return fill;
}

}  // namespace plu::ordering
