// Reverse Cuthill-McKee ordering (bandwidth reduction), used as a
// comparison point in the A4 ordering ablation.
#pragma once

#include "matrix/csc.h"
#include "matrix/permutation.h"

namespace plu::ordering {

/// RCM on a symmetric pattern; starts each component from a
/// pseudo-peripheral vertex found by repeated BFS.
Permutation reverse_cuthill_mckee(const Pattern& symmetric_pattern);

}  // namespace plu::ordering
