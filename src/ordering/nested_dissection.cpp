#include "ordering/nested_dissection.h"

#include <algorithm>
#include <cassert>

#include "matrix/coo.h"
#include "ordering/minimum_degree.h"

namespace plu::ordering {

namespace {

/// Extracts the subgraph induced by `verts` (local indices 0..k-1).
Pattern induced_subpattern(const Pattern& g, const std::vector<int>& verts,
                           std::vector<int>& global_to_local) {
  for (std::size_t l = 0; l < verts.size(); ++l) {
    global_to_local[verts[l]] = static_cast<int>(l);
  }
  CooMatrix coo(static_cast<int>(verts.size()), static_cast<int>(verts.size()));
  for (std::size_t l = 0; l < verts.size(); ++l) {
    int v = verts[l];
    coo.add(static_cast<int>(l), static_cast<int>(l), 1.0);
    for (const int* it = g.col_begin(v); it != g.col_end(v); ++it) {
      int w = global_to_local[*it];
      if (w >= 0) coo.add(w, static_cast<int>(l), 1.0);
    }
  }
  Pattern sub = coo.to_csc().pattern();
  for (int v : verts) global_to_local[v] = -1;
  return sub;
}

class Dissector {
 public:
  Dissector(const Pattern& g, const NestedDissectionOptions& opt,
            NestedDissectionStats& stats)
      : g_(g), opt_(opt), stats_(stats), in_set_(g.cols, -1),
        global_to_local_(g.cols, -1), level_(g.cols, -1) {
    order_.reserve(g.cols);
  }

  std::vector<int> run() {
    std::vector<int> all(g_.cols);
    for (int v = 0; v < g_.cols; ++v) all[v] = v;
    dissect(std::move(all), 0);
    return std::move(order_);
  }

 private:
  /// BFS within the current set (marked with `stamp` in in_set_); fills
  /// level_ for reached vertices and returns them in BFS order.
  std::vector<int> bfs(int start, int stamp) {
    std::vector<int> reach = {start};
    level_[start] = 0;
    for (std::size_t h = 0; h < reach.size(); ++h) {
      int v = reach[h];
      for (const int* it = g_.col_begin(v); it != g_.col_end(v); ++it) {
        int w = *it;
        if (w != v && in_set_[w] == stamp && level_[w] == -1) {
          level_[w] = level_[v] + 1;
          reach.push_back(w);
        }
      }
    }
    return reach;
  }

  void order_leaf(const std::vector<int>& verts) {
    if (verts.size() <= 2) {
      for (int v : verts) order_.push_back(v);
      return;
    }
    Pattern sub = induced_subpattern(g_, verts, global_to_local_);
    Permutation p = minimum_degree(sub);
    for (int l = 0; l < p.size(); ++l) order_.push_back(verts[p.old_of(l)]);
  }

  void dissect(std::vector<int> verts, int depth) {
    stats_.max_depth = std::max(stats_.max_depth, depth);
    if (depth > 64) {
      ++stats_.depth_cap_hits;
      order_leaf(verts);
      return;
    }
    if (static_cast<int>(verts.size()) <= opt_.leaf_size) {
      order_leaf(verts);
      return;
    }
    const int stamp = ++stamp_counter_;
    for (int v : verts) {
      in_set_[v] = stamp;
      level_[v] = -1;
    }
    // Pseudo-peripheral start: two BFS sweeps within the set.
    std::vector<int> reach = bfs(verts[0], stamp);
    int far = reach.back();
    for (int v : reach) level_[v] = -1;
    reach = bfs(far, stamp);

    if (reach.size() < verts.size()) {
      // Disconnected: the reached component and the rest are independent.
      for (int v : reach) in_set_[v] = -2;  // un-mark the component
      std::vector<int> rest;
      for (int v : verts) {
        if (in_set_[v] == stamp) rest.push_back(v);
      }
      std::vector<int> comp = reach;
      for (int v : verts) level_[v] = -1;
      dissect(std::move(comp), depth + 1);
      dissect(std::move(rest), depth + 1);
      return;
    }

    // Cut at the median level.
    int max_level = 0;
    for (int v : reach) max_level = std::max(max_level, level_[v]);
    if (max_level < 2) {
      // No useful level structure (near-clique): fall back to the leaf path.
      ++stats_.clique_fallbacks;
      for (int v : verts) level_[v] = -1;
      order_leaf(verts);
      return;
    }
    std::vector<int> level_count(max_level + 1, 0);
    for (int v : reach) ++level_count[level_[v]];
    int half = static_cast<int>(verts.size()) / 2;
    int cum = 0;
    int cut = 1;
    for (int l = 0; l <= max_level; ++l) {
      cum += level_count[l];
      if (cum >= half) {
        cut = std::min(std::max(l, 1), max_level - 1);
        break;
      }
    }
    // The separator is the BOUNDARY of the near side: cut-level vertices
    // with a neighbor strictly past the cut.  Interior cut-level vertices
    // have all neighbors at levels <= cut (BFS levels differ by at most 1),
    // so placing them left keeps left and right disconnected while the
    // separator stays as small as the actual interface.  kCutLevel keeps
    // the legacy whole-level separator for regression comparison.
    std::vector<int> left, right, sep;
    const bool boundary_rule =
        opt_.separator == NestedDissectionOptions::SeparatorRule::kBoundary;
    for (int v : reach) {
      if (level_[v] < cut) {
        left.push_back(v);
      } else if (level_[v] > cut) {
        right.push_back(v);
      } else if (!boundary_rule || touches_far_side(v, cut)) {
        sep.push_back(v);
      } else {
        left.push_back(v);
      }
    }
    if (stats_.top_separator < 0) {
      stats_.top_separator = static_cast<int>(sep.size());
    }
    ++stats_.bisections;
    stats_.separator_vertices += static_cast<long>(sep.size());
    for (int v : verts) level_[v] = -1;
    dissect(std::move(left), depth + 1);
    dissect(std::move(right), depth + 1);
    // Separator last, minimum-degree ordered among its own vertices (the
    // separator clique dominates the top-level fill; legacy rule keeps the
    // old plain emission so the comparison isolates the separator SET).
    if (boundary_rule) {
      order_leaf(sep);
    } else {
      for (int v : sep) order_.push_back(v);
    }
  }

  /// True when cut-level vertex v has a neighbor past the cut (level_ holds
  /// the current BFS levels; far side == level > cut).
  bool touches_far_side(int v, int cut) const {
    for (const int* it = g_.col_begin(v); it != g_.col_end(v); ++it) {
      int w = *it;
      if (w != v && level_[w] > cut) return true;
    }
    return false;
  }

  const Pattern& g_;
  NestedDissectionOptions opt_;
  NestedDissectionStats& stats_;
  std::vector<int> in_set_;
  std::vector<int> global_to_local_;
  std::vector<int> level_;
  std::vector<int> order_;
  int stamp_counter_ = 0;
};

}  // namespace

Permutation nested_dissection(const Pattern& symmetric_pattern,
                              const NestedDissectionOptions& opt,
                              NestedDissectionStats* stats) {
  assert(symmetric_pattern.rows == symmetric_pattern.cols);
  NestedDissectionStats local;
  NestedDissectionStats& st = stats ? *stats : local;
  st = NestedDissectionStats{};
  Pattern g = Pattern::symmetrized(symmetric_pattern);
  if (g.cols == 0) return Permutation(0);
  Dissector d(g, opt, st);
  return Permutation::from_old_positions(d.run());
}

}  // namespace plu::ordering
