#include "ordering/minimum_degree.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "ordering/amd.h"
#include "ordering/degree_lists.h"

namespace plu::ordering {

using detail::DegreeLists;

Permutation minimum_degree(const Pattern& symmetric_pattern) {
  assert(symmetric_pattern.rows == symmetric_pattern.cols);
  const int n = symmetric_pattern.cols;
  Pattern g = Pattern::symmetrized(symmetric_pattern);

  // Quotient graph state.
  std::vector<std::vector<int>> adj(n);       // variable-variable edges
  std::vector<std::vector<int>> var_elems(n); // elements adjacent to variable
  std::vector<std::vector<int>> elem_vars;    // element boundary lists
  std::vector<char> eliminated(n, 0);
  std::vector<char> elem_alive;

  for (int v = 0; v < n; ++v) {
    for (const int* it = g.col_begin(v); it != g.col_end(v); ++it) {
      if (*it != v) adj[v].push_back(*it);
    }
  }

  DegreeLists lists(n, n);
  for (int v = 0; v < n; ++v) lists.insert(v, static_cast<int>(adj[v].size()));

  std::vector<int> order;
  order.reserve(n);
  std::vector<int> mark(n, -1);
  int stamp = 0;
  std::vector<int> boundary;

  // Computes the current exact external degree of u (reachable set size via
  // plain edges + live element boundaries), compacting u's lists in passing.
  auto exact_degree = [&](int u) {
    ++stamp;
    mark[u] = stamp;
    int deg = 0;
    std::size_t w = 0;
    for (std::size_t r = 0; r < adj[u].size(); ++r) {
      int x = adj[u][r];
      if (eliminated[x]) continue;
      adj[u][w++] = x;
      if (mark[x] != stamp) {
        mark[x] = stamp;
        ++deg;
      }
    }
    adj[u].resize(w);
    w = 0;
    for (std::size_t r = 0; r < var_elems[u].size(); ++r) {
      int e = var_elems[u][r];
      if (!elem_alive[e]) continue;
      var_elems[u][w++] = e;
      for (int x : elem_vars[e]) {
        if (x == u || eliminated[x]) continue;
        if (mark[x] != stamp) {
          mark[x] = stamp;
          ++deg;
        }
      }
    }
    var_elems[u].resize(w);
    return deg;
  };

  // Multiple elimination (GENMMD-style): within one pass, eliminate every
  // minimum-degree variable that is independent of the variables already
  // eliminated in the pass, and only then refresh the degrees of the touched
  // boundary.  Besides being faster, this produces BUSHY elimination trees
  // (independent nodes of equal degree become siblings, not a chain), which
  // is what gives the paper's task graphs their tree parallelism.
  std::vector<int> pass_mark(n, -1);
  int pass_id = 0;
  std::vector<int> touched;
  std::vector<std::pair<int, int>> stash;  // popped but deferred (node, degree)

  int eliminated_count = 0;
  while (eliminated_count < n) {
    ++pass_id;
    touched.clear();
    stash.clear();
    int d0 = -1;
    for (;;) {
      int dv = 0;
      int v = lists.pop_min(&dv);
      if (v == -1) break;
      if (d0 == -1) d0 = dv;
      if (dv > d0) {
        stash.push_back({v, dv});
        break;  // pass covers one degree level only
      }
      if (pass_mark[v] == pass_id) {
        // Adjacent to something eliminated this pass: its degree is stale.
        stash.push_back({v, dv});
        continue;
      }
      eliminated[v] = 1;
      order.push_back(v);
      ++eliminated_count;

      // Boundary of the new element: reachable live variables of v.
      ++stamp;
      mark[v] = stamp;
      boundary.clear();
      for (int x : adj[v]) {
        if (!eliminated[x] && mark[x] != stamp) {
          mark[x] = stamp;
          boundary.push_back(x);
        }
      }
      for (int e : var_elems[v]) {
        if (!elem_alive[e]) continue;
        for (int x : elem_vars[e]) {
          if (!eliminated[x] && mark[x] != stamp) {
            mark[x] = stamp;
            boundary.push_back(x);
          }
        }
        elem_alive[e] = 0;  // absorbed into the new element
      }
      if (boundary.empty()) continue;

      int eid = static_cast<int>(elem_vars.size());
      elem_vars.push_back(boundary);
      elem_alive.push_back(1);
      for (int u : boundary) {
        var_elems[u].push_back(eid);
        if (pass_mark[u] != pass_id) {
          pass_mark[u] = pass_id;
          touched.push_back(u);
        }
      }
    }
    // Reinsert deferred variables with their old degree, then refresh every
    // touched variable's exact degree (stash members that were touched get
    // refreshed by the second loop; update() keeps list state consistent).
    for (auto [u, d] : stash) {
      if (!eliminated[u]) lists.insert(u, d);
    }
    for (int u : touched) {
      if (!eliminated[u]) lists.update(u, exact_degree(u));
    }
  }

  return Permutation::from_old_positions(std::move(order));
}

Permutation minimum_degree_guarded(const Pattern& symmetric_pattern,
                                   rt::Team* team) {
  if (hub_heavy(symmetric_pattern)) {
    return approximate_minimum_degree(symmetric_pattern, team);
  }
  return minimum_degree(symmetric_pattern);
}

Permutation minimum_degree_ata(const Pattern& a) {
  return minimum_degree_guarded(Pattern::ata(a));
}

}  // namespace plu::ordering
