#include "ordering/rcm.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace plu::ordering {

namespace {

/// BFS from start over the pattern; returns (last-level vertex of minimum
/// degree, eccentricity).  `visited` is stamped with `stamp`.
std::pair<int, int> bfs_far_vertex(const Pattern& g, int start,
                                   std::vector<int>& visit, int stamp) {
  std::vector<int> frontier = {start};
  visit[start] = stamp;
  int depth = 0;
  std::vector<int> last_level = frontier;
  while (!frontier.empty()) {
    std::vector<int> next;
    for (int v : frontier) {
      for (const int* it = g.col_begin(v); it != g.col_end(v); ++it) {
        if (*it != v && visit[*it] != stamp) {
          visit[*it] = stamp;
          next.push_back(*it);
        }
      }
    }
    if (!next.empty()) {
      last_level = next;
      ++depth;
    }
    frontier = std::move(next);
  }
  int best = last_level.front();
  for (int v : last_level) {
    if (g.col_size(v) < g.col_size(best)) best = v;
  }
  return {best, depth};
}

}  // namespace

Permutation reverse_cuthill_mckee(const Pattern& symmetric_pattern) {
  assert(symmetric_pattern.rows == symmetric_pattern.cols);
  const int n = symmetric_pattern.cols;
  Pattern g = Pattern::symmetrized(symmetric_pattern);

  std::vector<int> order;
  order.reserve(n);
  std::vector<char> placed(n, 0);
  std::vector<int> visit(n, -1);
  int stamp = 0;

  for (int seed = 0; seed < n; ++seed) {
    if (placed[seed]) continue;
    // Pseudo-peripheral start: two BFS sweeps from the component seed.
    auto [far1, ecc1] = bfs_far_vertex(g, seed, visit, ++stamp);
    auto [far2, ecc2] = bfs_far_vertex(g, far1, visit, ++stamp);
    int start = (ecc2 > ecc1) ? far2 : far1;

    // Cuthill-McKee BFS: visit neighbors in increasing degree order.
    std::queue<int> q;
    q.push(start);
    placed[start] = 1;
    std::vector<int> nbrs;
    while (!q.empty()) {
      int v = q.front();
      q.pop();
      order.push_back(v);
      nbrs.clear();
      for (const int* it = g.col_begin(v); it != g.col_end(v); ++it) {
        if (*it != v && !placed[*it]) nbrs.push_back(*it);
      }
      std::sort(nbrs.begin(), nbrs.end(), [&](int a, int b) {
        int da = g.col_size(a), db = g.col_size(b);
        return da != db ? da < db : a < b;
      });
      for (int u : nbrs) {
        placed[u] = 1;
        q.push(u);
      }
    }
  }
  std::reverse(order.begin(), order.end());
  return Permutation::from_old_positions(std::move(order));
}

}  // namespace plu::ordering
