// Pluggable ordering engines and the selection policy behind Method::kAuto.
//
// SPRAL's shape (SNIPPETS.md snippet 1): every fill-reducing ordering sits
// behind one interface feeding the rest of the analysis, so the pipeline
// never cares WHICH engine ran -- only the policy does.  The policy picks by
// cheap structural features of A (order, density, degree skew, bandwidth
// estimate), optionally breaking close calls with a quick symbolic dry-run
// (an exact Cholesky fill count on the permuted A^T A graph, self-contained
// here because the ordering tier links BELOW the symbolic tier).  The
// decision -- requested vs chosen method, the features, dry-run fill -- is
// recorded in ordering::Decision and surfaced through AnalysisReport /
// FactorizationReport.
#pragma once

#include <string>

#include "matrix/csc.h"
#include "matrix/permutation.h"
#include "ordering/ordering.h"

namespace plu::ordering {

/// One fill-reducing ordering engine.  `order` receives the SYMMETRIC
/// adjacency graph to order (the A^T A pattern in the LU pipeline) and an
/// optional analysis team; engines that parallelize must return bit-identical
/// permutations for any team size.
class OrderingEngine {
 public:
  virtual ~OrderingEngine() = default;
  virtual std::string name() const = 0;
  virtual Permutation order(const Pattern& g, rt::Team* team) const = 0;
};

/// The engine implementing a concrete method (never kAuto -- resolve with
/// select_method first).  Engines are stateless singletons.
const OrderingEngine& engine_for(Method m);

/// O(nnz) structural features of the INPUT pattern A, the policy's evidence.
StructuralFeatures compute_features(const Pattern& a);

/// The feature-driven policy behind Method::kAuto.  Returns a concrete
/// method: exact minimum degree for small orders, AMD for hub-skewed degree
/// profiles (where exact degree updates degenerate), RCM for thin bands
/// (bounded fill at O(nnz) ordering cost), nested dissection for large
/// mesh-like graphs (bushy eforests), AMD otherwise.
Method select_method(const StructuralFeatures& f);

/// The policy's runner-up for `chosen` -- the dry-run's comparison candidate.
Method runner_up(Method chosen);

/// Exact Cholesky fill of the symmetric graph `g` under ordering `p`:
/// |L| including the diagonal, counted in O(|L|) by row-subtree traversal of
/// the elimination tree.  The dry-run metric for comparing candidate
/// orderings; cheaper than a symbolic factorization and monotone with it.
long cholesky_fill(const Pattern& g, const Permutation& p);

}  // namespace plu::ordering
