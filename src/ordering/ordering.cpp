#include "ordering/ordering.h"

#include "ordering/minimum_degree.h"
#include "ordering/nested_dissection.h"
#include "ordering/rcm.h"

namespace plu::ordering {

Permutation compute_column_ordering(const Pattern& a, Method method) {
  switch (method) {
    case Method::kNatural:
      return Permutation(a.cols);
    case Method::kMinimumDegreeAtA:
      return minimum_degree_ata(a);
    case Method::kRcmAtA:
      return reverse_cuthill_mckee(Pattern::ata(a));
    case Method::kNestedDissectionAtA:
      return nested_dissection(Pattern::ata(a));
  }
  return Permutation(a.cols);
}

std::string to_string(Method m) {
  switch (m) {
    case Method::kNatural:
      return "natural";
    case Method::kMinimumDegreeAtA:
      return "mindeg(AtA)";
    case Method::kRcmAtA:
      return "rcm(AtA)";
    case Method::kNestedDissectionAtA:
      return "nd(AtA)";
  }
  return "?";
}

}  // namespace plu::ordering
