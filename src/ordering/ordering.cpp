#include "ordering/ordering.h"

#include "ordering/engine.h"

namespace plu::ordering {

Permutation compute_column_ordering(const Pattern& a, Method method) {
  return compute_column_ordering(a, method, Controls{}, nullptr);
}

Permutation compute_column_ordering(const Pattern& a, Method method,
                                    const Controls& ctl, Decision* decision) {
  Decision local;
  Decision& d = decision ? *decision : local;
  d = Decision{};
  d.requested = method;
  d.features = compute_features(a);

  Method chosen = method;
  if (method == Method::kAuto) {
    chosen = select_method(d.features);
    if (ctl.dry_run && d.features.n > 0 && d.features.n <= ctl.dry_run_max_n) {
      // Exact fill probe: run the pick and its runner-up, keep the smaller.
      const Method alt = runner_up(chosen);
      const Pattern g = Pattern::ata(a);
      Permutation p_chosen = engine_for(chosen).order(g, ctl.team);
      Permutation p_alt = engine_for(alt).order(g, ctl.team);
      d.dry_run = true;
      d.dry_run_fill_chosen = cholesky_fill(g, p_chosen);
      d.dry_run_fill_alternative = cholesky_fill(g, p_alt);
      if (d.dry_run_fill_alternative < d.dry_run_fill_chosen) {
        std::swap(d.dry_run_fill_chosen, d.dry_run_fill_alternative);
        chosen = alt;
        p_chosen = std::move(p_alt);
      }
      d.chosen = chosen;
      d.engine = engine_for(chosen).name();
      return p_chosen;
    }
  }
  d.chosen = chosen;
  const OrderingEngine& eng = engine_for(chosen);
  d.engine = eng.name();
  if (chosen == Method::kNatural) return Permutation(a.cols);
  return eng.order(Pattern::ata(a), ctl.team);
}

std::string to_string(Method m) {
  switch (m) {
    case Method::kNatural:
      return "natural";
    case Method::kMinimumDegreeAtA:
      return "mindeg(AtA)";
    case Method::kAmdAtA:
      return "amd(AtA)";
    case Method::kRcmAtA:
      return "rcm(AtA)";
    case Method::kNestedDissectionAtA:
      return "nd(AtA)";
    case Method::kAuto:
      return "auto";
  }
  return "?";
}

bool parse_method(const std::string& s, Method* out) {
  if (s == "natural") {
    *out = Method::kNatural;
  } else if (s == "md" || s == "mindeg") {
    *out = Method::kMinimumDegreeAtA;
  } else if (s == "amd") {
    *out = Method::kAmdAtA;
  } else if (s == "rcm") {
    *out = Method::kRcmAtA;
  } else if (s == "nd") {
    *out = Method::kNestedDissectionAtA;
  } else if (s == "auto") {
    *out = Method::kAuto;
  } else {
    return false;
  }
  return true;
}

}  // namespace plu::ordering
