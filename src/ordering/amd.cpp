#include "ordering/amd.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ordering/degree_lists.h"
#include "runtime/parallel_for.h"

namespace plu::ordering {

namespace {

// Variable lifecycle in the quotient graph.
constexpr char kLive = 0;        // active (super)variable
constexpr char kEliminated = 1;  // pivot, already emitted to the order
constexpr char kAbsorbed = 2;    // merged into a supervariable representative

inline std::uint64_t var_hash(int v) {
  return (static_cast<std::uint64_t>(v) + 1) * 0x9E3779B97F4A7C15ull;
}
inline std::uint64_t elem_hash(int e) {
  return (static_cast<std::uint64_t>(e) + 1) * 0xC2B2AE3D27D4EB4Full;
}

/// Set equality of the two sorted adjacency lists, ignoring a mutual edge
/// (u in adj_w / w in adj_u) -- the indistinguishability test
/// Adj(u) + {u} == Adj(w) + {w}.
bool same_adjacency(const std::vector<int>& adj_u, int u,
                    const std::vector<int>& adj_w, int w) {
  std::size_t i = 0, j = 0;
  for (;;) {
    while (i < adj_u.size() && adj_u[i] == w) ++i;
    while (j < adj_w.size() && adj_w[j] == u) ++j;
    if (i == adj_u.size() || j == adj_w.size()) {
      return i == adj_u.size() && j == adj_w.size();
    }
    if (adj_u[i] != adj_w[j]) return false;
    ++i;
    ++j;
  }
}

}  // namespace

bool hub_heavy(const Pattern& g) {
  const int n = g.cols;
  if (n < 2048) return false;
  long max_deg = 0;
  for (int j = 0; j < n; ++j) {
    max_deg = std::max(max_deg, static_cast<long>(g.col_end(j) - g.col_begin(j)));
  }
  const double avg_deg = static_cast<double>(g.nnz()) / n;
  return max_deg >= 256 && static_cast<double>(max_deg) >= 8.0 * avg_deg;
}

Permutation approximate_minimum_degree(const Pattern& symmetric_pattern,
                                       rt::Team* team) {
  assert(symmetric_pattern.rows == symmetric_pattern.cols);
  const int n = symmetric_pattern.cols;
  if (n == 0) return Permutation(0);
  Pattern g = Pattern::symmetrized(symmetric_pattern);

  // Runs fn(begin, end, lane) over [0, k), fanned out when a team is given.
  // Every loop body writes only slots owned by its iteration, so chunk
  // boundaries cannot change any result.
  auto pfor = [&](long work, int k, auto&& fn) {
    if (team) {
      team->parallel_for(work, k, fn);
    } else if (k > 0) {
      fn(0, k, 0);
    }
  };

  // Quotient graph: plain variable-variable edges, element boundary lists,
  // supervariable weights.
  std::vector<std::vector<int>> adj(n);
  std::vector<std::vector<int>> elems(n);       // elements adjacent to var
  std::vector<std::vector<int>> elem_vars;      // element boundary lists
  std::vector<long> elem_wsize;                 // weighted boundary size
  std::vector<char> elem_alive;
  std::vector<char> state(n, kLive);
  std::vector<int> weight(n, 1);                // supervariable cardinality
  std::vector<std::vector<int>> absorbed(n);    // members merged into v

  for (int v = 0; v < n; ++v) {
    for (const int* it = g.col_begin(v); it != g.col_end(v); ++it) {
      if (*it != v) adj[v].push_back(*it);
    }
  }

  detail::DegreeLists lists(n, n);
  for (int v = 0; v < n; ++v) {
    long d = 0;
    for (int x : adj[v]) d += weight[x];
    lists.insert(v, static_cast<int>(std::min<long>(d, n)));
  }

  std::vector<int> order;
  order.reserve(n);
  int placed = 0;
  std::vector<int> emit_stack;
  // Emits v and, pre-order, every variable absorbed into it: a supervariable
  // occupies consecutive positions, representative first.
  auto emit = [&](int v) {
    emit_stack.assign(1, v);
    while (!emit_stack.empty()) {
      int x = emit_stack.back();
      emit_stack.pop_back();
      order.push_back(x);
      ++placed;
      for (auto it = absorbed[x].rbegin(); it != absorbed[x].rend(); ++it) {
        emit_stack.push_back(*it);
      }
    }
  };

  // Sequential scratch for pivot elimination.
  std::vector<int> mark(n, -1);
  int stamp = 0;
  std::vector<int> boundary;

  // Per-round state.
  std::vector<int> round_mark(n, -1);   // var adjacent to a round element
  std::vector<char> touched_mark(n, 0);
  std::vector<int> touched;
  std::vector<std::pair<int, int>> stash;  // popped but deferred (var, degree)
  std::vector<int> elem_round_mark;        // element gathered this round
  std::vector<int> rel_elems;
  std::vector<long> degree_slot(n, 0);
  std::vector<std::uint64_t> hash_slot(n, 0);
  std::unordered_map<std::uint64_t, std::vector<int>> buckets;
  int round = 0;

  // Eliminates pivot v: forms the new element from v's live reach, absorbs
  // v's old elements, and prunes boundary adjacency lists of edges the new
  // element now covers.
  auto eliminate_pivot = [&](int v) {
    state[v] = kEliminated;
    emit(v);
    ++stamp;
    mark[v] = stamp;
    boundary.clear();
    for (int x : adj[v]) {
      if (state[x] == kLive && mark[x] != stamp) {
        mark[x] = stamp;
        boundary.push_back(x);
      }
    }
    for (int e : elems[v]) {
      if (!elem_alive[e]) continue;
      for (int x : elem_vars[e]) {
        if (state[x] == kLive && mark[x] != stamp) {
          mark[x] = stamp;
          boundary.push_back(x);
        }
      }
      elem_alive[e] = 0;  // absorbed into the new element
    }
    if (boundary.empty()) return;
    std::sort(boundary.begin(), boundary.end());

    const int eid = static_cast<int>(elem_vars.size());
    elem_vars.push_back(boundary);
    long wsz = 0;
    for (int u : boundary) wsz += weight[u];
    elem_wsize.push_back(wsz);
    elem_alive.push_back(1);
    elem_round_mark.push_back(-1);
    for (int u : boundary) {
      elems[u].push_back(eid);
      round_mark[u] = round;
      if (!touched_mark[u]) {
        touched_mark[u] = 1;
        touched.push_back(u);
      }
      // Edges inside the element are now covered by it; drop them (and any
      // edge to a dead variable) so plain adjacency stays sparse.
      std::size_t w = 0;
      for (std::size_t r = 0; r < adj[u].size(); ++r) {
        int x = adj[u][r];
        if (state[x] == kLive && mark[x] != stamp) adj[u][w++] = x;
      }
      adj[u].resize(w);
    }
  };

  while (placed < n) {
    ++round;
    touched.clear();
    stash.clear();

    // --- Selection: eliminate every minimum-degree variable independent of
    // the pivots already taken this round (round_mark flags stale degrees).
    int d0 = -1;
    for (;;) {
      int dv = 0;
      int v = lists.pop_min(&dv);
      if (v == -1) break;
      if (d0 == -1) d0 = dv;
      if (dv > d0) {
        stash.push_back({v, dv});
        break;  // a round covers one degree level only
      }
      if (round_mark[v] == round) {
        stash.push_back({v, dv});
        continue;
      }
      eliminate_pivot(v);
    }

    // --- Refresh: recompute what this round's eliminations invalidated.
    std::sort(touched.begin(), touched.end());
    for (int u : touched) touched_mark[u] = 0;

    // Live elements adjacent to any touched variable, in first-touch order.
    rel_elems.clear();
    long elem_work = 0;
    long var_work = 0;
    for (int u : touched) {
      var_work += static_cast<long>(adj[u].size() + elems[u].size());
      for (int e : elems[u]) {
        if (elem_alive[e] && elem_round_mark[e] != round) {
          elem_round_mark[e] = round;
          rel_elems.push_back(e);
          elem_work += static_cast<long>(elem_vars[e].size());
        }
      }
    }

    // (a) Compact element boundaries and their weighted sizes.  Each
    // iteration owns exactly one element's lists -- write-disjoint.
    pfor(elem_work, static_cast<int>(rel_elems.size()),
         [&](int b, int e, int /*lane*/) {
           for (int i = b; i < e; ++i) {
             const int el = rel_elems[i];
             std::vector<int>& vars = elem_vars[el];
             std::size_t w = 0;
             long wsz = 0;
             for (std::size_t r = 0; r < vars.size(); ++r) {
               int x = vars[r];
               if (state[x] == kLive) {
                 vars[w++] = x;
                 wsz += weight[x];
               }
             }
             vars.resize(w);
             elem_wsize[el] = wsz;
           }
         });

    // (b) Per-variable refresh: compact + sort adjacency, approximate
    // external degree, supervariable hash.  Each iteration owns one
    // variable's lists and slots -- write-disjoint; weight/state/elem_wsize
    // are frozen until the barrier.
    pfor(4 * var_work, static_cast<int>(touched.size()),
         [&](int b, int e, int /*lane*/) {
           for (int i = b; i < e; ++i) {
             const int u = touched[i];
             std::size_t w = 0;
             long d = 0;
             std::uint64_t h = var_hash(u);
             for (std::size_t r = 0; r < adj[u].size(); ++r) {
               int x = adj[u][r];
               if (state[x] != kLive) continue;
               adj[u][w++] = x;
               d += weight[x];
               h += var_hash(x);
             }
             adj[u].resize(w);
             std::sort(adj[u].begin(), adj[u].end());
             w = 0;
             for (std::size_t r = 0; r < elems[u].size(); ++r) {
               int el = elems[u][r];
               if (!elem_alive[el]) continue;
               elems[u][w++] = el;
               d += elem_wsize[el] - weight[u];  // u is always in its elements
               h += elem_hash(el);
             }
             elems[u].resize(w);
             std::sort(elems[u].begin(), elems[u].end());
             degree_slot[u] = d;
             hash_slot[u] = h;
           }
         });

    // (c) Supervariable detection (sequential, ascending): merge u into the
    // smallest earlier variable with identical quotient-graph adjacency.
    // Hash collisions only cost an exact compare; the merge order is a pure
    // function of the pattern.
    buckets.clear();
    for (int u : touched) {
      if (state[u] != kLive) continue;
      std::vector<int>& bucket = buckets[hash_slot[u]];
      bool merged = false;
      for (int w : bucket) {
        if (state[w] != kLive) continue;
        if (elems[u] == elems[w] && same_adjacency(adj[u], u, adj[w], w)) {
          weight[w] += weight[u];
          absorbed[w].push_back(u);
          state[u] = kAbsorbed;
          // w's approximate degree counted u as an external neighbor.
          degree_slot[w] = std::max<long>(degree_slot[w] - weight[u], 0);
          merged = true;
          break;
        }
      }
      if (!merged) bucket.push_back(u);
    }

    // --- Requeue: deferred pivots keep their old degree; touched variables
    // get the refreshed one.  A degree-0 survivor has no live neighbors
    // outside its own supervariable (mass elimination): emit it now.
    for (auto [u, d] : stash) {
      if (state[u] == kLive && lists.degree(u) < 0) lists.insert(u, d);
    }
    for (int u : touched) {
      if (state[u] == kAbsorbed) {
        if (lists.degree(u) >= 0) lists.remove(u);
        continue;
      }
      if (state[u] != kLive) continue;
      const long d = degree_slot[u];
      if (d <= 0) {
        lists.remove(u);
        state[u] = kEliminated;
        emit(u);
      } else {
        lists.update(u, static_cast<int>(std::min<long>(d, n)));
      }
    }
  }

  return Permutation::from_old_positions(std::move(order));
}

Permutation approximate_minimum_degree_ata(const Pattern& a, rt::Team* team) {
  return approximate_minimum_degree(Pattern::ata(a), team);
}

}  // namespace plu::ordering
