// Minimum-degree ordering on a symmetric pattern.
//
// The paper's fill-reducing step is "the minimum degree algorithm on A^T A"
// (Section 1).  This is a quotient-graph implementation with exact external
// degrees, element absorption and degree bucket lists (the classic MD
// formulation; no supervariable detection, which the problem sizes here do
// not need).
#pragma once

#include "matrix/csc.h"
#include "matrix/permutation.h"

namespace plu::ordering {

/// Computes a minimum-degree elimination order for a symmetric pattern
/// (diagonal ignored).  Returns the permutation in gather form:
/// old_of(k) = the variable eliminated k-th.
Permutation minimum_degree(const Pattern& symmetric_pattern);

/// Convenience for unsymmetric LU: minimum degree on the A^T A pattern.
Permutation minimum_degree_ata(const Pattern& a);

}  // namespace plu::ordering
