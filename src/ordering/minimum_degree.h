// Minimum-degree ordering on a symmetric pattern.
//
// The paper's fill-reducing step is "the minimum degree algorithm on A^T A"
// (Section 1).  This is a quotient-graph implementation with exact external
// degrees, element absorption and degree bucket lists (the classic MD
// formulation).  It has no supervariable detection, so hub vertices whose
// degree dwarfs the average send its per-round degree refresh quadratic;
// minimum_degree_guarded() detects that profile (amd.h: hub_heavy) and
// routes it to the approximate-minimum-degree engine, whose supervariables
// and approximate degrees stay near-linear there.
#pragma once

#include "matrix/csc.h"
#include "matrix/permutation.h"

namespace plu::rt {
class Team;
}

namespace plu::ordering {

/// Computes a minimum-degree elimination order for a symmetric pattern
/// (diagonal ignored).  Returns the permutation in gather form:
/// old_of(k) = the variable eliminated k-th.  Always the exact engine.
Permutation minimum_degree(const Pattern& symmetric_pattern);

/// Exact minimum degree with the hub guard: hub-heavy graphs (amd.h) route
/// to approximate_minimum_degree (which also uses `team`); everything else
/// runs the exact engine.  The route is a pure function of the pattern.
Permutation minimum_degree_guarded(const Pattern& symmetric_pattern,
                                   rt::Team* team = nullptr);

/// Convenience for unsymmetric LU: guarded minimum degree on A^T A.
Permutation minimum_degree_ata(const Pattern& a);

}  // namespace plu::ordering
