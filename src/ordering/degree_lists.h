// Doubly-linked degree bucket lists over variables 0..n-1, shared by the
// exact minimum-degree engine (minimum_degree.cpp) and the approximate
// minimum-degree engine (amd.cpp).  Internal to the ordering tier.
#pragma once

#include <algorithm>
#include <vector>

namespace plu::ordering::detail {

class DegreeLists {
 public:
  DegreeLists(int n, int max_degree)
      : head_(max_degree + 1, -1), next_(n, -1), prev_(n, -1), degree_(n, -1),
        min_degree_(max_degree + 1) {}

  void insert(int v, int d) {
    degree_[v] = d;
    next_[v] = head_[d];
    prev_[v] = -1;
    if (head_[d] != -1) prev_[head_[d]] = v;
    head_[d] = v;
    min_degree_ = std::min(min_degree_, d);
  }

  void remove(int v) {
    int d = degree_[v];
    if (prev_[v] != -1) {
      next_[prev_[v]] = next_[v];
    } else {
      head_[d] = next_[v];
    }
    if (next_[v] != -1) prev_[next_[v]] = prev_[v];
    degree_[v] = -1;
  }

  void update(int v, int d) {
    remove(v);
    insert(v, d);
  }

  /// Current degree of v; -1 when v is not in any bucket.
  int degree(int v) const { return degree_[v]; }

  /// Pops a variable of minimum degree; -1 when empty.  If `out_degree` is
  /// non-null it receives the popped variable's degree.
  int pop_min(int* out_degree = nullptr) {
    while (min_degree_ < static_cast<int>(head_.size()) && head_[min_degree_] == -1) {
      ++min_degree_;
    }
    if (min_degree_ >= static_cast<int>(head_.size())) return -1;
    int v = head_[min_degree_];
    if (out_degree) *out_degree = min_degree_;
    remove(v);
    return v;
  }

 private:
  std::vector<int> head_;
  std::vector<int> next_;
  std::vector<int> prev_;
  std::vector<int> degree_;
  int min_degree_;
};

}  // namespace plu::ordering::detail
