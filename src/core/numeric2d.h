// 2-D numeric factorization (the paper's future-work direction, following
// the S+ 2.0 scheme): executes the 2-D task graph of taskgraph/build2d.h
// for real, over the same dense-block storage as the 1-D factorization.
//
// Pivoting is RESTRICTED to each diagonal block (the price of 2-D
// distribution: a pivot search across the whole block column would
// serialize the very dimension the decomposition parallelizes).  The
// factorization computed is
//
//   A_kk^(k) = P_k^T L_kk U_kk          (diagonal factor, local pivots)
//   U_kj = L_kk^{-1} P_k A_kj^(k)       (ComputeU)
//   L_ik = A_ik^(k) U_kk^{-1}           (FactorL; rows stay unpermuted)
//   A_ij^(k+1) = A_ij^(k) - L_ik U_kj   (UpdateBlock)
//
// where A^(k) denotes the partially updated matrix.  Restricted pivoting is
// numerically weaker than the 1-D panel pivoting -- a diagonal block can be
// ill-conditioned or singular even when the full column is fine -- so the
// class reports zero/small pivots and callers should pair it with iterative
// refinement (tests demonstrate both the typical accuracy and a crafted
// failure the 1-D factorization survives).
#pragma once

#include <vector>

#include "core/analysis.h"
#include "core/block_storage.h"
#include "runtime/race_checker.h"
#include "taskgraph/build2d.h"

namespace plu {

struct Numeric2DOptions {
  /// 1 = sequential topological execution; > 1 = DAG executor threads.
  int threads = 1;
  /// Record per-task block footprints and cross-check unordered task pairs
  /// against the 2-D dependence graph (rt::RaceChecker); results in
  /// Factorization2D::races().  Lock-serialized additive UpdateBlock gemms
  /// into one block are recorded as commuting locked writes.
  bool check_races = false;
};

class Factorization2D {
 public:
  Factorization2D(const Analysis& analysis, const CscMatrix& a,
                  const Numeric2DOptions& opt = {});

  const Analysis& analysis() const { return *analysis_; }
  const taskgraph::TaskGraph2D& graph() const { return graph_; }

  bool singular() const { return zero_pivots_ > 0; }
  int zero_pivots() const { return zero_pivots_; }

  /// Smallest |pivot| accepted, relative to the matrix max-abs; a crude
  /// stability indicator (restricted pivoting can drive it tiny).
  double min_pivot_ratio() const { return min_pivot_ratio_; }

  /// Footprint races (empty unless Numeric2DOptions::check_races).
  const std::vector<rt::FootprintRace>& races() const { return races_; }

  /// Solves A x = b (original ordering).
  std::vector<double> solve(const std::vector<double>& b) const;

 private:
  const Analysis* analysis_;
  BlockMatrix blocks_;
  taskgraph::TaskGraph2D graph_;
  std::vector<std::vector<int>> diag_ipiv_;  // local pivots per block
  int zero_pivots_ = 0;
  double min_pivot_ratio_ = 0.0;
  std::vector<rt::FootprintRace> races_;
};

}  // namespace plu
