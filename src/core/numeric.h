// Numeric factorization (step 3): executes the factorization tasks over
// the dense-block storage, at either layout (Options::layout), producing
// one layout-tagged result type.  The work is split across three tiers:
// the task BODIES live in core/kernels.h (one translation unit for panel
// getrf, pivot application, trsm, additive gemm), the dependence graphs in
// taskgraph/build.h, and the per-layout enumeration/dispatch loops behind
// the NumericDriver interface (core/driver.h); this class assembles a run
// and hands it to the driver the analysis' layout selects.
//
// 1-D kernels (Section 4's task bodies):
//   Factor(k):    getrf with partial pivoting on the packed panel of block
//                 column k (diagonal block + L row blocks); the local pivot
//                 sequence ipiv_k is recorded, not applied globally.
//   Update(k,j):  (a) apply ipiv_k to the panel-k rows of block column j
//                 (deferred pivoting), (b) trsm L_kk * U_kj = B_kj,
//                 (c) gemm B_tj -= L_tk * U_kj for every L row block t.
//
// 2-D kernels (the S+ 2.0 scheme; pivoting RESTRICTED to each diagonal
// block -- numerically weaker, watch min_pivot_ratio()):
//   FactorDiag(k):      getrf with block-local pivoting on B_kk;
//   ComputeU(k,j):      U_kj := L_kk^{-1} P_k B_kj;
//   FactorL(i,k):       L_ik := B_ik U_kk^{-1}  (rows stay unpermuted);
//   UpdateBlock(i,k,j): B_ij -= L_ik U_kj.
//
// Every solve path below is layout-agnostic: the 2-D local pivot sequences
// are a special case of the 1-D panel sequences (every index inside the
// diagonal block), so the same interchange replay, triangular passes and
// elimination-operator transpose logic serve both.
//
// Why deferred pivoting is safe here: the block-level George-Ng closure
// (symbolic/blocks.h) makes all pivot-candidate row blocks of a column share
// one block-row structure, so every row ipiv_k touches exists in every block
// column j with Update(k,j).  Why unordered independent-subtree updates are
// safe: their candidate row-block sets are disjoint (Theorem 4 and the
// block-level analogue of verify_candidate_disjointness), so their swaps and
// gemm targets never overlap.
#pragma once

#include <cstdint>
#include <vector>

#include "core/analysis.h"
#include "core/block_storage.h"
#include "core/layout.h"
#include "core/status.h"
#include "runtime/dag_executor.h"
#include "runtime/race_checker.h"
#include "taskgraph/coarsen.h"

namespace plu {

enum class ExecutionMode {
  kSequential,       // right-looking loop, no task graph involved
  kGraphSequential,  // single thread, tasks in a topological order of the graph
  kThreaded,         // DAG executor on a thread pool
};

/// Structure-aware blocking (symbolic/repartition.h).  kAuto consumes
/// Analysis::block_plan when it was built: the drivers hoist per-update
/// density scans, coalesce adjacent same-decision tiles into single gemms,
/// and hand the coarsener density-effective weights plus the DAG-aware
/// tiny-merge.  Factors are BITWISE identical to kOff at every thread
/// count (the routing contract in blas/level3.h); kOff is the ablation
/// baseline and the plain per-block path.
enum class BlockingMode { kAuto, kOff };

const char* to_string(BlockingMode m);

struct NumericOptions {
  ExecutionMode mode = ExecutionMode::kSequential;
  int threads = 4;
  /// Which threaded executor runs the task graph under kThreaded (ignored
  /// by the other modes and by fuzz_schedule): the work-stealing runtime
  /// with critical-path priorities, or the central mutex/condvar queue kept
  /// as the scheduler-ablation baseline (rt::ExecutorKind).
  rt::ExecutorKind executor = rt::ExecutorKind::kWorkStealing;
  /// Run the kThreaded task graph on this persistent multi-DAG pool
  /// (runtime/shared_runtime.h) instead of a private worker team, so
  /// factorizations of DIFFERENT matrices -- distinct Factorization /
  /// SparseLU instances, or solver-service requests -- interleave on one
  /// set of workers.  `threads` and `executor` are then ignored.  The pool
  /// must outlive the factorize call; non-owning.
  rt::SharedRuntime* shared_runtime = nullptr;
  /// Per-request priority fold for the shared pool
  /// (rt::ExecOptions::request_priority); ignored without shared_runtime.
  double request_priority = 0.0;
  /// Optional EXTERNAL cancellation (deadline / client abort): when this
  /// token trips, in-flight tasks finish, the remaining tasks drain unrun,
  /// and -- unless a numeric breakdown was already recorded -- the
  /// factorization reports FactorStatus::kCancelled (unusable factors, but
  /// a clean, reusable runtime).  Works in every execution mode; checked at
  /// task granularity.  Non-owning; must outlive the factorize call.
  rt::CancelToken* cancel = nullptr;
  /// Serialize writers of each block column with a mutex.  Setting this to
  /// false is honored only when the analysis proved the unordered updates'
  /// block footprints disjoint (BlockStructure::lockfree_safe); otherwise
  /// locks are taken regardless.
  bool use_column_locks = true;
  /// LazyS+-style zero-block elision (the paper's "recent developments show
  /// that some of the zero blocks can be eliminated from the computation"):
  /// Update(k, j) still replays the pivot interchanges, but skips the trsm
  /// and gemms when the U block is numerically all zero at that point.
  bool lazy_updates = false;
  /// Threshold pivoting with diagonal preference: the diagonal entry stays
  /// the pivot when |a_jj| >= pivot_threshold * max|column|.  1.0 is plain
  /// partial pivoting; smaller values trade a bounded growth factor for
  /// fewer interchanges -- the intended companion of
  /// Options::scale_and_permute, whose big diagonal then rarely loses.
  double pivot_threshold = 1.0;
  /// Partial factorization: stop after this many block columns (-1 = all).
  /// The trailing blocks then hold the SCHUR COMPLEMENT of the factored
  /// leading part (right-looking updates have already been applied); use
  /// Factorization::schur_complement() to extract it.  A partial
  /// factorization cannot solve().  Runs sequentially.
  int stop_after_block = -1;
  /// Record per-task block read/write footprints while the tasks run and
  /// cross-check every unordered task pair against the transitive
  /// dependence relation afterwards (rt::RaceChecker -- the dynamic
  /// verification of Theorem 4).  Results in Factorization::races().
  /// Works in every execution mode; kThreaded exercises real interleavings.
  bool check_races = false;
  /// Run kThreaded execution on the schedule-fuzzing executor
  /// (rt::execute_task_graph_fuzzed): randomized ready-task selection plus
  /// injected delays, so repeated runs with different seeds explore many
  /// legal interleavings instead of the one the mutex produces.
  bool fuzz_schedule = false;
  std::uint64_t fuzz_seed = 1;
  /// Maximum injected pre-task delay (microseconds) when fuzzing.
  int fuzz_max_delay_us = 50;
  /// Phase-spanning pipeline (core/pipeline.h): run symbolic analysis,
  /// numeric factorization and the forward solve as ONE dynamic task graph
  /// instead of three barriered phases -- per-eforest-subtree analysis
  /// tasks publish finalized column/block structure and release that
  /// subtree's numeric tasks into the running graph.  Bit-identical to the
  /// phased path by construction.  Honored by SparseLU and SolverService
  /// (this class's own constructor requires a finished analysis by design);
  /// silently falls back to the phased path when the option combination is
  /// unsupported (pipeline_supported in core/driver.h).
  bool pipeline = false;
  /// Minimum columns per pipeline analysis unit: consecutive eforest trees
  /// are coalesced until a unit reaches this many columns, bounding
  /// per-task overhead on forests with many tiny trees.
  int pipeline_min_unit_cols = 64;
  /// DAG task coarsening (taskgraph/coarsen.h): before threaded execution,
  /// collapse whole low-weight eforest subtrees into single fused tasks
  /// running the sequential kernel loop for that subtree, so scheduling
  /// overhead is paid per subtree instead of per kernel call.  Honored by
  /// kThreaded (including the fuzzed and shared-runtime paths) and by the
  /// pipeline (which fuses whole analysis units); silently falls back to
  /// the uncoarsened graph when not applicable (non-eforest graph kind,
  /// unordered labels, no flop annotations) -- check
  /// Factorization::coarsen_stats().ran.  When coarsening ran, the
  /// threaded result is additionally BITWISE identical to
  /// ExecutionMode::kSequential at any thread count (the coarse graph
  /// chains same-target writers in sequential order).
  bool coarsen = false;
  /// Explicit fusion threshold in flops; <= 0 selects the adaptive one
  /// (min(total/(threads * 48), half the critical path)).
  double coarsen_threshold_flops = 0.0;
  /// Block storage backing (core/block_storage.h): one contiguous 64-byte
  /// aligned arena (default) or the per-column vector layout kept as the
  /// storage-ablation baseline.  Values are bitwise identical either way.
  StorageMode storage = StorageMode::kArena;
  /// Structure-aware blocking plan consumption (see BlockingMode).  kAuto
  /// is the default and bitwise-safe; set kOff to run the legacy per-block
  /// path (the `--blocking off` ablation arm).
  BlockingMode blocking = BlockingMode::kAuto;
  /// Static pivot perturbation (the SuperLU_DIST recovery for the static
  /// symbolic factorization): a pivot with |p| < sqrt(eps) * max|A| is
  /// bumped to that magnitude (sign preserved) instead of stopping the run
  /// with FactorStatus::kSingular.  The factorization then completes with
  /// status kPerturbed and Factorization::perturbed_columns() lists the
  /// bumped columns; pair with refined_solve (core/refine.h) to recover the
  /// accuracy the perturbation gave up.
  bool perturb_pivots = false;
};

/// Wall-clock phase accounting of a PIPELINED run.  The phases genuinely
/// overlap, so the per-phase walls can sum to MORE than total_seconds;
/// overlap_seconds is exactly that excess (0 when nothing overlapped).
/// All zero when the phased path ran.
struct PipelineStats {
  bool ran = false;                // the pipelined path actually executed
  /// False when an external cancel stopped the run before the symbolic
  /// analysis finished -- the Analysis is then partial and must not be
  /// cached or reused for a refactorization.
  bool analysis_complete = true;
  double analyze_seconds = 0.0;    // wall span of analysis-task activity
  double factor_seconds = 0.0;     // wall span of numeric-task activity
  double solve_seconds = 0.0;      // wall span of forward-solve tasks
  double total_seconds = 0.0;      // end-to-end wall time of the run
  double overlap_seconds = 0.0;    // max(0, sum of phase walls - total)
};

class Factorization {
 public:
  /// Factorizes `a` (original ordering; permuted internally) over the given
  /// analysis.  `analysis` must outlive the Factorization.
  Factorization(const Analysis& analysis, const CscMatrix& a,
                const NumericOptions& opt = {});

  const Analysis& analysis() const { return *analysis_; }
  const BlockMatrix& blocks() const { return blocks_; }
  BlockMatrix& blocks() { return blocks_; }
  const std::vector<int>& panel_ipiv(int k) const { return ipiv_[k]; }

  /// Which numeric layout ran (from Options::layout).
  Layout layout() const { return layout_; }
  /// NumericDriver::name() of the driver that ran ("1d-column" /
  /// "2d-block"), for reports.
  const char* driver_name() const;
  /// The dependence graph the run executed: Analysis::graph for the 1-D
  /// layout, Analysis::block_graph for the 2-D layout.
  const taskgraph::TaskGraph& task_graph() const;

  /// Breakdown status of the run (core/status.h).  On kSingular /
  /// kOverflow the remaining tasks were cancelled cooperatively and the
  /// solve paths throw std::runtime_error; check this (or SparseLU's
  /// factor_status()) before trusting the factors.
  FactorStatus status() const { return status_; }
  /// Global column of the breakdown (-1 when status() is kOk/kPerturbed):
  /// the smallest column among the breakdowns the run observed.
  int failed_column() const { return failed_column_; }
  /// Columns whose pivot was bumped to the static perturbation magnitude
  /// (empty unless NumericOptions::perturb_pivots; sorted).
  const std::vector<int>& perturbed_columns() const {
    return perturbed_columns_;
  }
  /// The perturbation magnitude used (sqrt(eps) * max|A|, or 0 when
  /// perturbation was off).
  double perturbation_magnitude() const { return perturb_magnitude_; }
  /// Pivot growth max|L,U entry| / max|A entry| over the loaded
  /// (scaled+permuted) matrix -- the classic stability indicator; large
  /// growth means the backward error bound is weak and refinement is
  /// advisable.
  double growth_factor() const { return growth_factor_; }

  bool singular() const {
    return status_ == FactorStatus::kSingular || zero_pivots_ > 0;
  }
  int zero_pivots() const { return zero_pivots_; }

  /// Smallest |pivot| accepted, relative to the matrix max-abs; a crude
  /// stability indicator.  Partial pivoting keeps it moderate; the 2-D
  /// layout's block-restricted pivoting can drive it tiny (pair with
  /// iterative refinement).
  double min_pivot_ratio() const { return min_pivot_ratio_; }

  /// Updates elided by LazyS+ zero-block detection (0 unless
  /// NumericOptions::lazy_updates was set).
  long lazy_skipped_updates() const { return lazy_skipped_; }

  /// Footprint races found by the checker (always empty unless
  /// NumericOptions::check_races was set; empty then too when the task
  /// graph correctly orders every conflicting pair -- the Theorem 4 claim).
  const std::vector<rt::FootprintRace>& races() const { return races_; }
  bool race_checked() const { return race_checked_; }

  /// Row interchanges actually performed across all panels (ipiv entries
  /// that moved a row).  MC64 preprocessing plus threshold pivoting drives
  /// this toward zero.
  long pivot_interchanges() const;

  /// Solves A x = b (original ordering).  b.size() == n.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Solves A^T x = b (original ordering).
  std::vector<double> solve_transpose(const std::vector<double>& b) const;

  /// Blocked multi-right-hand-side solve: B is n x nrhs column-major; the
  /// result overwrites X (same shape).  Equivalent to nrhs solve() calls but
  /// runs the triangular passes with level-3 kernels across all columns.
  void solve_matrix(blas::ConstMatrixView b, blas::MatrixView x) const;

  /// True when NumericOptions::stop_after_block cut the factorization short.
  bool partial() const { return factored_blocks_ < analysis_->blocks.num_blocks(); }
  int factored_blocks() const { return factored_blocks_; }

  /// Dense Schur complement of the trailing (unfactored) block columns with
  /// respect to the factored leading part; requires partial().  Rows and
  /// columns are the trailing columns of the analysis ordering, with the
  /// leading panels' pivot interchanges already folded in.
  blas::DenseMatrix schur_complement() const;

  /// In-place variant over multiple right-hand sides is deliberately not
  /// offered; loop solve() instead (problem sizes here make it moot).

  /// Phase accounting of the pipelined run that built this factorization
  /// (PipelineStats::ran is false when the phased path ran).
  const PipelineStats& pipeline_stats() const { return pipeline_stats_; }

  /// Task-graph coarsening summary of the run (CoarsenStats::ran is false
  /// when NumericOptions::coarsen was off or not applicable).
  const taskgraph::CoarsenStats& coarsen_stats() const {
    return coarsen_stats_;
  }

  /// Tile-routing counters of the run (BlockingStats::ran is false when
  /// NumericOptions::blocking was kOff, the analysis built no plan, or the
  /// pipelined path ran -- its numeric tasks start before the full block
  /// structure, and so the plan, can exist).
  const symbolic::BlockingStats& blocking_stats() const {
    return blocking_stats_;
  }

 private:
  friend class NumericDriver;
  friend class PipelineDriver;

  /// Results a pipelined run assembled outside this class: the pipeline
  /// (core/pipeline.cpp) factorizes into its own working state while the
  /// analysis is still being built, then moves the state in here.
  struct PipelineState {
    BlockMatrix blocks;
    std::vector<std::vector<int>> ipiv;
    double min_pivot_ratio = 0.0;
    int zero_pivots = 0;
    long lazy_skipped = 0;
    FactorStatus status = FactorStatus::kOk;
    int failed_column = -1;
    std::vector<int> perturbed_columns{};
    double perturb_magnitude = 0.0;
    double growth_factor = 0.0;
    PipelineStats stats{};
    taskgraph::CoarsenStats coarsen{};
  };
  Factorization(const Analysis& analysis, PipelineState&& st);

  /// Throws std::runtime_error unless factor_usable(status_).
  void require_usable(const char* what) const;

  const Analysis* analysis_;
  BlockMatrix blocks_;
  Layout layout_ = Layout::k1D;
  std::vector<std::vector<int>> ipiv_;
  double min_pivot_ratio_ = 0.0;
  int zero_pivots_ = 0;
  long lazy_skipped_ = 0;
  int factored_blocks_ = 0;
  std::vector<rt::FootprintRace> races_;
  bool race_checked_ = false;
  FactorStatus status_ = FactorStatus::kOk;
  int failed_column_ = -1;
  std::vector<int> perturbed_columns_;
  double perturb_magnitude_ = 0.0;
  double growth_factor_ = 0.0;
  PipelineStats pipeline_stats_;
  taskgraph::CoarsenStats coarsen_stats_;
  symbolic::BlockingStats blocking_stats_;
};

/// Relative residual ||Ax - b||_inf / (||A||_inf ||x||_inf + ||b||_inf).
double relative_residual(const CscMatrix& a, const std::vector<double>& x,
                         const std::vector<double>& b);

/// Componentwise (Oettli-Prager) backward error
///   max_i |b - Ax|_i / (|A| |x| + |b|)_i,
/// skipping rows whose denominator is exactly zero.  The sharpest standard
/// measure of solve quality: ~eps means x is the exact solution of a
/// componentwise-tiny perturbation of (A, b) -- the target iterative
/// refinement drives a perturbed factorization back to.
double componentwise_backward_error(const CscMatrix& a,
                                    const std::vector<double>& x,
                                    const std::vector<double>& b);

}  // namespace plu
