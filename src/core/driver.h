// Numeric driver tier: one interface both layouts implement, so the
// Factorization constructor, the SparseLU facade, the trace writer and the
// race checker are written once against it.
//
// A driver owns nothing.  It receives the run state the Factorization
// constructor assembled (block storage loaded, pivot vectors sized, the
// layout-matching task graph, an optional race checker) and executes the
// factorization tasks over it according to NumericOptions -- enumeration,
// dispatch, locking and footprint recording only; the task BODIES live in
// core/kernels.h, shared by both drivers.
#pragma once

#include <limits>
#include <vector>

#include "core/analysis.h"
#include "core/block_storage.h"
#include "core/status.h"
#include "runtime/race_checker.h"
#include "taskgraph/coarsen.h"

namespace plu {

struct NumericOptions;

/// Mutable state of one factorization run.  Assembled by the Factorization
/// constructor; results are read back out of it after factorize().
struct NumericRun {
  const Analysis& an;
  BlockMatrix& blocks;
  /// Per-stage pivot sequences: panel-wide for the 1-D driver, local to the
  /// diagonal block for the 2-D driver (every index < the block width --
  /// which is why the layout-agnostic solves work for both).
  std::vector<std::vector<int>>& ipiv;
  /// The task graph matching the driver's granularity.
  const taskgraph::TaskGraph& graph;
  rt::RaceChecker* checker = nullptr;
  /// Number of leading stages to run (== num_blocks for a full run; less is
  /// the sequential Schur-complement mode).
  int stages = 0;
  /// Static pivot perturbation magnitude (0 disables).  Set by the
  /// Factorization constructor to sqrt(eps) * max|A| when
  /// NumericOptions::perturb_pivots is on.
  double perturb_magnitude = 0.0;
  /// Structure-aware blocking plan (symbolic/repartition.h), or nullptr to
  /// run the legacy per-block path.  Set by the Factorization constructor
  /// from Analysis::block_plan when NumericOptions::blocking is kAuto.
  /// Consuming the plan never changes factor bits: the drivers re-measure
  /// density with gemm's own exported predicates and only elide redundant
  /// scans / fuse adjacent same-decision tiles (DESIGN.md section 16).
  const symbolic::BlockPlan* plan = nullptr;

  // Outputs.
  int zero_pivots = 0;
  long lazy_skipped = 0;
  double min_pivot = std::numeric_limits<double>::infinity();
  /// Breakdown status of the run.  On kSingular / kOverflow the remaining
  /// tasks were cancelled; failed_column is the smallest global column
  /// among the breakdowns the run observed before stopping (deterministic
  /// across schedules when the matrix has a single breakdown, because only
  /// a failure triggers cancellation -- the failing task always runs).
  FactorStatus status = FactorStatus::kOk;
  int failed_column = -1;
  /// Perturbation log: global columns whose pivot was bumped (sorted).
  std::vector<int> perturbed_columns{};
  /// Task-graph coarsening summary (ran == false when coarsening was off,
  /// not applicable, or the mode was not threaded).
  taskgraph::CoarsenStats coarsen{};
  /// Tile-routing counters (ran == false when no plan drove the run).
  symbolic::BlockingStats blocking{};
};

/// The phase-spanning analyze->factor->solve driver (core/pipeline.h); a
/// friend of Factorization so it can assemble results the phased
/// constructor normally owns.
class PipelineDriver;

/// True when the pipelined path (NumericOptions::pipeline) can reproduce
/// the phased path bit-identically for this option combination.  The
/// facade falls back to phased execution -- silently, results identical --
/// when this is false: no postorder (no independent subtrees to pipeline),
/// amalgamation without require_parent_child (merges could cross tree
/// roots, so per-subtree supernode scans would diverge), non-threaded
/// modes, schedule fuzzing, race checking, and partial (Schur)
/// factorizations all stay phased.
bool pipeline_supported(const Options& aopt, const NumericOptions& nopt);

class NumericDriver {
 public:
  virtual ~NumericDriver() = default;

  virtual Layout layout() const = 0;
  /// Short human-readable name, surfaced in reports ("which driver ran").
  virtual const char* name() const = 0;
  /// Runs the factorization tasks.  Throws std::logic_error on a cyclic
  /// graph or incomplete threaded execution.
  virtual void factorize(NumericRun& run, const NumericOptions& opt) const = 0;

  /// The driver singleton for a layout.
  static const NumericDriver& driver_for(Layout layout);
};

}  // namespace plu
