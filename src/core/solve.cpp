#include "core/solve.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace plu {

namespace {

/// Parity sign of a permutation given in gather form.
int permutation_sign(const std::vector<int>& old_of) {
  const int n = static_cast<int>(old_of.size());
  std::vector<char> seen(n, 0);
  int transpositions = 0;
  for (int i = 0; i < n; ++i) {
    if (seen[i]) continue;
    int len = 0;
    int j = i;
    while (!seen[j]) {
      seen[j] = 1;
      j = old_of[j];
      ++len;
    }
    transpositions += len - 1;
  }
  return (transpositions % 2 == 0) ? 1 : -1;
}

/// Global rows of panel k in packed order.
std::vector<int> panel_global_rows(const Analysis& an, int k) {
  const symbolic::SupernodePartition& part = an.blocks.part;
  std::vector<int> rows;
  for (int r = part.first(k); r < part.end(k); ++r) rows.push_back(r);
  for (int t : an.blocks.l_blocks(k)) {
    for (int r = part.first(t); r < part.end(t); ++r) rows.push_back(r);
  }
  return rows;
}

}  // namespace

std::vector<double> solve_many(const Factorization& f,
                               const std::vector<double>& b_colmajor, int nrhs) {
  const int n = f.analysis().n;
  std::vector<double> x(b_colmajor.size());
  std::vector<double> col(n);
  for (int r = 0; r < nrhs; ++r) {
    std::copy(b_colmajor.begin() + static_cast<std::ptrdiff_t>(r) * n,
              b_colmajor.begin() + static_cast<std::ptrdiff_t>(r + 1) * n,
              col.begin());
    std::vector<double> xr = f.solve(col);
    std::copy(xr.begin(), xr.end(), x.begin() + static_cast<std::ptrdiff_t>(r) * n);
  }
  return x;
}

std::vector<int> pivot_old_of(const Factorization& f) {
  const Analysis& an = f.analysis();
  const int n = an.n;
  std::vector<int> cur(n);
  std::iota(cur.begin(), cur.end(), 0);
  for (int k = 0; k < an.blocks.num_blocks(); ++k) {
    std::vector<int> grows = panel_global_rows(an, k);
    const std::vector<int>& piv = f.panel_ipiv(k);
    for (std::size_t c = 0; c < piv.size(); ++c) {
      if (piv[c] != static_cast<int>(c)) {
        std::swap(cur[grows[c]], cur[grows[piv[c]]]);
      }
    }
  }
  return cur;
}

Determinant determinant(const Factorization& f) {
  const Analysis& an = f.analysis();
  Determinant d;
  d.log_abs = 0.0;
  int sign = 1;
  const symbolic::SupernodePartition& part = an.blocks.part;
  for (int k = 0; k < an.blocks.num_blocks(); ++k) {
    blas::ConstMatrixView panel = f.blocks().panel(k);
    const int wk = part.width(k);
    for (int c = 0; c < wk; ++c) {
      double u = panel(c, c);
      if (u == 0.0) {
        d.sign = 0;
        d.log_abs = -std::numeric_limits<double>::infinity();
        return d;
      }
      if (u < 0.0) sign = -sign;
      d.log_abs += std::log(std::abs(u));
    }
    const std::vector<int>& piv = f.panel_ipiv(k);
    for (std::size_t c = 0; c < piv.size(); ++c) {
      if (piv[c] != static_cast<int>(c)) sign = -sign;
    }
  }
  sign *= permutation_sign(an.row_perm.old_positions());
  sign *= permutation_sign(an.col_perm.old_positions());
  // Apre = Pr Dr A Dc Qc-style scaling: divide the scales back out (they
  // are positive, so the sign is unaffected).
  if (an.scaled()) {
    for (double r : an.row_scale) d.log_abs -= std::log(r);
    for (double c : an.col_scale) d.log_abs -= std::log(c);
  }
  d.sign = sign;
  return d;
}

double inverse_norm1_estimate(const Factorization& f, int max_iterations) {
  const int n = f.analysis().n;
  if (n == 0) return 0.0;
  // Higham's 1-norm estimator: power iteration on |A^{-1}| using solves
  // with A and A^T, steering with the sign vector.
  std::vector<double> x(n, 1.0 / n);
  double best = 0.0;
  int last_unit = -1;
  for (int it = 0; it < max_iterations; ++it) {
    std::vector<double> y = f.solve(x);  // y = A^{-1} x
    double norm_y = 0.0;
    for (double v : y) norm_y += std::abs(v);
    best = std::max(best, norm_y);
    std::vector<double> xi(n);
    for (int i = 0; i < n; ++i) xi[i] = (y[i] >= 0.0) ? 1.0 : -1.0;
    std::vector<double> z = f.solve_transpose(xi);  // z = A^{-T} xi
    // Convergence test: max |z_j| <= z^T x means the current x is optimal.
    int j = 0;
    double zmax = 0.0, ztx = 0.0;
    for (int i = 0; i < n; ++i) {
      if (std::abs(z[i]) > zmax) {
        zmax = std::abs(z[i]);
        j = i;
      }
      ztx += z[i] * x[i];
    }
    if (zmax <= ztx + 1e-15 * std::abs(ztx) || j == last_unit) break;
    std::fill(x.begin(), x.end(), 0.0);
    x[j] = 1.0;
    last_unit = j;
  }
  // Alternate lower bound from the classic "staircase" vector, which guards
  // against adversarial cancellation in the power iteration.
  std::vector<double> v(n);
  for (int i = 0; i < n; ++i) {
    v[i] = (i % 2 == 0 ? 1.0 : -1.0) * (1.0 + static_cast<double>(i) / (n - 1 + 1e-300));
  }
  std::vector<double> w = f.solve(v);
  double alt = 0.0;
  for (double t : w) alt += std::abs(t);
  alt = 2.0 * alt / (3.0 * n);
  return std::max(best, alt);
}

ConditionEstimate estimate_condition(const Factorization& f, const CscMatrix& a) {
  ConditionEstimate c;
  c.norm_a = a.norm1();
  c.norm_ainv = inverse_norm1_estimate(f);
  c.cond1 = c.norm_a * c.norm_ainv;
  return c;
}

double pivot_growth(const Factorization& f, const CscMatrix& a) {
  const Analysis& an = f.analysis();
  const symbolic::SupernodePartition& part = an.blocks.part;
  const BlockMatrix& bm = f.blocks();
  // max|U| over the stored factor: the upper triangle of every diagonal
  // block plus all U blocks.
  double umax = 0.0;
  for (int k = 0; k < an.blocks.num_blocks(); ++k) {
    const int wk = part.width(k);
    blas::ConstMatrixView diag = bm.panel(k).block(0, 0, wk, wk);
    for (int c = 0; c < wk; ++c) {
      for (int r = 0; r <= c; ++r) umax = std::max(umax, std::abs(diag(r, c)));
    }
    for (int i : bm.column_blocks(k)) {
      if (i >= k) break;
      umax = std::max(umax, blas::max_abs(bm.block(i, k)));
    }
  }
  // max|Apre| directly from the input entries and the scalings (the
  // permutations do not change the set of magnitudes).
  double amax = 0.0;
  for (int j = 0; j < a.cols(); ++j) {
    double cs = an.scaled() ? an.col_scale[j] : 1.0;
    for (int k = a.col_begin(j); k < a.col_end(j); ++k) {
      double rs = an.scaled() ? an.row_scale[a.row_index(k)] : 1.0;
      amax = std::max(amax, std::abs(rs * a.value(k) * cs));
    }
  }
  return amax > 0.0 ? umax / amax : 0.0;
}

blas::DenseMatrix extract_l_dense(const Factorization& f) {
  // Deferred pivoting never replays a panel's swaps on columns LEFT of the
  // panel, so the stored L column k sits at the row positions current at
  // panel k's time.  The eager-getrf L (the one satisfying L U = P Apre)
  // has those rows additionally moved by every later panel's swaps; `pos`
  // accumulates that suffix composition while we walk panels backwards.
  const Analysis& an = f.analysis();
  const int n = an.n;
  const int nb = an.blocks.num_blocks();
  blas::DenseMatrix l(n, n);
  for (int i = 0; i < n; ++i) l(i, i) = 1.0;
  const symbolic::SupernodePartition& part = an.blocks.part;
  std::vector<int> pos(n);  // pos[r] = final position of current row r
  std::iota(pos.begin(), pos.end(), 0);
  for (int k = nb - 1; k >= 0; --k) {
    blas::ConstMatrixView panel = f.blocks().panel(k);
    std::vector<int> grows = panel_global_rows(an, k);
    for (int c = 0; c < part.width(k); ++c) {
      const int col = part.first(k) + c;
      for (std::size_t r = c + 1; r < grows.size(); ++r) {
        double v = panel(static_cast<int>(r), c);
        if (v != 0.0) l(pos[grows[r]], col) = v;
      }
    }
    // Fold panel k's own swaps into pos (applied in reverse swap order so
    // that pos ends up as (later swaps) o (panel k swaps)).
    const std::vector<int>& piv = f.panel_ipiv(k);
    for (std::size_t c = piv.size(); c-- > 0;) {
      if (piv[c] != static_cast<int>(c)) {
        std::swap(pos[grows[c]], pos[grows[piv[c]]]);
      }
    }
  }
  return l;
}

blas::DenseMatrix extract_u_dense(const Factorization& f) {
  const Analysis& an = f.analysis();
  const int n = an.n;
  blas::DenseMatrix u(n, n);
  const symbolic::SupernodePartition& part = an.blocks.part;
  const BlockMatrix& bm = f.blocks();
  for (int j = 0; j < an.blocks.num_blocks(); ++j) {
    for (int i : bm.column_blocks(j)) {
      if (i > j) break;
      blas::ConstMatrixView b = bm.block(i, j);
      for (int c = 0; c < b.cols; ++c) {
        for (int r = 0; r < b.rows; ++r) {
          const int grow = part.first(i) + r;
          const int gcol = part.first(j) + c;
          if (grow <= gcol) u(grow, gcol) = b(r, c);
        }
      }
    }
  }
  return u;
}

}  // namespace plu
