#include "core/kernels.h"

#include <cmath>
#include <limits>

#include "blas/factor.h"
#include "blas/level3.h"
#include "blas/tunables.h"

namespace plu::kernels {

FactorResult factor_block(blas::MatrixView a, std::vector<int>& ipiv,
                          double threshold, double perturb_magnitude) {
  FactorResult r;
  blas::PivotPerturbation perturb;
  perturb.magnitude = perturb_magnitude;
  blas::PivotPerturbation* p = perturb_magnitude > 0.0 ? &perturb : nullptr;
  r.info = threshold < 1.0
               ? blas::getf2_threshold(a, ipiv, threshold, nullptr, p)
               : blas::getrf(a, ipiv, blas::tunables::kGetrfNb, p);
  r.perturbed = std::move(perturb.columns);
  blas::all_finite(a, &r.first_nonfinite);
  return r;
}

double min_diag_abs(blas::ConstMatrixView a) {
  double m = std::numeric_limits<double>::infinity();
  for (int c = 0; c < a.cols && c < a.rows; ++c) {
    double p = std::abs(a(c, c));
    if (p > 0.0) m = std::min(m, p);
  }
  return m;
}

void apply_panel_pivots(BlockMatrix& bm, const std::vector<int>& ipiv, int k,
                        int j) {
  std::vector<int> rows = bm.panel_rows_in_column(k, j);
  for (std::size_t c = 0; c < ipiv.size(); ++c) {
    if (ipiv[c] != static_cast<int>(c)) {
      bm.swap_rows(j, rows[c], rows[ipiv[c]]);
    }
  }
}

void apply_local_pivots(blas::MatrixView b, const std::vector<int>& ipiv) {
  blas::laswp(b, ipiv, 0, static_cast<int>(ipiv.size()));
}

void solve_with_l(blas::ConstMatrixView lkk, blas::MatrixView ukj) {
  blas::trsm(blas::Side::Left, blas::UpLo::Lower, blas::Trans::No,
             blas::Diag::Unit, 1.0, lkk, ukj);
}

void solve_with_u(blas::ConstMatrixView ukk, blas::MatrixView lik) {
  blas::trsm(blas::Side::Right, blas::UpLo::Upper, blas::Trans::No,
             blas::Diag::NonUnit, 1.0, ukk, lik);
}

void schur_update(blas::ConstMatrixView lik, blas::ConstMatrixView ukj,
                  blas::MatrixView bij) {
  blas::gemm_dispatch(blas::Trans::No, blas::Trans::No, -1.0, lik, ukj, 1.0,
                      bij);
}

void schur_update(blas::ConstMatrixView lik, blas::ConstMatrixView ukj,
                  blas::MatrixView bij, blas::GemmEngine engine) {
  blas::gemm_dispatch(blas::Trans::No, blas::Trans::No, -1.0, lik, ukj, 1.0,
                      bij, engine);
}

}  // namespace plu::kernels
