#include "core/numeric.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

#include "blas/factor.h"
#include "blas/level2.h"
#include "blas/level3.h"
#include "core/driver.h"
#include "taskgraph/analysis.h"

namespace plu {

const char* to_string(BlockingMode m) {
  return m == BlockingMode::kAuto ? "auto" : "off";
}

const char* Factorization::driver_name() const {
  return NumericDriver::driver_for(layout_).name();
}

const taskgraph::TaskGraph& Factorization::task_graph() const {
  return layout_ == Layout::k2D ? analysis_->block_graph : analysis_->graph;
}

Factorization::Factorization(const Analysis& analysis, const CscMatrix& a,
                             const NumericOptions& opt)
    : analysis_(&analysis),
      blocks_(analysis.blocks, opt.storage,
              opt.mode == ExecutionMode::kThreaded ? opt.threads : 1),
      layout_(analysis.options.layout) {
  if (a.rows() != analysis.n || a.cols() != analysis.n) {
    throw std::invalid_argument("Factorization: matrix/analysis size mismatch");
  }
  const int nb = analysis.blocks.num_blocks();
  const taskgraph::TaskGraph& graph = task_graph();
  if (layout_ == Layout::k2D && graph.size() == 0 && nb > 0) {
    throw std::logic_error(
        "Factorization: 2-D layout needs an analysis run with "
        "Options::layout = Layout::k2D (no block graph present)");
  }
  blocks_.load(analysis.permute_input(a));
  ipiv_.assign(nb, {});

  // Matrix magnitude reference for min_pivot_ratio (max |entry| of the
  // loaded, scaled+permuted matrix).
  double matrix_scale = 0.0;
  for (int j = 0; j < nb; ++j) {
    matrix_scale = std::max(matrix_scale, blas::max_abs(blocks_.column(j)));
  }
  if (matrix_scale == 0.0) matrix_scale = 1.0;

  std::unique_ptr<rt::RaceChecker> checker;
  if (opt.check_races) {
    checker = std::make_unique<rt::RaceChecker>(graph.size());
  }

  factored_blocks_ = (opt.stop_after_block >= 0 && opt.stop_after_block < nb)
                         ? opt.stop_after_block
                         : nb;
  if (opt.perturb_pivots) {
    perturb_magnitude_ =
        std::sqrt(std::numeric_limits<double>::epsilon()) * matrix_scale;
  }
  NumericRun run{analysis, blocks_, ipiv_, graph, checker.get(),
                 factored_blocks_};
  run.perturb_magnitude = perturb_magnitude_;
  if (opt.blocking == BlockingMode::kAuto && analysis.block_plan.built) {
    run.plan = &analysis.block_plan;
  }
  NumericDriver::driver_for(layout_).factorize(run, opt);
  zero_pivots_ = run.zero_pivots;
  lazy_skipped_ = run.lazy_skipped;
  min_pivot_ratio_ =
      std::isfinite(run.min_pivot) ? run.min_pivot / matrix_scale : 0.0;
  status_ = run.status;
  failed_column_ = run.failed_column;
  perturbed_columns_ = std::move(run.perturbed_columns);
  coarsen_stats_ = run.coarsen;
  blocking_stats_ = run.blocking;
  // Final factor scan: pivot growth, plus overflow the factor tasks could
  // not see (in the 1-D layout the U blocks above a panel are only written
  // by Update tasks, which perform no scan of their own).
  double factor_max = 0.0;
  for (int j = 0; j < nb; ++j) {
    blas::ConstMatrixView col = blocks_.column(j);
    factor_max = std::max(factor_max, blas::max_abs(col));
    int bad = -1;
    if (factor_usable(status_) && !blas::all_finite(col, &bad)) {
      status_ = FactorStatus::kOverflow;
      failed_column_ = analysis.blocks.part.first(j) + bad;
    }
  }
  growth_factor_ = factor_max / matrix_scale;
  // Cross-check the recorded footprints against the dependence graph the
  // run executed.
  if (checker) {
    races_ = checker->check(graph);
    race_checked_ = true;
  }
}

Factorization::Factorization(const Analysis& analysis, PipelineState&& st)
    : analysis_(&analysis),
      blocks_(std::move(st.blocks)),
      layout_(analysis.options.layout),
      ipiv_(std::move(st.ipiv)),
      min_pivot_ratio_(st.min_pivot_ratio),
      zero_pivots_(st.zero_pivots),
      lazy_skipped_(st.lazy_skipped),
      factored_blocks_(analysis.blocks.num_blocks()),
      status_(st.status),
      failed_column_(st.failed_column),
      perturbed_columns_(std::move(st.perturbed_columns)),
      perturb_magnitude_(st.perturb_magnitude),
      growth_factor_(st.growth_factor),
      pipeline_stats_(st.stats),
      coarsen_stats_(st.coarsen) {}

void Factorization::require_usable(const char* what) const {
  if (factor_usable(status_)) return;
  throw std::runtime_error(
      std::string(what) + ": factorization failed (" + to_string(status_) +
      " at column " + std::to_string(failed_column_) + ")");
}

blas::DenseMatrix Factorization::schur_complement() const {
  require_usable("schur_complement");
  if (!partial()) {
    throw std::logic_error(
        "schur_complement: factorization is complete; use "
        "NumericOptions::stop_after_block");
  }
  const Analysis& an = *analysis_;
  const symbolic::SupernodePartition& part = an.blocks.part;
  const int nb = an.blocks.num_blocks();
  const int split_col = part.first(factored_blocks_);
  const int m = an.n - split_col;
  blas::DenseMatrix s(m, m);
  for (int j = factored_blocks_; j < nb; ++j) {
    for (int i : blocks_.column_blocks(j)) {
      if (i < factored_blocks_) continue;
      blas::ConstMatrixView b = blocks_.block(i, j);
      for (int c = 0; c < b.cols; ++c) {
        for (int r = 0; r < b.rows; ++r) {
          s(part.first(i) + r - split_col, part.first(j) + c - split_col) =
              b(r, c);
        }
      }
    }
  }
  return s;
}

long Factorization::pivot_interchanges() const {
  long count = 0;
  for (const std::vector<int>& piv : ipiv_) {
    for (std::size_t c = 0; c < piv.size(); ++c) {
      if (piv[c] != static_cast<int>(c)) ++count;
    }
  }
  return count;
}

std::vector<double> Factorization::solve(const std::vector<double>& b) const {
  require_usable("solve");
  if (partial()) {
    throw std::logic_error("solve: factorization is partial (Schur mode)");
  }

  const Analysis& an = *analysis_;
  const int n = an.n;
  if (static_cast<int>(b.size()) != n) {
    throw std::invalid_argument("solve: rhs size mismatch");
  }
  const symbolic::SupernodePartition& part = an.blocks.part;
  const int nb = an.blocks.num_blocks();

  // y = Pr * b (rows to the analysis ordering), with the MC64 row scaling
  // when the analysis carries one.
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    int old = an.row_perm.old_of(i);
    y[i] = an.scaled() ? an.row_scale[old] * b[old] : b[old];
  }

  // Forward pass: replay (swap_k, eliminate_k) in panel order, exactly the
  // operation sequence the factorization applied to the matrix columns.
  std::vector<double> seg;
  for (int k = 0; k < nb; ++k) {
    const int wk = part.width(k);
    // Global rows of panel k, in packed order.
    seg.clear();
    std::vector<int> grows;  // global rows of panel k, packed order
    for (int r = part.first(k); r < part.end(k); ++r) grows.push_back(r);
    for (int t : an.blocks.l_blocks(k)) {
      for (int r = part.first(t); r < part.end(t); ++r) grows.push_back(r);
    }
    seg.resize(grows.size());
    for (std::size_t p = 0; p < grows.size(); ++p) seg[p] = y[grows[p]];
    // Pivot swaps.
    const std::vector<int>& piv = ipiv_[k];
    for (std::size_t c = 0; c < piv.size(); ++c) {
      if (piv[c] != static_cast<int>(c)) std::swap(seg[c], seg[piv[c]]);
    }
    // Unit-lower solve on the diagonal block, then L updates below.
    blas::ConstMatrixView panel = blocks_.panel(k);
    blas::ConstMatrixView lkk = panel.block(0, 0, wk, wk);
    blas::trsv(blas::UpLo::Lower, blas::Trans::No, blas::Diag::Unit, lkk,
               seg.data(), 1);
    const int below = static_cast<int>(grows.size()) - wk;
    if (below > 0) {
      blas::ConstMatrixView lbelow = panel.block(wk, 0, below, wk);
      blas::gemv(blas::Trans::No, -1.0, lbelow, seg.data(), 1, 1.0,
                 seg.data() + wk, 1);
    }
    for (std::size_t p = 0; p < grows.size(); ++p) y[grows[p]] = seg[p];
  }

  // Backward pass, column-oriented: z_k = U_kk^{-1} y_k, then subtract
  // U_ik z_k from every U block above the diagonal of block column k.
  for (int k = nb - 1; k >= 0; --k) {
    const int wk = part.width(k);
    double* yk = y.data() + part.first(k);
    blas::ConstMatrixView panel = blocks_.panel(k);
    blas::ConstMatrixView ukk = panel.block(0, 0, wk, wk);
    blas::trsv(blas::UpLo::Upper, blas::Trans::No, blas::Diag::NonUnit, ukk, yk, 1);
    for (int i : blocks_.column_blocks(k)) {
      if (i >= k) break;
      blas::ConstMatrixView uik = blocks_.block(i, k);
      blas::gemv(blas::Trans::No, -1.0, uik, yk, 1, 1.0,
                 y.data() + part.first(i), 1);
    }
  }

  // x[col_perm.old_of(j)] = y[j], undoing the MC64 column scaling.
  std::vector<double> x(n);
  for (int j = 0; j < n; ++j) {
    int old = an.col_perm.old_of(j);
    x[old] = an.scaled() ? an.col_scale[old] * y[j] : y[j];
  }
  return x;
}

void Factorization::solve_matrix(blas::ConstMatrixView b, blas::MatrixView x) const {
  require_usable("solve_matrix");
  if (partial()) {
    throw std::logic_error("solve: factorization is partial (Schur mode)");
  }

  const Analysis& an = *analysis_;
  const int n = an.n;
  const int nrhs = b.cols;
  if (b.rows != n || x.rows != n || x.cols != nrhs) {
    throw std::invalid_argument("solve_matrix: shape mismatch");
  }
  const symbolic::SupernodePartition& part = an.blocks.part;
  const int nb = an.blocks.num_blocks();

  // Y = (scaled) Pr B, column-major workspace.
  blas::DenseMatrix y(n, nrhs);
  for (int i = 0; i < n; ++i) {
    int old = an.row_perm.old_of(i);
    double s = an.scaled() ? an.row_scale[old] : 1.0;
    for (int r = 0; r < nrhs; ++r) y(i, r) = s * b(old, r);
  }

  // Forward pass: per panel, gather the packed segment for all right-hand
  // sides, replay the pivots, unit-lower trsm, one gemm for the L part.
  blas::DenseMatrix seg_buf(0, 0);
  for (int k = 0; k < nb; ++k) {
    const int wk = part.width(k);
    std::vector<int> grows;
    for (int r = part.first(k); r < part.end(k); ++r) grows.push_back(r);
    for (int t : an.blocks.l_blocks(k)) {
      for (int r = part.first(t); r < part.end(t); ++r) grows.push_back(r);
    }
    const int m = static_cast<int>(grows.size());
    blas::DenseMatrix seg(m, nrhs);
    for (int p = 0; p < m; ++p) {
      for (int r = 0; r < nrhs; ++r) seg(p, r) = y(grows[p], r);
    }
    blas::laswp(seg.view(), ipiv_[k], 0, static_cast<int>(ipiv_[k].size()));
    blas::ConstMatrixView panel = blocks_.panel(k);
    blas::trsm(blas::Side::Left, blas::UpLo::Lower, blas::Trans::No,
               blas::Diag::Unit, 1.0, panel.block(0, 0, wk, wk),
               seg.view().block(0, 0, wk, nrhs));
    if (m > wk) {
      blas::gemm_dispatch(blas::Trans::No, blas::Trans::No, -1.0,
                          panel.block(wk, 0, m - wk, wk),
                          seg.view().block(0, 0, wk, nrhs), 1.0,
                          seg.view().block(wk, 0, m - wk, nrhs));
    }
    for (int p = 0; p < m; ++p) {
      for (int r = 0; r < nrhs; ++r) y(grows[p], r) = seg(p, r);
    }
  }

  // Backward pass: per block column, upper trsm on the diagonal block, then
  // one gemm per U block above it.
  for (int k = nb - 1; k >= 0; --k) {
    const int wk = part.width(k);
    blas::MatrixView yk = y.view().block(part.first(k), 0, wk, nrhs);
    blas::ConstMatrixView panel = blocks_.panel(k);
    blas::trsm(blas::Side::Left, blas::UpLo::Upper, blas::Trans::No,
               blas::Diag::NonUnit, 1.0, panel.block(0, 0, wk, wk), yk);
    blas::ConstMatrixView yk_c = yk;
    for (int i : blocks_.column_blocks(k)) {
      if (i >= k) break;
      blas::gemm_dispatch(blas::Trans::No, blas::Trans::No, -1.0,
                          blocks_.block(i, k), yk_c, 1.0,
                          y.view().block(part.first(i), 0, part.width(i), nrhs));
    }
  }

  // X = (scaled) Qc Y.
  for (int j = 0; j < n; ++j) {
    int old = an.col_perm.old_of(j);
    double s = an.scaled() ? an.col_scale[old] : 1.0;
    for (int r = 0; r < nrhs; ++r) x(old, r) = s * y(j, r);
  }
}

std::vector<double> Factorization::solve_transpose(const std::vector<double>& b) const {
  require_usable("solve_transpose");
  if (partial()) {
    throw std::logic_error("solve: factorization is partial (Schur mode)");
  }

  // A = Pr^T Apre Qc^T and Phat Apre = L U, so
  //   A^T x = b  <=>  U^T L^T Phat (Pr x) = Qc^T b.
  const Analysis& an = *analysis_;
  const int n = an.n;
  if (static_cast<int>(b.size()) != n) {
    throw std::invalid_argument("solve_transpose: rhs size mismatch");
  }
  const symbolic::SupernodePartition& part = an.blocks.part;
  const int nb = an.blocks.num_blocks();

  // c = Qc^T b (column-scaled when the analysis carries MC64 scalings:
  // A^T = Qc Dc Apre^T Dr Pr up to the permutation frames).
  std::vector<double> y(n);
  for (int j = 0; j < n; ++j) {
    int old = an.col_perm.old_of(j);
    y[j] = an.scaled() ? an.col_scale[old] * b[old] : b[old];
  }

  // Forward solve U^T z = c (U^T is lower triangular), column-oriented over
  // the stored U blocks: subtract the already-solved pieces, then solve the
  // transposed diagonal block.
  for (int k = 0; k < nb; ++k) {
    const int wk = part.width(k);
    double* yk = y.data() + part.first(k);
    for (int i : blocks_.column_blocks(k)) {
      if (i >= k) break;
      blas::ConstMatrixView uik = blocks_.block(i, k);
      // y_k -= U_ik^T y_i.
      blas::gemv(blas::Trans::Yes, -1.0, uik, y.data() + part.first(i), 1, 1.0,
                 yk, 1);
    }
    blas::ConstMatrixView panel = blocks_.panel(k);
    blas::ConstMatrixView ukk = panel.block(0, 0, wk, wk);
    blas::trsv(blas::UpLo::Upper, blas::Trans::Yes, blas::Diag::NonUnit, ukk, yk, 1);
  }

  // The stored L lives at deferred-pivot positions, so the global identity
  // Apre = Phat^T L U cannot be applied with the stored blocks directly.
  // Instead use the elimination-operator form: the forward factorization is
  // E = L_N^{-1} S_N ... L_1^{-1} S_1 with S_k the panel-k interchanges and
  // L_k the panel-k elementary eliminator (at the row positions current at
  // step k -- exactly what the storage holds), and Apre = E^{-1} U.  Hence
  // Apre^T w = c  solves as  v = U^{-T} c  followed by  w = E^T v, i.e. for
  // k = N..1: v := L_k^{-T} v, then v := S_k^T v (reverse the interchanges).
  std::vector<double> seg;
  for (int k = nb - 1; k >= 0; --k) {
    const int wk = part.width(k);
    std::vector<int> grows;
    for (int r = part.first(k); r < part.end(k); ++r) grows.push_back(r);
    for (int t : an.blocks.l_blocks(k)) {
      for (int r = part.first(t); r < part.end(t); ++r) grows.push_back(r);
    }
    seg.resize(grows.size());
    for (std::size_t p = 0; p < grows.size(); ++p) seg[p] = y[grows[p]];
    // L_k^{-T}: seg_K -= L_below^T seg_below, then unit-upper solve with
    // the transposed diagonal block.
    blas::ConstMatrixView panel = blocks_.panel(k);
    const int below = static_cast<int>(grows.size()) - wk;
    if (below > 0) {
      blas::ConstMatrixView lbelow = panel.block(wk, 0, below, wk);
      blas::gemv(blas::Trans::Yes, -1.0, lbelow, seg.data() + wk, 1, 1.0,
                 seg.data(), 1);
    }
    blas::ConstMatrixView lkk = panel.block(0, 0, wk, wk);
    blas::trsv(blas::UpLo::Lower, blas::Trans::Yes, blas::Diag::Unit, lkk,
               seg.data(), 1);
    // S_k^T: replay panel k's interchanges in reverse.
    const std::vector<int>& piv = ipiv_[k];
    for (std::size_t c = piv.size(); c-- > 0;) {
      if (piv[c] != static_cast<int>(c)) {
        std::swap(seg[c], seg[piv[c]]);
      }
    }
    for (std::size_t p = 0; p < grows.size(); ++p) y[grows[p]] = seg[p];
  }

  // x = Pr^T w, undoing the row scaling.
  std::vector<double> x(n);
  for (int i = 0; i < n; ++i) {
    int old = an.row_perm.old_of(i);
    x[old] = an.scaled() ? an.row_scale[old] * y[i] : y[i];
  }
  return x;
}

double relative_residual(const CscMatrix& a, const std::vector<double>& x,
                         const std::vector<double>& b) {
  std::vector<double> r;
  a.matvec(x, r);
  double rn = 0.0, xn = 0.0, bn = 0.0;
  for (std::size_t i = 0; i < r.size(); ++i) {
    rn = std::max(rn, std::abs(r[i] - b[i]));
    bn = std::max(bn, std::abs(b[i]));
  }
  for (double v : x) xn = std::max(xn, std::abs(v));
  double denom = a.norm_inf() * xn + bn;
  return denom > 0.0 ? rn / denom : rn;
}

double componentwise_backward_error(const CscMatrix& a,
                                    const std::vector<double>& x,
                                    const std::vector<double>& b) {
  const int n = a.rows();
  std::vector<double> r;
  a.matvec(x, r);  // r = A x
  std::vector<double> absax(n, 0.0);  // |A| |x|, accumulated columnwise
  for (int j = 0; j < a.cols(); ++j) {
    const double axj = std::abs(x[j]);
    for (int k = a.col_begin(j); k < a.col_end(j); ++k) {
      absax[a.row_index(k)] += std::abs(a.value(k)) * axj;
    }
  }
  double berr = 0.0;
  for (int i = 0; i < n; ++i) {
    const double denom = absax[i] + std::abs(b[i]);
    if (denom > 0.0) {
      berr = std::max(berr, std::abs(b[i] - r[i]) / denom);
    }
  }
  return berr;
}

}  // namespace plu
