// Dense-block storage of the factored matrix (the S+ layout).
//
// Each block column j owns one column-major buffer stacking the dense
// submatrix blocks of its structurally nonzero row blocks in ascending
// order: U blocks (i < j), the diagonal block, then L blocks (i > j).
// Because row blocks are sorted, the Factor(k) panel -- diagonal block plus
// L blocks -- is a contiguous tail of block column k's buffer, directly
// usable as a getrf operand.
//
// Storage backing (StorageMode):
//
//   kArena (default): ONE contiguous 64-byte-aligned slab sized exactly
//   from the symbolic block structure, with every column buffer starting
//   on a 64-byte boundary inside it.  One allocation instead of one per
//   block column, set_zero() as a single contiguous fill (the
//   refactorization fast path), and pages first-touched by the worker
//   threads that will own each column range (`init_threads`), so on NUMA
//   machines the column data lands near its consumers.  The deferred
//   (pipeline) constructor cannot know the total size up front and uses a
//   segmented bump allocator over the same aligned slabs instead.
//
//   kVectors: the original per-column std::vector<std::vector<double>>
//   layout, kept as the storage-ablation baseline
//   (bench_scaling_modern.cpp measures one against the other).
//
// Values are identical under both modes -- only placement differs -- so
// factorizations are bitwise equal across modes.
//
// Explicit zeros inside blocks are stored and computed on, exactly as in
// S*/S+ ("even if some operations will involve zero elements").
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "blas/dense.h"
#include "matrix/csc.h"
#include "symbolic/blocks.h"

namespace plu {

enum class StorageMode {
  kArena,    // one contiguous 64-byte-aligned arena (default)
  kVectors,  // per-column vectors (ablation baseline)
};

const char* to_string(StorageMode m);

class BlockMatrix {
 public:
  /// Tag for the deferred constructor below.
  struct DeferredColumns {};

  /// Allocates zeroed storage for the block structure.  `bs` must outlive
  /// the BlockMatrix.  With `init_threads` > 1 under kArena, the initial
  /// zeroing fans out over that many threads, each touching a contiguous
  /// range of columns first (NUMA first-touch placement).
  explicit BlockMatrix(const symbolic::BlockStructure& bs,
                       StorageMode mode = StorageMode::kArena,
                       int init_threads = 1);

  /// Deferred construction for the analyze->factor pipeline: `bs.part` must
  /// be final but `bs.bpattern` may still be empty -- every accessor reads
  /// only `bs.part`, so columns can be materialized one at a time with
  /// init_column()/load_column() as their block lists are discovered.
  /// Under kArena, columns are carved out of growing aligned segments.
  BlockMatrix(const symbolic::BlockStructure& bs, DeferredColumns,
              StorageMode mode = StorageMode::kArena);

  BlockMatrix(BlockMatrix&&) noexcept = default;
  BlockMatrix& operator=(BlockMatrix&&) noexcept = default;
  BlockMatrix(const BlockMatrix&) = delete;
  BlockMatrix& operator=(const BlockMatrix&) = delete;

  /// Materializes block column j from its sorted structurally-nonzero row
  /// block list (must include the diagonal).  One-shot per column; NOT
  /// thread-safe (the pipeline's Mat chain serializes these calls).
  void init_column(int j, const std::vector<int>& row_blocks);

  /// Scatters the CSC columns of block column j (matrix already permuted to
  /// the analysis ordering) into the freshly init'ed -- thus zeroed --
  /// column buffer.  Per-column twin of load().
  void load_column(int j, const CscMatrix& a);

  const symbolic::BlockStructure& structure() const { return *bs_; }
  int num_block_columns() const { return bs_->num_blocks(); }

  StorageMode storage_mode() const { return mode_; }

  /// Bytes of block storage held (arena/segment capacity incl. alignment
  /// padding, or the summed vector sizes) -- the peak numeric footprint
  /// surfaced in FactorizationReport.
  std::size_t storage_bytes() const;

  /// Scatters a CSC matrix (already permuted to the analysis ordering) into
  /// the blocks.  Throws if an entry falls outside the block pattern.
  void load(const CscMatrix& a);

  /// Resets all values to zero (for refactorization on the same structure).
  /// Under kArena this is one contiguous fill of the slab.
  void set_zero();

  /// Dense view of block (i, j); block must be structurally present.
  blas::MatrixView block(int i, int j);
  blas::ConstMatrixView block(int i, int j) const;

  /// Contiguous panel of block column k: rows of all blocks i >= k.
  blas::MatrixView panel(int k);
  blas::ConstMatrixView panel(int k) const;

  /// Number of rows in panel(k) (diagonal width + L row widths).
  int panel_height(int k) const;

  /// Total rows of block column j's buffer.
  int column_height(int j) const;

  /// Sorted structurally-nonzero row blocks of column j.
  const std::vector<int>& column_blocks(int j) const { return blocks_[j]; }

  /// Row offset of block i inside column j's buffer; -1 if absent.
  int block_offset(int i, int j) const;

  /// Buffer rows (in column j) corresponding to the packed panel rows of
  /// panel k, in panel order.  Every row block of panel k must be present in
  /// column j (guaranteed by block-level closure when Update(k, j) exists).
  std::vector<int> panel_rows_in_column(int k, int j) const;

  /// Swaps buffer rows r1 and r2 of column j (all of its width).
  void swap_rows(int j, int r1, int r2);

  /// Raw column buffer view (rows = column_height(j), ld likewise).
  blas::MatrixView column(int j);
  blas::ConstMatrixView column(int j) const;

  /// Reconstructs the dense matrix this block storage represents (tests on
  /// small problems only).
  blas::DenseMatrix to_dense() const;

  /// Sum of all buffer sizes, in doubles (memory diagnostics; excludes
  /// alignment padding).
  std::size_t stored_doubles() const;

 private:
  struct AlignedDelete {
    void operator()(double* p) const;
  };
  using Slab = std::unique_ptr<double[], AlignedDelete>;

  static Slab allocate_slab(std::size_t doubles);

  int block_pos(int i, int j) const;  // index of block i in blocks_[j]; -1 absent

  /// Computes blocks_/offsets_/diag_pos_ for column j and returns its
  /// buffer length in doubles.
  std::size_t describe_column(int j, const std::vector<int>& row_blocks);

  /// Assigns column j's base pointer: a zeroed buffer of `doubles` doubles
  /// from the current segment (kArena deferred) or data_[j] (kVectors).
  void place_deferred_column(int j, std::size_t doubles);

  const symbolic::BlockStructure* bs_;
  StorageMode mode_ = StorageMode::kArena;
  bool deferred_ = false;

  // kArena, full construction: one slab.
  Slab arena_;
  std::size_t arena_doubles_ = 0;
  // kArena, deferred construction: bump-allocated segments.
  std::vector<Slab> segments_;
  std::vector<std::size_t> segment_doubles_;  // capacity per segment
  std::size_t segment_used_ = 0;              // doubles used in segments_.back()

  std::vector<double*> col_ptr_;            // base pointer per block column
  std::vector<std::size_t> col_doubles_;    // buffer length per block column
  std::vector<std::vector<double>> data_;   // kVectors backing
  std::vector<std::vector<int>> blocks_;    // sorted row-block ids
  std::vector<std::vector<int>> offsets_;   // per column: offset per block + total
  std::vector<int> diag_pos_;               // position of diagonal block in blocks_[j]
};

}  // namespace plu
