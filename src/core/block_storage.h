// Dense-block storage of the factored matrix (the S+ layout).
//
// Each block column j owns one column-major buffer stacking the dense
// submatrix blocks of its structurally nonzero row blocks in ascending
// order: U blocks (i < j), the diagonal block, then L blocks (i > j).
// Because row blocks are sorted, the Factor(k) panel -- diagonal block plus
// L blocks -- is a contiguous tail of block column k's buffer, directly
// usable as a getrf operand.
//
// Explicit zeros inside blocks are stored and computed on, exactly as in
// S*/S+ ("even if some operations will involve zero elements").
#pragma once

#include <vector>

#include "blas/dense.h"
#include "matrix/csc.h"
#include "symbolic/blocks.h"

namespace plu {

class BlockMatrix {
 public:
  /// Tag for the deferred constructor below.
  struct DeferredColumns {};

  /// Allocates zeroed storage for the block structure.  `bs` must outlive
  /// the BlockMatrix.
  explicit BlockMatrix(const symbolic::BlockStructure& bs);

  /// Deferred construction for the analyze->factor pipeline: `bs.part` must
  /// be final but `bs.bpattern` may still be empty -- every accessor reads
  /// only `bs.part`, so columns can be materialized one at a time with
  /// init_column()/load_column() as their block lists are discovered.
  BlockMatrix(const symbolic::BlockStructure& bs, DeferredColumns);

  /// Materializes block column j from its sorted structurally-nonzero row
  /// block list (must include the diagonal).  One-shot per column.
  void init_column(int j, const std::vector<int>& row_blocks);

  /// Scatters the CSC columns of block column j (matrix already permuted to
  /// the analysis ordering) into the freshly init'ed -- thus zeroed --
  /// column buffer.  Per-column twin of load().
  void load_column(int j, const CscMatrix& a);

  const symbolic::BlockStructure& structure() const { return *bs_; }
  int num_block_columns() const { return bs_->num_blocks(); }

  /// Scatters a CSC matrix (already permuted to the analysis ordering) into
  /// the blocks.  Throws if an entry falls outside the block pattern.
  void load(const CscMatrix& a);

  /// Resets all values to zero (for refactorization on the same structure).
  void set_zero();

  /// Dense view of block (i, j); block must be structurally present.
  blas::MatrixView block(int i, int j);
  blas::ConstMatrixView block(int i, int j) const;

  /// Contiguous panel of block column k: rows of all blocks i >= k.
  blas::MatrixView panel(int k);
  blas::ConstMatrixView panel(int k) const;

  /// Number of rows in panel(k) (diagonal width + L row widths).
  int panel_height(int k) const;

  /// Total rows of block column j's buffer.
  int column_height(int j) const;

  /// Sorted structurally-nonzero row blocks of column j.
  const std::vector<int>& column_blocks(int j) const { return blocks_[j]; }

  /// Row offset of block i inside column j's buffer; -1 if absent.
  int block_offset(int i, int j) const;

  /// Buffer rows (in column j) corresponding to the packed panel rows of
  /// panel k, in panel order.  Every row block of panel k must be present in
  /// column j (guaranteed by block-level closure when Update(k, j) exists).
  std::vector<int> panel_rows_in_column(int k, int j) const;

  /// Swaps buffer rows r1 and r2 of column j (all of its width).
  void swap_rows(int j, int r1, int r2);

  /// Raw column buffer view (rows = column_height(j), ld likewise).
  blas::MatrixView column(int j);
  blas::ConstMatrixView column(int j) const;

  /// Reconstructs the dense matrix this block storage represents (tests on
  /// small problems only).
  blas::DenseMatrix to_dense() const;

  /// Sum of all buffer sizes, in doubles (memory diagnostics).
  std::size_t stored_doubles() const;

 private:
  int block_pos(int i, int j) const;  // index of block i in blocks_[j]; -1 absent

  const symbolic::BlockStructure* bs_;
  std::vector<std::vector<double>> data_;    // per block column
  std::vector<std::vector<int>> blocks_;     // sorted row-block ids
  std::vector<std::vector<int>> offsets_;    // per column: offset per block + total
  std::vector<int> diag_pos_;                // position of diagonal block in blocks_[j]
};

}  // namespace plu
