// Symbolic analysis pipeline (steps 1-2 of the paper's scheme, plus the
// paper's contributions): ordering -> transversal -> static symbolic
// factorization -> LU eforest -> postorder -> supernode partition +
// amalgamation -> block structure -> task dependence graph + costs.
#pragma once

#include <chrono>
#include <memory>
#include <vector>

#include "core/layout.h"
#include "graph/forest.h"
#include "matrix/csc.h"
#include "ordering/ordering.h"
#include "symbolic/blocks.h"
#include "symbolic/repartition.h"
#include "symbolic/static_symbolic.h"
#include "symbolic/supernodes.h"
#include "taskgraph/build.h"
#include "taskgraph/costs.h"

namespace plu {

/// Threading knobs for the ANALYSIS pipeline (the numeric phase has its own
/// NumericOptions::threads).  The parallel pipeline is bit-identical to the
/// sequential one by construction -- every fanned-out loop is write-disjoint
/// or commutative, and floating-point totals are summed in sequential order
/// (DESIGN.md section 11) -- so turning it on changes timings only, never a
/// single artifact.
struct AnalysisOptions {
  /// Run the symbolic pipeline on a worker team.
  bool parallel_analyze = false;
  /// Team size; 0 = std::thread::hardware_concurrency().
  int threads = 0;
  /// Matrices below this order always analyze sequentially (the per-step
  /// loops are too small to amortize even a wakeup).
  int min_parallel_n = 128;
  /// Per-loop work gate forwarded to rt::Team: loops with less estimated
  /// work run inline on the caller.  Tests set 0 to force every loop
  /// through the parallel code paths.
  long min_step_work = rt::Team::kDefaultMinWork;
};

/// Wall-clock seconds per analysis phase, filled by analyze_pattern().
/// The sum of the phases can be slightly under `total` (permutation
/// composition and bookkeeping between phases are unattributed).
struct AnalysisTimings {
  double ordering = 0.0;          // fill-reducing column ordering
  double transversal = 0.0;       // zero-free diagonal matching
  double symbolic = 0.0;          // static symbolic factorization
  double eforest_postorder = 0.0; // LU eforest + postorder + permute
  double supernodes = 0.0;        // partition + amalgamation
  double blocks = 0.0;            // block structure + closure + beforest
  double taskgraph = 0.0;         // task graph + cost model
  double total = 0.0;
  int threads = 1;                // team lanes the analysis ran with
  bool parallel = false;          // whether the parallel pipeline was taken
};

struct Options {
  ordering::Method ordering = ordering::Method::kMinimumDegreeAtA;
  /// With ordering == kAuto: break the policy call with an exact
  /// Cholesky-fill probe of the pick vs its runner-up (ordering::Controls).
  /// Costs two extra orderings; deterministic either way.
  bool ordering_dry_run = false;
  symbolic::Engine symbolic_engine = symbolic::Engine::kBitset;
  /// Permute by a postorder of the LU eforest (Section 3).  Off reproduces
  /// the "SN" arm of Table 3.
  bool postorder = true;
  bool amalgamate = true;
  symbolic::AmalgamationOptions amalgamation;
  /// Which dependence graph to build (Section 4).  kEforest is the paper's.
  taskgraph::GraphKind task_graph = taskgraph::GraphKind::kEforest;
  /// Numeric layout (core/layout.h): k1D runs the paper's block-column
  /// Factor/Update tasks; k2D runs per-block tasks with block-restricted
  /// pivoting and makes the analysis also build Analysis::block_graph.
  Layout layout = Layout::k1D;
  /// MC64-style preprocessing (graph/weighted_matching.h): permute the rows
  /// so the product of diagonal magnitudes is maximal and scale the matrix
  /// to an I-matrix before everything else.  The standard stability guard
  /// for static-pivoting factorizations.  Requires numeric values, so it is
  /// ignored by analyze_pattern().  Implies symmetric_ordering.
  bool scale_and_permute = false;
  /// Apply the fill-reducing ordering to rows AND columns (instead of
  /// columns only).  Preserves an existing diagonal matching -- which is
  /// the point of scale_and_permute -- at a possible small fill cost.
  bool symmetric_ordering = false;
  /// Analysis-phase threading (off by default; bit-identical when on).
  AnalysisOptions analysis;
};

/// Everything the numeric factorization and the schedulers need, fully
/// determined before any numeric work (the point of the static approach).
struct Analysis {
  Options options;
  int n = 0;
  int nnz_input = 0;

  /// Permutations (and optional MC64 scalings) such that the factored
  /// matrix is
  ///   Apre(i, j) = rs(i) * A(row_perm.old_of(i), col_perm.old_of(j)) * cs(j)
  /// with rs(i) = row_scale[row_perm.old_of(i)] (1 when scaling is off) and
  /// cs likewise.  The scale vectors are indexed by ORIGINAL row/column.
  Permutation row_perm;
  Permutation col_perm;
  std::vector<double> row_scale;  // empty unless options.scale_and_permute
  std::vector<double> col_scale;

  bool scaled() const { return !row_scale.empty(); }

  /// What the ordering dispatch ran and why (method chosen by the kAuto
  /// policy, structural features, dry-run fill) -- ordering.h.
  ordering::Decision ordering_decision;

  /// Static symbolic factorization of Apre (post-ordering applied).
  symbolic::SymbolicResult symbolic;
  /// Column-level LU eforest of symbolic.abar.
  graph::Forest eforest;

  symbolic::SupernodePartition exact_partition;  // before amalgamation
  symbolic::SupernodePartition partition;        // final
  symbolic::BlockStructure blocks;
  /// Structure-aware blocking plan over `blocks` (symbolic/repartition.h):
  /// per-block densities, tile classes and cached L lists.  Predictions and
  /// cached structure only -- consuming it never changes factor bits.  Not
  /// built by the analyze->factor pipeline (core/pipeline.cpp), whose
  /// numeric tasks start before the full structure exists.
  symbolic::BlockPlan block_plan;

  taskgraph::TaskGraph graph;
  taskgraph::TaskCosts costs;
  /// Block-granularity task graph (2-D tasks + costs); built only when
  /// options.layout == Layout::k2D -- empty otherwise.  Benchmarks wanting
  /// it without the 2-D numeric path call taskgraph::build_task_graph with
  /// Granularity::kBlock directly.
  taskgraph::TaskGraph block_graph;

  /// Sizes of the diagonal blocks of the block-upper-triangular form
  /// (tree sizes of the postordered eforest; NoBlks of Table 3 is size()).
  std::vector<int> diag_block_sizes;

  /// Per-phase wall-clock breakdown of the analyze run that produced this
  /// (excluded from bit-identity comparisons, obviously).
  AnalysisTimings timings;

  double fill_ratio() const { return symbolic.fill_ratio(nnz_input); }

  /// Applies row_perm/col_perm to the input matrix.
  CscMatrix permute_input(const CscMatrix& a) const;
};

/// Runs the full pipeline.  Throws std::invalid_argument for non-square or
/// structurally singular input.
Analysis analyze(const CscMatrix& a, const Options& opt = {});

/// Pattern-only variant (values of `a` ignored).
Analysis analyze_pattern(const Pattern& a, const Options& opt = {});

/// The analysis pipeline split at its natural seam -- after step (3) the
/// postordered Abar and eforest are final, and every later artifact
/// (supernodes, blocks, task graph) decomposes per eforest subtree.  The
/// analyze->factor pipeline (core/pipeline.cpp) runs the prefix inline and
/// replaces the suffix with per-subtree tasks; analyze_pattern() is exactly
/// analyze_suffix(analyze_prefix(...)), so the split is pure code motion.
struct AnalysisPrefix {
  /// Steps 1-3 filled: options, n, nnz_input, perms, symbolic, eforest,
  /// diag_block_sizes, timings through eforest_postorder.
  Analysis an;
  /// The analysis team, alive for the suffix (single lane when sequential).
  std::unique_ptr<rt::Team> team;
  std::chrono::steady_clock::time_point t_start;
  std::chrono::steady_clock::time_point last;  // phase-timer cursor
};

AnalysisPrefix analyze_prefix(const Pattern& a, const Options& opt);
Analysis analyze_suffix(AnalysisPrefix pre);

}  // namespace plu
