// Iterative refinement: recovers accuracy lost to pivot growth by iterating
// x += A^{-1}(b - Ax) with the (approximate) factored inverse.
#pragma once

#include <vector>

#include "core/numeric.h"

namespace plu {

struct RefineResult {
  std::vector<double> x;
  std::vector<double> residual_history;  // relative residual per iteration,
                                         // starting with the unrefined solve
  int iterations = 0;
  bool converged = false;
  /// Componentwise (Oettli-Prager) backward error of the final x -- the
  /// measure that shows refinement recovering the accuracy a perturbed
  /// factorization (NumericOptions::perturb_pivots) gave up.
  double backward_error = 0.0;
};

struct RefineOptions {
  int max_iterations = 5;
  double target_residual = 1e-14;
};

/// Solves A x = b with iterative refinement on top of the factorization.
RefineResult refined_solve(const Factorization& f, const CscMatrix& a,
                           const std::vector<double>& b,
                           const RefineOptions& opt = {});

}  // namespace plu
