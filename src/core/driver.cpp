#include "core/driver.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "blas/dense.h"
#include "core/kernels.h"
#include "core/numeric.h"
#include "runtime/dag_executor.h"

namespace plu {

const char* to_string(Layout layout) {
  return layout == Layout::k2D ? "2d" : "1d";
}

const char* to_string(FactorStatus s) {
  switch (s) {
    case FactorStatus::kOk:
      return "ok";
    case FactorStatus::kPerturbed:
      return "perturbed";
    case FactorStatus::kSingular:
      return "singular";
    case FactorStatus::kOverflow:
      return "overflow";
    case FactorStatus::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

namespace {

/// State shared by both per-run task dispatchers: pivot/elision counters,
/// the min-accepted-pivot fold, and the optional per-block-column mutexes.
class RunState {
 public:
  RunState(NumericRun& run, bool take_locks)
      : run_(run) {
    if (take_locks) {
      locks_ = std::make_unique<std::vector<std::mutex>>(
          run.an.blocks.num_blocks());
    }
  }

  void finish() {
    run_.zero_pivots = zero_pivots_.load();
    run_.lazy_skipped = lazy_skipped_.load();
    run_.blocking.ran = run_.plan != nullptr;
    run_.blocking.tile_runs = tile_runs_.load();
    run_.blocking.gemms_fused = gemms_fused_.load();
    run_.blocking.routed_packed = routed_packed_.load();
    run_.blocking.routed_direct = routed_direct_.load();
    run_.blocking.scans_elided = scans_elided_.load();
    {
      std::lock_guard<std::mutex> lock(min_pivot_mu_);
      run_.min_pivot = min_pivot_;
    }
    std::lock_guard<std::mutex> lock(fail_mu_);
    std::sort(perturbed_.begin(), perturbed_.end());
    run_.perturbed_columns = std::move(perturbed_);
    if (fail_col_ >= 0) {
      run_.status = fail_status_;
      run_.failed_column = fail_col_;
    } else {
      run_.status = run_.perturbed_columns.empty() ? FactorStatus::kOk
                                                   : FactorStatus::kPerturbed;
      run_.failed_column = -1;
    }
  }

  /// Token the executors watch: the first observed breakdown cancels it, so
  /// the remaining tasks drain without running (runtime/dag_executor.h).
  rt::CancelToken* cancel() { return &cancel_; }

 protected:
  std::unique_lock<std::mutex> maybe_lock(int column) {
    if (!locks_) return {};
    return std::unique_lock<std::mutex>((*locks_)[column]);
  }

  /// Records a breakdown at global column `col` and cancels the run.  When
  /// several in-flight factor tasks break down concurrently, the smallest
  /// column wins (and, at equal columns, the first reporter).
  void fail(int col, FactorStatus status) {
    {
      std::lock_guard<std::mutex> lock(fail_mu_);
      if (fail_col_ < 0 || col < fail_col_) {
        fail_col_ = col;
        fail_status_ = status;
      }
    }
    cancel_.cancel();
  }

  /// Folds one block-factor outcome into the run-wide status.  `col0` is
  /// the global column of the block's first panel column, so breakdown and
  /// perturbation positions are reported in matrix coordinates.
  void count_factor(const kernels::FactorResult& r, int col0,
                    double min_diag) {
    {
      std::lock_guard<std::mutex> lock(min_pivot_mu_);
      min_pivot_ = std::min(min_pivot_, min_diag);
    }
    if (!r.perturbed.empty()) {
      std::lock_guard<std::mutex> lock(fail_mu_);
      for (int c : r.perturbed) perturbed_.push_back(col0 + c);
    }
    if (r.info != 0) {
      zero_pivots_.fetch_add(1, std::memory_order_relaxed);
      fail(col0 + r.info - 1, FactorStatus::kSingular);
    }
    if (r.first_nonfinite >= 0) {
      fail(col0 + r.first_nonfinite, FactorStatus::kOverflow);
    }
  }

  void count_lazy_skip() {
    lazy_skipped_.fetch_add(1, std::memory_order_relaxed);
  }

  /// One dispatched tile run: `fused` is the number of per-block gemms the
  /// run merged away (0 for a single-tile run).  kAuto means the scalar
  /// reference arm ran (no engine routing happened).
  void count_tile_run(blas::GemmEngine engine, int fused) {
    tile_runs_.fetch_add(1, std::memory_order_relaxed);
    if (fused > 0) gemms_fused_.fetch_add(fused, std::memory_order_relaxed);
    if (engine == blas::GemmEngine::kPacked) {
      routed_packed_.fetch_add(1, std::memory_order_relaxed);
    } else if (engine == blas::GemmEngine::kDirect) {
      routed_direct_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void count_scans_elided(int n) {
    scans_elided_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Block (i, j) as a checker resource id.
  long resource(int i, int j) const {
    return static_cast<long>(i) * run_.an.blocks.num_blocks() + j;
  }

  void record_read(int id, int i, int j) {
    run_.checker->read(id, resource(i, j));
  }

  /// The kernels write block (i, j) while holding column j's mutex when
  /// locks are on; tell the checker which lock so same-column serialized
  /// (entry-disjoint or commuting) writes are not misreported.
  void record_write(int id, int i, int j) {
    if (locks_) {
      run_.checker->locked_write(id, resource(i, j), j);
    } else {
      run_.checker->write(id, resource(i, j));
    }
  }

  /// A write performed without taking any lock (the 2-D tasks other than
  /// UpdateBlock -- the graph alone orders all access to their blocks).
  void record_unlocked_write(int id, int i, int j) {
    run_.checker->write(id, resource(i, j));
  }

  NumericRun& run_;
  std::unique_ptr<std::vector<std::mutex>> locks_;

 private:
  std::atomic<int> zero_pivots_{0};
  std::atomic<long> lazy_skipped_{0};
  std::atomic<long> tile_runs_{0};
  std::atomic<long> gemms_fused_{0};
  std::atomic<long> routed_packed_{0};
  std::atomic<long> routed_direct_{0};
  std::atomic<long> scans_elided_{0};
  std::mutex min_pivot_mu_;
  double min_pivot_ = std::numeric_limits<double>::infinity();
  rt::CancelToken cancel_;
  std::mutex fail_mu_;
  int fail_col_ = -1;
  FactorStatus fail_status_ = FactorStatus::kOk;
  std::vector<int> perturbed_;
};

/// 1-D dispatcher: Factor(k) / Update(k, j) bodies over the packed panels,
/// kernels from core/kernels.h.
class Run1D : public RunState {
 public:
  Run1D(NumericRun& run, const NumericOptions& opt)
      // Lock-free execution is only honored when the analysis proved the
      // unordered updates' block footprints disjoint (symbolic/blocks.h).
      : RunState(run, opt.use_column_locks || !run.an.blocks.lockfree_safe),
        lazy_(opt.lazy_updates), threshold_(opt.pivot_threshold) {}

  void run_task(int id) {
    const taskgraph::Task& t = run_.graph.tasks.task(id);
    if (t.kind == taskgraph::TaskKind::kFactor) {
      factor(t.k);
    } else {
      update(t.k, t.j);
    }
  }

  void factor(int k) {
    const Analysis& an = run_.an;
    if (run_.checker) {
      // Footprint (Theorem 4 bookkeeping): Factor(k) rewrites the packed
      // panel of block column k -- the diagonal block and every L row
      // block -- and touches nothing else.
      const int id = run_.graph.tasks.factor_id(k);
      record_write(id, k, k);
      for (int t : an.blocks.l_blocks(k)) record_write(id, t, k);
    }
    std::unique_lock<std::mutex> lock = maybe_lock(k);
    blas::MatrixView p = run_.blocks.panel(k);
    kernels::FactorResult r = kernels::factor_block(
        p, run_.ipiv[k], threshold_, run_.perturb_magnitude);
    const int wk = an.blocks.part.width(k);
    count_factor(r, an.blocks.part.first(k),
                 kernels::min_diag_abs(p.block(0, 0, wk, wk)));
  }

  void update(int k, int j) {
    const Analysis& an = run_.an;
    const symbolic::ColumnPlan* cp =
        run_.plan != nullptr ? &run_.plan->columns[k] : nullptr;
    if (run_.checker) {
      // Update(k, j) reads panel k (L blocks + ipiv via the diagonal
      // block) and writes the panel-k row blocks of block column j: the
      // pivot replay swaps rows inside blocks (k, j) and (t, j), the trsm
      // rewrites (k, j), the gemms rewrite each (t, j).  These are exactly
      // the pivot-candidate row blocks Theorem 4 proves disjoint across
      // independent subtrees.  Footprints stay at the ORIGINAL block
      // granularity even when the plan coalesces tiles: a fused gemm
      // writes exactly the union of its member blocks, no more.
      const int id = run_.graph.tasks.update_id(k, j);
      record_read(id, k, k);
      record_write(id, k, j);
      std::vector<int> tmp;
      const std::vector<int>* lblk = &tmp;
      if (cp != nullptr) {
        lblk = &cp->l_list;
      } else {
        tmp = an.blocks.l_blocks(k);
      }
      for (int t : *lblk) {
        record_read(id, t, k);
        record_write(id, t, j);
      }
    }
    std::unique_lock<std::mutex> lock = maybe_lock(j);
    // (a) deferred pivoting: panel-k row swaps replayed on block column j.
    kernels::apply_panel_pivots(run_.blocks, run_.ipiv[k], k, j);
    // LazyS+ elision: pivoting has been replayed (the swaps move other
    // blocks of the column too), but a numerically zero B_kj produces a
    // zero U_kj and zero Schur contributions -- skip the arithmetic.
    if (lazy_ && blas::max_abs(run_.blocks.block(k, j)) == 0.0) {
      count_lazy_skip();
      return;
    }
    // (b) U_kj = L_kk^{-1} B_kj (unit lower triangular solve).
    const int wk = an.blocks.part.width(k);
    blas::ConstMatrixView panel_k = run_.blocks.panel(k);
    blas::MatrixView ukj = run_.blocks.block(k, j);
    kernels::solve_with_l(panel_k.block(0, 0, wk, wk), ukj);
    // (c) Schur updates: B_tj -= L_tk * U_kj for every L row block t.
    blas::ConstMatrixView ukj_c = ukj;
    if (cp == nullptr) {
      int off = wk;
      for (int t : an.blocks.l_blocks(k)) {
        const int wt = an.blocks.part.width(t);
        kernels::schur_update(panel_k.block(off, 0, wt, wk), ukj_c,
                              run_.blocks.block(t, j));
        off += wt;
      }
      return;
    }
    schur_update_tiled(an, *cp, k, j, panel_k, ukj_c, wk);
  }

 private:
  /// Plan-driven Schur sweep: replays gemm's auto routing per tile with
  /// the O(k*n) density scan of op(B) = U_kj hoisted out of the loop
  /// (every tile's gemm shares it), then coalesces maximal runs of
  /// adjacent same-decision tiles whose targets are contiguous in block
  /// column j's buffer into single tall gemms with the engine forced.
  /// Bitwise identical to the per-block loop: every engine accumulates
  /// each C element over p in ascending order independent of how m is
  /// partitioned, and the forced engine IS the auto decision (DESIGN.md
  /// section 16).
  void schur_update_tiled(const Analysis& an, const symbolic::ColumnPlan& cp,
                          int k, int j, blas::ConstMatrixView panel_k,
                          blas::ConstMatrixView ukj_c, int wk) {
    const int nb = static_cast<int>(cp.l_list.size());
    if (nb == 0) return;
    const int wj = an.blocks.part.width(j);
    const bool blocked = blas::use_blocked_kernels();
    // Hoisted density scan, with gemm's short-circuit preserved: the scan
    // runs only when at least one tile crosses the size threshold (below
    // it gemm never scans, so neither do we).
    int scans_wanted = 0;
    bool bdense = false;
    if (blocked) {
      for (int t = 0; t < nb; ++t) {
        scans_wanted += blas::gemm_pack_worthwhile(
            an.blocks.part.width(cp.l_list[t]), wj, wk);
      }
      if (scans_wanted > 0) {
        bdense = blas::gemm_b_dense_enough(blas::Trans::No, ukj_c, wk, wj);
        if (scans_wanted > 1) count_scans_elided(scans_wanted - 1);
      }
    }
    const auto engine_of = [&](int t) {
      if (!blocked) return blas::GemmEngine::kAuto;  // reference arm: unused
      return blas::gemm_pack_worthwhile(an.blocks.part.width(cp.l_list[t]),
                                        wj, wk) &&
                     bdense
                 ? blas::GemmEngine::kPacked
                 : blas::GemmEngine::kDirect;
    };
    blas::MatrixView colj = run_.blocks.column(j);
    int t = 0;
    while (t < nb) {
      const blas::GemmEngine eng = engine_of(t);
      const int tgt0 = run_.blocks.block_offset(cp.l_list[t], j);
      int tgt_end = tgt0 + an.blocks.part.width(cp.l_list[t]);
      int e = t + 1;
      while (e < nb && engine_of(e) == eng &&
             run_.blocks.block_offset(cp.l_list[e], j) == tgt_end) {
        tgt_end += an.blocks.part.width(cp.l_list[e]);
        ++e;
      }
      const int run_rows = cp.l_offset[e] - cp.l_offset[t];
      kernels::schur_update(
          panel_k.block(wk + cp.l_offset[t], 0, run_rows, wk), ukj_c,
          colj.block(tgt0, 0, run_rows, wj), eng);
      count_tile_run(eng, e - t - 1);
      t = e;
    }
  }

  const bool lazy_;
  const double threshold_;
};

/// 2-D dispatcher: FactorDiag / FactorL / ComputeU / UpdateBlock bodies per
/// block, same kernels.  Pivoting is restricted to the diagonal block (the
/// price of 2-D distribution); rows outside it stay unpermuted.
class Run2D : public RunState {
 public:
  Run2D(NumericRun& run, const NumericOptions& opt)
      // Additive UpdateBlock gemms into one block commute but their memory
      // writes must not interleave: serialize per target block column
      // unless the graph already chains them (the S* kinds) and the caller
      // opted out of locks.
      : RunState(run, opt.use_column_locks ||
                          run.graph.kind == taskgraph::GraphKind::kEforest),
        lazy_(opt.lazy_updates), threshold_(opt.pivot_threshold) {}

  void run_task(int id) {
    const taskgraph::Task& t = run_.graph.tasks.task(id);
    switch (t.kind) {
      case taskgraph::TaskKind::kFactorDiag: {
        if (run_.checker) record_unlocked_write(id, t.k, t.k);
        blas::MatrixView d = run_.blocks.block(t.k, t.k);
        kernels::FactorResult r = kernels::factor_block(
            d, run_.ipiv[t.k], threshold_, run_.perturb_magnitude);
        count_factor(r, run_.an.blocks.part.first(t.k),
                     kernels::min_diag_abs(d));
        break;
      }
      case taskgraph::TaskKind::kComputeU: {
        if (run_.checker) {
          record_read(id, t.k, t.k);
          record_unlocked_write(id, t.k, t.j);
        }
        blas::MatrixView ukj = run_.blocks.block(t.k, t.j);
        kernels::apply_local_pivots(ukj, run_.ipiv[t.k]);
        if (lazy_ && blas::max_abs(ukj) == 0.0) {
          count_lazy_skip();
          break;
        }
        kernels::solve_with_l(run_.blocks.block(t.k, t.k), ukj);
        break;
      }
      case taskgraph::TaskKind::kFactorL: {
        if (run_.checker) {
          record_read(id, t.k, t.k);
          record_unlocked_write(id, t.i, t.k);
        }
        kernels::solve_with_u(run_.blocks.block(t.k, t.k),
                              run_.blocks.block(t.i, t.k));
        break;
      }
      case taskgraph::TaskKind::kUpdateBlock: {
        blas::ConstMatrixView lik = run_.blocks.block(t.i, t.k);
        blas::ConstMatrixView ukj = run_.blocks.block(t.k, t.j);
        if (run_.checker) {
          record_read(id, t.i, t.k);
          record_read(id, t.k, t.j);
          record_write(id, t.i, t.j);
        }
        // Operand reads are ordered by the graph's FL/CU edges; a zero
        // operand contributes nothing (LazyS+ at block granularity).
        if (lazy_ && (blas::max_abs(lik) == 0.0 || blas::max_abs(ukj) == 0.0)) {
          count_lazy_skip();
          break;
        }
        std::unique_lock<std::mutex> lock = maybe_lock(t.j);
        if (run_.plan == nullptr) {
          kernels::schur_update(lik, ukj, run_.blocks.block(t.i, t.j));
          break;
        }
        // Plan-driven routing at block granularity: replay gemm's auto
        // decision (same predicates, same short-circuit -- the scan only
        // runs past the size threshold) so the forced engine is exactly
        // what kAuto would pick, and count it for the report.  No tiles
        // to fuse here; per-block tasks are the 2-D layout's granularity.
        blas::GemmEngine eng = blas::GemmEngine::kAuto;
        if (blas::use_blocked_kernels()) {
          eng = blas::gemm_pack_worthwhile(lik.rows, ukj.cols, lik.cols) &&
                        blas::gemm_b_dense_enough(blas::Trans::No, ukj,
                                                  lik.cols, ukj.cols)
                    ? blas::GemmEngine::kPacked
                    : blas::GemmEngine::kDirect;
        }
        kernels::schur_update(lik, ukj, run_.blocks.block(t.i, t.j), eng);
        count_tile_run(eng, 0);
        break;
      }
      default:
        throw std::logic_error("2-D driver: column-granularity task");
    }
  }

 private:
  const bool lazy_;
  const double threshold_;
};

/// Shared mode dispatch: a sequential right-looking stage loop (also the
/// partial/Schur mode), a topological-order replay, or the DAG executor
/// (optionally schedule-fuzzed).  `dispatch` runs one task id.
template <typename Dispatch>
void execute(NumericRun& run, const NumericOptions& opt,
             rt::CancelToken* token, Dispatch&& dispatch) {
  const int nb = run.an.blocks.num_blocks();
  // External cancellation (a service deadline or client abort) propagates
  // into the run token at task granularity: the first task to observe the
  // tripped external token cancels the run, and from then on every executor
  // drains the remaining tasks unrun.  The run token stays the single token
  // the executors watch, so breakdown cancellation is unchanged.
  rt::CancelToken* const ext = opt.cancel;
  const auto polled = [&](int id) {
    if (ext != nullptr && ext->cancelled()) {
      token->cancel();
      return;
    }
    dispatch(id);
  };
  // Sequential modes honor the same cancellation contract as the threaded
  // executors: once a factor task reports a breakdown the remaining tasks
  // are skipped, so a later panel never divides by a zero pivot.
  const auto guarded = [&](int id) {
    if (!token->cancelled()) polled(id);
  };
  const auto stage_loop = [&](int stages) {
    for (int k = 0; k < stages && !token->cancelled(); ++k) {
      guarded(run.graph.tasks.factor_id(k));
      auto [b, e] = run.graph.tasks.stage_range(k);
      for (int id = b; id < e; ++id) guarded(id);
    }
  };
  if (run.stages < nb) {
    // Partial factorization (Schur-complement mode) is sequential by
    // definition: the right-looking sweep stops mid-way.
    stage_loop(run.stages);
    return;
  }
  switch (opt.mode) {
    case ExecutionMode::kSequential:
      // Right-looking, no task graph: factor each stage, then push its
      // solves and updates.  This is the correctness baseline.
      stage_loop(nb);
      break;
    case ExecutionMode::kGraphSequential: {
      rt::ExecutionReport rep = rt::execute_sequential(run.graph, guarded);
      if (!rep.completed) {
        throw std::logic_error("Factorization: task graph is cyclic");
      }
      break;
    }
    case ExecutionMode::kThreaded: {
      rt::ExecutionReport rep;
      taskgraph::CoarseGraph cg;
      if (opt.coarsen) {
        taskgraph::CoarsenOptions copt;
        copt.threads = opt.threads;
        copt.threshold_flops = opt.coarsen_threshold_flops;
        copt.plan = run.plan;
        cg = taskgraph::coarsen_task_graph(run.graph, run.an.blocks, copt);
        run.coarsen = cg.stats(run.graph);
      }
      if (cg.coarsened) {
        // A fused group runs its member tasks in sequential right-looking
        // order; `guarded` keeps the per-task cancellation drain, so a
        // breakdown inside a group skips the group's remaining members just
        // as the executor skips the remaining groups.
        const auto run_group = [&](int gid) {
          for (int id : cg.members[gid]) guarded(id);
        };
        if (opt.fuzz_schedule) {
          rt::FuzzOptions fuzz;
          fuzz.seed = opt.fuzz_seed;
          fuzz.max_delay_us = opt.fuzz_max_delay_us;
          fuzz.cancel = token;
          rep = rt::execute_dag_fuzzed(cg.succ, cg.indegree, opt.threads, fuzz,
                                       run_group);
        } else {
          rt::ExecOptions eopt;
          eopt.kind = opt.executor;
          eopt.cancel = token;
          eopt.shared = opt.shared_runtime;
          eopt.request_priority = opt.request_priority;
          eopt.priorities = &cg.priorities;
          rep = rt::execute_dag(cg.succ, cg.indegree, opt.threads, run_group,
                                eopt);
        }
      } else if (opt.fuzz_schedule) {
        rt::FuzzOptions fuzz;
        fuzz.seed = opt.fuzz_seed;
        fuzz.max_delay_us = opt.fuzz_max_delay_us;
        fuzz.cancel = token;
        rep = rt::execute_task_graph_fuzzed(run.graph, opt.threads, fuzz,
                                            polled);
      } else {
        rt::ExecOptions eopt;
        eopt.kind = opt.executor;
        eopt.cancel = token;
        eopt.shared = opt.shared_runtime;
        eopt.request_priority = opt.request_priority;
        rep = rt::execute_task_graph(run.graph, opt.threads, polled, eopt);
      }
      if (!rep.completed && !rep.cancelled) {
        throw std::logic_error("Factorization: threaded execution incomplete");
      }
      break;
    }
  }
}

/// External-cancellation fold, applied AFTER RunState::finish(): a run
/// whose token tripped without any recorded breakdown was stopped from
/// outside (NumericOptions::cancel) and reports kCancelled -- the factors
/// are incomplete, and leaving kOk would let a solve read them.  The RUN
/// token is the witness, not the external one: an external cancel that
/// lands only after every task already ran never propagated into the run,
/// and the complete factorization stays usable.  A breakdown observed
/// before the abort wins (more informative; equally unusable factors).
void fold_external_cancel(NumericRun& run, rt::CancelToken* run_token) {
  if (run_token->cancelled() && factor_usable(run.status)) {
    run.status = FactorStatus::kCancelled;
    run.failed_column = -1;
  }
}

class Driver1D final : public NumericDriver {
 public:
  Layout layout() const override { return Layout::k1D; }
  const char* name() const override { return "1d-column"; }
  void factorize(NumericRun& run, const NumericOptions& opt) const override {
    Run1D state(run, opt);
    execute(run, opt, state.cancel(), [&](int id) { state.run_task(id); });
    state.finish();
    fold_external_cancel(run, state.cancel());
  }
};

class Driver2D final : public NumericDriver {
 public:
  Layout layout() const override { return Layout::k2D; }
  const char* name() const override { return "2d-block"; }
  void factorize(NumericRun& run, const NumericOptions& opt) const override {
    Run2D state(run, opt);
    execute(run, opt, state.cancel(), [&](int id) { state.run_task(id); });
    state.finish();
    fold_external_cancel(run, state.cancel());
  }
};

}  // namespace

bool pipeline_supported(const Options& aopt, const NumericOptions& nopt) {
  if (!nopt.pipeline) return false;
  if (!aopt.postorder) return false;
  if (aopt.amalgamate && !aopt.amalgamation.require_parent_child) return false;
  if (nopt.mode != ExecutionMode::kThreaded) return false;
  if (nopt.check_races || nopt.fuzz_schedule) return false;
  if (nopt.stop_after_block >= 0) return false;
  return true;
}

const NumericDriver& NumericDriver::driver_for(Layout layout) {
  static const Driver1D d1;
  static const Driver2D d2;
  if (layout == Layout::k2D) return d2;
  return d1;
}

}  // namespace plu
