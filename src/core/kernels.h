// Block-task kernel bodies shared by the 1-D and 2-D numeric drivers
// (core/driver.cpp).  Each of the four task-body operations -- the
// partial-pivoting block factor, the deferred / local pivot application,
// the triangular solves, and the additive Schur gemm -- exists exactly
// once, here; the drivers contribute only task enumeration, dispatch,
// locking and footprint recording.
//
// All kernels operate on views into the shared BlockMatrix storage
// (core/block_storage.h), which lays a block column out contiguously
// (diagonal block first, then the sorted L row blocks) so the same buffer
// serves as the 1-D packed panel and as the 2-D per-block operands.
#pragma once

#include <vector>

#include "blas/dense.h"
#include "blas/level3.h"
#include "core/block_storage.h"

namespace plu::kernels {

/// Outcome of one block factorization: the breakdown signals the drivers
/// fold into the run-wide FactorStatus (core/status.h).
struct FactorResult {
  /// LAPACK info: 0, or the 0-based panel column of the first exact-zero
  /// pivot + 1.  Always 0 when perturbation rescued every tiny pivot.
  int info = 0;
  /// Panel column of the first non-finite entry found in the factored
  /// block (-1 when all entries are finite).  A non-finite entry means an
  /// upstream update overflowed or the input already carried NaN/Inf.
  int first_nonfinite = -1;
  /// Panel columns whose pivot was bumped to the static perturbation
  /// magnitude (empty when perturbation is off).
  std::vector<int> perturbed;
};

/// Partial-pivoting LU on a panel or diagonal block: blocked getrf at
/// threshold >= 1, threshold pivoting with diagonal preference below it
/// (blas::getf2_threshold).  Factor(k) passes the packed panel of block
/// column k; FactorDiag(k) passes the diagonal block, restricting the
/// pivot search to it.  When perturb_magnitude > 0, pivots below it are
/// bumped instead of reported singular (blas::PivotPerturbation).  The
/// factored block is scanned for non-finite values so overflow is caught at
/// the earliest task that observes it.
FactorResult factor_block(blas::MatrixView a, std::vector<int>& ipiv,
                          double threshold, double perturb_magnitude = 0.0);

/// Smallest nonzero |diagonal| of a factored block -- the accepted-pivot
/// magnitude feeding Factorization::min_pivot_ratio().  Returns +inf when
/// every diagonal entry is zero.
double min_diag_abs(blas::ConstMatrixView a);

/// Deferred pivoting (Update(k, j) step (a)): replays panel k's pivot
/// interchanges on block column j.  The swaps cross row-block boundaries;
/// the block-level George-Ng closure guarantees every touched row exists
/// in column j (core/numeric.h).
void apply_panel_pivots(BlockMatrix& bm, const std::vector<int>& ipiv, int k,
                        int j);

/// Local pivoting (ComputeU step (a)): applies a diagonal block's local
/// interchanges (all indices inside the block) to one block of its row.
void apply_local_pivots(blas::MatrixView b, const std::vector<int>& ipiv);

/// U_kj := L_kk^{-1} B_kj (unit lower triangular solve; Update(k, j) step
/// (b) and the ComputeU body).
void solve_with_l(blas::ConstMatrixView lkk, blas::MatrixView ukj);

/// L_ik := B_ik U_kk^{-1} (upper triangular solve from the right; the
/// FactorL body).
void solve_with_u(blas::ConstMatrixView ukk, blas::MatrixView lik);

/// Additive Schur update B_ij -= L_ik U_kj (Update(k, j) step (c) per L row
/// block, and the whole UpdateBlock body).
void schur_update(blas::ConstMatrixView lik, blas::ConstMatrixView ukj,
                  blas::MatrixView bij);

/// Engine-hinted Schur update for the plan-driven tiled path: the hint must
/// be the decision kAuto would have made (caller replays the exported
/// predicates, blas/level3.h), so the factors stay bitwise identical while
/// redundant density scans are elided.  Ignored on the scalar-ablation arm.
void schur_update(blas::ConstMatrixView lik, blas::ConstMatrixView ukj,
                  blas::MatrixView bij, blas::GemmEngine engine);

}  // namespace plu::kernels
