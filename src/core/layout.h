// Numeric layout selector: which task granularity the numeric
// factorization runs at.  Chosen in Options (core/analysis.h) because the
// analysis builds the matching task graph; the Factorization result is
// tagged with it and otherwise layout-agnostic (core/numeric.h).
#pragma once

namespace plu {

enum class Layout {
  /// 1-D block-column tasks (the paper's scheme): Factor(k) does
  /// partial-pivoting LU on the whole packed panel, Update(k, j) replays
  /// the deferred pivots and applies trsm + gemms.
  k1D,
  /// 2-D per-block tasks (the S+ 2.0 future-work direction): pivoting is
  /// RESTRICTED to each diagonal block -- numerically weaker (pair with
  /// refinement; watch Factorization::min_pivot_ratio()), but the task
  /// graph exposes parallelism in both matrix dimensions.
  k2D,
};

const char* to_string(Layout layout);

}  // namespace plu
