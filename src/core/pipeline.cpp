#include "core/pipeline.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "blas/dense.h"
#include "blas/factor.h"
#include "blas/level2.h"
#include "core/driver.h"
#include "core/kernels.h"
#include "graph/eforest.h"
#include "graph/weighted_matching.h"
#include "runtime/shared_runtime.h"
#include "symbolic/supernodes.h"
#include "taskgraph/build.h"
#include "taskgraph/costs.h"

namespace plu {

namespace {

/// Numeric/solve task descriptor inside one appended unit batch.
enum class NKind : std::int8_t {
  kFactor,      // 1-D Factor(k)
  kUpdate,      // 1-D Update(k, j)
  kFactorDiag,  // 2-D FactorDiag(k)
  kComputeU,    // 2-D ComputeU(k, j)
  kFactorL,     // 2-D FactorL(i, k)
  kUpdateBlock, // 2-D UpdateBlock(i, k, j)
  kForward,     // forward-solve panel k
};

struct NTask {
  NKind kind;
  int k = -1;
  int j = -1;
  int i = -1;
};

/// Default fusion threshold for unit batches when NumericOptions::coarsen is
/// on but no explicit threshold was given.  The pipeline streams units, so
/// the adaptive total-flops rule of coarsen_task_graph is unavailable; ~4
/// Mflop is a few hundred microseconds of kernel work -- comfortably above
/// the per-task scheduling cost the fusion amortizes.
constexpr double kDefaultUnitFuseFlops = static_cast<double>(1 << 22);

/// Everything the tasks share.  Lives on PipelineDriver::run's stack frame
/// (run() blocks on the dynamic run before returning), referenced by raw
/// pointer from the task lambdas.
struct PipeState {
  // --- immutable after setup ---
  Analysis* an = nullptr;          // heap Analysis under construction
  const std::vector<double>* b = nullptr;
  CscMatrix apre;                  // permuted + scaled input
  double matrix_scale = 1.0;
  double perturb_magnitude = 0.0;
  double threshold = 1.0;
  bool lazy = false;
  bool two_d = false;
  rt::CancelToken* ext = nullptr;  // external cancel (polled by numeric tasks)
  rt::SharedRuntime* rtm = nullptr;
  StorageMode storage = StorageMode::kArena;
  bool coarsen = false;            // fuse low-weight unit batches
  double coarsen_threshold = 0.0;  // flops; units at or below run as one task

  // --- unit decomposition (columns) ---
  int n = 0;
  int units = 0;
  std::vector<int> unit_col_begin;          // units + 1
  std::vector<int> unit_of_col;             // n
  std::vector<std::vector<int>> coupling;   // per unit: earlier units read

  // --- supernode assembly (written by batch-0 analysis tasks) ---
  std::vector<char> boundary;               // n, Super(u) output
  std::vector<int> unit_s_begin, unit_s_end;  // exact-supernode range per unit
  std::vector<std::vector<int>> unit_starts;  // amalgamated starts per unit
  int nb = 0;                               // block columns (after PartMerge)
  int words = 0;                            // (nb + 63) / 64
  std::vector<int> ub_begin;                // units + 1, block-column ranges

  // --- per-block-column structure (written by Struct(u)) ---
  std::vector<std::vector<std::uint64_t>> closed_bits;  // nb x words
  std::vector<std::vector<int>> closed;     // closed row-block lists
  std::vector<std::vector<int>> lblocks;    // closed entries > j
  std::vector<long> lheight;                // summed L-part widths per column
  std::vector<long> extra_add;              // closure additions per column

  std::optional<BlockMatrix> bm;
  std::vector<std::vector<int>> ipiv;

  // --- cross-batch gid maps (written by Mat(u), read by Mat(v > u); the
  // Mat chain orders the accesses) ---
  std::vector<long> factor_gid;                          // F / FD per column
  std::vector<std::vector<std::pair<int, long>>> fl_gid; // 2-D FL per column

  // --- run handle hand-off (Mat tasks may start before submit returns) ---
  std::mutex run_mu;
  std::condition_variable run_cv;
  std::shared_ptr<rt::SharedRuntime::Run> run;
  bool run_set = false;

  // --- solve ---
  std::vector<double> y;                    // Pr-scattered rhs / work vector

  // --- status folds (RunState equivalents) ---
  std::atomic<bool> break_abort{false};     // numeric breakdown: drain
  std::atomic<bool> ext_numeric{false};     // ext cancel seen by numeric task
  std::atomic<bool> solve_drained{false};   // a forward task skipped
  std::atomic<int> zero_pivots{0};
  std::atomic<long> lazy_skipped{0};
  std::mutex min_mu;
  double min_pivot = std::numeric_limits<double>::infinity();
  std::mutex fail_mu;
  int fail_col = -1;
  FactorStatus fail_status = FactorStatus::kOk;
  std::vector<int> perturbed;

  // --- unit-batch fusion counters (Mat tasks are chained, so no atomics) ---
  long c_tasks_before = 0, c_tasks_after = 0;
  long c_edges_before = 0, c_edges_after = 0;
  int c_fused_groups = 0;
  long c_fused_tasks = 0;

  // --- phase stamps: 0 = analysis, 1 = factor, 2 = solve ---
  std::chrono::steady_clock::time_point t0;
  std::atomic<long long> phase_min[3];
  std::atomic<long long> phase_max[3];

  PipeState() {
    for (int p = 0; p < 3; ++p) {
      phase_min[p].store(std::numeric_limits<long long>::max(),
                         std::memory_order_relaxed);
      phase_max[p].store(-1, std::memory_order_relaxed);
    }
  }
};

long long now_ns(const PipeState& st) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - st.t0)
      .count();
}

void atomic_min(std::atomic<long long>& m, long long v) {
  long long cur = m.load(std::memory_order_relaxed);
  while (v < cur && !m.compare_exchange_weak(cur, v)) {
  }
}

void atomic_max(std::atomic<long long>& m, long long v) {
  long long cur = m.load(std::memory_order_relaxed);
  while (v > cur && !m.compare_exchange_weak(cur, v)) {
  }
}

/// RAII min/max wall-clock span fold for one phase.
struct PhaseSpan {
  PipeState& st;
  int phase;
  PhaseSpan(PipeState& s, int p) : st(s), phase(p) {
    atomic_min(st.phase_min[p], now_ns(st));
  }
  ~PhaseSpan() { atomic_max(st.phase_max[phase], now_ns(st)); }
};

/// Breakdown fold: smallest column wins, then every later numeric task
/// drains.  Unlike the phased drivers this does NOT cancel the run token --
/// the analysis tasks of the same graph must still complete.
void fail(PipeState& st, int col, FactorStatus status) {
  {
    std::lock_guard<std::mutex> lock(st.fail_mu);
    if (st.fail_col < 0 || col < st.fail_col) {
      st.fail_col = col;
      st.fail_status = status;
    }
  }
  st.break_abort.store(true, std::memory_order_release);
}

void count_factor(PipeState& st, const kernels::FactorResult& r, int col0,
                  double min_diag) {
  {
    std::lock_guard<std::mutex> lock(st.min_mu);
    st.min_pivot = std::min(st.min_pivot, min_diag);
  }
  if (!r.perturbed.empty()) {
    std::lock_guard<std::mutex> lock(st.fail_mu);
    for (int c : r.perturbed) st.perturbed.push_back(col0 + c);
  }
  if (r.info != 0) {
    st.zero_pivots.fetch_add(1, std::memory_order_relaxed);
    fail(st, col0 + r.info - 1, FactorStatus::kSingular);
  }
  if (r.first_nonfinite >= 0) {
    fail(st, col0 + r.first_nonfinite, FactorStatus::kOverflow);
  }
}

/// True when a numeric task must drain (breakdown or external cancel).
bool numeric_drained(PipeState& st) {
  if (st.break_abort.load(std::memory_order_acquire)) return true;
  if (st.ext_numeric.load(std::memory_order_relaxed)) return true;
  if (st.ext != nullptr && st.ext->cancelled()) {
    st.ext_numeric.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

/// Forward tasks drain on the same conditions; any drained forward marks
/// the overlapped solve incomplete (the caller then solves phased).
bool forward_drained(PipeState& st) {
  const bool g = st.break_abort.load(std::memory_order_acquire) ||
                 st.ext_numeric.load(std::memory_order_relaxed) ||
                 (st.ext != nullptr && st.ext->cancelled());
  if (g) st.solve_drained.store(true, std::memory_order_relaxed);
  return g;
}

std::shared_ptr<rt::SharedRuntime::Run> get_run(PipeState& st) {
  std::unique_lock<std::mutex> lock(st.run_mu);
  st.run_cv.wait(lock, [&] { return st.run_set; });
  return st.run;
}

// ---------------------------------------------------------------------------
// Numeric / forward task bodies.  Byte-for-byte the arithmetic of the
// phased drivers (core/driver.cpp Run1D/Run2D) and of Factorization::solve's
// forward pass, minus locks and race recording: every writer of a block
// (column) is totally ordered by the batch edges, so no serialization is
// needed and the sequential-order results are reproduced exactly.
// ---------------------------------------------------------------------------

void forward_panel(PipeState& st, int k) {
  const symbolic::SupernodePartition& part = st.an->blocks.part;
  const int wk = part.width(k);
  std::vector<int> grows;  // global rows of panel k, packed order
  for (int r = part.first(k); r < part.end(k); ++r) grows.push_back(r);
  for (int t : st.lblocks[k]) {
    for (int r = part.first(t); r < part.end(t); ++r) grows.push_back(r);
  }
  std::vector<double> seg(grows.size());
  std::vector<double>& y = st.y;
  for (std::size_t p = 0; p < grows.size(); ++p) seg[p] = y[grows[p]];
  const std::vector<int>& piv = st.ipiv[k];
  for (std::size_t c = 0; c < piv.size(); ++c) {
    if (piv[c] != static_cast<int>(c)) std::swap(seg[c], seg[piv[c]]);
  }
  blas::ConstMatrixView panel = st.bm->panel(k);
  blas::ConstMatrixView lkk = panel.block(0, 0, wk, wk);
  blas::trsv(blas::UpLo::Lower, blas::Trans::No, blas::Diag::Unit, lkk,
             seg.data(), 1);
  const int below = static_cast<int>(grows.size()) - wk;
  if (below > 0) {
    blas::ConstMatrixView lbelow = panel.block(wk, 0, below, wk);
    blas::gemv(blas::Trans::No, -1.0, lbelow, seg.data(), 1, 1.0,
               seg.data() + wk, 1);
  }
  for (std::size_t p = 0; p < grows.size(); ++p) y[grows[p]] = seg[p];
}

void run_numeric_task(PipeState& st, const NTask& t) {
  const symbolic::SupernodePartition& part = st.an->blocks.part;
  switch (t.kind) {
    case NKind::kFactor: {
      if (numeric_drained(st)) return;
      PhaseSpan span(st, 1);
      blas::MatrixView p = st.bm->panel(t.k);
      kernels::FactorResult r = kernels::factor_block(
          p, st.ipiv[t.k], st.threshold, st.perturb_magnitude);
      const int wk = part.width(t.k);
      count_factor(st, r, part.first(t.k),
                   kernels::min_diag_abs(p.block(0, 0, wk, wk)));
      break;
    }
    case NKind::kUpdate: {
      if (numeric_drained(st)) return;
      PhaseSpan span(st, 1);
      kernels::apply_panel_pivots(*st.bm, st.ipiv[t.k], t.k, t.j);
      if (st.lazy && blas::max_abs(st.bm->block(t.k, t.j)) == 0.0) {
        st.lazy_skipped.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      const int wk = part.width(t.k);
      blas::ConstMatrixView panel_k = st.bm->panel(t.k);
      blas::MatrixView ukj = st.bm->block(t.k, t.j);
      kernels::solve_with_l(panel_k.block(0, 0, wk, wk), ukj);
      blas::ConstMatrixView ukj_c = ukj;
      int off = wk;
      for (int tb : st.lblocks[t.k]) {
        const int wt = part.width(tb);
        kernels::schur_update(panel_k.block(off, 0, wt, wk), ukj_c,
                              st.bm->block(tb, t.j));
        off += wt;
      }
      break;
    }
    case NKind::kFactorDiag: {
      if (numeric_drained(st)) return;
      PhaseSpan span(st, 1);
      blas::MatrixView d = st.bm->block(t.k, t.k);
      kernels::FactorResult r = kernels::factor_block(
          d, st.ipiv[t.k], st.threshold, st.perturb_magnitude);
      count_factor(st, r, part.first(t.k), kernels::min_diag_abs(d));
      break;
    }
    case NKind::kComputeU: {
      if (numeric_drained(st)) return;
      PhaseSpan span(st, 1);
      blas::MatrixView ukj = st.bm->block(t.k, t.j);
      kernels::apply_local_pivots(ukj, st.ipiv[t.k]);
      if (st.lazy && blas::max_abs(ukj) == 0.0) {
        st.lazy_skipped.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      kernels::solve_with_l(st.bm->block(t.k, t.k), ukj);
      break;
    }
    case NKind::kFactorL: {
      if (numeric_drained(st)) return;
      PhaseSpan span(st, 1);
      kernels::solve_with_u(st.bm->block(t.k, t.k), st.bm->block(t.i, t.k));
      break;
    }
    case NKind::kUpdateBlock: {
      if (numeric_drained(st)) return;
      PhaseSpan span(st, 1);
      blas::ConstMatrixView lik = st.bm->block(t.i, t.k);
      blas::ConstMatrixView ukj = st.bm->block(t.k, t.j);
      if (st.lazy &&
          (blas::max_abs(lik) == 0.0 || blas::max_abs(ukj) == 0.0)) {
        st.lazy_skipped.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      kernels::schur_update(lik, ukj, st.bm->block(t.i, t.j));
      break;
    }
    case NKind::kForward: {
      if (forward_drained(st)) return;
      PhaseSpan span(st, 2);
      forward_panel(st, t.k);
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Numeric batch builders.  One batch per unit, appended by Mat(u) while the
// graph runs.  Within a batch every writer of a target (block column in
// 1-D, block in 2-D) is chained in ascending source order -- exactly the
// order ExecutionMode::kSequential's stage loop applies the writes -- so
// the numeric results are bitwise identical to the phased sequential
// reference; updates to DIFFERENT targets stay unordered (the
// parallelism).  Cross-batch edges name the exported Factor/FactorDiag/
// FactorL producers of earlier units.
// ---------------------------------------------------------------------------

struct BatchBuild {
  rt::SharedRuntime::BatchSpec spec;
  std::shared_ptr<std::vector<NTask>> tasks =
      std::make_shared<std::vector<NTask>>();

  int add(NKind kind, int k, int j, int i, double prio) {
    const int id = static_cast<int>(tasks->size());
    tasks->push_back(NTask{kind, k, j, i});
    spec.priorities.push_back(prio);
    spec.indegree.push_back(0);
    spec.succ.emplace_back();
    spec.cross_preds.emplace_back();
    spec.exported.push_back(0);
    return id;
  }
  void edge(int from, int to) {
    spec.succ[from].push_back(to);
    ++spec.indegree[to];
  }
  void cross_edge(long from_gid, int to) {
    spec.cross_preds[to].push_back(from_gid);
    ++spec.indegree[to];
  }
  void finish(PipeState* ps) {
    spec.n = static_cast<int>(tasks->size());
    spec.run = [ps, t = tasks](int lid) { run_numeric_task(*ps, (*t)[lid]); };
  }
  long edge_count() const {
    long e = 0;
    for (int d : spec.indegree) e += d;
    return e;
  }
  /// Collapse the whole batch into ONE task running the members in creation
  /// order.  Creation order is topological within a batch (both builders
  /// only add edges from earlier-created tasks to later ones), and every
  /// per-target writer chain is a subsequence of it, so the fused task
  /// applies the writes in exactly the chained -- i.e. sequential -- order:
  /// results stay bitwise identical.  The fused task carries the deduped
  /// union of the members' cross-batch predecessors and is exported as the
  /// unit's sole producer gid.
  void fuse_all(PipeState* ps) {
    rt::SharedRuntime::BatchSpec f;
    f.n = 1;
    double prio = 0.0;
    for (double p : spec.priorities) prio = std::max(prio, p);
    f.priorities = {prio};
    std::vector<long> preds;
    for (const auto& cp : spec.cross_preds) {
      preds.insert(preds.end(), cp.begin(), cp.end());
    }
    std::sort(preds.begin(), preds.end());
    preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
    f.indegree = {static_cast<int>(preds.size())};
    f.succ = {{}};
    f.cross_preds = {std::move(preds)};
    f.exported = {1};
    f.run = [ps, t = tasks](int) {
      for (const NTask& nt : *t) run_numeric_task(*ps, nt);
    };
    spec = std::move(f);
  }
};

/// Count of U-part entries (< j) of closed[j].
int u_count(const std::vector<int>& closed, int j) {
  return static_cast<int>(
      std::lower_bound(closed.begin(), closed.end(), j) - closed.begin());
}

/// Structure-derived flop estimate of one unit's numeric work (factor +
/// update kernels over the closed pattern) -- the fusion test input.  Every
/// source column k it reads belongs to this unit or one Struct-coupled
/// before it, so lheight[k] is final when Mat(u) runs.
double unit_flops(const PipeState& st, int u) {
  const symbolic::SupernodePartition& part = st.an->blocks.part;
  double fl = 0.0;
  for (int j = st.ub_begin[u]; j < st.ub_begin[u + 1]; ++j) {
    const double wj = part.width(j);
    fl += wj * wj * (wj + static_cast<double>(st.lheight[j]));
    const std::vector<int>& cl = st.closed[j];
    const int nu = u_count(cl, j);
    for (int t = 0; t < nu; ++t) {
      const double wk = part.width(cl[t]);
      fl += 2.0 * wk * wj * (wk + static_cast<double>(st.lheight[cl[t]]));
    }
  }
  return fl;
}

void build_unit_batch_1d(PipeState& st, int u) {
  const int b0 = st.ub_begin[u], b1 = st.ub_begin[u + 1];
  const int nb = st.nb;
  BatchBuild bb;
  std::vector<int> local_f(b1 - b0, -1);
  for (int j = b0; j < b1; ++j) {
    int prev = -1;
    const std::vector<int>& cl = st.closed[j];
    const int nu = u_count(cl, j);
    for (int t = 0; t < nu; ++t) {
      const int k = cl[t];
      const int id =
          bb.add(NKind::kUpdate, k, j, -1, 1e6 + static_cast<double>(nb - k));
      if (k >= b0) {
        bb.edge(local_f[k - b0], id);
      } else {
        bb.cross_edge(st.factor_gid[k], id);
      }
      if (prev >= 0) bb.edge(prev, id);
      prev = id;
    }
    const int fid =
        bb.add(NKind::kFactor, j, -1, -1, 1e6 + static_cast<double>(nb - j));
    bb.spec.exported[fid] = 1;
    if (prev >= 0) bb.edge(prev, fid);
    local_f[j - b0] = fid;
  }
  if (st.b != nullptr) {
    int prevf = -1;
    for (int j = b0; j < b1; ++j) {
      const int id =
          bb.add(NKind::kForward, j, -1, -1, static_cast<double>(nb - j));
      bb.edge(local_f[j - b0], id);
      if (prevf >= 0) bb.edge(prevf, id);
      prevf = id;
    }
  }
  bb.finish(&st);
  st.c_tasks_before += bb.spec.n;
  st.c_edges_before += bb.edge_count();
  const bool fuse =
      st.coarsen && bb.spec.n > 1 && unit_flops(st, u) <= st.coarsen_threshold;
  if (fuse) {
    st.c_fused_groups += 1;
    st.c_fused_tasks += bb.spec.n;
    bb.fuse_all(&st);
  }
  st.c_tasks_after += bb.spec.n;
  st.c_edges_after += bb.edge_count();
  const long base = st.rtm->append_batch(get_run(st), std::move(bb.spec));
  for (int j = b0; j < b1; ++j) {
    st.factor_gid[j] = fuse ? base : base + local_f[j - b0];
  }
}

void build_unit_batch_2d(PipeState& st, int u) {
  const int b0 = st.ub_begin[u], b1 = st.ub_begin[u + 1];
  const int nb = st.nb;
  BatchBuild bb;
  std::vector<int> local_fd(b1 - b0, -1);
  std::vector<std::vector<int>> local_fl(b1 - b0);
  std::vector<int> last_ub(nb, -1);  // last writer of block (i, j), per j
  for (int j = b0; j < b1; ++j) {
    const std::vector<int>& cl = st.closed[j];
    const int nu = u_count(cl, j);
    for (int t = 0; t < nu; ++t) {
      const int k = cl[t];
      const double prio = 1e6 + static_cast<double>(nb - k);
      const int cu = bb.add(NKind::kComputeU, k, j, -1, prio);
      if (k >= b0) {
        bb.edge(local_fd[k - b0], cu);
      } else {
        bb.cross_edge(st.factor_gid[k], cu);
      }
      if (last_ub[k] >= 0) bb.edge(last_ub[k], cu);
      for (std::size_t p = 0; p < st.lblocks[k].size(); ++p) {
        const int i = st.lblocks[k][p];
        const int ub = bb.add(NKind::kUpdateBlock, k, j, i, prio);
        if (k >= b0) {
          bb.edge(local_fl[k - b0][p], ub);
        } else {
          bb.cross_edge(st.fl_gid[k][p].second, ub);
        }
        bb.edge(cu, ub);
        if (last_ub[i] >= 0) bb.edge(last_ub[i], ub);
        last_ub[i] = ub;
      }
    }
    const double priod = 1e6 + static_cast<double>(nb - j);
    const int fd = bb.add(NKind::kFactorDiag, j, -1, -1, priod);
    bb.spec.exported[fd] = 1;
    if (last_ub[j] >= 0) bb.edge(last_ub[j], fd);
    local_fd[j - b0] = fd;
    local_fl[j - b0].reserve(st.lblocks[j].size());
    for (int i : st.lblocks[j]) {
      const int fl = bb.add(NKind::kFactorL, j, -1, i, priod);
      bb.spec.exported[fl] = 1;
      bb.edge(fd, fl);
      if (last_ub[i] >= 0) bb.edge(last_ub[i], fl);
      local_fl[j - b0].push_back(fl);
    }
    for (int i : cl) last_ub[i] = -1;  // reset for the next column
  }
  if (st.b != nullptr) {
    int prevf = -1;
    for (int j = b0; j < b1; ++j) {
      const int id =
          bb.add(NKind::kForward, j, -1, -1, static_cast<double>(nb - j));
      bb.edge(local_fd[j - b0], id);
      for (int fl : local_fl[j - b0]) bb.edge(fl, id);
      if (prevf >= 0) bb.edge(prevf, id);
      prevf = id;
    }
  }
  bb.finish(&st);
  st.c_tasks_before += bb.spec.n;
  st.c_edges_before += bb.edge_count();
  const bool fuse =
      st.coarsen && bb.spec.n > 1 && unit_flops(st, u) <= st.coarsen_threshold;
  if (fuse) {
    st.c_fused_groups += 1;
    st.c_fused_tasks += bb.spec.n;
    bb.fuse_all(&st);
  }
  st.c_tasks_after += bb.spec.n;
  st.c_edges_after += bb.edge_count();
  const long base = st.rtm->append_batch(get_run(st), std::move(bb.spec));
  for (int j = b0; j < b1; ++j) {
    st.factor_gid[j] = fuse ? base : base + local_fd[j - b0];
    auto& fg = st.fl_gid[j];
    fg.clear();
    fg.reserve(st.lblocks[j].size());
    for (std::size_t p = 0; p < st.lblocks[j].size(); ++p) {
      fg.emplace_back(st.lblocks[j][p],
                      fuse ? base : base + local_fl[j - b0][p]);
    }
  }
}

// ---------------------------------------------------------------------------
// Analysis task bodies (batch 0).  Ids: Super(u) = u, SuperMerge = U,
// Amalg(u) = U+1+u, PartMerge = 2U+1, Struct(u) = 2U+2+u, Mat(u) = 3U+2+u,
// Finish = 4U+2.  Each body is the per-unit restriction of the
// corresponding analyze_suffix step; DESIGN.md section 13 gives the
// equivalence arguments.
// ---------------------------------------------------------------------------

void task_super(PipeState& st, int u) {
  PhaseSpan span(st, 0);
  const Pattern& abar = st.an->symbolic.abar;
  const int c0 = st.unit_col_begin[u], c1 = st.unit_col_begin[u + 1];
  // The unit starts at a tree boundary, which is always a supernode
  // boundary (the previous column is an eforest root whose L part is bare).
  st.boundary[c0] = 1;
  for (int c = c0 + 1; c < c1; ++c) {
    st.boundary[c] = symbolic::columns_share_supernode(abar, c - 1) ? 0 : 1;
  }
}

void task_super_merge(PipeState& st) {
  PhaseSpan span(st, 0);
  Analysis& an = *st.an;
  std::vector<int> starts;
  for (int c = 0; c < st.n; ++c) {
    if (st.boundary[c]) starts.push_back(c);
  }
  an.exact_partition = symbolic::SupernodePartition(std::move(starts), st.n);
  for (int u = 0; u < st.units; ++u) {
    st.unit_s_begin[u] = an.exact_partition.supernode_of(st.unit_col_begin[u]);
  }
  for (int u = 0; u + 1 < st.units; ++u) {
    st.unit_s_end[u] = st.unit_s_begin[u + 1];
  }
  st.unit_s_end[st.units - 1] = an.exact_partition.count();
}

void task_amalg(PipeState& st, int u) {
  PhaseSpan span(st, 0);
  const Analysis& an = *st.an;
  std::vector<int>& starts = st.unit_starts[u];
  starts.clear();
  if (an.options.amalgamate) {
    symbolic::amalgamate_range(an.symbolic.abar, an.eforest,
                               an.exact_partition, an.options.amalgamation,
                               st.unit_s_begin[u], st.unit_s_end[u], starts);
  } else {
    for (int s = st.unit_s_begin[u]; s < st.unit_s_end[u]; ++s) {
      starts.push_back(an.exact_partition.first(s));
    }
  }
}

void task_part_merge(PipeState& st) {
  PhaseSpan span(st, 0);
  Analysis& an = *st.an;
  std::vector<int> starts;
  for (int u = 0; u < st.units; ++u) {
    starts.insert(starts.end(), st.unit_starts[u].begin(),
                  st.unit_starts[u].end());
  }
  an.partition = symbolic::SupernodePartition(std::move(starts), st.n);
  an.blocks.part = an.partition;
  st.nb = an.partition.count();
  st.words = (st.nb + 63) / 64;
  st.closed_bits.assign(st.nb, std::vector<std::uint64_t>(st.words, 0));
  st.closed.resize(st.nb);
  st.lblocks.resize(st.nb);
  st.lheight.assign(st.nb, 0);
  st.extra_add.assign(st.nb, 0);
  st.bm.emplace(an.blocks, BlockMatrix::DeferredColumns{}, st.storage);
  st.ipiv.assign(st.nb, {});
  st.factor_gid.assign(st.nb, -1);
  if (st.two_d) st.fl_gid.resize(st.nb);
  // Amalgamation never merges across a unit boundary (the boundary column's
  // predecessor is a root and require_parent_child gates the pipeline), so
  // every unit's first column starts a block column.
  for (int u = 0; u < st.units; ++u) {
    st.ub_begin[u] = an.partition.supernode_of(st.unit_col_begin[u]);
  }
  st.ub_begin[st.units] = st.nb;
}

void task_struct(PipeState& st, int u) {
  PhaseSpan span(st, 0);
  const Analysis& an = *st.an;
  const Pattern& abar = an.symbolic.abar;
  const symbolic::SupernodePartition& part = an.blocks.part;
  const int w = st.words;
  std::vector<int> mark(st.nb, -1);
  std::vector<int> raw;
  for (int j = st.ub_begin[u]; j < st.ub_begin[u + 1]; ++j) {
    // Raw block list of block column j (the per-column restriction of
    // symbolic::block_pattern's mark-scan).
    raw.clear();
    for (int col = part.first(j); col < part.end(j); ++col) {
      for (const int* e = abar.col_begin(col); e != abar.col_end(col); ++e) {
        const int bi = part.supernode_of(*e);
        if (mark[bi] != j) {
          mark[bi] = j;
          raw.push_back(bi);
        }
      }
    }
    // Left-looking closure fold: B |= closed(k) >> for every U-part source
    // k of the working set, ascending.  Equals the right-looking global
    // sweep of symbolic::pairwise_closure because insertions are always
    // above the scan point and closed(k) is final once k's unit finished
    // (the coupling edges below order that).
    std::vector<std::uint64_t>& bits = st.closed_bits[j];
    for (int bi : raw) bits[bi >> 6] |= 1ull << (bi & 63);
    bool stop = false;
    for (int wd = 0; wd < w && !stop; ++wd) {
      std::uint64_t done = 0;
      for (;;) {
        const std::uint64_t word = bits[wd] & ~done;
        if (word == 0) break;
        const int k = (wd << 6) + std::countr_zero(word);
        if (k >= j) {
          stop = true;
          break;
        }
        done |= 1ull << (k & 63);
        const std::uint64_t* ck = st.closed_bits[k].data();
        const std::uint64_t gt =
            (k & 63) == 63 ? 0ull : (~0ull << ((k & 63) + 1));
        bits[wd] |= ck[wd] & gt;
        for (int v = wd + 1; v < w; ++v) bits[v] |= ck[v];
      }
    }
    std::vector<int>& cl = st.closed[j];
    cl.clear();
    for (int wd = 0; wd < w; ++wd) {
      std::uint64_t word = bits[wd];
      while (word != 0) {
        cl.push_back((wd << 6) + std::countr_zero(word));
        word &= word - 1;
      }
    }
    st.extra_add[j] =
        static_cast<long>(cl.size()) - static_cast<long>(raw.size());
    st.lblocks[j].assign(std::upper_bound(cl.begin(), cl.end(), j), cl.end());
    long lh = 0;
    for (int t : st.lblocks[j]) lh += part.width(t);
    st.lheight[j] = lh;
    st.bm->init_column(j, cl);
    st.bm->load_column(j, st.apre);
  }
}

void task_mat(PipeState& st, int u) {
  PhaseSpan span(st, 0);
  if (st.two_d) {
    build_unit_batch_2d(st, u);
  } else {
    build_unit_batch_1d(st, u);
  }
}

void task_finish(PipeState& st) {
  PhaseSpan span(st, 0);
  Analysis& an = *st.an;
  const int nb = st.nb;
  // Assemble the closed block pattern from the per-column lists, then the
  // remaining global artifacts, all with the SEQUENTIAL builders (their
  // team variants are documented bit-identical, so this matches
  // analyze_suffix exactly).  This task runs concurrently with the numeric
  // batches -- the overlap the phased barrier forbids.
  Pattern bp(nb, nb);
  for (int j = 0; j < nb; ++j) {
    bp.ptr[j + 1] = bp.ptr[j] + static_cast<int>(st.closed[j].size());
  }
  bp.idx.resize(bp.ptr[nb]);
  for (int j = 0; j < nb; ++j) {
    std::copy(st.closed[j].begin(), st.closed[j].end(),
              bp.idx.begin() + bp.ptr[j]);
  }
  an.blocks.bpattern = std::move(bp);
  long extra = 0;
  for (long e : st.extra_add) extra += e;
  an.blocks.extra_blocks_from_closure = extra;
  an.blocks.bpattern_rows = an.blocks.bpattern.transpose();
  an.blocks.beforest = graph::lu_eforest(an.blocks.bpattern);
  an.blocks.lockfree_safe = graph::verify_candidate_disjointness(
      an.blocks.bpattern, an.blocks.beforest);
  an.graph = taskgraph::build_task_graph(an.blocks, an.options.task_graph,
                                         taskgraph::Granularity::kColumn);
  an.costs = taskgraph::compute_task_costs(an.blocks, an.graph.tasks);
  if (an.options.layout == Layout::k2D) {
    an.block_graph = taskgraph::build_task_graph(
        an.blocks, an.options.task_graph, taskgraph::Granularity::kBlock);
  }
  an.timings.total = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - st.t0)
                         .count();
}

void run_analysis_task(PipeState& st, int id) {
  const int u = st.units;
  if (id < u) {
    task_super(st, id);
  } else if (id == u) {
    task_super_merge(st);
  } else if (id <= 2 * u) {
    task_amalg(st, id - u - 1);
  } else if (id == 2 * u + 1) {
    task_part_merge(st);
  } else if (id <= 3 * u + 1) {
    task_struct(st, id - 2 * u - 2);
  } else if (id <= 4 * u + 1) {
    task_mat(st, id - 3 * u - 2);
  } else {
    task_finish(st);
  }
}

}  // namespace

PipelineDriver::Result PipelineDriver::run(const CscMatrix& a,
                                           const Options& aopt,
                                           const NumericOptions& nopt,
                                           const std::vector<double>* b) {
  PipeState st;
  st.t0 = std::chrono::steady_clock::now();
  atomic_min(st.phase_min[0], 0);

  // --- inline prefix: MC64 (replicating analyze()'s composition), then
  // analysis steps 1-3.  After the prefix the postordered Abar, the eforest
  // and the permutations are final; everything later is per-unit tasks. ---
  AnalysisPrefix pre;
  if (aopt.scale_and_permute) {
    auto wm = graph::max_product_transversal(a);
    if (!wm) {
      throw std::invalid_argument("analyze: matrix is structurally singular");
    }
    Pattern prepat = a.pattern().permuted(wm->row_perm, Permutation(a.cols()));
    pre = analyze_prefix(prepat, aopt);
    pre.an.row_perm = Permutation::compose(wm->row_perm, pre.an.row_perm);
    pre.an.row_scale = std::move(wm->row_scale);
    pre.an.col_scale = std::move(wm->col_scale);
  } else {
    pre = analyze_prefix(a.pattern(), aopt);
  }

  if (pre.an.n == 0) {
    // Degenerate: nothing to pipeline; finish phased (still bit-identical).
    Result res;
    res.analysis = std::make_unique<Analysis>(analyze_suffix(std::move(pre)));
    res.factorization =
        std::make_unique<Factorization>(*res.analysis, a, nopt);
    if (b != nullptr) {
      res.x = res.factorization->solve(*b);
      res.solve_done = true;
    }
    return res;
  }

  std::unique_ptr<rt::Team> team = std::move(pre.team);  // keep lanes alive
  auto anp = std::make_unique<Analysis>(std::move(pre.an));
  st.an = anp.get();
  st.b = b;
  st.n = anp->n;
  st.two_d = aopt.layout == Layout::k2D;
  st.lazy = nopt.lazy_updates;
  st.threshold = nopt.pivot_threshold;
  st.ext = nopt.cancel;
  st.storage = nopt.storage;
  st.coarsen = nopt.coarsen;
  st.coarsen_threshold = nopt.coarsen_threshold_flops > 0.0
                             ? nopt.coarsen_threshold_flops
                             : kDefaultUnitFuseFlops;

  // Permuted + scaled input and the matrix-magnitude reference.  The phased
  // constructor scans the loaded block columns; scanning apre's values sees
  // exactly the same set (block storage is apre scattered over zeros).
  st.apre = anp->permute_input(a);
  {
    // Max |apre| with 0 -> 1: the same value the phased constructor folds
    // from the loaded block columns (block storage is apre over zeros).
    double ms = 0.0;
    for (double v : st.apre.values()) ms = std::max(ms, std::abs(v));
    st.matrix_scale = ms == 0.0 ? 1.0 : ms;
  }
  if (nopt.perturb_pivots) {
    st.perturb_magnitude =
        std::sqrt(std::numeric_limits<double>::epsilon()) * st.matrix_scale;
  }

  if (b != nullptr) {
    if (static_cast<int>(b->size()) != st.n) {
      throw std::invalid_argument("solve: rhs size mismatch");
    }
    st.y.resize(st.n);
    for (int i = 0; i < st.n; ++i) {
      const int old = anp->row_perm.old_of(i);
      st.y[i] = anp->scaled() ? anp->row_scale[old] * (*b)[old] : (*b)[old];
    }
  }

  // --- unit decomposition: coalesce consecutive eforest trees (postorder
  // makes each tree a contiguous column range ending at its root) until a
  // unit holds at least pipeline_min_unit_cols columns. ---
  const std::vector<int> roots = anp->eforest.roots();
  const int need = std::max(1, nopt.pipeline_min_unit_cols);
  st.unit_col_begin.push_back(0);
  {
    int begin = 0;
    for (std::size_t t = 0; t < roots.size(); ++t) {
      const int end = roots[t] + 1;
      if (end - begin >= need || t + 1 == roots.size()) {
        st.unit_col_begin.push_back(end);
        begin = end;
      }
    }
  }
  st.units = static_cast<int>(st.unit_col_begin.size()) - 1;
  const int nunits = st.units;
  st.unit_of_col.resize(st.n);
  for (int u = 0; u < nunits; ++u) {
    for (int c = st.unit_col_begin[u]; c < st.unit_col_begin[u + 1]; ++c) {
      st.unit_of_col[c] = u;
    }
  }

  // Unit coupling: unit u reads the closed structure of every unit owning a
  // U-part entry of u's Abar columns.  Closure adds no new source units
  // (an added block's source chain bottoms out in a raw entry of the same
  // column), so these DIRECT edges order all cross-unit Struct reads.
  st.coupling.resize(nunits);
  {
    const Pattern& abar = anp->symbolic.abar;
    std::vector<int> marku(nunits, -1);
    for (int u = 0; u < nunits; ++u) {
      const int c0 = st.unit_col_begin[u], c1 = st.unit_col_begin[u + 1];
      for (int j = c0; j < c1; ++j) {
        for (const int* e = abar.col_begin(j); e != abar.col_end(j); ++e) {
          if (*e < c0) {
            const int v = st.unit_of_col[*e];
            if (marku[v] != u) {
              marku[v] = u;
              st.coupling[u].push_back(v);
            }
          }
        }
      }
      std::sort(st.coupling[u].begin(), st.coupling[u].end());
    }
  }

  st.boundary.assign(st.n, 0);
  st.unit_s_begin.assign(nunits, 0);
  st.unit_s_end.assign(nunits, 0);
  st.unit_starts.resize(nunits);
  st.ub_begin.assign(nunits + 1, 0);

  // --- the pool ---
  std::unique_ptr<rt::SharedRuntime> own_pool;
  st.rtm = nopt.shared_runtime;
  if (st.rtm == nullptr) {
    own_pool = std::make_unique<rt::SharedRuntime>(
        nopt.threads > 0 ? nopt.threads : 1);
    st.rtm = own_pool.get();
  }

  // --- batch 0: the analysis graph. ---
  const int n0 = 4 * nunits + 3;
  rt::SharedRuntime::BatchSpec first;
  first.n = n0;
  first.indegree.assign(n0, 0);
  first.succ.assign(n0, {});
  first.priorities.resize(n0);
  for (int id = 0; id < n0; ++id) {
    first.priorities[id] = 1e12 + static_cast<double>(n0 - id);
  }
  const int id_super_merge = nunits;
  const int id_part_merge = 2 * nunits + 1;
  const int id_finish = 4 * nunits + 2;
  auto id_amalg = [&](int u) { return nunits + 1 + u; };
  auto id_struct = [&](int u) { return 2 * nunits + 2 + u; };
  auto id_mat = [&](int u) { return 3 * nunits + 2 + u; };
  auto link = [&](int from, int to) {
    first.succ[from].push_back(to);
    ++first.indegree[to];
  };
  for (int u = 0; u < nunits; ++u) link(u, id_super_merge);
  for (int u = 0; u < nunits; ++u) link(id_super_merge, id_amalg(u));
  for (int u = 0; u < nunits; ++u) link(id_amalg(u), id_part_merge);
  for (int u = 0; u < nunits; ++u) link(id_part_merge, id_struct(u));
  for (int u = 0; u < nunits; ++u) {
    for (int v : st.coupling[u]) link(id_struct(v), id_struct(u));
    link(id_struct(u), id_mat(u));
    if (u > 0) link(id_mat(u - 1), id_mat(u));
    link(id_struct(u), id_finish);
  }
  first.run = [ps = &st](int id) { run_analysis_task(*ps, id); };

  std::shared_ptr<rt::SharedRuntime::Run> run =
      st.rtm->submit_dynamic(std::move(first), 1 + nunits);
  {
    std::lock_guard<std::mutex> lock(st.run_mu);
    st.run = run;
    st.run_set = true;
  }
  st.run_cv.notify_all();

  rt::ExecutionReport rep = run->wait();
  if (!rep.completed && !rep.cancelled) {
    throw std::logic_error("pipeline: dynamic execution incomplete");
  }

  // --- status fold (RunState::finish + fold_external_cancel). ---
  std::sort(st.perturbed.begin(), st.perturbed.end());
  FactorStatus status;
  int failed_column;
  if (st.fail_col >= 0) {
    status = st.fail_status;
    failed_column = st.fail_col;
  } else {
    status = st.perturbed.empty() ? FactorStatus::kOk : FactorStatus::kPerturbed;
    failed_column = -1;
  }
  if (st.ext_numeric.load(std::memory_order_relaxed) &&
      factor_usable(status)) {
    status = FactorStatus::kCancelled;
    failed_column = -1;
  }

  // Final factor scan: pivot growth + overflow the factor tasks could not
  // see (same loop as the phased constructor).
  double factor_max = 0.0;
  for (int j = 0; j < st.nb; ++j) {
    blas::ConstMatrixView col = st.bm->column(j);
    factor_max = std::max(factor_max, blas::max_abs(col));
    int bad = -1;
    if (factor_usable(status) && !blas::all_finite(col, &bad)) {
      status = FactorStatus::kOverflow;
      failed_column = anp->blocks.part.first(j) + bad;
    }
  }

  // --- phase accounting. ---
  PipelineStats stats;
  stats.ran = true;
  stats.analysis_complete = true;  // analysis tasks never drain
  const double total = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - st.t0)
                           .count();
  auto wall = [&](int p) {
    const long long lo = st.phase_min[p].load(std::memory_order_relaxed);
    const long long hi = st.phase_max[p].load(std::memory_order_relaxed);
    return hi >= lo ? static_cast<double>(hi - lo) * 1e-9 : 0.0;
  };
  stats.analyze_seconds = wall(0);
  stats.factor_seconds = wall(1);
  stats.solve_seconds = wall(2);
  stats.total_seconds = total;

  Result res;
  const bool usable = factor_usable(status);
  const bool overlapped_solve =
      b != nullptr && usable &&
      !st.solve_drained.load(std::memory_order_relaxed);

  if (overlapped_solve) {
    // Backward pass + unpermute on the caller thread, exactly the phased
    // solve()'s loops over the forward-solved y.
    const long long bw0 = now_ns(st);
    const symbolic::SupernodePartition& part = anp->blocks.part;
    std::vector<double>& y = st.y;
    for (int k = st.nb - 1; k >= 0; --k) {
      const int wk = part.width(k);
      double* yk = y.data() + part.first(k);
      blas::ConstMatrixView panel = st.bm->panel(k);
      blas::ConstMatrixView ukk = panel.block(0, 0, wk, wk);
      blas::trsv(blas::UpLo::Upper, blas::Trans::No, blas::Diag::NonUnit, ukk,
                 yk, 1);
      const std::vector<int>& cl = st.closed[k];
      const int nu = u_count(cl, k);
      for (int t = 0; t < nu; ++t) {
        blas::ConstMatrixView uik = st.bm->block(cl[t], k);
        blas::gemv(blas::Trans::No, -1.0, uik, yk, 1, 1.0,
                   y.data() + part.first(cl[t]), 1);
      }
    }
    res.x.resize(st.n);
    for (int j = 0; j < st.n; ++j) {
      const int old = anp->col_perm.old_of(j);
      res.x[old] = anp->scaled() ? anp->col_scale[old] * y[j] : y[j];
    }
    res.solve_done = true;
    atomic_min(st.phase_min[2], bw0);
    atomic_max(st.phase_max[2], now_ns(st));
    stats.solve_seconds = wall(2);
    stats.total_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - st.t0)
                              .count();
  }
  stats.overlap_seconds =
      std::max(0.0, stats.analyze_seconds + stats.factor_seconds +
                        stats.solve_seconds - stats.total_seconds);

  taskgraph::CoarsenStats cst;
  cst.ran = st.coarsen;
  cst.tasks_before = static_cast<int>(st.c_tasks_before);
  cst.edges_before = st.c_edges_before;
  cst.tasks_after = static_cast<int>(st.c_tasks_after);
  cst.edges_after = st.c_edges_after;
  cst.fused_groups = st.c_fused_groups;
  cst.fused_tasks = st.c_fused_tasks;
  cst.threshold_flops = st.coarsen ? st.coarsen_threshold : 0.0;

  Factorization::PipelineState pstate{
      std::move(*st.bm),
      std::move(st.ipiv),
      std::isfinite(st.min_pivot) ? st.min_pivot / st.matrix_scale : 0.0,
      st.zero_pivots.load(std::memory_order_relaxed),
      st.lazy_skipped.load(std::memory_order_relaxed),
      status,
      failed_column,
      std::move(st.perturbed),
      st.perturb_magnitude,
      factor_max / st.matrix_scale,
      stats,
      cst};
  res.factorization = std::unique_ptr<Factorization>(
      new Factorization(*anp, std::move(pstate)));
  res.analysis = std::move(anp);

  if (b != nullptr && usable && !res.solve_done) {
    // A drained forward (external cancel landing mid-solve) leaves the
    // factors whole; recompute the solve phased.
    res.x = res.factorization->solve(*b);
    res.solve_done = true;
  }
  return res;
}

}  // namespace plu
