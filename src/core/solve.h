// Post-factorization utilities: multi-RHS solves, determinant, dense factor
// extraction (test/debug aids for small problems).
#pragma once

#include <vector>

#include "blas/dense.h"
#include "core/numeric.h"

namespace plu {

/// Solves A X = B column by column; B is n x nrhs column-major.
std::vector<double> solve_many(const Factorization& f,
                               const std::vector<double>& b_colmajor, int nrhs);

struct Determinant {
  double log_abs = 0.0;  // log |det A|
  int sign = 0;          // -1, 0, +1
};

/// Determinant from the U diagonal, the pivot interchanges and the analysis
/// permutations.
Determinant determinant(const Factorization& f);

/// Dense unit-lower L factor of the permuted matrix (small problems only).
blas::DenseMatrix extract_l_dense(const Factorization& f);

/// Dense upper U factor of the permuted matrix (small problems only).
blas::DenseMatrix extract_u_dense(const Factorization& f);

/// The accumulated row-pivot permutation of the factorization, as acting on
/// the analysis-ordered matrix: row `r` of L*U corresponds to row
/// pivot_old_of[r] of Apre.
std::vector<int> pivot_old_of(const Factorization& f);

/// Lower-bound estimate of ||A^{-1}||_1 by Higham's power method on the
/// factored inverse (solve + solve_transpose per iteration; typically 2-4
/// iterations).  Within a small factor of the truth in practice, never
/// above it.
double inverse_norm1_estimate(const Factorization& f, int max_iterations = 8);

struct ConditionEstimate {
  double norm_a = 0.0;     // ||A||_1 (exact)
  double norm_ainv = 0.0;  // ||A^{-1}||_1 (estimated)
  double cond1 = 0.0;      // product
};

/// 1-norm condition estimate of the matrix behind the factorization.
ConditionEstimate estimate_condition(const Factorization& f, const CscMatrix& a);

/// Pivot growth max|U| / max|Apre| (SuperLU reports its reciprocal), with
/// `a` the matrix that was factorized: values far above 1 flag elimination
/// growth, the classic instability signature of weak pivoting.
double pivot_growth(const Factorization& f, const CscMatrix& a);

}  // namespace plu
