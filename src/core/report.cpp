#include "core/report.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace plu {

namespace {

/// One-line rendering of the ordering decision, shared by both reports.
std::string render_ordering(const ordering::Decision& d) {
  std::ostringstream os;
  os << "ordering:    " << ordering::to_string(d.chosen);
  if (d.requested != d.chosen) {
    os << " (requested " << ordering::to_string(d.requested) << ")";
  }
  if (!d.engine.empty()) os << ", engine " << d.engine;
  os << "; n=" << d.features.n << ", skew " << d.features.degree_skew
     << ", band " << d.features.bandwidth_ratio;
  if (d.dry_run) {
    os << "; dry-run fill " << d.dry_run_fill_chosen << " vs "
       << d.dry_run_fill_alternative;
  }
  return os.str();
}

/// One-line rendering of the blocking-plan summary, shared by both reports.
std::string render_blocking_plan(const symbolic::BlockPlanSummary& s) {
  std::ostringstream os;
  os << s.panel_blocks << " L block(s) -> " << s.predicted_tiles
     << " tile(s) (" << s.split_tiles << " split, " << s.mixed_columns
     << " mixed column(s)), " << 100.0 * s.dense_area_frac
     << "% dense-tile area, " << s.dense_blocks << " dense / " << s.zero_blocks
     << " zero block(s)";
  return os.str();
}

}  // namespace

AnalysisReport report(const Analysis& an) {
  AnalysisReport r;
  r.n = an.n;
  r.nnz = an.nnz_input;
  r.ordering = an.ordering_decision;
  r.fill_ratio = an.fill_ratio();
  r.nnz_abar = an.symbolic.abar.nnz();
  r.mc64_scaled = an.scaled();
  r.diag_blocks = static_cast<int>(an.diag_block_sizes.size());
  r.supernodes = symbolic::supernode_stats(an.partition);
  r.exact_supernodes = symbolic::supernode_stats(an.exact_partition);
  r.extra_closure_blocks = an.blocks.extra_blocks_from_closure;
  r.lockfree_safe = an.blocks.lockfree_safe;
  r.beforest = graph::forest_stats(an.blocks.beforest);
  r.graph_kind = taskgraph::to_string(an.graph.kind);
  r.graph = taskgraph::graph_stats(an.graph, an.costs);
  r.blocking = an.block_plan.summary;
  r.timings = an.timings;
  return r;
}

FactorizationReport report(const Factorization& f) {
  FactorizationReport r;
  r.driver = f.driver_name();
  r.status = f.status();
  r.failed_column = f.failed_column();
  r.min_pivot_ratio = f.min_pivot_ratio();
  r.growth_factor = f.growth_factor();
  r.perturbation_magnitude = f.perturbation_magnitude();
  r.perturbed_columns = f.perturbed_columns();
  r.singular = f.singular();
  r.zero_pivots = f.zero_pivots();
  r.pivot_interchanges = f.pivot_interchanges();
  r.lazy_skipped_updates = f.lazy_skipped_updates();
  r.stored_doubles = f.blocks().stored_doubles();
  r.storage_bytes = f.blocks().storage_bytes();
  r.storage_mode = to_string(f.blocks().storage_mode());
  r.coarsen = f.coarsen_stats();
  r.blocking_plan = f.analysis().block_plan.summary;
  r.blocking = f.blocking_stats();
  r.analysis_timings = f.analysis().timings;
  r.ordering = f.analysis().ordering_decision;
  r.pipeline = f.pipeline_stats();
  r.pipeline_overlap_seconds = r.pipeline.overlap_seconds;
  return r;
}

std::string to_string(const AnalysisReport& r) {
  std::ostringstream os;
  os << "matrix:      n=" << r.n << ", nnz=" << r.nnz
     << (r.mc64_scaled ? " (MC64-scaled)" : "") << '\n';
  os << render_ordering(r.ordering) << '\n';
  os << "symbolic:    |Abar|=" << r.nnz_abar << " (" << r.fill_ratio
     << "x fill), " << r.diag_blocks << " diagonal block(s)\n";
  os << "supernodes:  " << r.supernodes.count << " (exact "
     << r.exact_supernodes.count << "), avg width " << r.supernodes.avg_width
     << ", max " << r.supernodes.max_width << ", closure padding "
     << r.extra_closure_blocks << " block(s)\n";
  os << "beforest:    " << r.beforest.trees << " tree(s), " << r.beforest.leaves
     << " leaves, height " << r.beforest.height << ", max branching "
     << r.beforest.max_branching
     << (r.lockfree_safe ? ", lock-free safe" : ", needs column locks") << '\n';
  os << "task graph:  " << r.graph_kind << ", " << r.graph.tasks << " tasks, "
     << r.graph.edges << " edges, " << r.graph.total_flops / 1e9
     << " Gflop total, max parallelism " << r.graph.max_parallelism();
  if (r.blocking.built) {
    os << "\nblocking:    " << render_blocking_plan(r.blocking);
  }
  return os.str();
}

std::string to_string(const FactorizationReport& r) {
  std::ostringstream os;
  os << render_ordering(r.ordering) << '\n';
  os << "numeric:     " << r.driver << " driver, status "
     << to_string(r.status);
  if (!factor_usable(r.status)) {
    os << " (failed at column " << r.failed_column << ")";
  }
  os << ", " << r.pivot_interchanges << " interchange(s), " << r.zero_pivots
     << " zero pivot(s), " << r.lazy_skipped_updates
     << " lazy-skipped update(s), min pivot ratio " << r.min_pivot_ratio
     << ", growth factor " << r.growth_factor << ", "
     << 8.0 * r.stored_doubles / 1e6 << " MB factor values ("
     << r.storage_bytes / 1e6 << " MB peak " << r.storage_mode << " storage)";
  if (r.coarsen.ran) {
    os << "\ncoarsening:  " << r.coarsen.tasks_before << " -> "
       << r.coarsen.tasks_after << " task(s), " << r.coarsen.edges_before
       << " -> " << r.coarsen.edges_after << " edge(s); "
       << r.coarsen.fused_groups << " fused group(s) absorbing "
       << r.coarsen.fused_tasks << " task(s), threshold "
       << r.coarsen.threshold_flops / 1e6 << " Mflop";
    if (r.coarsen.dag_bound) {
      os << "; dag-bound, tiny-merged " << r.coarsen.tiny_merged_stages
         << " stage(s)";
    }
  }
  if (r.blocking.ran) {
    os << "\nblocking:    auto: " << r.blocking.tile_runs << " tile run(s) ("
       << r.blocking.gemms_fused << " gemm(s) fused), routed "
       << r.blocking.routed_packed << " packed / " << r.blocking.routed_direct
       << " direct, " << r.blocking.scans_elided << " scan(s) elided; plan "
       << render_blocking_plan(r.blocking_plan);
  } else {
    os << "\nblocking:    off (per-block routing)";
  }
  if (!r.perturbed_columns.empty()) {
    os << "\nperturbed:   " << r.perturbed_columns.size()
       << " pivot(s) bumped to " << r.perturbation_magnitude << " at column(s)";
    const std::size_t shown = std::min<std::size_t>(8, r.perturbed_columns.size());
    for (std::size_t i = 0; i < shown; ++i) os << ' ' << r.perturbed_columns[i];
    if (shown < r.perturbed_columns.size()) {
      os << " ... (+" << r.perturbed_columns.size() - shown << " more)";
    }
    os << "; pair with refined_solve to recover accuracy";
  }
  if (r.pipeline.ran) {
    // Pipelined phases overlap: print per-phase WALL SPANS plus the overlap
    // instead of a sequential-looking breakdown that sums past the total.
    os << "\npipeline:    " << r.pipeline.total_seconds * 1e3
       << " ms end-to-end; phase walls analyze "
       << r.pipeline.analyze_seconds * 1e3 << " ms, factor "
       << r.pipeline.factor_seconds * 1e3 << " ms, solve "
       << r.pipeline.solve_seconds * 1e3 << " ms; overlap "
       << r.pipeline_overlap_seconds * 1e3 << " ms"
       << (r.pipeline.analysis_complete ? "" : " (analysis incomplete)");
  }
  return os.str();
}

std::string to_string(const AnalysisTimings& t) {
  std::ostringstream os;
  auto line = [&](const char* name, double s) {
    double pct = t.total > 0 ? 100.0 * s / t.total : 0.0;
    os << "  " << name << std::string(18 - std::string(name).size(), ' ')
       << s * 1e3 << " ms (" << pct << "%)\n";
  };
  os << "analysis:    " << t.total * 1e3 << " ms total, "
     << (t.parallel ? "parallel" : "sequential") << " pipeline, "
     << t.threads << " thread(s)\n";
  line("ordering", t.ordering);
  line("transversal", t.transversal);
  line("symbolic", t.symbolic);
  line("eforest+postorder", t.eforest_postorder);
  line("supernodes", t.supernodes);
  line("blocks", t.blocks);
  line("taskgraph", t.taskgraph);
  std::string s = os.str();
  s.pop_back();  // trailing newline
  return s;
}

std::ostream& operator<<(std::ostream& os, const AnalysisReport& r) {
  return os << to_string(r);
}

std::ostream& operator<<(std::ostream& os, const FactorizationReport& r) {
  return os << to_string(r);
}

}  // namespace plu
