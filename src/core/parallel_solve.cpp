#include "core/parallel_solve.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "blas/level2.h"
#include "runtime/dag_executor.h"

namespace plu {

namespace {

void add_edge_unique(std::vector<std::vector<int>>& succ, std::vector<int>& indeg,
                     int from, int to) {
  auto& s = succ[from];
  if (std::find(s.begin(), s.end(), to) != s.end()) return;
  s.push_back(to);
  ++indeg[to];
}

std::vector<int> panel_global_rows(const Analysis& an, int k) {
  const symbolic::SupernodePartition& part = an.blocks.part;
  std::vector<int> rows;
  for (int r = part.first(k); r < part.end(k); ++r) rows.push_back(r);
  for (int t : an.blocks.l_blocks(k)) {
    for (int r = part.first(t); r < part.end(t); ++r) rows.push_back(r);
  }
  return rows;
}

}  // namespace

ParallelSolver::ParallelSolver(const Factorization& f) : f_(&f) {
  const Analysis& an = f.analysis();
  const symbolic::SupernodePartition& part = an.blocks.part;
  const int nb = an.blocks.num_blocks();
  const int n = an.n;

  // Eager positions of every panel's below-diagonal rows: walk panels
  // backwards accumulating the suffix of interchanges (cf. extract_l_dense).
  eager_rows_.assign(nb, {});
  std::vector<int> pos(n);
  std::iota(pos.begin(), pos.end(), 0);
  for (int k = nb - 1; k >= 0; --k) {
    std::vector<int> grows = panel_global_rows(an, k);
    const int wk = part.width(k);
    eager_rows_[k].reserve(grows.size() - wk);
    for (std::size_t r = wk; r < grows.size(); ++r) {
      eager_rows_[k].push_back(pos[grows[r]]);
    }
    const std::vector<int>& piv = f.panel_ipiv(k);
    for (std::size_t c = piv.size(); c-- > 0;) {
      if (piv[c] != static_cast<int>(c)) {
        std::swap(pos[grows[c]], pos[grows[piv[c]]]);
      }
    }
  }

  // pre_perm_[r] = Apre row sitting at eager position r after all pivots:
  // replay the interchanges forward on an identity map.
  pre_perm_.resize(n);
  std::iota(pre_perm_.begin(), pre_perm_.end(), 0);
  for (int k = 0; k < nb; ++k) {
    std::vector<int> grows = panel_global_rows(an, k);
    const std::vector<int>& piv = f.panel_ipiv(k);
    for (std::size_t c = 0; c < piv.size(); ++c) {
      if (piv[c] != static_cast<int>(c)) {
        std::swap(pre_perm_[grows[c]], pre_perm_[grows[piv[c]]]);
      }
    }
  }

  // Forward DAG: consumer edges k -> block(eager position).
  fwd_succ_.assign(nb, {});
  fwd_indeg_.assign(nb, 0);
  for (int k = 0; k < nb; ++k) {
    for (int p : eager_rows_[k]) {
      int t = part.supernode_of(p);
      assert(t > k);  // contributions always go strictly downward
      add_edge_unique(fwd_succ_, fwd_indeg_, k, t);
    }
  }

  // Backward DAG: consumer edges k -> i for every U block (i, k).
  bwd_succ_.assign(nb, {});
  bwd_indeg_.assign(nb, 0);
  for (int k = 0; k < nb; ++k) {
    for (const int* it = an.blocks.bpattern.col_begin(k);
         it != an.blocks.bpattern.col_end(k) && *it < k; ++it) {
      add_edge_unique(bwd_succ_, bwd_indeg_, k, *it);
    }
  }

  row_locks_ = std::make_unique<std::vector<std::mutex>>(nb);
}

std::vector<double> ParallelSolver::solve(const std::vector<double>& b,
                                          int threads) const {
  const Factorization& f = *f_;
  const Analysis& an = f.analysis();
  const symbolic::SupernodePartition& part = an.blocks.part;
  const int n = an.n;
  assert(static_cast<int>(b.size()) == n);

  // y = Phat Pr b, both permutations folded into one gather (plus the MC64
  // row scaling when present).
  std::vector<double> y(n);
  for (int r = 0; r < n; ++r) {
    int old = an.row_perm.old_of(pre_perm_[r]);
    y[r] = an.scaled() ? an.row_scale[old] * b[old] : b[old];
  }

  const BlockMatrix& bm = f.blocks();
  auto forward_step = [&](int k) {
    const int wk = part.width(k);
    double* yk = y.data() + part.first(k);
    blas::ConstMatrixView panel = bm.panel(k);
    blas::ConstMatrixView lkk = panel.block(0, 0, wk, wk);
    blas::trsv(blas::UpLo::Lower, blas::Trans::No, blas::Diag::Unit, lkk, yk, 1);
    const int below = static_cast<int>(eager_rows_[k].size());
    if (below == 0) return;
    std::vector<double> contrib(below, 0.0);
    blas::ConstMatrixView lbelow = panel.block(wk, 0, below, wk);
    blas::gemv(blas::Trans::No, 1.0, lbelow, yk, 1, 0.0, contrib.data(), 1);
    // Scatter-subtract under per-block locks, grouping runs by target block
    // to bound lock traffic.
    int r = 0;
    while (r < below) {
      int t = part.supernode_of(eager_rows_[k][r]);
      int e = r;
      while (e < below && part.supernode_of(eager_rows_[k][e]) == t) ++e;
      {
        std::lock_guard<std::mutex> lock((*row_locks_)[t]);
        for (int q = r; q < e; ++q) y[eager_rows_[k][q]] -= contrib[q];
      }
      r = e;
    }
  };
  rt::ExecutionReport fwd =
      rt::execute_dag(fwd_succ_, fwd_indeg_, threads, forward_step);
  assert(fwd.completed);
  (void)fwd;

  auto backward_step = [&](int k) {
    const int wk = part.width(k);
    double* yk = y.data() + part.first(k);
    blas::ConstMatrixView panel = bm.panel(k);
    blas::ConstMatrixView ukk = panel.block(0, 0, wk, wk);
    blas::trsv(blas::UpLo::Upper, blas::Trans::No, blas::Diag::NonUnit, ukk, yk, 1);
    for (int i : bm.column_blocks(k)) {
      if (i >= k) break;
      blas::ConstMatrixView uik = bm.block(i, k);
      std::lock_guard<std::mutex> lock((*row_locks_)[i]);
      blas::gemv(blas::Trans::No, -1.0, uik, yk, 1, 1.0,
                 y.data() + part.first(i), 1);
    }
  };
  rt::ExecutionReport bwd =
      rt::execute_dag(bwd_succ_, bwd_indeg_, threads, backward_step);
  assert(bwd.completed);
  (void)bwd;

  std::vector<double> x(n);
  for (int j = 0; j < n; ++j) {
    int old = an.col_perm.old_of(j);
    x[old] = an.scaled() ? an.col_scale[old] * y[j] : y[j];
  }
  return x;
}

std::vector<double> ParallelSolver::forward_flops() const {
  const Analysis& an = f_->analysis();
  const symbolic::SupernodePartition& part = an.blocks.part;
  const int nb = an.blocks.num_blocks();
  std::vector<double> flops(nb, 0.0);
  for (int k = 0; k < nb; ++k) {
    const double wk = part.width(k);
    flops[k] = wk * wk + 2.0 * static_cast<double>(eager_rows_[k].size()) * wk;
  }
  return flops;
}

std::vector<double> ParallelSolver::backward_flops() const {
  const Analysis& an = f_->analysis();
  const symbolic::SupernodePartition& part = an.blocks.part;
  const int nb = an.blocks.num_blocks();
  std::vector<double> flops(nb, 0.0);
  for (int k = 0; k < nb; ++k) {
    const double wk = part.width(k);
    double above = 0;
    for (const int* it = an.blocks.bpattern.col_begin(k);
         it != an.blocks.bpattern.col_end(k) && *it < k; ++it) {
      above += part.width(*it);
    }
    flops[k] = wk * wk + 2.0 * above * wk;
  }
  return flops;
}

}  // namespace plu
