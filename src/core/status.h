// Numeric-breakdown status of a factorization run.
//
// The symbolic factorization is STATIC: the task graph is fixed before any
// numeric value is seen, so a numeric breakdown cannot be repaired by
// re-analysis.  Instead the numeric tier detects it, cancels the remaining
// tasks cooperatively (runtime/dag_executor.h, CancelToken) and surfaces a
// status the caller must check before trusting solves.  The SuperLU_DIST
// recovery path -- perturb tiny pivots, log them, repair accuracy with
// iterative refinement -- is available behind NumericOptions::perturb_pivots.
#pragma once

namespace plu {

enum class FactorStatus {
  kOk,         // factorization completed with usable pivots
  kPerturbed,  // completed, but some pivots were bumped to the static
               // perturbation magnitude; pair with refined_solve to recover
               // accuracy (Factorization::perturbed_columns() lists them)
  kSingular,   // exact zero pivot with perturbation off; the run was
               // cancelled at Factorization::failed_column()
  kOverflow,   // a non-finite value (Inf/NaN) appeared in the factors; the
               // run was cancelled at Factorization::failed_column()
  kCancelled,  // the run was stopped from OUTSIDE (NumericOptions::cancel --
               // a deadline or client cancellation, not a numeric event);
               // the factors are incomplete and unusable, but the runtime
               // drained cleanly and can be reused
};

/// "ok" / "perturbed" / "singular" / "overflow" / "cancelled".
const char* to_string(FactorStatus s);

/// True when the factors are safe to solve with (kOk or kPerturbed).
inline bool factor_usable(FactorStatus s) {
  return s == FactorStatus::kOk || s == FactorStatus::kPerturbed;
}

}  // namespace plu
