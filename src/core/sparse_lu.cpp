#include "core/sparse_lu.h"

#include <stdexcept>

#include "core/driver.h"
#include "core/parallel_solve.h"
#include "core/pipeline.h"

namespace plu {

SparseLU::SparseLU() = default;
SparseLU::SparseLU(const Options& opt) : options_(opt) {}
SparseLU::~SparseLU() = default;
SparseLU::SparseLU(SparseLU&&) noexcept = default;
SparseLU& SparseLU::operator=(SparseLU&&) noexcept = default;

void SparseLU::analyze(const CscMatrix& a) {
  analysis_ = std::make_unique<Analysis>(plu::analyze(a, options_));
  analyzed_pattern_ = a.pattern();
  analyzed_fingerprint_ = structure_fingerprint(a.rows(), a.cols(),
                                                a.col_ptr(), a.row_ind());
  ++analyze_count_;
  factorization_.reset();
  parallel_solver_.reset();
  last_matrix_.reset();
}

bool SparseLU::pattern_matches(const CscMatrix& a) const {
  // Reuse the analysis only for the SAME sparsity pattern: a same-size
  // matrix with new structure needs its own symbolic factorization (values
  // may change freely -- that is the point of the static approach).
  // Tiered guard: dims + fingerprint reject almost every mismatch without
  // touching the index arrays; the full compare only confirms a hash match
  // (64-bit collisions exist).
  bool same_pattern = analysis_ && analyzed_pattern_.rows == a.rows() &&
                      analyzed_pattern_.cols == a.cols();
  if (same_pattern) {
    same_pattern = analyzed_fingerprint_ ==
                   structure_fingerprint(a.rows(), a.cols(), a.col_ptr(),
                                         a.row_ind());
  }
  if (same_pattern) {
    same_pattern = analyzed_pattern_.ptr == a.col_ptr() &&
                   analyzed_pattern_.idx == a.row_ind();
  }
  return same_pattern;
}

std::vector<double> SparseLU::run_pipeline(const CscMatrix& a,
                                           const std::vector<double>* b) {
  PipelineDriver::Result res =
      PipelineDriver::run(a, options_, numeric_options_, b);
  analysis_ = std::move(res.analysis);
  analyzed_pattern_ = a.pattern();
  analyzed_fingerprint_ = structure_fingerprint(a.rows(), a.cols(),
                                                a.col_ptr(), a.row_ind());
  ++analyze_count_;
  parallel_solver_.reset();
  factorization_ = std::move(res.factorization);
  last_matrix_ = a;
  if (b != nullptr && !res.solve_done) {
    return factorization_->solve(*b);  // throws when the factors are unusable
  }
  return std::move(res.x);
}

void SparseLU::factorize(const CscMatrix& a) {
  if (!pattern_matches(a)) {
    // A cold pattern is the pipeline's case: analysis and numeric tasks run
    // as one graph.  With a cached analysis there is nothing to overlap and
    // the phased constructor below is already optimal.
    if (pipeline_supported(options_, numeric_options_)) {
      run_pipeline(a, nullptr);
      return;
    }
    analyze(a);
  }
  parallel_solver_.reset();  // bound to the factorization it was built from
  factorization_ = std::make_unique<Factorization>(*analysis_, a, numeric_options_);
  last_matrix_ = a;
}

std::vector<double> SparseLU::factorize_and_solve(const CscMatrix& a,
                                                  const std::vector<double>& b) {
  if (!pattern_matches(a) && pipeline_supported(options_, numeric_options_)) {
    return run_pipeline(a, &b);
  }
  factorize(a);
  return solve(b);
}

const Analysis& SparseLU::analysis() const {
  if (!analysis_) throw std::logic_error("SparseLU: analyze() not called");
  return *analysis_;
}

const Factorization& SparseLU::factorization() const {
  if (!factorization_) throw std::logic_error("SparseLU: factorize() not called");
  return *factorization_;
}

std::vector<double> SparseLU::solve(const std::vector<double>& b) const {
  return factorization().solve(b);
}

std::vector<double> SparseLU::solve_transpose(const std::vector<double>& b) const {
  return factorization().solve_transpose(b);
}

std::vector<double> SparseLU::solve_parallel(const std::vector<double>& b,
                                             int threads) const {
  const Factorization& f = factorization();
  if (!parallel_solver_) {
    parallel_solver_ = std::make_unique<ParallelSolver>(f);
  }
  return parallel_solver_->solve(b, threads);
}

RefineResult SparseLU::solve_refined(const std::vector<double>& b,
                                     const RefineOptions& opt) const {
  if (!last_matrix_) throw std::logic_error("SparseLU: factorize() not called");
  return refined_solve(factorization(), *last_matrix_, b, opt);
}

std::vector<double> SparseLU::solve_system(const CscMatrix& a,
                                           const std::vector<double>& b,
                                           const Options& opt,
                                           const NumericOptions& nopt) {
  SparseLU lu(opt);
  lu.numeric_options() = nopt;
  lu.factorize(a);
  return lu.solve(b);
}

}  // namespace plu
