// Structured analysis/factorization report: every statistic the examples,
// the CLI and the benches keep re-deriving, gathered once with a printable
// rendering.  A downstream user's first stop when a factorization behaves
// unexpectedly.
#pragma once

#include <iosfwd>
#include <string>

#include "core/numeric.h"
#include "graph/forest.h"
#include "symbolic/supernodes.h"
#include "taskgraph/analysis.h"

namespace plu {

struct AnalysisReport {
  // Input.
  int n = 0;
  int nnz = 0;
  // Ordering (what the dispatch ran; chosen != requested only under kAuto).
  ordering::Decision ordering;
  // Symbolic.
  double fill_ratio = 0.0;
  long nnz_abar = 0;
  bool mc64_scaled = false;
  int diag_blocks = 0;
  // Supernodes / blocks.
  symbolic::SupernodeStats supernodes;
  symbolic::SupernodeStats exact_supernodes;
  long extra_closure_blocks = 0;
  bool lockfree_safe = false;
  // Forest shape (the block eforest driving the task graph).
  graph::ForestStats beforest;
  // Task graph.
  std::string graph_kind;
  taskgraph::GraphStats graph;
  // Structure-aware blocking plan summary (symbolic/repartition.h):
  // predicted tile split, dense coverage, closure padding.
  symbolic::BlockPlanSummary blocking;
  // Per-phase wall-clock breakdown of the analyze run.
  AnalysisTimings timings;
};

/// Collects the report from an analysis.
AnalysisReport report(const Analysis& an);

struct FactorizationReport {
  std::string driver;  // NumericDriver::name() of the driver that ran
  FactorStatus status = FactorStatus::kOk;
  int failed_column = -1;  // breakdown column when status is singular/overflow
  bool singular = false;
  int zero_pivots = 0;
  long pivot_interchanges = 0;
  long lazy_skipped_updates = 0;
  double min_pivot_ratio = 0.0;
  double growth_factor = 0.0;
  /// Static pivot perturbation log (NumericOptions::perturb_pivots).
  double perturbation_magnitude = 0.0;
  std::vector<int> perturbed_columns;
  std::size_t stored_doubles = 0;
  /// Peak block-storage footprint in bytes (arena / segment capacity
  /// including alignment padding; vector sums in kVectors mode) and the
  /// storage mode that produced it.
  std::size_t storage_bytes = 0;
  std::string storage_mode;
  /// Task-graph coarsening summary (ran == false when coarsening was off or
  /// not applicable): node/edge counts before and after contraction.
  taskgraph::CoarsenStats coarsen;
  /// Structure-aware blocking: the analysis plan summary plus the run's
  /// tile-routing counters (BlockingStats::ran == false when the plan was
  /// off, absent, or the pipelined path ran).
  symbolic::BlockPlanSummary blocking_plan;
  symbolic::BlockingStats blocking;
  /// Analyze-phase breakdown of the analysis this factorization ran on, so
  /// analyze-vs-factorize cost is visible without a profiler.
  AnalysisTimings analysis_timings;
  /// Ordering decision of that analysis (the kAuto policy's pick and the
  /// features it decided on) -- the "which ordering did I actually get"
  /// answer without re-running the analysis report.
  ordering::Decision ordering;
  /// Pipelined-run phase accounting (PipelineStats::ran set when the
  /// phase-spanning pipeline produced this factorization).  The per-phase
  /// numbers are WALL SPANS of each phase's task activity -- phases overlap,
  /// so they can sum to more than total_seconds; pipeline_overlap_seconds
  /// is exactly that excess, reported instead of pretending the phases were
  /// sequential.
  PipelineStats pipeline;
  /// Alias of pipeline.overlap_seconds, the headline honesty number.
  double pipeline_overlap_seconds = 0.0;
};

FactorizationReport report(const Factorization& f);

/// Multi-line human-readable rendering.
std::string to_string(const AnalysisReport& r);
std::string to_string(const FactorizationReport& r);

/// One line per analysis phase with percentages of the total -- the
/// rendering behind plu_solve --verbose.
std::string to_string(const AnalysisTimings& t);

std::ostream& operator<<(std::ostream& os, const AnalysisReport& r);
std::ostream& operator<<(std::ostream& os, const FactorizationReport& r);

}  // namespace plu
