#include "core/analysis.h"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "graph/eforest.h"
#include "graph/postorder.h"
#include "graph/transversal.h"
#include "graph/weighted_matching.h"

namespace plu {

namespace {

/// Seconds elapsed since `last`, which is advanced to now -- the phase
/// timer threaded through analyze_pattern.
double lap(std::chrono::steady_clock::time_point& last) {
  auto now = std::chrono::steady_clock::now();
  double s = std::chrono::duration<double>(now - last).count();
  last = now;
  return s;
}

}  // namespace

CscMatrix Analysis::permute_input(const CscMatrix& a) const {
  CscMatrix p = a.permuted(row_perm, col_perm);
  if (!scaled()) return p;
  // Scale in the permuted frame: entry (i, j) of p is entry
  // (row_perm.old_of(i), col_perm.old_of(j)) of a.
  std::vector<int> ptr = p.col_ptr();
  std::vector<int> ind = p.row_ind();
  std::vector<double> val = p.values();
  for (int j = 0; j < p.cols(); ++j) {
    double cs = col_scale[col_perm.old_of(j)];
    for (int k = ptr[j]; k < ptr[j + 1]; ++k) {
      val[k] *= row_scale[row_perm.old_of(ind[k])] * cs;
    }
  }
  return CscMatrix(p.rows(), p.cols(), std::move(ptr), std::move(ind),
                   std::move(val));
}

AnalysisPrefix analyze_prefix(const Pattern& a, const Options& opt) {
  if (a.rows != a.cols) {
    throw std::invalid_argument("analyze: matrix must be square");
  }
  AnalysisPrefix pre;
  Analysis& an = pre.an;
  an.options = opt;
  an.n = a.cols;
  an.nnz_input = a.nnz();

  // Analysis-phase team.  Sequential runs use a single-lane team (every
  // parallel_for inlines); the parallel pipeline is bit-identical, so the
  // knob only ever changes timings.
  int threads = 1;
  const bool parallel =
      opt.analysis.parallel_analyze && an.n >= opt.analysis.min_parallel_n;
  if (parallel) {
    threads = opt.analysis.threads > 0
                  ? opt.analysis.threads
                  : static_cast<int>(std::thread::hardware_concurrency());
    if (threads < 1) threads = 1;
  }
  pre.team = std::make_unique<rt::Team>(threads, opt.analysis.min_step_work);
  rt::Team& team = *pre.team;
  an.timings.threads = team.lanes();
  an.timings.parallel = parallel && team.lanes() > 1;

  pre.t_start = std::chrono::steady_clock::now();
  auto& last = pre.last;
  last = pre.t_start;

  // (1) Fill-reducing column ordering (minimum degree on A^T A by default);
  // applied to rows as well under symmetric_ordering so an existing
  // diagonal matching survives.  The team is handed to parallel engines
  // (AMD); a single-lane team inlines every fan-out, so the permutation is
  // identical either way (amd.h documents the determinism contract).
  ordering::Controls octl;
  octl.team = pre.team.get();
  octl.dry_run = opt.ordering_dry_run;
  Permutation q1 = ordering::compute_column_ordering(a, opt.ordering, octl,
                                                     &an.ordering_decision);
  const bool sym_order = opt.symmetric_ordering || opt.scale_and_permute;
  Pattern a1 = a.permuted(sym_order ? q1 : Permutation(a.rows), q1);
  an.timings.ordering = lap(last);

  // (1b) Maximum transversal for a zero-free diagonal (identity when the
  // diagonal is already structurally full -- the transversal prefers it).
  auto p1 = graph::zero_free_diagonal_permutation(a1);
  if (!p1) {
    throw std::invalid_argument("analyze: matrix is structurally singular");
  }
  Pattern a2 = a1.permuted(*p1, Permutation(a.cols));
  an.timings.transversal = lap(last);

  // (2) Static symbolic factorization and the LU eforest.  The team engine
  // only replaces the default bitset engine; an explicit kRowMerge request
  // stays sequential (it has no parallel twin).
  symbolic::Engine engine = opt.symbolic_engine;
  if (an.timings.parallel && engine == symbolic::Engine::kBitset) {
    engine = symbolic::Engine::kParallelBitset;
  }
  symbolic::SymbolicResult sym =
      symbolic::static_symbolic_factorization(a2, engine, team);
  an.timings.symbolic = lap(last);
  graph::Forest ef = graph::lu_eforest(sym.abar);

  // (3) Postorder the eforest and permute symmetrically (Theorem 3 makes the
  // permuted Abar its own static symbolic factorization, so no recompute).
  Permutation p2(an.n);
  if (opt.postorder) {
    p2 = graph::postorder_permutation(ef);
    sym.abar = graph::apply_symmetric_permutation(sym.abar, p2);
    ef = ef.relabeled(p2);
  }
  an.row_perm = sym_order ? Permutation::compose(Permutation::compose(q1, *p1), p2)
                    : Permutation::compose(*p1, p2);
  an.col_perm = Permutation::compose(q1, p2);
  an.symbolic = std::move(sym);
  an.eforest = std::move(ef);

  if (opt.postorder) {
    std::vector<int> sz = an.eforest.subtree_sizes();
    for (int r : an.eforest.roots()) an.diag_block_sizes.push_back(sz[r]);
  } else {
    // Without postordering the block-triangular reading does not apply;
    // report tree sizes all the same (root order).
    std::vector<int> sz = an.eforest.subtree_sizes();
    for (int r : an.eforest.roots()) an.diag_block_sizes.push_back(sz[r]);
  }
  an.timings.eforest_postorder = lap(last);
  return pre;
}

Analysis analyze_suffix(AnalysisPrefix pre) {
  Analysis an = std::move(pre.an);
  rt::Team& team = *pre.team;
  const Options& opt = an.options;
  auto& last = pre.last;

  // (4) L/U supernode partitioning and amalgamation (forest-parallel: one
  // greedy scan per root-terminated segment).
  an.exact_partition = symbolic::find_supernodes(an.symbolic.abar, team);
  an.partition =
      opt.amalgamate
          ? symbolic::amalgamate(an.symbolic.abar, an.eforest,
                                 an.exact_partition, opt.amalgamation, team)
          : an.exact_partition;
  an.timings.supernodes = lap(last);

  // (5) Block structure with block-level closure, block eforest; then the
  // structure-aware blocking plan over the finished blocks (one density
  // sweep of Abar, folded into this phase's timing -- it is block
  // bookkeeping, not a new pipeline stage).
  an.blocks = symbolic::build_block_structure(an.symbolic.abar, an.partition,
                                              /*apply_closure=*/true, team);
  an.block_plan = symbolic::build_block_plan(an.symbolic.abar, an.blocks, team);
  an.timings.blocks = lap(last);

  // (6) Task dependence graph + cost model; the block-granularity graph
  // too when the 2-D numeric layout will run on this analysis.
  an.graph = taskgraph::build_task_graph(an.blocks, opt.task_graph,
                                         taskgraph::Granularity::kColumn, team);
  an.costs = taskgraph::compute_task_costs(an.blocks, an.graph.tasks, team);
  if (opt.layout == Layout::k2D) {
    an.block_graph = taskgraph::build_task_graph(
        an.blocks, opt.task_graph, taskgraph::Granularity::kBlock, team);
  }
  an.timings.taskgraph = lap(last);
  an.timings.total = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - pre.t_start)
                         .count();
  return an;
}

Analysis analyze_pattern(const Pattern& a, const Options& opt) {
  return analyze_suffix(analyze_prefix(a, opt));
}

Analysis analyze(const CscMatrix& a, const Options& opt) {
  if (!opt.scale_and_permute) {
    return analyze_pattern(a.pattern(), opt);
  }
  // MC64 preprocessing: maximize the diagonal product, scale to an
  // I-matrix, then run the regular pipeline on the preprocessed matrix.
  auto wm = graph::max_product_transversal(a);
  if (!wm) {
    throw std::invalid_argument("analyze: matrix is structurally singular");
  }
  // Row-permuted pattern (values are irrelevant to the pattern pipeline;
  // the big-diagonal property makes the inner transversal the identity).
  Pattern pre = a.pattern().permuted(wm->row_perm, Permutation(a.cols()));
  Analysis an = analyze_pattern(pre, opt);
  an.row_perm = Permutation::compose(wm->row_perm, an.row_perm);
  an.row_scale = std::move(wm->row_scale);
  an.col_scale = std::move(wm->col_scale);
  return an;
}

}  // namespace plu
