#include "core/refine.h"

namespace plu {

RefineResult refined_solve(const Factorization& f, const CscMatrix& a,
                           const std::vector<double>& b,
                           const RefineOptions& opt) {
  RefineResult res;
  res.x = f.solve(b);
  res.residual_history.push_back(relative_residual(a, res.x, b));
  std::vector<double> r(b.size());
  for (int it = 0; it < opt.max_iterations; ++it) {
    if (res.residual_history.back() <= opt.target_residual) {
      res.converged = true;
      break;
    }
    // r = b - A x
    a.matvec(res.x, r);
    for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
    std::vector<double> d = f.solve(r);
    for (std::size_t i = 0; i < r.size(); ++i) res.x[i] += d[i];
    ++res.iterations;
    res.residual_history.push_back(relative_residual(a, res.x, b));
  }
  if (res.residual_history.back() <= opt.target_residual) res.converged = true;
  res.backward_error = componentwise_backward_error(a, res.x, b);
  return res;
}

}  // namespace plu
