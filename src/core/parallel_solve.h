// Parallel triangular solves (step 4 of the paper's scheme).
//
// The sequential solve interleaves each panel's pivot interchanges with its
// elimination, which would serialize any two panels sharing a row block.
// For the parallel solver the accumulated pivot permutation is folded into
// one up-front row permutation instead (the eager-getrf form L U = Phat
// Apre), turning the forward pass into a pure lower solve whose
// cross-panel interactions are ADDITIVE gemv contributions:
//
//   forward task k:  y_K := L_kk^{-1} y_K, then  y[rows(t)] -= L_tk y_K
//   backward task k: y_K := U_kk^{-1} y_K, then  y[rows(i)] -= U_ik y_K
//
// Dependences are consumer edges only -- task t waits for every panel that
// contributes to t's own rows -- and concurrent additive contributions into
// a shared row block are serialized by per-block mutexes, so the result
// equals the sequential solve up to floating-point summation order (the
// DAG is as wide as the elimination forest, unlike the bitwise-exact
// chained variant this replaces, which was measured to be ~99% serial).
//
// Because the stored L lives at deferred-pivot positions, each panel's
// below-diagonal rows are mapped once, at construction, to their eager
// positions (the suffix composition of later panels' interchanges).
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "core/numeric.h"

namespace plu {

class ParallelSolver {
 public:
  /// Precomputes the eager row maps and both solve DAGs.  The factorization
  /// must outlive the solver.
  explicit ParallelSolver(const Factorization& f);

  /// Solves A x = b on `threads` threads.  Agrees with f.solve(b) up to
  /// roundoff (contribution order is nondeterministic under threads > 1).
  std::vector<double> solve(const std::vector<double>& b, int threads) const;

  /// DAG accessors for tests and benches (tasks are block-column indices).
  const std::vector<std::vector<int>>& forward_succ() const { return fwd_succ_; }
  const std::vector<int>& forward_indegree() const { return fwd_indeg_; }
  const std::vector<std::vector<int>>& backward_succ() const { return bwd_succ_; }
  const std::vector<int>& backward_indegree() const { return bwd_indeg_; }

  /// Per-task flop estimates (for simulating solve-phase scaling).
  std::vector<double> forward_flops() const;
  std::vector<double> backward_flops() const;

 private:
  const Factorization* f_;
  /// pre_perm_[r] = index into the (row_perm-gathered) rhs for eager
  /// position r; folds Phat into the initial gather.
  std::vector<int> pre_perm_;
  /// Per panel: eager global positions of its below-diagonal packed rows.
  std::vector<std::vector<int>> eager_rows_;
  std::vector<std::vector<int>> fwd_succ_;
  std::vector<int> fwd_indeg_;
  std::vector<std::vector<int>> bwd_succ_;
  std::vector<int> bwd_indeg_;
  mutable std::unique_ptr<std::vector<std::mutex>> row_locks_;
};

}  // namespace plu
