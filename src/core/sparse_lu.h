// Public facade of the library: analyze / factorize / solve in one object.
//
//   plu::SparseLU lu;
//   lu.analyze(A);               // symbolic pipeline (reusable across values)
//   lu.factorize(A);             // numeric factorization
//   std::vector<double> x = lu.solve(b);
//
// Options select the paper's techniques: eforest postordering on/off,
// S* vs eforest task graph, ordering, amalgamation, execution mode.
//
// Thread safety: one SparseLU instance is NOT safe for concurrent mutation
// (analyze/factorize are plain member functions over unguarded state), but
// DISTINCT instances are fully independent -- including when they share one
// rt::SharedRuntime via NumericOptions::shared_runtime, the intended way to
// run many factorizations concurrently on a single worker pool (the
// solver-service path, service/solver_service.h).  Per-instance state such
// as the analysis-reuse guard and analyze_count() stays exact under pool
// sharing.  const methods (the solve family) are safe to call concurrently
// on one instance once factorize() returned, except the first
// solve_parallel call, which lazily builds the solve DAGs.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/analysis.h"
#include "core/numeric.h"
#include "core/refine.h"

namespace plu {

class SparseLU {
 public:
  SparseLU();
  explicit SparseLU(const Options& opt);
  ~SparseLU();  // out of line: ParallelSolver is incomplete here
  SparseLU(SparseLU&&) noexcept;
  SparseLU& operator=(SparseLU&&) noexcept;

  const Options& options() const { return options_; }
  Options& options() { return options_; }
  NumericOptions& numeric_options() { return numeric_options_; }

  /// Runs the symbolic pipeline.  Invalidates any previous factorization.
  void analyze(const CscMatrix& a);

  /// Numeric factorization; runs analyze() first when none is cached.
  void factorize(const CscMatrix& a);

  /// One call doing both.
  void compute(const CscMatrix& a) { factorize(a); }

  /// One-shot factor + solve of a x = b.  When NumericOptions::pipeline is
  /// on, supported (core/driver.h pipeline_supported) and no analysis is
  /// cached for a's pattern, the whole of analysis, factorization and the
  /// forward solve runs as ONE phase-spanning task graph with forward-solve
  /// tasks released as panels finalize; otherwise exactly factorize(a)
  /// followed by solve(b).  Results are bit-identical either way.
  std::vector<double> factorize_and_solve(const CscMatrix& a,
                                          const std::vector<double>& b);

  bool analyzed() const { return analysis_ != nullptr; }
  bool factorized() const { return factorization_ != nullptr; }

  /// Number of times the symbolic pipeline actually ran on this object --
  /// the observable for the analysis-reuse guard (factorize() on an
  /// unchanged pattern must not bump it).
  long analyze_count() const { return analyze_count_; }

  /// Breakdown status of the last factorize() (core/status.h); kOk when no
  /// factorization ran yet.  Check factor_usable(factor_status()) before
  /// solving -- the solve paths throw std::runtime_error otherwise.
  FactorStatus factor_status() const {
    return factorization_ ? factorization_->status() : FactorStatus::kOk;
  }

  const Analysis& analysis() const;
  const Factorization& factorization() const;

  /// Solves A x = b; requires factorized().
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Solves A^T x = b; requires factorized().
  std::vector<double> solve_transpose(const std::vector<double>& b) const;

  /// Parallel triangular solves on `threads` threads (agrees with solve()
  /// up to roundoff).  Builds the solve DAGs on first use.
  std::vector<double> solve_parallel(const std::vector<double>& b,
                                     int threads) const;

  /// Solve with iterative refinement against the matrix last factorized.
  RefineResult solve_refined(const std::vector<double>& b,
                             const RefineOptions& opt = {}) const;

  /// Convenience one-shot: factor a and solve a x = b.
  static std::vector<double> solve_system(const CscMatrix& a,
                                          const std::vector<double>& b,
                                          const Options& opt = {},
                                          const NumericOptions& nopt = {});

 private:
  /// Full pattern-reuse guard (dims + fingerprint + confirming compare).
  bool pattern_matches(const CscMatrix& a) const;
  /// Runs the phase-spanning pipeline (core/pipeline.h) and installs its
  /// results; returns x when b was given (solving phased if the overlapped
  /// solve drained).
  std::vector<double> run_pipeline(const CscMatrix& a,
                                   const std::vector<double>* b);

  Options options_;
  NumericOptions numeric_options_;
  Pattern analyzed_pattern_;  // guards analysis reuse across factorize calls
  /// Fingerprint of analyzed_pattern_: the cheap first tier of the reuse
  /// guard (dims + hash reject mismatches; the full compare only confirms
  /// hash matches).
  std::uint64_t analyzed_fingerprint_ = 0;
  long analyze_count_ = 0;
  std::unique_ptr<Analysis> analysis_;
  std::unique_ptr<Factorization> factorization_;
  mutable std::unique_ptr<class ParallelSolver> parallel_solver_;
  std::optional<CscMatrix> last_matrix_;  // kept for refinement
};

}  // namespace plu
