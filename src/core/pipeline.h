// The phase-spanning analyze->factor->solve pipeline (DESIGN.md section 13).
//
// The phased path runs three barriers: analyze() finishes every symbolic
// artifact before the first numeric flop, factorize() finishes every panel
// before the first solve step.  The pipeline replaces the barriers with ONE
// dynamic task graph on the shared multi-DAG runtime
// (runtime/shared_runtime.h):
//
//   * the symbolic suffix (supernodes -> amalgamation -> block layout ->
//     compact storage) is decomposed into per-UNIT tasks, a unit being a
//     run of consecutive eforest trees (>= NumericOptions::
//     pipeline_min_unit_cols columns).  Postordering makes every unit a
//     contiguous column range and keeps L tree-local, so supernode
//     boundaries, amalgamation scans and block closure decompose exactly
//     along unit boundaries;
//   * when a unit's structure is final, its materialization task appends
//     that unit's numeric Factor/Update (or 2-D FactorDiag/FactorL/
//     ComputeU/UpdateBlock) tasks -- and, when a right-hand side was given,
//     its forward-solve tasks -- into the RUNNING graph via
//     SharedRuntime::append_batch;
//   * the remaining global analysis artifacts (block pattern, block
//     eforest, task graph, cost model) are built by a single Finish task
//     that runs CONCURRENTLY with the numeric tasks -- the overlap the
//     barrier used to forbid.
//
// Bit-identity.  The numeric batches chain every writer of a block column
// (or, 2-D, of a block) in ascending source order -- exactly the order the
// sequential right-looking stage loop applies them -- so the factors, pivot
// sequences, status folds and solve vectors are bitwise identical to the
// phased ExecutionMode::kSequential reference, at any thread count.
//
// Cancellation.  Numeric breakdown and external cancellation both drain
// cooperatively through flags the task bodies poll; the ANALYSIS tasks
// never drain, so the Analysis is always complete and reusable (cacheable)
// even when the numeric phase was cancelled -- mirroring the phased path,
// where analyze() has no cancellation either.
#pragma once

#include <memory>
#include <vector>

#include "core/analysis.h"
#include "core/numeric.h"

namespace plu {

class PipelineDriver {
 public:
  struct Result {
    std::unique_ptr<Analysis> analysis;
    std::unique_ptr<Factorization> factorization;
    /// Solution of a x = b when `b` was given and the factors are usable
    /// (empty otherwise).  Bitwise equal to factorization->solve(*b).
    std::vector<double> x;
    bool solve_done = false;
  };

  /// Runs symbolic analysis, numeric factorization and (when b != nullptr)
  /// the solve of a x = b as one phase-spanning dynamic task graph.  The
  /// caller must have checked pipeline_supported(aopt, nopt); runs on
  /// nopt.shared_runtime when set, else on a transient pool of
  /// nopt.threads workers.  Throws like analyze() on structural errors.
  static Result run(const CscMatrix& a, const Options& aopt,
                    const NumericOptions& nopt,
                    const std::vector<double>* b = nullptr);
};

}  // namespace plu
