#include "core/block_storage.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "blas/level1.h"

namespace plu {

BlockMatrix::BlockMatrix(const symbolic::BlockStructure& bs) : bs_(&bs) {
  const int nb = bs.num_blocks();
  data_.resize(nb);
  blocks_.resize(nb);
  offsets_.resize(nb);
  diag_pos_.assign(nb, -1);
  for (int j = 0; j < nb; ++j) {
    blocks_[j].assign(bs.bpattern.col_begin(j), bs.bpattern.col_end(j));
    offsets_[j].resize(blocks_[j].size() + 1);
    int off = 0;
    for (std::size_t t = 0; t < blocks_[j].size(); ++t) {
      offsets_[j][t] = off;
      if (blocks_[j][t] == j) diag_pos_[j] = static_cast<int>(t);
      off += bs.part.width(blocks_[j][t]);
    }
    offsets_[j].back() = off;
    if (diag_pos_[j] == -1) {
      throw std::invalid_argument("BlockMatrix: diagonal block missing");
    }
    data_[j].assign(static_cast<std::size_t>(off) * bs.part.width(j), 0.0);
  }
}

BlockMatrix::BlockMatrix(const symbolic::BlockStructure& bs, DeferredColumns)
    : bs_(&bs) {
  const int nb = bs.part.count();
  data_.resize(nb);
  blocks_.resize(nb);
  offsets_.resize(nb);
  diag_pos_.assign(nb, -1);
}

void BlockMatrix::init_column(int j, const std::vector<int>& row_blocks) {
  const symbolic::BlockStructure& bs = *bs_;
  blocks_[j] = row_blocks;
  offsets_[j].resize(blocks_[j].size() + 1);
  int off = 0;
  for (std::size_t t = 0; t < blocks_[j].size(); ++t) {
    offsets_[j][t] = off;
    if (blocks_[j][t] == j) diag_pos_[j] = static_cast<int>(t);
    off += bs.part.width(blocks_[j][t]);
  }
  offsets_[j].back() = off;
  if (diag_pos_[j] == -1) {
    throw std::invalid_argument("BlockMatrix: diagonal block missing");
  }
  data_[j].assign(static_cast<std::size_t>(off) * bs.part.width(j), 0.0);
}

void BlockMatrix::load_column(int j, const CscMatrix& a) {
  assert(a.rows() == bs_->part.num_cols() && a.cols() == bs_->part.num_cols());
  const int height = column_height(j);
  for (int col = bs_->part.first(j); col < bs_->part.end(j); ++col) {
    const int jc = col - bs_->part.first(j);
    double* buf = data_[j].data() + static_cast<std::size_t>(jc) * height;
    for (int k = a.col_begin(col); k < a.col_end(col); ++k) {
      const int row = a.row_index(k);
      const int bi = bs_->part.supernode_of(row);
      const int off = block_offset(bi, j);
      if (off < 0) {
        throw std::invalid_argument("BlockMatrix::load: entry outside pattern");
      }
      buf[off + (row - bs_->part.first(bi))] = a.value(k);
    }
  }
}

void BlockMatrix::load(const CscMatrix& a) {
  assert(a.rows() == bs_->part.num_cols() && a.cols() == bs_->part.num_cols());
  set_zero();
  for (int col = 0; col < a.cols(); ++col) {
    const int j = bs_->part.supernode_of(col);
    const int jc = col - bs_->part.first(j);  // column within the block column
    const int height = column_height(j);
    double* buf = data_[j].data() + static_cast<std::size_t>(jc) * height;
    for (int k = a.col_begin(col); k < a.col_end(col); ++k) {
      const int row = a.row_index(k);
      const int bi = bs_->part.supernode_of(row);
      const int off = block_offset(bi, j);
      if (off < 0) {
        throw std::invalid_argument("BlockMatrix::load: entry outside pattern");
      }
      buf[off + (row - bs_->part.first(bi))] = a.value(k);
    }
  }
}

void BlockMatrix::set_zero() {
  for (auto& d : data_) std::fill(d.begin(), d.end(), 0.0);
}

int BlockMatrix::block_pos(int i, int j) const {
  const auto& bl = blocks_[j];
  auto it = std::lower_bound(bl.begin(), bl.end(), i);
  if (it == bl.end() || *it != i) return -1;
  return static_cast<int>(it - bl.begin());
}

int BlockMatrix::block_offset(int i, int j) const {
  int p = block_pos(i, j);
  return p < 0 ? -1 : offsets_[j][p];
}

blas::MatrixView BlockMatrix::block(int i, int j) {
  int off = block_offset(i, j);
  assert(off >= 0);
  const int height = column_height(j);
  return {data_[j].data() + off, bs_->part.width(i), bs_->part.width(j), height};
}

blas::ConstMatrixView BlockMatrix::block(int i, int j) const {
  int off = block_offset(i, j);
  assert(off >= 0);
  const int height = column_height(j);
  return {data_[j].data() + off, bs_->part.width(i), bs_->part.width(j), height};
}

blas::MatrixView BlockMatrix::panel(int k) {
  const int height = column_height(k);
  const int off = offsets_[k][diag_pos_[k]];
  return {data_[k].data() + off, height - off, bs_->part.width(k), height};
}

blas::ConstMatrixView BlockMatrix::panel(int k) const {
  const int height = column_height(k);
  const int off = offsets_[k][diag_pos_[k]];
  return {data_[k].data() + off, height - off, bs_->part.width(k), height};
}

int BlockMatrix::panel_height(int k) const {
  return column_height(k) - offsets_[k][diag_pos_[k]];
}

int BlockMatrix::column_height(int j) const { return offsets_[j].back(); }

std::vector<int> BlockMatrix::panel_rows_in_column(int k, int j) const {
  std::vector<int> rows;
  rows.reserve(panel_height(k));
  for (std::size_t t = diag_pos_[k]; t < blocks_[k].size(); ++t) {
    const int bi = blocks_[k][t];
    const int off = block_offset(bi, j);
    if (off < 0) {
      throw std::logic_error(
          "BlockMatrix::panel_rows_in_column: closure violation (block "
          "missing in target column)");
    }
    for (int r = 0; r < bs_->part.width(bi); ++r) rows.push_back(off + r);
  }
  return rows;
}

void BlockMatrix::swap_rows(int j, int r1, int r2) {
  if (r1 == r2) return;
  const int height = column_height(j);
  blas::swap(bs_->part.width(j), data_[j].data() + r1, height,
             data_[j].data() + r2, height);
}

blas::MatrixView BlockMatrix::column(int j) {
  const int height = column_height(j);
  return {data_[j].data(), height, bs_->part.width(j), height};
}

blas::ConstMatrixView BlockMatrix::column(int j) const {
  const int height = column_height(j);
  return {data_[j].data(), height, bs_->part.width(j), height};
}

blas::DenseMatrix BlockMatrix::to_dense() const {
  const int n = bs_->part.num_cols();
  blas::DenseMatrix d(n, n);
  for (int j = 0; j < num_block_columns(); ++j) {
    for (std::size_t t = 0; t < blocks_[j].size(); ++t) {
      const int bi = blocks_[j][t];
      blas::ConstMatrixView b = block(bi, j);
      for (int c = 0; c < b.cols; ++c) {
        for (int r = 0; r < b.rows; ++r) {
          d(bs_->part.first(bi) + r, bs_->part.first(j) + c) = b(r, c);
        }
      }
    }
  }
  return d;
}

std::size_t BlockMatrix::stored_doubles() const {
  std::size_t total = 0;
  for (const auto& d : data_) total += d.size();
  return total;
}

}  // namespace plu
