#include "core/block_storage.h"

#include <algorithm>
#include <cassert>
#include <new>
#include <stdexcept>
#include <thread>

#include "blas/level1.h"

namespace plu {

namespace {

constexpr std::size_t kAlignBytes = 64;
constexpr std::size_t kAlignDoubles = kAlignBytes / sizeof(double);
// Deferred-mode segment granularity: 1 MiB of doubles per slab keeps the
// allocation count low without over-reserving for small pipelines.
constexpr std::size_t kSegmentDoubles = std::size_t(1) << 17;

std::size_t align_up(std::size_t doubles) {
  return (doubles + kAlignDoubles - 1) & ~(kAlignDoubles - 1);
}

}  // namespace

const char* to_string(StorageMode m) {
  return m == StorageMode::kVectors ? "vectors" : "arena";
}

void BlockMatrix::AlignedDelete::operator()(double* p) const {
  ::operator delete[](p, std::align_val_t(kAlignBytes));
}

BlockMatrix::Slab BlockMatrix::allocate_slab(std::size_t doubles) {
  return Slab(static_cast<double*>(::operator new[](
      doubles * sizeof(double), std::align_val_t(kAlignBytes))));
}

std::size_t BlockMatrix::describe_column(int j,
                                         const std::vector<int>& row_blocks) {
  const symbolic::BlockStructure& bs = *bs_;
  blocks_[j] = row_blocks;
  offsets_[j].resize(blocks_[j].size() + 1);
  int off = 0;
  for (std::size_t t = 0; t < blocks_[j].size(); ++t) {
    offsets_[j][t] = off;
    if (blocks_[j][t] == j) diag_pos_[j] = static_cast<int>(t);
    off += bs.part.width(blocks_[j][t]);
  }
  offsets_[j].back() = off;
  if (diag_pos_[j] == -1) {
    throw std::invalid_argument("BlockMatrix: diagonal block missing");
  }
  return static_cast<std::size_t>(off) * bs.part.width(j);
}

BlockMatrix::BlockMatrix(const symbolic::BlockStructure& bs, StorageMode mode,
                         int init_threads)
    : bs_(&bs), mode_(mode) {
  const int nb = bs.num_blocks();
  blocks_.resize(nb);
  offsets_.resize(nb);
  diag_pos_.assign(nb, -1);
  col_ptr_.assign(nb, nullptr);
  col_doubles_.assign(nb, 0);

  if (mode_ == StorageMode::kVectors) {
    data_.resize(nb);
    for (int j = 0; j < nb; ++j) {
      const std::size_t len = describe_column(
          j, {bs.bpattern.col_begin(j), bs.bpattern.col_end(j)});
      data_[j].assign(len, 0.0);
      col_ptr_[j] = data_[j].data();
      col_doubles_[j] = len;
    }
    return;
  }

  // One sizing pass over the symbolic structure, then one aligned slab with
  // every column base on a 64-byte boundary.
  std::vector<std::size_t> base(nb);
  std::size_t total = 0;
  for (int j = 0; j < nb; ++j) {
    const std::size_t len = describe_column(
        j, {bs.bpattern.col_begin(j), bs.bpattern.col_end(j)});
    base[j] = total;
    col_doubles_[j] = len;
    total += align_up(len);
  }
  arena_doubles_ = total;
  arena_ = allocate_slab(std::max<std::size_t>(total, 1));
  for (int j = 0; j < nb; ++j) col_ptr_[j] = arena_.get() + base[j];

  // First-touch initialization: each worker zeroes one contiguous range of
  // columns (padding included), so the pages it faults in are the pages its
  // column range lives on.  Below ~8 MiB the thread spawn costs more than
  // the placement is worth.
  const std::size_t min_parallel = std::size_t(1) << 20;
  int workers = std::min(init_threads, nb);
  if (workers <= 1 || total < min_parallel) {
    std::fill(arena_.get(), arena_.get() + total, 0.0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const std::size_t chunk = (total + workers - 1) / workers;
  int begin_col = 0;
  for (int w = 0; w < workers && begin_col < nb; ++w) {
    // Advance to the first column past this worker's share of doubles.
    int end_col = begin_col;
    const std::size_t limit = std::min(total, (w + 1) * chunk);
    while (end_col < nb && base[end_col] < limit) ++end_col;
    if (w == workers - 1) end_col = nb;
    const std::size_t lo = base[begin_col];
    const std::size_t hi = end_col < nb ? base[end_col] : total;
    threads.emplace_back([p = arena_.get(), lo, hi] {
      std::fill(p + lo, p + hi, 0.0);
    });
    begin_col = end_col;
  }
  for (std::thread& t : threads) t.join();
}

BlockMatrix::BlockMatrix(const symbolic::BlockStructure& bs, DeferredColumns,
                         StorageMode mode)
    : bs_(&bs), mode_(mode), deferred_(true) {
  const int nb = bs.part.count();
  blocks_.resize(nb);
  offsets_.resize(nb);
  diag_pos_.assign(nb, -1);
  col_ptr_.assign(nb, nullptr);
  col_doubles_.assign(nb, 0);
  if (mode_ == StorageMode::kVectors) data_.resize(nb);
}

void BlockMatrix::place_deferred_column(int j, std::size_t doubles) {
  if (mode_ == StorageMode::kVectors) {
    data_[j].assign(doubles, 0.0);
    col_ptr_[j] = data_[j].data();
    return;
  }
  const std::size_t need = align_up(doubles);
  if (segments_.empty() || segment_used_ + need > segment_doubles_.back()) {
    const std::size_t cap = std::max(need, kSegmentDoubles);
    segments_.push_back(allocate_slab(cap));
    segment_doubles_.push_back(cap);
    segment_used_ = 0;
  }
  double* p = segments_.back().get() + segment_used_;
  segment_used_ += need;
  std::fill(p, p + doubles, 0.0);
  col_ptr_[j] = p;
}

void BlockMatrix::init_column(int j, const std::vector<int>& row_blocks) {
  const std::size_t len = describe_column(j, row_blocks);
  col_doubles_[j] = len;
  place_deferred_column(j, len);
}

void BlockMatrix::load_column(int j, const CscMatrix& a) {
  assert(a.rows() == bs_->part.num_cols() && a.cols() == bs_->part.num_cols());
  const int height = column_height(j);
  for (int col = bs_->part.first(j); col < bs_->part.end(j); ++col) {
    const int jc = col - bs_->part.first(j);
    double* buf = col_ptr_[j] + static_cast<std::size_t>(jc) * height;
    for (int k = a.col_begin(col); k < a.col_end(col); ++k) {
      const int row = a.row_index(k);
      const int bi = bs_->part.supernode_of(row);
      const int off = block_offset(bi, j);
      if (off < 0) {
        throw std::invalid_argument("BlockMatrix::load: entry outside pattern");
      }
      buf[off + (row - bs_->part.first(bi))] = a.value(k);
    }
  }
}

void BlockMatrix::load(const CscMatrix& a) {
  assert(a.rows() == bs_->part.num_cols() && a.cols() == bs_->part.num_cols());
  set_zero();
  for (int col = 0; col < a.cols(); ++col) {
    const int j = bs_->part.supernode_of(col);
    const int jc = col - bs_->part.first(j);  // column within the block column
    const int height = column_height(j);
    double* buf = col_ptr_[j] + static_cast<std::size_t>(jc) * height;
    for (int k = a.col_begin(col); k < a.col_end(col); ++k) {
      const int row = a.row_index(k);
      const int bi = bs_->part.supernode_of(row);
      const int off = block_offset(bi, j);
      if (off < 0) {
        throw std::invalid_argument("BlockMatrix::load: entry outside pattern");
      }
      buf[off + (row - bs_->part.first(bi))] = a.value(k);
    }
  }
}

void BlockMatrix::set_zero() {
  if (mode_ == StorageMode::kArena && !deferred_) {
    std::fill(arena_.get(), arena_.get() + arena_doubles_, 0.0);
    return;
  }
  for (std::size_t j = 0; j < col_ptr_.size(); ++j) {
    if (col_ptr_[j] != nullptr) {
      std::fill(col_ptr_[j], col_ptr_[j] + col_doubles_[j], 0.0);
    }
  }
}

std::size_t BlockMatrix::storage_bytes() const {
  if (mode_ == StorageMode::kVectors || (deferred_ && segments_.empty())) {
    return stored_doubles() * sizeof(double);
  }
  if (deferred_) {
    std::size_t total = 0;
    for (std::size_t cap : segment_doubles_) total += cap;
    return total * sizeof(double);
  }
  return arena_doubles_ * sizeof(double);
}

int BlockMatrix::block_pos(int i, int j) const {
  const auto& bl = blocks_[j];
  auto it = std::lower_bound(bl.begin(), bl.end(), i);
  if (it == bl.end() || *it != i) return -1;
  return static_cast<int>(it - bl.begin());
}

int BlockMatrix::block_offset(int i, int j) const {
  int p = block_pos(i, j);
  return p < 0 ? -1 : offsets_[j][p];
}

blas::MatrixView BlockMatrix::block(int i, int j) {
  int off = block_offset(i, j);
  assert(off >= 0);
  const int height = column_height(j);
  return {col_ptr_[j] + off, bs_->part.width(i), bs_->part.width(j), height};
}

blas::ConstMatrixView BlockMatrix::block(int i, int j) const {
  int off = block_offset(i, j);
  assert(off >= 0);
  const int height = column_height(j);
  return {col_ptr_[j] + off, bs_->part.width(i), bs_->part.width(j), height};
}

blas::MatrixView BlockMatrix::panel(int k) {
  const int height = column_height(k);
  const int off = offsets_[k][diag_pos_[k]];
  return {col_ptr_[k] + off, height - off, bs_->part.width(k), height};
}

blas::ConstMatrixView BlockMatrix::panel(int k) const {
  const int height = column_height(k);
  const int off = offsets_[k][diag_pos_[k]];
  return {col_ptr_[k] + off, height - off, bs_->part.width(k), height};
}

int BlockMatrix::panel_height(int k) const {
  return column_height(k) - offsets_[k][diag_pos_[k]];
}

int BlockMatrix::column_height(int j) const { return offsets_[j].back(); }

std::vector<int> BlockMatrix::panel_rows_in_column(int k, int j) const {
  std::vector<int> rows;
  rows.reserve(panel_height(k));
  for (std::size_t t = diag_pos_[k]; t < blocks_[k].size(); ++t) {
    const int bi = blocks_[k][t];
    const int off = block_offset(bi, j);
    if (off < 0) {
      throw std::logic_error(
          "BlockMatrix::panel_rows_in_column: closure violation (block "
          "missing in target column)");
    }
    for (int r = 0; r < bs_->part.width(bi); ++r) rows.push_back(off + r);
  }
  return rows;
}

void BlockMatrix::swap_rows(int j, int r1, int r2) {
  if (r1 == r2) return;
  const int height = column_height(j);
  blas::swap(bs_->part.width(j), col_ptr_[j] + r1, height, col_ptr_[j] + r2,
             height);
}

blas::MatrixView BlockMatrix::column(int j) {
  const int height = column_height(j);
  return {col_ptr_[j], height, bs_->part.width(j), height};
}

blas::ConstMatrixView BlockMatrix::column(int j) const {
  const int height = column_height(j);
  return {col_ptr_[j], height, bs_->part.width(j), height};
}

blas::DenseMatrix BlockMatrix::to_dense() const {
  const int n = bs_->part.num_cols();
  blas::DenseMatrix d(n, n);
  for (int j = 0; j < num_block_columns(); ++j) {
    for (std::size_t t = 0; t < blocks_[j].size(); ++t) {
      const int bi = blocks_[j][t];
      blas::ConstMatrixView b = block(bi, j);
      for (int c = 0; c < b.cols; ++c) {
        for (int r = 0; r < b.rows; ++r) {
          d(bs_->part.first(bi) + r, bs_->part.first(j) + c) = b(r, c);
        }
      }
    }
  }
  return d;
}

std::size_t BlockMatrix::stored_doubles() const {
  std::size_t total = 0;
  for (std::size_t len : col_doubles_) total += len;
  return total;
}

}  // namespace plu
