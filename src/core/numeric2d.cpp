#include "core/numeric2d.h"

#include <atomic>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "blas/factor.h"
#include "blas/level2.h"
#include "blas/level3.h"
#include "runtime/dag_executor.h"

namespace plu {

Factorization2D::Factorization2D(const Analysis& analysis, const CscMatrix& a,
                                 const Numeric2DOptions& opt)
    : analysis_(&analysis), blocks_(analysis.blocks),
      graph_(taskgraph::build_task_graph_2d(analysis.blocks)) {
  if (a.rows() != analysis.n || a.cols() != analysis.n) {
    throw std::invalid_argument("Factorization2D: matrix/analysis size mismatch");
  }
  blocks_.load(analysis.permute_input(a));
  const int nb = analysis.blocks.num_blocks();
  diag_ipiv_.assign(nb, {});

  double matrix_scale = 0.0;
  for (int j = 0; j < nb; ++j) {
    matrix_scale = std::max(matrix_scale, blas::max_abs(blocks_.column(j)));
  }
  if (matrix_scale == 0.0) matrix_scale = 1.0;

  std::atomic<int> zero_pivots{0};
  std::mutex min_pivot_mu;
  double min_pivot = std::numeric_limits<double>::infinity();
  // One mutex per target block column serializes concurrent UpdateBlock
  // gemms into shared blocks (additive contributions commute; memory
  // writes must not interleave).
  std::vector<std::mutex> column_locks(nb);

  std::unique_ptr<rt::RaceChecker> checker;
  if (opt.check_races) {
    checker = std::make_unique<rt::RaceChecker>(graph_.size());
  }
  auto resource = [nb](int i, int j) { return static_cast<long>(i) * nb + j; };
  // Per-kind block footprints: FactorDiag writes (k,k); ComputeU reads
  // (k,k), writes (k,j); FactorL reads (k,k), writes (i,k); UpdateBlock
  // reads its L and U operands and accumulates into (i,j) under column j's
  // mutex (additive gemms commute, hence a locked write).
  auto record = [&](const taskgraph::Task2D& t, int id) {
    switch (t.kind) {
      case taskgraph::Task2DKind::kFactorDiag:
        checker->write(id, resource(t.k, t.k));
        break;
      case taskgraph::Task2DKind::kComputeU:
        checker->read(id, resource(t.k, t.k));
        checker->write(id, resource(t.k, t.j));
        break;
      case taskgraph::Task2DKind::kFactorL:
        checker->read(id, resource(t.k, t.k));
        checker->write(id, resource(t.i, t.k));
        break;
      case taskgraph::Task2DKind::kUpdateBlock:
        checker->read(id, resource(t.i, t.k));
        checker->read(id, resource(t.k, t.j));
        checker->locked_write(id, resource(t.i, t.j), t.j);
        break;
    }
  };

  auto run_task = [&](int id) {
    const taskgraph::Task2D& t = graph_.tasks[id];
    if (checker) record(t, id);
    switch (t.kind) {
      case taskgraph::Task2DKind::kFactorDiag: {
        blas::MatrixView d = blocks_.block(t.k, t.k);
        int info = blas::getf2(d, diag_ipiv_[t.k]);
        if (info != 0) zero_pivots.fetch_add(1, std::memory_order_relaxed);
        double local_min = std::numeric_limits<double>::infinity();
        for (int c = 0; c < d.cols; ++c) {
          double p = std::abs(d(c, c));
          if (p > 0.0) local_min = std::min(local_min, p);
        }
        std::lock_guard<std::mutex> lock(min_pivot_mu);
        min_pivot = std::min(min_pivot, local_min);
        break;
      }
      case taskgraph::Task2DKind::kComputeU: {
        blas::MatrixView ukj = blocks_.block(t.k, t.j);
        blas::laswp(ukj, diag_ipiv_[t.k], 0,
                    static_cast<int>(diag_ipiv_[t.k].size()));
        blas::ConstMatrixView lkk = blocks_.block(t.k, t.k);
        blas::trsm(blas::Side::Left, blas::UpLo::Lower, blas::Trans::No,
                   blas::Diag::Unit, 1.0, lkk, ukj);
        break;
      }
      case taskgraph::Task2DKind::kFactorL: {
        blas::MatrixView lik = blocks_.block(t.i, t.k);
        blas::ConstMatrixView ukk = blocks_.block(t.k, t.k);
        blas::trsm(blas::Side::Right, blas::UpLo::Upper, blas::Trans::No,
                   blas::Diag::NonUnit, 1.0, ukk, lik);
        break;
      }
      case taskgraph::Task2DKind::kUpdateBlock: {
        blas::ConstMatrixView lik = blocks_.block(t.i, t.k);
        blas::ConstMatrixView ukj = blocks_.block(t.k, t.j);
        std::lock_guard<std::mutex> lock(column_locks[t.j]);
        blas::MatrixView bij = blocks_.block(t.i, t.j);
        blas::gemm_dispatch(blas::Trans::No, blas::Trans::No, -1.0, lik, ukj,
                            1.0, bij);
        break;
      }
    }
  };

  if (opt.threads <= 1) {
    std::vector<int> order = taskgraph::topological_order(graph_);
    if (static_cast<int>(order.size()) != graph_.size()) {
      throw std::logic_error("Factorization2D: cyclic task graph");
    }
    for (int id : order) run_task(id);
  } else {
    rt::ExecutionReport rep =
        rt::execute_dag(graph_.succ, graph_.indegree, opt.threads, run_task);
    if (!rep.completed) {
      throw std::logic_error("Factorization2D: execution incomplete");
    }
  }
  zero_pivots_ = zero_pivots.load();
  min_pivot_ratio_ =
      std::isfinite(min_pivot) ? min_pivot / matrix_scale : 0.0;
  if (checker) races_ = checker->check(graph_.succ);
}

std::vector<double> Factorization2D::solve(const std::vector<double>& b) const {
  const Analysis& an = *analysis_;
  const symbolic::SupernodePartition& part = an.blocks.part;
  const int n = an.n;
  const int nb = an.blocks.num_blocks();
  if (static_cast<int>(b.size()) != n) {
    throw std::invalid_argument("Factorization2D::solve: rhs size mismatch");
  }

  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    int old = an.row_perm.old_of(i);
    y[i] = an.scaled() ? an.row_scale[old] * b[old] : b[old];
  }

  // Forward: column sweep.  Earlier blocks' solutions are subtracted via
  // the L blocks (stored at unpermuted rows); the local pivots apply to a
  // block's own rows just before its unit-lower solve.
  for (int k = 0; k < nb; ++k) {
    double* yk = y.data() + part.first(k);
    // Apply P_k then L_kk^{-1}.
    const std::vector<int>& piv = diag_ipiv_[k];
    for (std::size_t c = 0; c < piv.size(); ++c) {
      if (piv[c] != static_cast<int>(c)) std::swap(yk[c], yk[piv[c]]);
    }
    blas::ConstMatrixView lkk = blocks_.block(k, k);
    blas::trsv(blas::UpLo::Lower, blas::Trans::No, blas::Diag::Unit, lkk, yk, 1);
    // Push contributions down the L blocks of column k.
    for (int t : an.blocks.l_blocks(k)) {
      blas::ConstMatrixView ltk = blocks_.block(t, k);
      blas::gemv(blas::Trans::No, -1.0, ltk, yk, 1, 1.0,
                 y.data() + part.first(t), 1);
    }
  }

  // Backward: column-oriented upper solve.
  for (int k = nb - 1; k >= 0; --k) {
    double* yk = y.data() + part.first(k);
    blas::ConstMatrixView ukk = blocks_.block(k, k);
    blas::trsv(blas::UpLo::Upper, blas::Trans::No, blas::Diag::NonUnit, ukk, yk, 1);
    for (int i : blocks_.column_blocks(k)) {
      if (i >= k) break;
      blas::ConstMatrixView uik = blocks_.block(i, k);
      blas::gemv(blas::Trans::No, -1.0, uik, yk, 1, 1.0,
                 y.data() + part.first(i), 1);
    }
  }

  std::vector<double> x(n);
  for (int j = 0; j < n; ++j) {
    int old = an.col_perm.old_of(j);
    x[old] = an.scaled() ? an.col_scale[old] * y[j] : y[j];
  }
  return x;
}

}  // namespace plu
