// Compressed sparse row matrix.
//
// Used where row access dominates: the LU eforest needs the first
// off-diagonal entry of each row of U, and the transversal algorithm walks
// rows.  Conversions to/from CSC are lossless.
#pragma once

#include <vector>

#include "matrix/csc.h"

namespace plu {

class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(int rows, int cols, std::vector<int> row_ptr,
            std::vector<int> col_ind, std::vector<double> values);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int nnz() const { return row_ptr_.empty() ? 0 : row_ptr_.back(); }

  const std::vector<int>& row_ptr() const { return row_ptr_; }
  const std::vector<int>& col_ind() const { return col_ind_; }
  const std::vector<double>& values() const { return values_; }

  int row_begin(int i) const { return row_ptr_[i]; }
  int row_end(int i) const { return row_ptr_[i + 1]; }
  int col_index(int k) const { return col_ind_[k]; }
  double value(int k) const { return values_[k]; }

  static CsrMatrix from_csc(const CscMatrix& a);
  CscMatrix to_csc() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<int> row_ptr_;
  std::vector<int> col_ind_;
  std::vector<double> values_;
};

}  // namespace plu
