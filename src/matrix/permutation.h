// Permutation with O(1) lookup in both directions.
//
// Convention: `old_of(i)` is the ORIGINAL index of the entity placed at NEW
// position i (gather form).  Applying a row permutation P to a matrix A means
// (PA)(i, :) = A(old_of(i), :).
#pragma once

#include <vector>

namespace plu {

class Permutation {
 public:
  Permutation() = default;

  /// Identity permutation of size n.
  explicit Permutation(int n);

  /// Builds from gather form: old_of_new[i] = original index at new slot i.
  static Permutation from_old_positions(std::vector<int> old_of_new);

  /// Builds from scatter form: new_of_old[i] = new slot of original index i.
  static Permutation from_new_positions(std::vector<int> new_of_old);

  int size() const { return static_cast<int>(old_of_.size()); }
  bool empty() const { return old_of_.empty(); }

  int old_of(int new_index) const { return old_of_[new_index]; }
  int new_of(int old_index) const { return new_of_[old_index]; }

  const std::vector<int>& old_positions() const { return old_of_; }
  const std::vector<int>& new_positions() const { return new_of_; }

  Permutation inverse() const;

  /// Returns the permutation equivalent to applying `first`, then `second`.
  static Permutation compose(const Permutation& first, const Permutation& second);

  /// Reorders x so that result[i] = x[old_of(i)].
  template <typename T>
  std::vector<T> gather(const std::vector<T>& x) const {
    std::vector<T> out(x.size());
    for (int i = 0; i < size(); ++i) out[i] = x[old_of_[i]];
    return out;
  }

  /// Inverse of gather: result[old_of(i)] = x[i], so scatter(gather(x)) == x.
  template <typename T>
  std::vector<T> scatter(const std::vector<T>& x) const {
    std::vector<T> out(x.size());
    for (int i = 0; i < size(); ++i) out[old_of_[i]] = x[i];
    return out;
  }

  bool is_identity() const;

  /// True if old_of is a bijection on [0, n).
  static bool is_valid(const std::vector<int>& p);

 private:
  std::vector<int> old_of_;
  std::vector<int> new_of_;
};

}  // namespace plu
