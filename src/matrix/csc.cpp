#include "matrix/csc.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace plu {

// ---------------------------------------------------------------------------
// Pattern
// ---------------------------------------------------------------------------

bool Pattern::contains(int i, int j) const {
  const int* b = col_begin(j);
  const int* e = col_end(j);
  return std::binary_search(b, e, i);
}

Pattern Pattern::transpose() const {
  Pattern t(cols, rows);
  t.ptr.assign(rows + 1, 0);
  for (int e : idx) t.ptr[e + 1]++;
  for (int i = 0; i < rows; ++i) t.ptr[i + 1] += t.ptr[i];
  t.idx.resize(idx.size());
  std::vector<int> next(t.ptr.begin(), t.ptr.end() - 1);
  for (int j = 0; j < cols; ++j) {
    for (int k = ptr[j]; k < ptr[j + 1]; ++k) {
      t.idx[next[idx[k]]++] = j;
    }
  }
  // Transposing a column-sorted pattern yields sorted columns automatically.
  return t;
}

void Pattern::sort_columns() {
  for (int j = 0; j < cols; ++j) {
    std::sort(idx.begin() + ptr[j], idx.begin() + ptr[j + 1]);
  }
}

bool Pattern::columns_sorted() const {
  for (int j = 0; j < cols; ++j) {
    if (!std::is_sorted(col_begin(j), col_end(j))) return false;
  }
  return true;
}

bool Pattern::valid() const {
  if (static_cast<int>(ptr.size()) != cols + 1) return false;
  if (!ptr.empty() && ptr.front() != 0) return false;
  for (int j = 0; j < cols; ++j) {
    if (ptr[j] > ptr[j + 1]) return false;
    for (int k = ptr[j]; k < ptr[j + 1]; ++k) {
      if (idx[k] < 0 || idx[k] >= rows) return false;
      if (k > ptr[j] && idx[k] <= idx[k - 1]) return false;  // sorted, unique
    }
  }
  return ptr.empty() || ptr.back() == static_cast<int>(idx.size());
}

bool operator==(const Pattern& a, const Pattern& b) {
  return a.rows == b.rows && a.cols == b.cols && a.ptr == b.ptr && a.idx == b.idx;
}

Pattern Pattern::union_with(const Pattern& other) const {
  assert(rows == other.rows && cols == other.cols);
  Pattern u(rows, cols);
  u.idx.reserve(idx.size() + other.idx.size());
  for (int j = 0; j < cols; ++j) {
    std::set_union(col_begin(j), col_end(j), other.col_begin(j),
                   other.col_end(j), std::back_inserter(u.idx));
    u.ptr[j + 1] = static_cast<int>(u.idx.size());
  }
  return u;
}

bool Pattern::subset_of(const Pattern& other) const {
  if (rows != other.rows || cols != other.cols) return false;
  for (int j = 0; j < cols; ++j) {
    if (!std::includes(other.col_begin(j), other.col_end(j), col_begin(j),
                       col_end(j))) {
      return false;
    }
  }
  return true;
}

Pattern Pattern::permuted(const Permutation& rp, const Permutation& cp) const {
  assert(rp.size() == rows && cp.size() == cols);
  Pattern out(rows, cols);
  out.idx.reserve(idx.size());
  std::vector<int> buf;
  for (int j = 0; j < cols; ++j) {
    int oj = cp.old_of(j);
    buf.clear();
    for (int k = ptr[oj]; k < ptr[oj + 1]; ++k) {
      buf.push_back(rp.new_of(idx[k]));
    }
    std::sort(buf.begin(), buf.end());
    out.idx.insert(out.idx.end(), buf.begin(), buf.end());
    out.ptr[j + 1] = static_cast<int>(out.idx.size());
  }
  return out;
}

Pattern Pattern::ata(const Pattern& a) {
  // (A^T A)(i, j) != 0 iff columns i and j of A share a row.  Build row lists
  // once, then for each column j mark every column that shares any row.
  Pattern at = a.transpose();  // rows of A as columns
  Pattern out(a.cols, a.cols);
  std::vector<int> mark(a.cols, -1);
  std::vector<int> buf;
  for (int j = 0; j < a.cols; ++j) {
    buf.clear();
    for (int k = a.ptr[j]; k < a.ptr[j + 1]; ++k) {
      int r = a.idx[k];
      for (int t = at.ptr[r]; t < at.ptr[r + 1]; ++t) {
        int c = at.idx[t];
        if (mark[c] != j) {
          mark[c] = j;
          buf.push_back(c);
        }
      }
    }
    std::sort(buf.begin(), buf.end());
    out.idx.insert(out.idx.end(), buf.begin(), buf.end());
    out.ptr[j + 1] = static_cast<int>(out.idx.size());
  }
  return out;
}

Pattern Pattern::symmetrized(const Pattern& a) {
  assert(a.rows == a.cols);
  return a.union_with(a.transpose());
}

// ---------------------------------------------------------------------------
// CscMatrix
// ---------------------------------------------------------------------------

CscMatrix::CscMatrix(int rows, int cols, std::vector<int> col_ptr,
                     std::vector<int> row_ind, std::vector<double> values)
    : rows_(rows), cols_(cols), col_ptr_(std::move(col_ptr)),
      row_ind_(std::move(row_ind)), values_(std::move(values)) {
  if (!valid()) {
    throw std::invalid_argument("CscMatrix: inconsistent arrays");
  }
}

double CscMatrix::at(int i, int j) const {
  assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
  const int* b = row_ind_.data() + col_ptr_[j];
  const int* e = row_ind_.data() + col_ptr_[j + 1];
  const int* it = std::lower_bound(b, e, i);
  if (it != e && *it == i) return values_[it - row_ind_.data()];
  return 0.0;
}

Pattern CscMatrix::pattern() const {
  Pattern p(rows_, cols_);
  p.ptr = col_ptr_;
  p.idx = row_ind_;
  return p;
}

CscMatrix CscMatrix::transpose() const {
  std::vector<int> tptr(rows_ + 1, 0);
  for (int e : row_ind_) tptr[e + 1]++;
  for (int i = 0; i < rows_; ++i) tptr[i + 1] += tptr[i];
  std::vector<int> tind(row_ind_.size());
  std::vector<double> tval(values_.size());
  std::vector<int> next(tptr.begin(), tptr.end() - 1);
  for (int j = 0; j < cols_; ++j) {
    for (int k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k) {
      int pos = next[row_ind_[k]]++;
      tind[pos] = j;
      tval[pos] = values_[k];
    }
  }
  return CscMatrix(cols_, rows_, std::move(tptr), std::move(tind), std::move(tval));
}

CscMatrix CscMatrix::permuted(const Permutation& rp, const Permutation& cp) const {
  assert(rp.size() == rows_ && cp.size() == cols_);
  std::vector<int> ptr(cols_ + 1, 0);
  std::vector<int> ind;
  std::vector<double> val;
  ind.reserve(row_ind_.size());
  val.reserve(values_.size());
  std::vector<std::pair<int, double>> buf;
  for (int j = 0; j < cols_; ++j) {
    int oj = cp.old_of(j);
    buf.clear();
    for (int k = col_ptr_[oj]; k < col_ptr_[oj + 1]; ++k) {
      buf.emplace_back(rp.new_of(row_ind_[k]), values_[k]);
    }
    std::sort(buf.begin(), buf.end());
    for (auto& [r, v] : buf) {
      ind.push_back(r);
      val.push_back(v);
    }
    ptr[j + 1] = static_cast<int>(ind.size());
  }
  return CscMatrix(rows_, cols_, std::move(ptr), std::move(ind), std::move(val));
}

void CscMatrix::matvec(const std::vector<double>& x, std::vector<double>& y) const {
  assert(static_cast<int>(x.size()) == cols_);
  y.assign(rows_, 0.0);
  matvec_add(1.0, x, y);
}

void CscMatrix::matvec_add(double alpha, const std::vector<double>& x,
                           std::vector<double>& y) const {
  assert(static_cast<int>(x.size()) == cols_);
  assert(static_cast<int>(y.size()) == rows_);
  for (int j = 0; j < cols_; ++j) {
    double xj = alpha * x[j];
    if (xj == 0.0) continue;
    for (int k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k) {
      y[row_ind_[k]] += values_[k] * xj;
    }
  }
}

void CscMatrix::matvec_transpose(const std::vector<double>& x,
                                 std::vector<double>& y) const {
  assert(static_cast<int>(x.size()) == rows_);
  y.assign(cols_, 0.0);
  for (int j = 0; j < cols_; ++j) {
    double sum = 0.0;
    for (int k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k) {
      sum += values_[k] * x[row_ind_[k]];
    }
    y[j] = sum;
  }
}

double CscMatrix::norm1() const {
  double best = 0.0;
  for (int j = 0; j < cols_; ++j) {
    double s = 0.0;
    for (int k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k) s += std::abs(values_[k]);
    best = std::max(best, s);
  }
  return best;
}

double CscMatrix::norm_inf() const {
  std::vector<double> rowsum(rows_, 0.0);
  for (int j = 0; j < cols_; ++j) {
    for (int k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k) {
      rowsum[row_ind_[k]] += std::abs(values_[k]);
    }
  }
  double best = 0.0;
  for (double s : rowsum) best = std::max(best, s);
  return best;
}

double CscMatrix::norm_frobenius() const {
  double s = 0.0;
  for (double v : values_) s += v * v;
  return std::sqrt(s);
}

std::vector<double> CscMatrix::to_dense_colmajor() const {
  std::vector<double> d(static_cast<std::size_t>(rows_) * cols_, 0.0);
  for (int j = 0; j < cols_; ++j) {
    for (int k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k) {
      d[static_cast<std::size_t>(j) * rows_ + row_ind_[k]] = values_[k];
    }
  }
  return d;
}

bool CscMatrix::valid() const {
  if (static_cast<int>(col_ptr_.size()) != cols_ + 1) return false;
  if (!col_ptr_.empty() && col_ptr_.front() != 0) return false;
  if (row_ind_.size() != values_.size()) return false;
  for (int j = 0; j < cols_; ++j) {
    if (col_ptr_[j] > col_ptr_[j + 1]) return false;
    for (int k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k) {
      if (row_ind_[k] < 0 || row_ind_[k] >= rows_) return false;
      if (k > col_ptr_[j] && row_ind_[k] <= row_ind_[k - 1]) return false;
    }
  }
  return col_ptr_.empty() || col_ptr_.back() == static_cast<int>(row_ind_.size());
}

bool CscMatrix::has_zero_free_diagonal() const {
  if (rows_ != cols_) return false;
  for (int j = 0; j < cols_; ++j) {
    if (at(j, j) == 0.0) return false;
  }
  return true;
}

CscMatrix CscMatrix::identity(int n) {
  std::vector<int> ptr(n + 1);
  std::vector<int> ind(n);
  std::vector<double> val(n, 1.0);
  for (int j = 0; j <= n; ++j) ptr[j] = j;
  for (int j = 0; j < n; ++j) ind[j] = j;
  return CscMatrix(n, n, std::move(ptr), std::move(ind), std::move(val));
}

CscMatrix CscMatrix::from_pattern(const Pattern& p, double v) {
  return CscMatrix(p.rows, p.cols, p.ptr, p.idx,
                   std::vector<double>(p.idx.size(), v));
}

std::string describe(const CscMatrix& a) {
  std::ostringstream os;
  os << a.rows() << " x " << a.cols() << ", nnz=" << a.nnz();
  return os.str();
}

std::uint64_t structure_fingerprint(int rows, int cols,
                                    const std::vector<int>& ptr,
                                    const std::vector<int>& idx) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 1099511628211ull;  // FNV prime
    }
  };
  mix(static_cast<std::uint64_t>(rows));
  mix(static_cast<std::uint64_t>(cols));
  mix(ptr.size());
  for (int p : ptr) mix(static_cast<std::uint64_t>(p));
  for (int i : idx) mix(static_cast<std::uint64_t>(i));
  return h;
}

}  // namespace plu
