// Ruiz iterative equilibration: symmetric-style row/column scaling driving
// every row and column's max-magnitude toward 1.
//
// A cheaper, value-only alternative to the MC64 I-matrix scaling
// (graph/weighted_matching.h): no matching, no permutation, just scales --
// useful when the diagonal is already acceptable but the dynamic range is
// not.  Converges geometrically (Ruiz 2001).
#pragma once

#include <vector>

#include "matrix/csc.h"

namespace plu {

struct Equilibration {
  std::vector<double> row_scale;
  std::vector<double> col_scale;
  int iterations = 0;
  /// max over rows/cols of |1 - max|scaled entry|| at exit.
  double max_deviation = 0.0;

  /// Applies the scaling: returns diag(row_scale) * a * diag(col_scale).
  CscMatrix apply(const CscMatrix& a) const;
};

struct EquilibrationOptions {
  int max_iterations = 100;
  double tolerance = 1e-6;  // stop when every row/col max is within this of 1
};

/// Computes the Ruiz scaling of `a` (entries with value 0 ignored; rows or
/// columns that are entirely zero keep scale 1).
Equilibration ruiz_equilibrate(const CscMatrix& a,
                               const EquilibrationOptions& opt = {});

}  // namespace plu
