// Compressed sparse column matrix and CSC-format sparsity patterns.
//
// CscMatrix is the main interchange type of the library; `Pattern` is the
// values-free variant used by the symbolic algorithms (elimination trees,
// static symbolic factorization, orderings).  Row indices are sorted within
// each column.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "matrix/permutation.h"

namespace plu {

class CooMatrix;

/// CSC-format sparsity pattern (no values).  For a CSR interpretation, treat
/// `ptr` as row pointers; `transpose()` converts between the two views.
struct Pattern {
  int rows = 0;
  int cols = 0;
  std::vector<int> ptr;  // size cols + 1
  std::vector<int> idx;  // size nnz, sorted within each column

  Pattern() = default;
  Pattern(int r, int c) : rows(r), cols(c), ptr(c + 1, 0) {}

  int nnz() const { return ptr.empty() ? 0 : ptr.back(); }

  /// True if (i, j) is present (binary search within column j).
  bool contains(int i, int j) const;

  /// Begin/end of column j in idx.
  const int* col_begin(int j) const { return idx.data() + ptr[j]; }
  const int* col_end(int j) const { return idx.data() + ptr[j + 1]; }
  int col_size(int j) const { return ptr[j + 1] - ptr[j]; }

  /// Structural transpose (CSC of the transposed pattern == CSR of this).
  Pattern transpose() const;

  /// Sorts indices within each column (idempotent).
  void sort_columns();

  bool columns_sorted() const;

  /// Checks internal consistency (monotone ptr, in-range sorted indices).
  bool valid() const;

  /// a == b as sets of coordinates.
  friend bool operator==(const Pattern& a, const Pattern& b);

  /// Pattern of this + other (set union); dimensions must match.
  Pattern union_with(const Pattern& other) const;

  /// True if every entry of this pattern is also in `other`.
  bool subset_of(const Pattern& other) const;

  /// Pattern after symmetric permutation rows<-rp, cols<-cp:
  /// result(i, j) = this(rp.old_of(i), cp.old_of(j)).
  Pattern permuted(const Permutation& rp, const Permutation& cp) const;

  /// Pattern of A^T * A (column intersection graph), no numeric cancellation.
  static Pattern ata(const Pattern& a);

  /// Pattern of A + A^T (square input).
  static Pattern symmetrized(const Pattern& a);
};

class CscMatrix {
 public:
  CscMatrix() = default;
  CscMatrix(int rows, int cols)
      : rows_(rows), cols_(cols), col_ptr_(cols + 1, 0) {}
  CscMatrix(int rows, int cols, std::vector<int> col_ptr,
            std::vector<int> row_ind, std::vector<double> values);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int nnz() const { return col_ptr_.empty() ? 0 : col_ptr_.back(); }

  const std::vector<int>& col_ptr() const { return col_ptr_; }
  const std::vector<int>& row_ind() const { return row_ind_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  int col_begin(int j) const { return col_ptr_[j]; }
  int col_end(int j) const { return col_ptr_[j + 1]; }
  int row_index(int k) const { return row_ind_[k]; }
  double value(int k) const { return values_[k]; }

  /// Value at (i, j), 0 if not stored (binary search).
  double at(int i, int j) const;

  Pattern pattern() const;

  CscMatrix transpose() const;

  /// PAQ^T-style reorder: result(i, j) = this(rp.old_of(i), cp.old_of(j)).
  CscMatrix permuted(const Permutation& rp, const Permutation& cp) const;

  /// y := A x (y resized).
  void matvec(const std::vector<double>& x, std::vector<double>& y) const;

  /// y := A^T x.
  void matvec_transpose(const std::vector<double>& x, std::vector<double>& y) const;

  /// y := y + alpha * A x.
  void matvec_add(double alpha, const std::vector<double>& x,
                  std::vector<double>& y) const;

  double norm1() const;     // max column sum of |a_ij|
  double norm_inf() const;  // max row sum of |a_ij|
  double norm_frobenius() const;

  /// Dense copy for small-matrix tests.
  std::vector<double> to_dense_colmajor() const;

  /// True if pattern and values arrays are structurally consistent.
  bool valid() const;

  /// Structural check: every diagonal entry present and numerically nonzero.
  bool has_zero_free_diagonal() const;

  static CscMatrix identity(int n);

  /// Builds from a pattern with all stored values = v.
  static CscMatrix from_pattern(const Pattern& p, double v = 1.0);

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<int> col_ptr_;
  std::vector<int> row_ind_;
  std::vector<double> values_;
};

/// Human-readable one-line summary ("rows x cols, nnz=...").
std::string describe(const CscMatrix& a);

/// FNV-1a fingerprint of a CSC structure (dims, ptr, idx), computed straight
/// from the arrays -- no Pattern copy.  Collisions are possible (64-bit), so
/// equal fingerprints must be confirmed by a full compare; different
/// fingerprints prove the structures differ.
std::uint64_t structure_fingerprint(int rows, int cols,
                                    const std::vector<int>& ptr,
                                    const std::vector<int>& idx);

}  // namespace plu
