#include "matrix/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <random>

#include "matrix/coo.h"

namespace plu::gen {

namespace {

using Rng = std::mt19937_64;

double uniform(Rng& rng, double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(rng);
}

/// Adds a diagonal sized relative to each row's off-diagonal abs-sum, then
/// converts to CSC.  A dominance factor < 1 keeps partial pivoting active.
CscMatrix finish_with_diagonal(CooMatrix& coo, int n, double dominance, Rng& rng) {
  std::vector<double> row_abs(n, 0.0);
  for (const Triplet& t : coo.entries()) {
    if (t.row != t.col) row_abs[t.row] += std::abs(t.val);
  }
  for (int i = 0; i < n; ++i) {
    double base = row_abs[i] > 0.0 ? row_abs[i] : 1.0;
    coo.add(i, i, dominance * base * uniform(rng, 0.8, 1.2));
  }
  return coo.to_csc();
}

/// Unsymmetric off-diagonal pair: a symmetric diffusive part plus an
/// antisymmetric convective part of relative strength `convection`.
std::pair<double, double> offdiag_pair(Rng& rng, double convection) {
  double sym = uniform(rng, 0.3, 1.0);
  double skew = convection * uniform(rng, -1.0, 1.0);
  return {-(sym + skew), -(sym - skew)};
}

}  // namespace

CscMatrix grid2d(int nx, int ny, const StencilOptions& opt) {
  assert(nx > 0 && ny > 0);
  const int n = nx * ny;
  Rng rng(opt.seed);
  CooMatrix coo(n, n);
  coo.reserve(static_cast<std::size_t>(n) * 5);
  auto id = [nx](int x, int y) { return y * nx + x; };
  std::bernoulli_distribution drop(opt.drop_probability);
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      int me = id(x, y);
      // Each neighbor pair is emitted once, from its lexicographically
      // smaller endpoint, so the drop decision is shared by both entries.
      if (x + 1 < nx && !drop(rng)) {
        auto [a, b] = offdiag_pair(rng, opt.convection);
        coo.add(me, id(x + 1, y), a);
        coo.add(id(x + 1, y), me, b);
      }
      if (y + 1 < ny && !drop(rng)) {
        auto [a, b] = offdiag_pair(rng, opt.convection);
        coo.add(me, id(x, y + 1), a);
        coo.add(id(x, y + 1), me, b);
      }
    }
  }
  return finish_with_diagonal(coo, n, opt.diag_dominance, rng);
}

CscMatrix grid3d(int nx, int ny, int nz, const StencilOptions& opt) {
  assert(nx > 0 && ny > 0 && nz > 0);
  const int n = nx * ny * nz;
  Rng rng(opt.seed);
  CooMatrix coo(n, n);
  coo.reserve(static_cast<std::size_t>(n) * 7);
  auto id = [nx, ny](int x, int y, int z) { return (z * ny + y) * nx + x; };
  std::bernoulli_distribution drop(opt.drop_probability);
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        int me = id(x, y, z);
        if (x + 1 < nx && !drop(rng)) {
          auto [a, b] = offdiag_pair(rng, opt.convection);
          coo.add(me, id(x + 1, y, z), a);
          coo.add(id(x + 1, y, z), me, b);
        }
        if (y + 1 < ny && !drop(rng)) {
          auto [a, b] = offdiag_pair(rng, opt.convection);
          coo.add(me, id(x, y + 1, z), a);
          coo.add(id(x, y + 1, z), me, b);
        }
        if (z + 1 < nz && !drop(rng)) {
          auto [a, b] = offdiag_pair(rng, opt.convection);
          coo.add(me, id(x, y, z + 1), a);
          coo.add(id(x, y, z + 1), me, b);
        }
      }
    }
  }
  return finish_with_diagonal(coo, n, opt.diag_dominance, rng);
}

CscMatrix banded(int n, const std::vector<int>& offsets, double keep_probability,
                 double diag_dominance, std::uint64_t seed) {
  assert(n > 0);
  Rng rng(seed);
  CooMatrix coo(n, n);
  std::bernoulli_distribution keep(keep_probability);
  for (int off : offsets) {
    if (off == 0) continue;
    for (int i = 0; i < n; ++i) {
      int j = i + off;
      if (j < 0 || j >= n) continue;
      if (!keep(rng)) continue;
      coo.add(i, j, uniform(rng, -1.0, 1.0));
    }
  }
  return finish_with_diagonal(coo, n, diag_dominance, rng);
}

int fem_p2_order(int nx, int ny, int dofs_per_node) {
  int vertices = (nx + 1) * (ny + 1);
  int hedges = nx * (ny + 1);
  int vedges = (nx + 1) * ny;
  int dedges = nx * ny;  // one diagonal per quad
  return dofs_per_node * (vertices + hedges + vedges + dedges);
}

CscMatrix fem_p2(int nx, int ny, int dofs_per_node, std::uint64_t seed) {
  assert(nx > 0 && ny > 0 && dofs_per_node > 0);
  Rng rng(seed);
  const int d = dofs_per_node;

  // Node numbering: vertices, then horizontal, vertical, diagonal edge
  // midpoints.
  const int vtx_base = 0;
  const int nvtx = (nx + 1) * (ny + 1);
  const int he_base = vtx_base + nvtx;
  const int nhe = nx * (ny + 1);
  const int ve_base = he_base + nhe;
  const int nve = (nx + 1) * ny;
  const int de_base = ve_base + nve;
  const int nde = nx * ny;
  const int nnodes = nvtx + nhe + nve + nde;
  const int n = nnodes * d;

  auto vtx = [&](int x, int y) { return vtx_base + y * (nx + 1) + x; };
  auto hedge = [&](int x, int y) { return he_base + y * nx + x; };       // (x,y)-(x+1,y)
  auto vedge = [&](int x, int y) { return ve_base + y * (nx + 1) + x; }; // (x,y)-(x,y+1)
  auto dedge = [&](int x, int y) { return de_base + y * nx + x; };       // (x,y)-(x+1,y+1)

  CooMatrix coo(n, n);
  coo.reserve(static_cast<std::size_t>(2 * nx) * ny * 36 * d * d);

  auto stamp = [&](const int nodes[6]) {
    // Random unsymmetric element matrix: mildly diagonally weighted so the
    // assembled operator is nonsingular, with convection-like skew terms.
    const int m = 6 * d;
    std::vector<double> elem(static_cast<std::size_t>(m) * m);
    for (int c = 0; c < m; ++c) {
      for (int r = 0; r < m; ++r) {
        double sym = uniform(rng, -0.5, 0.5);
        elem[static_cast<std::size_t>(c) * m + r] = (r == c) ? 2.0 + sym : sym;
      }
    }
    for (int bc = 0; bc < 6; ++bc) {
      for (int br = 0; br < 6; ++br) {
        for (int cc = 0; cc < d; ++cc) {
          for (int rr = 0; rr < d; ++rr) {
            coo.add(nodes[br] * d + rr, nodes[bc] * d + cc,
                    elem[static_cast<std::size_t>(bc * d + cc) * m + br * d + rr]);
          }
        }
      }
    }
  };

  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      // Quad (x, y) split along the (x,y)-(x+1,y+1) diagonal into 2 triangles.
      // Lower triangle: vertices (x,y), (x+1,y), (x+1,y+1).
      int lo[6] = {vtx(x, y), vtx(x + 1, y), vtx(x + 1, y + 1),
                   hedge(x, y), vedge(x + 1, y), dedge(x, y)};
      stamp(lo);
      // Upper triangle: vertices (x,y), (x+1,y+1), (x,y+1).
      int up[6] = {vtx(x, y), vtx(x + 1, y + 1), vtx(x, y + 1),
                   dedge(x, y), hedge(x, y + 1), vedge(x, y)};
      stamp(up);
    }
  }
  // The assembled diagonal is already positive; strengthen it mildly so the
  // matrix is comfortably nonsingular without killing pivoting entirely.
  for (int i = 0; i < n; ++i) coo.add(i, i, 1.0);
  return coo.to_csc();
}

CscMatrix circuit(int n, int num_rails, double avg_fanout, std::uint64_t seed) {
  assert(n > 0 && num_rails >= 0 && num_rails < n);
  Rng rng(seed);
  CooMatrix coo(n, n);
  // Local device connections: each node couples to a few nearby nodes
  // (netlists are locally clustered), structurally symmetric couplings with
  // unsymmetric conductance stamps.
  std::poisson_distribution<int> fanout(std::max(0.1, avg_fanout));
  std::uniform_int_distribution<int> hop(1, std::max(2, n / 20));
  for (int i = num_rails; i < n; ++i) {
    int k = fanout(rng);
    for (int c = 0; c < k; ++c) {
      int j = i - hop(rng);
      if (j < num_rails || j == i) continue;
      coo.add(i, j, uniform(rng, -1.0, 1.0));
      coo.add(j, i, uniform(rng, -1.0, 1.0));
    }
  }
  // Rails: a handful of nodes nearly every device touches (dense row AND
  // column), the structural signature of circuit matrices.
  std::bernoulli_distribution touches(0.6);
  for (int r = 0; r < num_rails; ++r) {
    for (int i = num_rails; i < n; ++i) {
      if (!touches(rng)) continue;
      coo.add(r, i, uniform(rng, -1.0, 1.0));
      if (touches(rng)) coo.add(i, r, uniform(rng, -1.0, 1.0));
    }
  }
  return finish_with_diagonal(coo, n, 0.8, rng);
}

CscMatrix random_sparse(int n, double nnz_per_row, double structural_symmetry,
                        double diag_dominance, std::uint64_t seed) {
  assert(n > 0 && nnz_per_row >= 0.0);
  Rng rng(seed);
  CooMatrix coo(n, n);
  std::uniform_int_distribution<int> col(0, n - 1);
  std::bernoulli_distribution mirror(structural_symmetry);
  const long targets = std::lround(nnz_per_row * n);
  for (long k = 0; k < targets; ++k) {
    int i = col(rng);
    int j = col(rng);
    if (i == j) continue;
    coo.add(i, j, uniform(rng, -1.0, 1.0));
    if (mirror(rng)) coo.add(j, i, uniform(rng, -1.0, 1.0));
  }
  return finish_with_diagonal(coo, n, diag_dominance, rng);
}

CscMatrix multiphysics3d(int nx, int ny, int nz, int dofs,
                         const StencilOptions& opt) {
  assert(nx > 0 && ny > 0 && nz > 0 && dofs > 0);
  const long nodes = static_cast<long>(nx) * ny * nz;
  const int n = static_cast<int>(nodes * dofs);
  Rng rng(opt.seed);
  CooMatrix coo(n, n);
  coo.reserve(static_cast<std::size_t>(nodes) *
              (static_cast<std::size_t>(dofs) * dofs + 6 * dofs));
  auto id = [nx, ny](int x, int y, int z) { return (z * ny + y) * nx + x; };
  std::bernoulli_distribution drop(opt.drop_probability);
  // Per-field convective coupling along each grid edge; the drop decision
  // is shared by the whole edge so the structure stays symmetric.
  auto couple = [&](int p, int q) {
    for (int f = 0; f < dofs; ++f) {
      auto [a, b] = offdiag_pair(rng, opt.convection);
      coo.add(p * dofs + f, q * dofs + f, a);
      coo.add(q * dofs + f, p * dofs + f, b);
    }
  };
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        const int me = id(x, y, z);
        // Dense intra-point field coupling (off-diagonal part; the diagonal
        // is sized against the assembled row below).
        for (int r = 0; r < dofs; ++r) {
          for (int c = 0; c < dofs; ++c) {
            if (r == c) continue;
            coo.add(me * dofs + r, me * dofs + c, uniform(rng, -0.5, 0.5));
          }
        }
        if (x + 1 < nx && !drop(rng)) couple(me, id(x + 1, y, z));
        if (y + 1 < ny && !drop(rng)) couple(me, id(x, y + 1, z));
        if (z + 1 < nz && !drop(rng)) couple(me, id(x, y, z + 1));
      }
    }
  }
  return finish_with_diagonal(coo, n, opt.diag_dominance, rng);
}

CscMatrix power_law(int n, double avg_degree, double exponent,
                    double structural_symmetry, double diag_dominance,
                    std::uint64_t seed) {
  assert(n > 0 && avg_degree >= 0.0 && exponent >= 1.0);
  Rng rng(seed);
  CooMatrix coo(n, n);
  std::uniform_int_distribution<int> row(0, n - 1);
  std::bernoulli_distribution mirror(structural_symmetry);
  const long targets = std::lround(avg_degree * n);
  coo.reserve(static_cast<std::size_t>(targets));
  for (long k = 0; k < targets; ++k) {
    const int i = row(rng);
    const int j = std::min(
        n - 1, static_cast<int>(n * std::pow(uniform(rng, 0.0, 1.0), exponent)));
    if (i == j) continue;
    coo.add(i, j, uniform(rng, -1.0, 1.0));
    if (mirror(rng)) coo.add(j, i, uniform(rng, -1.0, 1.0));
  }
  return finish_with_diagonal(coo, n, diag_dominance, rng);
}

CscMatrix perturb_values(const CscMatrix& a, double rel, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> vals = a.values();
  for (double& v : vals) v *= 1.0 + rel * uniform(rng, -1.0, 1.0);
  return CscMatrix(a.rows(), a.cols(), a.col_ptr(), a.row_ind(),
                   std::move(vals));
}

CscMatrix block_diag(const std::vector<CscMatrix>& blocks) {
  int n = 0;
  for (const CscMatrix& b : blocks) {
    assert(b.rows() == b.cols());
    n += b.rows();
  }
  CooMatrix coo(n, n);
  int off = 0;
  for (const CscMatrix& b : blocks) {
    for (int j = 0; j < b.cols(); ++j) {
      for (int k = b.col_begin(j); k < b.col_end(j); ++k) {
        coo.add(off + b.row_index(k), off + j, b.value(k));
      }
    }
    off += b.rows();
  }
  return coo.to_csc();
}

CscMatrix random_symmetric_permutation(const CscMatrix& a, std::uint64_t seed) {
  assert(a.rows() == a.cols());
  Rng rng(seed);
  std::vector<int> p(a.rows());
  std::iota(p.begin(), p.end(), 0);
  std::shuffle(p.begin(), p.end(), rng);
  Permutation perm = Permutation::from_old_positions(p);
  return a.permuted(perm, perm);
}

double structural_symmetry(const CscMatrix& a) {
  Pattern p = a.pattern();
  Pattern pt = p.transpose();
  long off = 0;
  long mirrored = 0;
  for (int j = 0; j < p.cols; ++j) {
    for (int k = p.ptr[j]; k < p.ptr[j + 1]; ++k) {
      int i = p.idx[k];
      if (i == j) continue;
      ++off;
      if (pt.contains(i, j)) ++mirrored;
    }
  }
  return off == 0 ? 1.0 : static_cast<double>(mirrored) / static_cast<double>(off);
}

}  // namespace plu::gen
