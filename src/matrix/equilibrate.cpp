#include "matrix/equilibrate.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace plu {

CscMatrix Equilibration::apply(const CscMatrix& a) const {
  assert(static_cast<int>(row_scale.size()) == a.rows());
  assert(static_cast<int>(col_scale.size()) == a.cols());
  std::vector<int> ptr = a.col_ptr();
  std::vector<int> ind = a.row_ind();
  std::vector<double> val = a.values();
  for (int j = 0; j < a.cols(); ++j) {
    for (int k = ptr[j]; k < ptr[j + 1]; ++k) {
      val[k] *= row_scale[ind[k]] * col_scale[j];
    }
  }
  return CscMatrix(a.rows(), a.cols(), std::move(ptr), std::move(ind),
                   std::move(val));
}

Equilibration ruiz_equilibrate(const CscMatrix& a,
                               const EquilibrationOptions& opt) {
  const int m = a.rows();
  const int n = a.cols();
  Equilibration eq;
  eq.row_scale.assign(m, 1.0);
  eq.col_scale.assign(n, 1.0);

  std::vector<double> row_max(m), col_max(n);
  for (int it = 0; it < opt.max_iterations; ++it) {
    std::fill(row_max.begin(), row_max.end(), 0.0);
    std::fill(col_max.begin(), col_max.end(), 0.0);
    for (int j = 0; j < n; ++j) {
      for (int k = a.col_begin(j); k < a.col_end(j); ++k) {
        double v = std::abs(a.value(k)) * eq.row_scale[a.row_index(k)] *
                   eq.col_scale[j];
        row_max[a.row_index(k)] = std::max(row_max[a.row_index(k)], v);
        col_max[j] = std::max(col_max[j], v);
      }
    }
    double dev = 0.0;
    for (int i = 0; i < m; ++i) {
      if (row_max[i] > 0.0) dev = std::max(dev, std::abs(1.0 - row_max[i]));
    }
    for (int j = 0; j < n; ++j) {
      if (col_max[j] > 0.0) dev = std::max(dev, std::abs(1.0 - col_max[j]));
    }
    eq.max_deviation = dev;
    if (dev <= opt.tolerance) break;
    // Ruiz step: divide each side by the square root of its current max.
    for (int i = 0; i < m; ++i) {
      if (row_max[i] > 0.0) eq.row_scale[i] /= std::sqrt(row_max[i]);
    }
    for (int j = 0; j < n; ++j) {
      if (col_max[j] > 0.0) eq.col_scale[j] /= std::sqrt(col_max[j]);
    }
    ++eq.iterations;
  }
  return eq;
}

}  // namespace plu
