#include "matrix/coo.h"

#include <algorithm>
#include <cassert>

#include "matrix/csc.h"

namespace plu {

void CooMatrix::add(int i, int j, double v) {
  assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
  entries_.push_back({i, j, v});
}

void CooMatrix::sum_duplicates() {
  std::sort(entries_.begin(), entries_.end(), [](const Triplet& a, const Triplet& b) {
    return a.col != b.col ? a.col < b.col : a.row < b.row;
  });
  std::size_t out = 0;
  for (std::size_t k = 0; k < entries_.size(); ++k) {
    if (out > 0 && entries_[out - 1].row == entries_[k].row &&
        entries_[out - 1].col == entries_[k].col) {
      entries_[out - 1].val += entries_[k].val;
    } else {
      entries_[out++] = entries_[k];
    }
  }
  entries_.resize(out);
}

CscMatrix CooMatrix::to_csc() const {
  CooMatrix tmp = *this;
  tmp.sum_duplicates();
  std::vector<int> col_ptr(cols_ + 1, 0);
  for (const Triplet& t : tmp.entries_) col_ptr[t.col + 1]++;
  for (int j = 0; j < cols_; ++j) col_ptr[j + 1] += col_ptr[j];
  std::vector<int> row_ind(tmp.entries_.size());
  std::vector<double> values(tmp.entries_.size());
  // Entries are already column-major sorted after sum_duplicates.
  for (std::size_t k = 0; k < tmp.entries_.size(); ++k) {
    row_ind[k] = tmp.entries_[k].row;
    values[k] = tmp.entries_[k].val;
  }
  return CscMatrix(rows_, cols_, std::move(col_ptr), std::move(row_ind),
                   std::move(values));
}

}  // namespace plu
