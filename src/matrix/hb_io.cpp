#include "matrix/hb_io.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "matrix/coo.h"

namespace plu {

namespace hb_detail {

FortranFormat parse_fortran_format(const std::string& fmt) {
  // Accepts forms like (13I6), (5E16.8), (1P,4D20.12), (4(1X,E12.5)) is NOT
  // supported (nested groups are rare in HB files).
  FortranFormat out;
  std::string s;
  for (char c : fmt) {
    if (!std::isspace(static_cast<unsigned char>(c))) {
      s += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  std::size_t start = s.find('(');
  std::size_t end = s.rfind(')');
  if (start == std::string::npos || end == std::string::npos || end <= start) {
    throw std::runtime_error("HB: bad Fortran format: " + fmt);
  }
  s = s.substr(start + 1, end - start - 1);
  // Drop scale-factor prefixes like "1P," or "1P".
  std::size_t p = s.find('P');
  if (p != std::string::npos && p + 1 < s.size() &&
      (s[p + 1] == ',' || std::isdigit(static_cast<unsigned char>(s[p + 1])))) {
    s = s.substr(p + 1);
    if (!s.empty() && s[0] == ',') s = s.substr(1);
  }
  // Now expect [repeat] KIND width [. digits].
  std::size_t i = 0;
  int repeat = 0;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
    repeat = repeat * 10 + (s[i] - '0');
    ++i;
  }
  if (i >= s.size()) throw std::runtime_error("HB: bad Fortran format: " + fmt);
  char kind = s[i++];
  if (kind != 'I' && kind != 'E' && kind != 'D' && kind != 'F' && kind != 'G') {
    throw std::runtime_error("HB: unsupported Fortran kind in: " + fmt);
  }
  int width = 0;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
    width = width * 10 + (s[i] - '0');
    ++i;
  }
  if (width <= 0) throw std::runtime_error("HB: bad field width in: " + fmt);
  out.repeat = repeat > 0 ? repeat : 1;
  out.width = width;
  out.kind = kind;
  return out;
}

}  // namespace hb_detail

namespace {

using hb_detail::FortranFormat;

/// Reads `count` fixed-width fields across as many lines as needed.
template <typename Convert>
void read_fields(std::istream& in, const FortranFormat& fmt, long count,
                 const Convert& convert) {
  std::string line;
  long done = 0;
  while (done < count) {
    if (!std::getline(in, line)) {
      throw std::runtime_error("HB: truncated data section");
    }
    for (int f = 0; f < fmt.repeat && done < count; ++f) {
      std::size_t pos = static_cast<std::size_t>(f) * fmt.width;
      if (pos >= line.size()) break;  // short line: rest on the next line
      std::string field = line.substr(pos, fmt.width);
      // Trim whitespace.
      std::size_t b = field.find_first_not_of(" \t\r");
      if (b == std::string::npos) break;
      std::size_t e = field.find_last_not_of(" \t\r");
      convert(field.substr(b, e - b + 1), done);
      ++done;
    }
  }
}

long to_long(const std::string& s, const char* what) {
  char* endp = nullptr;
  long v = std::strtol(s.c_str(), &endp, 10);
  if (endp == s.c_str()) {
    throw std::runtime_error(std::string("HB: bad integer in ") + what + ": " + s);
  }
  return v;
}

double to_double(std::string s) {
  // Fortran floats may use D (or lowercase) exponents.
  for (char& c : s) {
    if (c == 'D' || c == 'd') c = 'E';
  }
  char* endp = nullptr;
  double v = std::strtod(s.c_str(), &endp);
  if (endp == s.c_str()) {
    throw std::runtime_error("HB: bad value: " + s);
  }
  return v;
}

std::string field(const std::string& line, std::size_t pos, std::size_t len) {
  if (pos >= line.size()) return "";
  return line.substr(pos, len);
}

std::string trimmed(std::string s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

CscMatrix read_harwell_boeing(std::istream& in, HarwellBoeingInfo* info) {
  std::string l1, l2, l3, l4;
  if (!std::getline(in, l1) || !std::getline(in, l2) || !std::getline(in, l3) ||
      !std::getline(in, l4)) {
    throw std::runtime_error("HB: truncated header");
  }
  HarwellBoeingInfo hdr;
  hdr.title = trimmed(field(l1, 0, 72));
  hdr.key = trimmed(field(l1, 72, 8));

  const long rhscrd = to_long(trimmed(field(l2, 56, 14)).empty()
                                  ? "0"
                                  : trimmed(field(l2, 56, 14)),
                              "RHSCRD");

  std::string mxtype = trimmed(field(l3, 0, 3));
  std::transform(mxtype.begin(), mxtype.end(), mxtype.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  hdr.type = mxtype;
  if (mxtype.size() != 3) throw std::runtime_error("HB: bad MXTYPE");
  const char value_type = mxtype[0];    // R real, P pattern, C complex
  const char symmetry = mxtype[1];      // U, S, Z (skew), R (rectangular), H
  const char assembled = mxtype[2];     // A assembled, E elemental
  if (assembled != 'A') {
    throw std::runtime_error("HB: elemental matrices not supported");
  }
  if (value_type != 'R' && value_type != 'P') {
    throw std::runtime_error("HB: only real or pattern matrices supported");
  }
  const long nrow = to_long(trimmed(field(l3, 14, 14)), "NROW");
  const long ncol = to_long(trimmed(field(l3, 28, 14)), "NCOL");
  const long nnz = to_long(trimmed(field(l3, 42, 14)), "NNZERO");
  if (nrow <= 0 || ncol <= 0 || nnz < 0) {
    throw std::runtime_error("HB: bad dimensions");
  }

  FortranFormat ptrfmt = hb_detail::parse_fortran_format(trimmed(field(l4, 0, 16)));
  FortranFormat indfmt = hb_detail::parse_fortran_format(trimmed(field(l4, 16, 16)));
  FortranFormat valfmt;
  if (value_type == 'R') {
    valfmt = hb_detail::parse_fortran_format(trimmed(field(l4, 32, 20)));
  }
  if (rhscrd > 0) {
    std::string l5;
    if (!std::getline(in, l5)) throw std::runtime_error("HB: truncated header");
  }

  std::vector<long> colptr(ncol + 1);
  read_fields(in, ptrfmt, ncol + 1,
              [&](const std::string& s, long i) { colptr[i] = to_long(s, "PTR"); });
  std::vector<long> rowind(nnz);
  read_fields(in, indfmt, nnz,
              [&](const std::string& s, long i) { rowind[i] = to_long(s, "IND"); });
  std::vector<double> values(nnz, 1.0);
  if (value_type == 'R') {
    read_fields(in, valfmt, nnz,
                [&](const std::string& s, long i) { values[i] = to_double(s); });
  }

  // Validate the 1-based compressed structure, then expand through COO so
  // symmetric/skew variants unfold uniformly.
  if (colptr[0] != 1 || colptr[ncol] != nnz + 1) {
    throw std::runtime_error("HB: inconsistent column pointers");
  }
  CooMatrix coo(static_cast<int>(nrow), static_cast<int>(ncol));
  coo.reserve(static_cast<std::size_t>(nnz) * (symmetry == 'S' || symmetry == 'Z' ? 2 : 1));
  for (long j = 0; j < ncol; ++j) {
    if (colptr[j + 1] < colptr[j]) {
      throw std::runtime_error("HB: decreasing column pointer");
    }
    for (long k = colptr[j] - 1; k < colptr[j + 1] - 1; ++k) {
      long i = rowind[k] - 1;
      if (i < 0 || i >= nrow) throw std::runtime_error("HB: row index out of range");
      coo.add(static_cast<int>(i), static_cast<int>(j), values[k]);
      if ((symmetry == 'S' || symmetry == 'Z') && i != j) {
        coo.add(static_cast<int>(j), static_cast<int>(i),
                symmetry == 'Z' ? -values[k] : values[k]);
      }
    }
  }
  if (info) *info = hdr;
  return coo.to_csc();
}

CscMatrix read_harwell_boeing_file(const std::string& path,
                                   HarwellBoeingInfo* info) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  return read_harwell_boeing(f, info);
}

}  // namespace plu
