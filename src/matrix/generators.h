// Synthetic sparse matrix generators.
//
// These stand in for the paper's Harwell-Boeing / UF matrices (no network
// access in this environment; see DESIGN.md section 3).  Each generator
// reproduces the *structural class* of its target: finite-difference
// stencils for the oil-reservoir matrices, banded unsymmetric operators for
// the fluid-flow matrices, finite-element assembly for goodwin.
//
// All generators are deterministic given the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "matrix/csc.h"

namespace plu::gen {

/// Tuning knobs shared by the stencil generators.
struct StencilOptions {
  /// Strength of the unsymmetric (convection) perturbation of off-diagonals.
  double convection = 0.4;
  /// Probability of dropping an off-diagonal *pair* (keeps the structure
  /// symmetric while thinning it, like the sherman matrices).
  double drop_probability = 0.0;
  /// Diagonal magnitude as a fraction of the row's off-diagonal abs-sum.
  /// Values < 1 leave room for partial pivoting to actually trigger.
  double diag_dominance = 0.7;
  std::uint64_t seed = 1;
};

/// 5-point stencil on an nx x ny grid with convection terms.
CscMatrix grid2d(int nx, int ny, const StencilOptions& opt = {});

/// 7-point stencil on an nx x ny x nz grid with convection terms.
CscMatrix grid3d(int nx, int ny, int nz, const StencilOptions& opt = {});

/// Banded unsymmetric operator of order n with nonzeros at the given
/// diagonal offsets (0 is implied).  Entries on each band are kept with
/// probability keep_probability.  Models linearized fluid-flow operators
/// (lns3937-class matrices).
CscMatrix banded(int n, const std::vector<int>& offsets, double keep_probability,
                 double diag_dominance, std::uint64_t seed);

/// Unsymmetric finite-element matrix: quadratic (P2) triangles on a
/// structured nx x ny quad mesh split into triangles, `dofs_per_node`
/// unknowns per mesh node, dense 6*d x 6*d random element stamps
/// (stiffness + convection).  Models goodwin-class matrices.
CscMatrix fem_p2(int nx, int ny, int dofs_per_node, std::uint64_t seed);

/// Number of unknowns fem_p2 will produce for the given mesh.
int fem_p2_order(int nx, int ny, int dofs_per_node);

/// Circuit-simulation-class matrix (the KLU domain): a sparse "netlist"
/// graph of locally connected nodes plus a few high-degree rails (power /
/// ground / clock nets) that give the characteristic dense rows+columns,
/// highly unsymmetric values.  Very sparse, nearly reducible -- the class
/// where supernodes barely exist and orderings behave differently than on
/// mesh matrices.
CscMatrix circuit(int n, int num_rails, double avg_fanout, std::uint64_t seed);

/// Random sparse matrix: n rows, ~nnz_per_row off-diagonals per row;
/// each entry (i,j) is mirrored at (j,i) with probability
/// structural_symmetry.  Diagonal added per diag_dominance.
CscMatrix random_sparse(int n, double nnz_per_row, double structural_symmetry,
                        double diag_dominance, std::uint64_t seed);

/// 3-D multi-physics stencil: a 7-point grid graph where every grid point
/// carries `dofs` coupled unknowns -- a dense dofs x dofs intra-point block
/// (field coupling, e.g. pressure/saturation/temperature) plus per-field
/// convective coupling along each grid edge.  The production shape of
/// reservoir / CFD multi-species operators; at nx*ny*nz*dofs in the
/// 1e5..1e6 row range this is the scaling-bench workload.  With
/// drop_probability == 0 the nnz is exactly
///   n + nodes * dofs * (dofs - 1) + 2 * dofs * num_grid_edges
/// and the structure is symmetric.  Unknowns of one grid point are
/// consecutive, so supernodes of width >= dofs emerge naturally.
/// The scaling bench reaches >= 1e5 rows with a block_diag FOREST of these
/// domains; a single coupled domain is size-bounded by static symbolic
/// fill (it factors for every possible pivot sequence, so coupled-3-D
/// factor storage grows superlinearly -- DESIGN.md section 14).
CscMatrix multiphysics3d(int nx, int ny, int nz, int dofs,
                         const StencilOptions& opt = {});

/// Power-law column-degree mix: ~avg_degree off-diagonals per row, column
/// targets drawn as floor(n * u^exponent) for uniform u -- exponent 1 is
/// uniform, larger exponents concentrate entries into hub columns near
/// index 0 (degree density ~ j^(1/exponent - 1)).  Each entry is mirrored
/// with probability structural_symmetry.  Models irregular network /
/// circuit-adjacent operators where a few columns dominate the fill.
CscMatrix power_law(int n, double avg_degree, double exponent,
                    double structural_symmetry, double diag_dominance,
                    std::uint64_t seed);

/// Same sparsity pattern as `a`, values re-drawn: every stored value is
/// scaled by (1 + rel * u) with u uniform in [-1, 1).  The pattern arrays
/// are copied verbatim, so pattern-keyed analysis reuse (AnalysisCache)
/// hits on the result.  Models the repeated-factorization workload of
/// Newton / time-stepping loops (same structure, new values).
CscMatrix perturb_values(const CscMatrix& a, double rel, std::uint64_t seed);

/// Block-diagonal union: the given matrices placed on the diagonal with no
/// coupling between them.  The LU eforest then has (at least) one tree per
/// block, making this the stress shape for anything that parallelizes over
/// independent subtrees -- each block analyzes, factorizes and solves
/// independently of the others.
CscMatrix block_diag(const std::vector<CscMatrix>& blocks);

/// Applies a random symmetric permutation (same on rows and columns).
CscMatrix random_symmetric_permutation(const CscMatrix& a, std::uint64_t seed);

/// Fraction of off-diagonal entries (i,j) whose mirror (j,i) is also stored.
double structural_symmetry(const CscMatrix& a);

}  // namespace plu::gen
