// Matrix Market I/O (coordinate format, real, general/symmetric/skew).
//
// The paper's matrices come from the Harwell-Boeing collection and Tim
// Davis's ftp site; Matrix Market is the standard interchange format for
// both today.  This environment has no network access, so the benchmark
// suite uses the synthetic stand-ins from named_matrices.h, but a user with
// the original files can load them through these functions.
#pragma once

#include <iosfwd>
#include <string>

#include "matrix/csc.h"

namespace plu {

/// Parses a Matrix Market stream; throws std::runtime_error on bad input.
CscMatrix read_matrix_market(std::istream& in);

/// Loads a Matrix Market file from disk.
CscMatrix read_matrix_market_file(const std::string& path);

/// Writes `a` in coordinate real general format.
void write_matrix_market(std::ostream& out, const CscMatrix& a,
                         const std::string& comment = "");

void write_matrix_market_file(const std::string& path, const CscMatrix& a,
                              const std::string& comment = "");

}  // namespace plu
