#include "matrix/permutation.h"

#include <cassert>
#include <numeric>
#include <stdexcept>

namespace plu {

Permutation::Permutation(int n) : old_of_(n), new_of_(n) {
  std::iota(old_of_.begin(), old_of_.end(), 0);
  std::iota(new_of_.begin(), new_of_.end(), 0);
}

Permutation Permutation::from_old_positions(std::vector<int> old_of_new) {
  if (!is_valid(old_of_new)) {
    throw std::invalid_argument("Permutation::from_old_positions: not a bijection");
  }
  Permutation p;
  p.new_of_.assign(old_of_new.size(), 0);
  for (int i = 0; i < static_cast<int>(old_of_new.size()); ++i) {
    p.new_of_[old_of_new[i]] = i;
  }
  p.old_of_ = std::move(old_of_new);
  return p;
}

Permutation Permutation::from_new_positions(std::vector<int> new_of_old) {
  if (!is_valid(new_of_old)) {
    throw std::invalid_argument("Permutation::from_new_positions: not a bijection");
  }
  Permutation p;
  p.old_of_.assign(new_of_old.size(), 0);
  for (int i = 0; i < static_cast<int>(new_of_old.size()); ++i) {
    p.old_of_[new_of_old[i]] = i;
  }
  p.new_of_ = std::move(new_of_old);
  return p;
}

Permutation Permutation::inverse() const {
  Permutation p;
  p.old_of_ = new_of_;
  p.new_of_ = old_of_;
  return p;
}

Permutation Permutation::compose(const Permutation& first, const Permutation& second) {
  assert(first.size() == second.size());
  // gather(gather(x, first), second)[i] = x[first.old_of(second.old_of(i))].
  std::vector<int> old_of(second.size());
  for (int i = 0; i < second.size(); ++i) {
    old_of[i] = first.old_of(second.old_of(i));
  }
  return from_old_positions(std::move(old_of));
}

bool Permutation::is_identity() const {
  for (int i = 0; i < size(); ++i) {
    if (old_of_[i] != i) return false;
  }
  return true;
}

bool Permutation::is_valid(const std::vector<int>& p) {
  const int n = static_cast<int>(p.size());
  std::vector<char> seen(n, 0);
  for (int v : p) {
    if (v < 0 || v >= n || seen[v]) return false;
    seen[v] = 1;
  }
  return true;
}

}  // namespace plu
