// The benchmark suite: structure-matched stand-ins for the seven matrices of
// Table 1 of the paper (sherman3, sherman5, lnsp3937, lns3937, orsreg1,
// saylr4, goodwin).
//
// This environment has no access to the Harwell-Boeing collection or the UF
// ftp site, so each matrix is replaced by a synthetic generator of the same
// order (goodwin scaled down; see DESIGN.md section 3) and the same
// structural class:
//   sherman3   5005 = 35 x 13 x 11 grid, 7-point, thinned   (oil reservoir)
//   sherman5   3312 = 16 x 23 x 9 grid, 7-point             (oil reservoir)
//   lnsp3937   3937, banded unsymmetric, permuted lns3937   (fluid flow)
//   lns3937    3937, banded unsymmetric                     (fluid flow)
//   orsreg1    2205 = 21 x 21 x 5 grid, 7-point             (oil reservoir)
//   saylr4     3564 = 33 x 12 x 9 grid, 7-point             (oil reservoir)
//   goodwin    FEM P2 triangles, 2 dof/node, n=1458
//              (original is n=7320; scaled so the suite runs in minutes
//               on one core)
#pragma once

#include <string>
#include <vector>

#include "matrix/csc.h"

namespace plu {

struct NamedMatrix {
  std::string name;        // paper's matrix name + "-like"
  std::string domain;      // application domain per Table 1
  CscMatrix a;
  int paper_order;         // order reported in the paper
  int paper_nnz;           // |A| reported in the paper (0 if not reported)
};

/// One matrix by paper name ("sherman3", ..., "goodwin").  Throws on unknown
/// names.
NamedMatrix make_named_matrix(const std::string& name);

/// All seven matrices, in the paper's Table 1 order.
std::vector<NamedMatrix> make_benchmark_suite();

/// Subset used by Figure 5 (sherman3, sherman5, orsreg1, goodwin).
std::vector<std::string> figure5_names();

/// Subset used by Figure 6 (lns3937, lnsp3937, saylr4).
std::vector<std::string> figure6_names();

/// A small suite for fast tests: reduced-size instances of the same
/// structural classes.
std::vector<NamedMatrix> make_small_suite();

}  // namespace plu
