#include "matrix/named_matrices.h"

#include <stdexcept>

#include "matrix/generators.h"

namespace plu {

namespace {

NamedMatrix sherman3_like() {
  gen::StencilOptions opt;
  opt.drop_probability = 0.42;  // sherman3 has ~4 nnz/row, thinner than 7-pt
  opt.convection = 0.35;
  opt.seed = 1003;
  return {"sherman3", "oil reservoir", gen::grid3d(35, 13, 11, opt), 5005, 20033};
}

NamedMatrix sherman5_like() {
  // The paper singles sherman5 out for "large sparsity and lack of
  // structure" that defeats supernode identification with or without
  // postordering; an irregular multi-band operator reproduces that
  // behaviour (a regular 3-D stencil does not -- it postorders too well).
  return {"sherman5", "oil reservoir",
          gen::banded(3312, {-55, -34, -33, -3, -1, 1, 3, 33, 34, 55}, 0.5, 0.6,
                      1005),
          3312, 20793};
}

CscMatrix lns_core() {
  // Linearized Navier-Stokes style: tridiagonal coupling plus grid-width
  // bands; keep probability tuned for ~6.5 nnz/row like lns3937.
  return gen::banded(3937, {-63, -62, -1, 1, 62, 63}, 0.78, 0.6, 2001);
}

NamedMatrix lns3937_like() {
  return {"lns3937", "fluid flow", lns_core(), 3937, 25407};
}

NamedMatrix lnsp3937_like() {
  // In the collection, lnsp3937 is the same operator under a different
  // ordering; model that as a random symmetric permutation of lns3937.
  return {"lnsp3937", "fluid flow",
          gen::random_symmetric_permutation(lns_core(), 2002), 3937, 25407};
}

NamedMatrix orsreg1_like() {
  gen::StencilOptions opt;
  opt.convection = 0.3;
  opt.seed = 3001;
  return {"orsreg1", "oil reservoir", gen::grid3d(21, 21, 5, opt), 2205, 14133};
}

NamedMatrix saylr4_like() {
  gen::StencilOptions opt;
  opt.convection = 0.25;
  opt.drop_probability = 0.04;
  opt.seed = 3004;
  return {"saylr4", "oil reservoir", gen::grid3d(33, 12, 9, opt), 3564, 22316};
}

NamedMatrix goodwin_like() {
  // Original: n=7320, fluid-mechanics FEM.  Scaled-down P2 mesh with 2
  // dof/node (n=1458) keeps the FEM structure class while letting the full
  // suite run in minutes on one core.
  return {"goodwin", "fluid mechanics FEM", gen::fem_p2(13, 13, 2, 4001), 7320,
          324772};
}

}  // namespace

NamedMatrix make_named_matrix(const std::string& name) {
  if (name == "sherman3") return sherman3_like();
  if (name == "sherman5") return sherman5_like();
  if (name == "lnsp3937") return lnsp3937_like();
  if (name == "lns3937") return lns3937_like();
  if (name == "orsreg1") return orsreg1_like();
  if (name == "saylr4") return saylr4_like();
  if (name == "goodwin") return goodwin_like();
  throw std::invalid_argument("unknown benchmark matrix: " + name);
}

std::vector<NamedMatrix> make_benchmark_suite() {
  return {sherman3_like(), sherman5_like(), lnsp3937_like(), lns3937_like(),
          orsreg1_like(),  saylr4_like(),   goodwin_like()};
}

std::vector<std::string> figure5_names() {
  return {"sherman3", "sherman5", "orsreg1", "goodwin"};
}

std::vector<std::string> figure6_names() {
  return {"lns3937", "lnsp3937", "saylr4"};
}

std::vector<NamedMatrix> make_small_suite() {
  gen::StencilOptions grid_opt;
  grid_opt.convection = 0.4;
  grid_opt.seed = 7;
  std::vector<NamedMatrix> out;
  out.push_back({"grid2d-small", "test", gen::grid2d(12, 11, grid_opt), 132, 0});
  gen::StencilOptions g3 = grid_opt;
  g3.seed = 8;
  out.push_back({"grid3d-small", "test", gen::grid3d(6, 5, 5, g3), 150, 0});
  out.push_back({"banded-small", "test",
                 gen::banded(160, {-13, -12, -1, 1, 12, 13}, 0.6, 0.6, 9), 160, 0});
  out.push_back({"fem-small", "test", gen::fem_p2(4, 4, 1, 10),
                 gen::fem_p2_order(4, 4, 1), 0});
  out.push_back({"random-small", "test", gen::random_sparse(140, 3.0, 0.5, 0.7, 11),
                 140, 0});
  return out;
}

}  // namespace plu
