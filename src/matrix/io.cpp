#include "matrix/io.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "matrix/coo.h"

namespace plu {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

CscMatrix read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("matrix market: empty stream");
  }
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") {
    throw std::runtime_error("matrix market: missing %%MatrixMarket banner");
  }
  object = lower(object);
  format = lower(format);
  field = lower(field);
  symmetry = lower(symmetry);
  if (object != "matrix" || format != "coordinate") {
    throw std::runtime_error("matrix market: only coordinate matrices supported");
  }
  if (field != "real" && field != "integer" && field != "pattern") {
    throw std::runtime_error("matrix market: unsupported field " + field);
  }
  const bool pattern_only = (field == "pattern");
  const bool symmetric = (symmetry == "symmetric");
  const bool skew = (symmetry == "skew-symmetric");
  if (!symmetric && !skew && symmetry != "general") {
    throw std::runtime_error("matrix market: unsupported symmetry " + symmetry);
  }

  // Skip comments and blank lines up to the size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  long rows = 0, cols = 0, nnz = 0;
  if (!(size_line >> rows >> cols >> nnz) || rows < 0 || cols < 0 || nnz < 0) {
    throw std::runtime_error("matrix market: bad size line");
  }

  CooMatrix coo(static_cast<int>(rows), static_cast<int>(cols));
  coo.reserve(static_cast<std::size_t>(nnz) * (symmetric || skew ? 2 : 1));
  for (long k = 0; k < nnz; ++k) {
    if (!std::getline(in, line)) {
      throw std::runtime_error("matrix market: truncated entry list");
    }
    if (line.empty() || line[0] == '%') {
      --k;
      continue;
    }
    std::istringstream entry(line);
    long i = 0, j = 0;
    double v = 1.0;
    if (!(entry >> i >> j)) {
      throw std::runtime_error("matrix market: bad entry line: " + line);
    }
    if (!pattern_only && !(entry >> v)) {
      throw std::runtime_error("matrix market: missing value: " + line);
    }
    if (i < 1 || i > rows || j < 1 || j > cols) {
      throw std::runtime_error("matrix market: index out of range: " + line);
    }
    coo.add(static_cast<int>(i - 1), static_cast<int>(j - 1), v);
    if ((symmetric || skew) && i != j) {
      coo.add(static_cast<int>(j - 1), static_cast<int>(i - 1), skew ? -v : v);
    }
  }
  return coo.to_csc();
}

CscMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  return read_matrix_market(f);
}

void write_matrix_market(std::ostream& out, const CscMatrix& a,
                         const std::string& comment) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  if (!comment.empty()) {
    std::istringstream lines(comment);
    std::string l;
    while (std::getline(lines, l)) out << "% " << l << '\n';
  }
  out << a.rows() << ' ' << a.cols() << ' ' << a.nnz() << '\n';
  out.precision(17);
  for (int j = 0; j < a.cols(); ++j) {
    for (int k = a.col_begin(j); k < a.col_end(j); ++k) {
      out << a.row_index(k) + 1 << ' ' << j + 1 << ' ' << a.value(k) << '\n';
    }
  }
}

void write_matrix_market_file(const std::string& path, const CscMatrix& a,
                              const std::string& comment) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  write_matrix_market(f, a, comment);
}

}  // namespace plu
