// Coordinate-format sparse matrix builder.
//
// COO is the assembly format: generators and Matrix Market readers append
// triplets in arbitrary order, duplicates are summed, then the matrix is
// converted to CSC for all downstream algorithms.
#pragma once

#include <vector>

namespace plu {

class CscMatrix;

struct Triplet {
  int row = 0;
  int col = 0;
  double val = 0.0;
};

class CooMatrix {
 public:
  CooMatrix() = default;
  CooMatrix(int rows, int cols) : rows_(rows), cols_(cols) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int nnz() const { return static_cast<int>(entries_.size()); }

  /// Appends entry (i, j) += v.  Bounds-checked via assert.
  void add(int i, int j, double v);

  /// Sorts column-major and sums duplicate coordinates in place.
  void sum_duplicates();

  const std::vector<Triplet>& entries() const { return entries_; }
  std::vector<Triplet>& entries() { return entries_; }

  void reserve(std::size_t n) { entries_.reserve(n); }

  /// Converts to CSC (sums duplicates first).
  CscMatrix to_csc() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<Triplet> entries_;
};

}  // namespace plu
