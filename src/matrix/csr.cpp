#include "matrix/csr.h"

#include <stdexcept>
#include <utility>

namespace plu {

CsrMatrix::CsrMatrix(int rows, int cols, std::vector<int> row_ptr,
                     std::vector<int> col_ind, std::vector<double> values)
    : rows_(rows), cols_(cols), row_ptr_(std::move(row_ptr)),
      col_ind_(std::move(col_ind)), values_(std::move(values)) {
  if (static_cast<int>(row_ptr_.size()) != rows_ + 1 ||
      col_ind_.size() != values_.size()) {
    throw std::invalid_argument("CsrMatrix: inconsistent arrays");
  }
}

CsrMatrix CsrMatrix::from_csc(const CscMatrix& a) {
  // CSR of A == CSC of A^T with rows/cols swapped back.
  CscMatrix t = a.transpose();
  return CsrMatrix(a.rows(), a.cols(), t.col_ptr(), t.row_ind(), t.values());
}

CscMatrix CsrMatrix::to_csc() const {
  // CSR arrays reinterpreted as CSC describe the transpose; transpose again.
  CscMatrix t(cols_, rows_, row_ptr_, col_ind_, values_);
  return t.transpose();
}

}  // namespace plu
