// Harwell-Boeing (HB) format reader.
//
// The paper's matrices come from the Harwell-Boeing collection; their
// canonical distribution files (sherman3.rua etc.) use this fixed-column
// Fortran format.  Supported: assembled real/pattern matrices (RUA, RSA,
// RZA, PUA, PSA), with symmetric/skew variants expanded to full storage.
// Right-hand sides, if present, are skipped.  Elemental (xxE) matrices are
// rejected.
#pragma once

#include <iosfwd>
#include <string>

#include "matrix/csc.h"

namespace plu {

struct HarwellBoeingInfo {
  std::string title;
  std::string key;
  std::string type;  // e.g. "RUA"
};

/// Parses an HB stream; throws std::runtime_error on malformed input.
/// `info`, when non-null, receives the header metadata.
CscMatrix read_harwell_boeing(std::istream& in, HarwellBoeingInfo* info = nullptr);

CscMatrix read_harwell_boeing_file(const std::string& path,
                                   HarwellBoeingInfo* info = nullptr);

namespace hb_detail {

/// Parsed Fortran edit descriptor, e.g. "(13I6)" or "(1P,5E16.8)".
struct FortranFormat {
  int repeat = 0;  // fields per line
  int width = 0;   // characters per field
  char kind = 'I';
};

/// Parses the descriptor; throws on unsupported forms.
FortranFormat parse_fortran_format(const std::string& fmt);

}  // namespace hb_detail

}  // namespace plu
