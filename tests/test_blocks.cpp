// Block structure: raw block pattern, block-level closure, block eforest.
#include <gtest/gtest.h>

#include "graph/eforest.h"
#include "graph/postorder.h"
#include "graph/transversal.h"
#include "symbolic/blocks.h"
#include "symbolic/repartition.h"
#include "symbolic/static_symbolic.h"
#include "test_helpers.h"

namespace plu::symbolic {
namespace {

Pattern make_abar(const CscMatrix& a) {
  Pattern p = a.pattern();
  auto rp = graph::zero_free_diagonal_permutation(p);
  Pattern fixed = p.permuted(*rp, Permutation(p.cols));
  Pattern abar = static_symbolic_factorization(fixed).abar;
  graph::Forest ef = graph::lu_eforest(abar);
  return graph::apply_symmetric_permutation(abar, graph::postorder_permutation(ef));
}

TEST(BlockPattern, MatchesBruteForce) {
  for (const CscMatrix& a : test::small_matrices()) {
    Pattern abar = make_abar(a);
    SupernodePartition part = find_supernodes(abar);
    Pattern bp = block_pattern(abar, part);
    EXPECT_TRUE(bp.valid());
    for (int sj = 0; sj < part.count(); ++sj) {
      for (int si = 0; si < part.count(); ++si) {
        bool any = false;
        for (int j = part.first(sj); j < part.end(sj) && !any; ++j) {
          for (const int* it = abar.col_begin(j); it != abar.col_end(j); ++it) {
            if (part.supernode_of(*it) == si) {
              any = true;
              break;
            }
          }
        }
        EXPECT_EQ(bp.contains(si, sj), any) << si << "," << sj;
      }
    }
  }
}

TEST(BlockClosure, RawPatternPairwiseClosedForExactPartition) {
  // The invariant the numeric kernels need -- (i,k) and (k,j) present
  // implies (i,j) present -- already holds on the RAW block pattern when
  // the partition is exact (it is the block shadow of the entry-level
  // George-Ng property).  The full block-level George-Ng pass may still add
  // blocks beyond this (its candidate unions are coarser than entry level);
  // those are padding, tracked by extra_blocks_from_closure.
  for (const CscMatrix& a : test::small_matrices()) {
    Pattern abar = make_abar(a);
    SupernodePartition part = find_supernodes(abar);
    Pattern raw = block_pattern(abar, part);
    EXPECT_TRUE(block_closure_holds(raw)) << describe(a);
    BlockStructure bs = build_block_structure(abar, part);
    EXPECT_GE(bs.extra_blocks_from_closure, 0);
    EXPECT_TRUE(block_closure_holds(bs.bpattern));
  }
}

TEST(BlockClosure, HoldsAfterAmalgamation) {
  for (const CscMatrix& a : test::small_matrices()) {
    Pattern abar = make_abar(a);
    graph::Forest ef = graph::lu_eforest(abar);
    SupernodePartition part = amalgamate(abar, ef, find_supernodes(abar), {});
    BlockStructure bs = build_block_structure(abar, part);
    EXPECT_TRUE(block_closure_holds(bs.bpattern)) << describe(a);
    // Raw pattern may or may not be closed; the closure pass records it.
    EXPECT_GE(bs.extra_blocks_from_closure, 0);
  }
}

TEST(BlockClosure, DetectorFindsViolation) {
  // Blocks: (1,0), (0,1) present, (1,1) present, but closure demands (1,1)
  // anyway; craft (2,0) & (0,1) => (2,1) missing.
  CooMatrix coo(3, 3);
  for (int i = 0; i < 3; ++i) coo.add(i, i, 1.0);
  coo.add(2, 0, 1.0);
  coo.add(0, 1, 1.0);
  Pattern p = coo.to_csc().pattern();  // treat entries as blocks directly
  EXPECT_FALSE(block_closure_holds(p));
}

TEST(BlockEforest, TopologicalAndFlagsConsistent) {
  for (const CscMatrix& a : test::small_matrices()) {
    Pattern abar = make_abar(a);
    graph::Forest ef = graph::lu_eforest(abar);
    SupernodePartition part = amalgamate(abar, ef, find_supernodes(abar), {});
    BlockStructure bs = build_block_structure(abar, part);
    EXPECT_TRUE(bs.beforest.valid());
    EXPECT_TRUE(bs.beforest.is_topological());
    // The pairwise-closed pattern is NOT a George-Ng structure, so the
    // Section 2 theorems need not hold at block level; what must hold is
    // the pairwise closure (kernel requirement) and the faithful
    // lockfree_safe flag (executor requirement).
    EXPECT_TRUE(block_closure_holds(bs.bpattern)) << describe(a);
    EXPECT_EQ(bs.lockfree_safe,
              graph::verify_candidate_disjointness(bs.bpattern, bs.beforest))
        << describe(a);
  }
}

TEST(PairwiseClosure, ReachesFixedPointAndOnlyAdds) {
  for (const CscMatrix& a : test::small_matrices()) {
    Pattern abar = make_abar(a);
    graph::Forest ef = graph::lu_eforest(abar);
    SupernodePartition part = amalgamate(abar, ef, find_supernodes(abar), {});
    Pattern raw = block_pattern(abar, part);
    long added = 0;
    Pattern closed = pairwise_closure(raw, &added);
    EXPECT_TRUE(raw.subset_of(closed));
    EXPECT_EQ(closed.nnz() - raw.nnz(), added);
    EXPECT_TRUE(block_closure_holds(closed)) << describe(a);
    // Idempotent.
    long again = -1;
    Pattern twice = pairwise_closure(closed, &again);
    EXPECT_EQ(again, 0);
    EXPECT_TRUE(twice == closed);
  }
}

TEST(BlockStructure, LAndUBlockListsConsistent) {
  CscMatrix a = test::small_matrices()[0];
  Pattern abar = make_abar(a);
  SupernodePartition part = find_supernodes(abar);
  BlockStructure bs = build_block_structure(abar, part);
  for (int k = 0; k < bs.num_blocks(); ++k) {
    for (int i : bs.l_blocks(k)) {
      EXPECT_GT(i, k);
      EXPECT_TRUE(bs.bpattern.contains(i, k));
    }
    for (int j : bs.u_blocks(k)) {
      EXPECT_GT(j, k);
      EXPECT_TRUE(bs.bpattern.contains(k, j));
    }
  }
}

TEST(BlockStructure, TransposedPatternConsistentAfterRepartitioning) {
  // bpattern_rows is built once on construction and never refreshed; the
  // blocking-plan build (symbolic/repartition.h) walks the structure but
  // must not disturb it -- the numeric drivers read the row-major side for
  // U traversal and the plan's l_list caches the column-major side, so the
  // two views have to stay exact transposes of each other.
  for (const CscMatrix& a : test::small_matrices()) {
    Pattern abar = make_abar(a);
    SupernodePartition part = find_supernodes(abar);
    BlockStructure bs = build_block_structure(abar, part);
    ASSERT_TRUE(transpose_consistent(bs)) << describe(a);
    BlockPlan plan = build_block_plan(abar, bs);
    ASSERT_TRUE(plan.built) << describe(a);
    EXPECT_TRUE(transpose_consistent(bs)) << describe(a);
    // And the plan's cached lists agree with both pattern views.
    for (int k = 0; k < bs.num_blocks(); ++k) {
      EXPECT_EQ(plan.columns[k].l_list, bs.l_blocks(k)) << describe(a);
      for (int i : plan.columns[k].l_list) {
        EXPECT_TRUE(bs.bpattern.contains(i, k)) << describe(a);
        EXPECT_TRUE(bs.bpattern_rows.contains(k, i)) << describe(a);
      }
    }
  }
}

TEST(BlockStructure, SingleSupernodeDegenerate) {
  CooMatrix coo(4, 4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) coo.add(i, j, 1.0);
  }
  Pattern p = coo.to_csc().pattern();
  BlockStructure bs = build_block_structure(p, find_supernodes(p));
  EXPECT_EQ(bs.num_blocks(), 1);
  EXPECT_TRUE(bs.l_blocks(0).empty());
  EXPECT_TRUE(bs.u_blocks(0).empty());
}

}  // namespace
}  // namespace plu::symbolic
