// DOT exports (forests and task graphs) and dense-matrix utilities.
#include <gtest/gtest.h>

#include <sstream>

#include "blas/dense.h"
#include "core/analysis.h"
#include "graph/dot_export.h"
#include "taskgraph/analysis.h"
#include "test_helpers.h"

namespace plu {
namespace {

TEST(DotExport, ForestContainsAllNodesAndEdges) {
  graph::Forest f(std::vector<int>{2, 2, graph::kNone, graph::kNone});
  std::string dot = graph::forest_to_dot(f, "g");
  EXPECT_NE(dot.find("digraph g"), std::string::npos);
  for (int v = 0; v < 4; ++v) {
    EXPECT_NE(dot.find("n" + std::to_string(v) + " [label="), std::string::npos);
  }
  EXPECT_NE(dot.find("n0 -> n2"), std::string::npos);
  EXPECT_NE(dot.find("n1 -> n2"), std::string::npos);
  // Roots have no outgoing edge.
  EXPECT_EQ(dot.find("n2 -> "), std::string::npos);
  EXPECT_EQ(dot.find("n3 -> "), std::string::npos);
}

TEST(DotExport, TaskGraphEdgesRendered) {
  CscMatrix a = test::small_matrices()[0];
  Analysis an = analyze(a);
  std::ostringstream os;
  taskgraph::write_task_graph_dot(os, an.graph, "tg");
  std::string dot = os.str();
  EXPECT_NE(dot.find("digraph tg"), std::string::npos);
  long arrow_count = 0;
  for (std::size_t p = dot.find("->"); p != std::string::npos;
       p = dot.find("->", p + 2)) {
    ++arrow_count;
  }
  EXPECT_EQ(arrow_count, an.graph.num_edges());
}

TEST(DenseUtils, IdentityAndCopy) {
  blas::DenseMatrix i3 = blas::DenseMatrix::identity(3);
  EXPECT_DOUBLE_EQ(i3(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i3(0, 1), 0.0);
  blas::DenseMatrix dst(3, 3);
  blas::copy(i3.view(), dst.view());
  EXPECT_LT(blas::max_abs_diff(i3.view(), dst.view()), 1e-300);
}

TEST(DenseUtils, NormsAndDiff) {
  blas::DenseMatrix a(2, 2);
  a(0, 0) = 3.0;
  a(1, 1) = -4.0;
  EXPECT_DOUBLE_EQ(blas::frobenius_norm(a.view()), 5.0);
  EXPECT_DOUBLE_EQ(blas::max_abs(a.view()), 4.0);
  blas::DenseMatrix b = a;
  b(1, 0) = 0.5;
  EXPECT_DOUBLE_EQ(blas::max_abs_diff(a.view(), b.view()), 0.5);
}

TEST(DenseUtils, SubviewSharesStorage) {
  blas::DenseMatrix a(4, 4);
  blas::MatrixView sub = a.view().block(1, 2, 2, 2);
  sub(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(a(1, 2), 7.0);
  EXPECT_EQ(sub.ld, 4);
  blas::ConstMatrixView csub = std::as_const(a).view().block(1, 2, 2, 2);
  EXPECT_DOUBLE_EQ(csub(0, 0), 7.0);
}

TEST(DenseUtils, StreamOutput) {
  blas::DenseMatrix a(2, 2);
  a(0, 1) = 2.5;
  std::ostringstream os;
  blas::ConstMatrixView view = a.view();
  os << view;
  std::string s = os.str();
  EXPECT_EQ(s, "0 2.5\n0 0\n");
}

}  // namespace
}  // namespace plu
