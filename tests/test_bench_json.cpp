// JSON-lines emitter used by the bench binaries (bench/bench_json.h): CI
// parses the artifact files, so hostile strings and non-finite doubles must
// still produce valid JSON.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "../bench/bench_json.h"

namespace plu::bench {
namespace {

TEST(JsonRecord, PlainFields) {
  JsonRecord r;
  r.field("name", "grid2d").field("p", 4).field("seconds", 1.5);
  EXPECT_EQ(r.str(), "{\"name\": \"grid2d\", \"p\": 4, \"seconds\": 1.5}");
}

TEST(JsonRecord, EscapesQuotesAndBackslashes) {
  JsonRecord r;
  r.field("title", "matrix \"west0479\" from C:\\data");
  EXPECT_EQ(r.str(),
            "{\"title\": \"matrix \\\"west0479\\\" from C:\\\\data\"}");
}

TEST(JsonRecord, EscapesControlCharacters) {
  JsonRecord r;
  r.field("s", std::string("a\nb\tc\rd\x01" "e"));
  EXPECT_EQ(r.str(), "{\"s\": \"a\\nb\\tc\\rd\\u0001e\"}");
}

TEST(JsonRecord, NonFiniteDoublesBecomeNull) {
  // JSON has no NaN/Infinity literal; "%.6g" would print one and corrupt
  // the record (the regression this emitter fixes).
  JsonRecord r;
  r.field("nan", std::nan(""))
      .field("inf", std::numeric_limits<double>::infinity())
      .field("ninf", -std::numeric_limits<double>::infinity())
      .field("ok", 2.0);
  EXPECT_EQ(r.str(),
            "{\"nan\": null, \"inf\": null, \"ninf\": null, \"ok\": 2}");
}

TEST(JsonRecord, EmptyRecordIsAnEmptyObject) {
  EXPECT_EQ(JsonRecord().str(), "{}");
}

}  // namespace
}  // namespace plu::bench
