// Matrix Market I/O: round trips, symmetry expansion, malformed input.
#include <gtest/gtest.h>

#include <sstream>

#include "matrix/io.h"
#include "test_helpers.h"

namespace plu {
namespace {

TEST(MatrixMarket, WriteReadRoundTrip) {
  CscMatrix a = gen::random_sparse(20, 3.0, 0.4, 0.7, 21);
  std::ostringstream os;
  write_matrix_market(os, a, "round trip test\nsecond comment line");
  std::istringstream is(os.str());
  CscMatrix b = read_matrix_market(is);
  EXPECT_EQ(b.rows(), a.rows());
  EXPECT_EQ(b.col_ptr(), a.col_ptr());
  EXPECT_EQ(b.row_ind(), a.row_ind());
  for (int k = 0; k < a.nnz(); ++k) EXPECT_DOUBLE_EQ(b.values()[k], a.values()[k]);
}

TEST(MatrixMarket, ReadsSymmetricExpanding) {
  std::istringstream is(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% comment\n"
      "3 3 3\n"
      "1 1 2.0\n"
      "3 1 5.0\n"
      "3 3 1.0\n");
  CscMatrix a = read_matrix_market(is);
  EXPECT_EQ(a.nnz(), 4);
  EXPECT_DOUBLE_EQ(a.at(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 5.0);
}

TEST(MatrixMarket, ReadsSkewSymmetric) {
  std::istringstream is(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3.0\n");
  CscMatrix a = read_matrix_market(is);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -3.0);
}

TEST(MatrixMarket, ReadsPatternField) {
  std::istringstream is(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 2\n");
  CscMatrix a = read_matrix_market(is);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 1.0);
}

TEST(MatrixMarket, RejectsMalformedInput) {
  {
    std::istringstream is("not a banner\n1 1 0\n");
    EXPECT_THROW(read_matrix_market(is), std::runtime_error);
  }
  {
    std::istringstream is("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
    EXPECT_THROW(read_matrix_market(is), std::runtime_error);
  }
  {
    std::istringstream is(
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n");
    EXPECT_THROW(read_matrix_market(is), std::runtime_error);  // out of range
  }
  {
    std::istringstream is(
        "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
    EXPECT_THROW(read_matrix_market(is), std::runtime_error);  // truncated
  }
}

TEST(MatrixMarket, FileRoundTrip) {
  CscMatrix a = gen::grid2d(4, 4, {});
  std::string path = ::testing::TempDir() + "/plu_io_test.mtx";
  write_matrix_market_file(path, a);
  CscMatrix b = read_matrix_market_file(path);
  EXPECT_EQ(b.col_ptr(), a.col_ptr());
  EXPECT_EQ(b.row_ind(), a.row_ind());
  EXPECT_THROW(read_matrix_market_file("/nonexistent/x.mtx"), std::runtime_error);
}

}  // namespace
}  // namespace plu
