// End-to-end integration: factor and solve across matrix classes, options
// and execution modes; verify residuals and invariants across the pipeline.
#include <gtest/gtest.h>

#include "core/sparse_lu.h"
#include "graph/eforest.h"
#include "graph/postorder.h"
#include "matrix/named_matrices.h"
#include "symbolic/static_symbolic.h"
#include "taskgraph/analysis.h"
#include "test_helpers.h"

namespace plu {
namespace {

TEST(Integration, SolveSmallMatricesAllOptionCombos) {
  for (const CscMatrix& a : test::small_matrices()) {
    std::vector<double> b = test::random_vector(a.rows(), 7);
    for (bool post : {false, true}) {
      for (auto kind : {taskgraph::GraphKind::kSStar, taskgraph::GraphKind::kEforest}) {
        Options opt;
        opt.postorder = post;
        opt.task_graph = kind;
        std::vector<double> x = SparseLU::solve_system(a, b, opt);
        double r = relative_residual(a, x, b);
        EXPECT_LT(r, 1e-10) << describe(a) << " post=" << post
                            << " graph=" << taskgraph::to_string(kind);
      }
    }
  }
}

TEST(Integration, ExecutionModesAgree) {
  for (const CscMatrix& a : test::small_matrices()) {
    std::vector<double> b = test::random_vector(a.rows(), 11);
    Options opt;
    SparseLU seq(opt);
    seq.numeric_options().mode = ExecutionMode::kSequential;
    seq.factorize(a);
    std::vector<double> xs = seq.solve(b);

    SparseLU graph_seq(opt);
    graph_seq.numeric_options().mode = ExecutionMode::kGraphSequential;
    graph_seq.factorize(a);
    std::vector<double> xg = graph_seq.solve(b);

    SparseLU thr(opt);
    thr.numeric_options().mode = ExecutionMode::kThreaded;
    thr.numeric_options().threads = 4;
    thr.factorize(a);
    std::vector<double> xt = thr.solve(b);

    for (int i = 0; i < a.rows(); ++i) {
      // Graph-sequential must agree exactly with threaded (same op sets,
      // disjoint unordered writes); sequential may differ in rounding only.
      EXPECT_NEAR(xs[i], xg[i], 1e-9);
      EXPECT_NEAR(xs[i], xt[i], 1e-9);
    }
    EXPECT_LT(relative_residual(a, xt, b), 1e-10);
  }
}

TEST(Integration, ThreadedWithoutColumnLocks) {
  // The disjointness theory says column locks are unnecessary.
  for (const CscMatrix& a : test::small_matrices()) {
    std::vector<double> b = test::random_vector(a.rows(), 13);
    Options opt;
    SparseLU lu(opt);
    lu.numeric_options().mode = ExecutionMode::kThreaded;
    lu.numeric_options().threads = 8;
    lu.numeric_options().use_column_locks = false;
    lu.factorize(a);
    EXPECT_LT(relative_residual(a, lu.solve(b), b), 1e-10);
  }
}

TEST(Integration, MediumNamedMatrix) {
  // One named-suite member end to end (orsreg1 is the smallest).
  NamedMatrix nm = make_named_matrix("orsreg1");
  std::vector<double> b = test::random_vector(nm.a.rows(), 17);
  SparseLU lu;
  lu.factorize(nm.a);
  EXPECT_FALSE(lu.factorization().singular());
  std::vector<double> x = lu.solve(b);
  EXPECT_LT(relative_residual(nm.a, x, b), 1e-9);
  // Pipeline invariants on the analysis.
  const Analysis& an = lu.analysis();
  EXPECT_TRUE(an.eforest.is_postordered());
  EXPECT_TRUE(graph::verify_theorem1(an.symbolic.abar, an.eforest));
  EXPECT_TRUE(graph::verify_theorem2(an.symbolic.abar, an.eforest));
  // End-to-end permutation bookkeeping: the symbolic factorization of the
  // fully permuted input equals the pipeline's (Theorem 3 commutation).
  symbolic::SymbolicResult direct = symbolic::static_symbolic_factorization(
      an.permute_input(nm.a).pattern());
  EXPECT_TRUE(direct.abar == an.symbolic.abar);
}

TEST(Integration, RefinementImprovesResidual) {
  CscMatrix a = gen::random_sparse(80, 4.0, 0.3, 0.55, 99);
  std::vector<double> b = test::random_vector(80, 23);
  SparseLU lu;
  lu.factorize(a);
  RefineResult r = lu.solve_refined(b);
  EXPECT_LE(r.residual_history.back(), r.residual_history.front() + 1e-16);
  EXPECT_LT(r.residual_history.back(), 1e-12);
}

TEST(Integration, EforestGraphSubsetOfSStarClosure) {
  for (const CscMatrix& a : test::small_matrices()) {
    Options opt;
    opt.task_graph = taskgraph::GraphKind::kEforest;
    Analysis an_new = analyze(a, opt);
    opt.task_graph = taskgraph::GraphKind::kSStar;
    Analysis an_old = analyze(a, opt);
    EXPECT_TRUE(taskgraph::edges_subset_of_closure(an_new.graph, an_old.graph));
    EXPECT_LE(taskgraph::critical_path(an_new.graph, an_new.costs.flops).length,
              taskgraph::critical_path(an_old.graph, an_old.costs.flops).length + 1e-9);
  }
}

}  // namespace
}  // namespace plu
