// Dense-block storage: allocation, scatter/gather, views, row swaps.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "core/analysis.h"
#include "core/block_storage.h"
#include "test_helpers.h"

namespace plu {
namespace {

struct Fixture {
  Analysis an;
  CscMatrix permuted;
  explicit Fixture(const CscMatrix& a) : an(analyze(a)), permuted(an.permute_input(a)) {}
};

TEST(BlockMatrix, LoadThenToDenseRoundTrips) {
  for (const CscMatrix& a : test::small_matrices()) {
    Fixture f(a);
    BlockMatrix bm(f.an.blocks);
    bm.load(f.permuted);
    blas::DenseMatrix d = bm.to_dense();
    for (int j = 0; j < a.cols(); ++j) {
      for (int i = 0; i < a.rows(); ++i) {
        EXPECT_DOUBLE_EQ(d(i, j), f.permuted.at(i, j)) << i << "," << j;
      }
    }
  }
}

TEST(BlockMatrix, ColumnHeightsAndOffsetsConsistent) {
  CscMatrix a = test::small_matrices()[0];
  Fixture f(a);
  BlockMatrix bm(f.an.blocks);
  const auto& part = f.an.blocks.part;
  for (int j = 0; j < bm.num_block_columns(); ++j) {
    int h = 0;
    for (int i : bm.column_blocks(j)) {
      EXPECT_EQ(bm.block_offset(i, j), h);
      h += part.width(i);
    }
    EXPECT_EQ(bm.column_height(j), h);
    EXPECT_EQ(bm.panel_height(j),
              part.width(j) + h - bm.block_offset(j, j) - part.width(j));
  }
}

TEST(BlockMatrix, PanelIsContiguousTail) {
  CscMatrix a = test::small_matrices()[1];
  Fixture f(a);
  BlockMatrix bm(f.an.blocks);
  bm.load(f.permuted);
  const auto& part = f.an.blocks.part;
  for (int k = 0; k < bm.num_block_columns(); ++k) {
    blas::MatrixView p = bm.panel(k);
    EXPECT_EQ(p.cols, part.width(k));
    EXPECT_EQ(p.rows, bm.panel_height(k));
    // Top-left of the panel is the diagonal block.
    blas::MatrixView diag = bm.block(k, k);
    EXPECT_EQ(diag.data, p.data);
  }
}

TEST(BlockMatrix, BlockViewMatchesLoadedValues) {
  CscMatrix a = test::small_matrices()[2];
  Fixture f(a);
  BlockMatrix bm(f.an.blocks);
  bm.load(f.permuted);
  const auto& part = f.an.blocks.part;
  for (int j = 0; j < bm.num_block_columns(); ++j) {
    for (int i : bm.column_blocks(j)) {
      blas::ConstMatrixView b = std::as_const(bm).block(i, j);
      for (int c = 0; c < b.cols; ++c) {
        for (int r = 0; r < b.rows; ++r) {
          EXPECT_DOUBLE_EQ(b(r, c),
                           f.permuted.at(part.first(i) + r, part.first(j) + c));
        }
      }
    }
  }
}

TEST(BlockMatrix, SwapRowsTouchesOnlyThatColumn) {
  CscMatrix a = test::small_matrices()[0];
  Fixture f(a);
  BlockMatrix bm(f.an.blocks);
  bm.load(f.permuted);
  if (bm.column_height(0) < 2) GTEST_SKIP();
  blas::DenseMatrix before = bm.to_dense();
  bm.swap_rows(0, 0, 1);
  bm.swap_rows(0, 0, 1);  // involution
  blas::DenseMatrix after = bm.to_dense();
  EXPECT_LT(blas::max_abs_diff(before.view(), after.view()), 1e-300);
}

TEST(BlockMatrix, PanelRowsInColumnCoverPanel) {
  CscMatrix a = test::small_matrices()[3];
  Fixture f(a);
  BlockMatrix bm(f.an.blocks);
  for (int k = 0; k < bm.num_block_columns(); ++k) {
    for (int j : f.an.blocks.u_blocks(k)) {
      std::vector<int> rows = bm.panel_rows_in_column(k, j);
      EXPECT_EQ(static_cast<int>(rows.size()), bm.panel_height(k));
      // All within the column buffer and strictly increasing within blocks.
      for (int r : rows) {
        EXPECT_GE(r, 0);
        EXPECT_LT(r, bm.column_height(j));
      }
    }
  }
}

TEST(BlockMatrix, LoadRejectsEntryOutsidePattern) {
  CscMatrix a = test::small_matrices()[0];
  Fixture f(a);
  BlockMatrix bm(f.an.blocks);
  // Dense matrix of the same size has entries everywhere; most fall outside
  // the block pattern of a sparse analysis.
  CooMatrix dense_coo(a.rows(), a.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) dense_coo.add(i, j, 1.0);
  }
  EXPECT_THROW(bm.load(dense_coo.to_csc()), std::invalid_argument);
}

TEST(BlockMatrix, SetZeroClearsEverything) {
  CscMatrix a = test::small_matrices()[4];
  Fixture f(a);
  BlockMatrix bm(f.an.blocks);
  bm.load(f.permuted);
  EXPECT_GT(blas::max_abs(bm.to_dense().view()), 0.0);
  bm.set_zero();
  EXPECT_DOUBLE_EQ(blas::max_abs(bm.to_dense().view()), 0.0);
  EXPECT_GT(bm.stored_doubles(), static_cast<std::size_t>(a.nnz()));
}

// ---------------------------------------------------------------------------
// Arena storage (StorageMode::kArena) vs the per-column-vector baseline.

TEST(ArenaStorage, ValuesIdenticalToVectorsMode) {
  for (const CscMatrix& a : test::small_matrices()) {
    Fixture f(a);
    BlockMatrix arena(f.an.blocks, StorageMode::kArena);
    BlockMatrix vectors(f.an.blocks, StorageMode::kVectors);
    arena.load(f.permuted);
    vectors.load(f.permuted);
    // Bitwise: placement is the ONLY thing the mode changes.
    EXPECT_LT(blas::max_abs_diff(arena.to_dense().view(),
                                 vectors.to_dense().view()),
              1e-300);
    EXPECT_EQ(arena.stored_doubles(), vectors.stored_doubles());
  }
}

TEST(ArenaStorage, ColumnBasesAre64ByteAligned) {
  CscMatrix a = test::small_matrices()[2];
  Fixture f(a);
  BlockMatrix bm(f.an.blocks, StorageMode::kArena);
  for (int j = 0; j < bm.num_block_columns(); ++j) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(bm.column(j).data) % 64, 0u)
        << "column " << j;
  }
}

TEST(ArenaStorage, StorageBytesCoversStoredDoubles) {
  CscMatrix a = test::small_matrices()[1];
  Fixture f(a);
  BlockMatrix arena(f.an.blocks, StorageMode::kArena);
  BlockMatrix vectors(f.an.blocks, StorageMode::kVectors);
  // Capacity (incl. alignment padding) can only exceed the payload.
  EXPECT_GE(arena.storage_bytes(), 8 * arena.stored_doubles());
  EXPECT_GE(vectors.storage_bytes(), 8 * vectors.stored_doubles());
  // Padding is bounded: < 64 bytes per block column.
  EXPECT_LT(arena.storage_bytes(),
            8 * arena.stored_doubles() +
                64 * static_cast<std::size_t>(arena.num_block_columns()));
}

TEST(ArenaStorage, SetZeroThenReloadRefactorizes) {
  CscMatrix a = test::small_matrices()[3];
  Fixture f(a);
  BlockMatrix bm(f.an.blocks, StorageMode::kArena);
  bm.load(f.permuted);
  blas::DenseMatrix first = bm.to_dense();
  bm.set_zero();  // the contiguous-fill refactorization path
  EXPECT_DOUBLE_EQ(blas::max_abs(bm.to_dense().view()), 0.0);
  bm.load(f.permuted);
  EXPECT_LT(blas::max_abs_diff(first.view(), bm.to_dense().view()), 1e-300);
}

TEST(ArenaStorage, ThreadedFirstTouchInitMatchesSequential) {
  CscMatrix a = test::small_matrices()[0];
  Fixture f(a);
  BlockMatrix seq(f.an.blocks, StorageMode::kArena, 1);
  BlockMatrix par(f.an.blocks, StorageMode::kArena, 8);
  seq.load(f.permuted);
  par.load(f.permuted);
  EXPECT_LT(blas::max_abs_diff(seq.to_dense().view(), par.to_dense().view()),
            1e-300);
}

TEST(ArenaStorage, DeferredSegmentedMatchesFullConstruction) {
  for (const CscMatrix& a : test::small_matrices()) {
    Fixture f(a);
    BlockMatrix full(f.an.blocks, StorageMode::kArena);
    full.load(f.permuted);
    for (StorageMode mode : {StorageMode::kArena, StorageMode::kVectors}) {
      BlockMatrix def(f.an.blocks, BlockMatrix::DeferredColumns{}, mode);
      for (int j = 0; j < def.num_block_columns(); ++j) {
        def.init_column(j, full.column_blocks(j));
        def.load_column(j, f.permuted);
      }
      EXPECT_LT(blas::max_abs_diff(full.to_dense().view(),
                                   def.to_dense().view()),
                1e-300);
      EXPECT_GE(def.storage_bytes(), 8 * def.stored_doubles());
    }
  }
}

TEST(ArenaStorage, MoveTransfersOwnership) {
  CscMatrix a = test::small_matrices()[0];
  Fixture f(a);
  BlockMatrix bm(f.an.blocks, StorageMode::kArena);
  bm.load(f.permuted);
  blas::DenseMatrix before = bm.to_dense();
  const double* base = bm.column(0).data;
  BlockMatrix moved = std::move(bm);
  EXPECT_EQ(moved.column(0).data, base);  // no reallocation, no copy
  EXPECT_LT(blas::max_abs_diff(before.view(), moved.to_dense().view()),
            1e-300);
}

TEST(ArenaStorage, ToStringNames) {
  EXPECT_STREQ(to_string(StorageMode::kArena), "arena");
  EXPECT_STREQ(to_string(StorageMode::kVectors), "vectors");
}

}  // namespace
}  // namespace plu
